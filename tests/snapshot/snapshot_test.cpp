// The checkpoint invariant: a cell measured after RubbosTestbed::rollback()
// must be indistinguishable — byte for byte, in every observable — from the
// same cell measured against a freshly constructed, freshly warmed world.
// These tests pin that from three angles: warm sweep cells vs cold
// run_attack_lab calls (tables and registry bytes, at several thread
// counts), a raw mid-burst/mid-RTO rollback replayed repeatedly from one
// snapshot, and an armed allocation counter proving rollback() itself
// allocates nothing once the snapshot exists.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "support/counting_alloc.h"
#include "testbed/attack_lab.h"
#include "testbed/rubbos_testbed.h"

namespace memca::testbed {
namespace {

std::string registry_bytes(const metrics::Registry* registry) {
  std::ostringstream out;
  if (registry != nullptr) registry->serialize(out);
  return out.str();
}

/// Three cells share one prefix (same testbed + warmup, different attack
/// params) so a sweep worker rewinds a warm world between them; the fourth
/// differs in seed, forcing the worker to rebuild cold mid-chunk.
std::vector<AttackLabConfig> warm_grid() {
  std::vector<AttackLabConfig> cells;
  for (SimTime length : {msec(200), msec(400), msec(600)}) {
    AttackLabConfig config;
    config.params.burst_length = length;
    config.params.burst_interval = sec(std::int64_t{2});
    config.warmup = sec(std::int64_t{8});
    config.duration = sec(std::int64_t{10});
    config.testbed.seed = 42;
    config.testbed.metrics = true;
    cells.push_back(config);
  }
  AttackLabConfig odd = cells.back();
  odd.testbed.seed = 1234;
  cells.push_back(odd);
  return cells;
}

void expect_identical(const AttackLabResult& a, const AttackLabResult& b,
                      std::size_t cell) {
  EXPECT_EQ(a.d_on, b.d_on) << "cell " << cell;
  EXPECT_EQ(a.client_p50, b.client_p50) << "cell " << cell;
  EXPECT_EQ(a.client_p95, b.client_p95) << "cell " << cell;
  EXPECT_EQ(a.client_p98, b.client_p98) << "cell " << cell;
  EXPECT_EQ(a.client_p99, b.client_p99) << "cell " << cell;
  EXPECT_EQ(a.tier_p95, b.tier_p95) << "cell " << cell;
  EXPECT_EQ(a.throughput, b.throughput) << "cell " << cell;
  EXPECT_EQ(a.drops, b.drops) << "cell " << cell;
  EXPECT_EQ(a.drop_fraction, b.drop_fraction) << "cell " << cell;
  EXPECT_EQ(a.cpu_mean, b.cpu_mean) << "cell " << cell;
  EXPECT_EQ(a.cpu_max_50ms, b.cpu_max_50ms) << "cell " << cell;
  EXPECT_EQ(a.cpu_max_1s, b.cpu_max_1s) << "cell " << cell;
  EXPECT_EQ(a.cpu_max_1min, b.cpu_max_1min) << "cell " << cell;
  EXPECT_EQ(a.autoscaler_triggered, b.autoscaler_triggered) << "cell " << cell;
  EXPECT_EQ(a.mean_saturation_s, b.mean_saturation_s) << "cell " << cell;
  EXPECT_EQ(a.bursts, b.bursts) << "cell " << cell;
  EXPECT_EQ(registry_bytes(a.registry.get()), registry_bytes(b.registry.get()))
      << "cell " << cell;
}

TEST(SnapshotSweep, WarmCellsMatchColdRunsByteForByte) {
  const std::vector<AttackLabConfig> grid = warm_grid();

  // Cold baseline: fresh testbed per cell, warm-up re-simulated every time.
  std::vector<AttackLabResult> baseline;
  for (const AttackLabConfig& config : grid) baseline.push_back(run_attack_lab(config));

  for (int threads : {1, 2, 4}) {
    std::vector<AttackLabResult> swept = run_attack_lab_sweep(grid, threads);
    ASSERT_EQ(swept.size(), baseline.size()) << "threads " << threads;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      expect_identical(baseline[i], swept[i], i);
    }
  }
}

TEST(SnapshotSweep, MergedRegistryBytesMatchColdAcrossThreadCounts) {
  const std::vector<AttackLabConfig> grid = warm_grid();

  std::vector<AttackLabResult> baseline;
  for (const AttackLabConfig& config : grid) baseline.push_back(run_attack_lab(config));
  const std::string cold_bytes = registry_bytes(merge_sweep_registries(baseline).get());
  ASSERT_FALSE(cold_bytes.empty());

  for (int threads : {1, 2, 4}) {
    std::vector<AttackLabResult> swept = run_attack_lab_sweep(grid, threads);
    EXPECT_EQ(cold_bytes, registry_bytes(merge_sweep_registries(swept).get()))
        << "threads " << threads;
  }
}

/// Everything a segment of simulation can disturb, collected after running
/// the world forward a fixed span. Exact equality across replays is the
/// rollback contract — no tolerance anywhere.
struct Fingerprint {
  SimTime now = 0;
  std::uint64_t events = 0;
  std::int64_t completed = 0, drops = 0, failed = 0, retransmitted = 0;
  SimTime p50 = 0, p99 = 0;
  std::vector<std::int64_t> tier_counters;
  std::vector<int> occupancy;
  double bandwidth = 0.0;
};

Fingerprint run_segment(RubbosTestbed& bed, SimTime span) {
  bed.sim().run_for(span);
  Fingerprint f;
  f.now = bed.sim().now();
  f.events = bed.sim().events_executed();
  f.completed = bed.clients().completed();
  f.drops = bed.clients().dropped_attempts();
  f.failed = bed.clients().failed();
  f.retransmitted = bed.clients().retransmitted_completions();
  f.p50 = bed.clients().response_times().quantile(0.50);
  f.p99 = bed.clients().response_times().quantile(0.99);
  for (std::size_t i = 0; i < bed.system().num_tiers(); ++i) {
    const queueing::TierServer& tier = bed.system().tier(i);
    f.tier_counters.push_back(tier.offered());
    f.tier_counters.push_back(tier.admitted());
    f.tier_counters.push_back(tier.rejected());
    f.tier_counters.push_back(tier.completed());
    f.occupancy.push_back(tier.resident());
    f.occupancy.push_back(tier.waiting());
    f.occupancy.push_back(tier.awaiting_reply());
  }
  f.bandwidth = bed.target_host().achieved_bandwidth(bed.target_vm());
  return f;
}

void expect_fingerprint_eq(const Fingerprint& a, const Fingerprint& b, int replay) {
  EXPECT_EQ(a.now, b.now) << "replay " << replay;
  EXPECT_EQ(a.events, b.events) << "replay " << replay;
  EXPECT_EQ(a.completed, b.completed) << "replay " << replay;
  EXPECT_EQ(a.drops, b.drops) << "replay " << replay;
  EXPECT_EQ(a.failed, b.failed) << "replay " << replay;
  EXPECT_EQ(a.retransmitted, b.retransmitted) << "replay " << replay;
  EXPECT_EQ(a.p50, b.p50) << "replay " << replay;
  EXPECT_EQ(a.p99, b.p99) << "replay " << replay;
  EXPECT_EQ(a.tier_counters, b.tier_counters) << "replay " << replay;
  EXPECT_EQ(a.occupancy, b.occupancy) << "replay " << replay;
  EXPECT_EQ(a.bandwidth, b.bandwidth) << "replay " << replay;
}

TEST(SnapshotRollback, MidBurstMidRtoSegmentReplaysByteForByte) {
  // Snapshot the world at its most entangled: inside a contention burst
  // (adversary lock activity ON, capacity degraded), with retransmission
  // timers parked in the wheel from drops in earlier bursts. The segment
  // after the snapshot must replay exactly — including the bursts' OFF
  // edges and the pending RTOs, both of which live in the simulator's event
  // arena at capture time. Replayed twice from the one snapshot: repeated
  // rollback is part of the contract (one warm world serves many cells).
  TestbedConfig config;
  config.seed = 7;
  RubbosTestbed bed(config);
  bed.start();

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  // Manual burst train (300 ms ON every second). Deliberately not
  // MemcaAttack: attack objects are created after a snapshot and destroyed
  // before a rollback, so their internal state is never checkpointed —
  // plain scheduled closures are, and those are what this test exercises.
  for (int k = 0; k < 12; ++k) {
    const SimTime on = msec(500) + k * sec(std::int64_t{1});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.95); });
    bed.sim().schedule_at(on + msec(300), [&host, vm] { host.clear_memory_activity(vm); });
  }

  // 4.65 s is inside burst #4 (4.5 s – 4.8 s): lock duty active, and drops
  // from earlier bursts have RTO timers pending (minimum RTO is 1 s).
  bed.sim().run_until(msec(4650));
  ASSERT_GT(bed.clients().dropped_attempts(), 0)
      << "scenario must have drops before the snapshot so RTO timers are pending";
  bed.snapshot();

  const Fingerprint first = run_segment(bed, sec(std::int64_t{4}));
  EXPECT_GT(first.retransmitted, 0)
      << "segment must complete retransmissions scheduled before the snapshot";
  for (int replay = 1; replay <= 2; ++replay) {
    bed.rollback();
    expect_fingerprint_eq(first, run_segment(bed, sec(std::int64_t{4})), replay);
  }
}

TEST(SnapshotRollback, RollbackAllocatesNothingAfterTheFirstSnapshot) {
  // capture() may allocate (it builds the checkpoint buffers); rollback()
  // must not — it only truncates and copies into existing capacity. This is
  // what keeps the warm sweep path allocation-quiet no matter how many
  // cells rewind one world.
  TestbedConfig config;
  config.seed = 11;
  config.metrics = true;
  config.trace = true;
  RubbosTestbed bed(config);
  bed.start();

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  for (int k = 0; k < 8; ++k) {
    const SimTime on = msec(500) + k * sec(std::int64_t{1});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.9); });
    bed.sim().schedule_at(on + msec(300), [&host, vm] { host.clear_memory_activity(vm); });
  }
  bed.sim().run_until(msec(3650));
  bed.snapshot();

  for (int round = 0; round < 2; ++round) {
    // Diverge well past the snapshot so the rollback has real work: grown
    // series, rotated event-arena state, moved requests, advanced RNGs.
    bed.sim().run_for(sec(std::int64_t{2}));
    tests::ScopedAllocationCounter counter;
    bed.rollback();
    EXPECT_EQ(counter.count(), 0) << "round " << round;
  }
}

}  // namespace
}  // namespace memca::testbed
