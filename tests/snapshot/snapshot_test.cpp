// The checkpoint invariant: a cell measured after RubbosTestbed::rollback()
// must be indistinguishable — byte for byte, in every observable — from the
// same cell measured against a freshly constructed, freshly warmed world.
// These tests pin that from three angles: warm sweep cells vs cold
// run_attack_lab calls (tables and registry bytes, at several thread
// counts), a raw mid-burst/mid-RTO rollback replayed repeatedly from one
// snapshot, and an armed allocation counter proving rollback() itself
// allocates nothing once the snapshot exists.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "queueing/ntier.h"
#include "support/counting_alloc.h"
#include "testbed/attack_lab.h"
#include "testbed/rubbos_testbed.h"

namespace memca::testbed {
namespace {

std::string registry_bytes(const metrics::Registry* registry) {
  std::ostringstream out;
  if (registry != nullptr) registry->serialize(out);
  return out.str();
}

/// Three cells share one prefix (same testbed + warmup, different attack
/// params) so a sweep worker rewinds a warm world between them; the fourth
/// differs in seed, forcing the worker to rebuild cold mid-chunk.
std::vector<AttackLabConfig> warm_grid() {
  std::vector<AttackLabConfig> cells;
  for (SimTime length : {msec(200), msec(400), msec(600)}) {
    AttackLabConfig config;
    config.params.burst_length = length;
    config.params.burst_interval = sec(std::int64_t{2});
    config.warmup = sec(std::int64_t{8});
    config.duration = sec(std::int64_t{10});
    config.testbed.seed = 42;
    config.testbed.metrics = true;
    cells.push_back(config);
  }
  AttackLabConfig odd = cells.back();
  odd.testbed.seed = 1234;
  cells.push_back(odd);
  return cells;
}

void expect_identical(const AttackLabResult& a, const AttackLabResult& b,
                      std::size_t cell) {
  EXPECT_EQ(a.d_on, b.d_on) << "cell " << cell;
  EXPECT_EQ(a.client_p50, b.client_p50) << "cell " << cell;
  EXPECT_EQ(a.client_p95, b.client_p95) << "cell " << cell;
  EXPECT_EQ(a.client_p98, b.client_p98) << "cell " << cell;
  EXPECT_EQ(a.client_p99, b.client_p99) << "cell " << cell;
  EXPECT_EQ(a.tier_p95, b.tier_p95) << "cell " << cell;
  EXPECT_EQ(a.throughput, b.throughput) << "cell " << cell;
  EXPECT_EQ(a.drops, b.drops) << "cell " << cell;
  EXPECT_EQ(a.drop_fraction, b.drop_fraction) << "cell " << cell;
  EXPECT_EQ(a.cpu_mean, b.cpu_mean) << "cell " << cell;
  EXPECT_EQ(a.cpu_max_50ms, b.cpu_max_50ms) << "cell " << cell;
  EXPECT_EQ(a.cpu_max_1s, b.cpu_max_1s) << "cell " << cell;
  EXPECT_EQ(a.cpu_max_1min, b.cpu_max_1min) << "cell " << cell;
  EXPECT_EQ(a.autoscaler_triggered, b.autoscaler_triggered) << "cell " << cell;
  EXPECT_EQ(a.mean_saturation_s, b.mean_saturation_s) << "cell " << cell;
  EXPECT_EQ(a.bursts, b.bursts) << "cell " << cell;
  EXPECT_EQ(registry_bytes(a.registry.get()), registry_bytes(b.registry.get()))
      << "cell " << cell;
}

TEST(SnapshotSweep, WarmCellsMatchColdRunsByteForByte) {
  const std::vector<AttackLabConfig> grid = warm_grid();

  // Cold baseline: fresh testbed per cell, warm-up re-simulated every time.
  std::vector<AttackLabResult> baseline;
  for (const AttackLabConfig& config : grid) baseline.push_back(run_attack_lab(config));

  for (int threads : {1, 2, 4}) {
    std::vector<AttackLabResult> swept = run_attack_lab_sweep(grid, threads);
    ASSERT_EQ(swept.size(), baseline.size()) << "threads " << threads;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      expect_identical(baseline[i], swept[i], i);
    }
  }
}

TEST(SnapshotSweep, MergedRegistryBytesMatchColdAcrossThreadCounts) {
  const std::vector<AttackLabConfig> grid = warm_grid();

  std::vector<AttackLabResult> baseline;
  for (const AttackLabConfig& config : grid) baseline.push_back(run_attack_lab(config));
  const std::string cold_bytes = registry_bytes(merge_sweep_registries(baseline).get());
  ASSERT_FALSE(cold_bytes.empty());

  for (int threads : {1, 2, 4}) {
    std::vector<AttackLabResult> swept = run_attack_lab_sweep(grid, threads);
    EXPECT_EQ(cold_bytes, registry_bytes(merge_sweep_registries(swept).get()))
        << "threads " << threads;
  }
}

/// Everything a segment of simulation can disturb, collected after running
/// the world forward a fixed span. Exact equality across replays is the
/// rollback contract — no tolerance anywhere.
struct Fingerprint {
  SimTime now = 0;
  std::uint64_t events = 0;
  std::int64_t completed = 0, drops = 0, failed = 0, retransmitted = 0;
  SimTime p50 = 0, p99 = 0;
  std::vector<std::int64_t> tier_counters;
  std::vector<int> occupancy;
  double bandwidth = 0.0;
};

Fingerprint run_segment(RubbosTestbed& bed, SimTime span) {
  bed.sim().run_for(span);
  Fingerprint f;
  f.now = bed.sim().now();
  f.events = bed.sim().events_executed();
  f.completed = bed.clients().completed();
  f.drops = bed.clients().dropped_attempts();
  f.failed = bed.clients().failed();
  f.retransmitted = bed.clients().retransmitted_completions();
  f.p50 = bed.clients().response_times().quantile(0.50);
  f.p99 = bed.clients().response_times().quantile(0.99);
  for (std::size_t i = 0; i < bed.system().num_tiers(); ++i) {
    const queueing::TierServer& tier = bed.system().tier(i);
    f.tier_counters.push_back(tier.offered());
    f.tier_counters.push_back(tier.admitted());
    f.tier_counters.push_back(tier.rejected());
    f.tier_counters.push_back(tier.completed());
    f.occupancy.push_back(tier.resident());
    f.occupancy.push_back(tier.waiting());
    f.occupancy.push_back(tier.awaiting_reply());
  }
  f.bandwidth = bed.target_host().achieved_bandwidth(bed.target_vm());
  return f;
}

void expect_fingerprint_eq(const Fingerprint& a, const Fingerprint& b, int replay) {
  EXPECT_EQ(a.now, b.now) << "replay " << replay;
  EXPECT_EQ(a.events, b.events) << "replay " << replay;
  EXPECT_EQ(a.completed, b.completed) << "replay " << replay;
  EXPECT_EQ(a.drops, b.drops) << "replay " << replay;
  EXPECT_EQ(a.failed, b.failed) << "replay " << replay;
  EXPECT_EQ(a.retransmitted, b.retransmitted) << "replay " << replay;
  EXPECT_EQ(a.p50, b.p50) << "replay " << replay;
  EXPECT_EQ(a.p99, b.p99) << "replay " << replay;
  EXPECT_EQ(a.tier_counters, b.tier_counters) << "replay " << replay;
  EXPECT_EQ(a.occupancy, b.occupancy) << "replay " << replay;
  EXPECT_EQ(a.bandwidth, b.bandwidth) << "replay " << replay;
}

TEST(SnapshotRollback, MidBurstMidRtoSegmentReplaysByteForByte) {
  // Snapshot the world at its most entangled: inside a contention burst
  // (adversary lock activity ON, capacity degraded), with retransmission
  // timers parked in the wheel from drops in earlier bursts. The segment
  // after the snapshot must replay exactly — including the bursts' OFF
  // edges and the pending RTOs, both of which live in the simulator's event
  // arena at capture time. Replayed twice from the one snapshot: repeated
  // rollback is part of the contract (one warm world serves many cells).
  TestbedConfig config;
  config.seed = 7;
  RubbosTestbed bed(config);
  bed.start();

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  // Manual burst train (300 ms ON every second). Deliberately not
  // MemcaAttack: attack objects are created after a snapshot and destroyed
  // before a rollback, so their internal state is never checkpointed —
  // plain scheduled closures are, and those are what this test exercises.
  for (int k = 0; k < 12; ++k) {
    const SimTime on = msec(500) + k * sec(std::int64_t{1});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.95); });
    bed.sim().schedule_at(on + msec(300), [&host, vm] { host.clear_memory_activity(vm); });
  }

  // 4.65 s is inside burst #4 (4.5 s – 4.8 s): lock duty active, and drops
  // from earlier bursts have RTO timers pending (minimum RTO is 1 s).
  bed.sim().run_until(msec(4650));
  ASSERT_GT(bed.clients().dropped_attempts(), 0)
      << "scenario must have drops before the snapshot so RTO timers are pending";
  bed.snapshot();

  const Fingerprint first = run_segment(bed, sec(std::int64_t{4}));
  EXPECT_GT(first.retransmitted, 0)
      << "segment must complete retransmissions scheduled before the snapshot";
  for (int replay = 1; replay <= 2; ++replay) {
    bed.rollback();
    expect_fingerprint_eq(first, run_segment(bed, sec(std::int64_t{4})), replay);
  }
}

TEST(SnapshotRollback, RollbackAllocatesNothingAfterTheFirstSnapshot) {
  // capture() may allocate (it builds the checkpoint buffers); rollback()
  // must not — it only truncates and copies into existing capacity. This is
  // what keeps the warm sweep path allocation-quiet no matter how many
  // cells rewind one world.
  TestbedConfig config;
  config.seed = 11;
  config.metrics = true;
  config.trace = true;
  RubbosTestbed bed(config);
  bed.start();

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  for (int k = 0; k < 8; ++k) {
    const SimTime on = msec(500) + k * sec(std::int64_t{1});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.9); });
    bed.sim().schedule_at(on + msec(300), [&host, vm] { host.clear_memory_activity(vm); });
  }
  bed.sim().run_until(msec(3650));
  bed.snapshot();

  for (int round = 0; round < 2; ++round) {
    // Diverge well past the snapshot so the rollback has real work: grown
    // series, rotated event-arena state, moved requests, advanced RNGs.
    bed.sim().run_for(sec(std::int64_t{2}));
    tests::ScopedAllocationCounter counter;
    bed.rollback();
    EXPECT_EQ(counter.count(), 0) << "round " << round;
  }
}

// -- batched tier drain vs checkpointing ------------------------------------
//
// Tier throughput counters are accumulated in batch-pending cells and only
// settled when a same-instant completion batch ends (Simulator::
// batch_continues). These tests pin the contract that makes that safe to
// checkpoint: pendings are provably zero between events, accessor reads are
// exact at any instant, and the SoA request arena (the hot lanes behind the
// batch) round-trips through capture/restore byte for byte.

queueing::Request* submit_one(queueing::NTierSystem& system, queueing::Request::Id id,
                              std::vector<double> demand) {
  queueing::Request* req = system.acquire();
  req->id = id;
  req->demand_us = std::move(demand);
  return system.submit(req) ? req : nullptr;
}

TEST(BatchDrain, CountersExactWhenObservedAtTheBatchInstant) {
  // Eight equal-demand requests start together, so their completions all
  // land on one instant as one batch. An untagged observer event at that
  // same instant must interleave with fully settled counters: the batch
  // hint is recomputed per fired event, so the member just before the
  // observer flushes.
  Simulator sim;
  queueing::NTierSystem system(sim, {{"solo", 32, 8}});
  for (int i = 0; i < 8; ++i) ASSERT_NE(submit_one(system, i, {100.0}), nullptr);
  std::int64_t seen_completed = -1;
  queueing::TierServer::Snapshot mid;  // capture CHECKs pendings are zero
  sim.schedule_at(usec(100), [&] {
    seen_completed = system.tier(0).completed();
    system.tier(0).capture(mid);
  });
  sim.run_all();
  EXPECT_EQ(seen_completed, 8);
  EXPECT_EQ(mid.completed, 8);
  EXPECT_EQ(system.completed(), 8);
}

TEST(BatchDrain, DropRetransmitCrossingTheBatchBoundary) {
  // A front-tier drop fires at the same instant as (and just before) a
  // same-instant completion batch: the drop's counter flush must not be
  // deferred by the upcoming batch, and the retransmission must complete
  // against the post-batch world. This is the drop→retransmit round trip
  // the client RTO path performs, compressed onto one batch edge.
  Simulator sim;
  queueing::NTierSystem system(sim, {{"solo", 2, 2}});
  std::int64_t drops_seen_rejected = -1;
  bool retransmitted = false;
  system.set_on_drop([&](const queueing::Request& r) {
    // Mid-instant read, ahead of the batch: the rejection is visible now.
    drops_seen_rejected = system.tier(0).rejected();
    const queueing::Request::Id id = r.id;
    sim.schedule_in(msec(1), [&, id] {
      retransmitted = true;
      queueing::Request* retry = system.acquire();
      retry->id = id;
      retry->set_attempt(1);
      retry->demand_us = {200.0};
      EXPECT_TRUE(system.submit(retry));
    });
  });
  // Scheduled first: fires ahead of the two completions due at 500 us,
  // while both threads are still held -> rejected, then retransmitted.
  sim.schedule_at(usec(500), [&] { submit_one(system, 99, {200.0}); });
  ASSERT_NE(submit_one(system, 1, {500.0}), nullptr);
  ASSERT_NE(submit_one(system, 2, {500.0}), nullptr);
  sim.run_all();
  EXPECT_EQ(drops_seen_rejected, 1);
  EXPECT_TRUE(retransmitted);
  EXPECT_EQ(system.completed(), 3);
  EXPECT_EQ(system.dropped(), 1);
  EXPECT_EQ(system.in_flight(), 0);
  EXPECT_EQ(system.tier(0).offered(), 4);
  EXPECT_EQ(system.tier(0).admitted(), 3);
}

TEST(BatchDrain, ArenaLanesRoundTripThroughSnapshot) {
  // The request arena's hot lanes (timestamps, attempt, state, per-tier
  // stamps) are part of the pool snapshot; a rollback must restore every
  // lane exactly, including for requests that were mid-flight at capture.
  Simulator sim;
  queueing::NTierSystem system(sim, {{"front", 8, 2}, {"back", 4, 1}});
  for (int i = 0; i < 4; ++i) {
    queueing::Request* req = system.acquire();
    req->id = i + 1;
    req->set_attempt(i);
    req->set_first_sent(sim.now());
    req->set_sent(sim.now());
    req->demand_us = {100.0, 10000.0};
    ASSERT_TRUE(system.submit(req));
  }
  sim.run_until(usec(300));  // front services done, requests resident in back

  queueing::NTierSystem::Snapshot world;
  Simulator::Snapshot events;
  system.capture(world);
  sim.capture(events);
  const queueing::RequestHotArena& hot = system.pool().hot();
  std::vector<std::int32_t> attempts;
  std::vector<queueing::TierTrace> stamps;
  for (std::uint32_t s = 0; s < system.pool().slots(); ++s) {
    attempts.push_back(hot.attempt(s));
    for (std::size_t t = 0; t < hot.depth(); ++t) stamps.push_back(hot.stamp(s, t));
  }

  sim.run_for(sec(std::int64_t{1}));  // diverge: everything completes
  EXPECT_EQ(system.in_flight(), 0);
  sim.restore(events);
  system.restore(world);

  EXPECT_EQ(system.in_flight(), 4);
  for (std::uint32_t s = 0; s < system.pool().slots(); ++s) {
    EXPECT_EQ(hot.attempt(s), attempts[s]) << "slot " << s;
    for (std::size_t t = 0; t < hot.depth(); ++t) {
      const queueing::TierTrace& now = hot.stamp(s, t);
      const queueing::TierTrace& then = stamps[s * hot.depth() + t];
      EXPECT_EQ(now.enter, then.enter) << "slot " << s << " tier " << t;
      EXPECT_EQ(now.service_start, then.service_start) << "slot " << s << " tier " << t;
      EXPECT_EQ(now.leave, then.leave) << "slot " << s << " tier " << t;
    }
  }
  // The rewound world must drain to the same totals as the first pass.
  sim.run_all();
  EXPECT_EQ(system.completed(), 4);
}

}  // namespace
}  // namespace memca::testbed
