#include "support/counting_alloc.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::int64_t> g_allocations{0};

inline void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace memca::tests {

void set_allocation_counting(bool on) {
  g_counting.store(on, std::memory_order_relaxed);
}

void reset_allocation_count() { g_allocations.store(0, std::memory_order_relaxed); }

std::int64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace memca::tests
