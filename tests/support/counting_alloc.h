// Process-global heap-allocation counter shared by the zero-allocation
// tests (steady-state request path, snapshot rollback).
//
// The replaceable global operator new/delete can be defined exactly once
// per binary, so the counting forwarders live here (counting_alloc.cpp)
// and every test that wants an armed window uses this interface instead of
// defining its own override. The counter is inert unless armed, so linking
// this into memca_tests costs the rest of the suite one relaxed atomic
// load per allocation.
#pragma once

#include <cstdint>

namespace memca::tests {

/// Arms/disarms counting. While armed, every global operator new (scalar
/// and array) increments the counter.
void set_allocation_counting(bool on);
/// Resets the counter to zero.
void reset_allocation_count();
/// Allocations observed while armed since the last reset.
std::int64_t allocation_count();

/// RAII armed window: resets the counter and counts until destruction.
class ScopedAllocationCounter {
 public:
  ScopedAllocationCounter() {
    reset_allocation_count();
    set_allocation_counting(true);
  }
  ~ScopedAllocationCounter() { set_allocation_counting(false); }
  ScopedAllocationCounter(const ScopedAllocationCounter&) = delete;
  ScopedAllocationCounter& operator=(const ScopedAllocationCounter&) = delete;

  std::int64_t count() const { return allocation_count(); }
};

}  // namespace memca::tests
