#include "common/windowed_quantile.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace memca {
namespace {

TEST(WindowedQuantile, EmptyReturnsZero) {
  WindowedQuantile wq(sec(std::int64_t{1}), 5);
  EXPECT_EQ(wq.quantile(0, 0.95), 0);
  EXPECT_EQ(wq.count(0), 0);
}

TEST(WindowedQuantile, SingleWindowBasics) {
  WindowedQuantile wq(sec(std::int64_t{1}), 5);
  for (int i = 0; i < 100; ++i) wq.record(msec(10 * i), msec(i < 95 ? 10 : 2000));
  EXPECT_EQ(wq.count(msec(990)), 100);
  EXPECT_GE(wq.quantile(msec(990), 0.99), sec(std::int64_t{1}));
  EXPECT_LT(wq.quantile(msec(990), 0.50), msec(20));
}

TEST(WindowedQuantile, OldWindowsExpire) {
  WindowedQuantile wq(sec(std::int64_t{1}), 3);
  wq.record(0, sec(std::int64_t{5}));  // a spike in window 0
  EXPECT_GE(wq.quantile(msec(100), 1.0), sec(std::int64_t{5}));
  // Still retained at t = 2.5 s (window 0 within the last 3 windows).
  wq.record(sec(0.5) + sec(std::int64_t{2}), msec(1));
  EXPECT_GE(wq.quantile(sec(0.5) + sec(std::int64_t{2}), 1.0), sec(std::int64_t{5}));
  // Gone at t = 3.5 s.
  wq.record(sec(0.5) + sec(std::int64_t{3}), msec(1));
  EXPECT_LT(wq.quantile(sec(0.5) + sec(std::int64_t{3}), 1.0), msec(2));
}

TEST(WindowedQuantile, CountTracksRetention) {
  WindowedQuantile wq(sec(std::int64_t{1}), 2);
  wq.record(msec(100), msec(1));
  wq.record(msec(1100), msec(1));
  EXPECT_EQ(wq.count(msec(1100)), 2);
  wq.record(msec(2100), msec(1));
  // Window 0 rotated out; windows 1 and 2 remain.
  EXPECT_EQ(wq.count(msec(2100)), 2);
}

TEST(WindowedQuantile, SlotReuseClearsStaleData) {
  WindowedQuantile wq(sec(std::int64_t{1}), 2);
  for (int i = 0; i < 50; ++i) wq.record(msec(i), sec(std::int64_t{9}));
  // Jump far ahead: the ring slot for this epoch is reused and must not
  // leak the old spike.
  wq.record(sec(std::int64_t{100}), msec(5));
  EXPECT_EQ(wq.count(sec(std::int64_t{100})), 1);
  EXPECT_LT(wq.quantile(sec(std::int64_t{100}), 1.0), msec(6));
}

TEST(WindowedQuantile, MatchesGlobalHistogramWhenAllRetained) {
  WindowedQuantile wq(sec(std::int64_t{10}), 4);
  LatencyHistogram reference;
  Rng rng(5);
  SimTime now = 0;
  for (int i = 0; i < 20000; ++i) {
    now += usec(1500);  // stays within 40 s of retention
    const SimTime v = rng.exponential_time(msec(30));
    wq.record(now, v);
    reference.record(v);
  }
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(wq.quantile(now, q), reference.quantile(q)) << q;
  }
}

}  // namespace
}  // namespace memca
