#include "common/log.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace memca {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The project default keeps bench output clean.
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kWarn));
}

TEST(Log, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kDebug));
  set_log_level(LogLevel::kError);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kError));
}

TEST(Log, StreamingMacroDoesNotCrashAtAnyLevel) {
  LogLevelGuard guard;
  for (LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError}) {
    set_log_level(level);
    MEMCA_LOG(kDebug) << "debug " << 1;
    MEMCA_LOG(kInfo) << "info " << 2.5;
    MEMCA_LOG(kWarn) << "warn " << "text";
    MEMCA_LOG(kError) << "error";
  }
}

TEST(Log, FilteredMessagesAreSuppressed) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Captures stderr around a filtered and an emitted message.
  testing::internal::CaptureStderr();
  log_message(LogLevel::kInfo, "should not appear");
  log_message(LogLevel::kError, "should appear");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("should appear"), std::string::npos);
  EXPECT_NE(err.find("[ERROR]"), std::string::npos);
}

TEST(Log, SinkReceivesMessagesInsteadOfStderr) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  std::vector<std::pair<LogLevel, std::string>> seen;
  set_log_sink([&seen](LogLevel level, const std::string& message) {
    seen.emplace_back(level, message);
  });
  testing::internal::CaptureStderr();
  log_message(LogLevel::kWarn, "to the sink");
  log_message(LogLevel::kDebug, "filtered before the sink");
  set_log_sink(nullptr);
  log_message(LogLevel::kWarn, "back to stderr");
  const std::string err = testing::internal::GetCapturedStderr();

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(static_cast<int>(seen[0].first), static_cast<int>(LogLevel::kWarn));
  EXPECT_EQ(seen[0].second, "to the sink");
  EXPECT_EQ(err.find("to the sink"), std::string::npos);
  EXPECT_NE(err.find("back to stderr"), std::string::npos);
}

TEST(Log, ScopedLogCounterTalliesWarningsAndErrors) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  // Swallow output while counting.
  set_log_sink([](LogLevel, const std::string&) {});
  {
    ScopedLogCounter outer;
    log_message(LogLevel::kWarn, "w1");
    {
      // Nested scopes each see the lines emitted while they are alive.
      ScopedLogCounter inner;
      log_message(LogLevel::kWarn, "w2");
      log_message(LogLevel::kError, "e1");
      log_message(LogLevel::kInfo, "filtered: not counted");
      EXPECT_EQ(inner.warnings(), 1);
      EXPECT_EQ(inner.errors(), 1);
    }
    log_message(LogLevel::kError, "e2");
    EXPECT_EQ(outer.warnings(), 2);
    EXPECT_EQ(outer.errors(), 2);
  }
  set_log_sink(nullptr);
}

TEST(Log, ScopedLogCounterIgnoresFilteredLines) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  set_log_sink([](LogLevel, const std::string&) {});
  ScopedLogCounter counter;
  log_message(LogLevel::kWarn, "filtered by level");
  log_message(LogLevel::kError, "counted");
  EXPECT_EQ(counter.warnings(), 0);
  EXPECT_EQ(counter.errors(), 1);
  set_log_sink(nullptr);
}

}  // namespace
}  // namespace memca
