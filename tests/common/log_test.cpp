#include "common/log.h"

#include <gtest/gtest.h>

namespace memca {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The project default keeps bench output clean.
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kWarn));
}

TEST(Log, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kDebug));
  set_log_level(LogLevel::kError);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kError));
}

TEST(Log, StreamingMacroDoesNotCrashAtAnyLevel) {
  LogLevelGuard guard;
  for (LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError}) {
    set_log_level(level);
    MEMCA_LOG(kDebug) << "debug " << 1;
    MEMCA_LOG(kInfo) << "info " << 2.5;
    MEMCA_LOG(kWarn) << "warn " << "text";
    MEMCA_LOG(kError) << "error";
  }
}

TEST(Log, FilteredMessagesAreSuppressed) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Captures stderr around a filtered and an emitted message.
  testing::internal::CaptureStderr();
  log_message(LogLevel::kInfo, "should not appear");
  log_message(LogLevel::kError, "should appear");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("should appear"), std::string::npos);
  EXPECT_NE(err.find("[ERROR]"), std::string::npos);
}

}  // namespace
}  // namespace memca
