#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace memca {
namespace {

TEST(Table, AlignedOutputContainsHeadersAndCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(std::int64_t{42}), "42");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, Banner) {
  std::ostringstream os;
  print_banner(os, "Figure 2");
  EXPECT_NE(os.str().find("== Figure 2 =="), std::string::npos);
}

}  // namespace
}  // namespace memca
