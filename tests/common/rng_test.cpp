#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace memca {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng root(7);
  Rng a = root.fork("clients");
  Rng b = Rng(7).fork("clients");
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, ForkLabelsAreIndependent) {
  Rng root(7);
  Rng a = root.fork("clients");
  Rng b = root.fork("prober");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(9);
  Rng b(9);
  (void)a.fork("x");
  (void)a.fork("y");
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversEndpoints) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, ExponentialTimeMeanConverges) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.exponential_time(msec(10)));
  EXPECT_NEAR(sum / n, static_cast<double>(msec(10)), 300.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, NormalZeroStddevIsDeterministic) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
}

TEST(Rng, ChanceProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(4.0));
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(19);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.01);
}

TEST(Rng, WeightedIndexSingleWeight) {
  Rng rng(1);
  EXPECT_EQ(rng.weighted_index({5.0}), 0u);
}

// Exact Zipf CDF over ranks [0, n): P(rank <= k) with p(k) ~ (k+1)^-theta.
std::vector<double> exact_zipf_cdf(double theta, std::uint64_t n) {
  const double zetan = FastZipf::compute_zetan(theta, n);
  std::vector<double> cdf(n, 0.0);
  double acc = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    acc += std::pow(1.0 / static_cast<double>(k + 1), theta) / zetan;
    cdf[k] = acc;
  }
  return cdf;
}

/// Largest |empirical - exact| CDF deviation over all ranks (KS statistic).
double zipf_ks_statistic(double theta, std::uint64_t n, int draws) {
  FastZipf zipf(theta, n);
  Rng rng(12345);
  std::vector<double> counts(n, 0.0);
  for (int i = 0; i < draws; ++i) counts[zipf(rng)] += 1.0;
  const std::vector<double> exact = exact_zipf_cdf(theta, n);
  double acc = 0.0;
  double worst = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    acc += counts[k] / draws;
    worst = std::max(worst, std::abs(acc - exact[k]));
  }
  return worst;
}

TEST(FastZipf, MatchesExactCdfAcrossSkews) {
  // Gray et al.'s construction is exact for the two hottest ranks and a
  // continuous-power approximation beyond. The approximation carries a
  // deterministic bias at early ranks that grows with skew (measured KS vs
  // the exact CDF at n=100: ~0.001 at theta 0, ~0.006 at 0.5, ~0.016 at
  // 0.99 — stable under more draws, so bias, not noise). The bounds pin
  // that today's error survives refactors; sampling noise at 200k draws is
  // ~0.003.
  EXPECT_LT(zipf_ks_statistic(0.0, 100, 200000), 0.005);
  EXPECT_LT(zipf_ks_statistic(0.5, 100, 200000), 0.010);
  EXPECT_LT(zipf_ks_statistic(0.99, 100, 200000), 0.020);
}

TEST(FastZipf, HottestRanksMatchExactMass) {
  const double theta = 0.99;
  const std::uint64_t n = 1000;
  FastZipf zipf(theta, n);
  const double zetan = zipf.zetan();
  Rng rng(7);
  const int draws = 400000;
  int rank0 = 0;
  int rank1 = 0;
  for (int i = 0; i < draws; ++i) {
    const auto r = zipf(rng);
    rank0 += r == 0;
    rank1 += r == 1;
  }
  EXPECT_NEAR(static_cast<double>(rank0) / draws, 1.0 / zetan, 0.005);
  EXPECT_NEAR(static_cast<double>(rank1) / draws, std::pow(0.5, theta) / zetan, 0.005);
}

TEST(FastZipf, ZeroThetaIsUniform) {
  FastZipf zipf(0.0, 8);
  Rng rng(3);
  std::vector<int> counts(8, 0);
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) ++counts[zipf(rng)];
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / draws, 1.0 / 8.0, 0.01);
  }
}

TEST(FastZipf, StatelessAndDeterministic) {
  FastZipf zipf(0.9, 2048);
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf(a), zipf(b));
  }
}

TEST(FastZipf, PrecomputedZetanMatches) {
  const double zetan = FastZipf::compute_zetan(0.7, 512);
  FastZipf plain(0.7, 512);
  FastZipf shared(0.7, 512, zetan);
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(plain(a), shared(b));
  }
}

TEST(FastZipf, SingleRecordAlwaysRankZero) {
  FastZipf zipf(0.5, 1);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(zipf(rng), 0u);
  }
}

TEST(Rng, SplitMix64Avalanche) {
  std::uint64_t s1 = 1;
  std::uint64_t s2 = 2;
  const auto a = splitmix64(s1);
  const auto b = splitmix64(s2);
  EXPECT_NE(a, b);
  // Nearby seeds should differ in roughly half the bits.
  const int bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

}  // namespace
}  // namespace memca
