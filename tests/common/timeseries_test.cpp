#include "common/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>

namespace memca {
namespace {

TEST(TimeSeries, EmptyDefaults) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max(), 0.0);
}

TEST(TimeSeries, AppendAndBasicStats) {
  TimeSeries ts;
  ts.append(0, 1.0);
  ts.append(msec(10), 3.0);
  ts.append(msec(20), 2.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.mean(), 2.0);
  EXPECT_DOUBLE_EQ(ts.max(), 3.0);
  EXPECT_EQ(ts.front().time, 0);
  EXPECT_EQ(ts.back().time, msec(20));
}

TEST(TimeSeries, MaxHandlesNegativeValues) {
  TimeSeries ts;
  ts.append(0, -5.0);
  ts.append(1, -2.0);
  EXPECT_DOUBLE_EQ(ts.max(), -2.0);
}

TEST(TimeSeries, WindowedStats) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.append(msec(i * 10), static_cast<double>(i));
  EXPECT_DOUBLE_EQ(ts.mean_in(msec(20), msec(50)), 3.0);  // samples 2,3,4
  EXPECT_DOUBLE_EQ(ts.max_in(msec(20), msec(50)), 4.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(msec(500), msec(600)), 0.0);
  EXPECT_DOUBLE_EQ(ts.max_in(msec(500), msec(600)), 0.0);
}

TEST(TimeSeries, CountAbove) {
  TimeSeries ts;
  ts.append(0, 0.5);
  ts.append(1, 0.9);
  ts.append(2, 0.95);
  EXPECT_EQ(ts.count_above(0.85), 2u);
  EXPECT_EQ(ts.count_above(1.0), 0u);
}

TEST(TimeSeries, ResampleMeanBuckets) {
  TimeSeries ts;
  // Two samples in the first 100 ms window, one in the second.
  ts.append(msec(10), 2.0);
  ts.append(msec(60), 4.0);
  ts.append(msec(150), 10.0);
  const TimeSeries coarse = ts.resample_mean(msec(100));
  ASSERT_EQ(coarse.size(), 2u);
  EXPECT_EQ(coarse.samples()[0].time, 0);
  EXPECT_DOUBLE_EQ(coarse.samples()[0].value, 3.0);
  EXPECT_EQ(coarse.samples()[1].time, msec(100));
  EXPECT_DOUBLE_EQ(coarse.samples()[1].value, 10.0);
}

TEST(TimeSeries, ResampleMaxBuckets) {
  TimeSeries ts;
  ts.append(msec(10), 2.0);
  ts.append(msec(60), 4.0);
  ts.append(msec(150), 1.0);
  const TimeSeries coarse = ts.resample_max(msec(100));
  ASSERT_EQ(coarse.size(), 2u);
  EXPECT_DOUBLE_EQ(coarse.samples()[0].value, 4.0);
  EXPECT_DOUBLE_EQ(coarse.samples()[1].value, 1.0);
}

TEST(TimeSeries, ResamplePreservesGlobalMean) {
  // With equal samples per bucket, the resampled mean equals the raw mean.
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) ts.append(msec(i * 10), static_cast<double>(i % 7));
  const TimeSeries coarse = ts.resample_mean(msec(100));  // 10 samples/bucket
  EXPECT_NEAR(coarse.mean(), ts.mean(), 1e-9);
}

TEST(TimeSeries, ResampleSkipsEmptyWindows) {
  TimeSeries ts;
  ts.append(msec(10), 1.0);
  ts.append(msec(510), 2.0);  // 4 empty windows between
  const TimeSeries coarse = ts.resample_mean(msec(100));
  ASSERT_EQ(coarse.size(), 2u);
  EXPECT_EQ(coarse.samples()[1].time, msec(500));
}

TEST(TimeSeries, AutocorrelationOfPeriodicSignal) {
  TimeSeries ts;
  for (int i = 0; i < 400; ++i) {
    ts.append(msec(i * 50), (i % 40) < 10 ? 1.0 : 0.0);  // period 40 samples
  }
  EXPECT_GT(ts.autocorrelation(40), 0.8);
  EXPECT_LT(ts.autocorrelation(20), 0.3);
}

TEST(TimeSeries, AutocorrelationDegenerateCases) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.autocorrelation(1), 0.0);
  ts.append(0, 5.0);
  ts.append(1, 5.0);
  ts.append(2, 5.0);
  ts.append(3, 5.0);
  EXPECT_DOUBLE_EQ(ts.autocorrelation(1), 0.0);  // zero variance
}

TEST(TimeSeries, AutocorrelationLagOneOfSmoothSignal) {
  TimeSeries ts;
  for (int i = 0; i < 200; ++i) ts.append(i, std::sin(i * 0.05));
  EXPECT_GT(ts.autocorrelation(1), 0.9);
}

TEST(TimeSeries, MergeSumAlignedSeriesSumsValues) {
  TimeSeries a;
  TimeSeries b;
  for (SimTime t : {msec(50), msec(100), msec(150)}) {
    a.append(t, 1.0);
    b.append(t, 2.0);
  }
  const TimeSeries merged = a.merge_sum(b);
  ASSERT_EQ(merged.size(), 3u);
  for (const Sample& s : merged.samples()) EXPECT_DOUBLE_EQ(s.value, 3.0);
  EXPECT_EQ(merged.samples()[1].time, msec(100));
}

TEST(TimeSeries, MergeSumInterleavesDisjointTimestamps) {
  TimeSeries a;
  a.append(msec(10), 1.0);
  a.append(msec(30), 3.0);
  TimeSeries b;
  b.append(msec(20), 2.0);
  b.append(msec(40), 4.0);
  const TimeSeries merged = a.merge_sum(b);
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(merged.samples()[i].time, msec(10 * static_cast<std::int64_t>(i) + 10));
    EXPECT_DOUBLE_EQ(merged.samples()[i].value, static_cast<double>(i + 1));
  }
}

TEST(TimeSeries, MergeSumMixedOverlap) {
  TimeSeries a;
  a.append(msec(10), 1.0);
  a.append(msec(20), 1.0);
  TimeSeries b;
  b.append(msec(20), 2.0);
  b.append(msec(30), 2.0);
  const TimeSeries merged = a.merge_sum(b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_DOUBLE_EQ(merged.samples()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(merged.samples()[1].value, 3.0);
  EXPECT_DOUBLE_EQ(merged.samples()[2].value, 2.0);
}

TEST(TimeSeries, MergeSumWithEmptyIsIdentity) {
  TimeSeries a;
  a.append(msec(10), 1.5);
  const TimeSeries empty;
  ASSERT_EQ(a.merge_sum(empty).size(), 1u);
  EXPECT_DOUBLE_EQ(a.merge_sum(empty).samples()[0].value, 1.5);
  ASSERT_EQ(empty.merge_sum(a).size(), 1u);
  EXPECT_DOUBLE_EQ(empty.merge_sum(a).samples()[0].value, 1.5);
  EXPECT_TRUE(empty.merge_sum(empty).empty());
}

}  // namespace
}  // namespace memca
