#include "common/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>

namespace memca {
namespace {

TEST(TimeSeries, EmptyDefaults) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max(), 0.0);
}

TEST(TimeSeries, AppendAndBasicStats) {
  TimeSeries ts;
  ts.append(0, 1.0);
  ts.append(msec(10), 3.0);
  ts.append(msec(20), 2.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.mean(), 2.0);
  EXPECT_DOUBLE_EQ(ts.max(), 3.0);
  EXPECT_EQ(ts.front().time, 0);
  EXPECT_EQ(ts.back().time, msec(20));
}

TEST(TimeSeries, MaxHandlesNegativeValues) {
  TimeSeries ts;
  ts.append(0, -5.0);
  ts.append(1, -2.0);
  EXPECT_DOUBLE_EQ(ts.max(), -2.0);
}

TEST(TimeSeries, WindowedStats) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.append(msec(i * 10), static_cast<double>(i));
  EXPECT_DOUBLE_EQ(ts.mean_in(msec(20), msec(50)), 3.0);  // samples 2,3,4
  EXPECT_DOUBLE_EQ(ts.max_in(msec(20), msec(50)), 4.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(msec(500), msec(600)), 0.0);
  EXPECT_DOUBLE_EQ(ts.max_in(msec(500), msec(600)), 0.0);
}

TEST(TimeSeries, CountAbove) {
  TimeSeries ts;
  ts.append(0, 0.5);
  ts.append(1, 0.9);
  ts.append(2, 0.95);
  EXPECT_EQ(ts.count_above(0.85), 2u);
  EXPECT_EQ(ts.count_above(1.0), 0u);
}

TEST(TimeSeries, ResampleMeanBuckets) {
  TimeSeries ts;
  // Two samples in the first 100 ms window, one in the second.
  ts.append(msec(10), 2.0);
  ts.append(msec(60), 4.0);
  ts.append(msec(150), 10.0);
  const TimeSeries coarse = ts.resample_mean(msec(100));
  ASSERT_EQ(coarse.size(), 2u);
  EXPECT_EQ(coarse.samples()[0].time, 0);
  EXPECT_DOUBLE_EQ(coarse.samples()[0].value, 3.0);
  EXPECT_EQ(coarse.samples()[1].time, msec(100));
  EXPECT_DOUBLE_EQ(coarse.samples()[1].value, 10.0);
}

TEST(TimeSeries, ResampleMaxBuckets) {
  TimeSeries ts;
  ts.append(msec(10), 2.0);
  ts.append(msec(60), 4.0);
  ts.append(msec(150), 1.0);
  const TimeSeries coarse = ts.resample_max(msec(100));
  ASSERT_EQ(coarse.size(), 2u);
  EXPECT_DOUBLE_EQ(coarse.samples()[0].value, 4.0);
  EXPECT_DOUBLE_EQ(coarse.samples()[1].value, 1.0);
}

TEST(TimeSeries, ResamplePreservesGlobalMean) {
  // With equal samples per bucket, the resampled mean equals the raw mean.
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) ts.append(msec(i * 10), static_cast<double>(i % 7));
  const TimeSeries coarse = ts.resample_mean(msec(100));  // 10 samples/bucket
  EXPECT_NEAR(coarse.mean(), ts.mean(), 1e-9);
}

TEST(TimeSeries, ResampleSkipsEmptyWindows) {
  TimeSeries ts;
  ts.append(msec(10), 1.0);
  ts.append(msec(510), 2.0);  // 4 empty windows between
  const TimeSeries coarse = ts.resample_mean(msec(100));
  ASSERT_EQ(coarse.size(), 2u);
  EXPECT_EQ(coarse.samples()[1].time, msec(500));
}

TEST(TimeSeries, AutocorrelationOfPeriodicSignal) {
  TimeSeries ts;
  for (int i = 0; i < 400; ++i) {
    ts.append(msec(i * 50), (i % 40) < 10 ? 1.0 : 0.0);  // period 40 samples
  }
  EXPECT_GT(ts.autocorrelation(40), 0.8);
  EXPECT_LT(ts.autocorrelation(20), 0.3);
}

TEST(TimeSeries, AutocorrelationDegenerateCases) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.autocorrelation(1), 0.0);
  ts.append(0, 5.0);
  ts.append(1, 5.0);
  ts.append(2, 5.0);
  ts.append(3, 5.0);
  EXPECT_DOUBLE_EQ(ts.autocorrelation(1), 0.0);  // zero variance
}

TEST(TimeSeries, AutocorrelationLagOneOfSmoothSignal) {
  TimeSeries ts;
  for (int i = 0; i < 200; ++i) ts.append(i, std::sin(i * 0.05));
  EXPECT_GT(ts.autocorrelation(1), 0.9);
}

}  // namespace
}  // namespace memca
