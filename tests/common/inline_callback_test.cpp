#include "common/inline_callback.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

namespace memca {
namespace {

TEST(InlineCallback, DefaultIsEmpty) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.is_inline());
}

TEST(InlineCallback, SmallLambdaStoresInline) {
  int count = 0;
  InlineCallback cb([&count] { ++count; });
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.is_inline());
  cb();
  cb();
  EXPECT_EQ(count, 2);
}

TEST(InlineCallback, CaptureAtInlineLimitStaysInline) {
  std::array<char, InlineCallback::kInlineSize> payload{};
  payload[0] = 7;
  char sink = 0;
  // Capturing the array by value plus nothing else would exceed the limit
  // with the sink pointer; capture exactly the array into a static-sink
  // callable sized at the boundary instead.
  struct AtLimit {
    std::array<char, InlineCallback::kInlineSize - sizeof(char*)> data;
    char* out;
    void operator()() { *out = data[0]; }
  };
  static_assert(sizeof(AtLimit) <= InlineCallback::kInlineSize);
  AtLimit fn{{}, &sink};
  fn.data[0] = 7;
  InlineCallback cb(fn);
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(sink, 7);
}

TEST(InlineCallback, LargeCaptureFallsBackToHeap) {
  std::array<char, 128> big{};
  big[100] = 42;
  char seen = 0;
  InlineCallback cb([big, &seen] { seen = big[100]; });
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(seen, 42);
}

TEST(InlineCallback, MoveOnlyCallable) {
  auto owned = std::make_unique<int>(5);
  int seen = 0;
  InlineCallback cb([owned = std::move(owned), &seen] { seen = *owned; });
  cb();
  EXPECT_EQ(seen, 5);
}

TEST(InlineCallback, MoveConstructionTransfersInlinePayload) {
  int count = 0;
  InlineCallback a([&count] { ++count; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): moved-from state is defined
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(count, 1);
}

TEST(InlineCallback, MoveConstructionTransfersHeapPayload) {
  std::array<char, 128> big{};
  big[0] = 9;
  char seen = 0;
  InlineCallback a([big, &seen] { seen = big[0]; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(b.is_inline());
  b();
  EXPECT_EQ(seen, 9);
}

struct DtorCounter {
  int* destroyed;
  DtorCounter(int* d) : destroyed(d) {}
  DtorCounter(DtorCounter&& other) noexcept : destroyed(other.destroyed) {
    other.destroyed = nullptr;
  }
  ~DtorCounter() {
    if (destroyed != nullptr) ++*destroyed;
  }
  void operator()() {}
};

TEST(InlineCallback, DestructorRunsPayloadDestructor) {
  int destroyed = 0;
  {
    InlineCallback cb{DtorCounter(&destroyed)};
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineCallback, MoveAssignmentDestroysPreviousPayload) {
  int first = 0;
  int second = 0;
  InlineCallback cb{DtorCounter(&first)};
  cb = InlineCallback(DtorCounter(&second));
  EXPECT_EQ(first, 1);   // replaced payload destroyed by the assignment
  EXPECT_EQ(second, 0);  // new payload alive inside cb
  cb = InlineCallback();
  EXPECT_EQ(second, 1);
}

TEST(InlineCallback, ReassignedCallableIsTheOneInvoked) {
  int a = 0;
  int b = 0;
  InlineCallback cb([&a] { ++a; });
  cb = InlineCallback([&b] { ++b; });
  cb();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
}

TEST(InlineCallback, FunctionPointerWorks) {
  static int calls;
  calls = 0;
  InlineCallback cb(+[] { ++calls; });
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace memca
