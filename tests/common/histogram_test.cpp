#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace memca {
namespace {

TEST(LatencyHistogram, EmptyState) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.record(msec(5));
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), msec(5));
  EXPECT_EQ(h.max(), msec(5));
  // 1.6% relative bucket resolution.
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), static_cast<double>(msec(5)),
              0.02 * static_cast<double>(msec(5)));
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (SimTime v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(1.0), 63);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 63);
}

TEST(LatencyHistogram, NegativeClampedToZero) {
  LatencyHistogram h;
  h.record(-100);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.quantile(1.0), 0);
}

TEST(LatencyHistogram, QuantilesMonotone) {
  LatencyHistogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.record(rng.exponential_time(msec(20)));
  SimTime prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const SimTime v = h.quantile(q);
    EXPECT_GE(v, prev) << "quantile " << q;
    prev = v;
  }
}

TEST(LatencyHistogram, QuantileMatchesExactWithinResolution) {
  LatencyHistogram h;
  std::vector<SimTime> values;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const SimTime v = rng.exponential_time(msec(50));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
    const double exact = static_cast<double>(values[idx]);
    const double approx = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(approx, exact, 0.05 * exact + 2.0) << "q=" << q;
  }
}

TEST(LatencyHistogram, MeanApproximation) {
  LatencyHistogram h;
  double exact_sum = 0.0;
  Rng rng(9);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const SimTime v = rng.exponential_time(msec(10));
    exact_sum += static_cast<double>(v);
    h.record(v);
  }
  EXPECT_NEAR(h.mean(), exact_sum / n, 0.01 * exact_sum / n);
}

TEST(LatencyHistogram, RecordNEquivalentToLoop) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record_n(msec(3), 5);
  for (int i = 0; i < 5; ++i) b.record(msec(3));
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const SimTime v = rng.exponential_time(msec(5));
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), combined.quantile(q));
  }
}

TEST(LatencyHistogram, MergeIntoEmpty) {
  LatencyHistogram a;
  LatencyHistogram b;
  b.record(msec(7));
  a.merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.max(), msec(7));
}

TEST(LatencyHistogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.record(msec(3));
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile(0.99), 0);
}

TEST(LatencyHistogram, FractionAbove) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(msec(10));
  for (int i = 0; i < 10; ++i) h.record(sec(std::int64_t{2}));
  EXPECT_NEAR(h.fraction_above(sec(std::int64_t{1})), 0.10, 0.001);
  EXPECT_NEAR(h.fraction_above(0), 1.0, 0.001);
  EXPECT_DOUBLE_EQ(h.fraction_above(sec(std::int64_t{3})), 0.0);
}

TEST(LatencyHistogram, MaxQuantileNeverExceedsMax) {
  LatencyHistogram h;
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) h.record(rng.exponential_time(sec(std::int64_t{1})));
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_GE(h.quantile(1.0), static_cast<SimTime>(0.98 * static_cast<double>(h.max())));
}

TEST(LatencyHistogram, HugeValuesClampToLastBucket) {
  LatencyHistogram h;
  h.record(std::int64_t{1} << 50);  // beyond representable range
  EXPECT_EQ(h.count(), 1);
  EXPECT_GT(h.quantile(1.0), 0);
}

class HistogramQuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(HistogramQuantileSweep, RelativeErrorBounded) {
  const double q = GetParam();
  LatencyHistogram h;
  std::vector<SimTime> values;
  Rng rng(31);
  for (int i = 0; i < 50000; ++i) {
    // Log-uniform values across 5 decades stress all bucket widths.
    const double exponent = rng.uniform(1.0, 6.0);
    const auto v = static_cast<SimTime>(std::pow(10.0, exponent));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  const double exact = static_cast<double>(values[idx]);
  const double approx = static_cast<double>(h.quantile(q));
  EXPECT_NEAR(approx / exact, 1.0, 0.05) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, HistogramQuantileSweep,
                         ::testing::Values(0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999));

}  // namespace
}  // namespace memca
