#include "common/time.h"

#include <gtest/gtest.h>

namespace memca {
namespace {

TEST(Time, UnitBuilders) {
  EXPECT_EQ(usec(5), 5);
  EXPECT_EQ(msec(5), 5000);
  EXPECT_EQ(sec(std::int64_t{5}), 5000000);
  EXPECT_EQ(kMinute, 60 * kSecond);
}

TEST(Time, FractionalSeconds) {
  EXPECT_EQ(sec(0.5), 500000);
  EXPECT_EQ(sec(0.0000015), 2);  // rounds to nearest microsecond
  EXPECT_EQ(sec(-0.5), -500000);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(msec(250)), 250.0);
  EXPECT_DOUBLE_EQ(to_seconds(msec(1500)), 1.5);
}

TEST(Time, FormatPicksUnit) {
  EXPECT_EQ(format_time(sec(std::int64_t{2})), "2.000s");
  EXPECT_EQ(format_time(msec(250)), "250.00ms");
  EXPECT_EQ(format_time(usec(42)), "42us");
}

TEST(Time, RoundTrip) {
  for (SimTime t : {usec(1), msec(3), sec(std::int64_t{7}), kMinute}) {
    EXPECT_EQ(sec(to_seconds(t)), t);
  }
}

}  // namespace
}  // namespace memca
