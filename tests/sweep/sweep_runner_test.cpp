#include "sweep/sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sweep/thread_pool.h"

namespace memca::sweep {
namespace {

TEST(ThreadPool, RunsEveryPostedJob) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.post([&done] { done.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.post([&done] { done.fetch_add(1); });
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(DefaultThreadCount, IsPositive) { EXPECT_GE(default_thread_count(), 1); }

TEST(SweepRunner, ResultsArriveInCellOrder) {
  // Give earlier cells longer work so they finish last: order must still be
  // by cell index, not completion.
  SweepRunner runner({4});
  std::vector<std::function<int()>> cells;
  for (int i = 0; i < 8; ++i) {
    cells.push_back([i] {
      std::this_thread::sleep_for(std::chrono::milliseconds((8 - i) * 5));
      return i * 10;
    });
  }
  const std::vector<int> results = runner.run(std::move(cells));
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 10);
}

TEST(SweepRunner, SingleThreadRunsInline) {
  SweepRunner runner({1});
  EXPECT_EQ(runner.threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::function<std::thread::id()>> cells;
  for (int i = 0; i < 3; ++i) {
    cells.push_back([] { return std::this_thread::get_id(); });
  }
  for (std::thread::id id : runner.run(std::move(cells))) EXPECT_EQ(id, caller);
}

TEST(SweepRunner, MapPreservesOrder) {
  SweepRunner runner({4});
  const std::vector<int> inputs = {5, 3, 9, 1, 7};
  const std::vector<int> doubled = runner.map(inputs, [](int v) { return v * 2; });
  ASSERT_EQ(doubled.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) EXPECT_EQ(doubled[i], inputs[i] * 2);
}

TEST(SweepRunner, EmptyBatchReturnsEmpty) {
  SweepRunner runner({4});
  EXPECT_TRUE(runner.run(std::vector<std::function<int()>>{}).empty());
}

TEST(SweepRunner, CellExceptionPropagates) {
  SweepRunner runner({2});
  std::vector<std::function<int()>> cells;
  cells.push_back([] { return 1; });
  cells.push_back([]() -> int { throw std::runtime_error("cell failed"); });
  cells.push_back([] { return 3; });
  EXPECT_THROW(runner.run(std::move(cells)), std::runtime_error);
}

TEST(SweepRunner, FirstExceptionInCellOrderIsRethrown) {
  // Cell 5 throws first in wall-clock time (cell 1 sleeps before throwing),
  // but the error a caller sees must be the lowest-indexed one — the same
  // at every thread count.
  for (int threads : {1, 2, 4}) {
    SweepRunner runner({threads});
    std::vector<std::function<int()>> cells;
    cells.push_back([] { return 0; });
    cells.push_back([]() -> int {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      throw std::runtime_error("cell-1");
    });
    for (int i = 2; i < 5; ++i) cells.push_back([i] { return i; });
    cells.push_back([]() -> int { throw std::logic_error("cell-5"); });
    try {
      runner.run(std::move(cells));
      FAIL() << "batch with throwing cells must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "cell-1") << "threads=" << threads;
    } catch (const std::logic_error&) {
      FAIL() << "completion-order error surfaced instead of cell order, threads="
             << threads;
    }
  }
}

TEST(SweepRunner, RemainingCellsRunAfterAnException) {
  SweepRunner runner({2});
  std::atomic<int> ran{0};
  std::vector<std::function<int()>> cells;
  for (int i = 0; i < 6; ++i) {
    cells.push_back([i, &ran]() -> int {
      ran.fetch_add(1);
      if (i == 0) throw std::runtime_error("early");
      return i;
    });
  }
  EXPECT_THROW(runner.run(std::move(cells)), std::runtime_error);
  EXPECT_EQ(ran.load(), 6);
}

TEST(SweepRunner, MoveOnlyCellsRun) {
  struct MoveOnlyCell {
    std::unique_ptr<int> payload;
    int operator()() const { return *payload; }
  };
  SweepRunner runner({2});
  std::vector<MoveOnlyCell> cells;
  for (int i = 0; i < 5; ++i) cells.push_back({std::make_unique<int>(i * 7)});
  const std::vector<int> results = runner.run(std::move(cells));
  ASSERT_EQ(results.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 7);
}

TEST(SweepRunner, WorkerCacheIsBuiltOncePerWorkerChunk) {
  // 8 cells sharing one key on 2 workers: contiguous chunking means exactly
  // one build per worker — a work-stealing counter would interleave cells
  // and rebuild on every worker switch.
  std::atomic<int> builds{0};
  auto make_cells = [&builds] {
    std::vector<std::function<int(WorkerCache&)>> cells;
    for (int i = 0; i < 8; ++i) {
      cells.push_back([&builds, i](WorkerCache& cache) {
        int& world = cache.get_or_build<int>("shared-key", [&builds] {
          builds.fetch_add(1);
          return std::make_unique<int>(123);
        });
        return world + i;
      });
    }
    return cells;
  };

  builds.store(0);
  SweepRunner inline_runner({1});
  inline_runner.run(make_cells());
  EXPECT_EQ(builds.load(), 1);

  builds.store(0);
  SweepRunner pooled(SweepOptions{2});
  const std::vector<int> results = pooled.run(make_cells());
  EXPECT_EQ(builds.load(), 2);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], 123 + i);
}

TEST(SweepRunner, WorkerCacheRebuildsOnKeyChange) {
  std::atomic<int> builds{0};
  std::vector<std::function<int(WorkerCache&)>> cells;
  for (int i = 0; i < 6; ++i) {
    const std::string key = i < 3 ? "prefix-a" : "prefix-b";
    cells.push_back([&builds, key](WorkerCache& cache) {
      return cache.get_or_build<int>(key, [&builds] {
        builds.fetch_add(1);
        return std::make_unique<int>(1);
      });
    });
  }
  SweepRunner runner({1});
  runner.run(std::move(cells));
  EXPECT_EQ(builds.load(), 2);
}

TEST(SweepRunner, RngHeavyCellsAreBitIdenticalAcrossThreadCounts) {
  // Each cell runs its own forked RNG stream; the aggregate must not depend
  // on how many workers executed the batch.
  auto run_with = [](int threads) {
    SweepRunner runner({threads});
    std::vector<int> seeds(16);
    std::iota(seeds.begin(), seeds.end(), 0);
    return runner.map(seeds, [](int seed) {
      Rng rng(static_cast<std::uint64_t>(seed) + 1);
      double sum = 0.0;
      for (int i = 0; i < 10000; ++i) sum += rng.exponential(3.0);
      return sum;
    });
  };
  const std::vector<double> sequential = run_with(1);
  const std::vector<double> parallel = run_with(4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i], parallel[i]) << "cell " << i;
  }
}

}  // namespace
}  // namespace memca::sweep
