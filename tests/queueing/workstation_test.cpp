#include "queueing/workstation.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace memca::queueing {
namespace {

// The station moves opaque u32 payloads (pool-slot indices in the real
// systems); these tests use small literals.
struct Fixture {
  Simulator sim;
  std::vector<std::uint32_t> done;
  WorkStation station{sim, 2, [this](std::uint32_t p) { done.push_back(p); }};
};

TEST(WorkStation, CompletesAfterWorkDuration) {
  Fixture f;
  f.station.start(1, 1000.0);
  EXPECT_EQ(f.station.busy(), 1);
  f.sim.run_until(msec(1));
  ASSERT_EQ(f.done.size(), 1u);
  EXPECT_EQ(f.done[0], 1u);
  EXPECT_EQ(f.station.busy(), 0);
  EXPECT_EQ(f.station.completed(), 1);
}

TEST(WorkStation, ParallelWorkersIndependent) {
  Fixture f;
  f.station.start(1, 1000.0);
  f.station.start(2, 2000.0);
  EXPECT_FALSE(f.station.has_free_worker());
  f.sim.run_until(usec(1500));
  EXPECT_EQ(f.done.size(), 1u);
  f.sim.run_until(usec(2500));
  EXPECT_EQ(f.done.size(), 2u);
}

TEST(WorkStation, ZeroWorkCompletesImmediately) {
  Fixture f;
  f.station.start(1, 0.0);
  f.sim.run_until(0);
  EXPECT_EQ(f.done.size(), 1u);
}

TEST(WorkStation, HalfSpeedDoublesServiceTime) {
  Fixture f;
  f.station.set_speed(0.5);
  f.station.start(1, 1000.0);
  f.sim.run_until(usec(1999));
  EXPECT_TRUE(f.done.empty());
  f.sim.run_until(usec(2000));
  EXPECT_EQ(f.done.size(), 1u);
}

TEST(WorkStation, MidServiceSlowdownStretchesRemainder) {
  Fixture f;
  f.station.start(1, 1000.0);
  // After 500 us at speed 1, half the work remains; at speed 0.1 the rest
  // takes 5000 us -> completion at 5500 us.
  f.sim.run_until(usec(500));
  f.station.set_speed(0.1);
  f.sim.run_until(usec(5499));
  EXPECT_TRUE(f.done.empty());
  f.sim.run_until(usec(5500));
  EXPECT_EQ(f.done.size(), 1u);
}

TEST(WorkStation, MidServiceSpeedupShrinksRemainder) {
  Fixture f;
  f.station.set_speed(0.1);
  f.station.start(1, 1000.0);  // would finish at 10 ms
  f.sim.run_until(msec(5));    // 500 us of work done
  f.station.set_speed(1.0);    // remaining 500 us at full speed
  f.sim.run_until(msec(5) + usec(500));
  EXPECT_EQ(f.done.size(), 1u);
}

TEST(WorkStation, SpeedChangeAffectsAllInFlight) {
  Fixture f;
  f.station.start(1, 1000.0);
  f.station.start(2, 1000.0);
  f.station.set_speed(0.5);
  f.sim.run_until(usec(2000));
  EXPECT_EQ(f.done.size(), 2u);
}

TEST(WorkStation, RedundantSpeedChangeIsNoop) {
  Fixture f;
  f.station.start(1, 1000.0);
  f.station.set_speed(1.0);
  f.sim.run_until(usec(1000));
  EXPECT_EQ(f.done.size(), 1u);
}

TEST(WorkStation, BusyTimeIntegralTracksUtilization) {
  Fixture f;
  f.station.start(1, 1000.0);
  f.sim.run_until(msec(2));
  // 1 of 2 workers busy for 1000 us.
  EXPECT_NEAR(f.station.busy_worker_time_us(), 1000.0, 1.0);
}

TEST(WorkStation, BusyTimeIncludesOpenService) {
  Fixture f;
  f.station.start(1, 10000.0);
  f.sim.run_until(msec(4));
  EXPECT_NEAR(f.station.busy_worker_time_us(), 4000.0, 1.0);
}

TEST(WorkStation, BusyTimeUnaffectedBySpeed) {
  // A stalled (slow) worker is still a busy worker — this is why the
  // victim's CPU looks saturated during a burst.
  Fixture f;
  f.station.set_speed(0.01);
  f.station.start(1, 1000.0);
  f.sim.run_until(msec(50));
  EXPECT_NEAR(f.station.busy_worker_time_us(), 50000.0, 1.0);
}

TEST(WorkStation, CompletionCallbackSeesFreeWorker) {
  Simulator sim;
  bool free_inside = false;
  WorkStation* ptr = nullptr;
  WorkStation station(sim, 1, [&](std::uint32_t) { free_inside = ptr->has_free_worker(); });
  ptr = &station;
  station.start(1, 100.0);
  sim.run_until(msec(1));
  EXPECT_TRUE(free_inside);
}

// -- quantized grouped completions ------------------------------------------

/// Batch-mode fixture: the per-payload callback must never fire (batch mode
/// replaces it); spans are recorded with their delivery instant.
struct BatchFixture {
  Simulator sim;
  std::vector<std::pair<SimTime, std::vector<std::uint32_t>>> spans;
  WorkStation station{sim, 4, [](std::uint32_t) { FAIL() << "per-payload path in batch mode"; }};

  explicit BatchFixture(SimTime quantum) {
    station.enable_batch_completions(quantum, [this](const std::uint32_t* p, std::size_t n) {
      spans.emplace_back(sim.now(), std::vector<std::uint32_t>(p, p + n));
    });
  }
};

TEST(WorkStationBatch, CompletionInstantRoundsUpToGrid) {
  BatchFixture f(100);
  f.station.start(1, 150.0);
  f.sim.run_until(usec(199));
  EXPECT_TRUE(f.spans.empty());
  f.sim.run_until(usec(200));
  ASSERT_EQ(f.spans.size(), 1u);
  EXPECT_EQ(f.spans[0].first, usec(200));
  EXPECT_EQ(f.spans[0].second, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(f.station.completed(), 1);
}

TEST(WorkStationBatch, OnGridCompletionDoesNotStretch) {
  BatchFixture f(100);
  f.station.start(7, 300.0);
  f.sim.run_until(usec(300));
  ASSERT_EQ(f.spans.size(), 1u);
  EXPECT_EQ(f.spans[0].first, usec(300));
}

TEST(WorkStationBatch, SameQuantumServicesFireAsOneGroup) {
  BatchFixture f(100);
  f.station.start(1, 150.0);  // -> 200
  f.station.start(2, 180.0);  // -> 200
  f.station.start(3, 240.0);  // -> 300
  EXPECT_EQ(f.station.pending_groups(), 2u);
  f.sim.run_until(msec(1));
  ASSERT_EQ(f.spans.size(), 2u);
  // One span per grid instant, members in service-start order.
  EXPECT_EQ(f.spans[0].first, usec(200));
  EXPECT_EQ(f.spans[0].second, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(f.spans[1].first, usec(300));
  EXPECT_EQ(f.spans[1].second, (std::vector<std::uint32_t>{3}));
  EXPECT_EQ(f.station.pending_groups(), 0u);
  EXPECT_EQ(f.station.completed(), 3);
}

TEST(WorkStationBatch, GroupSharesOneSimulatorEvent) {
  BatchFixture f(100);
  const std::size_t before = f.sim.pending_events();
  f.station.start(1, 110.0);
  f.station.start(2, 120.0);
  f.station.start(3, 130.0);
  // All three land on the 200 us instant: one group, ONE scheduled event.
  EXPECT_EQ(f.station.pending_groups(), 1u);
  EXPECT_EQ(f.sim.pending_events(), before + 1);
  f.sim.run_until(msec(1));
  ASSERT_EQ(f.spans.size(), 1u);
  EXPECT_EQ(f.spans[0].second.size(), 3u);
}

TEST(WorkStationBatch, WorkersFreeWhenBatchCallbackRuns) {
  Simulator sim;
  WorkStation* ptr = nullptr;
  int free_inside = -1;
  WorkStation station(sim, 2, [](std::uint32_t) { FAIL(); });
  station.enable_batch_completions(100, [&](const std::uint32_t*, std::size_t) {
    free_inside = ptr->busy();
  });
  ptr = &station;
  station.start(1, 50.0);
  station.start(2, 60.0);
  sim.run_until(msec(1));
  EXPECT_EQ(free_inside, 0);
}

TEST(WorkStationBatch, SetSpeedRegroupsInFlightServices) {
  BatchFixture f(100);
  f.station.start(1, 150.0);  // raw 150 -> 200
  f.station.start(2, 180.0);  // raw 180 -> 200
  f.sim.run_until(usec(100));
  // Half speed from t=100: slot 1 has 50 us of work left (-> raw 200),
  // slot 2 has 80 (-> raw 260): the shared group splits onto 200 and 300.
  f.station.set_speed(0.5);
  EXPECT_EQ(f.station.pending_groups(), 2u);
  f.sim.run_until(msec(1));
  ASSERT_EQ(f.spans.size(), 2u);
  EXPECT_EQ(f.spans[0].first, usec(200));
  EXPECT_EQ(f.spans[0].second, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(f.spans[1].first, usec(300));
  EXPECT_EQ(f.spans[1].second, (std::vector<std::uint32_t>{2}));
}

TEST(WorkStationBatch, SetSpeedLeavesNoStaleEvents) {
  BatchFixture f(100);
  f.station.start(1, 150.0);
  f.station.start(2, 400.0);
  const std::size_t idle = 0;
  f.station.set_speed(2.0);
  f.station.set_speed(1.0);
  f.sim.run_until(msec(5));
  // Every service completed exactly once and nothing is left pending.
  std::size_t total = 0;
  for (const auto& s : f.spans) total += s.second.size();
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(f.station.pending_groups(), 0u);
  EXPECT_EQ(f.sim.pending_events(), idle);
}

TEST(WorkStationBatch, SnapshotRestoreReplaysGroupsIdentically) {
  BatchFixture f(100);
  f.station.start(1, 150.0);
  f.station.start(2, 180.0);
  f.station.start(3, 240.0);
  Simulator::Snapshot sim_snap;
  WorkStation::Snapshot st_snap;
  f.sim.capture(sim_snap);
  f.station.capture(st_snap);

  f.sim.run_until(msec(1));
  const auto first = f.spans;

  f.sim.restore(sim_snap);
  f.station.restore(st_snap);
  f.spans.clear();
  f.sim.run_until(msec(1));
  EXPECT_EQ(f.spans, first);
}

}  // namespace
}  // namespace memca::queueing
