#include "queueing/workstation.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace memca::queueing {
namespace {

// The station moves opaque u32 payloads (pool-slot indices in the real
// systems); these tests use small literals.
struct Fixture {
  Simulator sim;
  std::vector<std::uint32_t> done;
  WorkStation station{sim, 2, [this](std::uint32_t p) { done.push_back(p); }};
};

TEST(WorkStation, CompletesAfterWorkDuration) {
  Fixture f;
  f.station.start(1, 1000.0);
  EXPECT_EQ(f.station.busy(), 1);
  f.sim.run_until(msec(1));
  ASSERT_EQ(f.done.size(), 1u);
  EXPECT_EQ(f.done[0], 1u);
  EXPECT_EQ(f.station.busy(), 0);
  EXPECT_EQ(f.station.completed(), 1);
}

TEST(WorkStation, ParallelWorkersIndependent) {
  Fixture f;
  f.station.start(1, 1000.0);
  f.station.start(2, 2000.0);
  EXPECT_FALSE(f.station.has_free_worker());
  f.sim.run_until(usec(1500));
  EXPECT_EQ(f.done.size(), 1u);
  f.sim.run_until(usec(2500));
  EXPECT_EQ(f.done.size(), 2u);
}

TEST(WorkStation, ZeroWorkCompletesImmediately) {
  Fixture f;
  f.station.start(1, 0.0);
  f.sim.run_until(0);
  EXPECT_EQ(f.done.size(), 1u);
}

TEST(WorkStation, HalfSpeedDoublesServiceTime) {
  Fixture f;
  f.station.set_speed(0.5);
  f.station.start(1, 1000.0);
  f.sim.run_until(usec(1999));
  EXPECT_TRUE(f.done.empty());
  f.sim.run_until(usec(2000));
  EXPECT_EQ(f.done.size(), 1u);
}

TEST(WorkStation, MidServiceSlowdownStretchesRemainder) {
  Fixture f;
  f.station.start(1, 1000.0);
  // After 500 us at speed 1, half the work remains; at speed 0.1 the rest
  // takes 5000 us -> completion at 5500 us.
  f.sim.run_until(usec(500));
  f.station.set_speed(0.1);
  f.sim.run_until(usec(5499));
  EXPECT_TRUE(f.done.empty());
  f.sim.run_until(usec(5500));
  EXPECT_EQ(f.done.size(), 1u);
}

TEST(WorkStation, MidServiceSpeedupShrinksRemainder) {
  Fixture f;
  f.station.set_speed(0.1);
  f.station.start(1, 1000.0);  // would finish at 10 ms
  f.sim.run_until(msec(5));    // 500 us of work done
  f.station.set_speed(1.0);    // remaining 500 us at full speed
  f.sim.run_until(msec(5) + usec(500));
  EXPECT_EQ(f.done.size(), 1u);
}

TEST(WorkStation, SpeedChangeAffectsAllInFlight) {
  Fixture f;
  f.station.start(1, 1000.0);
  f.station.start(2, 1000.0);
  f.station.set_speed(0.5);
  f.sim.run_until(usec(2000));
  EXPECT_EQ(f.done.size(), 2u);
}

TEST(WorkStation, RedundantSpeedChangeIsNoop) {
  Fixture f;
  f.station.start(1, 1000.0);
  f.station.set_speed(1.0);
  f.sim.run_until(usec(1000));
  EXPECT_EQ(f.done.size(), 1u);
}

TEST(WorkStation, BusyTimeIntegralTracksUtilization) {
  Fixture f;
  f.station.start(1, 1000.0);
  f.sim.run_until(msec(2));
  // 1 of 2 workers busy for 1000 us.
  EXPECT_NEAR(f.station.busy_worker_time_us(), 1000.0, 1.0);
}

TEST(WorkStation, BusyTimeIncludesOpenService) {
  Fixture f;
  f.station.start(1, 10000.0);
  f.sim.run_until(msec(4));
  EXPECT_NEAR(f.station.busy_worker_time_us(), 4000.0, 1.0);
}

TEST(WorkStation, BusyTimeUnaffectedBySpeed) {
  // A stalled (slow) worker is still a busy worker — this is why the
  // victim's CPU looks saturated during a burst.
  Fixture f;
  f.station.set_speed(0.01);
  f.station.start(1, 1000.0);
  f.sim.run_until(msec(50));
  EXPECT_NEAR(f.station.busy_worker_time_us(), 50000.0, 1.0);
}

TEST(WorkStation, CompletionCallbackSeesFreeWorker) {
  Simulator sim;
  bool free_inside = false;
  WorkStation* ptr = nullptr;
  WorkStation station(sim, 1, [&](std::uint32_t) { free_inside = ptr->has_free_worker(); });
  ptr = &station;
  station.start(1, 100.0);
  sim.run_until(msec(1));
  EXPECT_TRUE(free_inside);
}

}  // namespace
}  // namespace memca::queueing
