// Property tests pinning the queueing substrate to textbook theory:
// an NTierSystem with one tier, one worker and an effectively infinite
// thread pool is an M/M/1 queue; with c workers it is M/M/c. Mean response
// time and queue length must match the analytic results within sampling
// tolerance — this validates service sampling, FIFO discipline, the event
// engine and the busy-time accounting all at once.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "queueing/ntier.h"
#include "test_util.h"

namespace memca::queueing {
namespace {

struct Mm1Result {
  double mean_rt_us = 0.0;
  double mean_resident = 0.0;
  double utilization = 0.0;
  std::int64_t completed = 0;
};

Mm1Result run_mmc(double lambda_per_sec, double service_mean_us, int workers,
                  SimTime duration, std::uint64_t seed) {
  Simulator sim;
  NTierSystem system(sim, {{"station", 1000000, workers}});
  Rng rng(seed);

  double rt_sum = 0.0;
  std::int64_t rt_count = 0;
  system.set_on_complete([&](const Request& r) {
    rt_sum += static_cast<double>(r.tier_time(0));
    ++rt_count;
  });

  std::int64_t next_id = 0;
  std::function<void()> arrive = [&] {
    system.submit(
        test::make_request(system.pool(), next_id++, {rng.exponential(service_mean_us)}, sim.now()));
    sim.schedule_in(static_cast<SimTime>(rng.exponential(1e6 / lambda_per_sec)), arrive);
  };
  sim.schedule_in(0, arrive);

  // Sample resident count for Little's-law checking.
  double resident_sum = 0.0;
  std::int64_t resident_samples = 0;
  PeriodicTask sampler(sim, msec(1), [&] {
    resident_sum += static_cast<double>(system.tier(0).resident());
    ++resident_samples;
  });

  sim.run_until(duration);
  Mm1Result result;
  result.mean_rt_us = rt_sum / static_cast<double>(rt_count);
  result.mean_resident = resident_sum / static_cast<double>(resident_samples);
  result.utilization = system.tier(0).busy_worker_time_us() /
                       (static_cast<double>(workers) * static_cast<double>(duration));
  result.completed = rt_count;
  return result;
}

class Mm1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Mm1Sweep, MeanResponseTimeMatchesTheory) {
  const double rho = GetParam();
  const double service_mean_us = 1000.0;  // mu = 1000/s
  const double mu = 1e6 / service_mean_us;
  const double lambda = rho * mu;
  const auto r = run_mmc(lambda, service_mean_us, 1, sec(std::int64_t{200}), 42);
  const double theory_us = service_mean_us / (1.0 - rho);  // W = 1/(mu - lambda)
  EXPECT_NEAR(r.mean_rt_us / theory_us, 1.0, 0.08) << "rho=" << rho;
}

TEST_P(Mm1Sweep, UtilizationMatchesRho) {
  const double rho = GetParam();
  const double service_mean_us = 1000.0;
  const double lambda = rho * 1e6 / service_mean_us;
  const auto r = run_mmc(lambda, service_mean_us, 1, sec(std::int64_t{100}), 7);
  EXPECT_NEAR(r.utilization, rho, 0.03) << "rho=" << rho;
}

TEST_P(Mm1Sweep, LittlesLawHolds) {
  const double rho = GetParam();
  const double service_mean_us = 1000.0;
  const double lambda_per_sec = rho * 1e6 / service_mean_us;
  const auto r = run_mmc(lambda_per_sec, service_mean_us, 1, sec(std::int64_t{200}), 11);
  // L = lambda * W (W in seconds).
  const double expected_l = lambda_per_sec * r.mean_rt_us / 1e6;
  EXPECT_NEAR(r.mean_resident / expected_l, 1.0, 0.10) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Loads, Mm1Sweep, ::testing::Values(0.3, 0.5, 0.7));

TEST(MmcQueue, TwoServersBeatOneFastViaLowerWaiting) {
  // Classic check: at equal total capacity, M/M/2 has lower mean RT than
  // M/M/1 only below moderate load... here we check the simpler property
  // that M/M/2 with the same per-server rate halves utilization.
  const auto one = run_mmc(600.0, 1000.0, 1, sec(std::int64_t{100}), 3);
  const auto two = run_mmc(600.0, 1000.0, 2, sec(std::int64_t{100}), 3);
  EXPECT_NEAR(two.utilization, one.utilization / 2.0, 0.03);
  EXPECT_LT(two.mean_rt_us, one.mean_rt_us);
}

TEST(MmcQueue, MM2ResponseTimeMatchesErlangTheory) {
  const double service_mean_us = 1000.0;
  const double mu = 1e6 / service_mean_us;  // per server
  const double lambda = 1200.0;             // rho = 0.6 with 2 servers
  const auto r = run_mmc(lambda, service_mean_us, 2, sec(std::int64_t{200}), 5);
  // M/M/c with c=2, rho=0.6: P(wait) via Erlang C, W = Pw/(c*mu - lambda) + 1/mu.
  const double rho = lambda / (2.0 * mu);
  const double a = lambda / mu;  // offered load = 1.2
  const double p0 = 1.0 / (1.0 + a + a * a / (2.0 * (1.0 - rho)));
  const double erlang_c = (a * a / (2.0 * (1.0 - rho))) * p0;
  const double w_s = erlang_c / (2.0 * mu - lambda) + 1.0 / mu;
  EXPECT_NEAR(r.mean_rt_us / (w_s * 1e6), 1.0, 0.08);
}

TEST(MmcQueue, DeterministicRerunsAreIdentical) {
  const auto a = run_mmc(500.0, 1000.0, 1, sec(std::int64_t{20}), 99);
  const auto b = run_mmc(500.0, 1000.0, 1, sec(std::int64_t{20}), 99);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.mean_rt_us, b.mean_rt_us);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

}  // namespace
}  // namespace memca::queueing
