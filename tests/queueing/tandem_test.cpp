#include "queueing/tandem.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace memca::queueing {
namespace {

using test::make_request;

struct Fixture {
  Simulator sim;
  TandemQueueSystem system{
      sim, {{"s1", 2, StationConfig::kUnbounded}, {"s2", 1, StationConfig::kUnbounded}}};
  int completed = 0;
  int dropped = 0;
  Fixture() {
    system.set_on_complete([this](const Request&) { ++completed; });
    system.set_on_drop([this](const Request&) { ++dropped; });
  }
};

TEST(TandemQueueSystem, RequestFlowsThroughStations) {
  Fixture f;
  f.system.submit(make_request(f.system.pool(), 1, {100.0, 200.0}));
  f.sim.run_all();
  EXPECT_EQ(f.completed, 1);
  EXPECT_EQ(f.system.completed(), 1);
}

TEST(TandemQueueSystem, StationResidenceExcludesDownstream) {
  // The defining difference from the n-tier model: station 1's residence
  // time does NOT include station 2's queueing.
  Fixture f;
  SimTime t0 = -1;
  SimTime t1 = -1;
  f.system.set_on_complete([&](const Request& r) {
    t0 = r.tier_time(0);
    t1 = r.tier_time(1);
  });
  f.system.submit(make_request(f.system.pool(), 1, {100.0, 50000.0}));
  f.sim.run_all();
  EXPECT_EQ(t0, usec(100));
  EXPECT_EQ(t1, usec(50000));
}

TEST(TandemQueueSystem, BacklogAccumulatesAtSlowStation) {
  Fixture f;
  f.system.set_speed_multiplier(1, 0.001);
  for (int i = 0; i < 20; ++i) f.system.submit(make_request(f.system.pool(), i, {10.0, 100.0}));
  f.sim.run_until(msec(10));
  // Upstream is oblivious: everything piles at station 2.
  EXPECT_EQ(f.system.resident(0), 0);
  EXPECT_EQ(f.system.resident(1), 20);
}

TEST(TandemQueueSystem, InfiniteQueueNeverDrops) {
  Fixture f;
  f.system.set_speed_multiplier(1, 0.001);
  for (int i = 0; i < 500; ++i) f.system.submit(make_request(f.system.pool(), i, {1.0, 100.0}));
  f.sim.run_until(msec(10));
  EXPECT_EQ(f.dropped, 0);
  f.system.set_speed_multiplier(1, 1.0);
  f.sim.run_all();
  EXPECT_EQ(f.completed, 500);
}

TEST(TandemQueueSystem, FiniteFrontQueueDrops) {
  Simulator sim;
  TandemQueueSystem system(sim, {{"s1", 1, 2}});
  int dropped = 0;
  system.set_on_drop([&](const Request&) { ++dropped; });
  // 1 in service + 2 waiting fit; the 4th drops.
  for (int i = 0; i < 4; ++i) system.submit(make_request(system.pool(), i, {100000.0}));
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(system.dropped(), 1);
}

TEST(TandemQueueSystem, FiniteInterStationQueueDropsMidstream) {
  Simulator sim;
  TandemQueueSystem system(sim, {{"s1", 4, StationConfig::kUnbounded}, {"s2", 1, 1}});
  int completed = 0;
  int dropped = 0;
  system.set_on_complete([&](const Request&) { ++completed; });
  system.set_on_drop([&](const Request&) { ++dropped; });
  for (int i = 0; i < 6; ++i) system.submit(make_request(system.pool(), i, {10.0, 100000.0}));
  sim.run_until(msec(1));
  // Station 2 holds 1 in service + 1 waiting; the rest were lost in transit.
  EXPECT_EQ(dropped, 4);
  sim.run_all();
  EXPECT_EQ(completed, 2);
}

TEST(TandemQueueSystem, FifoWithinStation) {
  Fixture f;
  std::vector<Request::Id> order;
  f.system.set_on_complete([&](const Request& r) { order.push_back(r.id); });
  for (int i = 0; i < 5; ++i) f.system.submit(make_request(f.system.pool(), i, {100.0, 100.0}));
  f.sim.run_all();
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(TandemQueueSystem, NamesAndAccessors) {
  Fixture f;
  EXPECT_EQ(f.system.num_stations(), 2u);
  EXPECT_EQ(f.system.depth(), 2u);
  EXPECT_EQ(f.system.station_name(0), "s1");
  EXPECT_EQ(f.system.station_name(1), "s2");
}

TEST(TandemQueueSystem, ResidenceHistogramPopulated) {
  Fixture f;
  for (int i = 0; i < 10; ++i) f.system.submit(make_request(f.system.pool(), i, {100.0, 100.0}));
  f.sim.run_all();
  EXPECT_EQ(f.system.residence_time(0).count(), 10);
  EXPECT_EQ(f.system.residence_time(1).count(), 10);
}

}  // namespace
}  // namespace memca::queueing
