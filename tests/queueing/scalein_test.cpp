#include <gtest/gtest.h>

#include "monitor/elastic.h"
#include "queueing/ntier.h"
#include "workload/openloop.h"
#include "workload/router.h"

namespace memca::queueing {
namespace {

TEST(ScaleIn, IdleWorkersRetireImmediately) {
  Simulator sim;
  int done = 0;
  WorkStation station(sim, 4, [&](std::uint32_t) { ++done; });
  station.remove_workers(2);
  EXPECT_EQ(station.workers(), 2);
  EXPECT_TRUE(station.has_free_worker());
}

TEST(ScaleIn, BusyWorkersFinishBeforeRetiring) {
  Simulator sim;
  int done = 0;
  WorkStation station(sim, 2, [&](std::uint32_t) { ++done; });
  station.start(1, 10000.0);
  station.start(2, 10000.0);
  station.remove_workers(1);
  // Both still busy: the retirement is pending, capacity unchanged yet.
  EXPECT_EQ(station.workers(), 2);
  sim.run_until(msec(20));
  EXPECT_EQ(done, 2);
  EXPECT_EQ(station.workers(), 1);
}

TEST(ScaleIn, CannotRemoveLastWorker) {
  Simulator sim;
  WorkStation station(sim, 3, [](std::uint32_t) {});
  station.remove_workers(2);
  EXPECT_EQ(station.workers(), 1);
  EXPECT_DEATH(station.remove_workers(1), "at least one worker");
}

TEST(ScaleIn, AddWorkersRevivesRetiredSlots) {
  Simulator sim;
  WorkStation station(sim, 4, [](std::uint32_t) {});
  station.remove_workers(3);
  EXPECT_EQ(station.workers(), 1);
  station.add_workers(2);
  EXPECT_EQ(station.workers(), 3);
  station.add_workers(5);
  EXPECT_EQ(station.workers(), 8);
}

TEST(ScaleIn, AddCancelsPendingRetirement) {
  Simulator sim;
  int done = 0;
  WorkStation station(sim, 2, [&](std::uint32_t) { ++done; });
  station.start(1, 50000.0);
  station.start(2, 50000.0);
  station.remove_workers(1);  // pending (both busy)
  station.add_workers(1);     // cancels the pending retirement
  sim.run_until(msec(100));
  EXPECT_EQ(station.workers(), 2);
}

TEST(ScaleIn, RetiredSlotsNeverPickUpWork) {
  Simulator sim;
  std::vector<std::uint32_t> done;
  WorkStation station(sim, 3, [&](std::uint32_t p) { done.push_back(p); });
  station.remove_workers(2);
  // Only one worker: two sequential 1 ms services take 2 ms, not 1.
  station.start(1, 1000.0);
  EXPECT_FALSE(station.has_free_worker());
  sim.run_until(usec(1000));
  EXPECT_EQ(done.size(), 1u);
}

TEST(ScaleIn, TierRemoveCapacityShrinksThreads) {
  Simulator sim;
  RequestPool pool;
  pool.set_depth(1);
  TierServer tier(sim, pool, TierConfig{"t", 40, 4}, 0);
  tier.set_reply_sink([](Request*) {});
  tier.remove_capacity(2, 20);
  EXPECT_EQ(tier.workers(), 2);
  EXPECT_EQ(tier.threads(), 20);
  // Thread limit never drops below the worker count or one.
  tier.remove_capacity(1, 100);
  EXPECT_EQ(tier.threads(), 1);
}

TEST(ScaleIn, ElasticControllerScalesBackAfterLoadSubsides) {
  Simulator sim;
  NTierSystem system(sim, {{"front", 200, 8}, {"back", 100, 2}});
  workload::RequestRouter router(system);
  monitor::ElasticPolicy policy;
  policy.evaluation_period = sec(std::int64_t{10});
  policy.provisioning_delay = sec(std::int64_t{10});
  policy.cooldown = sec(std::int64_t{10});
  policy.threads_per_scaleout = 0;
  policy.scale_in_threshold = 0.30;
  policy.scale_in_consecutive = 2;
  monitor::ElasticController controller(sim, system.tier(1), policy);
  controller.start();

  // Hot phase: overload triggers a scale-out.
  {
    workload::OpenLoopConfig config;
    config.rate_per_sec = 1800.0;
    workload::OpenLoopSource hot(sim, router, workload::uniform_profile({100.0, 1500.0}),
                                 config, Rng(1));
    hot.start();
    sim.run_for(2 * kMinute);
    hot.stop();
    sim.run_for(sec(std::int64_t{5}));
  }
  EXPECT_GE(controller.scaleouts(), 1);
  const int peak_workers = system.tier(1).workers();
  EXPECT_GT(peak_workers, 2);

  // Quiet phase: utilization collapses, capacity is reclaimed.
  sim.run_for(3 * kMinute);
  EXPECT_GE(controller.scaleins(), 1);
  EXPECT_LT(system.tier(1).workers(), peak_workers);
}

}  // namespace
}  // namespace memca::queueing
