// RequestPool: the slab arena behind the request lifecycle. Pins the three
// properties the hot path depends on — generation tags expose stale
// references, chunk growth never relocates a live request, and recycled
// requests keep their vector capacity — plus the full drop→retransmit
// round trip through a pooled NTierSystem (the path ASan watches in CI).
#include "queueing/request_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "queueing/ntier.h"
#include "sim/simulator.h"

namespace memca::queueing {
namespace {

TEST(RequestPool, AcquireReturnsResetRequest) {
  RequestPool pool;
  pool.set_depth(2);
  Request* a = pool.acquire();
  a->id = 42;
  a->page_class = 3;
  a->user = 7;
  a->set_attempt(2);
  a->set_first_sent(usec(10));
  a->set_sent(usec(20));
  a->demand_us = {1.0, 2.0};
  pool.hot().stamp(a->pool_slot, 0) = TierTrace{usec(1), usec(2), usec(3)};
  pool.hot().state(a->pool_slot) = RequestState::kInService;
  pool.release(a);
  // LIFO recycling hands the same object back, body and hot lanes reset.
  Request* b = pool.acquire();
  ASSERT_EQ(b, a);
  EXPECT_EQ(b->id, 0);
  EXPECT_EQ(b->page_class, -1);
  EXPECT_EQ(b->user, -1);
  EXPECT_EQ(b->attempt(), 0);
  EXPECT_EQ(b->first_sent(), 0);
  EXPECT_EQ(b->sent(), 0);
  EXPECT_TRUE(b->demand_us.empty());
  EXPECT_EQ(pool.hot().state(b->pool_slot), RequestState::kIdle);
  // The stamp lane is reset at submit time, not acquire time.
  pool.hot().reset_stamps(b->pool_slot);
  EXPECT_EQ(b->trace_at(0).enter, -1);
  EXPECT_EQ(b->trace_at(1).leave, -1);
  pool.release(b);
}

TEST(RequestPool, RecycledRequestKeepsVectorCapacity) {
  RequestPool pool;
  pool.set_depth(3);
  Request* a = pool.acquire();
  a->demand_us.assign({1.0, 2.0, 3.0});
  pool.release(a);
  Request* b = pool.acquire();
  ASSERT_EQ(b, a);
  // The zero-steady-state-allocation property: cleared, not deallocated
  // (the per-tier stamps live in the arena lanes, which never shrink).
  EXPECT_GE(b->demand_us.capacity(), 3u);
  pool.release(b);
}

TEST(RequestPool, GenerationTagRejectsStaleHandle) {
  RequestPool pool;
  pool.set_depth(1);
  Request* req = pool.acquire();
  const RequestPool::Handle h = pool.handle_of(req);
  EXPECT_EQ(pool.resolve(h), req);
  pool.release(req);
  // Released: the occupancy is over, the handle must not resolve.
  EXPECT_EQ(pool.resolve(h), nullptr);
  // Re-acquiring the same slot starts a new occupancy with a new generation;
  // the old handle still must not resolve to the recycled object.
  Request* again = pool.acquire();
  ASSERT_EQ(again, req);
  EXPECT_EQ(pool.resolve(h), nullptr);
  EXPECT_EQ(pool.resolve(pool.handle_of(again)), again);
  pool.release(again);
}

TEST(RequestPool, HandlesDistinguishSlotsAndGenerations) {
  RequestPool pool;
  pool.set_depth(1);
  Request* a = pool.acquire();
  Request* b = pool.acquire();
  const RequestPool::Handle ha = pool.handle_of(a);
  const RequestPool::Handle hb = pool.handle_of(b);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.resolve(ha), a);
  EXPECT_EQ(pool.resolve(hb), b);
  pool.release(a);
  EXPECT_EQ(pool.resolve(ha), nullptr);
  EXPECT_EQ(pool.resolve(hb), b);  // unrelated occupancy unaffected
  pool.release(b);
}

TEST(RequestPool, ChunkGrowthNeverRelocatesLiveRequests) {
  RequestPool pool;
  pool.set_depth(1);
  // Hold enough live requests to force several chunk allocations (256
  // slots per chunk), stamping each so aliasing would be visible.
  constexpr int kLive = 1500;
  std::vector<Request*> live;
  live.reserve(kLive);
  for (int i = 0; i < kLive; ++i) {
    Request* req = pool.acquire();
    req->id = i + 1;
    live.push_back(req);
  }
  EXPECT_GE(pool.slots(), static_cast<std::uint32_t>(kLive));
  EXPECT_EQ(pool.live(), static_cast<std::size_t>(kLive));
  // Every earlier pointer still points at its own request.
  for (int i = 0; i < kLive; ++i) {
    EXPECT_EQ(live[static_cast<std::size_t>(i)]->id, i + 1);
  }
  for (Request* req : live) pool.release(req);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(RequestPool, LiveCountTracksAcquireRelease) {
  RequestPool pool;
  pool.set_depth(1);
  EXPECT_EQ(pool.live(), 0u);
  Request* a = pool.acquire();
  Request* b = pool.acquire();
  EXPECT_EQ(pool.live(), 2u);
  pool.release(a);
  EXPECT_EQ(pool.live(), 1u);
  pool.release(b);
  EXPECT_EQ(pool.live(), 0u);
  // The slot high-water mark persists; live churn reuses it.
  const std::uint32_t slots = pool.slots();
  Request* c = pool.acquire();
  pool.release(c);
  EXPECT_EQ(pool.slots(), slots);
}

TEST(RequestPool, DropRetransmitRoundTripThroughSystemPool) {
  // A front-tier drop releases the pooled request inside the drop callback's
  // delivery; the retransmission acquires a fresh one. Under ASan (the CI
  // MEMCA_SANITIZE=address job) this catches any use-after-release on the
  // drop path; here it also pins the pool accounting across the round trip.
  Simulator sim;
  // One thread, one worker, tiny system: a second submission while the
  // first is in service must be rejected at the front tier.
  NTierSystem system{sim, {{"front", 1, 1}}};
  int completions = 0;
  int drops = 0;
  system.set_on_complete([&completions](const Request&) { ++completions; });
  RequestPool& pool = system.pool();
  std::vector<RequestPool::Handle> dropped_handles;
  system.set_on_drop([&](const Request& r) {
    ++drops;
    dropped_handles.push_back(RequestPool::Handle{r.pool_slot, r.pool_gen});
    // Retransmit 100 ms later, reusing the just-dropped request's slot.
    sim.schedule_in(msec(100), [&system] {
      Request* retry = system.acquire();
      retry->id = 99;
      retry->set_attempt(1);
      retry->demand_us = {50.0};
      EXPECT_TRUE(system.submit(retry));
    });
  });

  Request* first = system.acquire();
  first->id = 1;
  first->demand_us = {500.0};
  EXPECT_TRUE(system.submit(first));

  Request* second = system.acquire();
  second->id = 2;
  second->demand_us = {50.0};
  EXPECT_FALSE(system.submit(second));  // front tier full -> drop

  sim.run_all();
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(completions, 2);  // the original and the retransmission
  EXPECT_EQ(system.in_flight(), 0);
  EXPECT_EQ(pool.live(), 0u) << "every request must return to the pool";
  // The dropped occupancy ended when the drop callback returned.
  ASSERT_EQ(dropped_handles.size(), 1u);
  EXPECT_EQ(pool.resolve(dropped_handles[0]), nullptr);
}

TEST(RequestPool, ManyRoundTripsReuseBoundedSlots) {
  // Steady-state churn: sequential request round trips through a 3-tier
  // system must reuse one pool slot, not grow the arena.
  Simulator sim;
  NTierSystem system{sim, {{"a", 4, 1}, {"b", 4, 1}, {"c", 4, 1}}};
  int completions = 0;
  system.set_on_complete([&completions](const Request&) { ++completions; });
  for (int i = 0; i < 1000; ++i) {
    Request* req = system.acquire();
    req->id = i + 1;
    req->demand_us = {10.0, 20.0, 30.0};
    ASSERT_TRUE(system.submit(req));
    sim.run_all();
  }
  EXPECT_EQ(completions, 1000);
  EXPECT_EQ(system.pool().live(), 0u);
  EXPECT_LE(system.pool().slots(), 4u);
}

}  // namespace
}  // namespace memca::queueing
