// M/D/1 property tests: the WorkStation is work-based, not
// distribution-based, so deterministic service must also match textbook
// queueing theory (Pollaczek–Khinchine with zero service variance):
//
//   W_q = rho / (2 (1 - rho)) * S,    W = W_q + S.
//
// Together with the M/M/1 suite this pins both moments of the service
// process handling.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "queueing/ntier.h"
#include "test_util.h"

namespace memca::queueing {
namespace {

double run_md1_mean_rt_us(double rho, double service_us, SimTime duration,
                          std::uint64_t seed) {
  Simulator sim;
  NTierSystem system(sim, {{"station", 1000000, 1}});
  Rng rng(seed);
  double rt_sum = 0.0;
  std::int64_t rt_count = 0;
  system.set_on_complete([&](const Request& r) {
    rt_sum += static_cast<double>(r.tier_time(0));
    ++rt_count;
  });
  const double lambda_per_us = rho / service_us;
  std::int64_t next_id = 0;
  std::function<void()> arrive = [&] {
    system.submit(test::make_request(system.pool(), next_id++, {service_us}, sim.now()));
    sim.schedule_in(static_cast<SimTime>(rng.exponential(1.0 / lambda_per_us)), arrive);
  };
  sim.schedule_in(0, arrive);
  sim.run_until(duration);
  return rt_sum / static_cast<double>(rt_count);
}

class Md1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Md1Sweep, PollaczekKhinchineMeanHolds) {
  const double rho = GetParam();
  const double service_us = 1000.0;
  const double measured = run_md1_mean_rt_us(rho, service_us, sec(std::int64_t{300}), 17);
  const double theory = service_us * (1.0 + rho / (2.0 * (1.0 - rho)));
  EXPECT_NEAR(measured / theory, 1.0, 0.06) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Loads, Md1Sweep, ::testing::Values(0.3, 0.5, 0.7, 0.85));

TEST(Md1VsMm1, DeterministicServiceHalvesQueueing) {
  // P-K: M/D/1 queueing delay is exactly half of M/M/1's at equal rho.
  const double rho = 0.7;
  const double service_us = 1000.0;
  const double md1 = run_md1_mean_rt_us(rho, service_us, sec(std::int64_t{300}), 23);
  const double md1_wq = md1 - service_us;
  const double mm1_wq_theory = service_us * rho / (1.0 - rho);
  EXPECT_NEAR(md1_wq / (mm1_wq_theory / 2.0), 1.0, 0.10);
}

}  // namespace
}  // namespace memca::queueing
