#include "queueing/ntier.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace memca::queueing {
namespace {

using test::make_request;

std::vector<TierConfig> three_tiers() {
  return {{"apache", 10, 2}, {"tomcat", 6, 2}, {"mysql", 3, 1}};
}

struct Fixture {
  Simulator sim;
  NTierSystem system{sim, three_tiers()};
  std::vector<Request::Id> completed;
  std::vector<Request::Id> dropped;
  Fixture() {
    system.set_on_complete([this](const Request& r) { completed.push_back(r.id); });
    system.set_on_drop([this](const Request& r) { dropped.push_back(r.id); });
  }
  bool submit(Request::Id id, std::vector<double> demand) {
    return system.submit(make_request(system.pool(), id, std::move(demand), sim.now()));
  }
};

TEST(NTierSystem, CompletesSingleRequest) {
  Fixture f;
  EXPECT_TRUE(f.submit(1, {100.0, 200.0, 300.0}));
  f.sim.run_all();
  ASSERT_EQ(f.completed.size(), 1u);
  EXPECT_EQ(f.system.completed(), 1);
  EXPECT_EQ(f.system.in_flight(), 0);
}

TEST(NTierSystem, TierResidenceNests) {
  Fixture f;
  SimTime observed[3] = {0, 0, 0};
  f.system.set_on_complete([&](const Request& r) {
    for (std::size_t i = 0; i < 3; ++i) observed[i] = r.tier_time(i);
  });
  f.system.submit(make_request(f.system.pool(), 1, {100.0, 200.0, 300.0}));
  f.sim.run_all();
  EXPECT_EQ(observed[2], usec(300));
  EXPECT_EQ(observed[1], usec(500));
  EXPECT_EQ(observed[0], usec(600));
}

TEST(NTierSystem, DropsOnlyAtFrontTier) {
  Fixture f;
  // Fill the whole system with slow requests.
  for (int i = 0; i < 10; ++i) f.submit(i, {10.0, 10.0, 1000000.0});
  f.sim.run_until(msec(1));
  EXPECT_TRUE(f.system.tier(0).full());
  EXPECT_FALSE(f.submit(99, {10.0, 10.0, 10.0}));
  EXPECT_EQ(f.dropped.size(), 1u);
  EXPECT_EQ(f.system.dropped(), 1);
  // Downstream tiers never rejected an external submission.
  EXPECT_EQ(f.system.tier(0).rejected(), 1);
}

TEST(NTierSystem, CrossTierOccupancyRespectsThreadLimits) {
  Fixture f;
  for (int i = 0; i < 10; ++i) f.submit(i, {10.0, 10.0, 1000000.0});
  f.sim.run_until(msec(1));
  EXPECT_EQ(f.system.tier(2).resident(), 3);
  EXPECT_EQ(f.system.tier(1).resident(), 6);
  EXPECT_EQ(f.system.tier(0).resident(), 10);
  // Tier 1's residents: 3 awaiting reply from mysql, 3 blocked.
  EXPECT_EQ(f.system.tier(1).awaiting_reply(), 3);
  EXPECT_EQ(f.system.tier(1).blocked_on_downstream(), 3);
}

TEST(NTierSystem, RecoversAfterBottleneckClears) {
  Fixture f;
  f.system.back_tier().set_speed_multiplier(0.001);
  for (int i = 0; i < 10; ++i) f.submit(i, {10.0, 10.0, 100.0});
  f.sim.run_until(msec(10));
  EXPECT_LT(f.completed.size(), 10u);
  f.system.back_tier().set_speed_multiplier(1.0);
  f.sim.run_all();
  EXPECT_EQ(f.completed.size(), 10u);
  EXPECT_EQ(f.system.in_flight(), 0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(f.system.tier(i).resident(), 0);
}

TEST(NTierSystem, ConservationInvariant) {
  Fixture f;
  f.system.back_tier().set_speed_multiplier(0.01);
  int submitted = 0;
  for (int i = 0; i < 40; ++i) {
    f.submit(i, {50.0, 100.0, 500.0});
    ++submitted;
  }
  f.sim.run_until(msec(100));
  EXPECT_EQ(f.system.submitted(), submitted);
  EXPECT_EQ(f.system.submitted(),
            f.system.completed() + f.system.dropped() + f.system.in_flight());
  f.system.back_tier().set_speed_multiplier(1.0);
  f.sim.run_all();
  EXPECT_EQ(f.system.submitted(), f.system.completed() + f.system.dropped());
}

TEST(NTierSystem, Condition1Detection) {
  Simulator sim;
  NTierSystem good(sim, {{"a", 10, 1}, {"b", 5, 1}});
  EXPECT_TRUE(good.satisfies_condition1());
  NTierSystem bad(sim, {{"a", 5, 1}, {"b", 10, 1}});
  EXPECT_FALSE(bad.satisfies_condition1());
  NTierSystem equal(sim, {{"a", 5, 1}, {"b", 5, 1}});
  EXPECT_FALSE(equal.satisfies_condition1());
}

TEST(NTierSystem, SingleTierSystemWorks) {
  Simulator sim;
  NTierSystem system(sim, {{"solo", 2, 1}});
  int completed = 0;
  system.set_on_complete([&](const Request&) { ++completed; });
  system.submit(make_request(system.pool(), 1, {500.0}));
  sim.run_all();
  EXPECT_EQ(completed, 1);
}

TEST(NTierSystem, QueueSizeOneEdgeCase) {
  Simulator sim;
  NTierSystem system(sim, {{"a", 2, 1}, {"b", 1, 1}});
  int completed = 0;
  system.set_on_complete([&](const Request&) { ++completed; });
  system.submit(make_request(system.pool(), 1, {10.0, 1000.0}));
  system.submit(make_request(system.pool(), 2, {10.0, 1000.0}));
  sim.run_all();
  EXPECT_EQ(completed, 2);
}

TEST(NTierSystem, ReentrantSubmitFromCompletionCallback) {
  Fixture f;
  bool resubmitted = false;
  f.system.set_on_complete([&](const Request& r) {
    f.completed.push_back(r.id);
    if (!resubmitted) {
      resubmitted = true;
      f.submit(100, {10.0, 10.0, 10.0});
    }
  });
  f.submit(1, {10.0, 10.0, 10.0});
  f.sim.run_all();
  EXPECT_EQ(f.completed.size(), 2u);
}

TEST(NTierSystem, ThroughputLimitedByBottleneck) {
  // Offered load far above the back tier's capacity: completions per second
  // should match the back tier capacity (1 worker, 1000 us -> 1000/s).
  Fixture f;
  int next_id = 0;
  PeriodicTask feeder(f.sim, usec(200), [&] {  // 5000/s offered
    f.submit(next_id++, {10.0, 10.0, 1000.0});
  });
  f.sim.run_until(sec(std::int64_t{2}));
  const double rate = static_cast<double>(f.system.completed()) / 2.0;
  EXPECT_NEAR(rate, 1000.0, 60.0);
}

}  // namespace
}  // namespace memca::queueing
