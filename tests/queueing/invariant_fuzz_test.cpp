// Randomized invariant tests: drive the n-tier system with random traffic,
// random burst throttling and random capacity changes, checking structural
// invariants continuously. These are the guards against subtle accounting
// bugs in the thread-holding state machine (the kind that would silently
// corrupt every figure).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "queueing/ntier.h"
#include "test_util.h"

namespace memca::queueing {
namespace {

struct FuzzHarness {
  Simulator sim;
  NTierSystem system{sim, {{"t0", 40, 4}, {"t1", 25, 3}, {"t2", 12, 2}}};
  Rng rng{12345};
  std::int64_t completed = 0;
  std::int64_t dropped = 0;

  FuzzHarness() {
    system.set_on_complete([this](const Request&) { ++completed; });
    system.set_on_drop([this](const Request&) { ++dropped; });
  }

  void submit_random(Request::Id id) {
    std::vector<double> demand = {rng.exponential(50.0), rng.exponential(300.0),
                                  rng.exponential(800.0)};
    system.submit(test::make_request(system.pool(), id, std::move(demand), sim.now()));
  }

  void check_invariants(const char* context) {
    std::int64_t resident_total = 0;
    for (std::size_t i = 0; i < system.num_tiers(); ++i) {
      const TierServer& tier = system.tier(i);
      // Residents decompose exactly into the four lifecycle states.
      EXPECT_EQ(tier.resident(), tier.waiting() + tier.in_service() +
                                     tier.blocked_on_downstream() + tier.awaiting_reply())
          << context << " tier " << i;
      // Thread limits are hard.
      EXPECT_LE(tier.resident(), tier.threads()) << context << " tier " << i;
      EXPECT_GE(tier.resident(), 0) << context << " tier " << i;
      // A tier's downstream residents == its own awaiting_reply.
      if (i + 1 < system.num_tiers()) {
        EXPECT_EQ(tier.awaiting_reply(), system.tier(i + 1).resident())
            << context << " tier " << i;
      } else {
        EXPECT_EQ(tier.awaiting_reply(), 0) << context << " tier " << i;
      }
      resident_total += tier.resident();
    }
    // Front-tier residents account for every in-flight request.
    EXPECT_EQ(system.in_flight(), system.tier(0).resident()) << context;
    // Conservation.
    EXPECT_EQ(system.submitted(), system.completed() + system.dropped() + system.in_flight())
        << context;
    EXPECT_EQ(system.completed(), completed) << context;
    EXPECT_EQ(system.dropped(), dropped) << context;
  }
};

TEST(InvariantFuzz, RandomTrafficWithRandomBursts) {
  FuzzHarness h;
  Request::Id next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    const double action = h.rng.uniform();
    if (action < 0.55) {
      h.submit_random(next_id++);
    } else if (action < 0.70) {
      // Random throttle of a random tier (attack ON/OFF edges).
      const auto tier = static_cast<std::size_t>(h.rng.uniform_int(0, 2));
      h.system.tier(tier).set_speed_multiplier(h.rng.uniform(0.05, 1.0));
    } else if (action < 0.75) {
      // Restore full speed everywhere.
      for (std::size_t i = 0; i < 3; ++i) h.system.tier(i).set_speed_multiplier(1.0);
    } else {
      h.sim.run_for(h.rng.exponential_time(msec(2)));
    }
    h.check_invariants("mid-run");
  }
  for (std::size_t i = 0; i < 3; ++i) h.system.tier(i).set_speed_multiplier(1.0);
  h.sim.run_all();
  h.check_invariants("after drain");
  EXPECT_EQ(h.system.in_flight(), 0);
  EXPECT_GT(h.completed, 0);
}

TEST(InvariantFuzz, BurstStormWithCapacityChanges) {
  FuzzHarness h;
  Request::Id next_id = 0;
  for (int step = 0; step < 1500; ++step) {
    const double action = h.rng.uniform();
    if (action < 0.5) {
      h.submit_random(next_id++);
    } else if (action < 0.6) {
      // Elastic scale-out of a random tier mid-chaos.
      const auto tier = static_cast<std::size_t>(h.rng.uniform_int(0, 2));
      if (h.system.tier(tier).workers() < 16) {
        h.system.tier(tier).add_capacity(1, 2);
      }
    } else if (action < 0.8) {
      h.system.back_tier().set_speed_multiplier(h.rng.uniform(0.02, 0.2));
    } else if (action < 0.9) {
      h.system.back_tier().set_speed_multiplier(1.0);
    } else {
      h.sim.run_for(h.rng.exponential_time(msec(5)));
    }
    h.check_invariants("storm");
  }
  h.system.back_tier().set_speed_multiplier(1.0);
  h.sim.run_all();
  h.check_invariants("storm drained");
  EXPECT_EQ(h.system.in_flight(), 0);
}

TEST(InvariantFuzz, FifoPreservedUnderChaos) {
  // Same-class requests must complete in submission order even across
  // bursts and scale-outs (single chain, FIFO queues everywhere).
  Simulator sim;
  NTierSystem system(sim, {{"t0", 30, 1}, {"t1", 20, 1}, {"t2", 10, 1}});
  std::vector<Request::Id> completions;
  system.set_on_complete([&](const Request& r) { completions.push_back(r.id); });
  Rng rng(777);
  Request::Id next_id = 0;
  for (int step = 0; step < 500; ++step) {
    if (rng.chance(0.6)) {
      system.submit(test::make_request(system.pool(), next_id++, {30.0, 60.0, 120.0}, sim.now()));
    }
    if (rng.chance(0.1)) {
      system.back_tier().set_speed_multiplier(rng.uniform(0.05, 1.0));
    }
    sim.run_for(rng.exponential_time(usec(300)));
  }
  system.back_tier().set_speed_multiplier(1.0);
  sim.run_all();
  for (std::size_t i = 1; i < completions.size(); ++i) {
    EXPECT_LT(completions[i - 1], completions[i]);
  }
}

TEST(InvariantFuzz, DeterministicUnderIdenticalSeeds) {
  auto run_once = [] {
    FuzzHarness h;
    Request::Id next_id = 0;
    for (int step = 0; step < 1000; ++step) {
      if (h.rng.chance(0.6)) h.submit_random(next_id++);
      if (h.rng.chance(0.1)) {
        h.system.back_tier().set_speed_multiplier(h.rng.uniform(0.05, 1.0));
      }
      h.sim.run_for(h.rng.exponential_time(msec(1)));
    }
    h.system.back_tier().set_speed_multiplier(1.0);
    h.sim.run_all();
    return std::tuple<std::int64_t, std::int64_t, std::uint64_t>(
        h.completed, h.dropped, h.sim.events_executed());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace memca::queueing
