// Shared helpers for queueing-layer tests.
#pragma once

#include <memory>
#include <vector>

#include "queueing/request.h"

namespace memca::queueing::test {

/// Builds a request with fixed (deterministic) per-tier demands.
inline std::unique_ptr<Request> make_request(Request::Id id, std::vector<double> demand_us,
                                             SimTime now = 0) {
  auto req = std::make_unique<Request>();
  req->id = id;
  req->first_sent = now;
  req->sent = now;
  req->demand_us = std::move(demand_us);
  // NTierSystem sizes the trace on submit; direct TierServer tests need it
  // pre-sized.
  req->trace.assign(req->demand_us.size(), TierTrace{});
  return req;
}

}  // namespace memca::queueing::test
