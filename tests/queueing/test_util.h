// Shared helpers for queueing-layer tests.
#pragma once

#include <vector>

#include "queueing/request.h"
#include "queueing/request_pool.h"

namespace memca::queueing::test {

/// Acquires a pooled request with fixed (deterministic) per-tier demands.
/// The pool's stamp depth must already be set (covering demand_us.size());
/// direct TierServer tests own their pool, system tests use system.pool().
inline Request* make_request(RequestPool& pool, Request::Id id,
                             std::vector<double> demand_us, SimTime now = 0) {
  Request* req = pool.acquire();
  req->id = id;
  req->set_first_sent(now);
  req->set_sent(now);
  req->demand_us = std::move(demand_us);
  // NTierSystem resets the stamp lane on submit; direct TierServer tests
  // need it reset here.
  pool.hot().reset_stamps(req->pool_slot);
  return req;
}

}  // namespace memca::queueing::test
