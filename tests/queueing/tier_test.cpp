#include "queueing/tier.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace memca::queueing {
namespace {

using test::make_request;

// A single tier with a reply sink standing in for the client side. The
// test owns the pool the system would normally own; replied requests are
// deliberately kept live so the assertions can read their stamps.
struct SingleTier {
  Simulator sim;
  RequestPool pool;
  TierServer tier;
  std::vector<Request*> replies;
  SingleTier() : tier(sim, pool, TierConfig{"solo", 4, 2}, 0) {
    pool.set_depth(1);
    tier.set_reply_sink([this](Request* r) { replies.push_back(r); });
  }
};

TEST(TierServer, ServesAndReplies) {
  SingleTier f;
  Request* req = make_request(f.pool, 1, {1000.0});
  EXPECT_TRUE(f.tier.try_submit(req));
  EXPECT_EQ(f.tier.resident(), 1);
  f.sim.run_until(msec(2));
  ASSERT_EQ(f.replies.size(), 1u);
  EXPECT_EQ(f.tier.resident(), 0);
  EXPECT_EQ(f.tier.completed(), 1);
  EXPECT_EQ(req->tier_time(0), usec(1000));
}

TEST(TierServer, RejectsWhenThreadsExhausted) {
  SingleTier f;
  std::vector<Request*> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(make_request(f.pool, i, {100000.0}));
    EXPECT_TRUE(f.tier.try_submit(reqs.back()));
  }
  Request* extra = make_request(f.pool, 99, {100000.0});
  EXPECT_FALSE(f.tier.try_submit(extra));
  EXPECT_EQ(f.tier.rejected(), 1);
  EXPECT_EQ(f.tier.offered(), 5);
  EXPECT_EQ(f.tier.admitted(), 4);
}

TEST(TierServer, FifoServiceOrder) {
  SingleTier f;
  std::vector<Request*> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(make_request(f.pool, i, {1000.0}));
    f.tier.try_submit(reqs.back());
  }
  f.sim.run_all();
  ASSERT_EQ(f.replies.size(), 4u);
  // 2 workers, equal demands: completion order must follow admission order.
  EXPECT_EQ(f.replies[0]->id, 0);
  EXPECT_EQ(f.replies[1]->id, 1);
  EXPECT_EQ(f.replies[2]->id, 2);
  EXPECT_EQ(f.replies[3]->id, 3);
}

TEST(TierServer, QueueStateAccounting) {
  SingleTier f;
  std::vector<Request*> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(make_request(f.pool, i, {100000.0}));
    f.tier.try_submit(reqs.back());
  }
  EXPECT_EQ(f.tier.in_service(), 2);
  EXPECT_EQ(f.tier.waiting(), 2);
  EXPECT_EQ(f.tier.blocked_on_downstream(), 0);
  EXPECT_EQ(f.tier.awaiting_reply(), 0);
  EXPECT_TRUE(f.tier.full());
}

TEST(TierServer, ResidenceTimeIncludesQueueing) {
  SingleTier f;
  std::vector<Request*> reqs;
  for (int i = 0; i < 3; ++i) {
    reqs.push_back(make_request(f.pool, i, {1000.0}));
    f.tier.try_submit(reqs.back());
  }
  f.sim.run_all();
  // Third request waited 1000 us for a worker, then served 1000 us.
  EXPECT_EQ(reqs[2]->tier_time(0), usec(2000));
  EXPECT_GE(f.tier.residence_time().quantile(1.0), usec(2000));
}

TEST(TierServer, SpeedMultiplierThrottlesService) {
  SingleTier f;
  Request* req = make_request(f.pool, 1, {1000.0});
  f.tier.try_submit(req);
  f.tier.set_speed_multiplier(0.1);
  f.sim.run_until(msec(9));
  EXPECT_TRUE(f.replies.empty());
  f.sim.run_until(msec(10));
  EXPECT_EQ(f.replies.size(), 1u);
}

// Two chained tiers exercising the RPC thread-holding semantics.
struct TwoTier {
  Simulator sim;
  RequestPool pool;
  TierServer front;
  TierServer back;
  std::vector<Request*> replies;
  TwoTier()
      : front(sim, pool, TierConfig{"front", 4, 2}, 0),
        back(sim, pool, TierConfig{"back", 2, 1}, 1) {
    pool.set_depth(2);
    front.set_downstream(&back);
    front.set_reply_sink([this](Request* r) { replies.push_back(r); });
  }
};

TEST(TierServer, RequestTraversesBothTiers) {
  TwoTier f;
  Request* req = make_request(f.pool, 1, {1000.0, 2000.0});
  EXPECT_TRUE(f.front.try_submit(req));
  f.sim.run_all();
  ASSERT_EQ(f.replies.size(), 1u);
  EXPECT_EQ(req->tier_time(1), usec(2000));
  // Front residence covers its own service plus the downstream round trip.
  EXPECT_EQ(req->tier_time(0), usec(3000));
}

TEST(TierServer, UpstreamThreadHeldWhileDownstreamServes) {
  TwoTier f;
  Request* req = make_request(f.pool, 1, {100.0, 100000.0});
  f.front.try_submit(req);
  f.sim.run_until(msec(1));
  // Front finished local service but still holds the thread.
  EXPECT_EQ(f.front.resident(), 1);
  EXPECT_EQ(f.front.awaiting_reply(), 1);
  EXPECT_EQ(f.back.resident(), 1);
}

TEST(TierServer, BlockedWhenDownstreamFull) {
  TwoTier f;
  std::vector<Request*> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(make_request(f.pool, i, {100.0, 100000.0}));
    f.front.try_submit(reqs.back());
  }
  f.sim.run_until(msec(1));
  // Back tier holds 2 (its thread limit); front finished local service on
  // the other two and they are blocked waiting for a back thread.
  EXPECT_EQ(f.back.resident(), 2);
  EXPECT_EQ(f.front.blocked_on_downstream(), 2);
  EXPECT_EQ(f.front.resident(), 4);
  EXPECT_TRUE(f.front.full());
}

TEST(TierServer, DownstreamPullsBlockedInOrder) {
  TwoTier f;
  std::vector<Request*> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(make_request(f.pool, i, {100.0, 10000.0}));
    f.front.try_submit(reqs.back());
  }
  f.sim.run_all();
  ASSERT_EQ(f.replies.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(f.replies[static_cast<std::size_t>(i)]->id, i);
}

TEST(TierServer, BackTierRejectionNeverHappensThroughBlocking) {
  // The upstream holds requests instead of offering them to a full
  // downstream, so downstream rejections stay zero.
  TwoTier f;
  std::vector<Request*> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(make_request(f.pool, i, {100.0, 5000.0}));
    f.front.try_submit(reqs.back());
  }
  f.sim.run_all();
  // accept_from_upstream may have refused transiently, but every request
  // ultimately completed exactly once.
  EXPECT_EQ(f.back.completed(), 4);
  EXPECT_EQ(f.front.completed(), 4);
}

TEST(TierServer, ConservationAcrossBurst) {
  TwoTier f;
  std::vector<Request*> reqs;
  // Throttle the back tier, pile up requests, then recover.
  f.back.set_speed_multiplier(0.05);
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(make_request(f.pool, i, {100.0, 1000.0}));
    f.front.try_submit(reqs.back());
  }
  f.sim.run_until(msec(5));
  f.back.set_speed_multiplier(1.0);
  f.sim.run_all();
  EXPECT_EQ(f.replies.size(), 4u);
  EXPECT_EQ(f.front.resident(), 0);
  EXPECT_EQ(f.back.resident(), 0);
}

}  // namespace
}  // namespace memca::queueing
