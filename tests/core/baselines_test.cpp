#include "core/baselines.h"

#include <gtest/gtest.h>

#include "monitor/autoscaler.h"
#include "monitor/detector.h"
#include "testbed/rubbos_testbed.h"

namespace memca::core {
namespace {

TEST(BruteForceMemoryAttack, SustainedLockCollapsesCapacity) {
  testbed::RubbosTestbed bed;
  bed.start();
  BruteForceMemoryAttack attack(bed.sim(), bed.mysql_host(), bed.adversary_vm(),
                                cloud::MemoryAttackType::kMemoryLock);
  attack.start();
  EXPECT_TRUE(attack.running());
  EXPECT_LT(bed.coupling().capacity_multiplier(), 0.2);
  attack.stop();
  EXPECT_DOUBLE_EQ(bed.coupling().capacity_multiplier(), 1.0);
}

TEST(BruteForceMemoryAttack, CausesMassiveDamageButIsDetectable) {
  testbed::RubbosTestbed bed;
  bed.start();
  BruteForceMemoryAttack attack(bed.sim(), bed.mysql_host(), bed.adversary_vm(),
                                cloud::MemoryAttackType::kMemoryLock);
  bed.sim().run_for(sec(std::int64_t{15}));  // warm-up clean
  attack.start();
  bed.sim().run_for(2 * kMinute);
  // Damage: brutal.
  EXPECT_GT(bed.clients().response_times().quantile(0.95), sec(std::int64_t{1}));
  // Stealth: none — 1-minute CloudWatch sees sustained saturation.
  const auto decision =
      monitor::evaluate_autoscaler(bed.mysql_cpu().series(), monitor::AutoScalerConfig{});
  EXPECT_TRUE(decision.triggered);
}

TEST(BruteForceMemoryAttack, MemcaEvadesWhereBruteForceIsCaught) {
  // The paper's central stealth comparison on identical infrastructure.
  auto run_cpu_series = [](bool brute) {
    testbed::RubbosTestbed bed;
    bed.start();
    std::unique_ptr<BruteForceMemoryAttack> brute_attack;
    std::unique_ptr<MemcaAttack> memca_attack;
    if (brute) {
      brute_attack = std::make_unique<BruteForceMemoryAttack>(
          bed.sim(), bed.mysql_host(), bed.adversary_vm(),
          cloud::MemoryAttackType::kMemoryLock);
      brute_attack->start();
    } else {
      MemcaConfig config;
      config.enable_controller = false;
      config.params.burst_length = msec(500);
      config.params.burst_interval = sec(std::int64_t{2});
      memca_attack = bed.make_attack(config);
      memca_attack->start();
    }
    bed.sim().run_for(3 * kMinute);
    return monitor::evaluate_autoscaler(bed.mysql_cpu().series(),
                                        monitor::AutoScalerConfig{})
        .triggered;
  };
  EXPECT_TRUE(run_cpu_series(/*brute=*/true));
  EXPECT_FALSE(run_cpu_series(/*brute=*/false));
}

TEST(FloodingAttack, PicksHeaviestPage) {
  testbed::RubbosTestbed bed;
  bed.start();
  FloodingAttack flood(bed.sim(), bed.router(), 400.0, bed.profile(),
                       bed.fork_rng("flood-test"));
  flood.start();
  bed.sim().run_for(sec(std::int64_t{10}));
  EXPECT_GT(flood.source().generated(), 3000);
}

TEST(FloodingAttack, DegradesVictimLatency) {
  testbed::RubbosTestbed bed;
  bed.start();
  bed.sim().run_for(sec(std::int64_t{15}));
  const SimTime clean_p95 = bed.clients().response_times().quantile(0.95);
  FloodingAttack flood(bed.sim(), bed.router(), 500.0, bed.profile(),
                       bed.fork_rng("flood-test"));
  flood.start();
  bed.sim().run_for(2 * kMinute);
  EXPECT_GT(bed.clients().response_times().quantile(0.95), 2 * clean_p95);
}

TEST(FloodingAttack, TrafficVolumeIsTheGiveaway) {
  // Flooding doubles the front tier's request rate — trivially visible to
  // request-rate anomaly detection, unlike MemCA whose traffic is a probe
  // every 200 ms.
  testbed::RubbosTestbed bed;
  bed.start();
  const double clean_rate = 500.0;  // ~ N/Z
  FloodingAttack flood(bed.sim(), bed.router(), 500.0, bed.profile(),
                       bed.fork_rng("flood-test"));
  flood.start();
  bed.sim().run_for(kMinute);
  const double offered =
      static_cast<double>(bed.system().tier(0).offered()) / to_seconds(bed.sim().now());
  EXPECT_GT(offered, 1.5 * clean_rate);
}

}  // namespace
}  // namespace memca::core
