#include "core/fleet.h"

#include <gtest/gtest.h>

#include "cloud/contention.h"

namespace memca::core {
namespace {

struct Fixture {
  Simulator sim;
  cloud::Host host{cloud::xeon_e5_2603_v3()};
  cloud::VmId victim = host.add_vm({"victim", 2, cloud::Placement::kPinnedPackage, 0});
  cloud::CrossResourceModel coupling{host, victim, {12.0, 0.02}};
  std::vector<cloud::VmId> adversaries;

  explicit Fixture(int n) {
    for (int i = 0; i < n; ++i) {
      adversaries.push_back(host.add_vm(
          {"adversary-" + std::to_string(i), 1, cloud::Placement::kPinnedPackage, 0}));
    }
  }

  AttackParams params() {
    AttackParams p;
    p.burst_length = msec(500);
    p.burst_interval = sec(std::int64_t{2});
    return p;
  }
};

TEST(AdversaryFleet, SynchronizedMembersBurstTogether) {
  Fixture f(3);
  AdversaryFleet fleet(f.sim, f.host, f.adversaries, f.params(),
                       FleetPhase::kSynchronized, Rng(1));
  fleet.start();
  f.sim.run_until(msec(100));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(fleet.program(i).running()) << i;
  }
  f.sim.run_until(msec(700));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(fleet.program(i).running()) << i;
  }
}

TEST(AdversaryFleet, StaggeredMembersSpreadOverTheInterval) {
  Fixture f(4);
  AdversaryFleet fleet(f.sim, f.host, f.adversaries, f.params(), FleetPhase::kStaggered,
                       Rng(1));
  fleet.start();
  f.sim.run_until(sec(std::int64_t{10}));
  // Member i's first window starts at i * I/4 = i * 500 ms.
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_FALSE(fleet.program(i).windows().empty()) << i;
    EXPECT_EQ(fleet.program(i).windows().front().start,
              static_cast<SimTime>(i) * msec(500))
        << i;
  }
}

TEST(AdversaryFleet, SynchronizedLockersDeepenDegradation) {
  Fixture one(1);
  AdversaryFleet solo(one.sim, one.host, one.adversaries, one.params(),
                      FleetPhase::kSynchronized, Rng(1));
  solo.start();
  one.sim.run_until(msec(10));
  const double d_solo = one.coupling.capacity_multiplier();

  Fixture three(3);
  AdversaryFleet trio(three.sim, three.host, three.adversaries, three.params(),
                      FleetPhase::kSynchronized, Rng(1));
  trio.start();
  three.sim.run_until(msec(10));
  const double d_trio = three.coupling.capacity_multiplier();

  EXPECT_LT(d_trio, d_solo / 3.0);
}

TEST(AdversaryFleet, StaggeredVictimSeesMoreBursts) {
  // With 4 staggered members, the victim is throttled 4x per interval even
  // though each member keeps the original schedule.
  Fixture f(4);
  AdversaryFleet fleet(f.sim, f.host, f.adversaries, f.params(), FleetPhase::kStaggered,
                       Rng(1));
  fleet.start();
  int throttled_edges = 0;
  f.coupling.on_multiplier_change([&](double m) {
    if (m < 0.5) ++throttled_edges;
  });
  f.sim.run_until(sec(std::int64_t{10}));
  // 5 intervals x 4 members = ~20 ON edges.
  EXPECT_GE(throttled_edges, 18);
}

TEST(AdversaryFleet, FootprintAccounting) {
  Fixture f(2);
  AdversaryFleet fleet(f.sim, f.host, f.adversaries, f.params(),
                       FleetPhase::kSynchronized, Rng(1));
  fleet.start();
  f.sim.run_until(sec(std::int64_t{10}));
  // Bursts at t = 0, 2, ..., 10 s (the one at t=10 just opened): 5 full
  // 500 ms windows of ON time per member, 6 bursts fired per member.
  EXPECT_EQ(fleet.total_on_time(), 2 * 5 * msec(500));
  EXPECT_EQ(fleet.max_member_on_time(), 5 * msec(500));
  EXPECT_EQ(fleet.bursts_fired(), 12);
}

TEST(AdversaryFleet, StopSilencesEveryMember) {
  Fixture f(3);
  AdversaryFleet fleet(f.sim, f.host, f.adversaries, f.params(), FleetPhase::kStaggered,
                       Rng(1));
  fleet.start();
  f.sim.run_until(msec(100));
  fleet.stop();
  f.sim.run_until(sec(std::int64_t{10}));
  EXPECT_FALSE(f.host.any_lock_active());
  EXPECT_EQ(fleet.bursts_fired(), 1);  // only member 0 had started
}

TEST(AdversaryFleet, PhaseNames) {
  EXPECT_STREQ(to_string(FleetPhase::kSynchronized), "synchronized");
  EXPECT_STREQ(to_string(FleetPhase::kStaggered), "staggered");
}

}  // namespace
}  // namespace memca::core
