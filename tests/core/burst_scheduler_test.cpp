#include "core/burst_scheduler.h"

#include <gtest/gtest.h>

namespace memca::core {
namespace {

struct Fixture {
  Simulator sim;
  cloud::Host host{cloud::xeon_e5_2603_v3()};
  cloud::VmId attacker = host.add_vm({"attacker", 1, cloud::Placement::kPinnedPackage, 0});
  cloud::MemoryAttackProgram program{sim, host, attacker,
                                     cloud::MemoryAttackType::kMemoryLock};
  AttackParams params() {
    AttackParams p;
    p.burst_length = msec(500);
    p.burst_interval = sec(std::int64_t{2});
    return p;
  }
};

TEST(BurstScheduler, FiresOnOffPattern) {
  Fixture f;
  BurstScheduler scheduler(f.sim, f.program, f.params(), Rng(1));
  scheduler.start();
  f.sim.run_until(sec(std::int64_t{7}));
  // Bursts at 0, 2, 4, 6 s.
  EXPECT_EQ(scheduler.bursts_fired(), 4);
  const auto& windows = f.program.windows();
  ASSERT_GE(windows.size(), 3u);
  EXPECT_EQ(windows[0].start, 0);
  EXPECT_EQ(windows[0].length(), msec(500));
  EXPECT_EQ(windows[1].start, sec(std::int64_t{2}));
}

TEST(BurstScheduler, HostActivityMatchesSchedule) {
  Fixture f;
  BurstScheduler scheduler(f.sim, f.program, f.params(), Rng(1));
  scheduler.start();
  f.sim.run_until(msec(100));
  EXPECT_TRUE(f.host.any_lock_active());
  f.sim.run_until(msec(700));
  EXPECT_FALSE(f.host.any_lock_active());
  f.sim.run_until(msec(2100));
  EXPECT_TRUE(f.host.any_lock_active());
}

TEST(BurstScheduler, StopTerminatesInProgressBurst) {
  Fixture f;
  BurstScheduler scheduler(f.sim, f.program, f.params(), Rng(1));
  scheduler.start();
  f.sim.run_until(msec(100));
  scheduler.stop();
  EXPECT_FALSE(f.program.running());
  f.sim.run_until(sec(std::int64_t{10}));
  EXPECT_EQ(scheduler.bursts_fired(), 1);
}

TEST(BurstScheduler, ParamUpdateTakesEffectNextBurst) {
  Fixture f;
  BurstScheduler scheduler(f.sim, f.program, f.params(), Rng(1));
  scheduler.start();
  f.sim.run_until(msec(100));  // first burst in progress
  AttackParams p = f.params();
  p.burst_length = msec(200);
  p.intensity = 0.5;
  scheduler.set_params(p);
  f.sim.run_until(sec(std::int64_t{3}));  // second burst done
  const auto& windows = f.program.windows();
  ASSERT_GE(windows.size(), 2u);
  EXPECT_EQ(windows[0].length(), msec(500));  // old params
  EXPECT_EQ(windows[1].length(), msec(200));  // new params
}

TEST(BurstScheduler, TypeSwitchAppliesPerBurst) {
  Fixture f;
  AttackParams p = f.params();
  p.type = cloud::MemoryAttackType::kBusSaturate;
  BurstScheduler scheduler(f.sim, f.program, p, Rng(1));
  scheduler.start();
  f.sim.run_until(msec(100));
  EXPECT_GT(f.host.demand(f.attacker), 0.0);
  EXPECT_DOUBLE_EQ(f.host.lock_duty(f.attacker), 0.0);
}

TEST(BurstScheduler, JitterVariesIntervals) {
  Fixture f;
  BurstScheduler scheduler(f.sim, f.program, f.params(), Rng(42), 0.3);
  scheduler.start();
  f.sim.run_until(sec(std::int64_t{60}));
  const auto& windows = f.program.windows();
  ASSERT_GE(windows.size(), 10u);
  // Consecutive burst gaps must not all be equal.
  bool varied = false;
  const SimTime first_gap = windows[1].start - windows[0].start;
  for (std::size_t i = 2; i < windows.size(); ++i) {
    if (windows[i].start - windows[i - 1].start != first_gap) varied = true;
  }
  EXPECT_TRUE(varied);
  // Average interval stays near the nominal 2 s.
  const double avg_gap = to_seconds(windows.back().start - windows.front().start) /
                         static_cast<double>(windows.size() - 1);
  EXPECT_NEAR(avg_gap, 2.0, 0.25);
}

TEST(BurstScheduler, RestartAfterStop) {
  Fixture f;
  BurstScheduler scheduler(f.sim, f.program, f.params(), Rng(1));
  scheduler.start();
  f.sim.run_until(sec(std::int64_t{1}));
  scheduler.stop();
  f.sim.run_until(sec(std::int64_t{5}));
  scheduler.start();
  f.sim.run_until(sec(std::int64_t{6}));
  EXPECT_EQ(scheduler.bursts_fired(), 2);
}

}  // namespace
}  // namespace memca::core
