#include "core/kalman.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace memca::core {
namespace {

TEST(KalmanFilter1D, ConvergesToConstantSignal) {
  KalmanFilter1D filter(0.0, 1.0, 0.0, 100.0);
  for (int i = 0; i < 100; ++i) filter.update(5.0);
  EXPECT_NEAR(filter.estimate(), 5.0, 1e-2);
  EXPECT_LT(filter.variance(), 0.05);
}

TEST(KalmanFilter1D, FirstUpdateJumpsTowardMeasurementWithWidePrior) {
  KalmanFilter1D filter(0.0, 1.0, 0.0, 1e6);
  filter.update(10.0);
  EXPECT_NEAR(filter.estimate(), 10.0, 0.01);
  EXPECT_NEAR(filter.gain(), 1.0, 0.01);
}

TEST(KalmanFilter1D, SmoothsNoise) {
  KalmanFilter1D filter(0.01, 4.0, 0.0, 100.0);
  Rng rng(3);
  double sum_sq_err = 0.0;
  double sum_sq_raw = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal(20.0, 2.0);
    const double est = filter.update(z);
    if (i > 100) {
      sum_sq_err += (est - 20.0) * (est - 20.0);
      sum_sq_raw += (z - 20.0) * (z - 20.0);
    }
  }
  // The filtered estimate has far less variance than the raw signal.
  EXPECT_LT(sum_sq_err, 0.2 * sum_sq_raw);
}

TEST(KalmanFilter1D, TracksDriftingSignal) {
  KalmanFilter1D filter(1.0, 4.0, 0.0, 100.0);
  Rng rng(5);
  double truth = 0.0;
  for (int i = 0; i < 500; ++i) {
    truth += 0.5;  // steady ramp
    filter.update(rng.normal(truth, 1.0));
  }
  // Tracks with bounded lag.
  EXPECT_NEAR(filter.estimate(), truth, 5.0);
}

TEST(KalmanFilter1D, GainBetweenZeroAndOne) {
  KalmanFilter1D filter(0.5, 2.0, 0.0, 10.0);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    filter.update(rng.normal(0.0, 1.0));
    EXPECT_GT(filter.gain(), 0.0);
    EXPECT_LT(filter.gain(), 1.0);
  }
}

TEST(KalmanFilter1D, ZeroProcessNoiseVarianceMonotonicallyShrinks) {
  KalmanFilter1D filter(0.0, 1.0, 0.0, 10.0);
  double prev = 1e9;
  for (int i = 0; i < 50; ++i) {
    filter.update(1.0);
    EXPECT_LT(filter.variance(), prev);
    prev = filter.variance();
  }
}

TEST(KalmanFilter1D, CountsUpdates) {
  KalmanFilter1D filter(0.1, 1.0);
  EXPECT_EQ(filter.updates(), 0);
  filter.update(1.0);
  filter.update(2.0);
  EXPECT_EQ(filter.updates(), 2);
}

TEST(KalmanFilter1D, SteadyStateGainMatchesTheory) {
  // For a random-walk model, steady-state covariance P solves
  // P = (P + q) r / (P + q + r).
  const double q = 0.5;
  const double r = 2.0;
  KalmanFilter1D filter(q, r, 0.0, 1.0);
  for (int i = 0; i < 1000; ++i) filter.update(0.0);
  const double p_pred = filter.variance() + q;
  const double expected_gain = p_pred / (p_pred + r);
  filter.update(0.0);
  EXPECT_NEAR(filter.gain(), expected_gain, 1e-6);
}

}  // namespace
}  // namespace memca::core
