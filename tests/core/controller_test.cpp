#include "core/controller.h"

#include <gtest/gtest.h>

#include "testbed/rubbos_testbed.h"

namespace memca::core {
namespace {

std::unique_ptr<MemcaAttack> make_attack(testbed::RubbosTestbed& bed, AttackParams params,
                                         AttackGoals goals, SimTime epoch = sec(std::int64_t{5})) {
  MemcaConfig config;
  config.params = params;
  config.goals = goals;
  config.enable_controller = true;
  config.controller.epoch = epoch;
  return bed.make_attack(config);
}

TEST(MemcaController, EscalatesUntilDamageGoalMet) {
  testbed::RubbosTestbed bed;
  bed.start();
  AttackParams weak;
  weak.intensity = 0.3;
  weak.burst_length = msec(100);
  weak.burst_interval = sec(std::int64_t{2});
  AttackGoals goals;  // p95 > 1 s, millibottleneck < 1 s
  auto attack = make_attack(bed, weak, goals);
  attack->start();
  bed.sim().run_for(4 * kMinute);

  MemcaController& ctl = *attack->controller();
  ASSERT_GT(ctl.epochs(), 10);
  const AttackParams final_params = ctl.history().back().params;
  // The commander had to escalate beyond the weak start.
  EXPECT_GT(final_params.intensity, weak.intensity);
  EXPECT_GT(final_params.burst_length, weak.burst_length);
  EXPECT_TRUE(ctl.goal_met());
  EXPECT_GE(ctl.filtered_rt(), goals.damage_target);
}

TEST(MemcaController, StealthBoundShrinksBurstLength) {
  testbed::RubbosTestbed bed;
  bed.start();
  AttackParams loud;
  loud.intensity = 1.0;
  loud.burst_length = msec(900);
  loud.burst_interval = sec(std::int64_t{2});
  AttackGoals goals;
  goals.stealth_bound = msec(600);  // tight bound: 900 ms bursts violate it
  auto attack = make_attack(bed, loud, goals);
  attack->start();
  bed.sim().run_for(2 * kMinute);

  MemcaController& ctl = *attack->controller();
  const AttackParams final_params = ctl.history().back().params;
  // 600 ms / 1.2 safety = 500 ms is the largest compliant burst.
  EXPECT_LE(final_params.burst_length, msec(500));
  EXPECT_TRUE(ctl.history().back().stealth_ok);
}

TEST(MemcaController, OvershootRelaxesInterval) {
  testbed::RubbosTestbed bed;
  bed.start();
  AttackParams strong;
  strong.intensity = 1.0;
  strong.burst_length = msec(600);
  strong.burst_interval = sec(std::int64_t{1});
  AttackGoals goals;
  goals.damage_target = msec(100);  // trivially exceeded -> overshoot
  auto attack = make_attack(bed, strong, goals);
  attack->start();
  bed.sim().run_for(3 * kMinute);

  const AttackParams final_params = attack->controller()->history().back().params;
  EXPECT_GT(final_params.burst_interval, strong.burst_interval);
}

TEST(MemcaController, HistoryRecordsEveryEpoch) {
  testbed::RubbosTestbed bed;
  bed.start();
  auto attack = make_attack(bed, AttackParams{}, AttackGoals{}, sec(std::int64_t{10}));
  attack->start();
  bed.sim().run_for(kMinute);
  EXPECT_EQ(attack->controller()->epochs(), 6);
  for (const EpochRecord& rec : attack->controller()->history()) {
    EXPECT_GT(rec.params.intensity, 0.0);
    EXPECT_GT(rec.params.burst_interval, rec.params.burst_length);
    EXPECT_GE(rec.stealth_estimate, 0);
  }
}

TEST(MemcaController, RespectsParameterBounds) {
  testbed::RubbosTestbed bed;
  bed.start();
  AttackParams weak;
  weak.intensity = 0.2;
  weak.burst_length = msec(100);
  weak.burst_interval = sec(std::int64_t{8});
  AttackGoals goals;
  goals.damage_target = sec(std::int64_t{30});  // unreachable: escalate forever
  MemcaConfig config;
  config.params = weak;
  config.goals = goals;
  config.enable_controller = true;
  config.controller.epoch = sec(std::int64_t{5});
  auto attack = bed.make_attack(config);
  attack->start();
  bed.sim().run_for(5 * kMinute);

  const ParamBounds bounds;  // defaults used by the controller config
  for (const EpochRecord& rec : attack->controller()->history()) {
    EXPECT_LE(rec.params.intensity, bounds.max_intensity);
    EXPECT_GE(rec.params.intensity, 0.2);
    EXPECT_LE(rec.params.burst_length, bounds.max_burst_length);
    EXPECT_GE(rec.params.burst_interval, bounds.min_interval);
  }
}

TEST(MemcaController, FilterSmoothsProbeNoise) {
  testbed::RubbosTestbed bed;
  bed.start();
  auto attack = make_attack(bed, AttackParams{}, AttackGoals{});
  attack->start();
  bed.sim().run_for(3 * kMinute);
  // Filtered estimate stays within the envelope of raw measurements.
  SimTime max_raw = 0;
  for (const EpochRecord& rec : attack->controller()->history()) {
    max_raw = std::max(max_raw, rec.measured_rt);
  }
  EXPECT_LE(attack->controller()->filtered_rt(), max_raw);
  EXPECT_GT(attack->controller()->filtered_rt(), 0);
}

}  // namespace
}  // namespace memca::core
