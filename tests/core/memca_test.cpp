#include "core/memca.h"

#include <gtest/gtest.h>

#include "testbed/rubbos_testbed.h"

namespace memca::core {
namespace {

TEST(MemcaAttack, OpenLoopConfigurationRunsFixedParams) {
  testbed::RubbosTestbed bed;
  bed.start();
  MemcaConfig config;
  config.enable_controller = false;
  config.params.burst_length = msec(500);
  config.params.burst_interval = sec(std::int64_t{2});
  auto attack = bed.make_attack(config);
  EXPECT_EQ(attack->controller(), nullptr);
  attack->start();
  bed.sim().run_for(kMinute);
  EXPECT_EQ(attack->scheduler().bursts_fired(), 31);
  EXPECT_EQ(attack->scheduler().params().burst_length, msec(500));
  EXPECT_GT(attack->prober().probes_sent(), 0);
}

TEST(MemcaAttack, StartStopLifecycle) {
  testbed::RubbosTestbed bed;
  bed.start();
  MemcaConfig config;
  config.enable_controller = false;
  auto attack = bed.make_attack(config);
  EXPECT_FALSE(attack->running());
  attack->start();
  attack->start();  // idempotent
  EXPECT_TRUE(attack->running());
  bed.sim().run_for(sec(std::int64_t{5}));
  attack->stop();
  attack->stop();  // idempotent
  EXPECT_FALSE(attack->running());
  const auto bursts = attack->scheduler().bursts_fired();
  bed.sim().run_for(sec(std::int64_t{10}));
  EXPECT_EQ(attack->scheduler().bursts_fired(), bursts);
  EXPECT_FALSE(bed.mysql_host().any_lock_active());
}

TEST(MemcaAttack, CausesTailDamageAgainstTestbed) {
  // The headline integration property: with the paper's parameters the
  // client p95 exceeds 1 s while baseline p95 is tens of milliseconds.
  testbed::RubbosTestbed bed;
  bed.start();
  MemcaConfig config;
  config.enable_controller = false;
  config.params.burst_length = msec(500);
  config.params.burst_interval = sec(std::int64_t{2});
  config.params.type = cloud::MemoryAttackType::kMemoryLock;
  auto attack = bed.make_attack(config);
  attack->start();
  bed.sim().run_for(3 * kMinute);
  EXPECT_GE(bed.clients().response_times().quantile(0.95), sec(std::int64_t{1}));
}

TEST(MemcaAttack, BaselineWithoutAttackIsFast) {
  testbed::RubbosTestbed bed;
  bed.start();
  bed.sim().run_for(3 * kMinute);
  EXPECT_LT(bed.clients().response_times().quantile(0.95), msec(100));
  EXPECT_EQ(bed.clients().dropped_attempts(), 0);
}

TEST(MemcaAttack, ProberObservesTheDamage) {
  testbed::RubbosTestbed bed;
  bed.start();
  MemcaConfig config;
  config.enable_controller = false;
  config.params.burst_length = msec(500);
  config.params.burst_interval = sec(std::int64_t{2});
  auto attack = bed.make_attack(config);
  attack->start();
  bed.sim().run_for(2 * kMinute);
  // The attacker's own probe stream sees the long tail it creates.
  EXPECT_GT(attack->prober().quantile_in_window(0.95, kMinute), msec(200));
}

TEST(MemcaAttack, AttackIsDeterministicGivenSeed) {
  auto run_once = [] {
    testbed::RubbosTestbed bed;
    bed.start();
    MemcaConfig config;
    config.enable_controller = false;
    auto attack = bed.make_attack(config);
    attack->start();
    bed.sim().run_for(kMinute);
    return bed.clients().response_times().quantile(0.95);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace memca::core
