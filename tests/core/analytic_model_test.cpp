#include "core/analytic_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace memca::core {
namespace {

/// The RUBBoS-like 3-tier calibration used in the paper's simulation
/// analysis: front queue largest, back tier the bottleneck.
AttackModelInputs rubbos_inputs() {
  AttackModelInputs in;
  in.tiers = {
      {100.0, 10000.0, 0.0},  // Apache
      {60.0, 3000.0, 0.0},    // Tomcat
      {30.0, 1000.0, 500.0},  // MySQL: lambda = 500/s, C_off = 1000/s
  };
  in.degradation_index = 0.1;
  in.burst_length = msec(500);
  in.burst_interval = sec(std::int64_t{2});
  return in;
}

TEST(DegradationIndex, Equation2) {
  EXPECT_DOUBLE_EQ(degradation_index(0.0, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(degradation_index(900.0, 1000.0), 0.1);
  EXPECT_DOUBLE_EQ(degradation_index(1000.0, 1000.0), 0.0);
}

TEST(AnalyticModel, Equation3CapacityOn) {
  const auto out = evaluate_attack_model(rubbos_inputs());
  EXPECT_DOUBLE_EQ(out.capacity_on, 100.0);
}

TEST(AnalyticModel, ConditionsHoldForCalibration) {
  const auto out = evaluate_attack_model(rubbos_inputs());
  EXPECT_TRUE(out.condition1);
  EXPECT_TRUE(out.condition2);
}

TEST(AnalyticModel, Equation4BackTierFillTime) {
  const auto out = evaluate_attack_model(rubbos_inputs());
  // l_n,UP = Q_n / (lambda_n - C_on) = 30 / (500 - 100) = 75 ms.
  EXPECT_NEAR(out.fill_time_s[2], 0.075, 1e-9);
}

TEST(AnalyticModel, Equations5And6UpstreamFillTimes) {
  const auto out = evaluate_attack_model(rubbos_inputs());
  // l_2,UP = (Q_2 - Q_3) / (lambda_2 + lambda_3 - C_on) = 30 / 400 = 75 ms.
  EXPECT_NEAR(out.fill_time_s[1], 0.075, 1e-9);
  // l_1,UP = (Q_1 - Q_2) / (sum lambda - C_on) = 40 / 400 = 100 ms.
  EXPECT_NEAR(out.fill_time_s[0], 0.100, 1e-9);
  EXPECT_NEAR(out.total_fill_time_s, 0.250, 1e-9);
}

TEST(AnalyticModel, Equation7DamagePeriod) {
  const auto out = evaluate_attack_model(rubbos_inputs());
  // P_D = L - sum l_i = 0.5 - 0.25 = 0.25 s.
  EXPECT_NEAR(out.damage_period_s, 0.25, 1e-9);
}

TEST(AnalyticModel, Equation8Rho) {
  const auto out = evaluate_attack_model(rubbos_inputs());
  EXPECT_NEAR(out.rho, 0.125, 1e-9);
  EXPECT_NEAR(predicted_drop_fraction(out), 0.125, 1e-9);
}

TEST(AnalyticModel, Equation9DrainTime) {
  const auto out = evaluate_attack_model(rubbos_inputs());
  // l_n,DOWN = Q_n / (C_off - lambda) = 30 / 500 = 60 ms.
  EXPECT_NEAR(out.drain_time_s, 0.060, 1e-9);
}

TEST(AnalyticModel, Equation10Millibottleneck) {
  const auto out = evaluate_attack_model(rubbos_inputs());
  // P_MB = L + l_n,DOWN = 0.56 s < 1 s: stealthy.
  EXPECT_NEAR(out.millibottleneck_s, 0.560, 1e-9);
}

TEST(AnalyticModel, ShortBurstNeverReachesHoldOn) {
  auto in = rubbos_inputs();
  in.burst_length = msec(100);  // < 250 ms total fill time
  const auto out = evaluate_attack_model(in);
  EXPECT_DOUBLE_EQ(out.damage_period_s, 0.0);
  EXPECT_DOUBLE_EQ(out.rho, 0.0);
}

TEST(AnalyticModel, WeakAttackViolatesCondition2) {
  auto in = rubbos_inputs();
  in.degradation_index = 0.8;  // C_on = 800 > lambda = 500
  const auto out = evaluate_attack_model(in);
  EXPECT_FALSE(out.condition2);
  EXPECT_TRUE(std::isinf(out.fill_time_s[2]));
  EXPECT_DOUBLE_EQ(out.damage_period_s, 0.0);
}

TEST(AnalyticModel, Condition1ViolationDetected) {
  auto in = rubbos_inputs();
  in.tiers[0].queue_size = 20.0;  // front smaller than middle
  const auto out = evaluate_attack_model(in);
  EXPECT_FALSE(out.condition1);
}

TEST(AnalyticModel, OverloadedSystemNeverDrains) {
  auto in = rubbos_inputs();
  in.tiers[2].arrival_rate = 1200.0;  // above C_off
  const auto out = evaluate_attack_model(in);
  EXPECT_TRUE(std::isinf(out.drain_time_s));
}

TEST(AnalyticModel, DeeperDegradationFillsFasterAndHurtsMore) {
  // rho is non-increasing in D; the weakest attacks (large D) never reach
  // hold-on within the burst (rho = 0), the deepest clearly do.
  double prev_rho = 1.0;
  for (double d : {0.05, 0.1, 0.2, 0.3, 0.4}) {
    auto in = rubbos_inputs();
    in.degradation_index = d;
    const auto out = evaluate_attack_model(in);
    EXPECT_LE(out.rho, prev_rho) << "D=" << d;
    prev_rho = out.rho;
  }
  auto deep = rubbos_inputs();
  deep.degradation_index = 0.05;
  auto shallow = rubbos_inputs();
  shallow.degradation_index = 0.4;
  EXPECT_GT(evaluate_attack_model(deep).rho, evaluate_attack_model(shallow).rho);
}

TEST(AnalyticModel, LongerBurstMoreDamageButLongerMillibottleneck) {
  double prev_rho = -1.0;
  double prev_mb = -1.0;
  for (SimTime l : {msec(300), msec(400), msec(500), msec(700)}) {
    auto in = rubbos_inputs();
    in.burst_length = l;
    const auto out = evaluate_attack_model(in);
    EXPECT_GT(out.rho, prev_rho);
    EXPECT_GT(out.millibottleneck_s, prev_mb);
    prev_rho = out.rho;
    prev_mb = out.millibottleneck_s;
  }
}

TEST(AnalyticModel, ShorterIntervalMoreDamage) {
  auto in = rubbos_inputs();
  in.burst_interval = sec(std::int64_t{4});
  const double rho4 = evaluate_attack_model(in).rho;
  in.burst_interval = sec(std::int64_t{1});
  const double rho1 = evaluate_attack_model(in).rho;
  EXPECT_NEAR(rho1, 4.0 * rho4, 1e-9);
}

TEST(AnalyticModel, RequiredBurstLengthInvertsRho) {
  auto in = rubbos_inputs();
  const SimTime needed = required_burst_length(in, 0.125);
  EXPECT_NEAR(static_cast<double>(needed), static_cast<double>(msec(500)), 1000.0);
  // Plugging the answer back reproduces the target rho.
  in.burst_length = needed;
  EXPECT_NEAR(evaluate_attack_model(in).rho, 0.125, 0.01);
}

TEST(AnalyticModel, RequiredBurstLengthUnreachable) {
  auto in = rubbos_inputs();
  in.degradation_index = 0.9;  // condition 2 fails
  EXPECT_EQ(required_burst_length(in, 0.1), 0);
}

TEST(AnalyticModel, TwoTierSystem) {
  AttackModelInputs in;
  in.tiers = {{50.0, 5000.0, 0.0}, {20.0, 1000.0, 600.0}};
  in.degradation_index = 0.1;
  in.burst_length = msec(400);
  in.burst_interval = sec(std::int64_t{2});
  const auto out = evaluate_attack_model(in);
  // l_2 = 20/(600-100) = 40 ms; l_1 = 30/(600-100) = 60 ms.
  EXPECT_NEAR(out.fill_time_s[1], 0.040, 1e-9);
  EXPECT_NEAR(out.fill_time_s[0], 0.060, 1e-9);
  EXPECT_NEAR(out.damage_period_s, 0.300, 1e-9);
}

TEST(AnalyticModel, SingleTierSystem) {
  AttackModelInputs in;
  in.tiers = {{10.0, 1000.0, 500.0}};
  in.degradation_index = 0.1;
  in.burst_length = msec(200);
  in.burst_interval = sec(std::int64_t{2});
  const auto out = evaluate_attack_model(in);
  EXPECT_NEAR(out.fill_time_s[0], 10.0 / 400.0, 1e-9);
  EXPECT_GT(out.damage_period_s, 0.0);
}

class RhoSweep : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(RhoSweep, DamageAndStealthTradeoffConsistent) {
  const double d = std::get<0>(GetParam());
  const int l_ms = std::get<1>(GetParam());
  auto in = rubbos_inputs();
  in.degradation_index = d;
  in.burst_length = msec(l_ms);
  const auto out = evaluate_attack_model(in);
  // rho never exceeds the duty cycle, and P_MB always exceeds L.
  EXPECT_LE(out.rho, to_seconds(in.burst_length) / to_seconds(in.burst_interval) + 1e-12);
  EXPECT_GE(out.millibottleneck_s, to_seconds(in.burst_length));
  EXPECT_GE(out.damage_period_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, RhoSweep,
                         ::testing::Combine(::testing::Values(0.05, 0.1, 0.2, 0.4),
                                            ::testing::Values(100, 300, 500, 800)));

}  // namespace
}  // namespace memca::core
