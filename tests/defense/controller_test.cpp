#include "defense/controller.h"

#include <gtest/gtest.h>

#include "core/memca.h"
#include "testbed/rubbos_testbed.h"

namespace memca::defense {
namespace {

DefenseConfig fast_defense() {
  DefenseConfig config;
  config.cusum.baseline_samples = 20;
  config.attribution_window = sec(std::int64_t{8});
  return config;
}

TEST(HostIsolation, CapsEffectiveActivity) {
  cloud::Host host(cloud::xeon_e5_2603_v3());
  const cloud::VmId victim = host.add_vm({"victim", 2, cloud::Placement::kPinnedPackage, 0});
  const cloud::VmId attacker =
      host.add_vm({"attacker", 1, cloud::Placement::kPinnedPackage, 0});
  host.set_memory_activity(victim, 12.0, 0.0);
  host.set_memory_activity(attacker, 0.0, 0.9);
  const double starved = host.achieved_bandwidth(victim);
  EXPECT_LT(starved, 3.0);
  host.set_memory_isolation(attacker, 0.05, 2.0);
  EXPECT_TRUE(host.isolated(attacker));
  EXPECT_GT(host.achieved_bandwidth(victim), 10.0);
  host.clear_memory_isolation(attacker);
  EXPECT_FALSE(host.isolated(attacker));
  EXPECT_LT(host.achieved_bandwidth(victim), 3.0);
}

TEST(HostIsolation, NotifiesContentionObservers) {
  cloud::Host host(cloud::xeon_e5_2603_v3());
  const cloud::VmId attacker =
      host.add_vm({"attacker", 1, cloud::Placement::kPinnedPackage, 0});
  host.set_memory_activity(attacker, 0.0, 0.9);
  int notifications = 0;
  host.on_contention_change([&] { ++notifications; });
  host.set_memory_isolation(attacker, 0.05, 2.0);
  EXPECT_EQ(notifications, 1);
  host.clear_memory_isolation(attacker);
  EXPECT_EQ(notifications, 2);
  host.clear_memory_isolation(attacker);  // idempotent: no extra notify
  EXPECT_EQ(notifications, 2);
}

TEST(DefenseController, StaysQuietWithoutAttack) {
  testbed::RubbosTestbed bed;
  bed.start();
  DefenseController defense(bed.sim(), bed.target_tier(), bed.target_host(),
                            bed.target_vm(), fast_defense());
  defense.start();
  bed.sim().run_for(5 * kMinute);
  EXPECT_EQ(defense.stage(), DefenseStage::kMonitoring);
  EXPECT_EQ(defense.timeline().alarm, -1);
  EXPECT_EQ(defense.attribution_samples(), 0);
}

TEST(DefenseController, DetectsAttributesAndMitigatesMemca) {
  testbed::RubbosTestbed bed;
  bed.start();
  DefenseController defense(bed.sim(), bed.target_tier(), bed.target_host(),
                            bed.target_vm(), fast_defense());
  defense.start();

  core::MemcaConfig attack_config;
  attack_config.enable_controller = false;
  attack_config.params.burst_length = msec(500);
  attack_config.params.burst_interval = sec(std::int64_t{2});
  auto attack = bed.make_attack(attack_config);
  // Give the CUSUM a clean baseline first.
  bed.sim().schedule_at(kMinute, [&] { attack->start(); });
  bed.sim().run_for(6 * kMinute);

  EXPECT_EQ(defense.stage(), DefenseStage::kMitigated);
  EXPECT_EQ(defense.timeline().suspect, bed.adversary_vm());
  EXPECT_GE(defense.timeline().alarm, kMinute);
  // Mitigation latency = CUSUM latency-free attribution window + margin.
  EXPECT_GT(defense.time_to_mitigate(), 0);
  EXPECT_LE(defense.time_to_mitigate(), kMinute);
  // Isolation restores the tier's capacity during subsequent bursts.
  bed.sim().run_for(sec(std::int64_t{1}));
  EXPECT_GT(bed.coupling().capacity_multiplier(), 0.8);
}

TEST(DefenseController, MitigationRestoresTailLatency) {
  auto run = [](bool defended) {
    testbed::TestbedConfig bed_config;
    bed_config.record_response_series = true;  // the late-window tail reads it
    testbed::RubbosTestbed bed(bed_config);
    bed.start();
    std::unique_ptr<DefenseController> defense;
    if (defended) {
      defense = std::make_unique<DefenseController>(bed.sim(), bed.target_tier(),
                                                    bed.target_host(), bed.target_vm(),
                                                    fast_defense());
      defense->start();
    }
    core::MemcaConfig attack_config;
    attack_config.enable_controller = false;
    auto attack = bed.make_attack(attack_config);
    bed.sim().schedule_at(kMinute, [&] { attack->start(); });
    bed.sim().run_for(8 * kMinute);
    // Tail over the final 3 minutes (post-mitigation steady state).
    SimTime worst_late_rt = 0;
    for (const Sample& s : bed.clients().response_series().samples()) {
      if (s.time >= 5 * kMinute) {
        worst_late_rt = std::max(worst_late_rt, static_cast<SimTime>(s.value));
      }
    }
    return worst_late_rt;
  };
  const SimTime undefended = run(false);
  const SimTime defended = run(true);
  EXPECT_GE(undefended, sec(std::int64_t{1}));  // attack still biting
  EXPECT_LT(defended, msec(400));               // isolated attacker is toothless
}

TEST(DefenseController, DoesNotAccuseSteadyNeighbors) {
  // A host with only steady neighbors and no attacker: even if load pushes
  // utilization up, attribution finds no bursty suspect.
  testbed::TestbedConfig config;
  config.background_neighbors = 2;
  config.num_users = 5200;  // push utilization up to force a CUSUM alarm
  testbed::RubbosTestbed bed(config);
  bed.start();
  DefenseConfig defense_config = fast_defense();
  defense_config.cusum.threshold = 0.3;  // hair-trigger
  DefenseController defense(bed.sim(), bed.target_tier(), bed.target_host(),
                            bed.target_vm(), defense_config);
  defense.start();
  bed.sim().run_for(6 * kMinute);
  // Whatever happened, no neighbor got isolated.
  EXPECT_NE(defense.stage(), DefenseStage::kMitigated);
}

}  // namespace
}  // namespace memca::defense
