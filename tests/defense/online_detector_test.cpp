#include "defense/online_detector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace memca::defense {
namespace {

TEST(OnlineCusum, LearnsBaselineThenWatches) {
  OnlineCusum cusum;
  for (int i = 0; i < 30; ++i) {
    EXPECT_FALSE(cusum.update(0.5));
    EXPECT_FALSE(cusum.alarmed());
  }
  EXPECT_TRUE(cusum.baseline_ready());
  EXPECT_NEAR(cusum.baseline(), 0.5, 1e-12);
}

TEST(OnlineCusum, FiresOnSustainedShift) {
  OnlineCusum cusum;
  Rng rng(1);
  for (int i = 0; i < 40; ++i) cusum.update(rng.normal(0.45, 0.02));
  int steps_to_alarm = 0;
  bool fired = false;
  for (int i = 0; i < 100 && !fired; ++i) {
    fired = cusum.update(rng.normal(0.65, 0.02)) && !steps_to_alarm;
    ++steps_to_alarm;
    if (cusum.alarmed()) break;
  }
  EXPECT_TRUE(cusum.alarmed());
  // +0.20 shift with 0.05 allowance: ~7 samples to cross threshold 1.0.
  EXPECT_LE(steps_to_alarm, 15);
}

TEST(OnlineCusum, StaysQuietOnNoise) {
  OnlineCusum cusum;
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) cusum.update(rng.normal(0.5, 0.03));
  EXPECT_FALSE(cusum.alarmed());
}

TEST(OnlineCusum, UpdateKeepsReturningTrueAfterAlarm) {
  OnlineCusum cusum;
  for (int i = 0; i < 30; ++i) cusum.update(0.3);
  for (int i = 0; i < 50; ++i) cusum.update(0.9);
  EXPECT_TRUE(cusum.alarmed());
  EXPECT_TRUE(cusum.update(0.3));  // still alarmed even if signal subsides
}

TEST(OnlineCusum, ResetRelearnsBaseline) {
  OnlineCusum cusum;
  for (int i = 0; i < 30; ++i) cusum.update(0.3);
  for (int i = 0; i < 50; ++i) cusum.update(0.9);
  EXPECT_TRUE(cusum.alarmed());
  cusum.reset();
  EXPECT_FALSE(cusum.alarmed());
  EXPECT_EQ(cusum.samples_seen(), 0u);
  // The new (higher) level becomes the baseline: no alarm.
  for (int i = 0; i < 100; ++i) cusum.update(0.9);
  EXPECT_FALSE(cusum.alarmed());
}

TEST(OnlineBurstScore, ConstantSignalScoresZero) {
  OnlineBurstScore score;
  for (int i = 0; i < 200; ++i) score.update(5.0);
  EXPECT_NEAR(score.score(), 0.0, 1e-9);
  EXPECT_NEAR(score.level(), 5.0, 1e-9);
}

TEST(OnlineBurstScore, OnOffSignalScoresHigh) {
  OnlineBurstScore onoff;
  OnlineBurstScore steady;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    onoff.update((i % 40) < 10 ? 9.5 : 0.0);  // MemCA-like duty 25%
    steady.update(rng.normal(2.0, 0.2));       // ordinary neighbor
  }
  EXPECT_GT(onoff.score(), 1.0);
  EXPECT_LT(steady.score(), 0.3);
  EXPECT_GT(onoff.score(), 5.0 * steady.score());
}

TEST(OnlineBurstScore, IdleSignalScoresZero) {
  OnlineBurstScore score;
  for (int i = 0; i < 100; ++i) score.update(0.0);
  EXPECT_NEAR(score.score(), 0.0, 1e-9);
}

}  // namespace
}  // namespace memca::defense
