#include "trace/recorder.h"

#include <gtest/gtest.h>

// Recording compiles out to nothing under MEMCA_TRACE=OFF; the behavioural
// tests below only apply when it is compiled in.
#ifdef MEMCA_TRACE_DISABLED
#define MEMCA_SKIP_IF_TRACE_DISABLED() \
  GTEST_SKIP() << "tracing compiled out (MEMCA_TRACE=OFF)"
#else
#define MEMCA_SKIP_IF_TRACE_DISABLED()
#endif

namespace memca::trace {
namespace {

TraceEvent event_at(SimTime t) {
  TraceEvent ev;
  ev.time = t;
  ev.request = t * 2;
  ev.kind = EventKind::kTierSpan;
  return ev;
}

TEST(TraceRecorder, RecordsAndReadsBackAcrossChunks) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder;
  EXPECT_TRUE(recorder.empty());
  // Well past one 4096-event chunk, so growth paths are exercised.
  constexpr std::size_t kCount = 10'000;
  for (std::size_t i = 0; i < kCount; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  ASSERT_EQ(recorder.size(), kCount);
  EXPECT_FALSE(recorder.truncated());
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(recorder[i].time, static_cast<SimTime>(i));
    EXPECT_EQ(recorder[i].request, static_cast<std::int64_t>(i) * 2);
  }
  // for_each visits in append order.
  SimTime expect = 0;
  recorder.for_each([&](const TraceEvent& ev) { EXPECT_EQ(ev.time, expect++); });
  EXPECT_EQ(expect, static_cast<SimTime>(kCount));
}

TEST(TraceRecorder, MaxEventsTruncates) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder(TraceRecorder::Config{100});
  for (std::size_t i = 0; i < 200; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  EXPECT_EQ(recorder.size(), 100u);
  EXPECT_TRUE(recorder.truncated());
  EXPECT_EQ(recorder[99].time, 99);
}

TEST(TraceRecorder, ClearKeepsCapacityAndResetsState) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder(TraceRecorder::Config{50});
  for (std::size_t i = 0; i < 80; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  EXPECT_TRUE(recorder.truncated());
  recorder.clear();
  EXPECT_TRUE(recorder.empty());
  EXPECT_FALSE(recorder.truncated());
  recorder.record(event_at(7));
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder[0].time, 7);
}

TraceRecorder::Config ring_config(std::size_t capacity) {
  TraceRecorder::Config config;
  config.ring_capacity = capacity;
  return config;
}

TEST(TraceRecorderRing, WrapsKeepingNewestWindow) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder(ring_config(64));
  EXPECT_TRUE(recorder.ring_mode());
  EXPECT_FALSE(recorder.wrapped());
  EXPECT_EQ(recorder.bytes_retained(), 64 * sizeof(TraceEvent));
  for (std::size_t i = 0; i < 200; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  EXPECT_TRUE(recorder.wrapped());
  EXPECT_FALSE(recorder.truncated());  // eviction, not truncation
  ASSERT_EQ(recorder.size(), 64u);
  EXPECT_EQ(recorder.total_recorded(), 200u);
  // The retained window is the newest 64 events in causal order.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(recorder[i].time, static_cast<SimTime>(136 + i));
  }
  SimTime expect = 136;
  recorder.for_each([&](const TraceEvent& ev) { EXPECT_EQ(ev.time, expect++); });
  // The budget never grows past the single eager allocation.
  EXPECT_EQ(recorder.bytes_retained(), 64 * sizeof(TraceEvent));
}

TEST(TraceRecorderRing, CapacityRoundsUpToPowerOfTwo) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder(ring_config(100));
  for (std::size_t i = 0; i < 500; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  EXPECT_EQ(recorder.size(), 128u);
  EXPECT_EQ(recorder[0].time, 500 - 128);
}

TEST(TraceRecorderRing, ClearResetsToEmpty) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder(ring_config(32));
  for (std::size_t i = 0; i < 100; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  recorder.clear();
  EXPECT_TRUE(recorder.empty());
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_FALSE(recorder.wrapped());
  recorder.record(event_at(7));
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder[0].time, 7);
}

TEST(TraceRecorderRing, SnapshotRestoresWrappedStateExactly) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder(ring_config(64));
  for (std::size_t i = 0; i < 150; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  TraceRecorder::Snapshot snap;
  recorder.capture(snap);

  // Control: the retained window after 70 more events, no rollback involved.
  for (std::size_t i = 150; i < 220; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  std::vector<SimTime> control;
  recorder.for_each([&](const TraceEvent& ev) { control.push_back(ev.time); });

  // Rollback to 150 recorded, then replay the same 70: the ring must land
  // in the same physical layout, so the retained window matches the control
  // byte for byte.
  recorder.restore(snap);
  EXPECT_EQ(recorder.total_recorded(), 150u);
  ASSERT_EQ(recorder.size(), 64u);
  EXPECT_EQ(recorder[0].time, 150 - 64);
  for (std::size_t i = 150; i < 220; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  std::vector<SimTime> replayed;
  recorder.for_each([&](const TraceEvent& ev) { replayed.push_back(ev.time); });
  EXPECT_EQ(replayed, control);
}

TEST(TraceRecorderRing, SnapshotBeforeWrapRestores) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder(ring_config(64));
  for (std::size_t i = 0; i < 10; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  TraceRecorder::Snapshot snap;
  recorder.capture(snap);
  for (std::size_t i = 10; i < 300; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  recorder.restore(snap);
  EXPECT_EQ(recorder.total_recorded(), 10u);
  ASSERT_EQ(recorder.size(), 10u);
  EXPECT_FALSE(recorder.wrapped());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(recorder[i].time, static_cast<SimTime>(i));
  }
}

TEST(TraceRecorder, EmitOnNullRecorderIsSafe) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  emit(nullptr, event_at(1));  // must be a no-op, not a crash
  TraceRecorder recorder;
  emit(&recorder, event_at(2));
  EXPECT_EQ(recorder.size(), 1u);
}

TEST(TraceEventTest, KindNamesAreDistinct) {
  EXPECT_STREQ(to_string(EventKind::kRetransmit), "retransmit");
  EXPECT_STREQ(to_string(EventKind::kTierSpan), "tier-span");
  EXPECT_STREQ(to_string(EventKind::kCapacity), "capacity");
  EXPECT_STRNE(to_string(EventKind::kBurstOn), to_string(EventKind::kBurstOff));
}

}  // namespace
}  // namespace memca::trace
