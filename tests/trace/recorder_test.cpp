#include "trace/recorder.h"

#include <gtest/gtest.h>

// Recording compiles out to nothing under MEMCA_TRACE=OFF; the behavioural
// tests below only apply when it is compiled in.
#ifdef MEMCA_TRACE_DISABLED
#define MEMCA_SKIP_IF_TRACE_DISABLED() \
  GTEST_SKIP() << "tracing compiled out (MEMCA_TRACE=OFF)"
#else
#define MEMCA_SKIP_IF_TRACE_DISABLED()
#endif

namespace memca::trace {
namespace {

TraceEvent event_at(SimTime t) {
  TraceEvent ev;
  ev.time = t;
  ev.request = t * 2;
  ev.kind = EventKind::kTierSpan;
  return ev;
}

TEST(TraceRecorder, RecordsAndReadsBackAcrossChunks) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder;
  EXPECT_TRUE(recorder.empty());
  // Well past one 4096-event chunk, so growth paths are exercised.
  constexpr std::size_t kCount = 10'000;
  for (std::size_t i = 0; i < kCount; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  ASSERT_EQ(recorder.size(), kCount);
  EXPECT_FALSE(recorder.truncated());
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(recorder[i].time, static_cast<SimTime>(i));
    EXPECT_EQ(recorder[i].request, static_cast<std::int64_t>(i) * 2);
  }
  // for_each visits in append order.
  SimTime expect = 0;
  recorder.for_each([&](const TraceEvent& ev) { EXPECT_EQ(ev.time, expect++); });
  EXPECT_EQ(expect, static_cast<SimTime>(kCount));
}

TEST(TraceRecorder, MaxEventsTruncates) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder(TraceRecorder::Config{100});
  for (std::size_t i = 0; i < 200; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  EXPECT_EQ(recorder.size(), 100u);
  EXPECT_TRUE(recorder.truncated());
  EXPECT_EQ(recorder[99].time, 99);
}

TEST(TraceRecorder, ClearKeepsCapacityAndResetsState) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder(TraceRecorder::Config{50});
  for (std::size_t i = 0; i < 80; ++i) {
    recorder.record(event_at(static_cast<SimTime>(i)));
  }
  EXPECT_TRUE(recorder.truncated());
  recorder.clear();
  EXPECT_TRUE(recorder.empty());
  EXPECT_FALSE(recorder.truncated());
  recorder.record(event_at(7));
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder[0].time, 7);
}

TEST(TraceRecorder, EmitOnNullRecorderIsSafe) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  emit(nullptr, event_at(1));  // must be a no-op, not a crash
  TraceRecorder recorder;
  emit(&recorder, event_at(2));
  EXPECT_EQ(recorder.size(), 1u);
}

TEST(TraceEventTest, KindNamesAreDistinct) {
  EXPECT_STREQ(to_string(EventKind::kRetransmit), "retransmit");
  EXPECT_STREQ(to_string(EventKind::kTierSpan), "tier-span");
  EXPECT_STREQ(to_string(EventKind::kCapacity), "capacity");
  EXPECT_STRNE(to_string(EventKind::kBurstOn), to_string(EventKind::kBurstOff));
}

}  // namespace
}  // namespace memca::trace
