#include "trace/exporters.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "trace/attributor.h"
#include "trace/recorder.h"

// Recording compiles out to nothing under MEMCA_TRACE=OFF; these tests
// only apply when it is compiled in.
#ifdef MEMCA_TRACE_DISABLED
#define MEMCA_SKIP_IF_TRACE_DISABLED() \
  GTEST_SKIP() << "tracing compiled out (MEMCA_TRACE=OFF)"
#else
#define MEMCA_SKIP_IF_TRACE_DISABLED()
#endif

namespace memca::trace {
namespace {

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// One request through two tiers plus capacity/burst marks and a retransmit.
void fill_sample_stream(TraceRecorder& r) {
  auto ev = [](SimTime t, std::int64_t req, SimTime aux, double value, std::int32_t user,
               int tier, EventKind kind, int attempt) {
    return TraceEvent{t, req, aux, value, user, static_cast<std::int16_t>(tier), kind,
                      static_cast<std::uint8_t>(attempt)};
  };
  r.record(ev(0, 0, 0, 1.0, -1, -1, EventKind::kBurstOn, 0));
  r.record(ev(0, 0, 0, 0.5, -1, 1, EventKind::kCapacity, 0));
  // Tier 0: enter 5, service 10..30; tier 1: enter 40, service 45..60
  // (so tier 0 holds its thread 30..60 — the "downstream" slice).
  r.record(ev(30, 1, 5, 10.0, 3, 0, EventKind::kTierSpan, 0));
  r.record(ev(60, 1, 40, 45.0, 3, 1, EventKind::kTierSpan, 0));
  r.record(ev(60, 1, 5, 0.0, 3, -1, EventKind::kComplete, 0));
  r.record(ev(61, 2, 0, 0.0, 4, 0, EventKind::kDrop, 0));
  r.record(ev(61, 2, sec(std::int64_t{1}), 0.0, 4, -1, EventKind::kRetransmit, 0));
  r.record(ev(70, 0, 0, 1.0, -1, 1, EventKind::kCapacity, 0));
  r.record(ev(70, 0, 0, 0.0, -1, -1, EventKind::kBurstOff, 0));
}

TEST(ChromeTraceExport, EmitsSlicesCountersAndMetadata) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder;
  fill_sample_stream(recorder);
  std::ostringstream out;
  write_chrome_trace(out, recorder, ChromeTraceOptions{{"apache", "mysql"}, 0, true});
  const std::string json = out.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"apache\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mysql\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"clients\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"attack\""), std::string::npos);
  // wait (tier0 5->10, tier1 40->45), service x2, downstream (tier 0's
  // thread pinned 30->60 while the request is in tier 1), rto-wait on the
  // client track.
  EXPECT_EQ(count_occurrences(json, "\"name\":\"wait\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"service\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"downstream\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"rto-wait\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"capacity\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"burst\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"drop\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"complete\""), 1u);
  // Balanced JSON object: equally many opening and closing braces.
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST(ChromeTraceExport, ClientTrackCanBeDisabled) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder;
  fill_sample_stream(recorder);
  std::ostringstream out;
  write_chrome_trace(out, recorder, ChromeTraceOptions{{"apache", "mysql"}, 0, false});
  const std::string json = out.str();
  EXPECT_EQ(json.find("\"name\":\"clients\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"rto-wait\""), 0u);
  // Tier content is unaffected.
  EXPECT_EQ(count_occurrences(json, "\"name\":\"service\""), 2u);
}

TEST(ChromeTraceExport, TandemModeSkipsDownstreamSlices) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  // rpc_holding=false (TandemQueueSystem): residence ends with local
  // service, so no thread-pinned "downstream" slices are drawn.
  TraceRecorder recorder;
  fill_sample_stream(recorder);
  std::ostringstream out;
  write_chrome_trace(out, recorder, ChromeTraceOptions{{"s0", "s1"}, 0, true, false});
  const std::string json = out.str();
  EXPECT_EQ(count_occurrences(json, "\"name\":\"downstream\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"wait\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"service\""), 2u);
}

TEST(AttributionCsvExport, OneRowPerTailRequest) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder;
  fill_sample_stream(recorder);
  // Threshold 10 us: the one completed request (total 55 us) is tail.
  TailAttributor attributor(recorder, 2, AttributorConfig{usec(10)});
  ASSERT_EQ(attributor.requests().size(), 1u);
  std::ostringstream out;
  write_attribution_csv(out, attributor);
  const std::string csv = out.str();
  // Header + one data row.
  EXPECT_EQ(count_occurrences(csv, "\n"), 2u);
  EXPECT_NE(csv.find("request,user,attempts"), std::string::npos);
  EXPECT_NE(csv.find("wait_t1_us"), std::string::npos);
  // The data row carries the dominant-cause label.
  EXPECT_NE(csv.find(",service"), std::string::npos);

  // Raise the threshold above the request's total: no data rows.
  TailAttributor strict(recorder, 2, AttributorConfig{usec(1000)});
  std::ostringstream empty;
  write_attribution_csv(empty, strict);
  EXPECT_EQ(count_occurrences(empty.str(), "\n"), 1u);
}

}  // namespace
}  // namespace memca::trace
