#include "trace/attributor.h"

#include <gtest/gtest.h>

#include "trace/recorder.h"

// Recording compiles out to nothing under MEMCA_TRACE=OFF; these tests
// only apply when it is compiled in.
#ifdef MEMCA_TRACE_DISABLED
#define MEMCA_SKIP_IF_TRACE_DISABLED() \
  GTEST_SKIP() << "tracing compiled out (MEMCA_TRACE=OFF)"
#else
#define MEMCA_SKIP_IF_TRACE_DISABLED()
#endif

namespace memca::trace {
namespace {

class StreamBuilder {
 public:
  explicit StreamBuilder(TraceRecorder& recorder) : recorder_(recorder) {}

  void client(EventKind kind, SimTime t, std::int64_t req, std::int32_t user, int attempt,
              SimTime aux) {
    recorder_.record(TraceEvent{t, req, aux, 0.0, user, -1, kind,
                                static_cast<std::uint8_t>(attempt)});
  }
  /// Consolidated tier traversal: enter in aux, service start in value,
  /// service end as the event time (mirrors TierServer::mark_span).
  void span(SimTime service_end, std::int64_t req, std::int32_t user, int tier_index,
            SimTime enter, SimTime service_start, int attempt = 0) {
    recorder_.record(TraceEvent{service_end, req, enter,
                                static_cast<double>(service_start), user,
                                static_cast<std::int16_t>(tier_index),
                                EventKind::kTierSpan,
                                static_cast<std::uint8_t>(attempt)});
  }
  void drop(SimTime t, std::int64_t req, std::int32_t user, int tier_index,
            int attempt = 0) {
    recorder_.record(TraceEvent{t, req, 0, 0.0, user, static_cast<std::int16_t>(tier_index),
                                EventKind::kDrop, static_cast<std::uint8_t>(attempt)});
  }
  void capacity(SimTime t, int tier_index, double multiplier) {
    recorder_.record(TraceEvent{t, 0, 0, multiplier, -1,
                                static_cast<std::int16_t>(tier_index),
                                EventKind::kCapacity, 0});
  }

 private:
  TraceRecorder& recorder_;
};

/// One attempt through two tiers with known wait/service/hold gaps. The
/// attempt's send instant is implicit: it is the tier-0 enter time.
void append_clean_walk(StreamBuilder& b, std::int64_t req, std::int32_t user,
                       SimTime base) {
  // Tier 0: enter 0, start 10, end 30 -> wait0 = 10, svc0 = 20.
  b.span(base + 30, req, user, 0, base + 0, base + 10);
  // Tier 1: enter 45, start 50, end 80 -> hold0 = 15, wait1 = 5, svc1 = 30.
  b.span(base + 80, req, user, 1, base + 45, base + 50);
  b.client(EventKind::kComplete, base + 80, req, user, 0, base + 0);
}

TEST(TailAttributor, ExactDecompositionOfOneAttempt) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder;
  StreamBuilder b(recorder);
  append_clean_walk(b, /*req=*/1, /*user=*/5, /*base=*/0);

  TailAttributor attributor(recorder, 2, AttributorConfig{usec(50)});
  ASSERT_EQ(attributor.requests().size(), 1u);
  const RequestBreakdown& r = attributor.requests()[0];
  EXPECT_EQ(r.final_request, 1);
  EXPECT_EQ(r.user, 5);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.total, 80);
  ASSERT_EQ(r.queue_wait.size(), 2u);
  EXPECT_EQ(r.queue_wait[0], 10);
  EXPECT_EQ(r.queue_wait[1], 5);
  EXPECT_EQ(r.service[0], 20);
  EXPECT_EQ(r.service[1], 30);
  EXPECT_EQ(r.rpc_hold[0], 15);
  EXPECT_EQ(r.rpc_hold[1], 0);
  EXPECT_EQ(r.rto_wait, 0);
  EXPECT_EQ(r.degraded_service, 0);
  EXPECT_EQ(r.slack, 0);  // wait + service + hold covers the whole span
  EXPECT_EQ(r.dominant(), Cause::kService);
}

TEST(TailAttributor, DegradedServiceIsDipOverlap) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  // Tier 1 runs at half speed over [40, 70); the tier-1 service span is
  // [50, 80), so 20 of its 30 us are degraded.
  TraceRecorder ordered;
  StreamBuilder ob(ordered);
  ob.span(30, 1, 5, 0, 0, 10);
  ob.capacity(40, 1, 0.5);
  ob.capacity(70, 1, 1.0);
  ob.span(80, 1, 5, 1, 45, 50);
  ob.client(EventKind::kComplete, 80, 1, 5, 0, 0);

  TailAttributor attributor(ordered, 2, AttributorConfig{usec(50)});
  ASSERT_EQ(attributor.requests().size(), 1u);
  const RequestBreakdown& r = attributor.requests()[0];
  EXPECT_EQ(r.degraded_service, 20);
  EXPECT_EQ(r.of(Cause::kDegradedService), 20);
  // Nominal service shrinks by the degraded part; the sum is unchanged.
  EXPECT_EQ(r.of(Cause::kService), 30);
  EXPECT_EQ(r.service_total(), 50);
}

TEST(TailAttributor, OpenDipAtStreamEndStillCounts) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder;
  StreamBuilder b(recorder);
  b.capacity(40, 1, 0.25);  // never restored
  append_clean_walk(b, 1, 5, 0);
  TailAttributor attributor(recorder, 2, AttributorConfig{usec(50)});
  ASSERT_EQ(attributor.requests().size(), 1u);
  // Dip is closed at the last event time (80): overlap with [50, 80) = 30.
  EXPECT_EQ(attributor.requests()[0].degraded_service, 30);
}

TEST(TailAttributor, DropRetransmitCompleteFoldsIntoOneLogicalRequest) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  const SimTime rto = sec(std::int64_t{1});
  TraceRecorder recorder;
  StreamBuilder b(recorder);
  // Attempt 0 is rejected at the front at t=0; TCP waits one RTO.
  b.drop(0, 10, 3, 0, 0);
  b.client(EventKind::kRetransmit, 0, 10, 3, 0, rto);
  // Attempt 1 (new request id) succeeds through the single tier.
  b.span(rto + 25, 11, 3, 0, rto, rto + 5, 1);
  b.client(EventKind::kComplete, rto + 25, 11, 3, 1, 0);

  TailAttributor attributor(recorder, 1);
  ASSERT_EQ(attributor.requests().size(), 1u);
  const RequestBreakdown& r = attributor.requests()[0];
  EXPECT_EQ(r.final_request, 11);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.total, rto + 25);
  EXPECT_EQ(r.rto_wait, rto);
  EXPECT_EQ(r.queue_wait[0], 5);
  EXPECT_EQ(r.service[0], 20);
  EXPECT_EQ(r.slack, 0);
  EXPECT_EQ(r.dominant(), Cause::kRtoWait);

  // Default threshold 1 s: this request is tail and retransmission-
  // dominated, which is what the summary reports.
  const TailSummary s = attributor.summary();
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.tail_count, 1);
  EXPECT_EQ(s.tail_retrans_dominated, 1);
  EXPECT_DOUBLE_EQ(s.retrans_dominated_share(), 1.0);
  EXPECT_EQ(s.rto_wait_us, rto);
}

TEST(TailAttributor, AbandonedRequestsAreCountedNotAttributed) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder;
  StreamBuilder b(recorder);
  b.drop(0, 20, 7, 0, 0);
  b.client(EventKind::kAbandon, 0, 20, 7, 0, 0);
  TailAttributor attributor(recorder, 1);
  EXPECT_EQ(attributor.requests().size(), 0u);
  EXPECT_EQ(attributor.abandoned(), 1);
  EXPECT_EQ(attributor.summary().abandoned, 1);
}

TEST(TailAttributor, SummaryFiltersByThreshold) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TraceRecorder recorder;
  StreamBuilder b(recorder);
  append_clean_walk(b, 1, 5, 0);       // 80 us total — below threshold
  append_clean_walk(b, 2, 6, 1000);    // 80 us total — below threshold
  TailAttributor attributor(recorder, 2, AttributorConfig{usec(100)});
  EXPECT_EQ(attributor.requests().size(), 2u);
  EXPECT_EQ(attributor.summary().tail_count, 0);

  TailAttributor low(recorder, 2, AttributorConfig{usec(50)});
  EXPECT_EQ(low.summary().tail_count, 2);
  // Per-cause rows cover all tail time; shares sum to 1.
  double share = 0.0;
  for (const auto& row : low.tail_rows()) share += row.share;
  EXPECT_NEAR(share, 1.0, 1e-12);
}

TEST(TailAttributor, UnlinkedTrafficIsIgnored) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  // Prober/open-loop traffic carries user = -1 on its events: it must not
  // produce a breakdown.
  TraceRecorder recorder;
  StreamBuilder b(recorder);
  b.span(2, 99, -1, 0, 0, 1);
  b.client(EventKind::kComplete, 2, 99, -1, 0, 0);
  TailAttributor attributor(recorder, 1);
  EXPECT_EQ(attributor.requests().size(), 0u);
}

}  // namespace
}  // namespace memca::trace
