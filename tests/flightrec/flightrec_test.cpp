// FlightRecorder behaviour: incident lifecycle on synthetic signals, ring
// pinning, steady-state allocation freedom, testbed forensics under the
// calibrated attack, mid-incident checkpoint/rollback and sweep-thread
// invariance of the emitted incident JSON.
//
// Every suite name contains "FlightRec" — the asan/tsan CI filters select
// on that token.
#include "flightrec/flight_recorder.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "flightrec/incident.h"
#include "sim/simulator.h"
#include "support/counting_alloc.h"
#include "testbed/attack_lab.h"
#include "testbed/rubbos_testbed.h"
#include "trace/recorder.h"

namespace memca::flightrec {
namespace {

#ifdef MEMCA_TRACE_DISABLED
#define MEMCA_SKIP_IF_TRACE_DISABLED() \
  GTEST_SKIP() << "tracing compiled out (MEMCA_TRACE=OFF)"
#else
#define MEMCA_SKIP_IF_TRACE_DISABLED()
#endif

trace::TraceRecorder::Config ring_config(std::size_t capacity) {
  trace::TraceRecorder::Config config;
  config.ring_capacity = capacity;
  return config;
}

/// A FlightRecorder over synthetic probes: a settable capacity value and
/// queue depth, no testbed behind them.
struct Harness {
  Simulator sim;
  trace::TraceRecorder ring{ring_config(1024)};
  double capacity = 1.0;
  int queue_depth = 0;
  std::int64_t rejected = 0;
  int rto_backlog = 0;
  FlightRecorder flight;

  explicit Harness(FlightRecorderConfig config = {}) : flight(sim, &ring, config) {
    flight.set_capacity_probe([this] { return capacity; });
    flight.set_queue_depth_probe(0, [this] { return queue_depth; });
    flight.set_rejected_probe(0, [this] { return rejected; });
    flight.set_rto_backlog_probe([this] { return rto_backlog; });
    flight.start();
  }
};

TEST(FlightRecDetector, CapacityDipTrainFoldsIntoOneIncident) {
  Harness h;
  // Two 100 ms dips 2 s apart, then silence: one incident, two episodes,
  // interval estimate = the true 2 s spacing.
  for (SimTime at : {sec(std::int64_t{1}), sec(std::int64_t{3})}) {
    h.sim.schedule_at(at, [&h] { h.capacity = 0.4; });
    h.sim.schedule_at(at + msec(100), [&h] { h.capacity = 1.0; });
  }
  h.sim.run_until(sec(std::int64_t{8}));
  h.flight.finalize();

  ASSERT_EQ(h.flight.incidents().size(), 1u);
  const Incident& inc = h.flight.incidents().front();
  EXPECT_EQ(inc.trigger, IncidentTrigger::kCapacityDip);
  EXPECT_EQ(inc.dip_episodes, 2);
  EXPECT_EQ(inc.burst_interval_estimate, sec(std::int64_t{2}));
  EXPECT_EQ(inc.dip_depth, 0.4);
  EXPECT_EQ(inc.affected_requests, 0);
  EXPECT_FALSE(inc.frames.empty());
  // Quiet run: a second pass over the same span emits nothing new.
  EXPECT_EQ(h.flight.incidents_dropped(), 0);
}

TEST(FlightRecDetector, QuietBaselineEmitsNoIncidents) {
  Harness h;
  h.sim.run_until(sec(std::int64_t{10}));
  h.flight.finalize();
  EXPECT_TRUE(h.flight.incidents().empty());
  // ~10 s of 50 ms frames (boundary tick inclusion depends on run_until).
  EXPECT_GE(h.flight.timeline().total(), 199u);
  EXPECT_LE(h.flight.timeline().total(), 200u);
}

TEST(FlightRecDetector, VlrtCompletionPinsRingSpans) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  Harness h;
  h.sim.schedule_at(msec(2500), [&h] {
    // The VLRT request's history: a drop at 1 s, an RTO retransmission, the
    // retried tier span, interleaved with another user's traffic and a
    // capacity context mark.
    trace::TraceEvent ev;
    ev.user = 7;
    ev.request = 100;
    ev.kind = trace::EventKind::kDrop;
    ev.time = sec(std::int64_t{1});
    h.ring.record(ev);
    ev.kind = trace::EventKind::kRetransmit;
    ev.aux = sec(std::int64_t{1});
    h.ring.record(ev);
    trace::TraceEvent other = ev;
    other.user = 9;
    other.request = 101;
    other.kind = trace::EventKind::kTierSpan;
    other.time = msec(1100);
    h.ring.record(other);
    trace::TraceEvent cap;
    cap.kind = trace::EventKind::kCapacity;
    cap.request = 0;
    cap.time = msec(1200);
    cap.value = 0.5;
    h.ring.record(cap);
    ev.kind = trace::EventKind::kTierSpan;
    ev.time = msec(2100);
    ev.aux = sec(std::int64_t{2});
    ev.value = 2.05e6;
    ev.tier = 0;
    h.ring.record(ev);
    ev.kind = trace::EventKind::kComplete;
    ev.time = msec(2500);
    ev.aux = msec(500);  // first_sent
    ev.attempt = 1;
    h.ring.record(ev);
    h.flight.on_completion(h.sim.now(), msec(500), 7, msec(2000), true);
  });
  h.sim.run_until(sec(std::int64_t{6}));
  h.flight.finalize();

  ASSERT_EQ(h.flight.incidents().size(), 1u);
  const Incident& inc = h.flight.incidents().front();
  EXPECT_EQ(inc.trigger, IncidentTrigger::kVlrtCompletion);
  EXPECT_EQ(inc.affected_requests, 1);
  EXPECT_EQ(inc.worst_rt, msec(2000));
  EXPECT_EQ(inc.retransmissions, 1);
  // User 7's four events plus the capacity context mark; user 9's excluded.
  EXPECT_EQ(inc.pinned_events, 5);
  EXPECT_EQ(inc.window_start, msec(500));
}

TEST(FlightRecDetector, QueueOverflowDropsOpenAndSplitByTier) {
  Harness h;
  h.sim.schedule_at(sec(std::int64_t{1}), [&h] { h.rejected += 17; });
  h.sim.run_until(sec(std::int64_t{5}));
  h.flight.finalize();
  ASSERT_EQ(h.flight.incidents().size(), 1u);
  const Incident& inc = h.flight.incidents().front();
  EXPECT_EQ(inc.trigger, IncidentTrigger::kQueueOverflow);
  EXPECT_EQ(inc.drop_count, 17);
  EXPECT_EQ(inc.overflowed_tier, 0);
  EXPECT_EQ(inc.tier_drops[0], 17);
}

TEST(FlightRecDetector, IncidentBudgetCountsOverflow) {
  FlightRecorderConfig config;
  config.max_incidents = 2;
  config.quiet_close = msec(200);
  Harness h(config);
  for (int k = 0; k < 5; ++k) {
    const SimTime at = sec(std::int64_t{1 + 2 * k});
    h.sim.schedule_at(at, [&h] { h.capacity = 0.3; });
    h.sim.schedule_at(at + msec(100), [&h] { h.capacity = 1.0; });
  }
  h.sim.run_until(sec(std::int64_t{12}));
  h.flight.finalize();
  EXPECT_EQ(h.flight.incidents().size(), 2u);
  EXPECT_EQ(h.flight.incidents_dropped(), 3);
  EXPECT_EQ(h.flight.incidents_total(), 5);
}

TEST(FlightRecSteadyStateAllocation, HotPathsAllocateNothing) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  // The always-on claim: once warm, ring appends (wrapped), sketch records,
  // timeline ticks, VLRT pinning into the reserved budget and checkpoint
  // restore all run without touching the heap. Incident *close* is exempt —
  // it is the rare forensic event and may build its record.
  Harness h;
  trace::TraceEvent ev;
  ev.kind = trace::EventKind::kTierSpan;
  ev.user = 3;
  // Warm-up: wrap the ring, exercise every tick path, pin once, and let the
  // periodic task cycle its simulator slot.
  for (int i = 0; i < 4096; ++i) {
    ev.time = msec(i);
    h.ring.record(ev);
  }
  h.flight.on_completion(msec(100), msec(50), 3, sec(std::int64_t{2}), true);
  // Longer than a full level-0 timing-wheel rotation, so the periodic
  // tick's bucket occupancy has cycled capacity into every index the
  // counted window can reach (same trick as the workload steady-state
  // test), and long enough for quiet_close to fold the warm-up incident.
  h.sim.run_until(sec(std::int64_t{5}));
  FlightRecorder::Snapshot flight_snap;
  trace::TraceRecorder::Snapshot ring_snap;
  Simulator::Snapshot sim_snap;
  h.flight.capture(flight_snap);  // capture may allocate; restore must not
  h.ring.capture(ring_snap);
  h.sim.capture(sim_snap);

  tests::ScopedAllocationCounter counter;
  for (int i = 0; i < 2000; ++i) {
    ev.time = sec(std::int64_t{5}) + msec(i);
    h.ring.record(ev);
  }
  h.flight.on_completion(h.sim.now(), sec(std::int64_t{4}), 3, msec(1500), true);
  h.sim.run_for(sec(std::int64_t{1}));  // 20 ticks, incident stays open
  h.sim.restore(sim_snap);
  h.ring.restore(ring_snap);
  h.flight.restore(flight_snap);
  EXPECT_EQ(counter.count(), 0)
      << "warm flight-recorder paths and rollback must not allocate";
}

std::string incidents_json(const std::vector<Incident>& incidents) {
  std::ostringstream out;
  write_incidents_json(out, incidents, {"apache", "tomcat", "mysql"});
  return out.str();
}

TEST(FlightRecTestbed, AttackForensicsAndCleanBaseline) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  // Calibrated memory-lock attack (L=500 ms, I=2 s) for 45 s: the burst
  // train must fold into incidents whose pinned-span decomposition is
  // retransmission-dominated — the paper's tail mechanism recovered from
  // bounded black-box state. The attack-free control on the same config
  // must stay incident-free.
  auto run = [](bool attacked) {
    testbed::TestbedConfig config;
    config.flightrec = true;
    auto bed = std::make_unique<testbed::RubbosTestbed>(config);
    bed->start();
    std::unique_ptr<core::MemcaAttack> attack;
    if (attacked) {
      core::MemcaConfig memca;
      memca.enable_controller = false;
      memca.params.burst_length = msec(500);
      memca.params.burst_interval = sec(std::int64_t{2});
      memca.params.type = cloud::MemoryAttackType::kMemoryLock;
      attack = bed->make_attack(memca);
      attack->start();
    }
    bed->sim().run_for(sec(std::int64_t{45}));
    if (attack) attack->stop();
    bed->sim().run_for(sec(std::int64_t{5}));
    bed->flight()->finalize();
    return bed;
  };

  {
    auto bed = run(false);
    EXPECT_TRUE(bed->flight()->incidents().empty()) << "baseline must be incident-free";
    EXPECT_GT(bed->flight()->client_latency().count(), 0);
  }

  auto bed = run(true);
  const FlightRecorder& flight = *bed->flight();
  ASSERT_GE(flight.incidents().size(), 1u);
  EXPECT_GT(flight.affected_requests_total(), 0);
  EXPECT_GT(flight.pinned_events_total(), 0);
  bool retrans_dominated = false;
  for (const Incident& inc : flight.incidents()) {
    EXPECT_GE(inc.worst_rt, flight.config().vlrt_threshold);
    if (inc.decomposition.tail_count > 0 &&
        inc.decomposition.retrans_dominated_share() > 0.5) {
      retrans_dominated = true;
    }
  }
  EXPECT_TRUE(retrans_dominated)
      << "at least one incident's VLRT decomposition must be RTO-dominated";
  // The streaming sketch sees the amplified tail the histogram reports.
  EXPECT_GT(flight.client_latency().quantile(0.99),
            static_cast<double>(sec(std::int64_t{1})));
}

TEST(FlightRecSnapshot, MidIncidentRollbackReplaysByteIdenticalJson) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  // Snapshot with an incident window open (mid burst train, ring wrapped,
  // pins accumulated), then replay the remainder twice: the incident JSON —
  // windows, decomposition, frozen frames, everything — must come back byte
  // for byte. Manual burst closures, not MemcaAttack: attack objects are
  // not checkpointable, scheduled closures are.
  testbed::TestbedConfig config;
  config.flightrec = true;
  config.seed = 7;
  testbed::RubbosTestbed bed(config);
  bed.start();

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  for (int k = 0; k < 30; ++k) {
    const SimTime on = msec(500) + k * sec(std::int64_t{1});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.95); });
    bed.sim().schedule_at(on + msec(300), [&host, vm] { host.clear_memory_activity(vm); });
  }

  // 12.65 s: mid-burst, well past warmup, VLRT completions and dips have
  // an incident window open (bursts every 1 s never let quiet_close fire).
  bed.sim().run_until(msec(12650));
  ASSERT_GT(bed.clients().dropped_attempts(), 0);
  bed.snapshot();

  auto segment = [&bed] {
    bed.sim().run_for(sec(std::int64_t{8}));
    bed.flight()->finalize();
    return incidents_json(bed.flight()->incidents());
  };
  const std::string first = segment();
  EXPECT_NE(first.find("\"incidents\""), std::string::npos);
  for (int replay = 1; replay <= 2; ++replay) {
    bed.rollback();
    EXPECT_EQ(segment(), first) << "replay " << replay;
  }
}

TEST(FlightRecSweep, IncidentJsonInvariantAcrossThreadCounts) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  // Two cells (baseline + attacked) per sweep; concatenated incident JSON
  // must not depend on the worker count — same contract the CI gate
  // enforces on fig_incident_forensics at MEMCA_SWEEP_THREADS=1/2/4.
  auto make_cells = [] {
    std::vector<testbed::AttackLabConfig> cells;
    for (bool attacked : {false, true}) {
      testbed::AttackLabConfig config;
      config.testbed.flightrec = true;
      config.params.burst_length = msec(500);
      config.params.burst_interval = sec(std::int64_t{2});
      config.params.type = cloud::MemoryAttackType::kMemoryLock;
      config.warmup = sec(std::int64_t{5});
      config.duration = sec(std::int64_t{25});
      config.attack_enabled = attacked;
      cells.push_back(config);
    }
    return cells;
  };
  auto sweep_json = [&](int threads) {
    std::vector<testbed::AttackLabResult> results =
        testbed::run_attack_lab_sweep(make_cells(), threads);
    std::string out;
    for (const testbed::AttackLabResult& r : results) out += incidents_json(r.incidents);
    return out;
  };
  const std::string one = sweep_json(1);
  EXPECT_NE(one.find("\"incident_count\": "), std::string::npos);
  EXPECT_EQ(sweep_json(2), one);
  EXPECT_EQ(sweep_json(4), one);
}

}  // namespace
}  // namespace memca::flightrec
