#include "flightrec/timeline.h"

#include <gtest/gtest.h>

#include <vector>

namespace memca::flightrec {
namespace {

TimelineFrame frame_at(SimTime start) {
  TimelineFrame f;
  f.start = start;
  f.queue_depth[0] = static_cast<std::uint32_t>(start / msec(50));
  return f;
}

TEST(Timeline, PushWrapsKeepingNewestFrames) {
  Timeline timeline(8);
  EXPECT_TRUE(timeline.empty());
  for (int i = 0; i < 20; ++i) timeline.push(frame_at(i * msec(50)));
  EXPECT_EQ(timeline.size(), 8u);
  EXPECT_EQ(timeline.total(), 20u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(timeline[i].start, static_cast<SimTime>(12 + i) * msec(50));
  }
  EXPECT_EQ(timeline.newest().start, 19 * msec(50));
}

TEST(Timeline, CapacityRoundsUpToPowerOfTwo) {
  Timeline timeline(5);
  EXPECT_EQ(timeline.capacity(), 8u);
}

TEST(Timeline, ExtractIntersectingWindow) {
  Timeline timeline(16);
  for (int i = 0; i < 16; ++i) timeline.push(frame_at(i * msec(50)));
  std::vector<TimelineFrame> out;
  // [125 ms, 275 ms] intersects the windows starting at 100..250 ms.
  timeline.extract(msec(125), msec(275), msec(50), out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front().start, msec(100));
  EXPECT_EQ(out.back().start, msec(250));
}

TEST(Timeline, ExtractClampsToRetainedHistory) {
  Timeline timeline(4);
  for (int i = 0; i < 12; ++i) timeline.push(frame_at(i * msec(50)));
  std::vector<TimelineFrame> out;
  timeline.extract(0, sec(std::int64_t{1}), msec(50), out);
  // Only the 4 retained frames can be frozen; evicted history is gone.
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front().start, 8 * msec(50));
}

TEST(Timeline, SnapshotRestoresWrappedStateExactly) {
  Timeline timeline(8);
  for (int i = 0; i < 13; ++i) timeline.push(frame_at(i * msec(50)));
  Timeline::Snapshot snap;
  timeline.capture(snap);

  for (int i = 13; i < 30; ++i) timeline.push(frame_at(i * msec(50)));
  std::vector<SimTime> control;
  for (std::size_t i = 0; i < timeline.size(); ++i) control.push_back(timeline[i].start);

  timeline.restore(snap);
  EXPECT_EQ(timeline.total(), 13u);
  EXPECT_EQ(timeline.newest().start, 12 * msec(50));
  for (int i = 13; i < 30; ++i) timeline.push(frame_at(i * msec(50)));
  std::vector<SimTime> replayed;
  for (std::size_t i = 0; i < timeline.size(); ++i) replayed.push_back(timeline[i].start);
  EXPECT_EQ(replayed, control);
}

}  // namespace
}  // namespace memca::flightrec
