#include "flightrec/quantile_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/rng.h"

namespace memca::flightrec {
namespace {

double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  return values[rank];
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile median(0.5);
  EXPECT_EQ(median.estimate(), 0.0);
  median.record(30.0);
  EXPECT_EQ(median.estimate(), 30.0);
  median.record(10.0);
  median.record(20.0);
  EXPECT_EQ(median.estimate(), 20.0);  // exact median of {10, 20, 30}
}

TEST(P2Quantile, TracksExponentialTailWithinTolerance) {
  Rng rng(3);
  std::vector<double> values;
  P2Quantile p50(0.5), p95(0.95), p99(0.99);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.exponential(1000.0);
    values.push_back(x);
    p50.record(x);
    p95.record(x);
    p99.record(x);
  }
  // P² on a smooth unimodal distribution stays within a few percent.
  EXPECT_NEAR(p50.estimate(), exact_quantile(values, 0.5), 0.05 * exact_quantile(values, 0.5));
  EXPECT_NEAR(p95.estimate(), exact_quantile(values, 0.95),
              0.05 * exact_quantile(values, 0.95));
  EXPECT_NEAR(p99.estimate(), exact_quantile(values, 0.99),
              0.10 * exact_quantile(values, 0.99));
}

TEST(P2Quantile, MergeOfPartsTracksTheFullStream) {
  Rng rng(5);
  std::array<P2Quantile, 4> parts{P2Quantile(0.95), P2Quantile(0.95), P2Quantile(0.95),
                                  P2Quantile(0.95)};
  P2Quantile whole(0.95);
  std::vector<double> values;
  for (int i = 0; i < 40000; ++i) {
    const double x = rng.exponential(1000.0);
    values.push_back(x);
    whole.record(x);
    parts[static_cast<std::size_t>(i) % 4].record(x);
  }
  P2Quantile merged = parts[0];
  for (std::size_t i = 1; i < 4; ++i) merged.merge(parts[i]);
  EXPECT_EQ(merged.count(), whole.count());
  const double exact = exact_quantile(values, 0.95);
  EXPECT_NEAR(merged.estimate(), exact, 0.10 * exact);
}

TEST(P2Quantile, MergeIsDeterministic) {
  Rng rng(9);
  P2Quantile a(0.9), b(0.9);
  for (int i = 0; i < 1000; ++i) a.record(rng.exponential(100.0));
  for (int i = 0; i < 700; ++i) b.record(rng.exponential(300.0));
  P2Quantile m1 = a;
  m1.merge(b);
  P2Quantile m2 = a;
  m2.merge(b);
  // Same operands, same bytes — the sweep-merge determinism contract.
  EXPECT_EQ(std::memcmp(&m1, &m2, sizeof(P2Quantile)), 0);
}

TEST(P2Quantile, MergeReplaysExactSideExactly) {
  // When one side is still in its exact (<5 samples) phase, merging must be
  // identical to having recorded those samples directly.
  Rng rng(11);
  P2Quantile direct(0.5), merged(0.5), tiny(0.5);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.exponential(50.0);
    direct.record(x);
    merged.record(x);
  }
  const double extras[3] = {1.0, 2.0, 3.0};
  for (const double x : extras) {
    direct.record(x);
    tiny.record(x);
  }
  merged.merge(tiny);
  EXPECT_EQ(std::memcmp(&merged, &direct, sizeof(P2Quantile)), 0);
}

TEST(P2Quantile, MergeIntoEmptyCopies) {
  P2Quantile full(0.99);
  Rng rng(13);
  for (int i = 0; i < 500; ++i) full.record(rng.exponential(10.0));
  P2Quantile empty(0.99);
  empty.merge(full);
  EXPECT_EQ(std::memcmp(&empty, &full, sizeof(P2Quantile)), 0);
  // Merging an empty sketch in is a no-op.
  P2Quantile copy = full;
  copy.merge(P2Quantile(0.99));
  EXPECT_EQ(std::memcmp(&copy, &full, sizeof(P2Quantile)), 0);
}

TEST(QuantileSketch, ExactScalarsAndTrackedQuantiles) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0);
  EXPECT_EQ(sketch.min(), 0.0);
  EXPECT_EQ(sketch.quantile(0.99), 0.0);
  // 1..100 in a decorrelated order (37 is coprime to 100, so the stride
  // visits every value once) — P² converges poorly on sorted input.
  for (int i = 0; i < 100; ++i) sketch.record(static_cast<double>(i * 37 % 100 + 1));
  EXPECT_EQ(sketch.count(), 100);
  EXPECT_EQ(sketch.min(), 1.0);
  EXPECT_EQ(sketch.max(), 100.0);
  EXPECT_EQ(sketch.mean(), 50.5);
  EXPECT_NEAR(sketch.quantile(0.50), 50.0, 5.0);
  EXPECT_NEAR(sketch.quantile(0.90), 90.0, 5.0);
  EXPECT_NEAR(sketch.quantile(0.95), 95.0, 5.0);
  EXPECT_NEAR(sketch.quantile(0.99), 99.0, 5.0);
}

TEST(QuantileSketch, CopySnapshotRestoresEstimates) {
  // Trivially-copyable checkpoint semantics: copy-assign aside, diverge,
  // copy-assign back — exactly what WorldSnapshot::attach_value does.
  QuantileSketch sketch;
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) sketch.record(rng.exponential(200.0));
  const QuantileSketch checkpoint = sketch;
  for (int i = 0; i < 5000; ++i) sketch.record(rng.exponential(90000.0));
  EXPECT_NE(sketch.count(), checkpoint.count());
  sketch = checkpoint;
  EXPECT_EQ(std::memcmp(&sketch, &checkpoint, sizeof(QuantileSketch)), 0);
}

TEST(QuantileSketch, MergeAggregatesScalars) {
  QuantileSketch a, b;
  for (int i = 0; i < 10; ++i) a.record(static_cast<double>(i + 1));
  for (int i = 0; i < 5; ++i) b.record(static_cast<double>(100 + i));
  a.merge(b);
  EXPECT_EQ(a.count(), 15);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 104.0);
  EXPECT_EQ(a.sum(), 55.0 + 510.0);
}

}  // namespace
}  // namespace memca::flightrec
