#include "cloud/background.h"

#include <gtest/gtest.h>

#include "cloud/contention.h"

namespace memca::cloud {
namespace {

struct Fixture {
  Simulator sim;
  Host host{xeon_e5_2603_v3()};
  VmId victim = host.add_vm({"victim", 2, Placement::kPinnedPackage, 0});
  VmId neighbor_vm = host.add_vm({"neighbor", 1, Placement::kPinnedPackage, 0});
};

TEST(NoisyNeighbor, AlternatesOnOffPhases) {
  Fixture f;
  NoisyNeighborConfig config;
  config.on_mean = sec(std::int64_t{2});
  config.off_mean = sec(std::int64_t{2});
  NoisyNeighbor neighbor(f.sim, f.host, f.neighbor_vm, config, Rng(1));
  neighbor.start();
  f.sim.run_for(kMinute);
  // ~15 ON phases in a minute at 4 s mean cycle.
  EXPECT_GT(neighbor.phases(), 5);
  EXPECT_LT(neighbor.phases(), 40);
}

TEST(NoisyNeighbor, RegistersDemandWhileActive) {
  Fixture f;
  NoisyNeighborConfig config;
  config.off_mean = msec(1);  // enters ON almost immediately
  config.on_mean = sec(std::int64_t{100});
  config.demand_cv = 0.0;
  NoisyNeighbor neighbor(f.sim, f.host, f.neighbor_vm, config, Rng(2));
  neighbor.start();
  f.sim.run_for(sec(std::int64_t{1}));
  EXPECT_TRUE(neighbor.active());
  EXPECT_NEAR(f.host.demand(f.neighbor_vm), config.demand_mean_gbps, 1e-9);
}

TEST(NoisyNeighbor, StopClearsActivity) {
  Fixture f;
  NoisyNeighborConfig config;
  config.off_mean = msec(1);
  config.on_mean = sec(std::int64_t{100});
  NoisyNeighbor neighbor(f.sim, f.host, f.neighbor_vm, config, Rng(3));
  neighbor.start();
  f.sim.run_for(sec(std::int64_t{1}));
  neighbor.stop();
  EXPECT_FALSE(neighbor.active());
  EXPECT_DOUBLE_EQ(f.host.demand(f.neighbor_vm), 0.0);
  const auto phases = neighbor.phases();
  f.sim.run_for(kMinute);
  EXPECT_EQ(neighbor.phases(), phases);
}

TEST(NoisyNeighbor, DestructorClearsHost) {
  Fixture f;
  {
    NoisyNeighborConfig config;
    config.off_mean = msec(1);
    NoisyNeighbor neighbor(f.sim, f.host, f.neighbor_vm, config, Rng(4));
    neighbor.start();
    f.sim.run_for(sec(std::int64_t{1}));
  }
  EXPECT_DOUBLE_EQ(f.host.demand(f.neighbor_vm), 0.0);
}

TEST(NoisyNeighbor, ModestNoiseBarelyDentsVictim) {
  // A 2 GB/s neighbor on a 21 GB/s bus should leave the victim's capacity
  // multiplier near 1 — ordinary multi-tenant noise is not an attack.
  Fixture f;
  CrossResourceModel coupling(f.host, f.victim, {12.0, 0.05});
  NoisyNeighborConfig config;
  config.off_mean = msec(1);
  config.on_mean = sec(std::int64_t{100});
  config.demand_cv = 0.0;
  NoisyNeighbor neighbor(f.sim, f.host, f.neighbor_vm, config, Rng(5));
  neighbor.start();
  f.sim.run_for(sec(std::int64_t{1}));
  EXPECT_GT(coupling.capacity_multiplier(), 0.85);
}

}  // namespace
}  // namespace memca::cloud
