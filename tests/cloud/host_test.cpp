#include "cloud/host.h"

#include <gtest/gtest.h>

namespace memca::cloud {
namespace {

TEST(Host, AddAndInspectVms) {
  Host host(xeon_e5_2603_v3());
  const VmId a = host.add_vm({"a", 1, Placement::kPinnedPackage, 0});
  const VmId b = host.add_vm({"b", 2, Placement::kFloating, 0});
  EXPECT_EQ(host.vm_count(), 2u);
  EXPECT_EQ(host.vm(a).name, "a");
  EXPECT_EQ(host.vm(b).vcpus, 2);
}

TEST(Host, ActivityBookkeeping) {
  Host host(xeon_e5_2603_v3());
  const VmId a = host.add_vm({"a", 1, Placement::kPinnedPackage, 0});
  EXPECT_DOUBLE_EQ(host.demand(a), 0.0);
  host.set_memory_activity(a, 4.0, 0.0);
  EXPECT_DOUBLE_EQ(host.demand(a), 4.0);
  EXPECT_DOUBLE_EQ(host.total_demand(), 4.0);
  EXPECT_FALSE(host.any_lock_active());
  host.set_memory_activity(a, 0.0, 0.5);
  EXPECT_TRUE(host.any_lock_active());
  host.clear_memory_activity(a);
  EXPECT_FALSE(host.any_lock_active());
  EXPECT_DOUBLE_EQ(host.total_demand(), 0.0);
}

TEST(Host, SoloVmAchievesItsDemand) {
  Host host(xeon_e5_2603_v3());
  const VmId a = host.add_vm({"a", 1, Placement::kPinnedPackage, 0});
  host.set_memory_activity(a, 6.0, 0.0);
  EXPECT_NEAR(host.achieved_bandwidth(a), 6.0, 1e-9);
}

TEST(Host, PinnedVmsOnDifferentPackagesDoNotContend) {
  Host host(xeon_e5_2603_v3());
  const VmId a = host.add_vm({"a", 1, Placement::kPinnedPackage, 0});
  const VmId b = host.add_vm({"b", 1, Placement::kPinnedPackage, 1});
  host.set_memory_activity(a, 10.5, 0.0);
  host.set_memory_activity(b, 0.0, 0.9);  // locker on the other package
  EXPECT_NEAR(host.achieved_bandwidth(a), 10.5, 1e-9);
}

TEST(Host, PinnedVmsOnSamePackageContend) {
  Host host(xeon_e5_2603_v3());
  const VmId a = host.add_vm({"a", 1, Placement::kPinnedPackage, 0});
  const VmId b = host.add_vm({"b", 1, Placement::kPinnedPackage, 0});
  host.set_memory_activity(a, 8.0, 0.0);
  host.set_memory_activity(b, 0.0, 0.9);
  EXPECT_LT(host.achieved_bandwidth(a), 2.5);
}

TEST(Host, FloatingAttackerDegradesLessThanPinned) {
  // "Random package" placement dilutes the attack (paper Fig. 3).
  Host pinned_host(xeon_e5_2603_v3());
  const VmId v1 = pinned_host.add_vm({"victim", 1, Placement::kPinnedPackage, 0});
  const VmId a1 = pinned_host.add_vm({"attacker", 1, Placement::kPinnedPackage, 0});
  pinned_host.set_memory_activity(v1, 8.0, 0.0);
  pinned_host.set_memory_activity(a1, 0.0, 0.9);

  Host floating_host(xeon_e5_2603_v3());
  const VmId v2 = floating_host.add_vm({"victim", 1, Placement::kPinnedPackage, 0});
  const VmId a2 = floating_host.add_vm({"attacker", 1, Placement::kFloating, 0});
  floating_host.set_memory_activity(v2, 8.0, 0.0);
  floating_host.set_memory_activity(a2, 0.0, 0.9);

  EXPECT_GT(floating_host.achieved_bandwidth(v2), pinned_host.achieved_bandwidth(v1));
}

TEST(Host, FloatingVmSumsAcrossPackages) {
  Host host(xeon_e5_2603_v3());
  const VmId a = host.add_vm({"a", 1, Placement::kFloating, 0});
  host.set_memory_activity(a, 10.0, 0.0);
  // Demand splits 5+5 over two idle packages and is fully satisfied.
  EXPECT_NEAR(host.achieved_bandwidth(a), 10.0, 1e-9);
}

TEST(Host, ObserversFireOnChange) {
  Host host(xeon_e5_2603_v3());
  const VmId a = host.add_vm({"a", 1, Placement::kPinnedPackage, 0});
  int calls = 0;
  host.on_contention_change([&] { ++calls; });
  host.set_memory_activity(a, 1.0, 0.0);
  EXPECT_EQ(calls, 1);
  host.set_memory_activity(a, 1.0, 0.0);  // no change: no notification
  EXPECT_EQ(calls, 1);
  host.clear_memory_activity(a);
  EXPECT_EQ(calls, 2);
}

TEST(Host, Ec2SpecHasMoreHeadroom) {
  const HostSpec ec2 = ec2_dedicated_node();
  const HostSpec priv = xeon_e5_2603_v3();
  EXPECT_GT(ec2.packages[0].mem_bw_gbps, priv.packages[0].mem_bw_gbps);
  EXPECT_EQ(ec2.total_cores(), 20);
  EXPECT_EQ(priv.total_cores(), 12);
}

}  // namespace
}  // namespace memca::cloud
