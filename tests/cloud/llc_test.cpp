#include "cloud/llc.h"

#include <gtest/gtest.h>

namespace memca::cloud {
namespace {

TEST(LlcModel, BaselineMissesScaleWithWindow) {
  LlcModel model;
  const double w100 = model.expected_misses(msec(100), 0.0, 0.0);
  const double w200 = model.expected_misses(msec(200), 0.0, 0.0);
  EXPECT_NEAR(w200, 2.0 * w100, 1e-6);
  EXPECT_NEAR(w100, model.params().base_miss_rate * 0.1, 1e-6);
}

TEST(LlcModel, BusAttackMultipliesMisses) {
  LlcModel model;
  const double idle = model.expected_misses(msec(100), 0.0, 0.0);
  const double full_bus = model.expected_misses(msec(100), 1.0, 0.0);
  EXPECT_NEAR(full_bus / idle, model.params().bus_attack_multiplier, 1e-9);
}

TEST(LlcModel, LockAttackLeavesMissesFlat) {
  // The stealth mechanism of Fig. 11b: locks bypass the cache hierarchy.
  LlcModel model;
  const double idle = model.expected_misses(msec(100), 0.0, 0.0);
  const double full_lock = model.expected_misses(msec(100), 0.0, 1.0);
  EXPECT_LT(full_lock / idle, 1.10);
}

TEST(LlcModel, PartialBurstFractionInterpolates) {
  LlcModel model;
  const double idle = model.expected_misses(msec(100), 0.0, 0.0);
  const double quarter = model.expected_misses(msec(100), 0.25, 0.0);
  const double half = model.expected_misses(msec(100), 0.5, 0.0);
  EXPECT_GT(quarter, idle);
  EXPECT_GT(half, quarter);
  const double m = model.params().bus_attack_multiplier;
  EXPECT_NEAR(half / idle, 0.5 + 0.5 * m, 1e-9);
}

TEST(LlcModel, OverlapTakesStrongerMultiplier) {
  LlcModel model;
  const double both = model.expected_misses(msec(100), 1.0, 1.0);
  const double bus = model.expected_misses(msec(100), 1.0, 0.0);
  EXPECT_NEAR(both, bus, 1e-9);
}

TEST(LlcModel, ObservationsAreNoisyButUnbiased) {
  LlcModel model;
  Rng rng(3);
  const double expected = model.expected_misses(msec(100), 0.0, 0.0);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += model.observe(msec(100), 0.0, 0.0, rng);
  EXPECT_NEAR(sum / n / expected, 1.0, 0.01);
}

TEST(LlcModel, ObservationsNeverNegative) {
  LlcModelParams params;
  params.noise_cv = 2.0;  // absurd noise to force the clamp
  LlcModel model(params);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(model.observe(msec(100), 0.0, 0.0, rng), 0.0);
  }
}

TEST(LlcModel, SampleSeriesShape) {
  LlcModel model;
  Rng rng(7);
  const TimeSeries series = model.sample_series(
      sec(std::int64_t{10}), msec(100), [](SimTime, SimTime) { return 0.0; },
      [](SimTime, SimTime) { return 0.0; }, rng);
  EXPECT_EQ(series.size(), 100u);
  EXPECT_EQ(series.front().time, 0);
  EXPECT_EQ(series.back().time, msec(9900));
}

TEST(LlcModel, PeriodicBusScheduleYieldsPeriodicSpikes) {
  LlcModel model;
  Rng rng(9);
  // ON for the first 100 ms of every 2 s interval.
  auto bus = [](SimTime start, SimTime) {
    return (start % sec(std::int64_t{2})) < msec(100) ? 1.0 : 0.0;
  };
  auto none = [](SimTime, SimTime) { return 0.0; };
  const TimeSeries series =
      model.sample_series(sec(std::int64_t{60}), msec(100), bus, none, rng);
  // Lag of one attack interval (20 samples of 100 ms) correlates strongly.
  EXPECT_GT(series.autocorrelation(20), 0.5);
}

}  // namespace
}  // namespace memca::cloud
