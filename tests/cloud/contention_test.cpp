#include "cloud/contention.h"

#include <gtest/gtest.h>

namespace memca::cloud {
namespace {

struct Fixture {
  Host host{xeon_e5_2603_v3()};
  VmId victim = host.add_vm({"victim", 2, Placement::kPinnedPackage, 0});
  VmId attacker = host.add_vm({"attacker", 1, Placement::kPinnedPackage, 0});
};

TEST(CrossResourceModel, FullMultiplierWhenUnattacked) {
  Fixture f;
  CrossResourceModel model(f.host, f.victim, {8.0, 0.05});
  EXPECT_DOUBLE_EQ(model.capacity_multiplier(), 1.0);
}

TEST(CrossResourceModel, RegistersVictimDemandOnHost) {
  Fixture f;
  CrossResourceModel model(f.host, f.victim, {8.0, 0.05});
  EXPECT_DOUBLE_EQ(f.host.demand(f.victim), 8.0);
}

TEST(CrossResourceModel, LockAttackCollapsesMultiplier) {
  Fixture f;
  CrossResourceModel model(f.host, f.victim, {12.0, 0.05});
  f.host.set_memory_activity(f.attacker, 0.0, 0.95 * 0.95);
  const double d = model.capacity_multiplier();
  EXPECT_LT(d, 0.20);  // the paper's D ~ 0.1 regime
  EXPECT_GE(d, 0.05);  // floor
}

TEST(CrossResourceModel, BusSaturationBarelyDentsSingleVictim) {
  // Paper finding: one bus-saturating VM cannot hurt a single co-located
  // victim much — the bus fits both.
  Fixture f;
  CrossResourceModel model(f.host, f.victim, {8.0, 0.05});
  f.host.set_memory_activity(f.attacker, 10.5, 0.0);
  EXPECT_GT(model.capacity_multiplier(), 0.9);
}

TEST(CrossResourceModel, MultiplierRecoversWhenAttackStops) {
  Fixture f;
  CrossResourceModel model(f.host, f.victim, {12.0, 0.05});
  f.host.set_memory_activity(f.attacker, 0.0, 0.9);
  EXPECT_LT(model.capacity_multiplier(), 0.2);
  f.host.clear_memory_activity(f.attacker);
  EXPECT_DOUBLE_EQ(model.capacity_multiplier(), 1.0);
}

TEST(CrossResourceModel, ObserverPushesMultiplier) {
  Fixture f;
  CrossResourceModel model(f.host, f.victim, {12.0, 0.05});
  std::vector<double> seen;
  model.on_multiplier_change([&](double m) { seen.push_back(m); });
  f.host.set_memory_activity(f.attacker, 0.0, 0.9);
  f.host.clear_memory_activity(f.attacker);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_LT(seen[0], 0.2);
  EXPECT_DOUBLE_EQ(seen[1], 1.0);
}

TEST(CrossResourceModel, FloorIsRespected) {
  Fixture f;
  CrossResourceModel model(f.host, f.victim, {100.0, 0.25});
  f.host.set_memory_activity(f.attacker, 0.0, 0.95);
  EXPECT_DOUBLE_EQ(model.capacity_multiplier(), 0.25);
}

TEST(CrossResourceModel, DeeperDemandMeansDeeperDegradation) {
  // The hungrier the victim workload, the harder a given attack bites.
  double prev = 1.0;
  for (double demand : {4.0, 8.0, 16.0}) {
    Fixture f;
    CrossResourceModel model(f.host, f.victim, {demand, 0.01});
    f.host.set_memory_activity(f.attacker, 0.0, 0.9);
    const double d = model.capacity_multiplier();
    EXPECT_LE(d, prev + 1e-12) << "demand=" << demand;
    prev = d;
  }
}

}  // namespace
}  // namespace memca::cloud
