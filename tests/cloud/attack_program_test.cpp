#include "cloud/attack_program.h"

#include <gtest/gtest.h>

namespace memca::cloud {
namespace {

struct Fixture {
  Simulator sim;
  Host host{xeon_e5_2603_v3()};
  VmId victim = host.add_vm({"victim", 2, Placement::kPinnedPackage, 0});
  VmId attacker = host.add_vm({"attacker", 1, Placement::kPinnedPackage, 0});
};

TEST(MemoryAttackProgram, BusSaturateRegistersStreamDemand) {
  Fixture f;
  MemoryAttackProgram program(f.sim, f.host, f.attacker, MemoryAttackType::kBusSaturate);
  program.start();
  EXPECT_TRUE(program.running());
  EXPECT_DOUBLE_EQ(f.host.demand(f.attacker), 10.5);
  EXPECT_DOUBLE_EQ(f.host.lock_duty(f.attacker), 0.0);
  program.stop();
  EXPECT_DOUBLE_EQ(f.host.demand(f.attacker), 0.0);
}

TEST(MemoryAttackProgram, LockRegistersDuty) {
  Fixture f;
  MemoryAttackProgram program(f.sim, f.host, f.attacker, MemoryAttackType::kMemoryLock);
  program.start();
  EXPECT_DOUBLE_EQ(f.host.lock_duty(f.attacker),
                   MemoryAttackProgram::kMaxLockDuty);
  program.stop();
  EXPECT_DOUBLE_EQ(f.host.lock_duty(f.attacker), 0.0);
}

TEST(MemoryAttackProgram, IntensityScalesActivity) {
  Fixture f;
  MemoryAttackProgram program(f.sim, f.host, f.attacker, MemoryAttackType::kMemoryLock, 0.5);
  program.start();
  EXPECT_DOUBLE_EQ(f.host.lock_duty(f.attacker),
                   0.5 * MemoryAttackProgram::kMaxLockDuty);
  program.set_intensity(1.0);  // live re-parameterisation
  EXPECT_DOUBLE_EQ(f.host.lock_duty(f.attacker),
                   MemoryAttackProgram::kMaxLockDuty);
}

TEST(MemoryAttackProgram, StartStopIdempotent) {
  Fixture f;
  MemoryAttackProgram program(f.sim, f.host, f.attacker, MemoryAttackType::kMemoryLock);
  program.stop();  // not running: no-op
  program.start();
  program.start();  // no-op
  program.stop();
  EXPECT_EQ(program.windows().size(), 1u);
}

TEST(MemoryAttackProgram, RecordsExecutionWindows) {
  Fixture f;
  MemoryAttackProgram program(f.sim, f.host, f.attacker, MemoryAttackType::kMemoryLock);
  f.sim.schedule_at(msec(100), [&] { program.start(); });
  f.sim.schedule_at(msec(600), [&] { program.stop(); });
  f.sim.schedule_at(msec(2100), [&] { program.start(); });
  f.sim.schedule_at(msec(2600), [&] { program.stop(); });
  f.sim.run_until(sec(std::int64_t{3}));
  ASSERT_EQ(program.windows().size(), 2u);
  EXPECT_EQ(program.windows()[0].start, msec(100));
  EXPECT_EQ(program.windows()[0].length(), msec(500));
  EXPECT_EQ(program.windows()[1].start, msec(2100));
  EXPECT_EQ(program.total_on_time(), sec(std::int64_t{1}));
}

TEST(MemoryAttackProgram, TotalOnTimeIncludesOpenWindow) {
  Fixture f;
  MemoryAttackProgram program(f.sim, f.host, f.attacker, MemoryAttackType::kMemoryLock);
  f.sim.schedule_at(msec(100), [&] { program.start(); });
  f.sim.run_until(msec(400));
  EXPECT_EQ(program.total_on_time(), msec(300));
}

TEST(MemoryAttackProgram, SwitchTypeWhileRunning) {
  Fixture f;
  MemoryAttackProgram program(f.sim, f.host, f.attacker, MemoryAttackType::kBusSaturate);
  program.start();
  EXPECT_GT(f.host.demand(f.attacker), 0.0);
  program.set_type(MemoryAttackType::kMemoryLock);
  EXPECT_DOUBLE_EQ(f.host.demand(f.attacker), 0.0);
  EXPECT_GT(f.host.lock_duty(f.attacker), 0.0);
}

TEST(MemoryAttackProgram, DestructorClearsHostActivity) {
  Fixture f;
  {
    MemoryAttackProgram program(f.sim, f.host, f.attacker, MemoryAttackType::kMemoryLock);
    program.start();
    EXPECT_TRUE(f.host.any_lock_active());
  }
  EXPECT_FALSE(f.host.any_lock_active());
}

TEST(MemoryAttackProgram, TypeNames) {
  EXPECT_STREQ(to_string(MemoryAttackType::kBusSaturate), "bus-saturate");
  EXPECT_STREQ(to_string(MemoryAttackType::kMemoryLock), "memory-lock");
}

}  // namespace
}  // namespace memca::cloud
