#include "cloud/membw.h"

#include <gtest/gtest.h>

namespace memca::cloud {
namespace {

PackageSpec package() { return PackageSpec{6, 15.0, 21.0, 10.5}; }

double achieved(const std::vector<StreamResult>& results, VmId vm) {
  for (const StreamResult& r : results) {
    if (r.vm == vm) return r.achieved_gbps;
  }
  ADD_FAILURE() << "vm " << vm << " not in results";
  return 0.0;
}

TEST(MemoryBandwidthModel, SingleStreamGetsItsDemand) {
  MemoryBandwidthModel model;
  const auto results = model.share_package(package(), {{0, 5.0, 0.0}});
  EXPECT_NEAR(achieved(results, 0), 5.0, 1e-9);
}

TEST(MemoryBandwidthModel, SingleStreamCappedBySingleStreamCeiling) {
  MemoryBandwidthModel model;
  const auto results = model.share_package(package(), {{0, 50.0, 0.0}});
  EXPECT_NEAR(achieved(results, 0), 10.5, 1e-9);
}

TEST(MemoryBandwidthModel, TwoHungryStreamsFitWithinBus) {
  // Paper finding 1: one attacker cannot saturate the bus — two full
  // streams (2 x 10.5 = 21 demanded vs 20 usable) both get close to max.
  MemoryBandwidthModel model;
  const auto results =
      model.share_package(package(), {{0, 10.5, 0.0}, {1, 10.5, 0.0}});
  EXPECT_GT(achieved(results, 0), 9.0);
  EXPECT_GT(achieved(results, 1), 9.0);
}

TEST(MemoryBandwidthModel, PerStreamBandwidthDecreasesWithVmCount) {
  // Paper finding 2: as co-located VMs increase, per-VM bandwidth drops.
  MemoryBandwidthModel model;
  double prev = 1e9;
  for (int k = 1; k <= 6; ++k) {
    std::vector<StreamDemand> streams;
    for (int i = 0; i < k; ++i) streams.push_back({i, 10.5, 0.0});
    const double per_vm = achieved(model.share_package(package(), streams), 0);
    EXPECT_LE(per_vm, prev + 1e-9) << "k=" << k;
    prev = per_vm;
  }
  // With 6 hungry VMs each gets roughly a sixth of the (degraded) bus.
  EXPECT_LT(prev, 21.0 / 6.0 + 0.5);
}

TEST(MemoryBandwidthModel, TotalNeverExceedsUsableBandwidth) {
  MemoryBandwidthModel model;
  for (int k = 1; k <= 8; ++k) {
    std::vector<StreamDemand> streams;
    for (int i = 0; i < k; ++i) streams.push_back({i, 10.5, 0.0});
    const auto results = model.share_package(package(), streams);
    double total = 0.0;
    for (const auto& r : results) total += r.achieved_gbps;
    EXPECT_LE(total, 21.0 + 1e-6) << "k=" << k;
  }
}

TEST(MemoryBandwidthModel, WaterFillingRedistributesSurplus) {
  // A small stream takes what it needs; the big one gets the rest.
  MemoryBandwidthModel model;
  const auto results =
      model.share_package(package(), {{0, 1.0, 0.0}, {1, 10.5, 0.0}});
  EXPECT_NEAR(achieved(results, 0), 1.0, 1e-9);
  EXPECT_GT(achieved(results, 1), 9.5);
}

TEST(MemoryBandwidthModel, LockStarvesCoLocatedStreams) {
  // Paper finding 3: locking is far more effective than saturating.
  MemoryBandwidthModel model;
  const auto saturate =
      model.share_package(package(), {{0, 10.5, 0.0}, {1, 8.0, 0.0}});
  const auto lock =
      model.share_package(package(), {{0, 0.0, 0.9}, {1, 8.0, 0.0}});
  EXPECT_LT(achieved(lock, 1), 0.5 * achieved(saturate, 1));
}

TEST(MemoryBandwidthModel, LockDutyScalesStarvation) {
  // A victim hungry enough to need the whole bus loses bandwidth
  // monotonically as the locker's duty cycle grows.
  MemoryBandwidthModel model;
  double prev = 1e9;
  for (double duty : {0.2, 0.5, 0.8, 0.95}) {
    const auto results =
        model.share_package(package(), {{0, 0.0, duty, 1}, {1, 10.5, 0.0, 1}});
    const double victim = achieved(results, 1);
    EXPECT_LT(victim, prev) << "duty=" << duty;
    prev = victim;
  }
}

TEST(MemoryBandwidthModel, ParallelismRaisesTheCap) {
  MemoryBandwidthModel model;
  const auto one = model.share_package(package(), {{0, 21.0, 0.0, 1}});
  const auto two = model.share_package(package(), {{0, 21.0, 0.0, 2}});
  EXPECT_NEAR(achieved(one, 0), 10.5, 1e-9);
  EXPECT_NEAR(achieved(two, 0), 21.0, 1e-9);
}

TEST(MemoryBandwidthModel, LockerItselfMovesLittleData) {
  MemoryBandwidthModel model;
  const auto results =
      model.share_package(package(), {{0, 0.0, 0.9}, {1, 8.0, 0.0}});
  EXPECT_LT(achieved(results, 0), 1.5);
}

TEST(MemoryBandwidthModel, CombinedLockDuty) {
  EXPECT_DOUBLE_EQ(MemoryBandwidthModel::combined_lock_duty({}), 0.0);
  EXPECT_DOUBLE_EQ(MemoryBandwidthModel::combined_lock_duty({{0, 0.0, 0.5}}), 0.5);
  EXPECT_NEAR(
      MemoryBandwidthModel::combined_lock_duty({{0, 0.0, 0.5}, {1, 0.0, 0.5}}), 0.75,
      1e-12);
}

TEST(MemoryBandwidthModel, IdleStreamsAchieveNothing) {
  MemoryBandwidthModel model;
  const auto results = model.share_package(package(), {{0, 0.0, 0.0}, {1, 5.0, 0.0}});
  EXPECT_DOUBLE_EQ(achieved(results, 0), 0.0);
  EXPECT_NEAR(achieved(results, 1), 5.0, 1e-9);
}

TEST(MemoryBandwidthModel, EmptyPackage) {
  MemoryBandwidthModel model;
  EXPECT_TRUE(model.share_package(package(), {}).empty());
}

class LockVsSaturateSweep : public ::testing::TestWithParam<int> {};

TEST_P(LockVsSaturateSweep, LockAlwaysBeatsSaturateAtEqualVmCount) {
  // For any number of measuring VMs, a single locking attacker degrades
  // them more than a single bus-saturating attacker (paper Fig. 3).
  const int measuring = GetParam();
  MemoryBandwidthModel model;
  std::vector<StreamDemand> base;
  for (int i = 0; i < measuring; ++i) base.push_back({i, 10.5, 0.0});

  auto with_attacker = [&](StreamDemand attacker) {
    std::vector<StreamDemand> streams = base;
    attacker.vm = 100;
    streams.push_back(attacker);
    return achieved(model.share_package(package(), streams), 0);
  };
  const double under_saturate = with_attacker({100, 10.5, 0.0});
  const double under_lock = with_attacker({100, 0.0, 0.9});
  EXPECT_LT(under_lock, under_saturate) << "measuring=" << measuring;
}

INSTANTIATE_TEST_SUITE_P(VmCounts, LockVsSaturateSweep, ::testing::Range(1, 6));

}  // namespace
}  // namespace memca::cloud
