// Timing-wheel behaviour of the Simulator: coarse timers (>= kWheelMinDelay,
// i.e. ~131 ms) park in the hierarchical wheel instead of the arrival heap.
// These tests pin the routing threshold, the cascade across wheel levels,
// cancellation of parked timers, and — the property everything else rests
// on — that wheel-parked events fire in exactly the same (time, seq) order
// as heap-scheduled ones.
#include <gtest/gtest.h>

#include <limits>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace memca {
namespace {

TEST(TimingWheel, LongDelaysParkInWheelShortOnesDoNot) {
  Simulator sim;
  sim.schedule_in(msec(100), [] {});  // under the ~131 ms threshold: heap
  EXPECT_EQ(sim.wheel_pending(), 0u);
  sim.schedule_in(sec(std::int64_t{1}), [] {});  // classic RTO delay: wheel
  EXPECT_EQ(sim.wheel_pending(), 1u);
  sim.schedule_in(sec(std::int64_t{7}), [] {});  // think-time delay: wheel
  EXPECT_EQ(sim.wheel_pending(), 2u);
  sim.run_all();
  EXPECT_EQ(sim.wheel_pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(TimingWheel, FiresAtExactScheduledTime) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (SimTime delay : {sec(std::int64_t{1}), msec(1500), sec(std::int64_t{120}),
                        sec(std::int64_t{3000})}) {
    sim.schedule_in(delay, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_all();
  EXPECT_EQ(fired, (std::vector<SimTime>{sec(std::int64_t{1}), msec(1500),
                                         sec(std::int64_t{120}), sec(std::int64_t{3000})}))
      << "wheel timers must fire at their exact scheduled instant";
}

TEST(TimingWheel, OrderMatchesHeapSemanticsAcrossMixedDelays) {
  // Interleave short (heap) and long (wheel) timers whose absolute times
  // shuffle across the two structures; the firing order must be the global
  // (time, seq) order regardless of which structure held each timer.
  Simulator sim;
  std::vector<std::pair<SimTime, int>> fired;
  int tag = 0;
  auto add = [&](SimTime delay) {
    const int t = tag++;
    sim.schedule_in(delay, [&fired, &sim, t] { fired.emplace_back(sim.now(), t); });
  };
  add(sec(std::int64_t{2}));   // wheel
  add(msec(50));               // heap
  add(msec(200));              // wheel (just over threshold)
  add(sec(std::int64_t{2}));   // wheel, same instant as tag 0 -> after it
  add(msec(130));              // heap (just under threshold)
  add(sec(std::int64_t{300})); // wheel level 2
  sim.run_all();
  const std::vector<std::pair<SimTime, int>> expected = {
      {msec(50), 1},  {msec(130), 4},          {msec(200), 2},
      {sec(std::int64_t{2}), 0}, {sec(std::int64_t{2}), 3}, {sec(std::int64_t{300}), 5},
  };
  EXPECT_EQ(fired, expected);
}

TEST(TimingWheel, SameInstantTieBreaksByScheduleOrderAcrossStructures) {
  // Two events at the same absolute time, one routed to the wheel (long
  // delay) and one scheduled later from closer range into the heap: the
  // wheel one was scheduled first, so it must fire first.
  Simulator sim;
  std::vector<int> order;
  const SimTime t = sec(std::int64_t{1});
  sim.schedule_at(t, [&order] { order.push_back(0); });  // wheel (delay 1 s)
  sim.run_until(t - msec(10));
  sim.schedule_at(t, [&order] { order.push_back(1); });  // heap (delay 10 ms)
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(TimingWheel, CancelledParkedTimerNeverFires) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.schedule_in(sec(std::int64_t{5}), [&fired] { ++fired; });
  EXPECT_EQ(sim.wheel_pending(), 1u);
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.wheel_pending(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(TimingWheel, MassCancellationIsSweptByCompaction) {
  // The RTO population shape: thousands of parked timers, nearly all
  // cancelled before firing. The compaction sweep must reclaim the wheel
  // entries (not just heap entries), so the stale population stays bounded.
  Simulator sim;
  int fired = 0;
  std::vector<EventHandle> handles;
  handles.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    handles.push_back(
        sim.schedule_in(sec(std::int64_t{1}) + msec(i % 3000), [&fired] { ++fired; }));
  }
  for (int i = 0; i < 10000; ++i) {
    if (i % 100 != 0) handles[static_cast<std::size_t>(i)].cancel();
  }
  // After cancelling 99% of 10k timers, compaction has certainly run; the
  // wheel must not still hold ~9.9k stale entries.
  EXPECT_LT(sim.wheel_pending(), 1000u);
  sim.run_all();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(sim.wheel_pending(), 0u);
}

TEST(TimingWheel, CascadesAcrossAllLevels) {
  // One timer per wheel level plus one past the horizon (heap fallback);
  // each must fire exactly at its instant after cascading down.
  Simulator sim;
  std::vector<SimTime> fired;
  const std::vector<SimTime> delays = {
      msec(500),                 // level 0
      sec(std::int64_t{60}),     // level 1 (65.5 ms .. 4.19 s per tick)
      sec(std::int64_t{1000}),   // level 2
      sec(std::int64_t{30000}),  // past the ~4.77 h horizon: heap fallback
  };
  for (SimTime d : delays) {
    sim.schedule_in(d, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  EXPECT_EQ(sim.wheel_pending(), 3u);  // horizon overflow went to the heap
  sim.run_all();
  EXPECT_EQ(fired, delays);
}

TEST(TimingWheel, RunUntilLeavesParkedTimersIntact) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(sec(std::int64_t{10}), [&fired] { ++fired; });
  sim.run_until(sec(std::int64_t{9}));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.wheel_pending(), 1u);
  sim.run_until(sec(std::int64_t{10}));  // boundary inclusive
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.wheel_pending(), 0u);
}

TEST(TimingWheel, ReinsertionAfterIdlePeriodsStaysCorrect) {
  // Exercises the empty-wheel frontier snap: park, drain, advance time far,
  // park again. A stale frontier would misfile the second timer.
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_in(sec(std::int64_t{1}), [&fired, &sim] { fired.push_back(sim.now()); });
  sim.run_all();
  sim.run_until(sec(std::int64_t{5000}));  // long idle gap, empty wheel
  sim.schedule_in(sec(std::int64_t{2}), [&fired, &sim] { fired.push_back(sim.now()); });
  EXPECT_EQ(sim.wheel_pending(), 1u);
  sim.run_all();
  EXPECT_EQ(fired, (std::vector<SimTime>{sec(std::int64_t{1}), sec(std::int64_t{5002})}));
}

TEST(TimingWheel, MisalignedFrontierNearLevelWindowBoundary) {
  // Regression: level selection used the raw time delta from the frontier
  // while the bucket index came from absolute time. After the 200 ms timer
  // below fires, the frontier sits at 262144 us — one level-0 tick past the
  // flushed bucket, not aligned to a level-1 (2^22 us) boundary. A timer
  // whose delta is just under the level-1 window (2^28 us) then wrapped all
  // 64 buckets onto the frontier's own bucket and was silently dropped by
  // the cascade: it never fired and leaked in pending_events(). Tick-space
  // level selection must file it one level up and fire it exactly on time.
  Simulator sim;
  std::vector<SimTime> fired;
  auto record = [&fired, &sim] { fired.push_back(sim.now()); };
  sim.schedule_in(msec(200), record);               // misaligns the frontier
  sim.schedule_in(sec(std::int64_t{400}), record);  // keeps the wheel occupied
  sim.run_until(msec(200));
  const SimTime target = msec(268500);  // delta from frontier: 2^28 - 197856 us
  sim.schedule_at(target, record);
  sim.run_all();
  EXPECT_EQ(fired,
            (std::vector<SimTime>{msec(200), target, sec(std::int64_t{400})}));
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.wheel_pending(), 0u);
}

TEST(TimingWheel, PeriodicCoarseTickUsesWheelAndStaysExact) {
  // A 1 s periodic task re-arms through the wheel every firing; 100 firings
  // must land exactly on the second marks (no drift from bucket rounding).
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTask task(sim, sec(std::int64_t{1}), [&ticks, &sim] { ticks.push_back(sim.now()); });
  sim.run_until(sec(std::int64_t{100}));
  ASSERT_EQ(ticks.size(), 100u);
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    EXPECT_EQ(ticks[i], sec(static_cast<std::int64_t>(i + 1)));
  }
}

}  // namespace
}  // namespace memca
