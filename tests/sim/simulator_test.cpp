#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/counting_alloc.h"

namespace memca {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(msec(30), [&] { order.push_back(3); });
  sim.schedule_at(msec(10), [&] { order.push_back(1); });
  sim.schedule_at(msec(20), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(msec(5), [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(msec(42), [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, msec(42));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(msec(10), [&] { ++fired; });
  sim.schedule_at(msec(20), [&] { ++fired; });
  sim.schedule_at(msec(21), [&] { ++fired; });
  sim.run_until(msec(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), msec(20));
  sim.run_until(msec(30));
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.run_for(msec(10));
  EXPECT_EQ(sim.now(), msec(10));
  sim.run_for(msec(10));
  EXPECT_EQ(sim.now(), msec(20));
}

TEST(Simulator, ScheduleInIsRelativeToNow) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(msec(10), [&] {
    sim.schedule_in(msec(5), [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, msec(15));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(msec(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.schedule_at(msec(10), [&] { ++fired; });
  sim.run_all();
  EXPECT_FALSE(h.pending());
  h.cancel();
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(msec(1), recurse);
  };
  sim.schedule_in(msec(1), recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), msec(5));
}

TEST(Simulator, ZeroDelayFiresAtSameTime) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(msec(7), [&] {
    sim.schedule_in(0, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, msec(7));
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 17; ++i) sim.schedule_at(msec(i), [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 17u);
}

TEST(Simulator, PendingEventsCountsOnlyLiveEvents) {
  Simulator sim;
  EventHandle a = sim.schedule_at(msec(10), [] {});
  sim.schedule_at(msec(20), [] {});
  sim.schedule_at(msec(30), [] {});
  EXPECT_EQ(sim.pending_events(), 3u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
  a.cancel();
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_EQ(sim.cancelled_pending(), 1u);
  sim.run_all();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulator, SlotReuseAfterCancelKeepsHandlesDistinct) {
  Simulator sim;
  int first = 0;
  int second = 0;
  EventHandle a = sim.schedule_at(msec(10), [&first] { ++first; });
  a.cancel();
  // The new event recycles the cancelled event's slot; the old handle must
  // not alias it (the generation/seq check distinguishes occupants).
  EventHandle b = sim.schedule_at(msec(20), [&second] { ++second; });
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  a.cancel();  // must not cancel b
  EXPECT_TRUE(b.pending());
  sim.run_all();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  EXPECT_FALSE(b.pending());
}

TEST(Simulator, HandleFromFiredEventDoesNotAliasSlotReuse) {
  Simulator sim;
  int late = 0;
  EventHandle a = sim.schedule_at(msec(10), [] {});
  sim.run_all();  // `a` fired; its slot is free
  EventHandle b = sim.schedule_at(msec(20), [&late] { ++late; });
  EXPECT_FALSE(a.pending());
  a.cancel();  // stale handle: must not touch b's event
  EXPECT_TRUE(b.pending());
  sim.run_all();
  EXPECT_EQ(late, 1);
}

TEST(Simulator, CompactionSweepsCancelledHeapEntries) {
  Simulator sim;
  int fired = 0;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(sim.schedule_at(msec(i + 1), [&fired] { ++fired; }));
  }
  for (int i = 0; i < 1000; ++i) {
    if (i % 10 != 0) handles[static_cast<std::size_t>(i)].cancel();
  }
  // 900 of 1000 entries were cancelled; lazy compaction must have swept the
  // heap once cancelled entries outnumbered live ones.
  EXPECT_EQ(sim.pending_events(), 100u);
  EXPECT_LT(sim.cancelled_pending(), 500u);
  sim.run_all();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(sim.events_executed(), 100u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(Simulator, CompactionPreservesFiringOrder) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 200; ++i) {
    handles.push_back(sim.schedule_at(msec(200 - i), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 200; ++i) {
    if (i % 2 == 0) handles[static_cast<std::size_t>(i)].cancel();  // forces a compaction
  }
  sim.run_all();
  // Survivors are the odd i, scheduled at time 200 - i: they must fire in
  // decreasing i (increasing time) despite the heap rebuild.
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t k = 0; k + 1 < order.size(); ++k) EXPECT_GT(order[k], order[k + 1]);
}

TEST(Simulator, ManyCancelScheduleCyclesRecycleSlots) {
  Simulator sim;
  for (int i = 0; i < 10000; ++i) {
    EventHandle h = sim.schedule_at(msec(1), [] {});
    h.cancel();
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  int fired = 0;
  sim.schedule_at(msec(2), [&fired] { ++fired; });
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelDuringCallbackAffectsLaterEvent) {
  Simulator sim;
  bool second_fired = false;
  EventHandle second;
  sim.schedule_at(msec(10), [&] { second.cancel(); });
  second = sim.schedule_at(msec(20), [&] { second_fired = true; });
  sim.run_all();
  EXPECT_FALSE(second_fired);
  EXPECT_EQ(sim.events_executed(), 1u);
}

// -- batch tagging (batch_continues peek) ------------------------------------

TEST(SimulatorBatch, ForeignStaleHeadBetweenMembersFlushesEarly) {
  // A cancelled event with a *different* tag sits (in seq order) between two
  // members of one batch at the same instant. The peek's cheap tag reject
  // answers "no" without probing the stale head's liveness, so the first
  // member sees batch_continues() == false — a conservative early flush,
  // never a wrong count. Both members must still fire.
  Simulator sim;
  const std::uint32_t mine = sim.new_batch_key();
  const std::uint32_t foreign = sim.new_batch_key();
  std::vector<bool> continues;
  sim.schedule_batched(msec(5), mine, [&] { continues.push_back(sim.batch_continues()); });
  EventHandle stale = sim.schedule_batched(msec(5), foreign, [] { FAIL(); });
  sim.schedule_batched(msec(5), mine, [&] { continues.push_back(sim.batch_continues()); });
  stale.cancel();
  sim.run_all();
  EXPECT_EQ(continues, (std::vector<bool>{false, false}));
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(SimulatorBatch, OwnTagStaleHeadIsSkippedByPeek) {
  // Same shape, but the stale head carries the batch's own tag: the peek
  // drops it and sees through to the live second member, so the first member
  // may defer its flush.
  Simulator sim;
  const std::uint32_t key = sim.new_batch_key();
  std::vector<bool> continues;
  sim.schedule_batched(msec(5), key, [&] { continues.push_back(sim.batch_continues()); });
  EventHandle stale = sim.schedule_batched(msec(5), key, [] { FAIL(); });
  sim.schedule_batched(msec(5), key, [&] { continues.push_back(sim.batch_continues()); });
  stale.cancel();
  sim.run_all();
  EXPECT_EQ(continues, (std::vector<bool>{true, false}));
  EXPECT_EQ(sim.events_executed(), 2u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(SimulatorBatch, TwoDistinctKeysSharingOneInstant) {
  // Quantized mode puts one completion group per *station* on an instant, so
  // two stations' groups regularly share a grid point under different keys.
  // Each key's run must end exactly where the other key's events begin.
  Simulator sim;
  const std::uint32_t k1 = sim.new_batch_key();
  const std::uint32_t k2 = sim.new_batch_key();
  std::vector<bool> continues;
  auto probe = [&] { continues.push_back(sim.batch_continues()); };
  sim.schedule_batched(msec(7), k1, probe);
  sim.schedule_batched(msec(7), k1, probe);
  sim.schedule_batched(msec(7), k2, probe);
  sim.schedule_batched(msec(7), k2, probe);
  sim.run_all();
  // k1's first member sees its second; k1's second sees k2's head (foreign:
  // flush); k2 mirrors the pattern at the tail of the instant.
  EXPECT_EQ(continues, (std::vector<bool>{true, false, true, false}));
}

// -- bulk cancel -------------------------------------------------------------

TEST(SimulatorBulkCancel, WheelParkedTimersLeavePendingBalanced) {
  // RTO-style timers park in the timing wheel (delay >= the wheel routing
  // threshold). A bulk cancel must settle live/cancelled counts in one pass
  // and leave nothing to fire.
  Simulator sim;
  std::vector<EventHandle> timers;
  int fired = 0;
  for (int i = 0; i < 16; ++i) {
    timers.push_back(sim.schedule_in(sec(std::int64_t{1}) + msec(i), [&] { ++fired; }));
  }
  EXPECT_EQ(sim.pending_events(), 16u);
  sim.cancel_bulk(timers.data(), timers.size());
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.events_executed(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(SimulatorBulkCancel, SkipsFiredCancelledAndEmptyHandles) {
  Simulator sim;
  int fired = 0;
  std::vector<EventHandle> handles;
  handles.push_back(sim.schedule_at(msec(1), [&] { ++fired; }));   // will fire first
  handles.push_back(sim.schedule_at(msec(10), [&] { ++fired; }));  // cancelled twice
  handles.push_back(EventHandle{});                                // inert
  handles.push_back(sim.schedule_at(sec(std::int64_t{2}), [&] { ++fired; }));  // wheel
  handles.push_back(sim.schedule_at(msec(20), [&] { ++fired; }));  // heap
  sim.run_until(msec(1));
  handles[1].cancel();
  sim.cancel_bulk(handles.data(), handles.size());
  sim.run_all();
  // Only the already-fired event executed; every live handle in the span
  // died, and re-cancelling the stale ones was a no-op.
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(SimulatorBulkCancel, RepeatBulkCancelAllocatesNothing) {
  // Steady-state contract: once the arena and wheel are warm, a bulk cancel
  // of wheel-parked timers is allocation-free (the counting-allocator gate
  // the snapshot and flight-recorder paths also hold themselves to).
  Simulator sim;
  std::vector<EventHandle> timers;
  for (int round = 0; round < 2; ++round) {
    timers.clear();
    for (int i = 0; i < 8; ++i) {
      timers.push_back(sim.schedule_in(sec(std::int64_t{1}), [] {}));
    }
    if (round == 0) {
      sim.cancel_bulk(timers.data(), timers.size());
    } else {
      tests::ScopedAllocationCounter counter;
      sim.cancel_bulk(timers.data(), timers.size());
      EXPECT_EQ(counter.count(), 0);
    }
    sim.run_all();
  }
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(PeriodicTask, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, msec(100), [&] { fires.push_back(sim.now()); });
  sim.run_until(msec(350));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], msec(100));
  EXPECT_EQ(fires[1], msec(200));
  EXPECT_EQ(fires[2], msec(300));
}

TEST(PeriodicTask, FireImmediatelyOption) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, msec(100), [&] { fires.push_back(sim.now()); },
                    /*fire_immediately=*/true);
  sim.run_until(msec(250));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], 0);
}

TEST(PeriodicTask, StopHaltsFiring) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task(sim, msec(100), [&] {
    if (++fires == 2) task.stop();
  });
  sim.run_until(sec(std::int64_t{1}));
  EXPECT_EQ(fires, 2);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, SetPeriodTakesEffectAfterNextFiring) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, msec(100), [&] { fires.push_back(sim.now()); });
  sim.run_until(msec(100));
  task.set_period(msec(50));
  sim.run_until(msec(260));
  // The firing at 200 was already armed with the old period; the new 50 ms
  // period applies from there on: 100, 200, 250.
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[1], msec(200));
  EXPECT_EQ(fires[2], msec(250));
}

TEST(PeriodicTaskDeathTest, SetPeriodRejectsNonPositive) {
  Simulator sim;
  PeriodicTask task(sim, msec(100), [] {});
  EXPECT_DEATH(task.set_period(0), "period must be positive");
  EXPECT_DEATH(task.set_period(-msec(5)), "period must be positive");
}

TEST(PeriodicTask, DestructorCancels) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTask task(sim, msec(10), [&] { ++fires; });
  }
  sim.run_until(msec(100));
  EXPECT_EQ(fires, 0);
}

}  // namespace
}  // namespace memca
