#include "workload/profile.h"

#include <gtest/gtest.h>

namespace memca::workload {
namespace {

TEST(WorkloadProfile, RubbosProfileIsValid) {
  const WorkloadProfile p = rubbos_profile();
  EXPECT_EQ(p.num_pages(), 6u);
  EXPECT_EQ(p.num_tiers(), 3u);
  EXPECT_EQ(p.think_time_mean, sec(std::int64_t{7}));
}

TEST(WorkloadProfile, RubbosDemandsIncreaseTowardBackend) {
  // MySQL dominates every page's cost — the structural reason the back
  // tier is the bottleneck.
  const WorkloadProfile p = rubbos_profile();
  for (const PageProfile& page : p.pages) {
    EXPECT_LT(page.demand_mean_us[0], page.demand_mean_us[2]) << page.name;
  }
  EXPECT_GT(p.mean_demand_us(2), p.mean_demand_us(1));
  EXPECT_GT(p.mean_demand_us(1), p.mean_demand_us(0));
}

TEST(WorkloadProfile, MeanDemandMatchesStationaryMix) {
  const WorkloadProfile p = rubbos_profile();
  // The stationary-weighted MySQL demand calibrates the bottleneck near
  // 1.7 ms (capacity ~ 1200 req/s with 2 workers, ~42% clean utilization).
  const double mysql = p.mean_demand_us(2);
  EXPECT_GT(mysql, 1300.0);
  EXPECT_LT(mysql, 2200.0);
}

TEST(WorkloadProfile, SampleDemandsShape) {
  const WorkloadProfile p = rubbos_profile();
  Rng rng(3);
  const auto d = p.sample_demands(0, rng);
  ASSERT_EQ(d.size(), 3u);
  for (double v : d) EXPECT_GT(v, 0.0);
}

TEST(WorkloadProfile, SampleDemandsMeanConverges) {
  const WorkloadProfile p = rubbos_profile();
  Rng rng(5);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += p.sample_demands(1, rng)[2];
  EXPECT_NEAR(sum / n, p.pages[1].demand_mean_us[2], 30.0);
}

TEST(WorkloadProfile, UniformProfile) {
  const WorkloadProfile p = uniform_profile({100.0, 200.0}, sec(std::int64_t{3}));
  EXPECT_EQ(p.num_pages(), 1u);
  EXPECT_EQ(p.num_tiers(), 2u);
  EXPECT_EQ(p.think_time_mean, sec(std::int64_t{3}));
  EXPECT_DOUBLE_EQ(p.mean_demand_us(0), 100.0);
  EXPECT_DOUBLE_EQ(p.mean_demand_us(1), 200.0);
}

TEST(WorkloadProfile, TransitionRowsSumToOne) {
  const WorkloadProfile p = rubbos_profile();
  for (const auto& row : p.transitions) {
    double sum = 0.0;
    for (double v : row) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace memca::workload
