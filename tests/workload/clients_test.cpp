#include "workload/clients.h"

#include <gtest/gtest.h>

#include "queueing/ntier.h"

namespace memca::workload {
namespace {

struct Fixture {
  Simulator sim;
  queueing::NTierSystem system;
  RequestRouter router;
  explicit Fixture(std::vector<queueing::TierConfig> tiers = {{"front", 200, 4},
                                                              {"back", 100, 2}})
      : system(sim, std::move(tiers)), router(system) {}
};

WorkloadProfile two_tier_profile(SimTime think = sec(std::int64_t{1})) {
  return uniform_profile({100.0, 500.0}, think);
}

TEST(ClosedLoopClients, ThroughputApproximatesUsersOverThinkTime) {
  Fixture f;
  ClientConfig config;
  config.num_users = 100;
  ClosedLoopClients clients(f.sim, f.router, two_tier_profile(), config, Rng(1));
  clients.start();
  f.sim.run_until(sec(std::int64_t{100}));
  // N / (Z + R) with Z = 1 s and R ~ 1 ms: about 100 req/s.
  EXPECT_NEAR(clients.throughput(), 100.0, 5.0);
  EXPECT_EQ(clients.dropped_attempts(), 0);
}

TEST(ClosedLoopClients, RecordsResponseTimes) {
  Fixture f;
  ClientConfig config;
  config.num_users = 10;
  config.record_response_series = true;
  ClosedLoopClients clients(f.sim, f.router, two_tier_profile(), config, Rng(2));
  clients.start();
  f.sim.run_until(sec(std::int64_t{20}));
  EXPECT_GT(clients.response_times().count(), 100);
  // Unloaded system: p99 well below 10 ms.
  EXPECT_LT(clients.response_times().quantile(0.99), msec(10));
  EXPECT_EQ(clients.response_series().size(),
            static_cast<std::size_t>(clients.response_times().count()));
}

TEST(ClosedLoopClients, WarmupSuppressesEarlyStats) {
  Fixture f;
  ClientConfig config;
  config.num_users = 10;
  config.record_response_series = true;
  config.stats_warmup = sec(std::int64_t{10});
  ClosedLoopClients clients(f.sim, f.router, two_tier_profile(), config, Rng(3));
  clients.start();
  f.sim.run_until(sec(std::int64_t{5}));
  EXPECT_GT(clients.completed(), 0);
  EXPECT_EQ(clients.response_times().count(), 0);
  f.sim.run_until(sec(std::int64_t{20}));
  EXPECT_GT(clients.response_times().count(), 0);
  EXPECT_GE(clients.response_series().front().time, sec(std::int64_t{10}));
}

TEST(ClosedLoopClients, DroppedRequestRetransmitsAfterRto) {
  // One user, one thread in the whole system: a second arrival would need
  // the system full. Easier: tiny system, many users.
  Fixture f({{"front", 2, 1}, {"back", 1, 1}});
  ClientConfig config;
  config.num_users = 30;
  config.stats_warmup = 0;
  // Long services so the 2-thread system is usually full.
  ClosedLoopClients clients(f.sim, f.router,
                            uniform_profile({100.0, 50000.0}, sec(std::int64_t{1})), config,
                            Rng(4));
  clients.start();
  f.sim.run_until(sec(std::int64_t{60}));
  EXPECT_GT(clients.dropped_attempts(), 0);
  EXPECT_GT(clients.retransmitted_completions(), 0);
  // Retransmitted completions pay at least the 1 s RTO.
  EXPECT_GE(clients.response_times().max(), sec(std::int64_t{1}));
}

TEST(ClosedLoopClients, AbandonsAfterMaxRetries) {
  // A system permanently saturated by one near-eternal request.
  Fixture f({{"front", 1, 1}, {"back", 1, 1}});
  ClientConfig config;
  config.num_users = 5;
  config.max_retries = 1;
  ClosedLoopClients clients(f.sim, f.router,
                            uniform_profile({100.0, 1e9}, sec(std::int64_t{1})), config,
                            Rng(5));
  clients.start();
  f.sim.run_until(sec(std::int64_t{30}));
  EXPECT_GT(clients.failed(), 0);
}

TEST(ClosedLoopClients, UsersStayBusyOrThinking) {
  // In-flight requests can never exceed the user population.
  Fixture f;
  ClientConfig config;
  config.num_users = 50;
  ClosedLoopClients clients(f.sim, f.router, two_tier_profile(msec(100)), config, Rng(6));
  clients.start();
  for (int step = 0; step < 50; ++step) {
    f.sim.run_for(msec(100));
    EXPECT_LE(f.system.in_flight(), 50);
  }
}

TEST(ClosedLoopClients, DeterministicAcrossRuns) {
  auto run_once = [] {
    Fixture f;
    ClientConfig config;
    config.num_users = 20;
    ClosedLoopClients clients(f.sim, f.router, two_tier_profile(), config, Rng(7));
    clients.start();
    f.sim.run_until(sec(std::int64_t{30}));
    return std::pair<std::int64_t, SimTime>(clients.completed(),
                                            clients.response_times().quantile(0.9));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace memca::workload
