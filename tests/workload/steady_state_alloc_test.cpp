// Zero-allocation property of the steady-state request path.
//
// Uses the suite's counting operator new/delete (tests/support) and
// asserts that a warmed-up closed-loop population driving an
// n-tier system completes requests with ZERO heap allocations: pooled
// requests recycle their vectors, simulator closures live in recycled slots,
// timing-wheel buckets and tier rings keep their capacity, and every
// recording structure is either fixed-size or pre-reserved. The warm-up is
// deliberately longer than one full level-1 wheel rotation (268 s), so every
// bucket the armed window can touch has reached its steady capacity.
//
#include <gtest/gtest.h>

#include "common/rng.h"
#include "queueing/ntier.h"
#include "sim/simulator.h"
#include "workload/clients.h"
#include "workload/profile.h"
#include "workload/router.h"
#include "support/counting_alloc.h"

namespace memca::workload {
namespace {

TEST(SteadyStateAllocation, WarmRequestPathAllocatesNothing) {
  Simulator sim;
  queueing::NTierSystem system{
      sim, {{"apache", 150, 8}, {"tomcat", 120, 6}, {"mysql", 80, 4}}};
  RequestRouter router(system);
  ClientConfig config;
  config.num_users = 400;
  // Recording starts just before the armed window so the pre-reserved
  // response series covers exactly the samples this test produces.
  config.stats_warmup = sec(std::int64_t{590});
  ClosedLoopClients clients(sim, router, rubbos_profile(), config, Rng(7));
  clients.start();

  // Capacity warming: a dense grid of no-op timers across the wheel's full
  // two-level horizon pushes every bucket vector (and, when they fire, the
  // cascade scratch and arrival-heap capacity) well past anything the
  // workload's own timer population can reach in the armed window. Without
  // this, a Poisson-tail bucket occupancy that beats its historic maximum
  // would trigger one capacity-growth allocation — amortised, not
  // per-request, but indistinguishable to the counter.
  for (SimTime d = msec(140); d < sec(std::int64_t{4}); d += msec(1)) {
    for (int k = 0; k < 2; ++k) sim.schedule_in(d, [] {});  // level-0 buckets
  }
  for (SimTime d = sec(std::int64_t{4}); d < sec(std::int64_t{268}); d += msec(33)) {
    for (int k = 0; k < 8; ++k) sim.schedule_in(d, [] {});  // level-1 buckets
  }

  // Warm-up: longer than a full level-1 wheel rotation (268 s), so think
  // timers have cycled capacity into every bucket index they can land in,
  // and the pool/slot arenas hold their high-water population.
  sim.run_until(sec(std::int64_t{600}));
  const std::int64_t warm_completed = clients.completed();
  ASSERT_GT(warm_completed, 10000) << "warm-up must reach steady state";

  std::int64_t allocations = 0;
  {
    tests::ScopedAllocationCounter counter;
    sim.run_for(sec(std::int64_t{30}));
    allocations = counter.count();
  }

  EXPECT_GT(clients.completed(), warm_completed + 1000)
      << "the armed window must actually churn requests";
  EXPECT_EQ(allocations, 0)
      << "steady-state request lifecycle must not touch the heap";
  EXPECT_EQ(system.pool().live(), static_cast<std::size_t>(system.in_flight()));
}

}  // namespace
}  // namespace memca::workload
