#include "workload/prober.h"

#include <gtest/gtest.h>

#include "queueing/ntier.h"

namespace memca::workload {
namespace {

struct Fixture {
  Simulator sim;
  queueing::NTierSystem system{sim, {{"front", 100, 4}, {"mid", 50, 2}, {"back", 25, 2}}};
  RequestRouter router{system};
  ProberConfig config;
  Fixture() { config.demand_us = {100.0, 200.0, 300.0}; }
};

TEST(Prober, SendsAtConfiguredPeriod) {
  Fixture f;
  f.config.period = msec(200);
  Prober prober(f.sim, f.router, f.config, Rng(1));
  prober.start();
  f.sim.run_until(sec(std::int64_t{10}));
  // Fires immediately, then every 200 ms: 50 probes in 10 s (+1 at t=0).
  EXPECT_NEAR(static_cast<double>(prober.probes_sent()), 51.0, 1.0);
  EXPECT_EQ(prober.probes_dropped(), 0);
}

TEST(Prober, ObservationsTrackResponseTimes) {
  Fixture f;
  Prober prober(f.sim, f.router, f.config, Rng(2));
  prober.start();
  f.sim.run_until(sec(std::int64_t{20}));
  EXPECT_GT(prober.observations_in_window(sec(std::int64_t{20})), 50u);
  // Idle system: probe RT is sub-millisecond-ish.
  EXPECT_LT(prober.quantile_in_window(0.95, sec(std::int64_t{20})), msec(20));
  EXPECT_GT(prober.mean_in_window(sec(std::int64_t{20})), 0.0);
}

TEST(Prober, WindowingExcludesOldObservations) {
  Fixture f;
  Prober prober(f.sim, f.router, f.config, Rng(3));
  prober.start();
  f.sim.run_until(sec(std::int64_t{10}));
  const auto recent = prober.observations_in_window(sec(std::int64_t{2}));
  const auto all = prober.observations_in_window(sec(std::int64_t{100}));
  EXPECT_LT(recent, all);
  EXPECT_NEAR(static_cast<double>(recent), 10.0, 2.0);  // 200 ms period
}

TEST(Prober, DroppedProbeScoresPenalty) {
  Simulator sim;
  queueing::NTierSystem system(sim, {{"front", 1, 1}});
  RequestRouter router(system);
  // Saturate the single thread forever.
  const int blocker = router.register_source(nullptr, nullptr);
  auto req = router.make_request(blocker);
  req->demand_us = {1e12};
  router.submit(std::move(req));

  ProberConfig config;
  config.demand_us = {100.0};
  Prober prober(sim, router, config, Rng(4));
  prober.start();
  sim.run_until(sec(std::int64_t{5}));
  EXPECT_GT(prober.probes_dropped(), 0);
  EXPECT_GE(prober.quantile_in_window(0.5, sec(std::int64_t{5})), sec(std::int64_t{1}));
}

TEST(Prober, QuantileOfEmptyWindowIsZero) {
  Fixture f;
  Prober prober(f.sim, f.router, f.config, Rng(5));
  EXPECT_EQ(prober.quantile_in_window(0.95, sec(std::int64_t{1})), 0);
  EXPECT_EQ(prober.mean_in_window(sec(std::int64_t{1})), 0.0);
}

TEST(Prober, StopHaltsProbing) {
  Fixture f;
  Prober prober(f.sim, f.router, f.config, Rng(6));
  prober.start();
  f.sim.run_until(sec(std::int64_t{2}));
  prober.stop();
  const auto sent = prober.probes_sent();
  f.sim.run_until(sec(std::int64_t{4}));
  EXPECT_EQ(prober.probes_sent(), sent);
}

TEST(Prober, WindowCapacityBoundsMemory) {
  Fixture f;
  f.config.period = msec(1);
  f.config.window_capacity = 100;
  Prober prober(f.sim, f.router, f.config, Rng(7));
  prober.start();
  f.sim.run_until(sec(std::int64_t{2}));
  EXPECT_LE(prober.observations_in_window(sec(std::int64_t{10})), 100u);
}

}  // namespace
}  // namespace memca::workload
