#include "workload/router.h"

#include <gtest/gtest.h>

#include "queueing/ntier.h"

namespace memca::workload {
namespace {

struct Fixture {
  Simulator sim;
  queueing::NTierSystem system{sim, {{"front", 4, 2}, {"back", 2, 1}}};
  RequestRouter router{system};
};

TEST(RequestRouter, RoutesCompletionsToOwningSource) {
  Fixture f;
  int a_done = 0;
  int b_done = 0;
  const int a = f.router.register_source(
      [&](const queueing::Request&) { ++a_done; }, nullptr);
  const int b = f.router.register_source(
      [&](const queueing::Request&) { ++b_done; }, nullptr);

  auto ra = f.router.make_request(a);
  ra->demand_us = {10.0, 10.0};
  auto rb = f.router.make_request(b);
  rb->demand_us = {10.0, 10.0};
  f.router.submit(std::move(ra));
  f.router.submit(std::move(rb));
  f.sim.run_all();
  EXPECT_EQ(a_done, 1);
  EXPECT_EQ(b_done, 1);
}

TEST(RequestRouter, RoutesDropsToOwningSource) {
  Fixture f;
  int a_drops = 0;
  int b_drops = 0;
  const int a = f.router.register_source(nullptr, [&](const queueing::Request&) { ++a_drops; });
  const int b = f.router.register_source(nullptr, [&](const queueing::Request&) { ++b_drops; });

  // Fill the system so the next submissions drop.
  for (int i = 0; i < 4; ++i) {
    auto r = f.router.make_request(a);
    r->demand_us = {10.0, 1e9};
    f.router.submit(std::move(r));
  }
  auto rb = f.router.make_request(b);
  rb->demand_us = {10.0, 10.0};
  EXPECT_FALSE(f.router.submit(std::move(rb)));
  EXPECT_EQ(b_drops, 1);
  EXPECT_EQ(a_drops, 0);
}

TEST(RequestRouter, IdsAreUnique) {
  Fixture f;
  const int a = f.router.register_source(nullptr, nullptr);
  const int b = f.router.register_source(nullptr, nullptr);
  auto r1 = f.router.make_request(a);
  auto r2 = f.router.make_request(b);
  auto r3 = f.router.make_request(a);
  EXPECT_NE(r1->id, r2->id);
  EXPECT_NE(r1->id, r3->id);
  EXPECT_NE(r2->id, r3->id);
}

TEST(RequestRouter, DepthForwarded) {
  Fixture f;
  EXPECT_EQ(f.router.depth(), 2u);
}

TEST(RequestRouter, NullCallbacksAreSafe) {
  Fixture f;
  const int a = f.router.register_source(nullptr, nullptr);
  auto r = f.router.make_request(a);
  r->demand_us = {10.0, 10.0};
  f.router.submit(std::move(r));
  f.sim.run_all();  // must not crash
  EXPECT_EQ(f.system.completed(), 1);
}

}  // namespace
}  // namespace memca::workload
