#include "workload/markov.h"

#include <gtest/gtest.h>

#include <vector>

namespace memca::workload {
namespace {

TEST(MarkovChain, SingleStateChain) {
  MarkovChain chain({{1.0}}, {1.0});
  Rng rng(1);
  EXPECT_EQ(chain.initial_state(rng), 0);
  EXPECT_EQ(chain.next(0, rng), 0);
  EXPECT_NEAR(chain.stationary()[0], 1.0, 1e-12);
}

TEST(MarkovChain, DeterministicCycle) {
  MarkovChain chain({{0.0, 1.0}, {1.0, 0.0}}, {1.0, 0.0});
  Rng rng(2);
  EXPECT_EQ(chain.next(0, rng), 1);
  EXPECT_EQ(chain.next(1, rng), 0);
}

TEST(MarkovChain, StationaryOfSymmetricChain) {
  MarkovChain chain({{0.5, 0.5}, {0.5, 0.5}}, {1.0, 0.0});
  const auto pi = chain.stationary();
  EXPECT_NEAR(pi[0], 0.5, 1e-9);
  EXPECT_NEAR(pi[1], 0.5, 1e-9);
}

TEST(MarkovChain, StationaryOfBiasedChain) {
  // pi solves pi = pi P: for P = [[0.9, 0.1], [0.5, 0.5]] -> pi = (5/6, 1/6).
  MarkovChain chain({{0.9, 0.1}, {0.5, 0.5}}, {0.5, 0.5});
  const auto pi = chain.stationary();
  EXPECT_NEAR(pi[0], 5.0 / 6.0, 1e-9);
  EXPECT_NEAR(pi[1], 1.0 / 6.0, 1e-9);
}

TEST(MarkovChain, StationarySumsToOne) {
  MarkovChain chain({{0.2, 0.3, 0.5}, {0.6, 0.2, 0.2}, {0.1, 0.8, 0.1}}, {1.0, 0.0, 0.0});
  const auto pi = chain.stationary();
  double sum = 0.0;
  for (double p : pi) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MarkovChain, EmpiricalVisitsMatchStationary) {
  MarkovChain chain({{0.2, 0.3, 0.5}, {0.6, 0.2, 0.2}, {0.1, 0.8, 0.1}}, {1.0, 0.0, 0.0});
  Rng rng(7);
  std::vector<int> visits(3, 0);
  int state = chain.initial_state(rng);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    state = chain.next(state, rng);
    ++visits[static_cast<std::size_t>(state)];
  }
  const auto pi = chain.stationary();
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_NEAR(static_cast<double>(visits[s]) / n, pi[s], 0.01) << "state " << s;
  }
}

TEST(MarkovChain, InitialDistributionRespected) {
  MarkovChain chain({{1.0, 0.0}, {0.0, 1.0}}, {0.2, 0.8});
  Rng rng(9);
  int first = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (chain.initial_state(rng) == 0) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / n, 0.2, 0.01);
}

}  // namespace
}  // namespace memca::workload
