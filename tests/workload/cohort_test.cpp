// Cohort-batched client population: unit coverage for the SoA building
// blocks (slot allocator, RTO ledger, multinomial chain advances) and
// behavioural coverage for ClosedLoopClients in kCohort mode — population
// conservation, throughput, retransmission semantics, determinism, and the
// zero-allocation steady state. The statistical agreement with the exact
// per-user model is pinned separately in cohort_equivalence_test.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "queueing/ntier.h"
#include "sim/simulator.h"
#include "support/counting_alloc.h"
#include "workload/clients.h"
#include "workload/cohort.h"
#include "workload/markov.h"
#include "workload/profile.h"
#include "workload/router.h"

namespace memca::workload {
namespace {

TEST(CohortParts, SlotAllocatorHandsOutCompactIdsAndRecycles) {
  UserSlotAllocator slots;
  EXPECT_EQ(slots.alloc(), 0u);
  EXPECT_EQ(slots.alloc(), 1u);
  EXPECT_EQ(slots.alloc(), 2u);
  EXPECT_EQ(slots.live(), 3);
  slots.release(1);
  EXPECT_EQ(slots.live(), 2);
  // LIFO reuse: the released id comes back before a fresh one.
  EXPECT_EQ(slots.alloc(), 1u);
  EXPECT_EQ(slots.high_water(), 3u);
}

TEST(CohortParts, SlotAllocatorSnapshotRoundTrip) {
  UserSlotAllocator slots;
  for (int i = 0; i < 8; ++i) slots.alloc();
  slots.release(2);
  slots.release(5);
  UserSlotAllocator::Snapshot snap;
  slots.capture(snap);
  // Diverge, then restore: the alloc sequence must replay identically.
  slots.release(0);
  (void)slots.alloc();
  slots.restore(snap);
  EXPECT_EQ(slots.live(), 6);
  EXPECT_EQ(slots.alloc(), 5u);
  EXPECT_EQ(slots.alloc(), 2u);
  EXPECT_EQ(slots.alloc(), 8u);
}

TEST(CohortParts, RtoLedgerGroupsSameDeadlineDrops) {
  RtoLedger ledger;
  // Three same-instant drops at attempt 0: one group, one timer to arm.
  const auto a = ledger.park(0, sec(std::int64_t{5}), 1, 100, 10);
  const auto b = ledger.park(0, sec(std::int64_t{5}), 2, 200, 11);
  const auto c = ledger.park(0, sec(std::int64_t{5}), 3, 300, 12);
  EXPECT_TRUE(a.opened);
  EXPECT_FALSE(b.opened);
  EXPECT_FALSE(c.opened);
  EXPECT_EQ(a.group, b.group);
  EXPECT_EQ(b.group, c.group);
  EXPECT_EQ(ledger.backlog(), 3);
  // A later drop (different deadline) opens a fresh group even at the same
  // attempt; a different attempt always does.
  const auto d = ledger.park(0, sec(std::int64_t{6}), 4, 400, 13);
  const auto e = ledger.park(1, sec(std::int64_t{7}), 5, 500, 14);
  EXPECT_TRUE(d.opened);
  EXPECT_TRUE(e.opened);
  EXPECT_EQ(ledger.backlog(), 5);

  EXPECT_EQ(ledger.deadline(a.group), sec(std::int64_t{5}));
  EXPECT_EQ(ledger.attempt(e.group), 1);

  // Drain pops LIFO (deterministic) and frees the group.
  std::vector<std::uint32_t> users;
  ledger.drain(a.group, [&](std::int32_t page, SimTime first_sent, std::uint32_t user) {
    users.push_back(user);
    EXPECT_EQ(first_sent, static_cast<SimTime>(page) * 100);
  });
  EXPECT_EQ(users, (std::vector<std::uint32_t>{12, 11, 10}));
  EXPECT_EQ(ledger.backlog(), 2);
}

TEST(CohortParts, RtoLedgerSnapshotRoundTrip) {
  RtoLedger ledger;
  const auto g0 = ledger.park(0, 1000, 1, 10, 100);
  ledger.park(0, 1000, 2, 20, 101);
  const auto g1 = ledger.park(2, 4000, 3, 30, 102);
  RtoLedger::Snapshot snap;
  ledger.capture(snap);

  // Diverge: drain both groups, park new entries.
  ledger.drain(g0.group, [](std::int32_t, SimTime, std::uint32_t) {});
  ledger.drain(g1.group, [](std::int32_t, SimTime, std::uint32_t) {});
  ledger.park(1, 2000, 9, 90, 900);

  ledger.restore(snap);
  EXPECT_EQ(ledger.backlog(), 3);
  std::vector<std::uint32_t> users;
  ledger.drain(g0.group, [&](std::int32_t, SimTime, std::uint32_t user) {
    users.push_back(user);
  });
  EXPECT_EQ(users, (std::vector<std::uint32_t>{101, 100}));
  users.clear();
  ledger.drain(g1.group, [&](std::int32_t, SimTime, std::uint32_t user) {
    users.push_back(user);
  });
  EXPECT_EQ(users, (std::vector<std::uint32_t>{102}));
  EXPECT_EQ(ledger.backlog(), 0);
}

TEST(CohortParts, MultinomialCountsConserveAndMatchDistribution) {
  const MarkovChain chain({{0.5, 0.3, 0.2}, {0.1, 0.6, 0.3}, {0.2, 0.2, 0.6}},
                          {0.6, 0.3, 0.1});
  Rng rng(11);
  std::vector<std::int64_t> counts(3, 0);
  const std::int64_t n = 1'000'000;
  chain.sample_transition_counts(0, n, rng, counts);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], n);
  EXPECT_NEAR(static_cast<double>(counts[0]) / static_cast<double>(n), 0.5, 0.005);
  EXPECT_NEAR(static_cast<double>(counts[1]) / static_cast<double>(n), 0.3, 0.005);

  std::fill(counts.begin(), counts.end(), 0);
  chain.sample_initial_counts(n, rng, counts);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], n);
  EXPECT_NEAR(static_cast<double>(counts[0]) / static_cast<double>(n), 0.6, 0.005);
}

TEST(CohortParts, BinomialEdgeCases) {
  Rng rng(3);
  EXPECT_EQ(rng.binomial(0, 0.5), 0);
  EXPECT_EQ(rng.binomial(100, 0.0), 0);
  EXPECT_EQ(rng.binomial(100, 1.0), 100);
  const std::int64_t k = rng.binomial(1'000'000, 0.25);
  EXPECT_NEAR(static_cast<double>(k), 250'000.0, 2'500.0);
}

// -- population behaviour ---------------------------------------------------

struct Fixture {
  Simulator sim;
  queueing::NTierSystem system;
  RequestRouter router;
  explicit Fixture(std::vector<queueing::TierConfig> tiers = {{"front", 200, 4},
                                                              {"back", 100, 2}})
      : system(sim, std::move(tiers)), router(system) {}
};

ClientConfig cohort_config(int users) {
  ClientConfig config;
  config.num_users = users;
  config.mode = ClientMode::kCohort;
  return config;
}

TEST(CohortClients, ThroughputApproximatesUsersOverThinkTime) {
  Fixture f;
  ClosedLoopClients clients(f.sim, f.router,
                            uniform_profile({100.0, 500.0}, sec(std::int64_t{1})),
                            cohort_config(1000), Rng(1));
  clients.start();
  f.sim.run_until(sec(std::int64_t{100}));
  // N / (Z + tick/2 + R): the tick grid quantization adds ~25 ms to the
  // effective 1 s think time, so expect ~2.5% below N/Z.
  EXPECT_NEAR(clients.throughput(), 975.0, 30.0);
  EXPECT_EQ(clients.dropped_attempts(), 0);
}

TEST(CohortClients, PopulationIsConserved) {
  Fixture f;
  ClosedLoopClients clients(f.sim, f.router,
                            uniform_profile({100.0, 500.0}, sec(std::int64_t{7})),
                            cohort_config(2000), Rng(2));
  clients.start();
  for (int step = 0; step < 150; ++step) {
    f.sim.run_for(msec(100));
    // Every user is idle (or still ramping up) xor holds a live slot
    // (request or RTO in flight).
    EXPECT_EQ(clients.idle_users() + clients.user_slots().live(), 2000);
    EXPECT_LE(f.system.in_flight(), 2000);
  }
  // Slot ids stay compact: bounded by the concurrent in-flight + parked-RTO
  // population (here: sub-millisecond service against a 7 s think time),
  // far below the total population.
  EXPECT_LT(clients.user_slots().high_water(), 200u);
}

TEST(CohortClients, RetransmitsAfterRtoAndAbandons) {
  // Tiny saturated system: most sends bounce off the full front queue.
  Fixture f({{"front", 2, 1}, {"back", 1, 1}});
  ClientConfig config = cohort_config(30);
  config.max_retries = 2;
  ClosedLoopClients clients(f.sim, f.router,
                            uniform_profile({100.0, 50000.0}, sec(std::int64_t{1})), config,
                            Rng(4));
  clients.start();
  f.sim.run_until(sec(std::int64_t{60}));
  EXPECT_GT(clients.dropped_attempts(), 0);
  EXPECT_GT(clients.retransmitted_completions() + clients.failed(), 0);
  // Retransmitted completions pay at least the 1 s RTO.
  EXPECT_GE(clients.response_times().max(), sec(std::int64_t{1}));
  EXPECT_EQ(clients.idle_users() + clients.user_slots().live(), 30);
  EXPECT_GE(clients.rto_backlog(), 0);
}

TEST(CohortClients, DeterministicAcrossRuns) {
  auto run_once = [] {
    Fixture f;
    ClosedLoopClients clients(f.sim, f.router,
                              uniform_profile({100.0, 500.0}, sec(std::int64_t{1})),
                              cohort_config(500), Rng(7));
    clients.start();
    f.sim.run_until(sec(std::int64_t{30}));
    return std::tuple<std::int64_t, SimTime, std::uint64_t>(
        clients.completed(), clients.response_times().quantile(0.9),
        f.sim.events_executed());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(CohortClients, ResponseSeriesIsOptIn) {
  Fixture f;
  ClosedLoopClients clients(f.sim, f.router,
                            uniform_profile({100.0, 500.0}, sec(std::int64_t{1})),
                            cohort_config(100), Rng(9));
  clients.start();
  f.sim.run_until(sec(std::int64_t{10}));
  EXPECT_GT(clients.completed(), 0);
  // Off by default: the histogram records, the raw series stays empty.
  EXPECT_GT(clients.response_times().count(), 0);
  EXPECT_TRUE(clients.response_series().empty());
}

TEST(CohortClients, SteadyStateAllocatesNothing) {
  // A drop-heavy cohort population at steady state: think tick, batched
  // sends, RTO ledger churn and group timers must all run out of recycled
  // storage. The wheel-bucket grids below mirror SteadyStateAllocation's
  // warming: without them a re-dropped retry occasionally arms a new RTO
  // group timer into a wheel bucket at an occupancy that beats the bucket's
  // historic maximum — one amortised capacity-growth allocation, which is
  // exactly what the armed counter would flag.
  Fixture f({{"front", 12, 2}, {"back", 8, 1}});
  ClientConfig config = cohort_config(800);
  config.stats_warmup = sec(std::int64_t{590});
  ClosedLoopClients clients(f.sim, f.router,
                            uniform_profile({200.0, 2000.0}, sec(std::int64_t{2})), config,
                            Rng(5));
  clients.start();
  for (SimTime d = msec(140); d < sec(std::int64_t{4}); d += msec(1)) {
    for (int k = 0; k < 2; ++k) f.sim.schedule_in(d, [] {});  // level-0 buckets
  }
  for (SimTime d = sec(std::int64_t{4}); d < sec(std::int64_t{268}); d += msec(33)) {
    for (int k = 0; k < 8; ++k) f.sim.schedule_in(d, [] {});  // level-1 buckets
  }

  // Warm past a full level-1 wheel rotation (268 s) so the RTO group timers
  // (1 s .. 64 s backoffs) have cycled through every bucket index they can
  // reach with the grid-warmed capacities in place.
  f.sim.run_until(sec(std::int64_t{600}));
  const std::int64_t warm_completed = clients.completed();
  ASSERT_GT(warm_completed, 10000) << "warm-up must reach steady state";
  ASSERT_GT(clients.dropped_attempts(), 0) << "config must exercise the RTO ledger";

  std::int64_t allocations = 0;
  {
    tests::ScopedAllocationCounter counter;
    f.sim.run_for(sec(std::int64_t{30}));
    allocations = counter.count();
  }
  EXPECT_GT(clients.completed(), warm_completed + 1000);
  EXPECT_EQ(allocations, 0)
      << "cohort steady state must not touch the heap";
}

}  // namespace
}  // namespace memca::workload
