// Satellite coverage for the drop -> retransmit path: the drop callback
// fires exactly once per rejected attempt, the next attempt carries an
// incremented attempt number, and the RTO doubles per retry from the 1 s
// RFC 6298 floor. Verified against both the public counters and the
// recorded span-event stream.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "queueing/ntier.h"
#include "trace/recorder.h"
#include "workload/clients.h"

// Recording compiles out to nothing under MEMCA_TRACE=OFF; these tests
// only apply when it is compiled in.
#ifdef MEMCA_TRACE_DISABLED
#define MEMCA_SKIP_IF_TRACE_DISABLED() \
  GTEST_SKIP() << "tracing compiled out (MEMCA_TRACE=OFF)"
#else
#define MEMCA_SKIP_IF_TRACE_DISABLED()
#endif

namespace memca::workload {
namespace {

struct Overloaded {
  Simulator sim;
  queueing::NTierSystem system;
  RequestRouter router;
  trace::TraceRecorder recorder;

  // One tier, one thread, one worker, ~3 s services vs. 10 ms think: every
  // user beyond the one in service is rejected at submit.
  Overloaded() : system(sim, {{"only", 1, 1}}), router(system) {
    system.set_trace(&recorder);
  }
};

TEST(Retransmission, DropCallbackFiresOncePerRejectedAttempt) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  Overloaded f;
  ClientConfig config;
  config.num_users = 4;
  ClosedLoopClients clients(f.sim, f.router, uniform_profile({3e6}, msec(10)), config,
                            Rng(7));
  clients.set_trace(&f.recorder);
  clients.start();
  f.sim.run_until(sec(std::int64_t{30}));

  ASSERT_GT(f.system.dropped(), 0);
  // The client observed every rejection exactly once.
  EXPECT_EQ(clients.dropped_attempts(), f.system.dropped());

  std::int64_t drop_events = 0, retransmit_events = 0, abandon_events = 0;
  f.recorder.for_each([&](const trace::TraceEvent& ev) {
    if (ev.kind == trace::EventKind::kDrop) ++drop_events;
    if (ev.kind == trace::EventKind::kRetransmit) ++retransmit_events;
    if (ev.kind == trace::EventKind::kAbandon) ++abandon_events;
  });
  EXPECT_EQ(drop_events, f.system.dropped());
  // Every rejection either scheduled a retransmission or gave up.
  EXPECT_EQ(retransmit_events + abandon_events, drop_events);
  EXPECT_EQ(abandon_events, clients.failed());
}

TEST(Retransmission, RtoDoublesAndNextAttemptIncrements) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  Overloaded f;
  ClientConfig config;
  config.num_users = 4;
  ClosedLoopClients clients(f.sim, f.router, uniform_profile({3e6}, msec(10)), config,
                            Rng(11));
  clients.set_trace(&f.recorder);
  clients.start();
  f.sim.run_until(sec(std::int64_t{60}));

  // Pair each retransmission with the attempt it schedules. There is no
  // dedicated client-send event; an attempt's send instant is implicit in
  // the stream — a front-door rejection leaves a kDrop at the submit time,
  // an admitted attempt leaves a kTierSpan whose enter time (aux) is the
  // submit time.
  std::map<std::int32_t, std::vector<std::pair<SimTime, int>>> sends;
  std::vector<trace::TraceEvent> retransmits;
  f.recorder.for_each([&](const trace::TraceEvent& ev) {
    if (ev.kind == trace::EventKind::kDrop) {
      sends[ev.user].push_back({ev.time, ev.attempt});
    } else if (ev.kind == trace::EventKind::kTierSpan && ev.tier == 0) {
      sends[ev.user].push_back({ev.aux, ev.attempt});
    } else if (ev.kind == trace::EventKind::kRetransmit) {
      retransmits.push_back(ev);
    }
  });
  ASSERT_FALSE(retransmits.empty());
  bool saw_backoff = false;
  for (const trace::TraceEvent& rt : retransmits) {
    // RFC 6298: RTO = min_rto * 2^attempt for the attempt that was dropped.
    EXPECT_EQ(rt.aux, config.min_rto * (SimTime{1} << rt.attempt));
    if (rt.attempt > 0) saw_backoff = true;
    // Retransmissions scheduled past the simulated horizon never fire.
    if (rt.time + rt.aux > sec(std::int64_t{60})) continue;
    // The next transmission of this user happens exactly one RTO later and
    // carries attempt + 1.
    const auto& user_sends = sends[rt.user];
    bool paired = false;
    for (const auto& [send_time, attempt] : user_sends) {
      if (send_time == rt.time + rt.aux && attempt == rt.attempt + 1) {
        paired = true;
        break;
      }
    }
    EXPECT_TRUE(paired) << "no follow-up attempt for user " << rt.user << " at t="
                        << rt.time + rt.aux;
  }
  // The overload is persistent enough that at least one request needed a
  // second retransmission (attempt >= 1 -> doubled RTO actually observed).
  EXPECT_TRUE(saw_backoff);
}

TEST(Retransmission, TracedRunMatchesUntracedCounters) {
  // The recorder must be an observer only: identical seeds with and without
  // tracing produce identical client-visible outcomes.
  auto run = [](bool traced) {
    Overloaded f;
    if (!traced) f.system.set_trace(nullptr);
    ClientConfig config;
    config.num_users = 4;
    ClosedLoopClients clients(f.sim, f.router, uniform_profile({3e6}, msec(10)), config,
                              Rng(13));
    if (traced) clients.set_trace(&f.recorder);
    clients.start();
    f.sim.run_until(sec(std::int64_t{30}));
    return std::tuple{clients.completed(), clients.dropped_attempts(), clients.failed(),
                      f.system.submitted()};
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace memca::workload
