// Cohort-vs-exact equivalence on the calibrated Fig. 2 scenario. The two
// client models share everything downstream (tiers, coupling, attack
// schedule) but draw arrivals differently — per-user exponential timers vs
// per-cohort binomial counts — so their event streams differ and only the
// *statistics* can be compared. These tests pin the aggregate observables
// the paper's figures are built from (tail quantiles, completion/drop/
// retransmission totals) to agree within tight tolerances, at the paper's
// 3.5k population and at a 10x-scaled one, and pin the cohort world's
// snapshot/rollback to the same byte-exact replay contract the exact world
// obeys.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/memca.h"
#include "support/counting_alloc.h"
#include "testbed/rubbos_testbed.h"

namespace memca::testbed {
namespace {

struct RunStats {
  std::int64_t completed = 0, dropped = 0, retransmitted = 0, failed = 0;
  SimTime p50 = 0, p99 = 0, p999 = 0;
  double throughput = 0.0;
};

core::MemcaConfig fig2_attack() {
  core::MemcaConfig config;
  config.enable_controller = false;
  config.params.burst_length = msec(500);
  config.params.burst_interval = sec(std::int64_t{2});
  config.params.type = cloud::MemoryAttackType::kMemoryLock;
  return config;
}

/// Runs the Fig. 2 scenario (fixed L=500ms / I=2s memory-lock bursts, no
/// controller) under the given client model and population scale. Tier
/// limits scale with the population so Condition 1 holds at every scale.
RunStats run_fig2(workload::ClientMode mode, int scale, SimTime duration) {
  TestbedConfig config;
  config.client_mode = mode;
  config.num_users *= scale;
  config.apache.threads *= scale;
  config.apache.workers *= scale;
  config.tomcat.threads *= scale;
  config.tomcat.workers *= scale;
  config.mysql.threads *= scale;
  config.mysql.workers *= scale;
  config.target_bandwidth_demand_gbps *= scale;
  RubbosTestbed bed(config);
  bed.start();
  auto attack = bed.make_attack(fig2_attack());
  attack->start();
  bed.sim().run_for(duration);

  RunStats stats;
  const workload::ClosedLoopClients& clients = bed.clients();
  stats.completed = clients.completed();
  stats.dropped = clients.dropped_attempts();
  stats.retransmitted = clients.retransmitted_completions();
  stats.failed = clients.failed();
  stats.p50 = clients.response_times().quantile(0.50);
  stats.p99 = clients.response_times().quantile(0.99);
  stats.p999 = clients.response_times().quantile(0.999);
  stats.throughput = clients.throughput();
  return stats;
}

void expect_close(double cohort, double exact, double rel, double abs_floor,
                  const char* what) {
  const double tolerance = std::max(std::abs(exact) * rel, abs_floor);
  EXPECT_NEAR(cohort, exact, tolerance)
      << what << ": cohort=" << cohort << " exact=" << exact;
}

TEST(CohortEquivalence, CalibratedFig2AtPaperScale) {
  const SimTime duration = 3 * kMinute;
  const RunStats exact = run_fig2(workload::ClientMode::kExact, 1, duration);
  const RunStats cohort = run_fig2(workload::ClientMode::kCohort, 1, duration);

  // Sanity: the attack must actually bite in both worlds, or the quantile
  // comparison below is vacuous.
  ASSERT_GT(exact.dropped, 100);
  ASSERT_GT(cohort.dropped, 100);
  ASSERT_GE(exact.p999, sec(std::int64_t{1}));
  ASSERT_GE(cohort.p999, sec(std::int64_t{1}));

  // Volume: the cohort tick quantization shifts effective think time by
  // ~tick/2 (0.4% of 7 s), well inside the 3% band.
  expect_close(static_cast<double>(cohort.completed),
               static_cast<double>(exact.completed), 0.03, 0.0, "completed");
  expect_close(cohort.throughput, exact.throughput, 0.03, 0.0, "throughput");

  // Damage totals: burst-by-burst drop counts are noisy (each burst drops
  // what happens to arrive inside 500 ms), so compare run totals at 15%.
  expect_close(static_cast<double>(cohort.dropped),
               static_cast<double>(exact.dropped), 0.15, 50.0, "dropped");
  expect_close(static_cast<double>(cohort.retransmitted),
               static_cast<double>(exact.retransmitted), 0.15, 50.0,
               "retransmitted");
  expect_close(static_cast<double>(cohort.failed),
               static_cast<double>(exact.failed), 0.25, 20.0, "failed");

  // Tail shape: p50 is sub-attack baseline latency; p99/p99.9 sit on the
  // RTO-quantized VLRT plateau — the figure the paper is about.
  expect_close(static_cast<double>(cohort.p50), static_cast<double>(exact.p50),
               0.15, static_cast<double>(msec(5)), "p50");
  expect_close(static_cast<double>(cohort.p99), static_cast<double>(exact.p99),
               0.15, static_cast<double>(msec(100)), "p99");
  expect_close(static_cast<double>(cohort.p999),
               static_cast<double>(exact.p999), 0.15,
               static_cast<double>(msec(250)), "p99.9");
}

TEST(CohortEquivalence, ScaledTenfoldPopulation) {
  // 35k users, tiers scaled 10x: a shorter window keeps the exact run (the
  // expensive half of this comparison) affordable in CI.
  const SimTime duration = sec(std::int64_t{60});
  const RunStats exact = run_fig2(workload::ClientMode::kExact, 10, duration);
  const RunStats cohort = run_fig2(workload::ClientMode::kCohort, 10, duration);

  ASSERT_GT(exact.dropped, 100);
  ASSERT_GT(cohort.dropped, 100);

  expect_close(static_cast<double>(cohort.completed),
               static_cast<double>(exact.completed), 0.03, 0.0, "completed");
  expect_close(static_cast<double>(cohort.dropped),
               static_cast<double>(exact.dropped), 0.20, 200.0, "dropped");
  expect_close(static_cast<double>(cohort.p50), static_cast<double>(exact.p50),
               0.15, static_cast<double>(msec(5)), "p50");
  expect_close(static_cast<double>(cohort.p99), static_cast<double>(exact.p99),
               0.20, static_cast<double>(msec(250)), "p99");
}

// -- cohort world checkpointing ---------------------------------------------

struct Fingerprint {
  SimTime now = 0;
  std::uint64_t events = 0;
  std::int64_t completed = 0, dropped = 0, retransmitted = 0, failed = 0;
  std::int64_t idle = 0, live_slots = 0, rto_backlog = 0;
  SimTime p50 = 0, p99 = 0;

  bool operator==(const Fingerprint& o) const {
    return now == o.now && events == o.events && completed == o.completed &&
           dropped == o.dropped && retransmitted == o.retransmitted &&
           failed == o.failed && idle == o.idle && live_slots == o.live_slots &&
           rto_backlog == o.rto_backlog && p50 == o.p50 && p99 == o.p99;
  }
};

Fingerprint run_segment(RubbosTestbed& bed, SimTime span) {
  bed.sim().run_for(span);
  const workload::ClosedLoopClients& clients = bed.clients();
  Fingerprint f;
  f.now = bed.sim().now();
  f.events = bed.sim().events_executed();
  f.completed = clients.completed();
  f.dropped = clients.dropped_attempts();
  f.retransmitted = clients.retransmitted_completions();
  f.failed = clients.failed();
  f.idle = clients.idle_users();
  f.live_slots = clients.user_slots().live();
  f.rto_backlog = clients.rto_backlog();
  f.p50 = clients.response_times().quantile(0.50);
  f.p99 = clients.response_times().quantile(0.99);
  return f;
}

TEST(CohortSnapshot, MidBurstRollbackReplaysByteForByte) {
  // Snapshot a cohort world mid-burst with RTO groups parked in the wheel:
  // the tick handle, idle-count lanes, slot allocator, ledger chains and
  // the batch-tagged send events must all round-trip so the replayed
  // segment is indistinguishable from the first pass.
  TestbedConfig config;
  config.client_mode = workload::ClientMode::kCohort;
  config.seed = 7;
  RubbosTestbed bed(config);
  bed.start();

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  for (int k = 0; k < 12; ++k) {
    const SimTime on = msec(500) + k * sec(std::int64_t{1});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.95); });
    bed.sim().schedule_at(on + msec(300), [&host, vm] { host.clear_memory_activity(vm); });
  }

  bed.sim().run_until(msec(4650));
  ASSERT_GT(bed.clients().dropped_attempts(), 0)
      << "drops must be pending as RTO groups when the snapshot is taken";
  bed.snapshot();

  const Fingerprint first = run_segment(bed, sec(std::int64_t{4}));
  EXPECT_GT(first.retransmitted, 0)
      << "segment must fire RTO groups parked before the snapshot";
  for (int replay = 1; replay <= 2; ++replay) {
    bed.rollback();
    const Fingerprint again = run_segment(bed, sec(std::int64_t{4}));
    EXPECT_TRUE(first == again) << "replay " << replay;
  }
}

TEST(CohortSnapshot, RollbackAllocatesNothing) {
  TestbedConfig config;
  config.client_mode = workload::ClientMode::kCohort;
  config.seed = 11;
  RubbosTestbed bed(config);
  bed.start();

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  for (int k = 0; k < 8; ++k) {
    const SimTime on = msec(500) + k * sec(std::int64_t{1});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.9); });
    bed.sim().schedule_at(on + msec(300), [&host, vm] { host.clear_memory_activity(vm); });
  }
  bed.sim().run_until(msec(3650));
  bed.snapshot();

  for (int round = 0; round < 2; ++round) {
    // Diverge so every cohort lane (idle counts, slots, ledger, tick) has
    // moved before the rewind.
    bed.sim().run_for(sec(std::int64_t{2}));
    tests::ScopedAllocationCounter counter;
    bed.rollback();
    EXPECT_EQ(counter.count(), 0) << "round " << round;
  }
}

}  // namespace
}  // namespace memca::testbed
