#include "workload/openloop.h"

#include <gtest/gtest.h>

#include "queueing/ntier.h"
#include "queueing/tandem.h"

namespace memca::workload {
namespace {

TEST(OpenLoopSource, GeneratesAtConfiguredRate) {
  Simulator sim;
  queueing::NTierSystem system(sim, {{"front", 1000, 8}, {"back", 500, 4}});
  RequestRouter router(system);
  OpenLoopConfig config;
  config.rate_per_sec = 200.0;
  OpenLoopSource source(sim, router, uniform_profile({50.0, 100.0}), config, Rng(1));
  source.start();
  sim.run_until(sec(std::int64_t{50}));
  EXPECT_NEAR(static_cast<double>(source.generated()) / 50.0, 200.0, 10.0);
  EXPECT_GT(source.completed(), 0);
}

TEST(OpenLoopSource, StopHaltsArrivals) {
  Simulator sim;
  queueing::NTierSystem system(sim, {{"front", 1000, 8}, {"back", 500, 4}});
  RequestRouter router(system);
  OpenLoopConfig config;
  config.rate_per_sec = 1000.0;
  OpenLoopSource source(sim, router, uniform_profile({50.0, 100.0}), config, Rng(2));
  source.start();
  sim.run_until(sec(std::int64_t{1}));
  source.stop();
  const auto generated = source.generated();
  sim.run_until(sec(std::int64_t{2}));
  EXPECT_EQ(source.generated(), generated);
}

TEST(OpenLoopSource, WorksAgainstTandemSystem) {
  Simulator sim;
  queueing::TandemQueueSystem system(
      sim, {{"s1", 4, queueing::StationConfig::kUnbounded},
            {"s2", 2, queueing::StationConfig::kUnbounded}});
  RequestRouter router(system);
  OpenLoopConfig config;
  config.rate_per_sec = 500.0;
  OpenLoopSource source(sim, router, uniform_profile({100.0, 500.0}), config, Rng(3));
  source.start();
  sim.run_until(sec(std::int64_t{10}));
  EXPECT_GT(source.completed(), 4000);
  EXPECT_EQ(source.failed(), 0);
}

TEST(OpenLoopSource, RetransmitsOnDrop) {
  Simulator sim;
  // Tiny system that drops frequently under a hot open-loop stream.
  queueing::NTierSystem system(sim, {{"front", 2, 1}, {"back", 1, 1}});
  RequestRouter router(system);
  OpenLoopConfig config;
  config.rate_per_sec = 100.0;
  config.retransmit = true;
  OpenLoopSource source(sim, router, uniform_profile({100.0, 20000.0}), config, Rng(4));
  source.start();
  sim.run_until(sec(std::int64_t{30}));
  EXPECT_GT(source.dropped_attempts(), 0);
  // Some retransmitted requests completed with >= 1 s latency.
  EXPECT_GE(source.response_times().max(), sec(std::int64_t{1}));
}

TEST(OpenLoopSource, NoRetransmitCountsFailures) {
  Simulator sim;
  queueing::NTierSystem system(sim, {{"front", 2, 1}, {"back", 1, 1}});
  RequestRouter router(system);
  OpenLoopConfig config;
  config.rate_per_sec = 100.0;
  config.retransmit = false;
  OpenLoopSource source(sim, router, uniform_profile({100.0, 20000.0}), config, Rng(5));
  source.start();
  sim.run_until(sec(std::int64_t{30}));
  EXPECT_GT(source.failed(), 0);
  EXPECT_EQ(source.failed(), source.dropped_attempts());
}

TEST(OpenLoopSource, WarmupFiltersStats) {
  Simulator sim;
  queueing::NTierSystem system(sim, {{"front", 100, 4}, {"back", 50, 2}});
  RequestRouter router(system);
  OpenLoopConfig config;
  config.rate_per_sec = 100.0;
  config.stats_warmup = sec(std::int64_t{5});
  OpenLoopSource source(sim, router, uniform_profile({50.0, 100.0}), config, Rng(6));
  source.start();
  sim.run_until(sec(std::int64_t{4}));
  EXPECT_EQ(source.response_times().count(), 0);
  sim.run_until(sec(std::int64_t{10}));
  EXPECT_GT(source.response_times().count(), 0);
}

}  // namespace
}  // namespace memca::workload
