#include "metrics/exporters.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "metrics/names.h"
#include "metrics/registry.h"
#include "metrics/run_report.h"

namespace memca::metrics {
namespace {

Registry& fill(Registry& registry) {
  registry.counter("memca_hits_total", {{"tier", "mysql"}}).inc(7);
  registry.counter("memca_hits_total", {{"tier", "tomcat"}}).inc(3);
  registry.gauge("memca_depth").set(1.5);
  HistogramHandle hist = registry.histogram("memca_latency_us");
  hist.record(msec(10));
  hist.record(msec(30));
  registry.scrape(msec(50));
  registry.scrape(msec(100));
  return registry;
}

TEST(Exporters, PrometheusTextFormat) {
  Registry registry;
  std::ostringstream out;
  write_prometheus(out, fill(registry));
  const std::string text = out.str();

  // One # TYPE line per family, even with two labeled instruments.
  EXPECT_EQ(text.find("# TYPE memca_hits_total counter"),
            text.rfind("# TYPE memca_hits_total counter"));
  EXPECT_NE(text.find("memca_hits_total{tier=\"mysql\"} 7"), std::string::npos);
  EXPECT_NE(text.find("memca_hits_total{tier=\"tomcat\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE memca_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("memca_depth 1.5"), std::string::npos);
  // Histograms expose as summaries with quantile labels plus _sum/_count.
  EXPECT_NE(text.find("# TYPE memca_latency_us summary"), std::string::npos);
  EXPECT_NE(text.find("memca_latency_us{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(text.find("memca_latency_us_count 2"), std::string::npos);
}

TEST(Exporters, JsonlOneLinePerInstrumentWithSamples) {
  Registry registry;
  std::ostringstream out;
  write_jsonl(out, fill(registry));
  const std::string text = out.str();

  // 4 instruments -> 4 lines.
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(text.find("{\"name\":\"memca_hits_total\",\"labels\":{\"tier\":\"mysql\"},"
                      "\"kind\":\"counter\",\"value\":7"),
            std::string::npos);
  // Scraped series ride along as [t_us, v] pairs.
  EXPECT_NE(text.find("\"samples\":[[50000,7],[100000,7]]"), std::string::npos);
  // Histogram stats, no samples array.
  EXPECT_NE(text.find("\"kind\":\"histogram\",\"count\":2"), std::string::npos);
}

TEST(RunReportTest, BuildsFromCanonicalNames) {
  Registry registry;
  registry.counter(names::kRequestsTotal, {{"event", "submitted"}}).inc(100);
  registry.counter(names::kRequestsTotal, {{"event", "completed"}}).inc(90);
  registry.counter(names::kRequestsTotal, {{"event", "dropped"}}).inc(10);
  registry.counter(names::kRequestsTotal, {{"event", "retransmitted"}}).inc(8);
  registry.counter(names::kRequestsTotal, {{"event", "failed"}}).inc(2);
  HistogramHandle rt = registry.histogram(names::kClientResponseTimeUs);
  for (int i = 1; i <= 100; ++i) rt.record(msec(i));

  registry.counter(names::kTierRequestsTotal, {{"tier", "mysql"}, {"event", "offered"}})
      .inc(50);
  registry.counter(names::kTierRequestsTotal, {{"tier", "mysql"}, {"event", "rejected"}})
      .inc(5);
  Gauge util = registry.gauge(names::kTierUtilization, {{"tier", "mysql"}});
  Gauge queue = registry.gauge(names::kTierQueueLength, {{"tier", "mysql"}});
  Gauge cap = registry.gauge(names::kCapacityMultiplier);
  // 4 s of 50 ms scrapes: saturated in [1 s, 1.5 s), idle elsewhere; one
  // capacity dip over the same window.
  for (SimTime t = msec(50); t <= sec(std::int64_t{4}); t += msec(50)) {
    const bool burst = t > sec(std::int64_t{1}) && t <= msec(1500);
    util.set(burst ? 1.0 : 0.1);
    queue.set(burst ? 30.0 : 2.0);
    cap.set(burst ? 0.2 : 1.0);
    registry.scrape(t);
  }

  registry.counter(names::kEngineEventsTotal).set_to(1234);
  registry.counter(names::kEnginePoolSlots).set_to(64);
  registry.counter(names::kEnginePendingHighWater).set_to(48);
  registry.counter(names::kSimTimeUs).set_to(sec(std::int64_t{4}));
  registry.counter(names::kAttackBurstsTotal).set_to(1);
  registry.counter(names::kAttackOnTimeUs).set_to(msec(500));
  registry.counter(names::kLogMessagesTotal, {{"level", "warn"}}).set_to(3);
  registry.counter(names::kLogMessagesTotal, {{"level", "error"}}).set_to(1);

  RunReportOptions options;
  options.scenario = "unit";
  options.wall_seconds = 2.0;
  options.scrape_resolution = msec(50);
  const RunReport report = build_run_report(registry, options);

  EXPECT_EQ(report.scenario, "unit");
  EXPECT_DOUBLE_EQ(report.sim_seconds, 4.0);
  EXPECT_EQ(report.events_executed, 1234);
  EXPECT_DOUBLE_EQ(report.events_per_wall_sec, 617.0);
  EXPECT_DOUBLE_EQ(report.sim_speedup, 2.0);
  EXPECT_EQ(report.pool_slots, 64);
  EXPECT_EQ(report.pending_high_water, 48);
  EXPECT_EQ(report.submitted, 100);
  EXPECT_EQ(report.dropped, 10);
  EXPECT_EQ(report.retransmitted, 8);
  EXPECT_EQ(report.failed, 2);
  EXPECT_EQ(report.latency_count, 100);
  EXPECT_EQ(report.latency_p50, registry.find_histogram(names::kClientResponseTimeUs)
                                     ->quantile(0.5));
  EXPECT_EQ(report.bursts, 1);
  EXPECT_DOUBLE_EQ(report.duty_cycle, 0.125);
  EXPECT_EQ(report.capacity_dips, 1);
  EXPECT_DOUBLE_EQ(report.min_capacity_multiplier, 0.2);
  EXPECT_EQ(report.log_warnings, 3);
  EXPECT_EQ(report.log_errors, 1);

  ASSERT_EQ(report.tiers.size(), 1u);
  const TierReport& mysql = report.tiers[0];
  EXPECT_EQ(mysql.name, "mysql");
  EXPECT_EQ(mysql.offered, 50);
  EXPECT_EQ(mysql.rejected, 5);
  EXPECT_DOUBLE_EQ(mysql.util_max_native, 1.0);
  // The saturated 500 ms dilutes to 0.55 in its 1 s bucket — visible at
  // native resolution, below any threshold at 1 s.
  EXPECT_LT(mysql.util_max_1s, 0.85);
  EXPECT_EQ(mysql.util_1s_windows_above, 0);
  EXPECT_EQ(mysql.util_1s_max_consecutive_above, 0);
  EXPECT_DOUBLE_EQ(mysql.queue_max, 30.0);
}

TEST(RunReportTest, WritersEmitParsableOutput) {
  Registry registry;
  registry.counter(names::kRequestsTotal, {{"event", "submitted"}}).inc(42);
  registry.counter(names::kSimTimeUs).set_to(sec(std::int64_t{1}));
  RunReportOptions options;
  options.scenario = "writer \"quoted\"";
  const RunReport report = build_run_report(registry, options);

  std::ostringstream json;
  write_json(json, report);
  EXPECT_NE(json.str().find("\"scenario\": \"writer \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.str().find("\"submitted\": 42"), std::string::npos);

  std::ostringstream md;
  write_markdown(md, report);
  EXPECT_NE(md.str().find("# Run report"), std::string::npos);
  EXPECT_NE(md.str().find("42 submitted"), std::string::npos);
}

TEST(RunReportTest, EmptyRegistryYieldsZeroedReport) {
  Registry registry;
  const RunReport report = build_run_report(registry, {});
  EXPECT_EQ(report.submitted, 0);
  EXPECT_EQ(report.tiers.size(), 0u);
  EXPECT_DOUBLE_EQ(report.duty_cycle, 0.0);
  std::ostringstream json;
  write_json(json, report);  // must not crash
  EXPECT_FALSE(json.str().empty());
}

}  // namespace
}  // namespace memca::metrics
