#include "metrics/registry.h"

#include <gtest/gtest.h>

#include <sstream>

namespace memca::metrics {
namespace {

TEST(Registry, DetachedHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  HistogramHandle hist;
  counter.inc();
  counter.set_to(5);
  gauge.set(1.0);
  hist.record(msec(1));
  EXPECT_FALSE(counter.attached());
  EXPECT_FALSE(gauge.attached());
  EXPECT_FALSE(hist.attached());
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(Registry, CounterIncrementsThroughHandle) {
  Registry registry;
  Counter counter = registry.counter("requests");
  EXPECT_TRUE(counter.attached());
  counter.inc();
  counter.inc(4);
  EXPECT_EQ(counter.value(), 5);
  EXPECT_EQ(registry.counter_value("requests"), 5);
  counter.set_to(11);
  EXPECT_EQ(registry.counter_value("requests"), 11);
}

TEST(Registry, HandlesToSameInstrumentAlias) {
  Registry registry;
  Counter a = registry.counter("hits", {{"tier", "mysql"}});
  Counter b = registry.counter("hits", {{"tier", "mysql"}});
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, LabelsAreCanonicalizedBySortOrder) {
  Registry registry;
  Counter a = registry.counter("hits", {{"b", "2"}, {"a", "1"}});
  Counter b = registry.counter("hits", {{"a", "1"}, {"b", "2"}});
  a.inc();
  EXPECT_EQ(b.value(), 1);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, DifferentLabelsAreDifferentInstruments) {
  Registry registry;
  Counter a = registry.counter("hits", {{"tier", "mysql"}});
  Counter b = registry.counter("hits", {{"tier", "tomcat"}});
  a.inc(3);
  EXPECT_EQ(b.value(), 0);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.family("hits").size(), 2u);
}

TEST(Registry, FamilyPreservesRegistrationOrderAndLabels) {
  Registry registry;
  registry.counter("hits", {{"tier", "apache"}});
  registry.counter("other");
  registry.counter("hits", {{"tier", "mysql"}});
  const auto family = registry.family("hits");
  ASSERT_EQ(family.size(), 2u);
  EXPECT_EQ(registry.label_value(family[0], "tier"), "apache");
  EXPECT_EQ(registry.label_value(family[1], "tier"), "mysql");
  EXPECT_EQ(registry.label_value(family[0], "absent"), "");
}

TEST(Registry, GaugeAndHistogram) {
  Registry registry;
  Gauge gauge = registry.gauge("depth");
  gauge.set(2.5);
  EXPECT_EQ(registry.gauge_value("depth"), 2.5);

  HistogramHandle hist = registry.histogram("latency");
  hist.record(msec(10));
  hist.record(msec(20));
  const LatencyHistogram* stored = registry.find_histogram("latency");
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->count(), 2);
}

TEST(Registry, ScrapeAppendsSeriesForEveryValueInstrument) {
  Registry registry;
  Counter counter = registry.counter("c");
  Gauge gauge = registry.gauge("g");
  int calls = 0;
  registry.probe("p", {}, [&calls] { return static_cast<double>(++calls); });
  registry.histogram("h").record(msec(1));

  counter.inc(7);
  gauge.set(0.5);
  registry.scrape(msec(50));
  counter.inc(1);
  registry.scrape(msec(100));

  EXPECT_EQ(registry.scrapes(), 2);
  const TimeSeries* c = registry.series("c");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->size(), 2u);
  EXPECT_EQ(c->samples()[0].value, 7.0);
  EXPECT_EQ(c->samples()[1].value, 8.0);
  EXPECT_EQ(c->samples()[1].time, msec(100));
  EXPECT_EQ(registry.series("g")->samples()[0].value, 0.5);
  // The probe was evaluated once per scrape.
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(registry.series("p")->samples()[1].value, 2.0);
  // Histograms carry no series.
  EXPECT_TRUE(registry.series("h")->empty());
}

TEST(Registry, FindMissingReturnsDefaults) {
  Registry registry;
  EXPECT_EQ(registry.find("absent"), Registry::npos);
  EXPECT_EQ(registry.counter_value("absent"), 0);
  EXPECT_EQ(registry.gauge_value("absent"), 0.0);
  EXPECT_EQ(registry.series("absent"), nullptr);
  EXPECT_EQ(registry.find_histogram("absent"), nullptr);
}

TEST(Registry, MergeSumsCountersGaugesHistogramsAndSeries) {
  Registry a;
  Registry b;
  a.counter("c").inc(3);
  b.counter("c").inc(4);
  a.gauge("g").set(1.0);
  b.gauge("g").set(2.0);
  a.histogram("h").record(msec(10));
  b.histogram("h").record(msec(30));
  a.scrape(msec(50));
  b.scrape(msec(50));

  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 7);
  EXPECT_EQ(a.gauge_value("g"), 3.0);
  EXPECT_EQ(a.find_histogram("h")->count(), 2);
  ASSERT_EQ(a.series("c")->size(), 1u);
  EXPECT_EQ(a.series("c")->samples()[0].value, 7.0);
}

TEST(Registry, MergeIntoEmptyAdoptsOtherOrder) {
  Registry cell;
  cell.counter("first").inc(1);
  cell.counter("second").inc(2);
  Registry merged;
  merged.merge(cell);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.name(0), "first");
  EXPECT_EQ(merged.name(1), "second");
  EXPECT_EQ(merged.counter_value("second"), 2);
}

TEST(Registry, MergeOrderInvariantForSummedValues) {
  // a+b and b+a must agree value-for-value when both cells registered the
  // same instruments (the sweep case).
  auto build = [](std::int64_t n, double g) {
    auto registry = std::make_unique<Registry>();
    registry->counter("c").inc(n);
    registry->gauge("g").set(g);
    registry->scrape(msec(50));
    return registry;
  };
  auto serialize = [](const Registry& r) {
    std::ostringstream out;
    r.serialize(out);
    return out.str();
  };
  Registry ab;
  ab.merge(*build(1, 0.25));
  ab.merge(*build(2, 0.5));
  Registry ba;
  ba.merge(*build(2, 0.5));
  ba.merge(*build(1, 0.25));
  // Not bit-identical in general (double addition is not commutative-exact),
  // but for these values it is, and the structural bytes always match.
  EXPECT_EQ(serialize(ab), serialize(ba));
}

TEST(Registry, SerializeIsDeterministic) {
  auto build = [] {
    auto registry = std::make_unique<Registry>();
    registry->counter("c", {{"tier", "mysql"}}).inc(5);
    registry->gauge("g").set(0.75);
    registry->histogram("h").record(msec(20));
    registry->scrape(msec(50));
    registry->scrape(msec(100));
    return registry;
  };
  std::ostringstream first;
  std::ostringstream second;
  build()->serialize(first);
  build()->serialize(second);
  EXPECT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
}

TEST(Registry, SerializeDistinguishesDifferentValues) {
  Registry a;
  a.counter("c").inc(1);
  Registry b;
  b.counter("c").inc(2);
  std::ostringstream sa;
  std::ostringstream sb;
  a.serialize(sa);
  b.serialize(sb);
  EXPECT_NE(sa.str(), sb.str());
}

}  // namespace
}  // namespace memca::metrics
