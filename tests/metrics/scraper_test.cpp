#include "metrics/scraper.h"

#include <gtest/gtest.h>

#include "metrics/registry.h"
#include "sim/simulator.h"

namespace memca::metrics {
namespace {

TEST(Scraper, ScrapesAtConfiguredResolution) {
  Simulator sim;
  Registry registry;
  Counter counter = registry.counter("c");
  Scraper scraper(sim, registry, {msec(50)});

  counter.inc();
  scraper.start();
  EXPECT_TRUE(scraper.running());
  sim.run_until(sec(std::int64_t{1}));

  // First scrape lands one period after start: 50, 100, ..., 1000 ms.
  EXPECT_EQ(registry.scrapes(), 20);
  const TimeSeries* series = registry.series("c");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 20u);
  EXPECT_EQ(series->samples().front().time, msec(50));
  EXPECT_EQ(series->samples().back().time, sec(std::int64_t{1}));
  EXPECT_EQ(series->samples().back().value, 1.0);
}

TEST(Scraper, StopHaltsScraping) {
  Simulator sim;
  Registry registry;
  registry.counter("c");
  Scraper scraper(sim, registry, {msec(50)});
  scraper.start();
  sim.run_until(msec(200));
  scraper.stop();
  EXPECT_FALSE(scraper.running());
  sim.run_until(sec(std::int64_t{1}));
  EXPECT_EQ(registry.scrapes(), 4);
}

TEST(Scraper, ProbeValuesLandInSeries) {
  Simulator sim;
  Registry registry;
  registry.probe("clock_s", {},
                 [&sim] { return to_seconds(sim.now()); });
  Scraper scraper(sim, registry, {msec(100)});
  scraper.start();
  sim.run_until(msec(300));
  const TimeSeries* series = registry.series("clock_s");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 3u);
  EXPECT_DOUBLE_EQ(series->samples()[1].value, 0.2);
}

}  // namespace
}  // namespace memca::metrics
