#include "oltp/lock_table.h"

#include <gtest/gtest.h>

#include <vector>

namespace memca::oltp {
namespace {

using Acquire = LockTable::Acquire;
using Mode = LockTable::Mode;

LockTable make_table(std::uint32_t records = 4, std::uint32_t txns = 16) {
  LockTable table(records);
  table.ensure_txns(txns);
  return table;
}

TEST(LockTable, SharedLocksCoexist) {
  LockTable table = make_table();
  EXPECT_EQ(table.try_acquire(0, 0, /*exclusive=*/false, /*wait=*/true), Acquire::kGranted);
  EXPECT_EQ(table.try_acquire(1, 0, false, true), Acquire::kGranted);
  EXPECT_EQ(table.try_acquire(2, 0, false, true), Acquire::kGranted);
  EXPECT_EQ(table.mode(0), Mode::kShared);
  EXPECT_EQ(table.holders(0), 3u);
  EXPECT_EQ(table.waiters(), 0);
}

TEST(LockTable, ExclusiveConflictParks) {
  LockTable table = make_table();
  EXPECT_EQ(table.try_acquire(0, 0, true, true), Acquire::kGranted);
  EXPECT_EQ(table.mode(0), Mode::kExclusive);
  EXPECT_EQ(table.try_acquire(1, 0, false, true), Acquire::kQueued);
  EXPECT_EQ(table.try_acquire(2, 0, true, true), Acquire::kQueued);
  EXPECT_TRUE(table.has_waiters(0));
  EXPECT_EQ(table.waiters(), 2);
}

TEST(LockTable, NoWaitReportsBusyWithoutParking) {
  LockTable table = make_table();
  EXPECT_EQ(table.try_acquire(0, 0, true, true), Acquire::kGranted);
  EXPECT_EQ(table.try_acquire(1, 0, true, /*wait=*/false), Acquire::kBusy);
  EXPECT_FALSE(table.has_waiters(0));
  EXPECT_EQ(table.waiters(), 0);
  // The holder is undisturbed.
  EXPECT_EQ(table.mode(0), Mode::kExclusive);
  EXPECT_EQ(table.holders(0), 1u);
}

TEST(LockTable, NoReaderBargingPastQueuedWriter) {
  LockTable table = make_table();
  EXPECT_EQ(table.try_acquire(0, 0, false, true), Acquire::kGranted);
  EXPECT_EQ(table.try_acquire(1, 0, true, true), Acquire::kQueued);
  // Compatible with the held shared lock, but FIFO: it must queue behind
  // the earlier exclusive waiter, not barge (writer starvation otherwise).
  EXPECT_EQ(table.try_acquire(2, 0, false, true), Acquire::kQueued);
  EXPECT_EQ(table.holders(0), 1u);
  EXPECT_EQ(table.waiters(), 2);
}

TEST(LockTable, ReleaseHandsStraightToHeadWaiter) {
  LockTable table = make_table();
  EXPECT_EQ(table.try_acquire(0, 0, true, true), Acquire::kGranted);
  EXPECT_EQ(table.try_acquire(1, 0, true, true), Acquire::kQueued);
  std::vector<std::uint32_t> granted;
  table.release(0, 0, granted);
  ASSERT_EQ(granted, (std::vector<std::uint32_t>{1}));
  // Never passed through kFree: ownership moved directly.
  EXPECT_EQ(table.mode(0), Mode::kExclusive);
  EXPECT_EQ(table.holders(0), 1u);
  EXPECT_EQ(table.waiters(), 0);
}

TEST(LockTable, SharedRunGrantedTogetherExclusiveAlone) {
  LockTable table = make_table();
  EXPECT_EQ(table.try_acquire(0, 0, true, true), Acquire::kGranted);
  EXPECT_EQ(table.try_acquire(1, 0, false, true), Acquire::kQueued);
  EXPECT_EQ(table.try_acquire(2, 0, false, true), Acquire::kQueued);
  EXPECT_EQ(table.try_acquire(3, 0, true, true), Acquire::kQueued);
  EXPECT_EQ(table.try_acquire(4, 0, false, true), Acquire::kQueued);

  // Release the exclusive holder: the contiguous shared run (1, 2) is
  // granted together; the exclusive waiter 3 and the reader 4 behind it
  // stay parked.
  std::vector<std::uint32_t> granted;
  table.release(0, 0, granted);
  EXPECT_EQ(granted, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(table.mode(0), Mode::kShared);
  EXPECT_EQ(table.holders(0), 2u);
  EXPECT_EQ(table.waiters(), 2);

  // Shared holders drain one by one; only the last release promotes the
  // exclusive waiter — and it alone.
  granted.clear();
  table.release(1, 0, granted);
  EXPECT_TRUE(granted.empty());
  granted.clear();
  table.release(2, 0, granted);
  EXPECT_EQ(granted, (std::vector<std::uint32_t>{3}));
  EXPECT_EQ(table.mode(0), Mode::kExclusive);
  EXPECT_EQ(table.waiters(), 1);

  granted.clear();
  table.release(3, 0, granted);
  EXPECT_EQ(granted, (std::vector<std::uint32_t>{4}));
  EXPECT_EQ(table.mode(0), Mode::kShared);
  EXPECT_EQ(table.waiters(), 0);
}

TEST(LockTable, LastOfManySharedHoldersFrees) {
  LockTable table = make_table();
  EXPECT_EQ(table.try_acquire(0, 0, false, true), Acquire::kGranted);
  EXPECT_EQ(table.try_acquire(1, 0, false, true), Acquire::kGranted);
  std::vector<std::uint32_t> granted;
  table.release(0, 0, granted);
  EXPECT_EQ(table.mode(0), Mode::kShared);
  EXPECT_EQ(table.holders(0), 1u);
  table.release(1, 0, granted);
  EXPECT_EQ(table.mode(0), Mode::kFree);
  EXPECT_EQ(table.holders(0), 0u);
  EXPECT_TRUE(granted.empty());
}

TEST(LockTable, RecordsAreIndependent) {
  LockTable table = make_table();
  EXPECT_EQ(table.try_acquire(0, 0, true, true), Acquire::kGranted);
  EXPECT_EQ(table.try_acquire(1, 1, true, true), Acquire::kGranted);
  EXPECT_EQ(table.try_acquire(2, 2, false, true), Acquire::kGranted);
  EXPECT_EQ(table.waiters(), 0);
}

TEST(LockTable, FifoOrderAcrossMixedWaiters) {
  LockTable table = make_table();
  EXPECT_EQ(table.try_acquire(0, 0, true, true), Acquire::kGranted);
  for (std::uint32_t txn = 1; txn <= 4; ++txn) {
    EXPECT_EQ(table.try_acquire(txn, 0, true, true), Acquire::kQueued);
  }
  // Strict FIFO: each release promotes exactly the next writer in arrival
  // order.
  for (std::uint32_t txn = 0; txn < 4; ++txn) {
    std::vector<std::uint32_t> granted;
    table.release(txn, 0, granted);
    ASSERT_EQ(granted.size(), 1u);
    EXPECT_EQ(granted[0], txn + 1);
  }
}

TEST(LockTable, SnapshotRoundTripsMidContention) {
  LockTable table = make_table();
  EXPECT_EQ(table.try_acquire(0, 0, true, true), Acquire::kGranted);
  EXPECT_EQ(table.try_acquire(1, 0, false, true), Acquire::kQueued);
  EXPECT_EQ(table.try_acquire(2, 0, true, true), Acquire::kQueued);
  EXPECT_EQ(table.try_acquire(3, 1, false, true), Acquire::kGranted);

  LockTable::Snapshot snap;
  table.capture(snap);

  // Diverge: drain the whole queue and take unrelated locks.
  std::vector<std::uint32_t> granted;
  table.release(0, 0, granted);
  table.release(1, 0, granted);
  table.release(2, 0, granted);
  table.release(3, 1, granted);
  EXPECT_EQ(table.try_acquire(5, 2, true, true), Acquire::kGranted);
  EXPECT_EQ(table.waiters(), 0);

  table.restore(snap);
  EXPECT_EQ(table.mode(0), Mode::kExclusive);
  EXPECT_EQ(table.holders(0), 1u);
  EXPECT_EQ(table.mode(1), Mode::kShared);
  EXPECT_EQ(table.mode(2), Mode::kFree);
  EXPECT_EQ(table.waiters(), 2);

  // The restored queue replays the exact pre-divergence grant order.
  granted.clear();
  table.release(0, 0, granted);
  EXPECT_EQ(granted, (std::vector<std::uint32_t>{1}));
  granted.clear();
  table.release(1, 0, granted);
  EXPECT_EQ(granted, (std::vector<std::uint32_t>{2}));
}

TEST(LockTable, EnsureTxnsGrowsWithoutDisturbingState) {
  LockTable table(2);
  table.ensure_txns(2);
  EXPECT_EQ(table.try_acquire(0, 0, true, true), Acquire::kGranted);
  EXPECT_EQ(table.try_acquire(1, 0, true, true), Acquire::kQueued);
  table.ensure_txns(64);
  EXPECT_EQ(table.mode(0), Mode::kExclusive);
  EXPECT_EQ(table.waiters(), 1);
  std::vector<std::uint32_t> granted;
  table.release(0, 0, granted);
  EXPECT_EQ(granted, (std::vector<std::uint32_t>{1}));
}

}  // namespace
}  // namespace memca::oltp
