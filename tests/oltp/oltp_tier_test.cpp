#include "oltp/oltp_tier.h"

#include <gtest/gtest.h>

#include <vector>

#include "queueing/test_util.h"
#include "testbed/rubbos_testbed.h"
#include "trace/attributor.h"

namespace memca::oltp {
namespace {

using queueing::test::make_request;

/// A single OLTP tier with a reply sink standing in for the client side —
/// the direct-tier harness from tier_test.cpp with the lock table in play.
/// Plenty of workers relative to the contention so that any serialization
/// the tests observe comes from locks, not from worker scarcity.
struct SingleOltpTier {
  Simulator sim;
  queueing::RequestPool pool;
  OltpTierServer tier;
  std::vector<queueing::Request*> replies;

  explicit SingleOltpTier(OltpConfig oltp)
      : tier(sim, pool, queueing::TierConfig{"db", 8, 4}, 0, oltp, Rng(99)) {
    pool.set_depth(1);
    tier.set_reply_sink([this](queueing::Request* r) { replies.push_back(r); });
  }
};

/// Every transaction writes the single record: pure serialization.
OltpConfig single_record_exclusive() {
  OltpConfig oltp;
  oltp.num_records = 1;
  oltp.zipf_theta = 0.0;
  oltp.short_txn = TxnClass{1, 1.0, 1.0};
  oltp.long_txn_fraction = 0.0;
  return oltp;
}

TEST(OltpTier, ExclusiveLocksSerializeDespiteFreeWorkers) {
  SingleOltpTier f(single_record_exclusive());
  queueing::Request* a = make_request(f.pool, 0, {1000.0});
  queueing::Request* b = make_request(f.pool, 1, {1000.0});
  ASSERT_TRUE(f.tier.try_submit(a));
  ASSERT_TRUE(f.tier.try_submit(b));
  f.sim.run_all();

  ASSERT_EQ(f.replies.size(), 2u);
  EXPECT_EQ(f.replies[0]->id, 0);
  EXPECT_EQ(f.replies[1]->id, 1);
  // A FIFO tier with 4 workers would finish both at 1 ms; the write lock
  // convoys the second transaction behind the first's full service.
  EXPECT_EQ(a->tier_time(0), usec(1000));
  EXPECT_EQ(b->tier_time(0), usec(2000));
  EXPECT_EQ(f.tier.commits(), 2);
  EXPECT_EQ(f.tier.aborts(), 0);
  EXPECT_EQ(f.tier.lock_waits(), 1);
}

TEST(OltpTier, SharedLocksRunInParallel) {
  OltpConfig oltp = single_record_exclusive();
  oltp.short_txn.write_ratio = 0.0;  // readers only
  SingleOltpTier f(oltp);
  queueing::Request* a = make_request(f.pool, 0, {1000.0});
  queueing::Request* b = make_request(f.pool, 1, {1000.0});
  ASSERT_TRUE(f.tier.try_submit(a));
  ASSERT_TRUE(f.tier.try_submit(b));
  f.sim.run_all();

  ASSERT_EQ(f.replies.size(), 2u);
  EXPECT_EQ(a->tier_time(0), usec(1000));
  EXPECT_EQ(b->tier_time(0), usec(1000));
  EXPECT_EQ(f.tier.lock_waits(), 0);
  EXPECT_EQ(f.tier.commits(), 2);
}

TEST(OltpTier, NoWaitAbortsBackOffAndEventuallyCommit) {
  OltpConfig oltp = single_record_exclusive();
  oltp.scheme = CcScheme::kNoWaitBackoff;
  oltp.backoff_base_us = 100;
  oltp.backoff_cap = 6;
  SingleOltpTier f(oltp);
  queueing::Request* a = make_request(f.pool, 0, {1000.0});
  queueing::Request* b = make_request(f.pool, 1, {1000.0});
  ASSERT_TRUE(f.tier.try_submit(a));
  ASSERT_TRUE(f.tier.try_submit(b));
  f.sim.run_all();

  // The loser aborts at t=0 and on each backoff expiry inside the holder's
  // 1 ms service (100, 300, 700 us), then wins the retry at 1.5 ms.
  ASSERT_EQ(f.replies.size(), 2u);
  EXPECT_EQ(f.tier.commits(), 2);
  EXPECT_EQ(f.tier.aborts(), 4);
  EXPECT_EQ(f.tier.lock_waits(), 1);
  EXPECT_EQ(a->tier_time(0), usec(1000));
  EXPECT_EQ(b->tier_time(0), usec(2500));
  EXPECT_EQ(f.tier.lock_table().waiters(), 0);  // NO_WAIT never parks
}

TEST(OltpTier, LockWaitSpanNestsInsideTheTierWindow) {
  SingleOltpTier f(single_record_exclusive());
  trace::TraceRecorder recorder;
  f.tier.set_trace(&recorder);
  queueing::Request* a = make_request(f.pool, 0, {1000.0});
  queueing::Request* b = make_request(f.pool, 1, {1000.0});
  a->user = 7;
  b->user = 8;
  ASSERT_TRUE(f.tier.try_submit(a));
  ASSERT_TRUE(f.tier.try_submit(b));
  f.sim.run_all();

  // Exactly one transaction stalled -> exactly one span: stalled from t=0
  // (aux) to the grant at t=1000 (time), inside [enter=0, service_start=
  // 1000) of request 1's tier span.
  int spans = 0;
  recorder.for_each([&](const trace::TraceEvent& ev) {
    if (ev.kind != trace::EventKind::kLockWaitSpan) return;
    ++spans;
    EXPECT_EQ(ev.request, 1);
    EXPECT_EQ(ev.time, usec(1000));
    EXPECT_EQ(ev.aux, 0);
    EXPECT_EQ(ev.tier, 0);
    EXPECT_EQ(ev.user, 8);
  });
  EXPECT_EQ(spans, 1);
}

TEST(OltpTier, DemandMultiplierStretchesServiceAndLockHold) {
  OltpConfig oltp = single_record_exclusive();
  oltp.long_txn = TxnClass{1, 1.0, 4.0};
  oltp.long_txn_fraction = 1.0;  // every transaction is long
  SingleOltpTier f(oltp);
  queueing::Request* a = make_request(f.pool, 0, {1000.0});
  ASSERT_TRUE(f.tier.try_submit(a));
  f.sim.run_all();

  // 1 ms staged demand x 4 multiplier: the lock is held 4 ms.
  EXPECT_EQ(a->tier_time(0), usec(4000));
  EXPECT_GE(f.tier.lock_hold_time().quantile(1.0), usec(4000));
}

TEST(OltpTier, ZeroRecordTransactionsCommitWithoutLocking) {
  OltpConfig oltp = single_record_exclusive();
  oltp.short_txn.records = 0;
  SingleOltpTier f(oltp);
  queueing::Request* a = make_request(f.pool, 0, {1000.0});
  queueing::Request* b = make_request(f.pool, 1, {1000.0});
  ASSERT_TRUE(f.tier.try_submit(a));
  ASSERT_TRUE(f.tier.try_submit(b));
  f.sim.run_all();
  EXPECT_EQ(f.replies.size(), 2u);
  EXPECT_EQ(f.tier.commits(), 2);
  EXPECT_EQ(f.tier.lock_waits(), 0);
  EXPECT_EQ(a->tier_time(0), usec(1000));
  EXPECT_EQ(b->tier_time(0), usec(1000));
}

// -- testbed integration -----------------------------------------------------

TEST(OltpTierTestbed, AttributionStaysExactWithLockWaits) {
  // The whole-system check for the new trace span: with the OLTP bottleneck
  // under contention (hot key space, write-heavy) and a burst train
  // degrading the target tier, requests must still attribute their latency
  // exactly — lock wait carved out of queue wait, slack identically zero —
  // and the convoy must actually show up (some lock-wait mass).
  testbed::TestbedConfig config;
  config.trace = true;
  config.bottleneck = testbed::BottleneckKind::kOltp;
  config.oltp.num_records = 64;
  config.oltp.zipf_theta = 0.99;
  config.oltp.short_txn.write_ratio = 0.8;
  config.oltp.long_txn.write_ratio = 0.8;
  testbed::RubbosTestbed bed(config);
  bed.start();
  ASSERT_NE(bed.oltp_tier(), nullptr);

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  for (int k = 0; k < 10; ++k) {
    const SimTime on = sec(std::int64_t{2}) + k * sec(std::int64_t{2});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.95); });
    bed.sim().schedule_at(on + msec(500), [&host, vm] { host.clear_memory_activity(vm); });
  }
  bed.sim().run_until(sec(std::int64_t{25}));

  EXPECT_GT(bed.oltp_tier()->commits(), 0);
  EXPECT_GT(bed.oltp_tier()->lock_waits(), 0);

  trace::TailAttributor attributor(*bed.trace(), bed.system().depth());
  ASSERT_GT(attributor.requests().size(), 0u);
  std::int64_t with_lock_wait = 0;
  for (const trace::RequestBreakdown& b : attributor.requests()) {
    EXPECT_EQ(b.slack, 0) << "request " << b.final_request;
    with_lock_wait += b.lock_wait_total() > 0 ? 1 : 0;
  }
  EXPECT_GT(with_lock_wait, 0);
}

TEST(OltpTierTestbed, FifoDefaultHasNoOltpTier) {
  testbed::RubbosTestbed bed;
  EXPECT_EQ(bed.oltp_tier(), nullptr);
}

}  // namespace
}  // namespace memca::oltp
