// Checkpoint invariants for the OLTP bottleneck: a warm (rolled-back) world
// with a live lock table must be indistinguishable from a cold one — held
// locks, parked waiters and in-flight backoffs included — at every sweep
// thread count, and rolling the lock state back must allocate nothing.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "support/counting_alloc.h"
#include "testbed/attack_lab.h"
#include "testbed/rubbos_testbed.h"

namespace memca::oltp {
namespace {

using testbed::AttackLabConfig;
using testbed::AttackLabResult;

/// A contention-heavy OLTP bottleneck: a hot 32-record key space, skewed
/// access, write-heavy — lock queues are guaranteed live at any instant.
testbed::TestbedConfig contended_testbed() {
  testbed::TestbedConfig config;
  config.bottleneck = testbed::BottleneckKind::kOltp;
  config.oltp.num_records = 32;
  config.oltp.zipf_theta = 0.99;
  config.oltp.short_txn.write_ratio = 0.8;
  config.oltp.long_txn.write_ratio = 0.8;
  return config;
}

/// Three cells sharing one OLTP prefix (warm rollbacks of a world with lock
/// state) plus one NO_WAIT cell whose prefix differs (cold rebuild, and
/// proof that in-flight backoff timers checkpoint too).
std::vector<AttackLabConfig> oltp_grid() {
  std::vector<AttackLabConfig> cells;
  for (SimTime length : {msec(200), msec(400), msec(600)}) {
    AttackLabConfig config;
    config.testbed = contended_testbed();
    config.testbed.metrics = true;
    config.params.burst_length = length;
    config.params.burst_interval = sec(std::int64_t{2});
    config.warmup = sec(std::int64_t{8});
    config.duration = sec(std::int64_t{10});
    cells.push_back(config);
  }
  AttackLabConfig no_wait = cells.back();
  no_wait.testbed.oltp.scheme = CcScheme::kNoWaitBackoff;
  cells.push_back(no_wait);
  return cells;
}

std::string registry_bytes(const metrics::Registry* registry) {
  std::ostringstream out;
  if (registry != nullptr) registry->serialize(out);
  return out.str();
}

TEST(OltpSnapshotSweep, WarmCellsMatchColdRunsAtEveryThreadCount) {
  const std::vector<AttackLabConfig> grid = oltp_grid();

  std::vector<AttackLabResult> baseline;
  for (const AttackLabConfig& config : grid) {
    baseline.push_back(testbed::run_attack_lab(config));
  }

  for (int threads : {1, 2, 4}) {
    std::vector<AttackLabResult> swept = testbed::run_attack_lab_sweep(grid, threads);
    ASSERT_EQ(swept.size(), baseline.size()) << "threads " << threads;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      const AttackLabResult& a = baseline[i];
      const AttackLabResult& b = swept[i];
      EXPECT_EQ(a.client_p50, b.client_p50) << "threads " << threads << " cell " << i;
      EXPECT_EQ(a.client_p99, b.client_p99) << "threads " << threads << " cell " << i;
      EXPECT_EQ(a.client_p999, b.client_p999) << "threads " << threads << " cell " << i;
      EXPECT_EQ(a.tier_p95, b.tier_p95) << "threads " << threads << " cell " << i;
      EXPECT_EQ(a.throughput, b.throughput) << "threads " << threads << " cell " << i;
      EXPECT_EQ(a.drops, b.drops) << "threads " << threads << " cell " << i;
      EXPECT_EQ(a.bursts, b.bursts) << "threads " << threads << " cell " << i;
      // The registry bytes cover the OLTP plane too: commit/abort/lock-wait
      // counters, lock-wait/hold histograms, the waiter-count series.
      EXPECT_EQ(registry_bytes(a.registry.get()), registry_bytes(b.registry.get()))
          << "threads " << threads << " cell " << i;
    }
  }
}

/// Everything the OLTP extension can disturb, read after a fixed span.
struct OltpFingerprint {
  SimTime now = 0;
  std::uint64_t events = 0;
  std::int64_t completed = 0, drops = 0;
  std::int64_t commits = 0, aborts = 0, lock_waits = 0;
  int parked = 0;
  SimTime wait_p99 = 0, hold_p99 = 0;
  SimTime client_p99 = 0;
};

OltpFingerprint run_segment(testbed::RubbosTestbed& bed, SimTime span) {
  bed.sim().run_for(span);
  const OltpTierServer& tier = *bed.oltp_tier();
  OltpFingerprint f;
  f.now = bed.sim().now();
  f.events = bed.sim().events_executed();
  f.completed = bed.clients().completed();
  f.drops = bed.clients().dropped_attempts();
  f.commits = tier.commits();
  f.aborts = tier.aborts();
  f.lock_waits = tier.lock_waits();
  f.parked = tier.lock_table().waiters();
  f.wait_p99 = tier.lock_wait_time().quantile(0.99);
  f.hold_p99 = tier.lock_hold_time().quantile(0.99);
  f.client_p99 = bed.clients().response_times().quantile(0.99);
  return f;
}

void expect_fingerprint_eq(const OltpFingerprint& a, const OltpFingerprint& b,
                           int replay) {
  EXPECT_EQ(a.now, b.now) << "replay " << replay;
  EXPECT_EQ(a.events, b.events) << "replay " << replay;
  EXPECT_EQ(a.completed, b.completed) << "replay " << replay;
  EXPECT_EQ(a.drops, b.drops) << "replay " << replay;
  EXPECT_EQ(a.commits, b.commits) << "replay " << replay;
  EXPECT_EQ(a.aborts, b.aborts) << "replay " << replay;
  EXPECT_EQ(a.lock_waits, b.lock_waits) << "replay " << replay;
  EXPECT_EQ(a.parked, b.parked) << "replay " << replay;
  EXPECT_EQ(a.wait_p99, b.wait_p99) << "replay " << replay;
  EXPECT_EQ(a.hold_p99, b.hold_p99) << "replay " << replay;
  EXPECT_EQ(a.client_p99, b.client_p99) << "replay " << replay;
}

TEST(OltpSnapshotRollback, MidTransactionSegmentReplaysExactly) {
  // Snapshot with the lock table at its most entangled: transactions
  // mid-acquisition holding some locks, waiters parked in record FIFO
  // queues, and a degradation burst active so holds are stretched. The
  // segment after the snapshot must replay exactly, twice, from the one
  // snapshot.
  testbed::TestbedConfig config = contended_testbed();
  config.seed = 7;
  testbed::RubbosTestbed bed(config);
  bed.start();

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  for (int k = 0; k < 12; ++k) {
    const SimTime on = msec(500) + k * sec(std::int64_t{1});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.95); });
    bed.sim().schedule_at(on + msec(300), [&host, vm] { host.clear_memory_activity(vm); });
  }

  bed.sim().run_until(msec(4650));  // inside burst #4
  ASSERT_NE(bed.oltp_tier(), nullptr);
  ASSERT_GT(bed.oltp_tier()->lock_table().waiters(), 0)
      << "scenario must have parked lock waiters at the snapshot point";
  bed.snapshot();

  const OltpFingerprint first = run_segment(bed, sec(std::int64_t{4}));
  for (int replay = 1; replay <= 2; ++replay) {
    bed.rollback();
    expect_fingerprint_eq(first, run_segment(bed, sec(std::int64_t{4})), replay);
  }
}

TEST(OltpSnapshotRollback, NoWaitBackoffTimersReplayExactly) {
  // Same contract under NO_WAIT: the snapshot lands while aborted
  // transactions have backoff retries parked in the simulator, and the
  // replayed segment (including those retries and the aborts they cause)
  // must be bit-identical.
  testbed::TestbedConfig config = contended_testbed();
  config.oltp.scheme = CcScheme::kNoWaitBackoff;
  config.seed = 7;
  testbed::RubbosTestbed bed(config);
  bed.start();

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  for (int k = 0; k < 12; ++k) {
    const SimTime on = msec(500) + k * sec(std::int64_t{1});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.95); });
    bed.sim().schedule_at(on + msec(300), [&host, vm] { host.clear_memory_activity(vm); });
  }

  bed.sim().run_until(msec(4650));
  ASSERT_GT(bed.oltp_tier()->aborts(), 0)
      << "scenario must have NO_WAIT aborts (and pending retries) by the snapshot";
  bed.snapshot();

  const OltpFingerprint first = run_segment(bed, sec(std::int64_t{4}));
  for (int replay = 1; replay <= 2; ++replay) {
    bed.rollback();
    expect_fingerprint_eq(first, run_segment(bed, sec(std::int64_t{4})), replay);
  }
}

TEST(OltpSnapshotRollback, RollbackWithLockStateAllocatesNothing) {
  // The counting-allocator gate extended to the lock table: once the first
  // snapshot exists, rolling back the whole world — lock lanes, transaction
  // lanes, waiter queues included — is pure copy-back into existing
  // capacity.
  testbed::TestbedConfig config = contended_testbed();
  config.seed = 11;
  config.metrics = true;
  config.trace = true;
  testbed::RubbosTestbed bed(config);
  bed.start();

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  for (int k = 0; k < 8; ++k) {
    const SimTime on = msec(500) + k * sec(std::int64_t{1});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.9); });
    bed.sim().schedule_at(on + msec(300), [&host, vm] { host.clear_memory_activity(vm); });
  }
  bed.sim().run_until(msec(3650));
  bed.snapshot();

  for (int round = 0; round < 2; ++round) {
    bed.sim().run_for(sec(std::int64_t{2}));
    tests::ScopedAllocationCounter counter;
    bed.rollback();
    EXPECT_EQ(counter.count(), 0) << "round " << round;
  }
}

}  // namespace
}  // namespace memca::oltp
