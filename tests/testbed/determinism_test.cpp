// Whole-stack determinism: the strongest regression guard the project has.
// Any hidden ordering dependency, uninitialised read, or RNG-sharing bug
// shows up as a diff between two identically-seeded runs of the *full*
// system — attack, controller, defense and all.
#include <gtest/gtest.h>

#include <tuple>

#include "defense/controller.h"
#include "testbed/rubbos_testbed.h"

namespace memca::testbed {
namespace {

struct RunDigest {
  std::int64_t completed;
  std::int64_t drops;
  SimTime p95;
  SimTime p99;
  double cpu_mean;
  std::uint64_t events;
  SimTime defense_alarm;
  SimTime controller_filtered;

  bool operator==(const RunDigest&) const = default;
};

RunDigest full_stack_run(std::uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  config.background_neighbors = 1;
  RubbosTestbed bed(config);
  bed.start();

  defense::DefenseConfig defense_config;
  defense::DefenseController defense(bed.sim(), bed.target_tier(), bed.target_host(),
                                     bed.target_vm(), defense_config);
  defense.start();

  core::MemcaConfig attack_config;
  attack_config.enable_controller = true;
  attack_config.controller.epoch = sec(std::int64_t{5});
  attack_config.interval_jitter = 0.2;
  auto attack = bed.make_attack(attack_config);
  bed.sim().schedule_at(sec(std::int64_t{30}), [&] { attack->start(); });

  bed.sim().run_for(4 * kMinute);

  RunDigest digest;
  digest.completed = bed.clients().completed();
  digest.drops = bed.clients().dropped_attempts();
  digest.p95 = bed.clients().response_times().quantile(0.95);
  digest.p99 = bed.clients().response_times().quantile(0.99);
  digest.cpu_mean = bed.mysql_cpu().series().mean();
  digest.events = bed.sim().events_executed();
  digest.defense_alarm = defense.timeline().alarm;
  digest.controller_filtered =
      attack->controller() ? attack->controller()->filtered_rt() : -1;
  return digest;
}

TEST(Determinism, FullStackIdenticalAcrossRuns) {
  const RunDigest a = full_stack_run(42);
  const RunDigest b = full_stack_run(42);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const RunDigest a = full_stack_run(42);
  const RunDigest b = full_stack_run(43);
  EXPECT_NE(a.completed, b.completed);
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, HeadlinePropertiesHoldAcrossSeeds) {
  // The reproduction's claims must not be seed-cherry-picked: for any seed,
  // the paper-parameter attack yields p95 >= 1 s and a moderate CPU mean.
  TestbedConfig config;
  config.seed = GetParam();
  RubbosTestbed bed(config);
  bed.start();
  core::MemcaConfig attack_config;
  attack_config.enable_controller = false;
  attack_config.params.burst_length = msec(500);
  attack_config.params.burst_interval = sec(std::int64_t{2});
  auto attack = bed.make_attack(attack_config);
  attack->start();
  bed.sim().run_for(3 * kMinute);
  EXPECT_GE(bed.clients().response_times().quantile(0.95), sec(std::int64_t{1}))
      << "seed " << GetParam();
  EXPECT_LT(bed.mysql_cpu().series().mean(), 0.85) << "seed " << GetParam();
  EXPECT_GT(bed.clients().throughput(), 450.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 7, 42, 1234, 99991, 271828, 3141592));

}  // namespace
}  // namespace memca::testbed
