// Quantized-vs-exact equivalence on the calibrated Fig. 2 scenario.
//
// `TestbedConfig::service_quantum_us` is a deliberate, documented
// event-stream change: demands snap to a microsecond grid and same-quantum
// completions drain as one batch, so the quantized world cannot be compared
// byte-for-byte against the exact one — only its *statistics* can. These
// tests pin the aggregate observables the paper's figures are built from
// (throughput/completions within 3%, damage totals and tail quantiles within
// the cohort-test tolerances), pin the per-request latency decomposition to
// stay exact (attribution slack ≡ 0 — batch drains must not lose or
// double-count spans), and pin the quantized world to the same determinism
// and snapshot/rollback replay contracts the exact world obeys.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/memca.h"
#include "support/counting_alloc.h"
#include "testbed/rubbos_testbed.h"
#include "trace/attributor.h"

#ifdef MEMCA_TRACE_DISABLED
#define MEMCA_SKIP_IF_TRACE_DISABLED() \
  GTEST_SKIP() << "tracing compiled out (MEMCA_TRACE=OFF)"
#else
#define MEMCA_SKIP_IF_TRACE_DISABLED()
#endif

namespace memca::testbed {
namespace {

/// The canonical quantized grid: fine enough that the completion-instant
/// round-up (≤ one quantum per service) stays far below every tier's mean
/// demand, so saturation throughput is not eaten by grid padding.
constexpr std::uint32_t kQuantumUs = 100;

struct RunStats {
  std::int64_t completed = 0, dropped = 0, retransmitted = 0, failed = 0;
  SimTime p50 = 0, p99 = 0, p999 = 0;
  double throughput = 0.0;
};

core::MemcaConfig fig2_attack() {
  core::MemcaConfig config;
  config.enable_controller = false;
  config.params.burst_length = msec(500);
  config.params.burst_interval = sec(std::int64_t{2});
  config.params.type = cloud::MemoryAttackType::kMemoryLock;
  return config;
}

RunStats run_fig2(std::uint32_t quantum_us, workload::ClientMode mode, SimTime duration) {
  TestbedConfig config;
  config.service_quantum_us = quantum_us;
  config.client_mode = mode;
  RubbosTestbed bed(config);
  bed.start();
  auto attack = bed.make_attack(fig2_attack());
  attack->start();
  bed.sim().run_for(duration);

  RunStats stats;
  const workload::ClosedLoopClients& clients = bed.clients();
  stats.completed = clients.completed();
  stats.dropped = clients.dropped_attempts();
  stats.retransmitted = clients.retransmitted_completions();
  stats.failed = clients.failed();
  stats.p50 = clients.response_times().quantile(0.50);
  stats.p99 = clients.response_times().quantile(0.99);
  stats.p999 = clients.response_times().quantile(0.999);
  stats.throughput = clients.throughput();
  return stats;
}

void expect_close(double quantized, double exact, double rel, double abs_floor,
                  const char* what) {
  const double tolerance = std::max(std::abs(exact) * rel, abs_floor);
  EXPECT_NEAR(quantized, exact, tolerance)
      << what << ": quantized=" << quantized << " exact=" << exact;
}

void expect_equivalent(const RunStats& quantized, const RunStats& exact) {
  // Sanity: the attack must bite in both worlds or the tail comparison is
  // vacuous.
  ASSERT_GT(exact.dropped, 100);
  ASSERT_GT(quantized.dropped, 100);
  ASSERT_GE(exact.p999, sec(std::int64_t{1}));
  ASSERT_GE(quantized.p999, sec(std::int64_t{1}));

  // Volume: round-to-nearest demand quantization is mean-preserving and the
  // ≤100 us completion round-up is noise against a 7 s think time.
  expect_close(static_cast<double>(quantized.completed),
               static_cast<double>(exact.completed), 0.03, 0.0, "completed");
  expect_close(quantized.throughput, exact.throughput, 0.03, 0.0, "throughput");

  // Damage totals and tail shape: same tolerances the cohort equivalence
  // gate uses — burst-by-burst drop counts are noisy, and p99/p99.9 sit on
  // the RTO-quantized VLRT plateau.
  expect_close(static_cast<double>(quantized.dropped),
               static_cast<double>(exact.dropped), 0.15, 50.0, "dropped");
  expect_close(static_cast<double>(quantized.retransmitted),
               static_cast<double>(exact.retransmitted), 0.15, 50.0, "retransmitted");
  expect_close(static_cast<double>(quantized.p50), static_cast<double>(exact.p50),
               0.15, static_cast<double>(msec(5)), "p50");
  expect_close(static_cast<double>(quantized.p99), static_cast<double>(exact.p99),
               0.15, static_cast<double>(msec(100)), "p99");
  expect_close(static_cast<double>(quantized.p999), static_cast<double>(exact.p999),
               0.15, static_cast<double>(msec(250)), "p99.9");
}

TEST(QuantizedEquivalence, CalibratedFig2AtPaperScale) {
  const SimTime duration = 3 * kMinute;
  const RunStats exact = run_fig2(0, workload::ClientMode::kExact, duration);
  const RunStats quantized = run_fig2(kQuantumUs, workload::ClientMode::kExact, duration);
  expect_equivalent(quantized, exact);
}

TEST(QuantizedEquivalence, CohortQuantizedMatchesExact) {
  // The population-scale combination (cohort arrivals + quantized service)
  // stacks both event-stream changes; it must still land inside the same
  // statistical gate against the per-user exact reference.
  const SimTime duration = 3 * kMinute;
  const RunStats exact = run_fig2(0, workload::ClientMode::kExact, duration);
  const RunStats both = run_fig2(kQuantumUs, workload::ClientMode::kCohort, duration);
  expect_equivalent(both, exact);
}

TEST(QuantizedAttribution, DecompositionSlackStaysZero) {
  // The batch drain reorders bookkeeping, not spans: queue wait + service +
  // rpc hold + RTO wait must still cover every client-observed latency
  // exactly. Nonzero slack means the grouped completion path lost or
  // double-counted a span.
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TestbedConfig config;
  config.service_quantum_us = kQuantumUs;
  config.trace = true;
  config.num_users = 1000;
  RubbosTestbed bed(config);
  bed.start();
  auto attack = bed.make_attack(fig2_attack());
  attack->start();
  bed.sim().run_for(sec(std::int64_t{30}));
  attack->stop();

  trace::TailAttributor attributor(*bed.trace(), bed.system().depth());
  ASSERT_EQ(static_cast<std::int64_t>(attributor.requests().size()),
            bed.clients().completed());
  for (const trace::RequestBreakdown& r : attributor.requests()) {
    EXPECT_EQ(r.slack, 0) << "request " << r.final_request;
    EXPECT_EQ(r.total, r.queue_wait_total() + r.service_total() + r.rpc_hold_total() +
                           r.rto_wait);
  }
}

// -- determinism and checkpointing -------------------------------------------

struct Fingerprint {
  SimTime now = 0;
  std::uint64_t events = 0;
  std::int64_t completed = 0, dropped = 0, retransmitted = 0, failed = 0;
  SimTime p50 = 0, p99 = 0;

  bool operator==(const Fingerprint& o) const {
    return now == o.now && events == o.events && completed == o.completed &&
           dropped == o.dropped && retransmitted == o.retransmitted &&
           failed == o.failed && p50 == o.p50 && p99 == o.p99;
  }
};

Fingerprint fingerprint(RubbosTestbed& bed) {
  const workload::ClosedLoopClients& clients = bed.clients();
  Fingerprint f;
  f.now = bed.sim().now();
  f.events = bed.sim().events_executed();
  f.completed = clients.completed();
  f.dropped = clients.dropped_attempts();
  f.retransmitted = clients.retransmitted_completions();
  f.failed = clients.failed();
  f.p50 = clients.response_times().quantile(0.50);
  f.p99 = clients.response_times().quantile(0.99);
  return f;
}

TEST(QuantizedDeterminism, SameSeedSameEventStream) {
  auto run_once = [] {
    TestbedConfig config;
    config.service_quantum_us = kQuantumUs;
    config.seed = 13;
    RubbosTestbed bed(config);
    bed.start();
    auto attack = bed.make_attack(fig2_attack());
    attack->start();
    bed.sim().run_for(sec(std::int64_t{20}));
    return fingerprint(bed);
  };
  const Fingerprint first = run_once();
  const Fingerprint second = run_once();
  EXPECT_TRUE(first == second);
}

TEST(QuantizedSnapshot, MidBatchRollbackReplaysByteForByte) {
  // Snapshot a quantized world mid-burst, with completion groups armed on
  // every tier and drops parked as RTO timers: the group table, member-link
  // lane, batched events and reply staging must all round-trip so two
  // replays of the same segment are indistinguishable from the first pass.
  TestbedConfig config;
  config.service_quantum_us = kQuantumUs;
  config.seed = 7;
  RubbosTestbed bed(config);
  bed.start();

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  for (int k = 0; k < 12; ++k) {
    const SimTime on = msec(500) + k * sec(std::int64_t{1});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.95); });
    bed.sim().schedule_at(on + msec(300), [&host, vm] { host.clear_memory_activity(vm); });
  }

  // An off-grid instant mid-burst: armed groups and in-service requests are
  // pending when the checkpoint is taken.
  bed.sim().run_until(msec(4650) + usec(37));
  ASSERT_GT(bed.clients().dropped_attempts(), 0)
      << "drops must be pending as RTO timers when the snapshot is taken";
  bed.snapshot();

  bed.sim().run_for(sec(std::int64_t{4}));
  const Fingerprint first = fingerprint(bed);
  EXPECT_GT(first.retransmitted, 0)
      << "segment must fire RTO timers parked before the snapshot";
  for (int replay = 1; replay <= 2; ++replay) {
    bed.rollback();
    bed.sim().run_for(sec(std::int64_t{4}));
    const Fingerprint again = fingerprint(bed);
    EXPECT_TRUE(first == again) << "replay " << replay;
  }
}

TEST(QuantizedSnapshot, RollbackAllocatesNothing) {
  TestbedConfig config;
  config.service_quantum_us = kQuantumUs;
  config.client_mode = workload::ClientMode::kCohort;
  config.seed = 11;
  RubbosTestbed bed(config);
  bed.start();

  cloud::Host& host = bed.target_host();
  const cloud::VmId vm = bed.adversary_vm();
  for (int k = 0; k < 8; ++k) {
    const SimTime on = msec(500) + k * sec(std::int64_t{1});
    bed.sim().schedule_at(on, [&host, vm] { host.set_memory_activity(vm, 0.0, 0.9); });
    bed.sim().schedule_at(on + msec(300), [&host, vm] { host.clear_memory_activity(vm); });
  }
  bed.sim().run_until(msec(3650));
  bed.snapshot();

  for (int round = 0; round < 2; ++round) {
    bed.sim().run_for(sec(std::int64_t{2}));
    tests::ScopedAllocationCounter counter;
    bed.rollback();
    EXPECT_EQ(counter.count(), 0) << "round " << round;
  }
}

}  // namespace
}  // namespace memca::testbed
