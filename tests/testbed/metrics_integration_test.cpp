// End-to-end metrics wiring: a short attacked testbed run with the registry
// on must tell the same story as the testbed's own introspection getters —
// every counter the hot paths increment has a ground-truth twin.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/names.h"
#include "metrics/run_report.h"
#include "testbed/attack_lab.h"
#include "testbed/rubbos_testbed.h"

namespace memca::testbed {
namespace {

TEST(MetricsIntegration, RegistryNullWithoutOptIn) {
  RubbosTestbed bed;
  EXPECT_EQ(bed.registry(), nullptr);
  EXPECT_EQ(bed.release_metrics(), nullptr);
  bed.finalize_metrics();  // must be a no-op, not a crash
}

TEST(MetricsIntegration, CountersMatchGroundTruth) {
  TestbedConfig config;
  config.metrics = true;
  RubbosTestbed bed(config);
  ASSERT_NE(bed.registry(), nullptr);
  bed.start();

  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  auto attack = bed.make_attack(memca);
  attack->start();
  bed.sim().run_for(sec(std::int64_t{30}));
  bed.finalize_metrics(attack.get());

  const metrics::Registry& registry = *bed.registry();
  // Client-side counters mirror the clients' own statistics.
  EXPECT_EQ(registry.counter_value(metrics::names::kRequestsTotal, {{"event", "completed"}}),
            bed.clients().completed());
  EXPECT_EQ(registry.counter_value(metrics::names::kRequestsTotal, {{"event", "dropped"}}),
            bed.clients().dropped_attempts());
  EXPECT_EQ(registry.counter_value(metrics::names::kRequestsTotal, {{"event", "failed"}}),
            bed.clients().failed());
  // Every drop schedules a retransmission unless the request is abandoned.
  EXPECT_EQ(
      registry.counter_value(metrics::names::kRequestsTotal, {{"event", "retransmitted"}}),
      bed.clients().dropped_attempts() - bed.clients().failed());
  const LatencyHistogram* rt =
      registry.find_histogram(metrics::names::kClientResponseTimeUs);
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->count(), bed.clients().response_times().count());
  EXPECT_EQ(rt->quantile(0.95), bed.clients().response_times().quantile(0.95));

  // Per-tier counters mirror the tiers'.
  for (std::size_t i = 0; i < bed.system().num_tiers(); ++i) {
    const auto& tier = bed.system().tier(i);
    const metrics::Labels label = {{"tier", tier.name()}};
    auto event = [&](const char* e) {
      return registry.counter_value(metrics::names::kTierRequestsTotal,
                                    {{"tier", tier.name()}, {"event", e}});
    };
    EXPECT_EQ(event("offered"), tier.offered()) << tier.name();
    EXPECT_EQ(event("admitted"), tier.admitted()) << tier.name();
    EXPECT_EQ(event("rejected"), tier.rejected()) << tier.name();
    EXPECT_EQ(event("completed"), tier.completed()) << tier.name();
    // Scraped utilization/queue series exist and carry one sample per scrape.
    const TimeSeries* util = registry.series(metrics::names::kTierUtilization, label);
    ASSERT_NE(util, nullptr) << tier.name();
    EXPECT_EQ(util->size(), static_cast<std::size_t>(registry.scrapes())) << tier.name();
  }

  // Engine self-profile synced at finalize.
  EXPECT_EQ(registry.counter_value(metrics::names::kEngineEventsTotal),
            static_cast<std::int64_t>(bed.sim().events_executed()));
  EXPECT_EQ(registry.counter_value(metrics::names::kSimTimeUs), bed.sim().now());
  EXPECT_GT(registry.counter_value(metrics::names::kEnginePendingHighWater), 0);
  // Attack telemetry synced at finalize.
  EXPECT_EQ(registry.counter_value(metrics::names::kAttackBurstsTotal),
            attack->scheduler().bursts_fired());
  EXPECT_EQ(registry.counter_value(metrics::names::kAttackOnTimeUs),
            attack->program().total_on_time());
  // 30 s at the default 50 ms resolution.
  EXPECT_EQ(registry.scrapes(), 600);
}

TEST(MetricsIntegration, RunReportReflectsTheRun) {
  AttackLabConfig config;
  config.duration = sec(std::int64_t{20});
  config.params.burst_length = msec(500);
  config.params.burst_interval = sec(std::int64_t{2});
  config.testbed.metrics = true;
  AttackLabResult result = run_attack_lab(config);
  ASSERT_NE(result.registry, nullptr);

  metrics::RunReportOptions options;
  options.scenario = "lab";
  options.scrape_resolution = msec(50);
  const metrics::RunReport report = metrics::build_run_report(*result.registry, options);
  EXPECT_DOUBLE_EQ(report.sim_seconds, 20.0);
  EXPECT_EQ(report.bursts, result.bursts);
  EXPECT_EQ(report.dropped, result.drops);
  EXPECT_EQ(report.latency_p95, result.client_p95);
  EXPECT_GT(report.duty_cycle, 0.0);
  EXPECT_GT(report.capacity_dips, 0);
  ASSERT_EQ(report.tiers.size(), 3u);
  EXPECT_EQ(report.tiers[0].name, "apache");
  EXPECT_EQ(report.tiers[2].name, "mysql");
  // The attack saturates MySQL transiently: visible in the scraped series.
  EXPECT_GT(report.tiers[2].util_max_native, 0.95);
}

TEST(MetricsIntegration, ReleasedRegistrySurvivesTheTestbed) {
  std::unique_ptr<metrics::Registry> registry;
  std::int64_t completed = 0;
  {
    TestbedConfig config;
    config.metrics = true;
    RubbosTestbed bed(config);
    bed.start();
    bed.sim().run_for(sec(std::int64_t{5}));
    bed.finalize_metrics();
    completed = bed.clients().completed();
    registry = bed.release_metrics();
    EXPECT_EQ(bed.registry(), nullptr);
  }
  ASSERT_NE(registry, nullptr);
  EXPECT_EQ(registry->counter_value(metrics::names::kRequestsTotal, {{"event", "completed"}}),
            completed);
  // Serialization of the released registry still works (sweep merge path).
  std::ostringstream out;
  registry->serialize(out);
  EXPECT_FALSE(out.str().empty());
}

}  // namespace
}  // namespace memca::testbed
