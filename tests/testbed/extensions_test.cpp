// Tests for the testbed extensions beyond the paper's baseline setup:
// target-tier selection, noisy neighbors, adversary sizing, and live
// elastic scaling against the attacks.
#include <gtest/gtest.h>

#include "core/baselines.h"
#include "monitor/elastic.h"
#include "testbed/rubbos_testbed.h"

namespace memca::testbed {
namespace {

core::MemcaConfig paper_attack() {
  core::MemcaConfig config;
  config.enable_controller = false;
  config.params.burst_length = msec(500);
  config.params.burst_interval = sec(std::int64_t{2});
  return config;
}

TEST(TargetTier, DefaultTargetsMysql) {
  RubbosTestbed bed;
  EXPECT_EQ(&bed.target_tier(), &bed.system().tier(2));
  EXPECT_EQ(&bed.target_host(), &bed.host(2));
}

TEST(TargetTier, AttackingTheBottleneckHurtsMost) {
  std::vector<SimTime> p95(3);
  for (int tier = 0; tier < 3; ++tier) {
    TestbedConfig config;
    config.target_tier = tier;
    RubbosTestbed bed(config);
    bed.start();
    auto attack = bed.make_attack(paper_attack());
    attack->start();
    bed.sim().run_for(2 * kMinute);
    p95[static_cast<std::size_t>(tier)] = bed.clients().response_times().quantile(0.95);
  }
  // MySQL (the provisioning bottleneck) is by far the most damaging target:
  // Apache and Tomcat have enough headroom that D ~ 0.1 leaves C_on above
  // the offered load (Condition 2 fails there).
  EXPECT_GT(p95[2], 4 * p95[0]);
  EXPECT_GT(p95[2], 4 * p95[1]);
}

TEST(TargetTier, NonBottleneckCouplingStillWired) {
  TestbedConfig config;
  config.target_tier = 1;
  RubbosTestbed bed(config);
  bed.target_host().set_memory_activity(bed.adversary_vm(), 0.0, 0.9);
  EXPECT_LT(bed.system().tier(1).speed_multiplier(), 0.5);
  EXPECT_DOUBLE_EQ(bed.system().tier(2).speed_multiplier(), 1.0);
}

TEST(NoisyNeighbors, BaselineSurvivesOrdinaryTenants) {
  TestbedConfig config;
  config.background_neighbors = 2;
  RubbosTestbed bed(config);
  bed.start();
  bed.sim().run_for(kMinute);
  // Neighbor noise alone must not create a long tail.
  EXPECT_LT(bed.clients().response_times().quantile(0.95), msec(100));
  EXPECT_EQ(bed.clients().dropped_attempts(), 0);
}

TEST(NoisyNeighbors, AttackStillMeetsGoalUnderNoise) {
  TestbedConfig config;
  config.background_neighbors = 2;
  RubbosTestbed bed(config);
  bed.start();
  auto attack = bed.make_attack(paper_attack());
  attack->start();
  bed.sim().run_for(3 * kMinute);
  EXPECT_GE(bed.clients().response_times().quantile(0.95), sec(std::int64_t{1}));
}

TEST(AdversarySizing, MoreVcpusDeepenBusSaturation) {
  auto d_on_with_vcpus = [](int vcpus) {
    TestbedConfig config;
    config.adversary_vcpus = vcpus;
    config.cloud = CloudProfile::kPrivateCloud;
    RubbosTestbed bed(config);
    core::MemcaConfig attack_config = paper_attack();
    attack_config.params.type = cloud::MemoryAttackType::kBusSaturate;
    auto attack = bed.make_attack(attack_config);
    bed.start();
    attack->start();
    bed.sim().run_for(0);
    return bed.coupling().capacity_multiplier();
  };
  const double d1 = d_on_with_vcpus(1);
  const double d4 = d_on_with_vcpus(4);
  EXPECT_LT(d4, d1);
  // Even a 4-vCPU streamer cannot starve the victim like the lock kernel:
  // the memory scheduler still grants the victim its weighted share.
  EXPECT_GT(d4, 0.3);
}

TEST(ElasticScaling, FloodingIsAbsorbedByScaleOut) {
  // Berkeley's prediction: elasticity serves the attack traffic. With live
  // scaling the flood's damage shrinks substantially vs the fixed fleet.
  auto run_flood = [](bool scaling) {
    RubbosTestbed bed;
    bed.start();
    monitor::ElasticPolicy policy;
    policy.provisioning_delay = sec(std::int64_t{30});
    policy.cooldown = sec(std::int64_t{30});
    policy.workers_per_scaleout = 2;
    policy.threads_per_scaleout = 0;
    std::unique_ptr<monitor::ElasticController> controller;
    if (scaling) {
      controller =
          std::make_unique<monitor::ElasticController>(bed.sim(), bed.system().tier(2));
      controller->start();
    }
    core::FloodingAttack flood(bed.sim(), bed.router(), 500.0, bed.profile(),
                               bed.fork_rng("flood"));
    flood.start();
    bed.sim().run_for(6 * kMinute);
    struct Out {
      SimTime p95;
      int scaleouts;
    };
    return Out{bed.clients().response_times().quantile(0.95),
               controller ? controller->scaleouts() : 0};
  };
  const auto fixed = run_flood(false);
  const auto elastic = run_flood(true);
  EXPECT_GT(elastic.scaleouts, 0);
  EXPECT_LT(elastic.p95, fixed.p95 / 2);
}

TEST(ElasticScaling, MemcaBypassesLiveScaling) {
  // The paper's headline: the same elastic policy that absorbs a flood
  // never even fires against MemCA, and the damage is unchanged.
  RubbosTestbed bed;
  bed.start();
  monitor::ElasticController controller(bed.sim(), bed.system().tier(2));
  controller.start();
  auto attack = bed.make_attack(paper_attack());
  attack->start();
  bed.sim().run_for(6 * kMinute);
  EXPECT_EQ(controller.scaleouts(), 0);
  EXPECT_GE(bed.clients().response_times().quantile(0.95), sec(std::int64_t{1}));
}

}  // namespace
}  // namespace memca::testbed
