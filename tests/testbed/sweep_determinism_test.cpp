// Sweep determinism: running a grid of attack-lab cells through the parallel
// sweep runner must produce results bit-identical to the sequential baseline,
// for every thread count. Each cell owns its whole world (simulator, RNG
// streams, monitors), so any diff here means a cell leaked state.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "testbed/attack_lab.h"

namespace memca::testbed {
namespace {

std::vector<AttackLabConfig> test_grid() {
  std::vector<AttackLabConfig> cells;
  for (SimTime length : {msec(200), msec(500)}) {
    for (std::uint64_t seed : {42ull, 1234ull}) {
      AttackLabConfig config;
      config.params.burst_length = length;
      config.params.burst_interval = sec(std::int64_t{2});
      config.duration = sec(std::int64_t{30});
      config.testbed.seed = seed;
      cells.push_back(config);
    }
  }
  return cells;
}

void expect_identical(const AttackLabResult& a, const AttackLabResult& b,
                      std::size_t cell) {
  EXPECT_EQ(a.d_on, b.d_on) << "cell " << cell;
  EXPECT_EQ(a.client_p50, b.client_p50) << "cell " << cell;
  EXPECT_EQ(a.client_p95, b.client_p95) << "cell " << cell;
  EXPECT_EQ(a.client_p98, b.client_p98) << "cell " << cell;
  EXPECT_EQ(a.client_p99, b.client_p99) << "cell " << cell;
  EXPECT_EQ(a.tier_p95, b.tier_p95) << "cell " << cell;
  EXPECT_EQ(a.throughput, b.throughput) << "cell " << cell;
  EXPECT_EQ(a.drops, b.drops) << "cell " << cell;
  EXPECT_EQ(a.drop_fraction, b.drop_fraction) << "cell " << cell;
  EXPECT_EQ(a.cpu_mean, b.cpu_mean) << "cell " << cell;
  EXPECT_EQ(a.cpu_max_50ms, b.cpu_max_50ms) << "cell " << cell;
  EXPECT_EQ(a.cpu_max_1s, b.cpu_max_1s) << "cell " << cell;
  EXPECT_EQ(a.cpu_max_1min, b.cpu_max_1min) << "cell " << cell;
  EXPECT_EQ(a.autoscaler_triggered, b.autoscaler_triggered) << "cell " << cell;
  EXPECT_EQ(a.mean_saturation_s, b.mean_saturation_s) << "cell " << cell;
  EXPECT_EQ(a.bursts, b.bursts) << "cell " << cell;
  EXPECT_EQ(a.model.capacity_on, b.model.capacity_on) << "cell " << cell;
  EXPECT_EQ(a.model.rho, b.model.rho) << "cell " << cell;
  EXPECT_EQ(a.model.damage_period_s, b.model.damage_period_s) << "cell " << cell;
  EXPECT_EQ(a.model.millibottleneck_s, b.model.millibottleneck_s) << "cell " << cell;
}

TEST(SweepDeterminism, ParallelMatchesSequentialBitForBit) {
  const std::vector<AttackLabConfig> grid = test_grid();

  // Sequential baseline: plain run_attack_lab calls, no runner involved.
  std::vector<AttackLabResult> baseline;
  for (const AttackLabConfig& config : grid) baseline.push_back(run_attack_lab(config));

  for (int threads : {1, 2, 4}) {
    const std::vector<AttackLabResult> swept = run_attack_lab_sweep(grid, threads);
    ASSERT_EQ(swept.size(), baseline.size()) << "threads " << threads;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      expect_identical(baseline[i], swept[i], i);
    }
  }
}

TEST(SweepDeterminism, CohortCellsBitIdenticalAcrossThreadCounts) {
  // The cohort client model must hold the same contract as the exact one:
  // a swept cohort cell is bit-identical to its sequential baseline at any
  // thread count. Cohort cells share their binomial/multinomial draws with
  // nobody — each cell owns its RNG streams like every other world object.
  std::vector<AttackLabConfig> grid = test_grid();
  for (AttackLabConfig& config : grid) {
    config.testbed.client_mode = workload::ClientMode::kCohort;
  }

  std::vector<AttackLabResult> baseline;
  for (const AttackLabConfig& config : grid) baseline.push_back(run_attack_lab(config));

  for (int threads : {1, 2, 4}) {
    const std::vector<AttackLabResult> swept = run_attack_lab_sweep(grid, threads);
    ASSERT_EQ(swept.size(), baseline.size()) << "threads " << threads;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      SCOPED_TRACE("cohort threads " + std::to_string(threads));
      expect_identical(baseline[i], swept[i], i);
    }
  }
}

TEST(SweepDeterminism, QuantizedCellsBitIdenticalAcrossThreadCounts) {
  // Quantized service (grouped completion drains) must hold the same
  // contract: each cell's batch state lives entirely inside its own world,
  // so a swept quantized cell byte-matches its sequential baseline. The
  // grid mixes exact and cohort clients so both completion tails run.
  std::vector<AttackLabConfig> grid = test_grid();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i].testbed.service_quantum_us = 100;
    if (i % 2 == 1) grid[i].testbed.client_mode = workload::ClientMode::kCohort;
  }

  std::vector<AttackLabResult> baseline;
  for (const AttackLabConfig& config : grid) baseline.push_back(run_attack_lab(config));

  for (int threads : {1, 2, 4}) {
    const std::vector<AttackLabResult> swept = run_attack_lab_sweep(grid, threads);
    ASSERT_EQ(swept.size(), baseline.size()) << "threads " << threads;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      SCOPED_TRACE("quantized threads " + std::to_string(threads));
      expect_identical(baseline[i], swept[i], i);
    }
  }
}

TEST(SweepDeterminism, RepeatedParallelRunsAgree) {
  const std::vector<AttackLabConfig> grid = test_grid();
  const std::vector<AttackLabResult> first = run_attack_lab_sweep(grid, 4);
  const std::vector<AttackLabResult> second = run_attack_lab_sweep(grid, 4);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) expect_identical(first[i], second[i], i);
}

TEST(SweepDeterminism, MergedMetricsRegistryBytesIdenticalAcrossThreadCounts) {
  // The metrics determinism oracle: run the same grid with per-cell
  // registries on, merge the cell registries in cell order, and serialize
  // with doubles as raw bit patterns. Any scheduling leak — a counter
  // bumped from the wrong cell, a series sample out of order, a probe
  // touching shared state — changes the bytes.
  std::vector<AttackLabConfig> grid = test_grid();
  for (AttackLabConfig& config : grid) config.testbed.metrics = true;

  auto merged_bytes = [&](int threads) {
    std::vector<AttackLabResult> results = run_attack_lab_sweep(grid, threads);
    const auto merged = merge_sweep_registries(results);
    EXPECT_NE(merged, nullptr);
    std::ostringstream out;
    if (merged != nullptr) merged->serialize(out);
    return out.str();
  };

  const std::string sequential = merged_bytes(1);
  EXPECT_FALSE(sequential.empty());
  for (int threads : {2, 4}) {
    EXPECT_EQ(sequential, merged_bytes(threads)) << "threads " << threads;
  }
}

TEST(SweepDeterminism, PerCellRegistriesMatchSequentialRuns) {
  // Each swept cell's own registry must also byte-match a plain
  // run_attack_lab call with the same config.
  std::vector<AttackLabConfig> grid = test_grid();
  for (AttackLabConfig& config : grid) config.testbed.metrics = true;

  auto bytes = [](const metrics::Registry* registry) {
    std::ostringstream out;
    if (registry != nullptr) registry->serialize(out);
    return out.str();
  };

  const std::vector<AttackLabResult> swept = run_attack_lab_sweep(grid, 4);
  ASSERT_EQ(swept.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const AttackLabResult baseline = run_attack_lab(grid[i]);
    EXPECT_EQ(bytes(baseline.registry.get()), bytes(swept[i].registry.get()))
        << "cell " << i;
  }
}

}  // namespace
}  // namespace memca::testbed
