// End-to-end properties of the full reproduction: the figure-level claims
// of the paper expressed as assertions over the shared testbed.
#include <gtest/gtest.h>

#include "cloud/llc.h"
#include "core/memca.h"
#include "monitor/autoscaler.h"
#include "monitor/detector.h"
#include "testbed/rubbos_testbed.h"

namespace memca::testbed {
namespace {

struct AttackedRun {
  std::unique_ptr<RubbosTestbed> bed;
  std::unique_ptr<core::MemcaAttack> attack;
};

AttackedRun run_paper_attack(CloudProfile cloud, SimTime duration,
                             cloud::MemoryAttackType type = cloud::MemoryAttackType::kMemoryLock) {
  TestbedConfig config;
  config.cloud = cloud;
  AttackedRun run;
  run.bed = std::make_unique<RubbosTestbed>(config);
  run.bed->start();
  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  memca.params.type = type;
  run.attack = run.bed->make_attack(memca);
  run.attack->start();
  run.bed->sim().run_for(duration);
  return run;
}

TEST(Integration, Fig2TailAmplificationOrdering) {
  auto run = run_paper_attack(CloudProfile::kAmazonEc2, 3 * kMinute);
  auto& bed = *run.bed;
  for (double q : {0.9, 0.95, 0.98}) {
    const SimTime mysql = bed.system().tier(2).residence_time().quantile(q);
    const SimTime tomcat = bed.system().tier(1).residence_time().quantile(q);
    const SimTime apache = bed.system().tier(0).residence_time().quantile(q);
    const SimTime client = bed.clients().response_times().quantile(q);
    EXPECT_LE(mysql, tomcat) << "q=" << q;
    EXPECT_LE(tomcat, apache) << "q=" << q;
    EXPECT_LE(apache, client) << "q=" << q;
  }
  // Headline damage: client p95 > 1 s.
  EXPECT_GE(bed.clients().response_times().quantile(0.95), sec(std::int64_t{1}));
}

TEST(Integration, Fig2HoldsInBothClouds) {
  for (CloudProfile cloud : {CloudProfile::kAmazonEc2, CloudProfile::kPrivateCloud}) {
    auto run = run_paper_attack(cloud, 3 * kMinute);
    EXPECT_GE(run.bed->clients().response_times().quantile(0.95), sec(std::int64_t{1}))
        << to_string(cloud);
  }
}

TEST(Integration, TailIsNonlinearInPercentile) {
  // "Response time of each tier has a nonlinear tail trend as percentile
  // increases": the p99/p50 ratio is far above the p50/p1-style linear
  // growth — check client RT curvature.
  auto run = run_paper_attack(CloudProfile::kAmazonEc2, 3 * kMinute);
  const auto& rt = run.bed->clients().response_times();
  const double p50 = static_cast<double>(rt.quantile(0.50));
  const double p90 = static_cast<double>(rt.quantile(0.90));
  const double p99 = static_cast<double>(rt.quantile(0.99));
  // Per-percentile slope steepens sharply toward the tail.
  const double slope_mid = (p90 - p50) / 40.0;
  const double slope_tail = (p99 - p90) / 9.0;
  EXPECT_GT(slope_tail, 3.0 * slope_mid);
}

TEST(Integration, Fig9TransientCpuSaturations) {
  auto run = run_paper_attack(CloudProfile::kAmazonEc2, kMinute);
  const auto& cpu = run.bed->mysql_cpu().series();
  // Transient saturations exist at 50 ms granularity...
  EXPECT_GT(cpu.count_above(0.98), 10u);
  // ...but the average stays moderate.
  EXPECT_LT(cpu.mean(), 0.85);
}

TEST(Integration, Fig9QueuePropagationDuringBurst) {
  auto run = run_paper_attack(CloudProfile::kAmazonEc2, kMinute);
  auto& bed = *run.bed;
  // At some sampled instant every tier hit its thread limit.
  EXPECT_GE(bed.queue_gauge(2).series().max(),
            static_cast<double>(bed.config().mysql.threads));
  EXPECT_GE(bed.queue_gauge(1).series().max(),
            static_cast<double>(bed.config().tomcat.threads));
  EXPECT_GE(bed.queue_gauge(0).series().max(),
            static_cast<double>(bed.config().apache.threads));
}

TEST(Integration, Fig10AutoScalingNeverTriggers) {
  auto run = run_paper_attack(CloudProfile::kAmazonEc2, 3 * kMinute);
  const auto decision = monitor::evaluate_autoscaler(run.bed->mysql_cpu().series(),
                                                     monitor::AutoScalerConfig{});
  EXPECT_FALSE(decision.triggered);
  // 1-second monitoring also fails to trigger a (realistic) alarm requiring
  // two consecutive breaching periods: the ON-OFF pattern guarantees every
  // hot second is followed by a quiet one (Fig. 10b).
  monitor::AutoScalerConfig one_second;
  one_second.sampling_period = sec(std::int64_t{1});
  one_second.consecutive_periods = 2;
  EXPECT_FALSE(
      monitor::evaluate_autoscaler(run.bed->mysql_cpu().series(), one_second).triggered);
  // Only 50 ms monitoring reveals the saturations (Fig. 10c).
  EXPECT_TRUE(
      monitor::detect_threshold(run.bed->mysql_cpu().series(), msec(50), 0.85).detected);
}

TEST(Integration, Fig11LlcDetectionAsymmetry) {
  // Bus-saturation bursts leave a periodic LLC-miss pattern; memory-lock
  // bursts do not — run the LLC model against each attack's real schedule.
  for (auto type :
       {cloud::MemoryAttackType::kBusSaturate, cloud::MemoryAttackType::kMemoryLock}) {
    auto run = run_paper_attack(CloudProfile::kPrivateCloud, 2 * kMinute, type);
    const auto& windows = run.attack->program().windows();
    ASSERT_GT(windows.size(), 10u);
    auto overlap = [&](SimTime start, SimTime end) {
      SimTime total = 0;
      for (const auto& w : windows) {
        const SimTime lo = std::max(start, w.start);
        const SimTime hi = std::min(end, w.end);
        if (hi > lo) total += hi - lo;
      }
      return static_cast<double>(total) / static_cast<double>(end - start);
    };
    auto none = [](SimTime, SimTime) { return 0.0; };
    cloud::LlcModel llc;
    Rng rng = run.bed->fork_rng("llc");
    const bool is_bus = type == cloud::MemoryAttackType::kBusSaturate;
    const TimeSeries misses =
        llc.sample_series(2 * kMinute, msec(100),
                          is_bus ? std::function<double(SimTime, SimTime)>(overlap) : none,
                          is_bus ? none : std::function<double(SimTime, SimTime)>(overlap),
                          rng);
    const auto detection = monitor::detect_periodicity(misses, msec(100), 5, 60);
    if (is_bus) {
      EXPECT_TRUE(detection.periodic);
      EXPECT_EQ(detection.best_period, sec(std::int64_t{2}));
    } else {
      EXPECT_FALSE(detection.periodic);
    }
  }
}

TEST(Integration, ThroughputSurvivesTheAttack) {
  // MemCA is not a throughput attack: goodput stays near the clean rate
  // (that is exactly why volume-based DoS defenses miss it).
  auto run = run_paper_attack(CloudProfile::kAmazonEc2, 3 * kMinute);
  EXPECT_GT(run.bed->clients().throughput(), 450.0);
}

}  // namespace
}  // namespace memca::testbed
