// End-to-end coverage of the memca_trace subsystem on the calibrated
// testbed: span-stream completeness, exact latency decomposition, the
// paper's retransmission-dominated-tail claim, and bit-identical tail
// attribution across sweep thread counts.
#include <gtest/gtest.h>

#include <tuple>

#include "testbed/attack_lab.h"
#include "trace/attributor.h"

// Recording compiles out to nothing under MEMCA_TRACE=OFF; these tests
// only apply when it is compiled in.
#ifdef MEMCA_TRACE_DISABLED
#define MEMCA_SKIP_IF_TRACE_DISABLED() \
  GTEST_SKIP() << "tracing compiled out (MEMCA_TRACE=OFF)"
#else
#define MEMCA_SKIP_IF_TRACE_DISABLED()
#endif

namespace memca::testbed {
namespace {

core::MemcaConfig calibrated_attack() {
  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  memca.params.type = cloud::MemoryAttackType::kMemoryLock;
  return memca;
}

TEST(TraceIntegration, RecordsTheFullCausalChain) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TestbedConfig config;
  config.trace = true;
  RubbosTestbed bed(config);
  bed.start();
  auto attack = bed.make_attack(calibrated_attack());
  attack->start();
  bed.sim().run_for(sec(std::int64_t{40}));
  attack->stop();

  ASSERT_NE(bed.trace(), nullptr);
  const trace::TraceRecorder& recorder = *bed.trace();
  ASSERT_GT(recorder.size(), 0u);
  EXPECT_FALSE(recorder.truncated());

  std::int64_t bursts_on = 0, bursts_off = 0, capacity_marks = 0, drops = 0,
               retransmits = 0, completes = 0;
  SimTime last_time = 0;
  recorder.for_each([&](const trace::TraceEvent& ev) {
    EXPECT_GE(ev.time, last_time);  // causal (time-nondecreasing) stream
    last_time = ev.time;
    switch (ev.kind) {
      case trace::EventKind::kBurstOn: ++bursts_on; break;
      case trace::EventKind::kBurstOff: ++bursts_off; break;
      case trace::EventKind::kCapacity: ++capacity_marks; break;
      case trace::EventKind::kDrop: ++drops; break;
      case trace::EventKind::kRetransmit: ++retransmits; break;
      case trace::EventKind::kComplete: ++completes; break;
      default: break;
    }
  });
  // Every link of the paper's causal chain left events: burst -> capacity
  // dip -> drop -> retransmission -> completion.
  EXPECT_EQ(bursts_on, attack->scheduler().bursts_fired());
  EXPECT_GT(bursts_off, 0);
  EXPECT_GE(capacity_marks, 2 * bursts_off);  // a dip and a recovery per burst
  EXPECT_EQ(drops, bed.system().dropped());
  EXPECT_GT(retransmits, 0);
  EXPECT_EQ(completes, bed.clients().completed());
}

TEST(TraceIntegration, DecompositionIsExactForEveryRequest) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  TestbedConfig config;
  config.trace = true;
  config.num_users = 1000;  // lighter load, same mechanics
  RubbosTestbed bed(config);
  bed.start();
  auto attack = bed.make_attack(calibrated_attack());
  attack->start();
  bed.sim().run_for(sec(std::int64_t{30}));
  attack->stop();

  trace::TailAttributor attributor(*bed.trace(), bed.system().depth());
  ASSERT_EQ(static_cast<std::int64_t>(attributor.requests().size()),
            bed.clients().completed());
  for (const trace::RequestBreakdown& r : attributor.requests()) {
    // Replies propagate instantaneously in the n-tier model, so queue wait +
    // service + rpc hold + RTO wait must cover the client-observed latency
    // exactly — any nonzero slack means a span was lost or double-counted.
    EXPECT_EQ(r.slack, 0) << "request " << r.final_request;
    EXPECT_EQ(r.total, r.queue_wait_total() + r.service_total() + r.rpc_hold_total() +
                           r.rto_wait);
    EXPECT_LE(r.degraded_service, r.service_total());
    EXPECT_GE(r.attempts, 1);
  }
}

TEST(TraceIntegration, AttackTailIsRetransmissionDominated) {
  MEMCA_SKIP_IF_TRACE_DISABLED();
  AttackLabConfig config;
  config.testbed.trace = true;
  config.duration = 90 * kSecond;
  config.params.burst_length = msec(500);
  config.params.burst_interval = sec(std::int64_t{2});
  config.params.type = cloud::MemoryAttackType::kMemoryLock;
  const AttackLabResult result = run_attack_lab(config);

  // Paper Section III: the >1 s client tail under the calibrated attack is
  // manufactured by TCP retransmissions, not slow service.
  ASSERT_GT(result.tail.tail_count, 0);
  EXPECT_GT(result.tail.retrans_dominated_share(), 0.5);
  EXPECT_GT(result.tail.rto_wait_us,
            result.tail.queue_wait_us + result.tail.service_us + result.tail.rpc_hold_us);
}

TEST(TraceIntegration, UntracedRunsCarryNoRecorderAndEmptySummary) {
  AttackLabConfig config;
  config.duration = sec(std::int64_t{5});
  const AttackLabResult result = run_attack_lab(config);
  EXPECT_EQ(result.tail.tail_count, 0);
  EXPECT_EQ(result.tail.completed, 0);

  RubbosTestbed bed(TestbedConfig{});
  EXPECT_EQ(bed.trace(), nullptr);
}

auto summary_tuple(const trace::TailSummary& s) {
  return std::tuple{s.threshold, s.completed,  s.abandoned,  s.tail_count,
                    s.tail_retrans_dominated,  s.queue_wait_us, s.service_us,
                    s.degraded_us, s.rpc_hold_us, s.rto_wait_us, s.slack_us};
}

TEST(TraceIntegration, TailAttributionIsBitIdenticalAcrossSweepThreads) {
  auto make_cells = [] {
    std::vector<AttackLabConfig> cells;
    for (std::uint64_t seed : {42u, 1337u, 2026u}) {
      AttackLabConfig config;
      config.testbed.trace = true;
      config.testbed.seed = seed;
      config.testbed.num_users = 1200;
      config.duration = sec(std::int64_t{20});
      config.params.burst_length = msec(500);
      config.params.burst_interval = sec(std::int64_t{2});
      cells.push_back(config);
    }
    return cells;
  };
  const auto sequential = run_attack_lab_sweep(make_cells(), 1);
  const auto parallel = run_attack_lab_sweep(make_cells(), 4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(summary_tuple(sequential[i].tail), summary_tuple(parallel[i].tail))
        << "cell " << i;
    EXPECT_EQ(sequential[i].drops, parallel[i].drops);
  }
}

}  // namespace
}  // namespace memca::testbed
