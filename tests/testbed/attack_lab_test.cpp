#include "testbed/attack_lab.h"

#include <gtest/gtest.h>

namespace memca::testbed {
namespace {

TEST(AttackLab, CleanRunHasNoDamage) {
  AttackLabConfig config;
  config.attack_enabled = false;
  config.duration = kMinute;
  const AttackLabResult r = run_attack_lab(config);
  EXPECT_DOUBLE_EQ(r.d_on, 1.0);
  EXPECT_EQ(r.drops, 0);
  EXPECT_LT(r.client_p95, msec(100));
  EXPECT_EQ(r.bursts, 0);
  EXPECT_FALSE(r.autoscaler_triggered);
  EXPECT_NEAR(r.throughput, 500.0, 50.0);
}

TEST(AttackLab, PaperParametersProduceHeadlineNumbers) {
  AttackLabConfig config;
  config.params.burst_length = msec(500);
  config.params.burst_interval = sec(std::int64_t{2});
  config.duration = 2 * kMinute;
  const AttackLabResult r = run_attack_lab(config);
  EXPECT_LT(r.d_on, 0.2);
  EXPECT_GE(r.client_p95, sec(std::int64_t{1}));
  EXPECT_GT(r.drop_fraction, 0.03);
  EXPECT_FALSE(r.autoscaler_triggered);
  EXPECT_GT(r.mean_saturation_s, 0.4);
  EXPECT_LT(r.mean_saturation_s, 1.0);
  EXPECT_TRUE(r.model.condition1);
  EXPECT_TRUE(r.model.condition2);
  ASSERT_EQ(r.tier_p95.size(), 3u);
  EXPECT_LE(r.tier_p95[2], r.tier_p95[1]);
  EXPECT_LE(r.tier_p95[1], r.tier_p95[0]);
}

TEST(AttackLab, DeterministicAcrossCalls) {
  AttackLabConfig config;
  config.duration = kMinute;
  const AttackLabResult a = run_attack_lab(config);
  const AttackLabResult b = run_attack_lab(config);
  EXPECT_EQ(a.client_p95, b.client_p95);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_DOUBLE_EQ(a.cpu_mean, b.cpu_mean);
}

TEST(AttackLab, JitterChangesBurstTimesNotDamage) {
  AttackLabConfig plain;
  plain.duration = 2 * kMinute;
  AttackLabConfig jittered = plain;
  jittered.jitter = 0.3;
  const AttackLabResult a = run_attack_lab(plain);
  const AttackLabResult b = run_attack_lab(jittered);
  // Similar damage envelope (within a factor of two in drop fraction).
  EXPECT_GT(b.drop_fraction, 0.3 * a.drop_fraction);
  EXPECT_LT(b.drop_fraction, 3.0 * a.drop_fraction);
}

TEST(AttackLab, CountsBursts) {
  AttackLabConfig config;
  config.duration = kMinute;
  config.params.burst_interval = sec(std::int64_t{4});
  const AttackLabResult r = run_attack_lab(config);
  EXPECT_NEAR(static_cast<double>(r.bursts), 16.0, 1.0);
}

}  // namespace
}  // namespace memca::testbed
