// Validates the analytic attack model (Eq. 4–10) against the discrete-event
// simulation on the shared RUBBoS calibration: the equations should predict
// the simulated fill times, drop fraction and millibottleneck length to
// first order. Tolerances are loose (the model ignores service-time
// variance, in-flight work and concurrency overhead — deliberately, as the
// paper does).
#include <gtest/gtest.h>

#include "core/analytic_model.h"
#include "monitor/sampler.h"
#include "testbed/rubbos_testbed.h"

namespace memca::testbed {
namespace {

struct AttackRun {
  double measured_d = 1.0;
  double drop_fraction = 0.0;
  double mean_fill_to_full_s = 0.0;  // burst start -> front tier full
  double mean_saturation_s = 0.0;    // contiguous MySQL CPU saturation
  core::AttackModelOutputs model;
};

AttackRun run_attack(SimTime burst_length, SimTime interval) {
  RubbosTestbed bed;
  bed.start();

  // Fine gauge on the front tier to time cross-tier fill-up.
  monitor::GaugeSampler front_gauge(
      bed.sim(), [&] { return static_cast<double>(bed.system().tier(0).resident()); },
      msec(5));
  front_gauge.start();

  core::MemcaConfig config;
  config.enable_controller = false;
  config.params.burst_length = burst_length;
  config.params.burst_interval = interval;
  auto attack = bed.make_attack(config);
  attack->start();
  bed.sim().run_for(0);  // let the first burst switch the multiplier on
  AttackRun run;
  run.measured_d = bed.coupling().capacity_multiplier();
  bed.sim().run_for(3 * kMinute);
  attack->stop();

  // Measured drop fraction among all client attempts.
  const double attempts = static_cast<double>(bed.clients().completed() +
                                              bed.clients().dropped_attempts());
  run.drop_fraction = static_cast<double>(bed.clients().dropped_attempts()) / attempts;

  // Mean time from burst start to a full front tier.
  const auto& windows = attack->program().windows();
  const auto& gauge = front_gauge.series().samples();
  double fill_sum = 0.0;
  int fill_count = 0;
  const double full = static_cast<double>(bed.config().apache.threads);
  for (const auto& w : windows) {
    for (const Sample& s : gauge) {
      if (s.time < w.start) continue;
      if (s.time > w.start + interval) break;
      if (s.value >= full) {
        fill_sum += to_seconds(s.time - w.start);
        ++fill_count;
        break;
      }
    }
  }
  if (fill_count > 0) run.mean_fill_to_full_s = fill_sum / fill_count;

  // Mean contiguous MySQL CPU saturation length (the millibottleneck).
  const auto& cpu = bed.mysql_cpu().series().samples();
  double sat_sum = 0.0;
  int sat_runs = 0;
  int run_len = 0;
  for (const Sample& s : cpu) {
    if (s.value > 0.98) {
      ++run_len;
    } else if (run_len > 0) {
      sat_sum += static_cast<double>(run_len) * 0.05;
      ++sat_runs;
      run_len = 0;
    }
  }
  if (sat_runs > 0) run.mean_saturation_s = sat_sum / sat_runs;

  // The matching analytic prediction, using the measured D.
  core::AttackModelInputs inputs;
  inputs.tiers = bed.model_params();
  inputs.degradation_index = run.measured_d;
  inputs.burst_length = burst_length;
  inputs.burst_interval = interval;
  run.model = core::evaluate_attack_model(inputs);
  return run;
}

TEST(ModelVsSim, PaperParametersFillTime) {
  const AttackRun run = run_attack(msec(500), sec(std::int64_t{2}));
  ASSERT_TRUE(run.model.condition2);
  ASSERT_GT(run.mean_fill_to_full_s, 0.0);
  // Cross-tier fill-up: model vs simulation within 40%.
  EXPECT_NEAR(run.mean_fill_to_full_s / run.model.total_fill_time_s, 1.0, 0.4);
}

TEST(ModelVsSim, PaperParametersDropFraction) {
  const AttackRun run = run_attack(msec(500), sec(std::int64_t{2}));
  ASSERT_GT(run.model.rho, 0.0);
  // Requests dropped ~ those arriving during hold-on: within 50% of rho.
  EXPECT_NEAR(run.drop_fraction / run.model.rho, 1.0, 0.5);
}

TEST(ModelVsSim, PaperParametersMillibottleneck) {
  const AttackRun run = run_attack(msec(500), sec(std::int64_t{2}));
  ASSERT_GT(run.mean_saturation_s, 0.0);
  // Saturation period ~ L + drain (Eq. 10), within 30%.
  EXPECT_NEAR(run.mean_saturation_s / run.model.millibottleneck_s, 1.0, 0.3);
  // And comfortably sub-second: the stealth property.
  EXPECT_LT(run.mean_saturation_s, 1.0);
}

TEST(ModelVsSim, ShortBurstCausesNoDrops) {
  // A burst shorter than the fill time never reaches hold-on (Eq. 7): the
  // model predicts rho = 0 and the simulation should drop (almost) nothing.
  const AttackRun run = run_attack(msec(80), sec(std::int64_t{2}));
  EXPECT_DOUBLE_EQ(run.model.damage_period_s, 0.0);
  EXPECT_LT(run.drop_fraction, 0.01);
}

TEST(ModelVsSim, LongerBurstsScaleDamage) {
  const AttackRun short_run = run_attack(msec(400), sec(std::int64_t{2}));
  const AttackRun long_run = run_attack(msec(700), sec(std::int64_t{2}));
  EXPECT_GT(long_run.model.rho, short_run.model.rho);
  EXPECT_GT(long_run.drop_fraction, short_run.drop_fraction);
}

}  // namespace
}  // namespace memca::testbed
