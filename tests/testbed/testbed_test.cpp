#include "testbed/rubbos_testbed.h"

#include <gtest/gtest.h>

namespace memca::testbed {
namespace {

TEST(RubbosTestbed, ConstructionWiresEverything) {
  RubbosTestbed bed;
  EXPECT_EQ(bed.system().num_tiers(), 3u);
  EXPECT_TRUE(bed.system().satisfies_condition1());
  EXPECT_EQ(bed.mysql_host().vm_count(), 2u);  // mysql + adversary
  EXPECT_NE(bed.mysql_vm(), bed.adversary_vm());
  EXPECT_DOUBLE_EQ(bed.coupling().capacity_multiplier(), 1.0);
}

TEST(RubbosTestbed, BaselineCalibration) {
  RubbosTestbed bed;
  bed.start();
  bed.sim().run_for(kMinute);
  // ~500 req/s with 3500 users at 7 s think time.
  EXPECT_NEAR(bed.clients().throughput(), 500.0, 40.0);
  // MySQL is the bottleneck at moderate utilization (the paper's setup).
  EXPECT_GT(bed.mysql_cpu().series().mean(), 0.35);
  EXPECT_LT(bed.mysql_cpu().series().mean(), 0.70);
  // No drops in the unattacked system.
  EXPECT_EQ(bed.clients().dropped_attempts(), 0);
  // Every request responded within ~100 ms (paper Section II-C).
  EXPECT_LT(bed.clients().response_times().quantile(0.99), msec(100));
}

TEST(RubbosTestbed, AttackCouplingThrottlesMysqlTier) {
  RubbosTestbed bed;
  bed.mysql_host().set_memory_activity(bed.adversary_vm(), 0.0, 0.9);
  // EC2 hosts have twice the private cloud's bandwidth: D ~ 0.3 here.
  EXPECT_LT(bed.system().back_tier().speed_multiplier(), 0.35);
  bed.mysql_host().clear_memory_activity(bed.adversary_vm());
  EXPECT_DOUBLE_EQ(bed.system().back_tier().speed_multiplier(), 1.0);
}

TEST(RubbosTestbed, PrivateCloudDegradesDeeperThanEc2) {
  // The private host has half the memory bandwidth of the EC2 node, so the
  // same lock attack yields a smaller D (deeper degradation).
  TestbedConfig priv;
  priv.cloud = CloudProfile::kPrivateCloud;
  RubbosTestbed private_bed(priv);
  TestbedConfig ec2;
  ec2.cloud = CloudProfile::kAmazonEc2;
  RubbosTestbed ec2_bed(ec2);

  private_bed.mysql_host().set_memory_activity(private_bed.adversary_vm(), 0.0, 0.9);
  ec2_bed.mysql_host().set_memory_activity(ec2_bed.adversary_vm(), 0.0, 0.9);
  EXPECT_LT(private_bed.coupling().capacity_multiplier(),
            ec2_bed.coupling().capacity_multiplier());
}

TEST(RubbosTestbed, ModelParamsMatchCalibration) {
  RubbosTestbed bed;
  const auto params = bed.model_params();
  ASSERT_EQ(params.size(), 3u);
  EXPECT_DOUBLE_EQ(params[0].queue_size, 100.0);
  EXPECT_DOUBLE_EQ(params[1].queue_size, 60.0);
  EXPECT_DOUBLE_EQ(params[2].queue_size, 30.0);
  EXPECT_NEAR(params[2].arrival_rate, 500.0, 1.0);
  // MySQL capacity ~ 2 workers / ~2 ms demand.
  EXPECT_GT(params[2].capacity_off, 700.0);
  EXPECT_LT(params[2].capacity_off, 1300.0);
  // Upstream tiers have spare capacity.
  EXPECT_GT(params[1].capacity_off, params[2].capacity_off);
  EXPECT_GT(params[0].capacity_off, params[1].capacity_off);
}

TEST(RubbosTestbed, QueueGaugesSampleAllTiers) {
  RubbosTestbed bed;
  bed.start();
  bed.sim().run_for(sec(std::int64_t{5}));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(bed.queue_gauge(i).series().size(), 90u);
  }
}

TEST(RubbosTestbed, SeedChangesRun) {
  TestbedConfig a;
  a.seed = 1;
  TestbedConfig b;
  b.seed = 2;
  RubbosTestbed bed_a(a);
  RubbosTestbed bed_b(b);
  bed_a.start();
  bed_b.start();
  bed_a.sim().run_for(sec(std::int64_t{30}));
  bed_b.sim().run_for(sec(std::int64_t{30}));
  EXPECT_NE(bed_a.clients().response_times().quantile(0.9),
            bed_b.clients().response_times().quantile(0.9));
}

TEST(RubbosTestbed, ForkRngIsStable) {
  RubbosTestbed bed;
  Rng a = bed.fork_rng("x");
  Rng b = bed.fork_rng("x");
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

}  // namespace
}  // namespace memca::testbed
