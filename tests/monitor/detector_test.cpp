#include "monitor/detector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace memca::monitor {
namespace {

TimeSeries burst_series(SimTime duration, SimTime period, SimTime on, double peak,
                        double base, double noise_cv = 0.0, std::uint64_t seed = 1) {
  TimeSeries ts;
  Rng rng(seed);
  for (SimTime t = 0; t < duration; t += msec(50)) {
    double v = (t % period) < on ? peak : base;
    if (noise_cv > 0.0) v = std::max(0.0, rng.normal(v, noise_cv * v));
    ts.append(t, v);
  }
  return ts;
}

TEST(ThresholdDetector, GranularityDecidesVisibility) {
  const TimeSeries fine = burst_series(2 * kMinute, sec(std::int64_t{2}), msec(500), 1.0, 0.5);
  EXPECT_TRUE(detect_threshold(fine, msec(50), 0.85).detected);
  EXPECT_FALSE(detect_threshold(fine, kMinute, 0.85).detected);
}

TEST(ThresholdDetector, OneSecondGranularityIsBorderline) {
  // 500 ms at 100% + 500 ms at 50% in a second: 75% average — invisible at
  // an 85% threshold even at 1 s granularity (the Fig. 10b observation).
  const TimeSeries fine = burst_series(2 * kMinute, sec(std::int64_t{2}), msec(500), 1.0, 0.5);
  EXPECT_FALSE(detect_threshold(fine, sec(std::int64_t{1}), 0.85).detected);
}

TEST(ThresholdDetector, CountsAlarmWindows) {
  const TimeSeries fine = burst_series(sec(std::int64_t{10}), sec(std::int64_t{2}),
                                       msec(500), 1.0, 0.2);
  const ThresholdDetection d = detect_threshold(fine, msec(50), 0.9);
  EXPECT_TRUE(d.detected);
  // 10 samples per 500 ms burst, 5 bursts.
  EXPECT_EQ(d.alarm_windows, 50u);
  EXPECT_EQ(d.total_windows, 200u);
  EXPECT_EQ(d.first_alarm, 0);
  EXPECT_DOUBLE_EQ(d.max_observed, 1.0);
}

TEST(ThresholdDetector, BruteForceVisibleAtAnyGranularity) {
  TimeSeries fine;
  for (SimTime t = 0; t < 3 * kMinute; t += msec(50)) fine.append(t, 0.97);
  EXPECT_TRUE(detect_threshold(fine, msec(50), 0.85).detected);
  EXPECT_TRUE(detect_threshold(fine, sec(std::int64_t{1}), 0.85).detected);
  EXPECT_TRUE(detect_threshold(fine, kMinute, 0.85).detected);
}

TEST(PeriodicityDetector, FindsAttackInterval) {
  // 2 s burst interval, 50 ms samples -> lag 40.
  const TimeSeries series = burst_series(2 * kMinute, sec(std::int64_t{2}), msec(500),
                                         16.0, 2.0, 0.1, 3);
  const PeriodicityDetection d = detect_periodicity(series, msec(50), 5, 100);
  EXPECT_TRUE(d.periodic);
  EXPECT_EQ(d.best_lag, 40u);
  EXPECT_EQ(d.best_period, sec(std::int64_t{2}));
}

TEST(PeriodicityDetector, FlatNoiseIsNotPeriodic) {
  TimeSeries series;
  Rng rng(5);
  for (SimTime t = 0; t < 2 * kMinute; t += msec(50)) {
    series.append(t, rng.normal(10.0, 1.0));
  }
  const PeriodicityDetection d = detect_periodicity(series, msec(50), 5, 100);
  EXPECT_FALSE(d.periodic);
}

TEST(PeriodicityDetector, ShortSeriesIsNotPeriodic) {
  // Fewer than lag+2 samples cannot support an autocorrelation estimate.
  TimeSeries series;
  for (int i = 0; i < 3; ++i) series.append(msec(50 * i), static_cast<double>(i % 2));
  const PeriodicityDetection d = detect_periodicity(series, msec(50), 2, 100);
  EXPECT_FALSE(d.periodic);
}

TEST(PeriodicityDetector, ThresholdTunesSensitivity) {
  const TimeSeries series = burst_series(2 * kMinute, sec(std::int64_t{2}), msec(500),
                                         16.0, 2.0, 0.5, 7);
  const PeriodicityDetection loose = detect_periodicity(series, msec(50), 5, 100, 0.1);
  const PeriodicityDetection strict = detect_periodicity(series, msec(50), 5, 100, 0.99);
  EXPECT_TRUE(loose.periodic);
  EXPECT_FALSE(strict.periodic);
}

TEST(BurstinessIndex, DistinguishesOnOffFromSteady) {
  const TimeSeries bursty = burst_series(kMinute, sec(std::int64_t{2}), msec(200), 16.0, 2.0);
  TimeSeries steady;
  for (SimTime t = 0; t < kMinute; t += msec(50)) steady.append(t, 5.0);
  EXPECT_GT(burstiness_index(bursty), 3.0);
  EXPECT_NEAR(burstiness_index(steady), 1.0, 1e-9);
}

TEST(BurstinessIndex, TinySeriesDefaultsToOne) {
  TimeSeries ts;
  ts.append(0, 1.0);
  EXPECT_DOUBLE_EQ(burstiness_index(ts), 1.0);
}

}  // namespace
}  // namespace memca::monitor
