#include "monitor/spectral.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"

namespace memca::monitor {
namespace {

TimeSeries sinusoid(std::size_t period, std::size_t n, double amplitude = 1.0,
                    double noise = 0.0, std::uint64_t seed = 1) {
  TimeSeries ts;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = amplitude * std::sin(2.0 * std::numbers::pi *
                                          static_cast<double>(i) / static_cast<double>(period));
    ts.append(msec(static_cast<std::int64_t>(50 * i)), v + rng.normal(0.0, noise));
  }
  return ts;
}

TEST(Spectral, GoertzelPeaksAtTruePeriod) {
  const TimeSeries ts = sinusoid(40, 2000);
  const double at_truth = goertzel_power(ts, 40);
  EXPECT_GT(at_truth, 10.0 * goertzel_power(ts, 20));
  EXPECT_GT(at_truth, 10.0 * goertzel_power(ts, 55));
}

TEST(Spectral, DetectsCleanPeriodicSignal) {
  const TimeSeries ts = sinusoid(40, 2000, 1.0, 0.1, 2);
  const SpectralDetection d = detect_spectral(ts, msec(50), 10, 80);
  EXPECT_TRUE(d.periodic);
  EXPECT_EQ(d.best_period_samples, 40u);
  EXPECT_EQ(d.best_period, sec(std::int64_t{2}));
}

TEST(Spectral, DetectsOnOffBurstTrain) {
  // MemCA-like rectangular pulses, 500 ms ON every 2 s at 50 ms sampling.
  TimeSeries ts;
  Rng rng(3);
  for (int i = 0; i < 3600; ++i) {
    const double v = (i % 40) < 10 ? 1.0 : 0.0;
    ts.append(msec(50 * i), v + rng.normal(0.0, 0.05));
  }
  const SpectralDetection d = detect_spectral(ts, msec(50), 10, 80);
  EXPECT_TRUE(d.periodic);
  EXPECT_EQ(d.best_period_samples, 40u);
}

TEST(Spectral, WhiteNoiseIsNotPeriodic) {
  TimeSeries ts;
  Rng rng(4);
  for (int i = 0; i < 3600; ++i) ts.append(msec(50 * i), rng.normal(1.0, 0.3));
  const SpectralDetection d = detect_spectral(ts, msec(50), 10, 80);
  EXPECT_FALSE(d.periodic);
}

TEST(Spectral, ShortSeriesIsNotPeriodic) {
  const TimeSeries ts = sinusoid(40, 30);
  EXPECT_FALSE(detect_spectral(ts, msec(50), 10, 80).periodic);
}

TEST(Spectral, HeavyJitterDefeatsDetection) {
  // Pulses with uniformly jittered gaps (+/- 50%) lose their spectral line.
  TimeSeries ts;
  Rng rng(5);
  std::int64_t next_on = 0;
  std::int64_t remaining_on = 0;
  for (int i = 0; i < 3600; ++i) {
    if (i >= next_on && remaining_on == 0) {
      remaining_on = 10;
      next_on = i + rng.uniform_int(20, 60);
    }
    double v = 0.0;
    if (remaining_on > 0) {
      v = 1.0;
      --remaining_on;
    }
    ts.append(msec(50 * i), v + rng.normal(0.0, 0.05));
  }
  const SpectralDetection d = detect_spectral(ts, msec(50), 10, 80);
  EXPECT_FALSE(d.periodic);
}

TEST(Spectral, ThresholdControlsSensitivity) {
  const TimeSeries ts = sinusoid(40, 2000, 1.0, 0.5, 6);
  EXPECT_TRUE(detect_spectral(ts, msec(50), 10, 80, 2.0).periodic);
  EXPECT_FALSE(detect_spectral(ts, msec(50), 10, 80, 1e9).periodic);
}

}  // namespace
}  // namespace memca::monitor
