#include "monitor/cusum.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace memca::monitor {
namespace {

TimeSeries flat_series(double level, std::size_t n, double noise = 0.0,
                       std::uint64_t seed = 1) {
  TimeSeries ts;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    ts.append(sec(static_cast<std::int64_t>(i)), rng.normal(level, noise));
  }
  return ts;
}

TEST(Cusum, FlatSeriesNeverAlarms) {
  const CusumDetection d = detect_cusum(flat_series(0.5, 300, 0.02));
  EXPECT_FALSE(d.detected);
  EXPECT_NEAR(d.baseline_mean, 0.5, 0.01);
  EXPECT_LT(d.peak_statistic, 1.0);
}

TEST(Cusum, StepChangeIsDetected) {
  TimeSeries ts;
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const double level = i < 100 ? 0.45 : 0.65;  // +20pp mean shift at t=100
    ts.append(sec(static_cast<std::int64_t>(i)), rng.normal(level, 0.03));
  }
  const CusumDetection d = detect_cusum(ts);
  EXPECT_TRUE(d.detected);
  EXPECT_GE(d.alarm_time, sec(std::int64_t{100}));
  EXPECT_LE(d.alarm_time, sec(std::int64_t{130}));  // detection latency bounded
}

TEST(Cusum, OnOffAttackShiftsMeanEnough) {
  // MemCA raises 1-second average utilization from ~45% to ~65%: invisible
  // to an 85% threshold, but CUSUM accumulates the persistent +20pp shift.
  TimeSeries ts;
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    double level = 0.45;
    if (i >= 100) level = (i % 2 == 0) ? 0.80 : 0.50;  // attacked: mean 0.65
    ts.append(sec(static_cast<std::int64_t>(i)), rng.normal(level, 0.03));
  }
  const CusumDetection d = detect_cusum(ts);
  EXPECT_TRUE(d.detected);
}

TEST(Cusum, AllowanceSuppressesSmallDrift) {
  TimeSeries ts;
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const double level = i < 100 ? 0.50 : 0.53;  // +3pp, below the 5pp allowance
    ts.append(sec(static_cast<std::int64_t>(i)), rng.normal(level, 0.01));
  }
  EXPECT_FALSE(detect_cusum(ts).detected);
}

TEST(Cusum, ThresholdControlsSensitivity) {
  TimeSeries ts;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double level = i < 100 ? 0.5 : 0.62;
    ts.append(sec(static_cast<std::int64_t>(i)), rng.normal(level, 0.02));
  }
  CusumConfig loose;
  loose.threshold = 0.5;
  CusumConfig strict;
  strict.threshold = 50.0;
  EXPECT_TRUE(detect_cusum(ts, loose).detected);
  EXPECT_FALSE(detect_cusum(ts, strict).detected);
}

TEST(Cusum, TooFewSamplesIsSilent) {
  const CusumDetection d = detect_cusum(flat_series(0.9, 10));
  EXPECT_FALSE(d.detected);
}

TEST(Cusum, StatisticResetsAfterExcursion) {
  // A brief excursion that subsides leaves the statistic back near zero.
  TimeSeries ts;
  for (int i = 0; i < 300; ++i) {
    double level = 0.5;
    if (i >= 100 && i < 105) level = 0.7;  // 5-sample blip
    ts.append(sec(static_cast<std::int64_t>(i)), level);
  }
  CusumConfig config;
  config.threshold = 2.0;
  const CusumDetection d = detect_cusum(ts, config);
  EXPECT_FALSE(d.detected);
  EXPECT_NEAR(d.peak_statistic, 5 * (0.2 - 0.05), 0.01);
}

}  // namespace
}  // namespace memca::monitor
