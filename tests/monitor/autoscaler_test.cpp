#include "monitor/autoscaler.h"

#include <gtest/gtest.h>

namespace memca::monitor {
namespace {

/// Builds a fine-grained (50 ms) utilization series over `duration` where
/// utilization is `peak` for the first `on` of every `period`, else `base`.
TimeSeries on_off_series(SimTime duration, SimTime period, SimTime on, double peak,
                         double base) {
  TimeSeries ts;
  for (SimTime t = 0; t < duration; t += msec(50)) {
    ts.append(t, (t % period) < on ? peak : base);
  }
  return ts;
}

TEST(AutoScaler, SteadyHighLoadTriggers) {
  TimeSeries ts;
  for (SimTime t = 0; t < 3 * kMinute; t += msec(50)) ts.append(t, 0.95);
  AutoScalerConfig config;
  const ScaleDecision d = evaluate_autoscaler(ts, config);
  EXPECT_TRUE(d.triggered);
  EXPECT_EQ(d.trigger_time, kMinute);
  EXPECT_EQ(d.breaching_windows.size(), 3u);
}

TEST(AutoScaler, ModerateLoadDoesNotTrigger) {
  TimeSeries ts;
  for (SimTime t = 0; t < 3 * kMinute; t += msec(50)) ts.append(t, 0.55);
  const ScaleDecision d = evaluate_autoscaler(ts, AutoScalerConfig{});
  EXPECT_FALSE(d.triggered);
  EXPECT_TRUE(d.breaching_windows.empty());
}

TEST(AutoScaler, MemcaStyleBurstsInvisibleAtOneMinute) {
  // 100% CPU for 600 ms of every 2 s on a 55% base: 1-min average ~ 68%,
  // below the 85% trigger — the Fig. 10a result.
  const TimeSeries fine =
      on_off_series(5 * kMinute, sec(std::int64_t{2}), msec(600), 1.0, 0.55);
  const ScaleDecision d = evaluate_autoscaler(fine, AutoScalerConfig{});
  EXPECT_FALSE(d.triggered);
  EXPECT_GT(d.observed.mean(), 0.5);
  EXPECT_LT(d.observed.max(), 0.85);
}

TEST(AutoScaler, SameBurstsVisibleAtFineGranularity) {
  // The identical signal trips the same policy if the monitor sampled at
  // 50 ms — granularity, not threshold, is what hides MemCA.
  const TimeSeries fine =
      on_off_series(5 * kMinute, sec(std::int64_t{2}), msec(600), 1.0, 0.55);
  AutoScalerConfig config;
  config.sampling_period = msec(50);
  const ScaleDecision d = evaluate_autoscaler(fine, config);
  EXPECT_TRUE(d.triggered);
}

TEST(AutoScaler, ConsecutivePeriodsRequirement) {
  // One hot minute among cool ones does not trigger a 2-period policy.
  TimeSeries ts;
  for (SimTime t = 0; t < 4 * kMinute; t += msec(50)) {
    const bool hot_minute = (t >= kMinute && t < 2 * kMinute);
    ts.append(t, hot_minute ? 0.95 : 0.3);
  }
  AutoScalerConfig config;
  config.consecutive_periods = 2;
  const ScaleDecision d = evaluate_autoscaler(ts, config);
  EXPECT_FALSE(d.triggered);
  EXPECT_EQ(d.breaching_windows.size(), 1u);
}

TEST(AutoScaler, ConsecutivePeriodsSatisfied) {
  TimeSeries ts;
  for (SimTime t = 0; t < 4 * kMinute; t += msec(50)) {
    ts.append(t, t >= kMinute ? 0.95 : 0.3);
  }
  AutoScalerConfig config;
  config.consecutive_periods = 2;
  const ScaleDecision d = evaluate_autoscaler(ts, config);
  EXPECT_TRUE(d.triggered);
  EXPECT_EQ(d.trigger_time, 3 * kMinute);
}

TEST(AutoScaler, EmptySeries) {
  const ScaleDecision d = evaluate_autoscaler(TimeSeries{}, AutoScalerConfig{});
  EXPECT_FALSE(d.triggered);
  EXPECT_TRUE(d.observed.empty());
}

}  // namespace
}  // namespace memca::monitor
