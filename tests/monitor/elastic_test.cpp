#include "monitor/elastic.h"

#include <gtest/gtest.h>

#include "../queueing/test_util.h"
#include "queueing/ntier.h"
#include "workload/openloop.h"
#include "workload/router.h"

namespace memca::monitor {
namespace {

struct Fixture {
  Simulator sim;
  queueing::NTierSystem system{sim, {{"front", 200, 8}, {"back", 100, 2}}};
  workload::RequestRouter router{system};
  std::unique_ptr<workload::OpenLoopSource> source;

  void drive(double rate_per_sec) {
    workload::OpenLoopConfig config;
    config.rate_per_sec = rate_per_sec;
    config.retransmit = false;
    source = std::make_unique<workload::OpenLoopSource>(
        sim, router, workload::uniform_profile({100.0, 1500.0}), config, Rng(3));
    source->start();
  }
};

ElasticPolicy fast_policy() {
  ElasticPolicy policy;
  policy.evaluation_period = sec(std::int64_t{10});
  policy.provisioning_delay = sec(std::int64_t{20});
  policy.cooldown = sec(std::int64_t{10});
  policy.workers_per_scaleout = 2;
  policy.threads_per_scaleout = 0;
  return policy;
}

TEST(ElasticController, QuietTierNeverScales) {
  Fixture f;
  f.drive(300.0);  // back-tier util ~ 300 * 1.5ms / 2 = 22%
  ElasticController controller(f.sim, f.system.tier(1), fast_policy());
  controller.start();
  f.sim.run_for(5 * kMinute);
  EXPECT_EQ(controller.scaleouts(), 0);
  EXPECT_GT(controller.observed().size(), 20u);
}

TEST(ElasticController, OverloadedTierScalesOutAfterDelay) {
  Fixture f;
  f.drive(1500.0);  // back-tier demand 1500 * 1.5ms / 2 workers: saturated
  ElasticController controller(f.sim, f.system.tier(1), fast_policy());
  controller.start();
  f.sim.run_for(2 * kMinute);
  ASSERT_GE(controller.scaleouts(), 1);
  const ScaleOutEvent& first = controller.events().front();
  EXPECT_EQ(first.effective_at - first.triggered_at, sec(std::int64_t{20}));
  EXPECT_GT(f.system.tier(1).workers(), 2);
}

TEST(ElasticController, ScaleOutActuallyAddsCapacity) {
  Fixture f;
  f.drive(1800.0);
  const int workers_initial = f.system.tier(1).workers();
  ElasticController controller(f.sim, f.system.tier(1), fast_policy());
  controller.start();
  f.sim.run_for(kMinute);  // policy fires and capacity lands
  const auto completed_before = f.system.completed();
  f.sim.run_for(3 * kMinute);
  const double rate_after = static_cast<double>(f.system.completed() - completed_before) /
                            to_seconds(3 * kMinute);
  EXPECT_GT(f.system.tier(1).workers(), workers_initial);
  // 2 workers cap at ~1333/s; with scale-outs throughput beats that.
  EXPECT_GT(rate_after, 1400.0);
}

TEST(ElasticController, RespectsMaxScaleouts) {
  Fixture f;
  f.drive(4000.0);
  ElasticPolicy policy = fast_policy();
  policy.max_scaleouts = 2;
  ElasticController controller(f.sim, f.system.tier(1), policy);
  controller.start();
  f.sim.run_for(10 * kMinute);
  EXPECT_EQ(controller.scaleouts(), 2);
  EXPECT_EQ(f.system.tier(1).workers(), 2 + 2 * 2);
}

TEST(ElasticController, CooldownSpacesScaleouts) {
  Fixture f;
  f.drive(4000.0);
  ElasticController controller(f.sim, f.system.tier(1), fast_policy());
  controller.start();
  f.sim.run_for(5 * kMinute);
  const auto& events = controller.events();
  ASSERT_GE(events.size(), 2u);
  // Next trigger can only happen after effective_at + cooldown.
  EXPECT_GE(events[1].triggered_at, events[0].effective_at + sec(std::int64_t{10}));
}

TEST(ElasticController, ConsecutivePeriodsGate) {
  Fixture f;
  ElasticPolicy policy = fast_policy();
  policy.consecutive_periods = 3;
  // Alternate hot and cold by toggling the tier speed: a single hot period
  // never satisfies the 3-consecutive requirement.
  ElasticController controller(f.sim, f.system.tier(1), policy);
  controller.start();
  f.drive(1500.0);
  bool slow = false;
  PeriodicTask toggler(f.sim, sec(std::int64_t{10}), [&] {
    slow = !slow;
    f.source->stop();
    if (!slow) f.drive(1500.0);
  });
  f.sim.run_for(3 * kMinute);
  EXPECT_EQ(controller.scaleouts(), 0);
}

TEST(WorkStationScaling, AddWorkersPreservesBusyAccounting) {
  Simulator sim;
  std::vector<std::uint32_t> done;
  queueing::WorkStation station(sim, 1, [&](std::uint32_t p) { done.push_back(p); });
  station.start(1, 10000.0);
  sim.run_until(msec(5));
  station.add_workers(3);
  EXPECT_EQ(station.workers(), 4);
  EXPECT_EQ(station.busy(), 1);
  EXPECT_TRUE(station.has_free_worker());
  sim.run_until(msec(20));
  EXPECT_EQ(done.size(), 1u);
  EXPECT_NEAR(station.busy_worker_time_us(), 10000.0, 1.0);
}

TEST(WorkStationScaling, TierAddCapacityStartsWaitingRequests) {
  Simulator sim;
  queueing::RequestPool pool;
  pool.set_depth(1);
  queueing::TierServer tier(sim, pool, queueing::TierConfig{"t", 10, 1}, 0);
  std::vector<queueing::Request*> replies;
  tier.set_reply_sink([&](queueing::Request* r) { replies.push_back(r); });
  for (int i = 0; i < 4; ++i) {
    tier.try_submit(queueing::test::make_request(pool, i, {100000.0}));
  }
  sim.run_until(msec(1));
  EXPECT_EQ(tier.in_service(), 1);
  EXPECT_EQ(tier.waiting(), 3);
  tier.add_capacity(3);
  EXPECT_EQ(tier.in_service(), 4);
  EXPECT_EQ(tier.waiting(), 0);
}

}  // namespace
}  // namespace memca::monitor
