#include "monitor/sampler.h"

#include <gtest/gtest.h>

namespace memca::monitor {
namespace {

TEST(GaugeSampler, SamplesAtPeriod) {
  Simulator sim;
  double value = 1.0;
  GaugeSampler sampler(sim, [&] { return value; }, msec(100));
  sampler.start();
  sim.run_until(msec(250));
  ASSERT_EQ(sampler.series().size(), 2u);
  EXPECT_EQ(sampler.series().samples()[0].time, msec(100));
  EXPECT_DOUBLE_EQ(sampler.series().samples()[0].value, 1.0);
}

TEST(GaugeSampler, SeesValueChanges) {
  Simulator sim;
  double value = 0.0;
  GaugeSampler sampler(sim, [&] { return value; }, msec(10));
  sampler.start();
  sim.schedule_at(msec(25), [&] { value = 7.0; });
  sim.run_until(msec(40));
  const auto& s = sampler.series().samples();
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[1].value, 0.0);  // t=20
  EXPECT_DOUBLE_EQ(s[2].value, 7.0);  // t=30
}

TEST(GaugeSampler, StopHaltsSampling) {
  Simulator sim;
  GaugeSampler sampler(sim, [] { return 1.0; }, msec(10));
  sampler.start();
  sim.run_until(msec(50));
  sampler.stop();
  const auto n = sampler.series().size();
  sim.run_until(msec(100));
  EXPECT_EQ(sampler.series().size(), n);
}

TEST(UtilizationSampler, ComputesWindowAverages) {
  Simulator sim;
  // Synthetic busy-time integral: 1 resource busy from t=0 to t=50ms,
  // then idle.
  auto integral = [&]() -> double {
    return static_cast<double>(std::min(sim.now(), msec(50)));
  };
  UtilizationSampler sampler(sim, integral, 1, msec(100));
  sampler.start();
  sim.run_until(msec(300));
  const auto& s = sampler.series().samples();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_NEAR(s[0].value, 0.5, 1e-9);  // busy half of [0, 100ms)
  EXPECT_NEAR(s[1].value, 0.0, 1e-9);
  EXPECT_EQ(s[0].time, 0);  // window-start timestamps
}

TEST(UtilizationSampler, MultiWorkerNormalisation) {
  Simulator sim;
  // 2 workers, both busy the whole time: integral = 2 * now.
  auto integral = [&]() -> double { return 2.0 * static_cast<double>(sim.now()); };
  UtilizationSampler sampler(sim, integral, 2, msec(100));
  sampler.start();
  sim.run_until(msec(200));
  for (const Sample& s : sampler.series().samples()) {
    EXPECT_NEAR(s.value, 1.0, 1e-9);
  }
}

TEST(UtilizationSampler, ClampsToOne) {
  Simulator sim;
  auto integral = [&]() -> double { return 5.0 * static_cast<double>(sim.now()); };
  UtilizationSampler sampler(sim, integral, 1, msec(100));
  sampler.start();
  sim.run_until(msec(200));
  for (const Sample& s : sampler.series().samples()) {
    EXPECT_DOUBLE_EQ(s.value, 1.0);
  }
}

TEST(UtilizationSampler, FineAndCoarseAgreeOnAverage) {
  // The core sampling-theory fact the paper's stealthiness rests on: mean
  // utilization is granularity-invariant, peaks are not.
  Simulator sim;
  // ON-OFF busy signal: busy 100 ms out of every 1 s.
  auto integral = [&]() -> double {
    const SimTime t = sim.now();
    const SimTime full = (t / kSecond) * msec(100);
    const SimTime partial = std::min(t % kSecond, msec(100));
    return static_cast<double>(full + partial);
  };
  UtilizationSampler fine(sim, integral, 1, msec(50));
  UtilizationSampler coarse(sim, integral, 1, sec(std::int64_t{1}));
  fine.start();
  coarse.start();
  sim.run_until(sec(std::int64_t{10}));
  EXPECT_NEAR(fine.series().mean(), 0.1, 0.01);
  EXPECT_NEAR(coarse.series().mean(), 0.1, 0.01);
  EXPECT_NEAR(fine.series().max(), 1.0, 1e-9);
  EXPECT_NEAR(coarse.series().max(), 0.1, 1e-9);
}

}  // namespace
}  // namespace memca::monitor
