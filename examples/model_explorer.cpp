// Analytic-model explorer: evaluate the paper's Eq. 2-10 for arbitrary
// n-tier parameters from the command line — the "back of the envelope" an
// attacker (or defender sizing thread pools) would run before touching a
// real system.
//
// Usage:
//   model_explorer [--tiers Q:C:LAM[,Q:C:LAM...]] [--d D] [--len MS]
//                  [--interval MS] [--goal-rho RHO]
//
//   --tiers     per-tier queue size : capacity (req/s) : arrival rate
//               (req/s), front tier first
//               (default: the RUBBoS calibration 100:10000:0,
//                60:3000:0, 30:1000:500)
//   --d         degradation index during ON bursts (default 0.1)
//   --len       burst length L in ms (default 500)
//   --interval  burst interval I in ms (default 2000)
//   --goal-rho  also print the burst length needed for this damage ratio
//
//   $ ./examples/model_explorer --d 0.08 --len 400
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/analytic_model.h"
#include "scenario.h"

using namespace memca;

namespace {

std::vector<core::TierModelParams> parse_tiers(const std::string& spec) {
  std::vector<core::TierModelParams> tiers;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    core::TierModelParams tier;
    if (std::sscanf(entry.c_str(), "%lf:%lf:%lf", &tier.queue_size, &tier.capacity_off,
                    &tier.arrival_rate) != 3) {
      std::fprintf(stderr, "cannot parse tier spec '%s' (want Q:C:LAMBDA)\n",
                   entry.c_str());
      std::exit(2);
    }
    tiers.push_back(tier);
    start = end + 1;
  }
  return tiers;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: model_explorer [--tiers Q:C:LAM,...] [--d D] [--len MS] "
               "[--interval MS] [--goal-rho RHO]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  core::AttackModelInputs inputs = examples::paper_model_inputs();
  double goal_rho = -1.0;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--tiers") == 0) {
      inputs.tiers = parse_tiers(need_value("--tiers"));
    } else if (std::strcmp(argv[i], "--d") == 0) {
      inputs.degradation_index = std::atof(need_value("--d"));
    } else if (std::strcmp(argv[i], "--len") == 0) {
      inputs.burst_length = msec(std::atoll(need_value("--len")));
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      inputs.burst_interval = msec(std::atoll(need_value("--interval")));
    } else if (std::strcmp(argv[i], "--goal-rho") == 0) {
      goal_rho = std::atof(need_value("--goal-rho"));
    } else {
      usage();
    }
  }

  const core::AttackModelOutputs out = core::evaluate_attack_model(inputs);

  print_banner(std::cout, "System parameters");
  Table tiers({"tier", "Q (threads)", "C_off (req/s)", "lambda (req/s)", "l_up (ms)"});
  for (std::size_t i = 0; i < inputs.tiers.size(); ++i) {
    const auto& t = inputs.tiers[i];
    tiers.add_row({
        "tier " + std::to_string(i + 1) + (i + 1 == inputs.tiers.size() ? " (attacked)" : ""),
        Table::num(t.queue_size, 0),
        Table::num(t.capacity_off, 0),
        Table::num(t.arrival_rate, 0),
        std::isfinite(out.fill_time_s[i]) ? Table::num(out.fill_time_s[i] * 1000.0, 1)
                                          : "never",
    });
  }
  tiers.print(std::cout);

  print_banner(std::cout, "Attack prediction (Eq. 2-10)");
  Table result({"quantity", "value"});
  result.add_row({"C_on = D * C_off (Eq. 3)", Table::num(out.capacity_on, 1) + " req/s"});
  result.add_row({"Condition 1 (Q decreasing)", out.condition1 ? "holds" : "VIOLATED"});
  result.add_row({"Condition 2 (lambda > C_on)", out.condition2 ? "holds" : "VIOLATED"});
  result.add_row({"total fill-up time", std::isfinite(out.total_fill_time_s)
                                            ? Table::num(out.total_fill_time_s * 1000.0, 1) + " ms"
                                            : "infinite (no overflow)"});
  result.add_row({"damage period P_D (Eq. 7)",
                  Table::num(out.damage_period_s * 1000.0, 1) + " ms"});
  result.add_row({"damage ratio rho = P_D/I (Eq. 8)", Table::num(out.rho, 4)});
  result.add_row({"predicted drop fraction", Table::num(predicted_drop_fraction(out), 4)});
  result.add_row({"drain time l_down (Eq. 9)",
                  std::isfinite(out.drain_time_s)
                      ? Table::num(out.drain_time_s * 1000.0, 1) + " ms"
                      : "never drains (overloaded)"});
  result.add_row({"millibottleneck P_MB (Eq. 10)",
                  std::isfinite(out.millibottleneck_s)
                      ? Table::num(out.millibottleneck_s * 1000.0, 1) + " ms"
                      : "unbounded"});
  result.print(std::cout);

  std::cout << "\nreading: with a 1 s TCP RTO floor, percentiles above "
            << Table::num((1.0 - out.rho) * 100.0, 1)
            << "% exceed one second; the millibottleneck stays "
            << (out.millibottleneck_s < 1.0 ? "sub-second (stealthy)"
                                            : "ABOVE one second (visible)")
            << ".\n";

  if (goal_rho >= 0.0) {
    const SimTime needed = core::required_burst_length(inputs, goal_rho);
    if (needed > 0) {
      std::cout << "burst length needed for rho = " << goal_rho << ": "
                << format_time(needed) << " (at I = "
                << format_time(inputs.burst_interval) << ")\n";
    } else {
      std::cout << "rho = " << goal_rho
                << " is unreachable with these parameters (conditions violated)\n";
    }
  }
  return 0;
}
