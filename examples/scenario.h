// Shared scenario construction for the examples.
//
// Every example explores the same paper scenario — the RUBBoS 3-tier
// calibration under the L = 500 ms / I = 2 s memory-lock attack — so its
// parameters live here once. The simulation side (testbed + attack config)
// and the analytic side (the round-number Q:C:lambda calibration the paper
// works Eq. 2-10 with) are two views of the same setup; keeping both in
// this header is what stops them drifting apart as tier variants multiply.
#pragma once

#include "core/analytic_model.h"
#include "core/memca.h"
#include "testbed/rubbos_testbed.h"

namespace memca::examples {

/// The paper's simulated testbed: 3500 users, Apache 100/8, Tomcat 60/6,
/// MySQL 30/2 on EC2-profile hosts (TestbedConfig defaults).
inline testbed::TestbedConfig paper_testbed_config() {
  return testbed::TestbedConfig{};
}

/// The calibrated fixed-parameter attack: 500 ms memory-lock bursts every
/// 2 s, no feedback controller.
inline core::MemcaConfig paper_attack_config() {
  core::MemcaConfig memca;
  memca.enable_controller = false;  // fixed paper parameters
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  memca.params.type = cloud::MemoryAttackType::kMemoryLock;
  return memca;
}

/// The analytic-model view of the same scenario: the paper's round-number
/// Q : C_off (req/s) : lambda (req/s) calibration, front tier first, with
/// the calibrated attack schedule and degradation index D = 0.1.
inline core::AttackModelInputs paper_model_inputs() {
  core::AttackModelInputs inputs;
  inputs.tiers = {{100.0, 10000.0, 0.0}, {60.0, 3000.0, 0.0}, {30.0, 1000.0, 500.0}};
  inputs.degradation_index = 0.1;
  inputs.burst_length = msec(500);
  inputs.burst_interval = sec(std::int64_t{2});
  return inputs;
}

}  // namespace memca::examples
