// Drives the always-on flight recorder through a short attacked run and
// walks one incident end to end — the operator's forensic workflow on
// bounded black-box state (no full trace, no metrics registry).
//
//   ./build/examples/incident_explorer
//   -> incidents.json              structured incident records
//   -> incident_annotations.json   Perfetto slices (https://ui.perfetto.dev)
//
// The console prints the incident inventory, then drills into the worst
// one: the frozen 50 ms timeline around the window (queue depths, capacity
// multiplier, drops, RTO backlog) and the per-phase decomposition of the
// VLRT requests whose ring spans were pinned before eviction.
#include <fstream>
#include <iostream>

#include "common/table.h"
#include "flightrec/incident.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

int main() {
  testbed::TestbedConfig config;
  config.flightrec = true;
  testbed::RubbosTestbed bed(config);
  bed.start();

  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  memca.params.type = cloud::MemoryAttackType::kMemoryLock;
  auto attack = bed.make_attack(memca);
  attack->start();
  bed.sim().run_for(sec(std::int64_t{45}));
  attack->stop();
  // Let the quiet-close window expire so the burst train's incident closes.
  bed.sim().run_for(sec(std::int64_t{5}));
  bed.flight()->finalize();

  const flightrec::FlightRecorder& flight = *bed.flight();
  print_banner(std::cout, "Flight-recorder state (45 s attacked run + 5 s quiet)");
  std::cout << "ring: " << bed.trace()->total_recorded() << " events recorded into "
            << bed.trace()->bytes_retained() / 1024 << " KB (wrapped: "
            << (bed.trace()->wrapped() ? "yes" : "no") << ")\n"
            << "client sketch (" << flight.client_latency().count() << " samples, ms): p50 "
            << Table::num(flight.client_latency().quantile(0.50) / 1000.0, 0) << ", p95 "
            << Table::num(flight.client_latency().quantile(0.95) / 1000.0, 0) << ", p99 "
            << Table::num(flight.client_latency().quantile(0.99) / 1000.0, 0) << ", p99.9 "
            << Table::num(flight.client_latency().quantile(0.999) / 1000.0, 0) << "\n"
            << "incidents: " << flight.incidents().size() << " ("
            << flight.pinned_events_total() << " spans pinned, "
            << flight.affected_requests_total() << " VLRT requests)\n";

  if (flight.incidents().empty()) {
    std::cout << "no incidents — nothing to explore\n";
    return 1;
  }

  print_banner(std::cout, "Incident inventory");
  Table inventory({"id", "trigger", "window (s)", "dip depth", "est. interval (s)",
                   "drops", "retrans", "VLRT reqs"});
  const flightrec::Incident* worst = &flight.incidents().front();
  for (const flightrec::Incident& inc : flight.incidents()) {
    if (inc.affected_requests > worst->affected_requests) worst = &inc;
    inventory.add_row({Table::num(inc.id), flightrec::to_string(inc.trigger),
                       Table::num(to_seconds(inc.window_start), 1) + "-" +
                           Table::num(to_seconds(inc.window_end), 1),
                       Table::num(inc.dip_depth, 3),
                       Table::num(to_seconds(inc.burst_interval_estimate), 2),
                       Table::num(inc.drop_count), Table::num(inc.retransmissions),
                       Table::num(inc.affected_requests)});
  }
  inventory.print(std::cout);

  print_banner(std::cout, "Drill-down: incident " + std::to_string(worst->id) +
                              " — frozen 50 ms timeline (every 4th frame)");
  Table frames({"t (s)", "D(t) min", "apache q", "tomcat q", "mysql q", "drops",
                "RTO backlog", "VLRT"});
  for (std::size_t i = 0; i < worst->frames.size(); i += 4) {
    const flightrec::TimelineFrame& f = worst->frames[i];
    frames.add_row({Table::num(to_seconds(f.start), 2), Table::num(f.capacity_min, 2),
                    Table::num(std::int64_t{f.queue_depth[0]}),
                    Table::num(std::int64_t{f.queue_depth[1]}),
                    Table::num(std::int64_t{f.queue_depth[2]}),
                    Table::num(std::int64_t{f.drops_total()}),
                    Table::num(std::int64_t{f.rto_backlog}),
                    Table::num(std::int64_t{f.vlrt_completions})});
  }
  frames.print(std::cout);

  const trace::TailSummary& d = worst->decomposition;
  std::cout << "decomposition of " << d.tail_count << " VLRT requests ("
            << d.tail_retrans_dominated << " retransmission-dominated, "
            << Table::num(100.0 * d.retrans_dominated_share(), 1) << "%): rto-wait "
            << Table::num(to_seconds(d.rto_wait_us), 1) << " s, queue-wait "
            << Table::num(to_seconds(d.queue_wait_us), 1) << " s, service "
            << Table::num(to_seconds(d.service_us), 1) << " s (degraded "
            << Table::num(to_seconds(d.degraded_us), 1) << " s), rpc-hold "
            << Table::num(to_seconds(d.rpc_hold_us), 1) << " s\n";

  {
    std::ofstream json("incidents.json");
    flightrec::write_incidents_json(json, flight.incidents(), bed.tier_names());
    std::ofstream annotations("incident_annotations.json");
    flightrec::write_incident_annotations(annotations, flight.incidents());
  }
  std::cout << "\nwrote incidents.json and incident_annotations.json — load the\n"
               "annotations at https://ui.perfetto.dev to see the incident window and\n"
               "per-dip markers on a dedicated flightrec track.\n";
  return 0;
}
