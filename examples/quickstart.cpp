// Quickstart: build the RUBBoS testbed, run one minute without the attack
// and one minute with MemCA, and compare per-tier percentile response times.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "scenario.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

namespace {

void report(testbed::RubbosTestbed& bed, const char* label) {
  print_banner(std::cout, label);
  Table table({"percentile", "mysql (ms)", "tomcat (ms)", "apache (ms)", "client (ms)"});
  for (double q : {0.50, 0.90, 0.95, 0.98, 0.99}) {
    table.add_row({
        Table::num(q * 100.0, 0),
        Table::num(to_millis(bed.system().tier(2).residence_time().quantile(q))),
        Table::num(to_millis(bed.system().tier(1).residence_time().quantile(q))),
        Table::num(to_millis(bed.system().tier(0).residence_time().quantile(q))),
        Table::num(to_millis(bed.clients().response_times().quantile(q))),
    });
  }
  table.print(std::cout);
  std::printf("throughput %.1f req/s, completed %lld, drops %lld, failed %lld\n",
              bed.clients().throughput(), static_cast<long long>(bed.clients().completed()),
              static_cast<long long>(bed.clients().dropped_attempts()),
              static_cast<long long>(bed.clients().failed()));
  std::printf("avg MySQL CPU %.1f%%, max 50ms-window %.1f%%\n",
              bed.mysql_cpu().series().mean() * 100.0,
              bed.mysql_cpu().series().max() * 100.0);
}

void run(bool attack_enabled) {
  testbed::RubbosTestbed bed(examples::paper_testbed_config());
  bed.start();

  std::unique_ptr<core::MemcaAttack> attack;
  if (attack_enabled) {
    attack = bed.make_attack(examples::paper_attack_config());
    attack->start();
  }

  bed.sim().run_for(kMinute);
  report(bed, attack_enabled ? "1 minute WITH MemCA (L=500ms, I=2s, memory-lock)"
                             : "1 minute baseline (no attack)");
  if (attack) {
    std::printf("attack bursts fired: %lld, degradation index D now: %.3f\n",
                static_cast<long long>(attack->scheduler().bursts_fired()),
                bed.coupling().capacity_multiplier());
  }
}

}  // namespace

int main() {
  run(/*attack_enabled=*/false);
  run(/*attack_enabled=*/true);
  return 0;
}
