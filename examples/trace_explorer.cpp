// Records a per-request causal trace of a short attacked run and exports it
// for interactive exploration.
//
//   ./build/examples/trace_explorer
//   -> trace.json   open at https://ui.perfetto.dev (or chrome://tracing)
//
// The timeline shows one process per tier (wait / service / downstream
// slices per request lane), a capacity counter per tier, the
// attack kernel's burst ON/OFF counter, and a client process with RTO-wait
// slices — the whole causal chain of one tail request is visible by
// following its lanes across processes. The console prints the slowest
// completed requests with their per-cause breakdown as a starting point.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "common/table.h"
#include "testbed/rubbos_testbed.h"
#include "trace/attributor.h"
#include "trace/exporters.h"

using namespace memca;

int main() {
  testbed::TestbedConfig config;
  config.trace = true;
  testbed::RubbosTestbed bed(config);
  bed.start();

  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  memca.params.type = cloud::MemoryAttackType::kMemoryLock;
  auto attack = bed.make_attack(memca);
  attack->start();
  bed.sim().run_for(sec(std::int64_t{30}));
  attack->stop();

  const trace::TraceRecorder& recorder = *bed.trace();
  {
    std::ofstream json("trace.json");
    trace::write_chrome_trace(json, recorder,
                              trace::ChromeTraceOptions{bed.tier_names(), 0, true});
  }
  std::cout << "wrote trace.json (" << recorder.size()
            << " span events, 30 s attacked run)\n\n";

  trace::TailAttributor attributor(recorder, bed.system().depth());
  std::vector<trace::RequestBreakdown> slowest = attributor.requests();
  std::sort(slowest.begin(), slowest.end(),
            [](const auto& a, const auto& b) { return a.total > b.total; });
  if (slowest.size() > 8) slowest.resize(8);

  print_banner(std::cout, "Slowest completed requests (all times ms)");
  Table table({"request", "user", "attempts", "total", "rto-wait", "queue-wait",
               "service", "degraded", "rpc-hold", "dominant"});
  for (const trace::RequestBreakdown& b : slowest) {
    table.add_row({Table::num(b.final_request), Table::num(std::int64_t{b.user}),
                   Table::num(std::int64_t{b.attempts}), Table::num(to_millis(b.total)),
                   Table::num(to_millis(b.rto_wait)),
                   Table::num(to_millis(b.queue_wait_total())),
                   Table::num(to_millis(b.of(trace::Cause::kService))),
                   Table::num(to_millis(b.degraded_service)),
                   Table::num(to_millis(b.rpc_hold_total())),
                   trace::to_string(b.dominant())});
  }
  table.print(std::cout);

  std::cout << "\nTo explore: load trace.json at https://ui.perfetto.dev, find a user's\n"
               "rto-wait slice in the clients process, then follow the same request id\n"
               "(slice args) through apache -> tomcat -> mysql around the burst windows\n"
               "of the attack counter track.\n";
  return 0;
}
