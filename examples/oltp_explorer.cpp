// OLTP bottleneck explorer: swap the paper's FIFO MySQL tier for the
// lock/CC-aware transaction tier and watch how concurrency control, access
// skew and write intensity change what the same MemCA attack does to the
// client tail.
//
// Usage:
//   oltp_explorer [--records N] [--long-frac F] [--duration S]
//
//   --records    lock-table key space (default 2048)
//   --long-frac  fraction of long transactions (default 0.1)
//   --duration   measured seconds per cell (default 60)
//
// Sweeps CC scheme {WAIT-FIFO, NO_WAIT+backoff} x Zipf theta {0.5, 0.99}
// x write ratio {0.1, 0.5} x attack {off, on (the paper's L=500ms/I=2s
// memory-lock schedule)} on the warm-sweep runner, then prints one row per
// cell: tail quantiles, drops, commits/aborts and time spent stalled on
// record locks. The FIFO reference rows bracket the table so the convoy
// amplification is read directly against the paper's model.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "metrics/names.h"
#include "scenario.h"
#include "testbed/attack_lab.h"

using namespace memca;

namespace {

struct Cell {
  bool oltp = false;
  oltp::CcScheme scheme = oltp::CcScheme::kWaitFifo;
  double theta = 0.0;
  double write_ratio = 0.0;
  bool attack = false;
};

const char* scheme_name(const Cell& cell) {
  if (!cell.oltp) return "fifo";
  return cell.scheme == oltp::CcScheme::kWaitFifo ? "wait" : "no-wait";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t num_records = 2048;
  double long_frac = 0.1;
  SimTime duration = kMinute;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--records") == 0) {
      num_records = static_cast<std::uint32_t>(std::atoi(value("--records")));
    } else if (std::strcmp(argv[i], "--long-frac") == 0) {
      long_frac = std::atof(value("--long-frac"));
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      duration = sec(static_cast<std::int64_t>(std::atoll(value("--duration"))));
    } else {
      std::cerr << "usage: oltp_explorer [--records N] [--long-frac F] [--duration S]\n";
      return 2;
    }
  }

  std::vector<Cell> cells;
  for (bool attack : {false, true}) {
    cells.push_back(Cell{false, oltp::CcScheme::kWaitFifo, 0.0, 0.0, attack});
    for (auto scheme : {oltp::CcScheme::kWaitFifo, oltp::CcScheme::kNoWaitBackoff}) {
      for (double theta : {0.5, 0.99}) {
        for (double write_ratio : {0.1, 0.5}) {
          cells.push_back(Cell{true, scheme, theta, write_ratio, attack});
        }
      }
    }
  }

  std::vector<testbed::AttackLabConfig> configs;
  for (const Cell& cell : cells) {
    testbed::AttackLabConfig config;
    config.testbed = examples::paper_testbed_config();
    config.testbed.trace = true;
    config.testbed.metrics = true;
    if (cell.oltp) {
      config.testbed.bottleneck = testbed::BottleneckKind::kOltp;
      config.testbed.oltp.num_records = num_records;
      config.testbed.oltp.long_txn_fraction = long_frac;
      config.testbed.oltp.scheme = cell.scheme;
      config.testbed.oltp.zipf_theta = cell.theta;
      config.testbed.oltp.short_txn.write_ratio = cell.write_ratio;
      config.testbed.oltp.long_txn.write_ratio = cell.write_ratio;
    }
    config.params = examples::paper_attack_config().params;
    config.attack_enabled = cell.attack;
    config.warmup = sec(std::int64_t{10});
    config.duration = duration;
    configs.push_back(config);
  }
  auto results = testbed::run_attack_lab_sweep(std::move(configs));

  print_banner(std::cout, "OLTP bottleneck vs FIFO under MemCA (L=500ms, I=2s)");
  Table table({"tier/cc", "theta", "write", "attack", "p99 (ms)", "p99.9 (ms)", "drop %",
               "commits", "aborts", "lock waits", "tail lock-wait (s)"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    testbed::AttackLabResult& r = results[i];
    auto counter = [&r](const char* event) -> std::int64_t {
      return r.registry == nullptr
                 ? 0
                 : r.registry->counter(metrics::names::kOltpTxnTotal, {{"event", event}})
                       .value();
    };
    table.add_row({
        scheme_name(cell),
        cell.oltp ? Table::num(cell.theta, 2) : "-",
        cell.oltp ? Table::num(cell.write_ratio, 1) : "-",
        cell.attack ? "ON" : "off",
        Table::num(to_millis(r.client_p99), 0),
        Table::num(to_millis(r.client_p999), 0),
        Table::num(r.drop_fraction * 100.0, 2),
        Table::num(counter("commits")),
        Table::num(counter("aborts")),
        Table::num(counter("lock_waits")),
        Table::num(to_seconds(r.tail.lock_wait_us), 2),
    });
  }
  table.print(std::cout);

  std::cout << "\nreading: at matched load the OLTP rows amplify the attack tail beyond\n"
               "the FIFO reference — stretched lock holds convoy waiters (tail lock-wait\n"
               "> 0) and the convoy grows with skew (theta) and write intensity. NO_WAIT\n"
               "trades convoys for aborts: lock-wait shrinks, the abort column pays.\n";
  return 0;
}
