// Defender's view: which monitoring stack catches which attack?
//
// Runs MemCA and the brute-force baseline against the same deployment and
// evaluates the detection arsenal the paper discusses:
//   * CloudWatch-style auto-scaling (1-min average CPU, 85%),
//   * user-centric threshold monitors at 1 s and 50 ms granularity,
//   * host-level LLC-miss periodicity detection (OProfile-style),
//   * request-rate anomaly detection.
//
//   $ ./examples/defense_evaluation
#include <functional>
#include <iostream>

#include "cloud/llc.h"
#include "common/table.h"
#include "core/baselines.h"
#include "monitor/autoscaler.h"
#include "monitor/cusum.h"
#include "monitor/detector.h"
#include "monitor/spectral.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

namespace {

struct DetectionReport {
  std::string attack;
  SimTime p95 = 0;
  bool cloudwatch = false;
  bool threshold_1s = false;
  bool threshold_50ms = false;
  bool cusum_1s = false;
  bool llc_periodicity = false;
  bool llc_spectral = false;
};

DetectionReport evaluate(const std::string& attack_name) {
  testbed::TestbedConfig testbed_config;
  testbed_config.cloud = testbed::CloudProfile::kPrivateCloud;
  testbed::RubbosTestbed bed(testbed_config);
  bed.start();

  // One clean minute first: real anomaly detectors learn their baseline
  // before the attacker shows up.
  const SimTime attack_start = kMinute;
  std::unique_ptr<core::MemcaAttack> memca_attack;
  std::unique_ptr<core::BruteForceMemoryAttack> brute;
  std::vector<cloud::ExecutionWindow> windows;
  if (attack_name == "memca (lock)" || attack_name == "memca (bus)") {
    core::MemcaConfig config;
    config.enable_controller = false;
    config.params.burst_length = msec(500);
    config.params.burst_interval = sec(std::int64_t{2});
    config.params.type = attack_name == "memca (bus)"
                             ? cloud::MemoryAttackType::kBusSaturate
                             : cloud::MemoryAttackType::kMemoryLock;
    memca_attack = bed.make_attack(config);
    bed.sim().schedule_at(attack_start, [&] { memca_attack->start(); });
  } else if (attack_name == "brute-force") {
    brute = std::make_unique<core::BruteForceMemoryAttack>(
        bed.sim(), bed.mysql_host(), bed.adversary_vm(),
        cloud::MemoryAttackType::kMemoryLock);
    bed.sim().schedule_at(attack_start, [&] { brute->start(); });
  }
  bed.sim().run_for(4 * kMinute);
  if (memca_attack) {
    windows = memca_attack->program().windows();
    memca_attack->stop();
  }
  if (brute) {
    windows.push_back(cloud::ExecutionWindow{attack_start, bed.sim().now()});
    brute->stop();
  }

  DetectionReport report;
  report.attack = attack_name;
  report.p95 = bed.clients().response_times().quantile(0.95);
  const TimeSeries& cpu = bed.mysql_cpu().series();
  report.cloudwatch =
      monitor::evaluate_autoscaler(cpu, monitor::AutoScalerConfig{}).triggered;
  monitor::AutoScalerConfig one_second;
  one_second.sampling_period = sec(std::int64_t{1});
  one_second.consecutive_periods = 2;
  report.threshold_1s = monitor::evaluate_autoscaler(cpu, one_second).triggered;
  report.threshold_50ms = monitor::detect_threshold(cpu, msec(50), 0.98).alarm_windows > 20;
  // Stateful detection: CUSUM on the 1-second utilization series. The mean
  // shift an ON-OFF attack causes accumulates even though no window alarms.
  report.cusum_1s = monitor::detect_cusum(cpu.resample_mean(sec(std::int64_t{1}))).detected;

  // Host-level LLC view: only meaningful when some attack ran.
  if (!windows.empty()) {
    auto overlap = [&windows](SimTime start, SimTime end) {
      SimTime total = 0;
      for (const auto& w : windows) {
        const SimTime lo = std::max(start, w.start);
        const SimTime hi = std::min(end, w.end);
        if (hi > lo) total += hi - lo;
      }
      return static_cast<double>(total) / static_cast<double>(end - start);
    };
    auto none = [](SimTime, SimTime) { return 0.0; };
    const bool cache_visible = attack_name != "memca (lock)" && attack_name != "brute-force";
    cloud::LlcModel llc;
    Rng rng = bed.fork_rng("llc-defense");
    const TimeSeries misses = llc.sample_series(
        4 * kMinute, msec(100),
        cache_visible ? std::function<double(SimTime, SimTime)>(overlap) : none,
        cache_visible ? none : std::function<double(SimTime, SimTime)>(overlap), rng);
    report.llc_periodicity = monitor::detect_periodicity(misses, msec(100), 5, 60).periodic;
    report.llc_spectral = monitor::detect_spectral(misses, msec(100), 5, 60).periodic;
  }
  return report;
}

}  // namespace

int main() {
  print_banner(std::cout, "Detection matrix: attacks (rows) x monitoring stacks (columns)");
  Table table({"attack", "p95 (ms)", "CloudWatch 1min", "threshold 1s", "fine 50ms",
               "CUSUM 1s", "LLC autocorr", "LLC spectral"});
  for (const char* name : {"none", "memca (lock)", "memca (bus)", "brute-force"}) {
    const DetectionReport r = evaluate(name);
    table.add_row({
        r.attack,
        Table::num(to_millis(r.p95), 0),
        r.cloudwatch ? "ALARM" : "-",
        r.threshold_1s ? "ALARM" : "-",
        r.threshold_50ms ? "ALARM" : "-",
        r.cusum_1s ? "ALARM" : "-",
        r.llc_periodicity ? "ALARM" : "-",
        r.llc_spectral ? "ALARM" : "-",
    });
  }
  table.print(std::cout);

  std::cout
      << "\nWhat a defender should take away (Section V-B):\n"
         "  * coarse provider-side monitoring (CloudWatch) misses every MemCA variant;\n"
         "  * 50 ms monitoring sees the transient saturations — but costs 1200x the\n"
         "    samples of 1-minute monitoring, fleet-wide;\n"
         "  * the LLC counters only catch the bus-saturating kernel; the memory-lock\n"
         "    kernel, which does the real damage, leaves no cache footprint;\n"
         "  * stateful detection (CUSUM on the utilization *mean*) is the one 1-second\n"
         "    monitor that catches the lock variant — it keys on the attack's average\n"
         "    impact, which the attacker cannot hide without giving up damage;\n"
         "  * no single metric + granularity combination covers all variants — the\n"
         "    paper's closing argument for why MemCA-class attacks need new defenses.\n";
  return 0;
}
