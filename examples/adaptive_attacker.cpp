// Adaptive attacker demo: the MemCA-BE feedback commander converging to its
// dual goal — p95 > 1 s (damage) with millibottlenecks < 1 s (stealth) —
// with zero knowledge of the target's internals (Section IV-C).
//
// Prints the commander's epoch-by-epoch telemetry: what the prober measured,
// the Kalman-filtered estimate, and the parameter ladder it climbed.
//
//   $ ./examples/adaptive_attacker
#include <iostream>

#include "common/table.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

int main() {
  testbed::RubbosTestbed bed;
  bed.start();

  core::MemcaConfig config;
  config.enable_controller = true;
  config.controller.epoch = sec(std::int64_t{5});
  // Deliberately feeble starting point: the commander must discover
  // everything else through the prober.
  config.params.intensity = 0.3;
  config.params.burst_length = msec(100);
  config.params.burst_interval = sec(std::int64_t{4});
  auto attack = bed.make_attack(config);
  attack->start();
  bed.sim().run_for(5 * kMinute);

  print_banner(std::cout, "MemCA-BE commander telemetry (epoch = 5 s)");
  Table table({"t (s)", "probe p95 (ms)", "Kalman p95 (ms)", "R", "L (ms)", "I (s)",
               "stealth est (ms)", "damage", "stealth"});
  const auto& history = attack->controller()->history();
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (i % 2 != 0 && i + 5 < history.size()) continue;  // thin the early log
    const core::EpochRecord& rec = history[i];
    table.add_row({
        Table::num(to_seconds(rec.time), 0),
        Table::num(to_millis(rec.measured_rt), 0),
        Table::num(to_millis(rec.filtered_rt), 0),
        Table::num(rec.params.intensity, 2),
        Table::num(to_millis(rec.params.burst_length), 0),
        Table::num(to_seconds(rec.params.burst_interval), 1),
        Table::num(to_millis(rec.stealth_estimate), 0),
        rec.damage_ok ? "MET" : "-",
        rec.stealth_ok ? "ok" : "VIOLATED",
    });
  }
  table.print(std::cout);

  std::cout << "\nfinal verdict: goal "
            << (attack->controller()->goal_met() ? "MET" : "not met") << ", victim p95 = "
            << Table::num(to_millis(bed.clients().response_times().quantile(0.95)), 0)
            << " ms, bursts fired = " << attack->scheduler().bursts_fired() << "\n";
  std::cout << "\nThe escalation ladder (Section IV-C): intensity first (cheapest), then\n"
               "burst length up to the stealth bound / safety factor, then frequency;\n"
               "overshoot trades damage back for stealth by relaxing the interval.\n";
  return 0;
}
