// E-commerce SLO study: what MemCA costs the victim's business.
//
// The paper motivates the attack with industry numbers: Amazon found every
// 100 ms of added page latency costs ~1% of sales; Google requires p99 of
// 500 ms. This example sweeps the burst interval I (the attacker's
// cheapest knob) and reports, per configuration, the victim's latency SLO
// violations and a revenue-impact estimate.
//
//   $ ./examples/attack_study
#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "testbed/attack_lab.h"

using namespace memca;

namespace {

/// Amazon-style revenue model: 1% of sales lost per added 100 ms of mean
/// latency, saturating at 25%.
double revenue_loss_percent(double added_mean_ms) {
  return std::min(25.0, added_mean_ms / 100.0);
}

}  // namespace

int main() {
  // Reference run without the attack.
  testbed::AttackLabConfig clean;
  clean.attack_enabled = false;
  clean.duration = 2 * kMinute;
  const auto base = testbed::run_attack_lab(clean);
  const double base_mean_ms = to_millis(base.client_p50);

  print_banner(std::cout, "Victim's view: latency SLOs and revenue impact vs burst interval");
  std::cout << "clean baseline: p50 " << Table::num(to_millis(base.client_p50), 1)
            << " ms, p95 " << Table::num(to_millis(base.client_p95), 1) << " ms, p99 "
            << Table::num(to_millis(base.client_p99), 1) << " ms\n\n";

  Table table({"I (s)", "attacker duty", "p95 (ms)", "p99 (ms)", "p95>1s SLO", "p99>500ms SLO",
               "est. revenue loss", "autoscale?"});
  for (SimTime interval : {sec(std::int64_t{8}), sec(std::int64_t{4}), sec(std::int64_t{2}),
                           sec(std::int64_t{1})}) {
    testbed::AttackLabConfig config;
    config.params.burst_length = msec(500);
    config.params.burst_interval = interval;
    config.duration = 2 * kMinute;
    const auto r = testbed::run_attack_lab(config);
    // Mean added latency approximated from the drop fraction: each dropped
    // request pays at least the 1 s RTO.
    const double added_mean_ms =
        r.drop_fraction * 1000.0 + std::max(0.0, to_millis(r.client_p50) - base_mean_ms);
    table.add_row({
        Table::num(to_seconds(interval), 0),
        Table::num(config.params.duty_cycle() * 100.0, 0) + "%",
        Table::num(to_millis(r.client_p95), 0),
        Table::num(to_millis(r.client_p99), 0),
        r.client_p95 > sec(std::int64_t{1}) ? "VIOLATED" : "ok",
        r.client_p99 > msec(500) ? "VIOLATED" : "ok",
        Table::num(revenue_loss_percent(added_mean_ms), 1) + "%",
        r.autoscaler_triggered ? "YES" : "no",
    });
  }
  table.print(std::cout);

  std::cout << "\nReading: even the laziest schedule (one 500 ms burst every 8 s) breaks\n"
               "Google's p99 SLO; at the paper's I = 2 s the p95-under-1s SLO falls and\n"
               "the estimated revenue impact reaches several percent — all without a\n"
               "single scaling alarm. The attacker's cost is one co-located VM.\n";
  return 0;
}
