// Incident forensics of the Fig. 2 attack scenario, from the always-on
// flight recorder alone — no full trace, no metrics registry.
//
// Runs the calibrated 3-tier EC2 scenario twice through the sweep harness —
// attack-free baseline, then the memory-lock attack (L=500 ms, I=2 s) —
// with config.flightrec on. The gate reproduces the paper's forensic story
// from bounded black-box state:
//
//   * the baseline run emits zero incidents (no false positives);
//   * the attacked run emits at least one incident whose pinned-span
//     decomposition is retransmission-dominated — the tail is manufactured
//     by drops + the 1 s TCP minimum RTO, recovered here from a 2.5 MB ring
//     instead of a full-run arena;
//   * the recovered burst-interval estimate lands near the true 2 s.
//
// Side effects: writes fig_incident_forensics.incidents.json (structured
// incident records; the CI sweep-thread gate byte-diffs this file across
// MEMCA_SWEEP_THREADS=1/2/4) and fig_incident_forensics.annotations.json
// (Perfetto annotation slices) into the working directory.
#include <fstream>
#include <iostream>

#include "common/table.h"
#include "flightrec/incident.h"
#include "testbed/attack_lab.h"

using namespace memca;

namespace {

testbed::AttackLabConfig make_cell(bool attack_enabled) {
  testbed::AttackLabConfig config;
  config.testbed.flightrec = true;
  config.params.burst_length = msec(500);
  config.params.burst_interval = sec(std::int64_t{2});
  config.params.type = cloud::MemoryAttackType::kMemoryLock;
  config.duration = 3 * kMinute;
  config.attack_enabled = attack_enabled;
  return config;
}

void print_incidents(const std::string& title, const testbed::AttackLabResult& result) {
  print_banner(std::cout, title);
  std::cout << result.incidents.size() << " incidents (" << result.incidents_dropped
            << " beyond budget), sketch p99 "
            << Table::num(result.client_sketch.quantile(0.99) / 1000.0, 0) << " ms over "
            << result.client_sketch.count() << " samples\n";
  if (result.incidents.empty()) return;
  Table table({"id", "trigger", "window (s)", "dip depth", "est. interval (s)", "drops",
               "retrans", "VLRT reqs", "retrans-dominated"});
  for (const flightrec::Incident& inc : result.incidents) {
    table.add_row({Table::num(inc.id), flightrec::to_string(inc.trigger),
                   Table::num(to_seconds(inc.window_start), 1) + "-" +
                       Table::num(to_seconds(inc.window_end), 1),
                   Table::num(inc.dip_depth, 3),
                   Table::num(to_seconds(inc.burst_interval_estimate), 2),
                   Table::num(inc.drop_count), Table::num(inc.retransmissions),
                   Table::num(inc.affected_requests),
                   Table::num(100.0 * inc.decomposition.retrans_dominated_share(), 1) + " %"});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  // Both cells share the testbed prefix, so a sweep worker warms one world
  // and rewinds it; threads come from MEMCA_SWEEP_THREADS (the CI invariance
  // gate runs 1/2/4 and byte-diffs the JSON below).
  std::vector<testbed::AttackLabConfig> cells = {make_cell(false), make_cell(true)};
  std::vector<testbed::AttackLabResult> results = testbed::run_attack_lab_sweep(cells);
  const testbed::AttackLabResult& baseline = results[0];
  const testbed::AttackLabResult& attacked = results[1];

  print_incidents("Incident forensics — baseline (no attack, 3 min, 3500 users)", baseline);
  print_incidents("Incident forensics — memory-lock attack L=500ms I=2s", attacked);

  const std::vector<std::string> tier_names = {"apache", "tomcat", "mysql"};
  {
    std::ofstream json("fig_incident_forensics.incidents.json");
    flightrec::write_incidents_json(json, attacked.incidents, tier_names);
    std::ofstream annotations("fig_incident_forensics.annotations.json");
    flightrec::write_incident_annotations(annotations, attacked.incidents);
  }
  std::cout << "\nwrote fig_incident_forensics.incidents.json and "
               "fig_incident_forensics.annotations.json (open alongside a chrome trace "
               "at https://ui.perfetto.dev)\n";

  // Gate: no baseline false positives; the attacked run yields at least one
  // incident whose VLRT decomposition is retransmission-dominated and whose
  // recovered burst interval is within 50% of the true 2 s.
  bool attacked_forensics = false;
  for (const flightrec::Incident& inc : attacked.incidents) {
    const bool retrans_dominated = inc.decomposition.tail_count > 0 &&
                                   inc.decomposition.retrans_dominated_share() > 0.5;
    const double interval_s = to_seconds(inc.burst_interval_estimate);
    const bool interval_ok = interval_s > 1.0 && interval_s < 3.0;
    if (retrans_dominated && interval_ok) attacked_forensics = true;
  }
  const bool baseline_clean = baseline.incidents.empty() && baseline.incidents_dropped == 0;
  std::cout << "baseline clean (0 incidents): " << (baseline_clean ? "PASS" : "FAIL")
            << "\nattack forensics (>=1 retransmission-dominated incident, interval "
               "estimate ~2 s): "
            << (attacked_forensics ? "PASS" : "FAIL") << "\n";
  return baseline_clean && attacked_forensics ? 0 : 1;
}
