// Ablation: the damage/stealth trade-off across the attack parameter space
// A(R, L, I) — the design space of Section IV-A. For each cell: damage
// (client p95/p98), stealth (mean saturation length, coarse-monitor
// visibility, auto-scaling verdict).
//
// All three sweeps run their cells through run_attack_lab_sweep, which
// fans them out across hardware threads (MEMCA_SWEEP_THREADS overrides);
// tables are printed in cell order, bit-identical to a sequential run.
#include <fstream>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "metrics/run_report.h"
#include "testbed/attack_lab.h"

using namespace memca;

namespace {

void sweep_length_interval() {
  print_banner(std::cout, "Sweep L x I (memory-lock, intensity 1.0)");
  std::vector<testbed::AttackLabConfig> cells;
  for (SimTime interval : {sec(std::int64_t{1}), sec(std::int64_t{2}), sec(std::int64_t{4})}) {
    for (SimTime length : {msec(100), msec(300), msec(500), msec(800)}) {
      if (length >= interval) continue;
      testbed::AttackLabConfig config;
      config.params.burst_length = length;
      config.params.burst_interval = interval;
      config.duration = 2 * kMinute;
      config.testbed.metrics = true;
      cells.push_back(config);
    }
  }
  auto results = testbed::run_attack_lab_sweep(cells);

  Table table({"L (ms)", "I (s)", "p95 (ms)", "p98 (ms)", "drop %", "CPU mean %",
               "sat (ms)", "autoscale?"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& r = results[i];
    table.add_row({
        Table::num(to_millis(cells[i].params.burst_length), 0),
        Table::num(to_seconds(cells[i].params.burst_interval), 0),
        Table::num(to_millis(r.client_p95), 0),
        Table::num(to_millis(r.client_p98), 0),
        Table::num(r.drop_fraction * 100.0, 1),
        Table::num(r.cpu_mean * 100.0, 0),
        Table::num(r.mean_saturation_s * 1000.0, 0),
        r.autoscaler_triggered ? "YES" : "no",
    });
  }
  table.print(std::cout);

  // Sweep-wide aggregate report: the per-cell registries merge (in cell
  // order, so the bytes are thread-count-independent) into one registry,
  // which the run-report builder treats like any single run's.
  const auto merged = testbed::merge_sweep_registries(results);
  metrics::RunReportOptions options;
  options.scenario = "ablation_params_LxI_sweep";
  options.scrape_resolution = msec(50);
  const metrics::RunReport report = metrics::build_run_report(*merged, options);
  std::ofstream json("ablation_params_LxI.runreport.json");
  metrics::write_json(json, report);
  std::cout << "merged sweep report: " << results.size() << " cells, "
            << report.submitted << " attempts, " << report.dropped
            << " drops -> ablation_params_LxI.runreport.json\n";
}

void sweep_intensity() {
  print_banner(std::cout, "Sweep intensity R (L=500ms, I=2s, memory-lock)");
  const std::vector<double> intensities = {0.3, 0.5, 0.7, 0.9, 1.0};
  std::vector<testbed::AttackLabConfig> cells;
  for (double r_int : intensities) {
    testbed::AttackLabConfig config;
    config.params.intensity = r_int;
    config.params.burst_length = msec(500);
    config.params.burst_interval = sec(std::int64_t{2});
    config.duration = 2 * kMinute;
    cells.push_back(config);
  }
  const auto results = testbed::run_attack_lab_sweep(cells);

  Table table({"R", "D(on)", "p95 (ms)", "drop %", "CPU mean %"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& r = results[i];
    table.add_row({
        Table::num(intensities[i], 2),
        Table::num(r.d_on, 3),
        Table::num(to_millis(r.client_p95), 0),
        Table::num(r.drop_fraction * 100.0, 1),
        Table::num(r.cpu_mean * 100.0, 0),
    });
  }
  table.print(std::cout);
}

void sweep_attack_type() {
  print_banner(std::cout, "Attack kernel: memory-lock vs bus-saturate (L=500ms, I=2s)");
  const std::vector<cloud::MemoryAttackType> types = {
      cloud::MemoryAttackType::kMemoryLock, cloud::MemoryAttackType::kBusSaturate};
  std::vector<testbed::AttackLabConfig> cells;
  for (auto type : types) {
    testbed::AttackLabConfig config;
    config.params.type = type;
    config.params.burst_length = msec(500);
    config.params.burst_interval = sec(std::int64_t{2});
    config.duration = 2 * kMinute;
    cells.push_back(config);
  }
  const auto results = testbed::run_attack_lab_sweep(cells);

  Table table({"kernel", "D(on)", "p95 (ms)", "drop %"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& r = results[i];
    table.add_row({
        to_string(types[i]),
        Table::num(r.d_on, 3),
        Table::num(to_millis(r.client_p95), 0),
        Table::num(r.drop_fraction * 100.0, 1),
    });
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  sweep_length_interval();
  sweep_intensity();
  sweep_attack_type();
  std::cout
      << "\nShape checks: damage grows with L and with 1/I; bursts shorter than the\n"
         "cross-tier fill time (~300 ms here) cause almost no drops (Eq. 7); the\n"
         "bus-saturate kernel barely dents a single co-located victim while the\n"
         "memory-lock kernel collapses D (Section III finding 3); every cell keeps\n"
         "the auto-scaler silent except none — stealth is structural, not tuned.\n";
  return 0;
}
