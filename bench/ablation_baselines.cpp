// Ablation: MemCA vs the baselines — a damage x stealth matrix.
//
//   clean          — no attack (reference);
//   memca          — transient bursts (L=500ms, I=2s, memory-lock);
//   brute-force    — the same kernel running continuously (Zhang et al.);
//   flooding       — a 500 req/s heavy-page HTTP flood.
//
// Detectors: CloudWatch-style auto-scaling (1-min avg CPU > 85%), 1-second
// threshold monitor (2 consecutive breaches), and request-rate anomaly
// (offered front-tier rate > 1.5x nominal).
#include <iostream>

#include "common/table.h"
#include "core/baselines.h"
#include "monitor/autoscaler.h"
#include "monitor/detector.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

namespace {

struct Row {
  std::string name;
  SimTime p95 = 0;
  SimTime p99 = 0;
  double throughput = 0.0;
  double cpu_mean = 0.0;
  bool autoscale = false;
  bool one_second = false;
  bool rate_anomaly = false;
};

Row run(const std::string& name) {
  testbed::RubbosTestbed bed;
  bed.start();

  std::unique_ptr<core::MemcaAttack> memca_attack;
  std::unique_ptr<core::BruteForceMemoryAttack> brute;
  std::unique_ptr<core::FloodingAttack> flood;
  if (name == "memca") {
    core::MemcaConfig config;
    config.enable_controller = false;
    config.params.burst_length = msec(500);
    config.params.burst_interval = sec(std::int64_t{2});
    memca_attack = bed.make_attack(config);
    memca_attack->start();
  } else if (name == "brute-force") {
    brute = std::make_unique<core::BruteForceMemoryAttack>(
        bed.sim(), bed.mysql_host(), bed.adversary_vm(),
        cloud::MemoryAttackType::kMemoryLock);
    brute->start();
  } else if (name == "flooding") {
    flood = std::make_unique<core::FloodingAttack>(bed.sim(), bed.router(), 500.0,
                                                   bed.profile(), bed.fork_rng("flood"));
    flood->start();
  }
  bed.sim().run_for(3 * kMinute);

  Row row;
  row.name = name;
  row.p95 = bed.clients().response_times().quantile(0.95);
  row.p99 = bed.clients().response_times().quantile(0.99);
  row.throughput = bed.clients().throughput();
  const TimeSeries& cpu = bed.mysql_cpu().series();
  row.cpu_mean = cpu.mean();
  row.autoscale = monitor::evaluate_autoscaler(cpu, monitor::AutoScalerConfig{}).triggered;
  monitor::AutoScalerConfig one_second;
  one_second.sampling_period = sec(std::int64_t{1});
  one_second.consecutive_periods = 2;
  row.one_second = monitor::evaluate_autoscaler(cpu, one_second).triggered;
  const double offered =
      static_cast<double>(bed.system().tier(0).offered()) / to_seconds(bed.sim().now());
  row.rate_anomaly = offered > 1.5 * 500.0;
  return row;
}

}  // namespace

int main() {
  print_banner(std::cout, "MemCA vs baselines: damage x stealth matrix (3-minute runs)");
  Table table({"attack", "p95 (ms)", "p99 (ms)", "goodput (req/s)", "CPU mean %",
               "autoscale (1min)", "1s monitor", "rate anomaly"});
  for (const char* name : {"clean", "memca", "brute-force", "flooding"}) {
    const Row row = run(name);
    table.add_row({
        row.name,
        Table::num(to_millis(row.p95), 0),
        Table::num(to_millis(row.p99), 0),
        Table::num(row.throughput, 0),
        Table::num(row.cpu_mean * 100.0, 0),
        row.autoscale ? "TRIGGERED" : "silent",
        row.one_second ? "ALARM" : "silent",
        row.rate_anomaly ? "FLAGGED" : "silent",
    });
  }
  table.print(std::cout);
  std::cout
      << "\nShape checks (paper Sections V-B, VI): brute force does the most damage but\n"
         "trips CPU monitors at every granularity; flooding is flagged by its own\n"
         "traffic volume; MemCA reaches the 1 s p95 damage goal with every detector\n"
         "silent.\n";
  return 0;
}
