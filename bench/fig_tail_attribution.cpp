// Tail attribution of the Fig. 2 attack scenario: per-request causal
// breakdown of where the >1 s client tail comes from.
//
// Runs the calibrated 3-tier EC2 scenario twice — no attack, then the
// memory-lock attack (L=500 ms, I=2 s) — with per-request tracing on, and
// attributes every completed logical request's latency to queue wait,
// (degraded) service, RPC thread-holding, TCP RTO wait and slack. Paper
// claim reproduced here: the vast majority of >1 s client responses are
// retransmission-dominated — the tail is manufactured by front-tier drops
// plus the 1 s TCP minimum RTO, not by slow service.
//
// Side effects: writes fig_tail_attribution.csv (one row per tail request)
// and fig_tail_attribution_trace.json (Chrome trace-event / Perfetto
// timeline of the attacked run) into the working directory.
#include <fstream>
#include <iostream>

#include "common/table.h"
#include "testbed/rubbos_testbed.h"
#include "trace/attributor.h"
#include "trace/exporters.h"

using namespace memca;

namespace {

constexpr SimTime kDuration = 3 * kMinute;

struct RunOutput {
  trace::TailSummary summary;
  std::vector<trace::TailAttributor::CauseRow> rows;
};

RunOutput run_scenario(bool attack_enabled, bool export_files) {
  testbed::TestbedConfig config;
  config.trace = true;
  testbed::RubbosTestbed bed(config);
  bed.start();

  std::unique_ptr<core::MemcaAttack> attack;
  if (attack_enabled) {
    core::MemcaConfig memca;
    memca.enable_controller = false;
    memca.params.burst_length = msec(500);
    memca.params.burst_interval = sec(std::int64_t{2});
    memca.params.type = cloud::MemoryAttackType::kMemoryLock;
    attack = bed.make_attack(memca);
    attack->start();
  }
  bed.sim().run_for(kDuration);
  if (attack) attack->stop();

  trace::TailAttributor attributor(*bed.trace(), bed.system().depth());
  if (export_files) {
    std::ofstream csv("fig_tail_attribution.csv");
    trace::write_attribution_csv(csv, attributor);
    std::ofstream json("fig_tail_attribution_trace.json");
    trace::write_chrome_trace(json, *bed.trace(),
                              trace::ChromeTraceOptions{bed.tier_names(), 0, true});
    std::cout << "wrote fig_tail_attribution.csv and fig_tail_attribution_trace.json ("
              << bed.trace()->size() << " span events)\n";
  }
  return RunOutput{attributor.summary(), attributor.tail_rows()};
}

void print_run(const std::string& title, const RunOutput& out) {
  print_banner(std::cout, title);
  const trace::TailSummary& s = out.summary;
  std::cout << "completed " << s.completed << ", abandoned " << s.abandoned
            << ", tail (RT >= " << to_millis(s.threshold) << " ms): " << s.tail_count
            << " requests, " << s.tail_retrans_dominated << " retransmission-dominated ("
            << Table::num(100.0 * s.retrans_dominated_share(), 1) << "%)\n";
  if (s.tail_count == 0) return;
  Table table({"cause", "total (s)", "share of tail time", "requests dominated"});
  for (const auto& row : out.rows) {
    table.add_row({trace::to_string(row.cause), Table::num(to_seconds(row.total_us), 2),
                   Table::num(100.0 * row.share, 1) + " %", Table::num(row.dominated)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  print_run("Tail attribution — baseline (no attack, 3 min, 3500 users)",
            run_scenario(false, false));
  print_run(
      "Tail attribution — memory-lock attack L=500ms I=2s (Fig. 2 scenario)",
      run_scenario(true, true));
  std::cout << "\nPaper check: under attack the >1 s client tail must be dominated by\n"
               "TCP RTO wait (front-tier drops + 1 s minimum RTO), not by service time.\n"
               "Open fig_tail_attribution_trace.json at https://ui.perfetto.dev\n";
  return 0;
}
