// Performance micro-benchmarks (google-benchmark): the hot paths of the
// simulation substrate. These guard the property that a 3-minute, 3500-user
// scenario runs in well under a second of wall-clock, which is what makes
// the parameter sweeps in the other benches affordable.
//
// To record a trackable snapshot (EXPERIMENTS.md "Performance"):
//   ./build/bench/perf_microbench --benchmark_format=json > BENCH_<rev>.json
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cloud/membw.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "flightrec/flight_recorder.h"
#include "flightrec/quantile_sketch.h"
#include "metrics/registry.h"
#include "queueing/request_pool.h"
#include "queueing/tier.h"
#include "sim/simulator.h"
#include "sweep/sweep_runner.h"
#include "testbed/attack_lab.h"
#include "trace/recorder.h"

namespace memca {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int sink = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule_at(usec(i), [&sink] { ++sink; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_SimulatorCancelHeavy(benchmark::State& state) {
  // 10k scheduled events of which 80% are cancelled before they fire:
  // exercises slot recycling and the lazy heap compaction that sweeps
  // cancelled entries once they outnumber live ones.
  for (auto _ : state) {
    Simulator sim;
    int sink = 0;
    std::vector<EventHandle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(sim.schedule_at(usec(i), [&sink] { ++sink; }));
    }
    for (int i = 0; i < 10000; ++i) {
      if (i % 5 != 0) handles[static_cast<std::size_t>(i)].cancel();
    }
    sim.run_all();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorCancelHeavy);

void BM_PeriodicTaskTick(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int ticks = 0;
    PeriodicTask task(sim, msec(1), [&ticks] { ++ticks; });
    sim.run_until(sec(std::int64_t{10}));
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_PeriodicTaskTick);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram hist;
  Rng rng(1);
  std::vector<SimTime> values;
  for (int i = 0; i < 4096; ++i) values.push_back(rng.exponential_time(msec(20)));
  std::size_t i = 0;
  for (auto _ : state) {
    hist.record(values[i++ & 4095]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  LatencyHistogram hist;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) hist.record(rng.exponential_time(msec(20)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.quantile(0.95));
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_MemBwSharePackage(benchmark::State& state) {
  cloud::MemoryBandwidthModel model;
  cloud::PackageSpec package;
  std::vector<cloud::StreamDemand> streams;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    streams.push_back({i, 8.0, i == 0 ? 0.9 : 0.0, 1});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.share_package(package, streams));
  }
}
BENCHMARK(BM_MemBwSharePackage)->Arg(2)->Arg(6)->Arg(12);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(1000.0));
  }
}
BENCHMARK(BM_RngExponential);

void BM_FastZipf(benchmark::State& state) {
  // One skewed record-id draw (Arg = theta x 100): the per-operation price
  // the OLTP tier pays per transaction record. The Gray et al. construction
  // keeps this one uniform plus one pow() at every skew and table size.
  FastZipf zipf(static_cast<double>(state.range(0)) / 100.0, 2048);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastZipf)->Arg(0)->Arg(50)->Arg(99);

void BM_TraceRecorderRecord(benchmark::State& state) {
  // Raw recorder append cost (the per-hook price when tracing is on).
  trace::TraceRecorder recorder;
  trace::TraceEvent ev;
  ev.kind = trace::EventKind::kTierSpan;
  SimTime t = 0;
  for (auto _ : state) {
    ev.time = ++t;
    recorder.record(ev);
    if (recorder.size() >= (std::size_t{1} << 22)) recorder.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecorderRecord);

void BM_TraceRecorderRingRecord(benchmark::State& state) {
  // Ring-mode append: same fast path as the arena, but the "chunk" boundary
  // wraps in place instead of allocating, so a steady-state run never grows.
  // The rate should match BM_TraceRecorderRecord without the clear() resets.
  trace::TraceRecorder::Config config;
  config.ring_capacity = std::size_t{1} << 16;
  trace::TraceRecorder recorder(config);
  trace::TraceEvent ev;
  ev.kind = trace::EventKind::kTierSpan;
  SimTime t = 0;
  for (auto _ : state) {
    ev.time = ++t;
    recorder.record(ev);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecorderRingRecord);

void BM_QuantileSketch(benchmark::State& state) {
  // One streaming latency sample through the five-quantile P² sketch — the
  // per-completion price the flight recorder adds on the client path (plus
  // one more per tier departure for the residence sketches).
  flightrec::QuantileSketch sketch;
  Rng rng(1);
  std::vector<double> values(4096);
  for (auto& v : values) v = static_cast<double>(rng.exponential_time(msec(20)));
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.record(values[i++ & 4095]);
  }
  benchmark::DoNotOptimize(sketch.quantile(0.99));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantileSketch);

void BM_FlightRecorder(benchmark::State& state) {
  // One flight-recorder tick (timeline frame capture + incident bookkeeping)
  // over a synthetic 3-tier probe set. At the default 50 ms resolution this
  // runs 20x per simulated second, so even a microsecond here is noise
  // against the testbed's per-second event cost.
  Simulator sim;
  trace::TraceRecorder::Config ring_config;
  ring_config.ring_capacity = std::size_t{1} << 14;
  trace::TraceRecorder ring(ring_config);
  flightrec::FlightRecorder flight(sim, &ring, {});
  flight.set_capacity_probe([] { return 0.95; });
  int depth = 12;
  std::int64_t rejected = 0;
  for (std::size_t t = 0; t < 3; ++t) {
    flight.set_queue_depth_probe(t, [&depth] { return depth; });
    flight.set_rejected_probe(t, [&rejected] { return rejected; });
  }
  flight.set_rto_backlog_probe([] { return 2; });
  flight.start();
  for (auto _ : state) {
    ++depth;
    sim.run_for(msec(50));
  }
  benchmark::DoNotOptimize(flight.timeline().total());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorder);

void BM_TraceEmitDetached(benchmark::State& state) {
  // The hook-site cost when tracing is compiled in but no recorder is
  // attached: must stay a null-pointer check (the zero-cost claim for every
  // run that doesn't opt in).
  trace::TraceEvent ev;
  SimTime t = 0;
  for (auto _ : state) {
    ev.time = ++t;
    trace::emit(nullptr, ev);
    benchmark::DoNotOptimize(ev);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitDetached);

void BM_MetricsCounterInc(benchmark::State& state) {
  // The per-event price of an attached counter handle: a null check plus an
  // increment through a pre-resolved pointer.
  metrics::Registry registry;
  metrics::Counter counter = registry.counter("bench_counter");
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsCounterDetached(benchmark::State& state) {
  // The hook-site cost when metrics are off: the detached handle must
  // reduce to one predictable branch (the zero-cost claim mirroring
  // BM_TraceEmitDetached).
  metrics::Counter counter;
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterDetached);

void BM_MetricsScrape(benchmark::State& state) {
  // One scrape of a testbed-sized registry (Arg = instrument count):
  // appends every counter/gauge/probe to its series. At 50 ms resolution
  // this runs 20x per simulated second, so it must stay microseconds.
  metrics::Registry registry;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    auto counter = registry.counter("bench_counter", {{"i", std::to_string(i)}});
    counter.inc(i);
  }
  SimTime now = 0;
  for (auto _ : state) {
    registry.scrape(now += msec(50));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MetricsScrape)->Arg(32);

void BM_RequestPoolChurn(benchmark::State& state) {
  // Steady-state request turnover: acquire from the warm free list, touch
  // the fields the workload generators stamp, release. After warm-up every
  // iteration must be allocation-free — the pooled slot keeps its demand
  // vector's capacity across reuse (the property the counting-allocator
  // test asserts for the full testbed).
  queueing::RequestPool pool;
  pool.set_depth(3);
  {
    // Warm a tier-3 working set so growth is amortised out of the loop.
    std::vector<queueing::Request*> warm;
    for (int i = 0; i < 512; ++i) warm.push_back(pool.acquire());
    for (queueing::Request* r : warm) {
      r->demand_us.assign({120.0, 800.0, 2400.0});
      pool.release(r);
    }
  }
  queueing::Request::Id id = 0;
  for (auto _ : state) {
    queueing::Request* r = pool.acquire();
    r->id = ++id;
    r->page_class = 1;
    r->demand_us.assign({120.0, 800.0, 2400.0});
    pool.hot().reset_stamps(r->pool_slot);
    benchmark::DoNotOptimize(r);
    pool.release(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestPoolChurn);

void BM_TierBatchDrain(benchmark::State& state) {
  // Same-instant completion batches through a single tier (Arg = batch
  // width): `width` equal-demand requests start together, so all their
  // completions land on one simulated instant and the tier drains them in
  // one pass — each event sees batch_continues() until the last member
  // settles the pending counters with a single registry flush. This is the
  // path the batched-drain optimisation targets; compare widths to see the
  // per-completion cost fall as the flush amortises.
  const int width = static_cast<int>(state.range(0));
  metrics::Registry registry;
  for (auto _ : state) {
    Simulator sim;
    queueing::RequestPool pool;
    pool.set_depth(1);
    queueing::TierConfig config;
    config.name = "batch";
    config.threads = 4 * width;
    config.workers = width;
    queueing::TierServer tier(sim, pool, config, 0);
    tier.set_metrics({registry.counter("offered"), registry.counter("admitted"),
                      registry.counter("rejected"), registry.counter("completed")});
    std::int64_t done = 0;
    tier.set_reply_sink([&pool, &done](queueing::Request* r) {
      ++done;
      pool.release(r);
    });
    for (int round = 0; round < 64; ++round) {
      for (int i = 0; i < width; ++i) {
        queueing::Request* r = pool.acquire();
        r->id = static_cast<queueing::Request::Id>(round * width + i);
        r->demand_us.assign({100.0});
        pool.hot().reset_stamps(r->pool_slot);
        tier.try_submit(r);
      }
      sim.run_for(msec(1));
    }
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 64 * width);
}
BENCHMARK(BM_TierBatchDrain)->Arg(1)->Arg(8)->Arg(64);

void BM_TimingWheelRto(benchmark::State& state) {
  // The retransmission-timer population the wheel exists for: thousands of
  // ~1 s RTO timers of which 90% are cancelled before firing (the reply
  // arrived in time). Long delays park in the wheel instead of sifting
  // through the arrival heap; cancelled entries die at bucket flush or in
  // the compaction sweep without ever touching the heap.
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    std::vector<EventHandle> handles;
    handles.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
      handles.push_back(
          sim.schedule_in(sec(std::int64_t{1}) + msec(i % 2000), [&fired] { ++fired; }));
    }
    for (int i = 0; i < 4096; ++i) {
      if (i % 10 != 0) handles[static_cast<std::size_t>(i)].cancel();
    }
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TimingWheelRto);

void BM_ClientPopulationTick(benchmark::State& state) {
  // One simulated second of a client population against a 2-tier system
  // whose capacity scales with the population (no overload, throughput =
  // N/Z). Arg0 picks the model (0 = exact per-user timers, 1 = cohort
  // batching), Arg1 the population. The exact model costs one timer event
  // per user per cycle; the cohort model costs ~20 ticks plus per-page
  // batched sends per second regardless of N — the gap is the tentpole.
  const bool cohort = state.range(0) == 1;
  const int users = static_cast<int>(state.range(1));
  const int k = users / 3500;
  Simulator sim;
  queueing::NTierSystem system(sim, {{"front", 200 * k, 4 * k}, {"back", 100 * k, 2 * k}});
  workload::RequestRouter router(system);
  workload::ClientConfig config;
  config.num_users = users;
  config.mode = cohort ? workload::ClientMode::kCohort : workload::ClientMode::kExact;
  workload::ClosedLoopClients clients(
      sim, router, workload::uniform_profile({100.0, 500.0}, sec(std::int64_t{7})),
      config, Rng(1));
  clients.start();
  sim.run_until(sec(std::int64_t{20}));  // past ramp-up, at steady state
  for (auto _ : state) {
    sim.run_for(sec(std::int64_t{1}));
  }
  benchmark::DoNotOptimize(clients.completed());
  state.counters["bytes_per_user"] = benchmark::Counter(
      static_cast<double>(clients.memory_bytes()) / static_cast<double>(users));
  state.SetItemsProcessed(state.iterations());  // simulated seconds
}
BENCHMARK(BM_ClientPopulationTick)
    ->Args({0, 3500})->Args({0, 35000})->Args({0, 350000})
    ->Args({1, 3500})->Args({1, 35000})->Args({1, 350000})
    ->Unit(benchmark::kMillisecond);

void BM_ClientPopulationScale(benchmark::State& state) {
  // The scale story (BENCH_PR9.json): the full paper testbed at its fixed
  // calibration (3-tier capacity sized for 3.5k users), asked to carry a
  // cohort population from the paper's 3.5k up to 3.5M. Above ~3.5k the
  // system saturates and the population lives in RTO backoff — the regime
  // where per-user timers would melt (3.5M heap timers) but cohort draws
  // keep the event rate pinned to service capacity plus batched arrival
  // bursts. Reported: ms per simulated second and bytes/user (population
  // state only, which stays bounded by in-flight + ledger, not N).
  const int users = static_cast<int>(state.range(0));
  testbed::TestbedConfig config;
  config.client_mode = workload::ClientMode::kCohort;
  config.num_users = users;
  testbed::RubbosTestbed bed(config);
  bed.start();
  bed.sim().run_until(sec(std::int64_t{20}));  // ramp-up + first RTO waves
  for (auto _ : state) {
    bed.sim().run_for(sec(std::int64_t{1}));
  }
  benchmark::DoNotOptimize(bed.clients().completed());
  state.counters["bytes_per_user"] = benchmark::Counter(
      static_cast<double>(bed.clients().memory_bytes()) / static_cast<double>(users));
  state.counters["pool_slots"] =
      benchmark::Counter(static_cast<double>(bed.sim().pool_slots()));
  state.SetItemsProcessed(state.iterations());  // simulated seconds
}
BENCHMARK(BM_ClientPopulationScale)
    ->Arg(3500)->Arg(35000)->Arg(350000)->Arg(3500000)
    ->Unit(benchmark::kMillisecond);

void BM_ClientPopulationScaleQuantized(benchmark::State& state) {
  // BM_ClientPopulationScale with service demands on the 100 us grid: the
  // PR 10 completion batch drain plus lazy demand sampling (a submit the
  // saturated front tier would reject skips its three RNG draws — at 3.5M
  // users the drop storm is ~1.75M rejected submissions per simulated
  // second, the dominant per-event cost of the exact-demand run). The
  // gate: the 3.5M row ≥1.5x over BENCH_PR9's exact-mode
  // BM_ClientPopulationScale/3500000.
  //
  // Iterations are pinned (see registration) because the overloaded
  // population is non-stationary: RTO backoff synchronises 3.5M users into
  // retransmit waves whose decades cost 20-40x the quiet decades between
  // them. Auto-calibration would give each variant a different iteration
  // count and therefore a different simulated window, and the window choice
  // — not the code under test — would dominate the comparison. Pinning makes
  // every variant measure the identical simulated span t = 20 s .. 50 s
  // (one wave decade plus quiet decades, one warm world per repetition).
  const int users = static_cast<int>(state.range(0));
  testbed::TestbedConfig config;
  config.client_mode = workload::ClientMode::kCohort;
  config.service_quantum_us = 100;
  config.num_users = users;
  testbed::RubbosTestbed bed(config);
  bed.start();
  bed.sim().run_until(sec(std::int64_t{20}));  // ramp-up + first RTO waves
  for (auto _ : state) {
    bed.sim().run_for(sec(std::int64_t{1}));
  }
  benchmark::DoNotOptimize(bed.clients().completed());
  state.counters["bytes_per_user"] = benchmark::Counter(
      static_cast<double>(bed.clients().memory_bytes()) / static_cast<double>(users));
  state.counters["pool_slots"] =
      benchmark::Counter(static_cast<double>(bed.sim().pool_slots()));
  state.SetItemsProcessed(state.iterations());  // simulated seconds
}
BENCHMARK(BM_ClientPopulationScaleQuantized)
    ->Arg(3500)->Arg(35000)->Arg(350000)->Arg(3500000)
    ->Iterations(30)->Unit(benchmark::kMillisecond);

void BM_FullTestbedSecond(benchmark::State& state) {
  // One simulated second of the full attacked 3500-user scenario per
  // iteration (construction amortised out by measuring a long run).
  // Arg(1) runs the same scenario with per-request tracing on; Arg(2) with
  // the metrics registry + 50 ms scraper on; Arg(3) with the always-on
  // flight recorder (span ring + sketches + timeline + incident detection).
  // Comparing each rate against Arg(0) measures the end-to-end overhead
  // (< 5% target for tracing and for the flight recorder, < 3% for
  // metrics). The testbed is driven directly — run_attack_lab would also
  // time post-hoc analysis, which is not an instrumentation cost.
  // Arg(4) is the PR 10 quantized discipline at the paper's calibration
  // scale: demands on the 100 us grid, completions draining as groups. At
  // 3.5k users completion groups are mostly singletons (~500 req/s against
  // 10k grid instants/s), so this variant documents that quantization is
  // cost-neutral where it cannot help; its payoff is population scale
  // (BM_FullTestbedSecondScale below).
  for (auto _ : state) {
    testbed::TestbedConfig config;
    config.trace = state.range(0) == 1;
    config.metrics = state.range(0) == 2;
    config.flightrec = state.range(0) == 3;
    if (state.range(0) == 4) config.service_quantum_us = 100;
    testbed::RubbosTestbed bed(config);
    bed.start();
    core::MemcaConfig memca;
    memca.enable_controller = false;
    memca.params.burst_length = msec(500);
    memca.params.burst_interval = sec(std::int64_t{2});
    memca.params.type = cloud::MemoryAttackType::kMemoryLock;
    auto attack = bed.make_attack(memca);
    attack->start();
    bed.sim().run_for(sec(std::int64_t{10}));
    attack->stop();
    benchmark::DoNotOptimize(bed.clients().completed());
  }
  state.SetItemsProcessed(state.iterations() * 10);  // simulated seconds
}
BENCHMARK(BM_FullTestbedSecond)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_FullTestbedSecondScale(benchmark::State& state) {
  // The tentpole figure: one simulated second of the full *attacked* Fig. 2
  // scenario carried by a 3.5M-user cohort population, exact demands
  // (quantum 0) vs the quantized batch drain (quantum 100 us). Construction
  // and the 20 s ramp sit outside the timed loop, like
  // BM_ClientPopulationScale — this is the marginal cost of a simulated
  // second at population scale, the number the < 10 ms/simulated-second
  // headline and the ≥1.5x-vs-BENCH_PR9 gate read. Iterations are pinned so
  // both rows measure the identical simulated window t = 20 s .. 50 s (see
  // BM_ClientPopulationScaleQuantized for why auto-calibration would not).
  const int users = static_cast<int>(state.range(0));
  testbed::TestbedConfig config;
  config.client_mode = workload::ClientMode::kCohort;
  config.num_users = users;
  config.service_quantum_us = static_cast<std::uint32_t>(state.range(1));
  testbed::RubbosTestbed bed(config);
  bed.start();
  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  memca.params.type = cloud::MemoryAttackType::kMemoryLock;
  auto attack = bed.make_attack(memca);
  attack->start();
  bed.sim().run_until(sec(std::int64_t{20}));  // ramp-up + first RTO waves
  for (auto _ : state) {
    bed.sim().run_for(sec(std::int64_t{1}));
  }
  attack->stop();
  benchmark::DoNotOptimize(bed.clients().completed());
  state.SetItemsProcessed(state.iterations());  // simulated seconds
}
BENCHMARK(BM_FullTestbedSecondScale)
    ->Args({3500000, 0})->Args({3500000, 100})
    ->Iterations(30)->Unit(benchmark::kMillisecond);

void BM_FullTestbedSecondOltp(benchmark::State& state) {
  // BM_FullTestbedSecond with the lock/CC-aware OLTP bottleneck swapped in
  // (default transaction mix, theta 0.9). The rate gap against the FIFO
  // variant is the whole price of the lock table on the hot path —
  // transaction sampling, ordered acquisition, convoy wakeups.
  for (auto _ : state) {
    testbed::TestbedConfig config;
    config.bottleneck = testbed::BottleneckKind::kOltp;
    testbed::RubbosTestbed bed(config);
    bed.start();
    core::MemcaConfig memca;
    memca.enable_controller = false;
    memca.params.burst_length = msec(500);
    memca.params.burst_interval = sec(std::int64_t{2});
    memca.params.type = cloud::MemoryAttackType::kMemoryLock;
    auto attack = bed.make_attack(memca);
    attack->start();
    bed.sim().run_for(sec(std::int64_t{10}));
    attack->stop();
    benchmark::DoNotOptimize(bed.clients().completed());
  }
  state.SetItemsProcessed(state.iterations() * 10);  // simulated seconds
}
BENCHMARK(BM_FullTestbedSecondOltp)->Unit(benchmark::kMillisecond);

void BM_SnapshotRollback(benchmark::State& state) {
  // One rollback of a full warmed testbed (metrics + scraper on) per
  // iteration, after a simulated second of divergence. This is the per-cell
  // rewind price the checkpointed sweep pays instead of re-simulating the
  // warm-up prefix; it must stay far below one simulated second's cost for
  // the reuse to win.
  testbed::TestbedConfig config;
  config.metrics = true;
  testbed::RubbosTestbed bed(config);
  bed.start();
  bed.sim().run_for(sec(std::int64_t{5}));
  bed.snapshot();
  for (auto _ : state) {
    state.PauseTiming();
    bed.sim().run_for(sec(std::int64_t{1}));
    state.ResumeTiming();
    bed.rollback();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotRollback)->Unit(benchmark::kMicrosecond);

std::vector<testbed::AttackLabConfig> warm_prefix_grid() {
  // 8 cells sharing one prefix, warm-up as long as the measurement window —
  // the regime the checkpoint targets: half of every cold cell's work is
  // the identical prefix.
  std::vector<testbed::AttackLabConfig> cells;
  for (int i = 0; i < 8; ++i) {
    testbed::AttackLabConfig config;
    config.warmup = sec(std::int64_t{15});
    config.duration = sec(std::int64_t{15});
    config.params.burst_length = msec(100 * (i + 1));
    config.params.burst_interval = sec(std::int64_t{2});
    cells.push_back(config);
  }
  return cells;
}

void BM_SweepCheckpointedWarmup(benchmark::State& state) {
  // The checkpointed path on the warm-prefix grid: each worker simulates
  // the 15 s prefix once, snapshots, and rewinds per cell — ~15 s of
  // simulation per cell plus an amortised prefix.
  for (auto _ : state) {
    benchmark::DoNotOptimize(testbed::run_attack_lab_sweep(
        warm_prefix_grid(), static_cast<int>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_SweepCheckpointedWarmup)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SweepColdWarmup(benchmark::State& state) {
  // The pre-checkpoint behaviour on the same grid: every cell re-simulates
  // the full 30 s (prefix + window) in a fresh world. The ratio to
  // BM_SweepCheckpointedWarmup at equal thread count is the checkpoint
  // speedup (>= 1.5x expected with warmup >= window).
  for (auto _ : state) {
    sweep::SweepRunner runner({static_cast<int>(state.range(0))});
    benchmark::DoNotOptimize(runner.map(
        warm_prefix_grid(),
        [](const testbed::AttackLabConfig& config) { return testbed::run_attack_lab(config); }));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_SweepColdWarmup)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SweepRunnerScaling(benchmark::State& state) {
  // An 8-cell attack-parameter grid per iteration, Arg = worker threads.
  // On a multi-core machine real time drops near-linearly up to the core
  // count while CPU time stays flat; results are bit-identical across
  // thread counts (enforced by the sweep determinism test).
  for (auto _ : state) {
    std::vector<testbed::AttackLabConfig> cells;
    for (int i = 0; i < 8; ++i) {
      testbed::AttackLabConfig config;
      config.duration = sec(std::int64_t{15});
      config.params.burst_length = msec(500);
      config.params.burst_interval = sec(std::int64_t{2});
      cells.push_back(config);
    }
    benchmark::DoNotOptimize(
        testbed::run_attack_lab_sweep(std::move(cells), static_cast<int>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_SweepRunnerScaling)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace memca

// Custom entry point so CI and EXPERIMENTS.md recipes can write a JSON
// snapshot with one flag: `--json <path>` (or `--json=<path>`) expands to
// google-benchmark's --benchmark_out=<path> --benchmark_out_format=json
// while keeping the human-readable console reporter on stdout. A second
// convenience flag picks the full-testbed service discipline: `--tier=fifo`
// skips the OLTP full-testbed bench, `--tier=oltp` skips the FIFO one
// (micro-benches always run); the default runs both.
//
// Every run stamps `memca_build_type` into the benchmark context, keyed off
// this translation unit's own NDEBUG (google-benchmark's `library_build_type`
// reports how the *library* was compiled, which is what let a debug-build
// snapshot masquerade as a baseline). Writing a JSON snapshot from a debug
// build is refused outright — a debug baseline poisons every later gate —
// unless MEMCA_ALLOW_DEBUG_BENCH=1 explicitly overrides for local probing.
int main(int argc, char** argv) {
#ifdef NDEBUG
  constexpr bool release_build = true;
#else
  constexpr bool release_build = false;
#endif
  benchmark::AddCustomContext("memca_build_type", release_build ? "release" : "debug");

  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string json_path;
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg == "--tier=fifo") {
      args.emplace_back("--benchmark_filter=-BM_FullTestbedSecondOltp.*");
      continue;
    } else if (arg == "--tier=oltp") {
      args.emplace_back("--benchmark_filter=-BM_FullTestbedSecond/.*");
      continue;
    } else {
      args.push_back(std::move(arg));
      continue;
    }
    if (!release_build) {
      const char* allow = std::getenv("MEMCA_ALLOW_DEBUG_BENCH");
      if (allow == nullptr || std::strcmp(allow, "1") != 0) {
        std::fprintf(stderr,
                     "perf_microbench: refusing to write a JSON snapshot from a "
                     "debug build (assertions on, optimisation uncertain — the "
                     "numbers are not comparable to release baselines).\n"
                     "Rebuild with CMAKE_BUILD_TYPE=Release, or set "
                     "MEMCA_ALLOW_DEBUG_BENCH=1 to override for local probing.\n");
        return 1;
      }
    }
    args.push_back("--benchmark_out=" + json_path);
    args.emplace_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
