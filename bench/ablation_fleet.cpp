// Ablation: multi-VM adversary fleets (Section II-B's "one or a few
// adversary VMs") — how coordination mode trades damage, per-VM footprint
// and detectability.
//
//   synchronized  — lock duties compose (1 - prod(1-d)): deeper D per burst;
//   staggered     — same per-VM schedule, phase offsets of I/N: the victim
//                   sees N millibottlenecks per interval (I' = I/N) while
//                   each VM's own activity pattern is unchanged.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/fleet.h"
#include "monitor/autoscaler.h"
#include "sweep/sweep_runner.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

namespace {

struct Row {
  int vms;
  core::FleetPhase phase;
  double d_on = 1.0;
  SimTime p95 = 0;
  double drop_pct = 0.0;
  double per_vm_duty = 0.0;
  bool autoscale = false;
};

Row run(int vms, core::FleetPhase phase) {
  testbed::RubbosTestbed bed;
  std::vector<cloud::VmId> adversaries = {bed.adversary_vm()};
  for (int i = 1; i < vms; ++i) {
    adversaries.push_back(bed.target_host().add_vm(
        {"adversary-" + std::to_string(i), 1, cloud::Placement::kPinnedPackage, 0}));
  }
  bed.start();

  core::AttackParams params;
  params.burst_length = msec(500);
  params.burst_interval = sec(std::int64_t{2});
  core::AdversaryFleet fleet(bed.sim(), bed.target_host(), adversaries, params,
                             phase, bed.fork_rng("fleet"));
  fleet.start();
  bed.sim().run_for(0);
  Row row;
  row.vms = vms;
  row.phase = phase;
  row.d_on = bed.coupling().capacity_multiplier();
  bed.sim().run_for(3 * kMinute);

  row.p95 = bed.clients().response_times().quantile(0.95);
  const double attempts = static_cast<double>(bed.clients().completed() +
                                              bed.clients().dropped_attempts());
  row.drop_pct = 100.0 * static_cast<double>(bed.clients().dropped_attempts()) / attempts;
  row.per_vm_duty = to_seconds(fleet.max_member_on_time()) / to_seconds(bed.sim().now());
  row.autoscale = monitor::evaluate_autoscaler(bed.mysql_cpu().series(),
                                               monitor::AutoScalerConfig{})
                      .triggered;
  fleet.stop();
  return row;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Adversary-fleet ablation (memory-lock, L=500ms, I=2s, 3-min runs)");
  Table table({"VMs", "coordination", "D(on)", "p95 (ms)", "drop %", "per-VM duty",
               "autoscale?"});
  struct Cell {
    int vms;
    core::FleetPhase phase;
  };
  const std::vector<Cell> cells = {{1, core::FleetPhase::kSynchronized},
                                   {2, core::FleetPhase::kSynchronized},
                                   {4, core::FleetPhase::kSynchronized},
                                   {2, core::FleetPhase::kStaggered},
                                   {4, core::FleetPhase::kStaggered}};
  const std::vector<Row> rows = sweep::SweepRunner().map(
      cells, [](const Cell& cell) { return run(cell.vms, cell.phase); });
  for (const Row& row : rows) {
    table.add_row({
        Table::num(std::int64_t{row.vms}),
        to_string(row.phase),
        Table::num(row.d_on, 3),
        Table::num(to_millis(row.p95), 0),
        Table::num(row.drop_pct, 1),
        Table::num(row.per_vm_duty * 100.0, 0) + "%",
        row.autoscale ? "YES" : "no",
    });
  }
  table.print(std::cout);
  std::cout
      << "\nShape checks: synchronized fleets push D to its floor (deeper damage per\n"
         "burst, same per-VM duty); staggered fleets multiply the burst frequency —\n"
         "more damage at the cost of a higher victim CPU average. Either way a\n"
         "handful of co-located VMs suffices, as the paper's threat model assumes.\n";
  return 0;
}
