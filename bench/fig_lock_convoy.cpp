// Lock-convoy amplification: the FIFO bottleneck model vs the OLTP
// (lock/CC-aware) bottleneck under the same transient capacity dips.
//
// Grid: bottleneck {fifo, oltp} x Zipf skew theta {0.5, 0.9, 0.99} x write
// ratio {0.1, 0.5} x attack duty {off, L=500ms/I=2s}. Every cell runs the
// calibrated 3-tier EC2 scenario at the same offered load (3500 users) with
// tracing and metrics on, through the warm-sweep runner.
//
// Convoy regime asserted (and written into the committed run report):
//   1. under attack, OLTP client p99.9 exceeds the matched FIFO p99.9 —
//      lock convoys amplify the tail beyond what queueing alone produces;
//   2. the excess is attributed to lock-wait spans (tail lock_wait_us > 0),
//      not to unexplained slack (slack == 0 in every cell);
//   3. convoy severity is monotone in contention: tail lock-wait time is
//      nondecreasing in theta (at fixed write ratio) and in write ratio
//      (at fixed theta).
//
// Side effect: writes fig_lock_convoy.json (cell table + check verdicts)
// into the working directory. Exit status 0 iff every check holds.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "metrics/names.h"
#include "testbed/attack_lab.h"

using namespace memca;

namespace {

constexpr SimTime kWarmup = sec(std::int64_t{10});
constexpr SimTime kDuration = 2 * kMinute;
const std::vector<double> kThetas = {0.5, 0.9, 0.99};
const std::vector<double> kWriteRatios = {0.1, 0.5};

struct Cell {
  bool oltp = false;
  double theta = 0.0;
  double write_ratio = 0.0;
  bool attack = false;
};

testbed::AttackLabConfig make_config(const Cell& cell) {
  testbed::AttackLabConfig config;
  config.testbed.trace = true;
  config.testbed.metrics = true;
  if (cell.oltp) {
    config.testbed.bottleneck = testbed::BottleneckKind::kOltp;
    config.testbed.oltp.zipf_theta = cell.theta;
    config.testbed.oltp.short_txn.write_ratio = cell.write_ratio;
    config.testbed.oltp.long_txn.write_ratio = cell.write_ratio;
  }
  config.params.burst_length = msec(500);
  config.params.burst_interval = sec(std::int64_t{2});
  config.attack_enabled = cell.attack;
  config.warmup = kWarmup;
  config.duration = kDuration;
  return config;
}

std::int64_t read_counter(testbed::AttackLabResult& r, std::string_view name,
                          const char* event) {
  if (r.registry == nullptr) return 0;
  return r.registry->counter(name, {{"event", event}}).value();
}

struct Row {
  Cell cell;
  testbed::AttackLabResult result;
  std::int64_t commits = 0, aborts = 0, lock_waits = 0;
};

bool check(bool ok, const std::string& what, std::vector<std::string>& verdicts) {
  verdicts.push_back(std::string(ok ? "PASS  " : "FAIL  ") + what);
  std::cout << verdicts.back() << "\n";
  return ok;
}

void write_report(const std::vector<Row>& rows, const std::vector<std::string>& verdicts,
                  bool ok) {
  std::ofstream out("fig_lock_convoy.json");
  out << "{\n  \"scenario\": \"fig_lock_convoy\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const trace::TailSummary& t = row.result.tail;
    out << "    {\"bottleneck\": \"" << (row.cell.oltp ? "oltp" : "fifo")
        << "\", \"theta\": " << row.cell.theta
        << ", \"write_ratio\": " << row.cell.write_ratio
        << ", \"attack\": " << (row.cell.attack ? "true" : "false")
        << ", \"p99_ms\": " << to_millis(row.result.client_p99)
        << ", \"p999_ms\": " << to_millis(row.result.client_p999)
        << ", \"drop_fraction\": " << row.result.drop_fraction
        << ", \"commits\": " << row.commits << ", \"aborts\": " << row.aborts
        << ", \"lock_waits\": " << row.lock_waits
        << ", \"tail_count\": " << t.tail_count
        << ", \"tail_lock_wait_us\": " << t.lock_wait_us
        << ", \"tail_queue_wait_us\": " << t.queue_wait_us
        << ", \"tail_rto_wait_us\": " << t.rto_wait_us
        << ", \"tail_slack_us\": " << t.slack_us << "}"
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"checks\": [\n";
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    out << "    \"" << verdicts[i] << "\"" << (i + 1 < verdicts.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
}

}  // namespace

int main() {
  std::vector<Cell> cells;
  for (bool attack : {false, true}) {
    cells.push_back(Cell{false, 0.0, 0.0, attack});  // FIFO reference
    for (double wr : kWriteRatios) {
      for (double theta : kThetas) {
        cells.push_back(Cell{true, theta, wr, attack});
      }
    }
  }
  std::vector<testbed::AttackLabConfig> configs;
  configs.reserve(cells.size());
  for (const Cell& cell : cells) configs.push_back(make_config(cell));
  auto results = testbed::run_attack_lab_sweep(std::move(configs));

  std::vector<Row> rows;
  rows.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    Row row;
    row.cell = cells[i];
    row.result = std::move(results[i]);
    row.commits = read_counter(row.result, metrics::names::kOltpTxnTotal, "commits");
    row.aborts = read_counter(row.result, metrics::names::kOltpTxnTotal, "aborts");
    row.lock_waits = read_counter(row.result, metrics::names::kOltpTxnTotal, "lock_waits");
    rows.push_back(std::move(row));
  }

  print_banner(std::cout, "Lock convoy: FIFO vs OLTP bottleneck (3500 users, 2 min/cell)");
  Table table({"tier", "theta", "write", "attack", "p99 (ms)", "p99.9 (ms)", "drop %",
               "commits", "lock waits", "tail lock-wait (s)", "tail slack (us)"});
  for (const Row& row : rows) {
    table.add_row({
        row.cell.oltp ? "oltp" : "fifo",
        row.cell.oltp ? Table::num(row.cell.theta, 2) : "-",
        row.cell.oltp ? Table::num(row.cell.write_ratio, 1) : "-",
        row.cell.attack ? "ON" : "off",
        Table::num(to_millis(row.result.client_p99), 0),
        Table::num(to_millis(row.result.client_p999), 0),
        Table::num(row.result.drop_fraction * 100.0, 2),
        Table::num(row.commits),
        Table::num(row.lock_waits),
        Table::num(to_seconds(row.result.tail.lock_wait_us), 2),
        Table::num(row.result.tail.slack_us),
    });
  }
  table.print(std::cout);

  // -- convoy-regime checks --------------------------------------------------
  std::cout << "\n";
  std::vector<std::string> verdicts;
  bool ok = true;

  auto find = [&rows](bool oltp, double theta, double wr, bool attack) -> const Row& {
    for (const Row& row : rows) {
      if (row.cell.oltp == oltp && row.cell.attack == attack &&
          (!oltp || (row.cell.theta == theta && row.cell.write_ratio == wr))) {
        return row;
      }
    }
    std::abort();  // grid always contains the cell
  };

  const Row& fifo_on = find(false, 0, 0, true);
  for (double wr : kWriteRatios) {
    for (double theta : kThetas) {
      const Row& r = find(true, theta, wr, true);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "oltp(theta=%.2f, wr=%.1f) p99.9 %lld ms > fifo p99.9 %lld ms",
                    theta, wr, static_cast<long long>(to_millis(r.result.client_p999)),
                    static_cast<long long>(to_millis(fifo_on.result.client_p999)));
      ok &= check(r.result.client_p999 > fifo_on.result.client_p999, buf, verdicts);
      std::snprintf(buf, sizeof(buf),
                    "oltp(theta=%.2f, wr=%.1f) tail lock-wait > 0 under attack", theta, wr);
      ok &= check(r.result.tail.lock_wait_us > 0, buf, verdicts);
    }
  }
  // Monotone contention: tail lock-wait time nondecreasing in theta and in
  // write ratio (p99.9 itself saturates once the convoy spills the queue,
  // so the monotone signal is the attributed lock-wait mass).
  for (double wr : kWriteRatios) {
    for (std::size_t i = 1; i < kThetas.size(); ++i) {
      const Row& lo = find(true, kThetas[i - 1], wr, true);
      const Row& hi = find(true, kThetas[i], wr, true);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "tail lock-wait monotone in theta (wr=%.1f): %.2f -> %.2f", wr,
                    kThetas[i - 1], kThetas[i]);
      ok &= check(hi.result.tail.lock_wait_us >= lo.result.tail.lock_wait_us, buf, verdicts);
    }
  }
  for (double theta : kThetas) {
    const Row& lo = find(true, theta, kWriteRatios.front(), true);
    const Row& hi = find(true, theta, kWriteRatios.back(), true);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "tail lock-wait monotone in write ratio (theta=%.2f): %.1f -> %.1f", theta,
                  kWriteRatios.front(), kWriteRatios.back());
    ok &= check(hi.result.tail.lock_wait_us >= lo.result.tail.lock_wait_us, buf, verdicts);
  }
  bool slack_ok = true;
  for (const Row& row : rows) slack_ok &= row.result.tail.slack_us == 0;
  ok &= check(slack_ok, "every cell attributes exactly (tail slack == 0)", verdicts);

  write_report(rows, verdicts, ok);
  std::cout << "\nwrote fig_lock_convoy.json — " << (ok ? "convoy regime confirmed" : "CHECK FAILURES")
            << "\n";
  return ok ? 0 : 1;
}
