// Model-validation table (companion to the paper's Table I parameters and
// Section IV-B equations): for a sweep of attack parameters, compare the
// analytic predictions (Eq. 4-10) against the discrete-event simulation on
// the shared RUBBoS calibration.
//
// Columns: model fill time / damage period / rho / millibottleneck vs the
// simulated drop fraction and measured mean CPU-saturation length. The
// grid cells run in parallel via run_attack_lab_sweep; row order and values
// are bit-identical to a sequential run.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "testbed/attack_lab.h"

using namespace memca;

int main() {
  print_banner(std::cout,
               "Analytic model (Eq. 4-10) vs simulation — RUBBoS calibration, EC2 host");
  std::vector<testbed::AttackLabConfig> cells;
  for (SimTime interval : {sec(std::int64_t{2}), sec(std::int64_t{4})}) {
    for (SimTime length : {msec(200), msec(350), msec(500), msec(700)}) {
      testbed::AttackLabConfig config;
      config.params.burst_length = length;
      config.params.burst_interval = interval;
      config.duration = 2 * kMinute;
      cells.push_back(config);
    }
  }
  const auto results = testbed::run_attack_lab_sweep(cells);

  Table table({"L (ms)", "I (s)", "D(on)", "fill (ms)", "P_D (ms)", "rho", "drop frac (sim)",
               "P_MB (ms)", "saturation (sim ms)", "p95 (ms)"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& r = results[i];
    table.add_row({
        Table::num(to_millis(cells[i].params.burst_length), 0),
        Table::num(to_seconds(cells[i].params.burst_interval), 0),
        Table::num(r.d_on, 3),
        Table::num(r.model.total_fill_time_s * 1000.0, 0),
        Table::num(r.model.damage_period_s * 1000.0, 0),
        Table::num(r.model.rho, 3),
        Table::num(r.drop_fraction, 3),
        Table::num(r.model.millibottleneck_s * 1000.0, 0),
        Table::num(r.mean_saturation_s * 1000.0, 0),
        Table::num(to_millis(r.client_p95), 0),
    });
  }
  table.print(std::cout);
  std::cout
      << "\nShape checks: drop fraction tracks rho to first order; measured saturation\n"
         "tracks P_MB = L + drain; p95 crosses 1000 ms once rho exceeds ~0.05 (5% of\n"
         "requests hit the 1 s TCP retransmission floor).\n";
  return 0;
}
