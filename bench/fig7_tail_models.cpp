// Figure 7 reproduction: tail response time amplification under MemCA for
// three system models, with identical attack parameters:
//   (a) tandem queue with an infinite MySQL queue — all tiers' percentile
//       curves nearly overlap (no amplification);
//   (b) n-tier RPC model with an infinite Apache queue — Apache and client
//       percentiles amplify through cross-tier queue overflow;
//   (c) n-tier RPC model with finite queues everywhere — dropped requests
//       add TCP retransmission (min RTO 1 s) and the client tail explodes.
#include <functional>
#include <iostream>

#include "common/table.h"
#include "queueing/ntier.h"
#include "queueing/tandem.h"
#include "snapshot/world_snapshot.h"
#include "workload/openloop.h"

using namespace memca;

namespace {

constexpr double kLambda = 500.0;
constexpr double kDegradation = 0.1;
const std::vector<double> kDemand = {200.0, 1000.0, 1700.0};
constexpr SimTime kBurstLength = msec(500);
constexpr SimTime kInterval = sec(std::int64_t{2});
constexpr SimTime kDuration = 3 * kMinute;

struct CaseResult {
  const queueing::RequestSystem* system = nullptr;
  std::function<SimTime(std::size_t, double)> tier_quantile;
  const LatencyHistogram* client = nullptr;
};

void print_percentiles(const char* title,
                       const std::function<SimTime(std::size_t, double)>& tier_quantile,
                       const LatencyHistogram& client) {
  print_banner(std::cout, title);
  Table table({"percentile", "MySQL (ms)", "Tomcat (ms)", "Apache (ms)", "Client (ms)"});
  for (double q : {0.50, 0.75, 0.90, 0.95, 0.98, 0.99, 0.999}) {
    table.add_row({
        Table::num(q * 100.0, 1),
        Table::num(to_millis(tier_quantile(2, q))),
        Table::num(to_millis(tier_quantile(1, q))),
        Table::num(to_millis(tier_quantile(0, q))),
        Table::num(to_millis(client.quantile(q))),
    });
  }
  table.print(std::cout);
}

void schedule_bursts(Simulator& sim, const std::function<void(double)>& throttle) {
  for (SimTime t = sec(std::int64_t{1}); t < kDuration; t += kInterval) {
    sim.schedule_at(t, [&throttle] { throttle(kDegradation); });
    sim.schedule_at(t + kBurstLength, [&throttle] { throttle(1.0); });
  }
}

void run_tandem_infinite() {
  Simulator sim;
  queueing::TandemQueueSystem system(
      sim, {{"apache", 8, queueing::StationConfig::kUnbounded},
            {"tomcat", 6, queueing::StationConfig::kUnbounded},
            {"mysql", 2, queueing::StationConfig::kUnbounded}});
  workload::RequestRouter router(system);
  // "Response time observed by tier i" in the paper is the time from
  // entering tier i until the request completes; in the tandem model the
  // MySQL queueing dominates, so the curves nearly overlap.
  std::array<LatencyHistogram, 3> observed;
  router.add_completion_observer([&](const queueing::Request& r) {
    const SimTime completion = r.trace_at(2).leave;
    for (std::size_t i = 0; i < 3; ++i) observed[i].record(completion - r.trace_at(i).enter);
  });
  workload::OpenLoopConfig config;
  config.rate_per_sec = kLambda;
  config.retransmit = true;
  workload::OpenLoopSource source(sim, router, workload::uniform_profile(kDemand), config,
                                  Rng(11));
  std::function<void(double)> throttle = [&](double m) { system.set_speed_multiplier(2, m); };
  // Checkpoint after the source is live but before the bursts are
  // scheduled: rolling back drops the bursts, so the replay is the
  // no-attack baseline over the identical arrival stream.
  snapshot::WorldSnapshot checkpoint;
  checkpoint.attach(sim);
  checkpoint.attach(system);
  checkpoint.attach(router);
  checkpoint.attach(source);
  checkpoint.attach_value(observed);
  source.start();
  checkpoint.capture();
  schedule_bursts(sim, throttle);
  sim.run_until(kDuration);
  print_percentiles(
      "Fig. 7a — tandem queue, infinite MySQL queue: all curves nearly overlap",
      [&](std::size_t tier, double q) { return observed[tier].quantile(q); },
      source.response_times());
  checkpoint.rollback();
  sim.run_until(kDuration);
  print_percentiles(
      "Fig. 7a baseline — same world via rollback, bursts dropped",
      [&](std::size_t tier, double q) { return observed[tier].quantile(q); },
      source.response_times());
}

void run_ntier(int apache_threads, const char* title) {
  Simulator sim;
  queueing::NTierSystem system(
      sim, {{"apache", apache_threads, 8}, {"tomcat", 60, 6}, {"mysql", 30, 2}});
  workload::RequestRouter router(system);
  workload::OpenLoopConfig config;
  config.rate_per_sec = kLambda;
  config.retransmit = true;  // dropped requests follow TCP RTO semantics
  workload::OpenLoopSource source(sim, router, workload::uniform_profile(kDemand), config,
                                  Rng(11));
  std::function<void(double)> throttle = [&](double m) {
    system.back_tier().set_speed_multiplier(m);
  };
  snapshot::WorldSnapshot checkpoint;
  checkpoint.attach(sim);
  checkpoint.attach(system);
  checkpoint.attach(router);
  checkpoint.attach(source);
  source.start();
  checkpoint.capture();
  schedule_bursts(sim, throttle);
  sim.run_until(kDuration);
  const auto tier_quantile = [&](std::size_t tier, double q) {
    return system.tier(tier).residence_time().quantile(q);
  };
  print_percentiles(title, tier_quantile, source.response_times());
  std::cout << "drops: " << system.dropped() << " of " << system.submitted()
            << " submissions\n";
  checkpoint.rollback();
  sim.run_until(kDuration);
  print_percentiles("    baseline — same world via rollback, bursts dropped",
                    tier_quantile, source.response_times());
  std::cout << "baseline drops: " << system.dropped() << " of " << system.submitted()
            << " submissions\n";
}

}  // namespace

int main() {
  run_tandem_infinite();
  run_ntier(1000000,
            "Fig. 7b — attack model, infinite Apache queue: Apache & client amplify");
  run_ntier(100,
            "Fig. 7c — attack model, finite queues: drops + TCP retransmission, "
            "client tail explodes past 1 s");
  std::cout
      << "\nShape checks (paper): (a) per-tier curves nearly overlap; (b) Apache and\n"
         "client tails amplify above Tomcat/MySQL; (c) client peak percentiles exceed\n"
         "1 s (minimum TCP retransmission timeout) while per-tier times stay bounded\n"
         "by the finite queues.\n";
  return 0;
}
