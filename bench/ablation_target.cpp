// Ablation: where should the adversary co-locate? (Section II-B says "any
// component VMs that are in the critical path" — this quantifies how much
// the choice matters.)
//
// The same attack is aimed at each tier's host in turn. Condition 2
// (λ > C_on) explains the outcome: only the provisioning bottleneck
// (MySQL) is degradable below the offered load at D ~ 0.1; the front tiers
// have so much headroom that the same burst leaves C_on above λ and no
// queue ever fills.
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/analytic_model.h"
#include "sweep/sweep_runner.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

namespace {

struct TargetRow {
  std::string tier_name;
  double d_on = 1.0;
  double c_on = 0.0;
  double lambda = 0.0;
  SimTime p95 = 0, p98 = 0;
  double drop_pct = 0.0;
};

TargetRow run(int tier) {
  testbed::TestbedConfig config;
  config.target_tier = tier;
  testbed::RubbosTestbed bed(config);
  bed.start();
  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  auto attack = bed.make_attack(memca);
  attack->start();
  bed.sim().run_for(0);
  const double d_on = bed.coupling().capacity_multiplier();
  bed.sim().run_for(3 * kMinute);

  const auto params = bed.model_params();
  TargetRow row;
  row.tier_name = bed.system().tier(static_cast<std::size_t>(tier)).name();
  row.d_on = d_on;
  row.c_on = d_on * params[static_cast<std::size_t>(tier)].capacity_off;
  row.lambda = params[2].arrival_rate;  // all traffic hits every tier
  row.p95 = bed.clients().response_times().quantile(0.95);
  row.p98 = bed.clients().response_times().quantile(0.98);
  const double attempts = static_cast<double>(bed.clients().completed() +
                                              bed.clients().dropped_attempts());
  row.drop_pct = 100.0 * static_cast<double>(bed.clients().dropped_attempts()) / attempts;
  return row;
}

}  // namespace

int main() {
  print_banner(std::cout, "Target-position ablation (memory-lock, L=500ms, I=2s, 3-min runs)");
  Table table({"target tier", "D(on)", "C_on (req/s)", "lambda (req/s)", "Condition 2",
               "p95 (ms)", "p98 (ms)", "drop %"});
  const std::vector<int> tiers = {0, 1, 2};
  const std::vector<TargetRow> rows =
      sweep::SweepRunner().map(tiers, [](int tier) { return run(tier); });
  for (const TargetRow& row : rows) {
    table.add_row({
        row.tier_name,
        Table::num(row.d_on, 3),
        Table::num(row.c_on, 0),
        Table::num(row.lambda, 0),
        row.lambda > row.c_on ? "holds" : "fails",
        Table::num(to_millis(row.p95), 0),
        Table::num(to_millis(row.p98), 0),
        Table::num(row.drop_pct, 1),
    });
  }
  table.print(std::cout);
  std::cout << "\nShape checks: only the MySQL-hosted adversary satisfies Condition 2\n"
               "(lambda > C_on) and produces the long tail; the same attack co-located\n"
               "with Apache or Tomcat is wasted on tiers with capacity headroom.\n";
  return 0;
}
