// Ablation: where should the adversary co-locate? (Section II-B says "any
// component VMs that are in the critical path" — this quantifies how much
// the choice matters.)
//
// The same attack is aimed at each tier's host in turn. Condition 2
// (λ > C_on) explains the outcome: only the provisioning bottleneck
// (MySQL) is degradable below the offered load at D ~ 0.1; the front tiers
// have so much headroom that the same burst leaves C_on above λ and no
// queue ever fills.
#include <iostream>

#include "common/table.h"
#include "core/analytic_model.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

int main() {
  print_banner(std::cout, "Target-position ablation (memory-lock, L=500ms, I=2s, 3-min runs)");
  Table table({"target tier", "D(on)", "C_on (req/s)", "lambda (req/s)", "Condition 2",
               "p95 (ms)", "p98 (ms)", "drop %"});
  for (int tier = 0; tier < 3; ++tier) {
    testbed::TestbedConfig config;
    config.target_tier = tier;
    testbed::RubbosTestbed bed(config);
    bed.start();
    core::MemcaConfig memca;
    memca.enable_controller = false;
    memca.params.burst_length = msec(500);
    memca.params.burst_interval = sec(std::int64_t{2});
    auto attack = bed.make_attack(memca);
    attack->start();
    bed.sim().run_for(0);
    const double d_on = bed.coupling().capacity_multiplier();
    bed.sim().run_for(3 * kMinute);

    const auto params = bed.model_params();
    const double c_on = d_on * params[static_cast<std::size_t>(tier)].capacity_off;
    const double lambda = params[2].arrival_rate;  // all traffic hits every tier
    const double attempts = static_cast<double>(bed.clients().completed() +
                                                bed.clients().dropped_attempts());
    table.add_row({
        bed.system().tier(static_cast<std::size_t>(tier)).name(),
        Table::num(d_on, 3),
        Table::num(c_on, 0),
        Table::num(lambda, 0),
        lambda > c_on ? "holds" : "fails",
        Table::num(to_millis(bed.clients().response_times().quantile(0.95)), 0),
        Table::num(to_millis(bed.clients().response_times().quantile(0.98)), 0),
        Table::num(100.0 * static_cast<double>(bed.clients().dropped_attempts()) / attempts,
                   1),
    });
  }
  table.print(std::cout);
  std::cout << "\nShape checks: only the MySQL-hosted adversary satisfies Condition 2\n"
               "(lambda > C_on) and produces the long tail; the same attack co-located\n"
               "with Apache or Tomcat is wasted on tiers with capacity headroom.\n";
  return 0;
}
