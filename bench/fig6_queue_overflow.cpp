// Figure 6 reproduction: cross-tier queue overflow under MemCA, comparing
// the classic tandem queue model (all queueing collapses into the last
// station) with the n-tier RPC thread-holding model (overflow propagates
// upstream through every tier).
//
// Matches the paper's simulation-analysis setup: open-loop Poisson arrivals,
// degradation index D = 0.1 applied to the back tier during bursts of
// length L every I = 2 s.
#include <iostream>

#include "common/table.h"
#include "queueing/ntier.h"
#include "queueing/tandem.h"
#include "sim/simulator.h"
#include "workload/openloop.h"

using namespace memca;

namespace {

constexpr double kLambda = 500.0;
constexpr double kDegradation = 0.1;
// Uniform per-tier demands matching the RUBBoS calibration.
const std::vector<double> kDemand = {200.0, 1000.0, 1700.0};

/// Applies the ON-OFF degradation schedule to a back-tier throttle.
void schedule_bursts(Simulator& sim, SimTime burst_length, SimTime interval,
                     const std::function<void(double)>& set_multiplier) {
  for (SimTime t = sec(std::int64_t{1}); t < 10 * kMinute; t += interval) {
    sim.schedule_at(t, [&set_multiplier] { set_multiplier(kDegradation); });
    sim.schedule_at(t + burst_length, [&set_multiplier] { set_multiplier(1.0); });
  }
}

struct Snapshot {
  SimTime time;
  int tier1, tier2, tier3;
};

template <typename GetResident>
std::vector<Snapshot> sample_queues(Simulator& sim, SimTime until, GetResident resident) {
  std::vector<Snapshot> out;
  for (SimTime t = 0; t <= until; t += msec(50)) {
    sim.run_until(t);
    out.push_back(Snapshot{t, resident(0), resident(1), resident(2)});
  }
  return out;
}

void print_snapshots(const char* title, const std::vector<Snapshot>& snaps, SimTime from,
                     SimTime to) {
  print_banner(std::cout, title);
  Table table({"t (s)", "tier1 (Apache)", "tier2 (Tomcat)", "tier3 (MySQL)"});
  for (const Snapshot& s : snaps) {
    if (s.time < from || s.time > to) continue;
    table.add_row({Table::num(to_seconds(s.time), 2), Table::num(std::int64_t{s.tier1}),
                   Table::num(std::int64_t{s.tier2}), Table::num(std::int64_t{s.tier3})});
  }
  table.print(std::cout);
}

void run_case(SimTime burst_length) {
  std::cout << "\n---- burst length L = " << format_time(burst_length)
            << ", I = 2s, D = " << kDegradation << " ----\n";

  // (a) Tandem queue: stations are decoupled, infinite buffers.
  {
    Simulator sim;
    queueing::TandemQueueSystem tandem(
        sim, {{"apache", 8, queueing::StationConfig::kUnbounded},
              {"tomcat", 6, queueing::StationConfig::kUnbounded},
              {"mysql", 2, queueing::StationConfig::kUnbounded}});
    workload::RequestRouter router(tandem);
    workload::OpenLoopConfig config;
    config.rate_per_sec = kLambda;
    config.retransmit = false;
    workload::OpenLoopSource source(sim, router, workload::uniform_profile(kDemand), config,
                                    Rng(7));
    auto throttle = [&](double m) { tandem.set_speed_multiplier(2, m); };
    std::function<void(double)> set = throttle;
    schedule_bursts(sim, burst_length, sec(std::int64_t{2}), set);
    source.start();
    const auto snaps =
        sample_queues(sim, sec(std::int64_t{6}), [&](int i) {
          return tandem.resident(static_cast<std::size_t>(i));
        });
    print_snapshots("Fig. 6a — tandem queue model: all requests pile in MySQL", snaps,
                    msec(900), msec(2600));
  }

  // (b) Attack (n-tier RPC) model: finite thread pools, overflow propagates.
  {
    Simulator sim;
    queueing::NTierSystem ntier(
        sim, {{"apache", 100, 8}, {"tomcat", 60, 6}, {"mysql", 30, 2}});
    workload::RequestRouter router(ntier);
    workload::OpenLoopConfig config;
    config.rate_per_sec = kLambda;
    config.retransmit = false;
    workload::OpenLoopSource source(sim, router, workload::uniform_profile(kDemand), config,
                                    Rng(7));
    auto throttle = [&](double m) { ntier.back_tier().set_speed_multiplier(m); };
    std::function<void(double)> set = throttle;
    schedule_bursts(sim, burst_length, sec(std::int64_t{2}), set);
    source.start();
    const auto snaps = sample_queues(sim, sec(std::int64_t{6}), [&](int i) {
      return ntier.tier(static_cast<std::size_t>(i)).resident();
    });
    print_snapshots(
        "Fig. 6b — attack model: queue overflow propagates MySQL -> Tomcat -> Apache",
        snaps, msec(900), msec(2600));
  }
}

}  // namespace

int main() {
  // The paper's simulation section fixes L = 100 ms; that shows the onset of
  // propagation. A 500 ms burst (the cloud-experiment value) shows the full
  // build-up / hold-on / fade-off cycle within one frame.
  run_case(msec(100));
  run_case(msec(500));
  std::cout << "\nShape checks (paper): in (a) only the MySQL column grows during a burst;\n"
               "in (b) MySQL saturates at its thread limit and the overflow climbs into\n"
               "Tomcat and then Apache, draining after the burst ends (fade-off).\n";
  return 0;
}
