// Ablation: the staged defense pipeline vs the attack variants — closing
// the loop on the paper's final remark that MemCA-class attacks need new
// detection/defense mechanisms.
//
// Defense: streaming CUSUM on 1-second victim utilization (always on) →
// fine-grained per-VM attribution (only after an alarm) → Heracles-style
// memory isolation of the top suspect.
//
// Attacks start at t = 1 min (the defense learns a clean baseline first);
// runs last 8 min. Reported: time-to-alarm, time-to-mitigate, the suspect,
// and the victim's p95 in the final 3 minutes (post-mitigation steady
// state) vs the undefended run.
#include <iostream>

#include "common/table.h"
#include "core/baselines.h"
#include "defense/controller.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

namespace {

struct Row {
  std::string attack;
  bool defended;
  SimTime alarm = -1;
  SimTime mitigate_latency = -1;
  std::string suspect = "-";
  SimTime late_p95 = 0;  // p95 over the final 3 minutes
};

Row run(const std::string& attack_name, bool defended) {
  testbed::TestbedConfig bed_config;
  bed_config.record_response_series = true;  // the final-3min tail reads it
  testbed::RubbosTestbed bed(bed_config);
  bed.start();

  std::unique_ptr<defense::DefenseController> defense_ctl;
  if (defended) {
    defense::DefenseConfig config;
    config.cusum.baseline_samples = 30;
    defense_ctl = std::make_unique<defense::DefenseController>(
        bed.sim(), bed.target_tier(), bed.target_host(), bed.target_vm(), config);
    defense_ctl->start();
  }

  std::unique_ptr<core::MemcaAttack> memca_attack;
  std::unique_ptr<core::BruteForceMemoryAttack> brute;
  if (attack_name == "memca (fixed)" || attack_name == "memca (adaptive)" ||
      attack_name == "memca (jitter 0.3)") {
    core::MemcaConfig config;
    config.enable_controller = attack_name == "memca (adaptive)";
    config.controller.epoch = sec(std::int64_t{5});
    config.params.burst_length = msec(500);
    config.params.burst_interval = sec(std::int64_t{2});
    if (attack_name == "memca (jitter 0.3)") config.interval_jitter = 0.3;
    memca_attack = bed.make_attack(config);
    bed.sim().schedule_at(kMinute, [&] { memca_attack->start(); });
  } else if (attack_name == "brute-force") {
    brute = std::make_unique<core::BruteForceMemoryAttack>(
        bed.sim(), bed.mysql_host(), bed.adversary_vm(),
        cloud::MemoryAttackType::kMemoryLock);
    bed.sim().schedule_at(kMinute, [&] { brute->start(); });
  }
  bed.sim().run_for(8 * kMinute);

  Row row;
  row.attack = attack_name;
  row.defended = defended;
  if (defense_ctl) {
    row.alarm = defense_ctl->timeline().alarm;
    row.mitigate_latency = defense_ctl->time_to_mitigate();
    if (defense_ctl->timeline().suspect != cloud::kInvalidVm) {
      row.suspect =
          bed.target_host().vm(defense_ctl->timeline().suspect).name;
    }
  }
  // Tail over the final 3 minutes.
  LatencyHistogram late;
  for (const Sample& s : bed.clients().response_series().samples()) {
    if (s.time >= 5 * kMinute) late.record(static_cast<SimTime>(s.value));
  }
  row.late_p95 = late.quantile(0.95);
  return row;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Staged defense (CUSUM -> attribution -> isolation) vs attacks, 8-min runs");
  Table table({"attack", "defense", "alarm at", "mitigate latency", "isolated VM",
               "final-3min p95 (ms)"});
  for (const char* attack :
       {"none", "memca (fixed)", "memca (jitter 0.3)", "memca (adaptive)", "brute-force"}) {
    for (bool defended : {false, true}) {
      const Row row = run(attack, defended);
      table.add_row({
          row.attack,
          row.defended ? "on" : "off",
          row.alarm >= 0 ? format_time(row.alarm) : "-",
          row.mitigate_latency >= 0 ? format_time(row.mitigate_latency) : "-",
          row.suspect,
          Table::num(to_millis(row.late_p95), 0),
      });
    }
  }
  table.print(std::cout);
  std::cout
      << "\nShape checks: undefended MemCA keeps p95 > 1 s to the end; the defended\n"
         "runs alarm within tens of seconds of attack start (CUSUM accumulates the\n"
         "mean-capacity theft MemCA cannot avoid), correctly isolate adversary-vm,\n"
         "and the final-3-minute p95 returns to the clean baseline. Schedule jitter\n"
         "and the adaptive commander do not help the attacker: neither changes the\n"
         "average impact the CUSUM keys on. This is the defense direction the paper\n"
         "calls for — stateful mean-shift detection plus hypervisor attribution.\n";
  return 0;
}
