// Ablation: live elastic scaling vs the three attacks.
//
// The paper's Section V-B argues MemCA *bypasses* cloud elasticity; the
// Berkeley prediction it opens with says elasticity defeats volumetric
// DoS. This bench runs both claims against a real scale-out loop:
// CloudWatch-style policy (1-min avg CPU > 85%), 60 s provisioning delay,
// each scale-out adding one 2-vCPU replica's capacity to the MySQL tier.
#include <iostream>

#include "common/table.h"
#include "core/baselines.h"
#include "monitor/elastic.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

namespace {

struct Row {
  std::string attack;
  bool scaling;
  SimTime p95 = 0;
  SimTime p99 = 0;
  double throughput = 0.0;
  int scaleouts = 0;
  int final_workers = 0;
};

Row run(const std::string& attack_name, bool scaling) {
  testbed::RubbosTestbed bed;
  bed.start();

  std::unique_ptr<monitor::ElasticController> controller;
  if (scaling) {
    controller = std::make_unique<monitor::ElasticController>(bed.sim(), bed.system().tier(2));
    controller->start();
  }

  std::unique_ptr<core::MemcaAttack> memca_attack;
  std::unique_ptr<core::BruteForceMemoryAttack> brute;
  std::unique_ptr<core::FloodingAttack> flood;
  if (attack_name == "memca") {
    core::MemcaConfig config;
    config.enable_controller = false;
    config.params.burst_length = msec(500);
    config.params.burst_interval = sec(std::int64_t{2});
    memca_attack = bed.make_attack(config);
    memca_attack->start();
  } else if (attack_name == "brute-force") {
    brute = std::make_unique<core::BruteForceMemoryAttack>(
        bed.sim(), bed.mysql_host(), bed.adversary_vm(),
        cloud::MemoryAttackType::kMemoryLock);
    brute->start();
  } else if (attack_name == "flooding") {
    flood = std::make_unique<core::FloodingAttack>(bed.sim(), bed.router(), 500.0,
                                                   bed.profile(), bed.fork_rng("flood"));
    flood->start();
  }
  bed.sim().run_for(6 * kMinute);

  Row row;
  row.attack = attack_name;
  row.scaling = scaling;
  row.p95 = bed.clients().response_times().quantile(0.95);
  row.p99 = bed.clients().response_times().quantile(0.99);
  row.throughput = bed.clients().throughput();
  row.scaleouts = controller ? controller->scaleouts() : 0;
  row.final_workers = bed.system().tier(2).workers();
  return row;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Live auto-scaling (85% 1-min CPU, 60 s provisioning) vs attacks — 6-min runs");
  Table table({"attack", "scaling", "p95 (ms)", "p99 (ms)", "goodput (req/s)", "scale-outs",
               "MySQL workers"});
  for (const char* attack : {"none", "memca", "brute-force", "flooding"}) {
    for (bool scaling : {false, true}) {
      const Row row = run(attack, scaling);
      table.add_row({
          row.attack,
          row.scaling ? "on" : "off",
          Table::num(to_millis(row.p95), 0),
          Table::num(to_millis(row.p99), 0),
          Table::num(row.throughput, 0),
          Table::num(std::int64_t{row.scaleouts}),
          Table::num(std::int64_t{row.final_workers}),
      });
    }
  }
  table.print(std::cout);
  std::cout
      << "\nShape checks: flooding and brute-force trigger scale-outs, and flooding's\n"
         "damage collapses once capacity lands (Berkeley's elasticity prediction);\n"
         "MemCA's rows are identical with scaling on or off — zero scale-outs, p95\n"
         "still above 1 s. Elasticity is not a defense against transient\n"
         "cross-resource contention.\n";
  return 0;
}
