// Figure 2 reproduction: measured tail (percentile) response time in each
// tier of the 3-tier system under the MemCA attack, in (a) Amazon EC2 and
// (b) the private cloud.
//
// Paper result: tail response time amplifies from MySQL to Tomcat to Apache
// and finally to the clients, with client p95 > 1 s and p98 > 2 s.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.h"
#include "metrics/run_report.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

namespace {

void run_environment(testbed::CloudProfile cloud) {
  testbed::TestbedConfig config;
  config.cloud = cloud;
  config.metrics = true;
  testbed::RubbosTestbed bed(config);
  bed.start();

  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  memca.params.type = cloud::MemoryAttackType::kMemoryLock;
  auto attack = bed.make_attack(memca);
  attack->start();
  bed.sim().run_for(0);  // first burst is ON: capture the degradation index
  const double d_on = bed.coupling().capacity_multiplier();
  const auto wall_start = std::chrono::steady_clock::now();
  bed.sim().run_for(3 * kMinute);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  print_banner(std::cout,
               std::string("Fig. 2 — percentile response time per tier, ") +
                   testbed::to_string(cloud) +
                   " (3 min, 3500 users, memory-lock L=500ms I=2s)");
  Table table({"percentile", "MySQL (ms)", "Tomcat (ms)", "Apache (ms)", "Client (ms)"});
  for (double q : {0.50, 0.75, 0.90, 0.95, 0.98, 0.99, 0.999}) {
    table.add_row({
        Table::num(q * 100.0, 1),
        Table::num(to_millis(bed.system().tier(2).residence_time().quantile(q))),
        Table::num(to_millis(bed.system().tier(1).residence_time().quantile(q))),
        Table::num(to_millis(bed.system().tier(0).residence_time().quantile(q))),
        Table::num(to_millis(bed.clients().response_times().quantile(q))),
    });
  }
  table.print(std::cout);
  std::cout << "degradation index D during bursts: " << Table::num(d_on, 3)
            << ", bursts fired: " << attack->scheduler().bursts_fired()
            << ", drops: " << bed.clients().dropped_attempts() << "\n";

  bed.finalize_metrics(attack.get());
  metrics::RunReportOptions options;
  options.scenario = std::string("fig2_tail_amplification_") + testbed::to_string(cloud);
  options.wall_seconds = wall_seconds;
  options.scrape_resolution = bed.config().metrics_resolution;
  const metrics::RunReport report = metrics::build_run_report(*bed.registry(), options);
  const std::string stem = options.scenario + ".runreport";
  std::ofstream json(stem + ".json");
  metrics::write_json(json, report);
  std::ofstream md(stem + ".md");
  metrics::write_markdown(md, report);
  std::cout << "run report: " << report.submitted << " attempts, " << report.dropped
            << " drops, " << report.retransmitted << " retransmissions, p98 "
            << Table::num(to_millis(report.latency_p98), 0) << " ms -> " << stem
            << ".{json,md}\n";
}

}  // namespace

int main() {
  run_environment(testbed::CloudProfile::kAmazonEc2);
  run_environment(testbed::CloudProfile::kPrivateCloud);
  std::cout << "\nShape checks (paper): client tail >= apache >= tomcat >= mysql at every\n"
               "percentile; client p95 > 1000 ms from TCP retransmission (min RTO 1 s).\n";
  return 0;
}
