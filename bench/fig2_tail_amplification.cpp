// Figure 2 reproduction: measured tail (percentile) response time in each
// tier of the 3-tier system under the MemCA attack, in (a) Amazon EC2 and
// (b) the private cloud.
//
// Paper result: tail response time amplifies from MySQL to Tomcat to Apache
// and finally to the clients, with client p95 > 1 s and p98 > 2 s.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.h"
#include "metrics/run_report.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

namespace {

void run_environment(testbed::CloudProfile cloud) {
  testbed::TestbedConfig config;
  config.cloud = cloud;
  config.metrics = true;
  testbed::RubbosTestbed bed(config);
  bed.start();

  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  memca.params.type = cloud::MemoryAttackType::kMemoryLock;
  auto attack = bed.make_attack(memca);
  attack->start();
  bed.sim().run_for(0);  // first burst is ON: capture the degradation index
  const double d_on = bed.coupling().capacity_multiplier();
  const auto wall_start = std::chrono::steady_clock::now();
  bed.sim().run_for(3 * kMinute);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  print_banner(std::cout,
               std::string("Fig. 2 — percentile response time per tier, ") +
                   testbed::to_string(cloud) +
                   " (3 min, 3500 users, memory-lock L=500ms I=2s)");
  Table table({"percentile", "MySQL (ms)", "Tomcat (ms)", "Apache (ms)", "Client (ms)"});
  for (double q : {0.50, 0.75, 0.90, 0.95, 0.98, 0.99, 0.999}) {
    table.add_row({
        Table::num(q * 100.0, 1),
        Table::num(to_millis(bed.system().tier(2).residence_time().quantile(q))),
        Table::num(to_millis(bed.system().tier(1).residence_time().quantile(q))),
        Table::num(to_millis(bed.system().tier(0).residence_time().quantile(q))),
        Table::num(to_millis(bed.clients().response_times().quantile(q))),
    });
  }
  table.print(std::cout);
  std::cout << "degradation index D during bursts: " << Table::num(d_on, 3)
            << ", bursts fired: " << attack->scheduler().bursts_fired()
            << ", drops: " << bed.clients().dropped_attempts() << "\n";

  bed.finalize_metrics(attack.get());
  metrics::RunReportOptions options;
  options.scenario = std::string("fig2_tail_amplification_") + testbed::to_string(cloud);
  options.wall_seconds = wall_seconds;
  options.scrape_resolution = bed.config().metrics_resolution;
  const metrics::RunReport report = metrics::build_run_report(*bed.registry(), options);
  const std::string stem = options.scenario + ".runreport";
  std::ofstream json(stem + ".json");
  metrics::write_json(json, report);
  std::ofstream md(stem + ".md");
  metrics::write_markdown(md, report);
  std::cout << "run report: " << report.submitted << " attempts, " << report.dropped
            << " drops, " << report.retransmitted << " retransmissions, p98 "
            << Table::num(to_millis(report.latency_p98), 0) << " ms -> " << stem
            << ".{json,md}\n";
}

void run_population_scale(SimTime duration) {
  // The same Fig. 2 scenario carried by a 3.5M-user population: cohort
  // clients (PR 9) plus the 100 µs service grid with batched completion
  // drains (PR 10). System capacity stays at the paper's 3.5k-user
  // calibration, so the population lives in drop/RTO backoff and the tail
  // shape is dominated by retransmission — the regime where the exact
  // per-user, exact-demand machinery would price the figure out of CI.
  testbed::TestbedConfig config;
  config.num_users = 3500000;
  config.client_mode = workload::ClientMode::kCohort;
  config.service_quantum_us = 100;
  testbed::RubbosTestbed bed(config);
  bed.start();

  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  memca.params.type = cloud::MemoryAttackType::kMemoryLock;
  auto attack = bed.make_attack(memca);
  attack->start();
  bed.sim().run_for(0);
  const double d_on = bed.coupling().capacity_multiplier();
  const auto wall_start = std::chrono::steady_clock::now();
  bed.sim().run_for(duration);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  print_banner(std::cout,
               "Fig. 2 at population scale (3.5M users, cohort clients, 100 us "
               "service grid, " +
                   std::to_string(duration / sec(std::int64_t{1})) + " s)");
  Table table({"percentile", "MySQL (ms)", "Tomcat (ms)", "Apache (ms)", "Client (ms)"});
  for (double q : {0.50, 0.75, 0.90, 0.95, 0.98, 0.99, 0.999}) {
    table.add_row({
        Table::num(q * 100.0, 1),
        Table::num(to_millis(bed.system().tier(2).residence_time().quantile(q))),
        Table::num(to_millis(bed.system().tier(1).residence_time().quantile(q))),
        Table::num(to_millis(bed.system().tier(0).residence_time().quantile(q))),
        Table::num(to_millis(bed.clients().response_times().quantile(q))),
    });
  }
  table.print(std::cout);
  const double sim_seconds =
      static_cast<double>(duration) / static_cast<double>(sec(std::int64_t{1}));
  std::cout << "degradation index D during bursts: " << Table::num(d_on, 3)
            << ", bursts fired: " << attack->scheduler().bursts_fired()
            << ", completed: " << bed.clients().completed()
            << ", drops: " << bed.clients().dropped_attempts() << "\n"
            << "wall: " << Table::num(wall_seconds, 2) << " s ("
            << Table::num(wall_seconds * 1000.0 / sim_seconds, 2)
            << " ms per simulated second)\n";
}

}  // namespace

int main(int argc, char** argv) {
  // `--scale-seconds=N` shortens the population-scale panel's simulated
  // window (CI smoke uses a reduced duration); `--scale-seconds=0` skips it.
  SimTime scale_duration = 3 * kMinute;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--scale-seconds=";
    if (arg.rfind(prefix, 0) == 0) {
      scale_duration = sec(static_cast<std::int64_t>(std::atol(arg.c_str() + prefix.size())));
    } else {
      std::cerr << "usage: " << argv[0] << " [--scale-seconds=N]\n";
      return 1;
    }
  }
  run_environment(testbed::CloudProfile::kAmazonEc2);
  run_environment(testbed::CloudProfile::kPrivateCloud);
  if (scale_duration > 0) run_population_scale(scale_duration);
  std::cout << "\nShape checks (paper): client tail >= apache >= tomcat >= mysql at every\n"
               "percentile; client p95 > 1000 ms from TCP retransmission (min RTO 1 s).\n";
  return 0;
}
