// Ablation: interval jitter vs the periodicity detector (an extension the
// paper hints at — Fig. 11a shows bus-saturation MemCA is caught by its
// strict 2 s period; a jittered schedule should break that signature).
//
// Also reports the damage side effect: jitter occasionally lands bursts on
// a retransmission's arrival, lengthening the p98/p99 tail.
#include <functional>
#include <iostream>
#include <vector>

#include "cloud/llc.h"
#include "common/table.h"
#include "monitor/detector.h"
#include "sweep/sweep_runner.h"
#include "testbed/attack_lab.h"

using namespace memca;

namespace {

struct JitterRow {
  double jitter;
  bool detector_fires;
  double score;
  SimTime p95, p98;
};

JitterRow run(double jitter) {
  testbed::TestbedConfig testbed_config;
  testbed_config.cloud = testbed::CloudProfile::kPrivateCloud;
  testbed::RubbosTestbed bed(testbed_config);
  bed.start();
  core::MemcaConfig config;
  config.enable_controller = false;
  config.params.burst_length = msec(500);
  config.params.burst_interval = sec(std::int64_t{2});
  config.params.type = cloud::MemoryAttackType::kBusSaturate;  // the detectable kernel
  config.interval_jitter = jitter;
  auto attack = bed.make_attack(config);
  attack->start();
  bed.sim().run_for(3 * kMinute);
  attack->stop();

  const auto& windows = attack->program().windows();
  auto overlap = [&](SimTime start, SimTime end) {
    SimTime total = 0;
    for (const auto& w : windows) {
      const SimTime lo = std::max(start, w.start);
      const SimTime hi = std::min(end, w.end);
      if (hi > lo) total += hi - lo;
    }
    return static_cast<double>(total) / static_cast<double>(end - start);
  };
  auto none = [](SimTime, SimTime) { return 0.0; };
  cloud::LlcModel llc;
  Rng rng = bed.fork_rng("llc");
  const TimeSeries misses =
      llc.sample_series(3 * kMinute, msec(100), overlap, none, rng);
  const auto detection = monitor::detect_periodicity(misses, msec(100), 5, 60);

  JitterRow row;
  row.jitter = jitter;
  row.detector_fires = detection.periodic;
  row.score = detection.score;
  row.p95 = bed.clients().response_times().quantile(0.95);
  row.p98 = bed.clients().response_times().quantile(0.98);
  return row;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Interval jitter vs periodicity detection (bus-saturate kernel, private cloud)");
  Table table({"jitter", "periodicity detector", "best score", "p95 (ms)", "p98 (ms)"});
  const std::vector<double> jitters = {0.0, 0.1, 0.2, 0.35, 0.5};
  const std::vector<JitterRow> rows =
      sweep::SweepRunner().map(jitters, [](double jitter) { return run(jitter); });
  for (const JitterRow& row : rows) {
    table.add_row({
        Table::num(row.jitter, 2),
        row.detector_fires ? "DETECTED" : "blind",
        Table::num(row.score, 2),
        Table::num(to_millis(row.p95), 0),
        Table::num(to_millis(row.p98), 0),
    });
  }
  table.print(std::cout);
  std::cout << "\nShape checks: the strictly periodic schedule (jitter 0) is detected; the\n"
               "autocorrelation peak decays as jitter grows until the detector goes blind.\n"
               "The damage columns stay near baseline throughout: a single-VM bus-saturate\n"
               "kernel cannot starve the victim (Section III finding 1) — this ablation is\n"
               "about the detectability signature, which transfers to the lock kernel's\n"
               "CPU-side footprint as well.\n";
  return 0;
}
