// Figure 11 reproduction: MemCA stealthiness under host-level interference
// detection (OProfile-style LLC-miss monitoring on the MySQL host).
//
//  (a) Bus-saturating bursts cleanse the LLC: the victim's miss counts show
//      clear periodic spikes — a periodicity detector finds the 2 s attack
//      interval.
//  (b) Memory-lock bursts bypass the cache hierarchy: the miss series is
//      indistinguishable from baseline noise — the detector stays blind,
//      even though the attack's damage is higher.
#include <functional>
#include <iostream>

#include "cloud/llc.h"
#include "common/table.h"
#include "monitor/detector.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

namespace {

void run_variant(cloud::MemoryAttackType type) {
  testbed::TestbedConfig config;
  config.cloud = testbed::CloudProfile::kPrivateCloud;  // host-level access
  testbed::RubbosTestbed bed(config);
  bed.start();
  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  memca.params.type = type;
  auto attack = bed.make_attack(memca);
  attack->start();
  bed.sim().run_for(2 * kMinute);
  attack->stop();

  // Fraction of each 100 ms window covered by an attack burst.
  const auto& windows = attack->program().windows();
  auto overlap = [&](SimTime start, SimTime end) {
    SimTime total = 0;
    for (const auto& w : windows) {
      const SimTime lo = std::max(start, w.start);
      const SimTime hi = std::min(end, w.end);
      if (hi > lo) total += hi - lo;
    }
    return static_cast<double>(total) / static_cast<double>(end - start);
  };
  auto none = [](SimTime, SimTime) { return 0.0; };
  const bool is_bus = type == cloud::MemoryAttackType::kBusSaturate;

  cloud::LlcModel llc;
  Rng rng = bed.fork_rng("llc-observer");
  const TimeSeries misses = llc.sample_series(
      2 * kMinute, msec(100),
      is_bus ? std::function<double(SimTime, SimTime)>(overlap) : none,
      is_bus ? none : std::function<double(SimTime, SimTime)>(overlap), rng);

  print_banner(std::cout, std::string("Fig. 11") + (is_bus ? "a" : "b") +
                              " — MySQL-host LLC misses under " + to_string(type) +
                              " bursts (excerpt 60-66 s, 100 ms windows)");
  Table table({"t (s)", "LLC misses (millions)"});
  for (const Sample& s : misses.samples()) {
    if (s.time < sec(std::int64_t{60}) || s.time >= sec(std::int64_t{66})) continue;
    table.add_row({Table::num(to_seconds(s.time), 1), Table::num(s.value / 1e6, 2)});
  }
  table.print(std::cout);

  const auto detection = monitor::detect_periodicity(misses, msec(100), 5, 60);
  const double burst_index = monitor::burstiness_index(misses);
  std::cout << "periodicity detector: " << (detection.periodic ? "DETECTED" : "blind")
            << " (score " << Table::num(detection.score, 2);
  if (detection.periodic) {
    std::cout << ", period " << format_time(detection.best_period);
  }
  std::cout << "), burstiness index " << Table::num(burst_index, 2) << "\n";
  std::cout << "attack damage for reference: client p95 = "
            << Table::num(to_millis(bed.clients().response_times().quantile(0.95)), 0)
            << " ms\n";
}

}  // namespace

int main() {
  run_variant(cloud::MemoryAttackType::kBusSaturate);
  run_variant(cloud::MemoryAttackType::kMemoryLock);
  std::cout << "\nShape checks (paper): (a) periodic spikes at the 2 s attack interval,\n"
               "detector fires; (b) flat noise, detector blind — monitoring the \"right\"\n"
               "low-level metric still misses the more damaging attack variant.\n";
  return 0;
}
