// Ablation: fixed attack parameters vs the MemCA-BE feedback commander
// (Section IV-C) when the target's workload drifts mid-run.
//
// Scenario: a weakly-parameterised attack begins; at t = 2 min the site's
// population grows by 1500 users (flash crowd). The fixed attack stays
// mis-parameterised; the Kalman-filter commander escalates until the damage
// goal (p95 > 1 s) is met and then holds with the smallest footprint.
#include <iostream>

#include "common/table.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

namespace {

struct RunResult {
  SimTime p95_phase1 = 0;  // before the flash crowd
  SimTime p95_phase2 = 0;  // after
  core::AttackParams final_params;
  bool goal_met = false;
  /// Windowed client p95 sampled every 30 s (time-resolved view).
  std::vector<std::pair<SimTime, SimTime>> p95_timeline;
};

RunResult run(bool with_controller) {
  testbed::RubbosTestbed bed;
  bed.start();

  core::MemcaConfig config;
  config.enable_controller = with_controller;
  config.params.intensity = 0.5;
  config.params.burst_length = msec(250);
  config.params.burst_interval = sec(std::int64_t{3});
  config.controller.epoch = sec(std::int64_t{5});
  auto attack = bed.make_attack(config);
  attack->start();

  // Flash crowd at t = 2 min: 1500 extra users join through the same router.
  workload::ClientConfig extra_config;
  extra_config.num_users = 1500;
  extra_config.stats_warmup = bed.config().stats_warmup;
  workload::ClosedLoopClients extra(bed.sim(), bed.router(), bed.profile(), extra_config,
                                    bed.fork_rng("flash-crowd"));
  bed.sim().schedule_at(2 * kMinute, [&extra] { extra.start(); });

  RunResult result;
  PeriodicTask timeline_sampler(bed.sim(), sec(std::int64_t{30}), [&] {
    result.p95_timeline.emplace_back(bed.sim().now(), bed.clients().recent_quantile(0.95));
  });

  bed.sim().run_until(2 * kMinute);
  result.p95_phase1 = bed.clients().response_times().quantile(0.95);
  bed.sim().run_until(8 * kMinute);
  result.p95_phase2 = bed.clients().response_times().quantile(0.95);
  result.final_params = attack->scheduler().params();
  if (attack->controller()) result.goal_met = attack->controller()->goal_met();
  return result;
}

}  // namespace

int main() {
  const RunResult fixed = run(false);
  const RunResult adaptive = run(true);

  print_banner(std::cout, "Fixed parameters vs Kalman feedback commander under workload drift");
  Table table({"configuration", "p95 @2min (ms)", "p95 @8min (ms)", "final R", "final L (ms)",
               "final I (s)", "goal met"});
  table.add_row({"fixed (R=0.5, L=250ms, I=3s)", Table::num(to_millis(fixed.p95_phase1), 0),
                 Table::num(to_millis(fixed.p95_phase2), 0),
                 Table::num(fixed.final_params.intensity, 2),
                 Table::num(to_millis(fixed.final_params.burst_length), 0),
                 Table::num(to_seconds(fixed.final_params.burst_interval), 1), "n/a"});
  table.add_row({"feedback commander", Table::num(to_millis(adaptive.p95_phase1), 0),
                 Table::num(to_millis(adaptive.p95_phase2), 0),
                 Table::num(adaptive.final_params.intensity, 2),
                 Table::num(to_millis(adaptive.final_params.burst_length), 0),
                 Table::num(to_seconds(adaptive.final_params.burst_interval), 1),
                 adaptive.goal_met ? "YES" : "no"});
  table.print(std::cout);

  print_banner(std::cout, "Time-resolved client p95 (30 s windows; flash crowd joins at 2 min)");
  Table timeline({"t (s)", "fixed p95 (ms)", "commander p95 (ms)"});
  for (std::size_t i = 0; i < fixed.p95_timeline.size() && i < adaptive.p95_timeline.size();
       ++i) {
    timeline.add_row({
        Table::num(to_seconds(fixed.p95_timeline[i].first), 0),
        Table::num(to_millis(fixed.p95_timeline[i].second), 0),
        Table::num(to_millis(adaptive.p95_timeline[i].second), 0),
    });
  }
  timeline.print(std::cout);

  std::cout << "\nShape checks: the fixed under-parameterised attack never reaches the 1 s\n"
               "p95 goal; the commander escalates intensity -> burst length -> frequency\n"
               "(Section IV-C ladder) without system knowledge and meets the goal.\n";
  return 0;
}
