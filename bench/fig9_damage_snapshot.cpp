// Figure 9 reproduction: an 8-second snapshot of a MemCA run, everything
// monitored at 50 ms granularity:
//   (a) attack bursts in the adversary VM (ON/OFF),
//   (b) transient CPU saturation of the co-located MySQL VM,
//   (c) queue propagation through the 3 tiers,
//   (d) very long (> 1 s) response times perceived by end users.
#include <chrono>
#include <fstream>
#include <iostream>

#include "common/table.h"
#include "metrics/run_report.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

int main() {
  testbed::TestbedConfig config;
  config.metrics = true;
  config.record_response_series = true;  // Fig. 9d plots the raw series
  testbed::RubbosTestbed bed(config);
  bed.start();

  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  memca.params.type = cloud::MemoryAttackType::kMemoryLock;
  auto attack = bed.make_attack(memca);
  attack->start();

  // Warm up past the statistics warm-up, then capture an 8 s window.
  const SimTime window_start = sec(std::int64_t{60});
  const SimTime window_end = window_start + sec(std::int64_t{8});
  const auto wall_start = std::chrono::steady_clock::now();
  bed.sim().run_until(window_end + sec(std::int64_t{1}));
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  // (a) + (b) + (c): one row per 50 ms.
  print_banner(std::cout,
               "Fig. 9a-c — 8 s snapshot at 50 ms granularity (L=500ms, I=2s, memory-lock)");
  Table table({"t (s)", "attack ON", "MySQL CPU %", "Q mysql", "Q tomcat", "Q apache"});
  const auto& windows = attack->program().windows();
  auto attack_on = [&](SimTime t) {
    for (const auto& w : windows) {
      if (t >= w.start && t < w.end) return true;
    }
    return false;
  };
  const auto& cpu = bed.mysql_cpu().series().samples();
  for (const Sample& s : cpu) {
    if (s.time < window_start || s.time >= window_end) continue;
    if (s.time % msec(100) != 0) continue;  // print every other sample
    auto queue_at = [&](std::size_t tier) {
      const auto& q = bed.queue_gauge(tier).series().samples();
      for (const Sample& g : q) {
        if (g.time >= s.time) return g.value;
      }
      return 0.0;
    };
    table.add_row({
        Table::num(to_seconds(s.time), 2),
        attack_on(s.time) ? "##" : "",
        Table::num(s.value * 100.0, 0),
        Table::num(queue_at(2), 0),
        Table::num(queue_at(1), 0),
        Table::num(queue_at(0), 0),
    });
  }
  table.print(std::cout);

  // (d) client response times completing inside the window.
  print_banner(std::cout, "Fig. 9d — client response times completing in the window");
  Table rt_table({"t (s)", "max RT in 50ms bucket (ms)", "count"});
  const TimeSeries& rts = bed.clients().response_series();
  for (SimTime t = window_start; t < window_end; t += msec(200)) {
    const double max_rt = rts.max_in(t, t + msec(200));
    std::size_t n = 0;
    for (const Sample& s : rts.samples()) {
      if (s.time >= t && s.time < t + msec(200)) ++n;
    }
    rt_table.add_row({Table::num(to_seconds(t), 2), Table::num(max_rt / 1000.0, 1),
                      Table::num(static_cast<std::int64_t>(n))});
  }
  rt_table.print(std::cout);

  std::cout << "\nShape checks (paper): bursts every 2 s, each ~500 ms (a); MySQL CPU pins\n"
               "at 100% during and shortly after each burst, then returns to ~40-50% (b);\n"
               "queues fill MySQL -> Tomcat -> Apache within each burst and drain after\n"
               "(c); response-time spikes > 1000 ms appear in the buckets ~1 s after each\n"
               "burst's drops, from TCP retransmission (d).\n";

  bed.finalize_metrics(attack.get());
  metrics::RunReportOptions options;
  options.scenario = "fig9_damage_snapshot";
  options.wall_seconds = wall_seconds;
  options.scrape_resolution = bed.config().metrics_resolution;
  const metrics::RunReport report = metrics::build_run_report(*bed.registry(), options);
  std::ofstream json("fig9_damage_snapshot.runreport.json");
  metrics::write_json(json, report);
  std::ofstream md("fig9_damage_snapshot.runreport.md");
  metrics::write_markdown(md, report);
  std::cout << "run report: " << report.bursts << " bursts (duty cycle "
            << Table::num(report.duty_cycle * 100.0, 1) << "%), " << report.dropped
            << " drops -> fig9_damage_snapshot.runreport.{json,md}\n";
  return 0;
}
