// Figure 10 reproduction: MemCA stealthiness under cloud elasticity.
// The same 3-minute attacked run's MySQL CPU utilization viewed at three
// monitoring granularities:
//   (a) 1-minute (CloudWatch): flat and moderate — Auto Scaling never fires;
//   (b) 1-second: mild fluctuation, still under the 85% threshold;
//   (c) 50-millisecond: frequent transient saturations plainly visible.
#include <chrono>
#include <fstream>
#include <iostream>

#include "common/table.h"
#include "metrics/run_report.h"
#include "monitor/autoscaler.h"
#include "monitor/detector.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

int main() {
  testbed::TestbedConfig config;
  config.metrics = true;
  // Always-on flight recorder: the run report's windowed tail statistics
  // below come from its streaming sketches, not the clients' full
  // response-time vector.
  config.flightrec = true;
  testbed::RubbosTestbed bed(config);
  bed.start();
  // Checkpoint the freshly started world: the attacked run below and the
  // attack-free baseline at the end both fork from this exact state, so the
  // baseline differs *only* by the attack (same seed, same arrival stream).
  bed.snapshot();
  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  auto attack = bed.make_attack(memca);
  attack->start();
  const auto wall_start = std::chrono::steady_clock::now();
  bed.sim().run_for(3 * kMinute);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  const TimeSeries& fine = bed.mysql_cpu().series();

  print_banner(std::cout, "Fig. 10a — 1-minute monitoring (CloudWatch granularity)");
  Table a({"window start", "avg CPU %"});
  const TimeSeries one_minute = fine.resample_mean(kMinute);
  for (const Sample& s : one_minute.samples()) {
    a.add_row({format_time(s.time), Table::num(s.value * 100.0, 1)});
  }
  a.print(std::cout);

  print_banner(std::cout, "Fig. 10b — 1-second monitoring (excerpt 60-75 s + summary)");
  Table b({"t (s)", "avg CPU %"});
  const TimeSeries one_second = fine.resample_mean(sec(std::int64_t{1}));
  for (const Sample& s : one_second.samples()) {
    if (s.time < sec(std::int64_t{60}) || s.time >= sec(std::int64_t{75})) continue;
    b.add_row({Table::num(to_seconds(s.time), 0), Table::num(s.value * 100.0, 1)});
  }
  b.print(std::cout);
  std::cout << "1-second series: mean " << Table::num(one_second.mean() * 100.0, 1)
            << "%, max " << Table::num(one_second.max() * 100.0, 1) << "%, windows above 85%: "
            << one_second.count_above(0.85) << " of " << one_second.size() << " (";
  for (const Sample& s : one_second.samples()) {
    if (s.value > 0.85) std::cout << " t=" << to_seconds(s.time) << "s:" << s.value * 100.0;
  }
  std::cout << " )\n";

  print_banner(std::cout, "Fig. 10c — 50 ms monitoring (excerpt 60-66 s)");
  Table c({"t (s)", "CPU %"});
  for (const Sample& s : fine.samples()) {
    if (s.time < sec(std::int64_t{60}) || s.time >= sec(std::int64_t{66})) continue;
    if (s.time % msec(200) != 0) continue;
    c.add_row({Table::num(to_seconds(s.time), 2), Table::num(s.value * 100.0, 0)});
  }
  c.print(std::cout);
  std::cout << "50 ms series: max " << Table::num(fine.max() * 100.0, 1)
            << "%, saturated (>98%) windows: " << fine.count_above(0.98) << " of "
            << fine.size() << "\n";

  print_banner(std::cout, "Auto Scaling verdicts (threshold 85% avg CPU)");
  Table v({"granularity", "consecutive periods", "triggered", "max window avg %"});
  struct Policy {
    const char* name;
    SimTime period;
    int consecutive;
  };
  for (const Policy& p : {Policy{"1 minute (CloudWatch)", kMinute, 1},
                          Policy{"1 second", sec(std::int64_t{1}), 2},
                          Policy{"50 ms", msec(50), 2}}) {
    monitor::AutoScalerConfig config;
    config.sampling_period = p.period;
    config.consecutive_periods = p.consecutive;
    const auto decision = monitor::evaluate_autoscaler(fine, config);
    v.add_row({p.name, Table::num(std::int64_t{p.consecutive}),
               decision.triggered ? "YES" : "no",
               Table::num(decision.observed.max() * 100.0, 1)});
  }
  v.print(std::cout);

  std::cout << "\nDamage context: client p95 = "
            << Table::num(to_millis(bed.clients().response_times().quantile(0.95)), 0)
            << " ms while every realistic scaling policy stays silent.\n"
            << "Shape checks (paper): (a) flat ~55-65%; (b) fluctuation bounded below the\n"
               "85% trigger; (c) transient 100% saturations every 2 s.\n";

  // Machine-readable run report, built from the scraped registry alone.
  // The blind-spot claim must reproduce from registry data without touching
  // the monitor samplers above: the target tier's scraped utilization
  // saturates at native (50 ms) resolution while its 1 s and 1 min
  // resamples never cross the 85% auto-scaling trigger.
  bed.finalize_metrics(attack.get());
  metrics::RunReportOptions options;
  options.scenario = "fig10_elasticity_stealth";
  options.wall_seconds = wall_seconds;
  options.scrape_resolution = bed.config().metrics_resolution;
  const metrics::RunReport report = metrics::build_run_report(*bed.registry(), options);
  {
    std::ofstream json("fig10_elasticity_stealth.runreport.json");
    metrics::write_json(json, report);
    std::ofstream md("fig10_elasticity_stealth.runreport.md");
    metrics::write_markdown(md, report);
  }

  print_banner(std::cout, "Run report (registry-only view of the blind spot)");
  const metrics::TierReport* mysql = nullptr;
  for (const metrics::TierReport& tier : report.tiers) {
    if (tier.name == "mysql") mysql = &tier;
  }
  if (mysql == nullptr) {
    std::cout << "ERROR: run report carries no mysql tier\n";
    return 1;
  }
  std::cout << "mysql utilization max: native "
            << Table::num(mysql->util_max_native * 100.0, 1) << "%, 1 s resample "
            << Table::num(mysql->util_max_1s * 100.0, 1) << "% ("
            << mysql->util_1s_windows_above << " isolated windows above 85%, longest run "
            << mysql->util_1s_max_consecutive_above << "), 1 min resample "
            << Table::num(mysql->util_max_1min * 100.0, 1) << "%\n"
            << "attack: " << report.bursts << " bursts, duty cycle "
            << Table::num(report.duty_cycle * 100.0, 1) << "%, capacity dips "
            << report.capacity_dips << " (min multiplier "
            << Table::num(report.min_capacity_multiplier, 3) << ")\n"
            << "engine: " << report.events_executed << " events, "
            << Table::num(report.events_per_wall_sec / 1e6, 2) << " M events/s, speedup "
            << Table::num(report.sim_speedup, 0) << "x\n"
            << "wrote fig10_elasticity_stealth.runreport.{json,md}\n";
  // Tail view from the flight recorder's streaming sketches — O(1) memory,
  // no client-latency vector behind it — next to the exact quantiles.
  const SimTime exact_p95 = bed.clients().response_times().quantile(0.95);
  const SimTime exact_p99 = bed.clients().response_times().quantile(0.99);
  std::cout << "sketch latency (ms): p50 " << Table::num(report.sketch_p50_us / 1000.0, 0)
            << ", p95 " << Table::num(report.sketch_p95_us / 1000.0, 0) << " (exact "
            << Table::num(to_millis(exact_p95), 0) << "), p99 "
            << Table::num(report.sketch_p99_us / 1000.0, 0) << " (exact "
            << Table::num(to_millis(exact_p99), 0) << "), p99.9 "
            << Table::num(report.sketch_p999_us / 1000.0, 0) << "\n"
            << "flight recorder: " << report.incidents << " incidents, "
            << report.incident_affected_requests << " VLRT requests pinned\n";
  // Saturation is plain at 50 ms; the 1-minute view never approaches the
  // 85% trigger; and at 1 s, breaches stay isolated (no two consecutive
  // windows), so a CloudWatch-style alarm — which fires on consecutive
  // threshold periods — stays silent at every granularity it is offered.
  const bool blind_spot = mysql->util_max_native >= 0.95 && mysql->util_max_1min < 0.85 &&
                          mysql->util_1s_max_consecutive_above < 2;
  std::cout << "blind-spot claim (native >= 95%; 1 min < 85%; no consecutive 1 s windows "
               "above 85%): "
            << (blind_spot ? "REPRODUCED" : "NOT REPRODUCED") << "\n";

  // Attack-free counterfactual: destroy the attack (its probes and
  // observers were registered after the checkpoint, so the rollback drops
  // them), rewind the world to t=0 and re-run the same 3 minutes without
  // bursts. Every delta to the tables above is attributable to the attack.
  attack.reset();
  bed.rollback();
  bed.sim().run_for(3 * kMinute);
  const TimeSeries& base = bed.mysql_cpu().series();
  print_banner(std::cout, "Baseline (same world via snapshot rollback, attack off)");
  std::cout << "mysql CPU: mean " << Table::num(base.mean() * 100.0, 1) << "%, max 50 ms "
            << Table::num(base.max() * 100.0, 1) << "%, saturated (>98%) windows: "
            << base.count_above(0.98) << " of " << base.size() << "\n"
            << "client p95 = "
            << Table::num(to_millis(bed.clients().response_times().quantile(0.95)), 0)
            << " ms, drops " << bed.clients().dropped_attempts()
            << " — the tail amplification above is entirely attack-induced, and the\n"
            << "periodic transient saturations all but vanish; the baseline world\n"
            << "shares the attacked run's seed and arrival stream exactly.\n";
  return blind_spot ? 0 : 1;
}
