// Figure 10 reproduction: MemCA stealthiness under cloud elasticity.
// The same 3-minute attacked run's MySQL CPU utilization viewed at three
// monitoring granularities:
//   (a) 1-minute (CloudWatch): flat and moderate — Auto Scaling never fires;
//   (b) 1-second: mild fluctuation, still under the 85% threshold;
//   (c) 50-millisecond: frequent transient saturations plainly visible.
#include <iostream>

#include "common/table.h"
#include "monitor/autoscaler.h"
#include "monitor/detector.h"
#include "testbed/rubbos_testbed.h"

using namespace memca;

int main() {
  testbed::RubbosTestbed bed;
  bed.start();
  core::MemcaConfig memca;
  memca.enable_controller = false;
  memca.params.burst_length = msec(500);
  memca.params.burst_interval = sec(std::int64_t{2});
  auto attack = bed.make_attack(memca);
  attack->start();
  bed.sim().run_for(3 * kMinute);

  const TimeSeries& fine = bed.mysql_cpu().series();

  print_banner(std::cout, "Fig. 10a — 1-minute monitoring (CloudWatch granularity)");
  Table a({"window start", "avg CPU %"});
  const TimeSeries one_minute = fine.resample_mean(kMinute);
  for (const Sample& s : one_minute.samples()) {
    a.add_row({format_time(s.time), Table::num(s.value * 100.0, 1)});
  }
  a.print(std::cout);

  print_banner(std::cout, "Fig. 10b — 1-second monitoring (excerpt 60-75 s + summary)");
  Table b({"t (s)", "avg CPU %"});
  const TimeSeries one_second = fine.resample_mean(sec(std::int64_t{1}));
  for (const Sample& s : one_second.samples()) {
    if (s.time < sec(std::int64_t{60}) || s.time >= sec(std::int64_t{75})) continue;
    b.add_row({Table::num(to_seconds(s.time), 0), Table::num(s.value * 100.0, 1)});
  }
  b.print(std::cout);
  std::cout << "1-second series: mean " << Table::num(one_second.mean() * 100.0, 1)
            << "%, max " << Table::num(one_second.max() * 100.0, 1) << "%, windows above 85%: "
            << one_second.count_above(0.85) << " of " << one_second.size() << "\n";

  print_banner(std::cout, "Fig. 10c — 50 ms monitoring (excerpt 60-66 s)");
  Table c({"t (s)", "CPU %"});
  for (const Sample& s : fine.samples()) {
    if (s.time < sec(std::int64_t{60}) || s.time >= sec(std::int64_t{66})) continue;
    if (s.time % msec(200) != 0) continue;
    c.add_row({Table::num(to_seconds(s.time), 2), Table::num(s.value * 100.0, 0)});
  }
  c.print(std::cout);
  std::cout << "50 ms series: max " << Table::num(fine.max() * 100.0, 1)
            << "%, saturated (>98%) windows: " << fine.count_above(0.98) << " of "
            << fine.size() << "\n";

  print_banner(std::cout, "Auto Scaling verdicts (threshold 85% avg CPU)");
  Table v({"granularity", "consecutive periods", "triggered", "max window avg %"});
  struct Policy {
    const char* name;
    SimTime period;
    int consecutive;
  };
  for (const Policy& p : {Policy{"1 minute (CloudWatch)", kMinute, 1},
                          Policy{"1 second", sec(std::int64_t{1}), 2},
                          Policy{"50 ms", msec(50), 2}}) {
    monitor::AutoScalerConfig config;
    config.sampling_period = p.period;
    config.consecutive_periods = p.consecutive;
    const auto decision = monitor::evaluate_autoscaler(fine, config);
    v.add_row({p.name, Table::num(std::int64_t{p.consecutive}),
               decision.triggered ? "YES" : "no",
               Table::num(decision.observed.max() * 100.0, 1)});
  }
  v.print(std::cout);

  std::cout << "\nDamage context: client p95 = "
            << Table::num(to_millis(bed.clients().response_times().quantile(0.95)), 0)
            << " ms while every realistic scaling policy stays silent.\n"
            << "Shape checks (paper): (a) flat ~55-65%; (b) fluctuation bounded below the\n"
               "85% trigger; (c) transient 100% saturations every 2 s.\n";
  return 0;
}
