// Figure 3 reproduction: memory bandwidth degradation under the two memory
// attack types, for same-package and random-package VM placement.
//
// Paper results: (1) per-VM available bandwidth decreases as co-located VMs
// increase; (2) one locking VM degrades co-located bandwidth far more than
// one bus-saturating VM; (3) random-package placement softens both effects.
#include <iostream>

#include "cloud/host.h"
#include "common/table.h"

using namespace memca;
using cloud::Placement;

namespace {

enum class Attack { kNone, kBusSaturate, kMemoryLock };

const char* attack_name(Attack a) {
  switch (a) {
    case Attack::kNone:
      return "no attack";
    case Attack::kBusSaturate:
      return "saturating memory bus";
    case Attack::kMemoryLock:
      return "locking memory";
  }
  return "?";
}

/// Average bandwidth achieved by each of `n` measuring VMs (RAMspeed-style,
/// each pulling its single-stream maximum) with one adversary VM running
/// `attack`, under the given placement.
double per_vm_bandwidth(int n, Attack attack, Placement placement) {
  cloud::Host host(cloud::xeon_e5_2603_v3());
  std::vector<cloud::VmId> measuring;
  for (int i = 0; i < n; ++i) {
    measuring.push_back(host.add_vm({"vm" + std::to_string(i), 1, placement, 0}));
  }
  const cloud::VmId adversary = host.add_vm({"adversary", 1, placement, 0});
  const double stream = host.spec().packages[0].single_stream_gbps;
  for (cloud::VmId vm : measuring) host.set_memory_activity(vm, stream, 0.0);
  switch (attack) {
    case Attack::kNone:
      break;
    case Attack::kBusSaturate:
      host.set_memory_activity(adversary, stream, 0.0);
      break;
    case Attack::kMemoryLock:
      host.set_memory_activity(adversary, 0.0, 0.9);
      break;
  }
  double total = 0.0;
  for (cloud::VmId vm : measuring) total += host.achieved_bandwidth(vm);
  return total / static_cast<double>(n);
}

void run_placement(Placement placement, const char* label) {
  print_banner(std::cout, std::string("Fig. 3 — per-VM available bandwidth (GB/s), ") + label);
  Table table({"measuring VMs", "no attack", "bus-saturate (1 VM)", "memory-lock (1 VM)"});
  for (int n = 1; n <= 5; ++n) {
    table.add_row({
        Table::num(std::int64_t{n}),
        Table::num(per_vm_bandwidth(n, Attack::kNone, placement)),
        Table::num(per_vm_bandwidth(n, Attack::kBusSaturate, placement)),
        Table::num(per_vm_bandwidth(n, Attack::kMemoryLock, placement)),
    });
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  run_placement(Placement::kPinnedPackage, "same package (6 VMs pinned to one socket)");
  run_placement(Placement::kFloating, "random package (VMs float over 2 sockets)");
  std::cout << "\nShape checks (paper): bandwidth monotonically decreases with VM count;\n"
               "memory-lock column << bus-saturate column; random-package values exceed\n"
               "same-package values at equal VM count.\n";
  return 0;
}
