#include "snapshot/world_snapshot.h"

namespace memca::snapshot {

void WorldSnapshot::capture() {
  for (const auto& fn : captures_) fn();
  captured_ = true;
}

void WorldSnapshot::rollback() const {
  MEMCA_CHECK_MSG(captured_, "rollback() needs a prior capture()");
  for (const auto& fn : restores_) fn();
}

}  // namespace memca::snapshot
