// In-place checkpoint/rollback of a simulated world (memca_snapshot).
//
// A sweep spends most of its wall-clock re-simulating the same warm-up:
// every cell of a parameter grid builds an identical testbed, runs the same
// minutes of steady state, and only then diverges. WorldSnapshot is the
// simulation analog of prefix caching — run the shared prefix once, capture
// the world, and rewind to it before each cell instead of re-simulating.
//
// The defining constraint is that rollback is IN-PLACE. The hot-path state
// of a built world is pointer-stable (arena chunks never relocate, pool
// requests never move, registry cells live in a deque), and scheduled
// closures, metric handles and observers all hold raw pointers into it.
// Destroying and rebuilding objects would invalidate every one of those, so
// capture() copies each component's POD state *aside* and rollback() writes
// it back into the very same objects. After a rollback every bound
// InlineFunction, EventHandle and Request* is exactly as valid as it was at
// the capture instant.
//
// Components participate through a uniform member protocol:
//
//   struct Snapshot { ... };            // value state, plain data
//   void capture(Snapshot&) const;      // copy state aside (may allocate)
//   void restore(const Snapshot&);      // write it back (must not allocate)
//
// attach<T>() binds a component by that protocol; attach_value() covers
// plain copy-assignable state (flags, histograms, small structs). capture()
// may allocate (first-time buffer growth); rollback() must not — restores
// only truncate, memcpy and copy-assign into capacity that already exists,
// which the snapshot allocation test enforces with a counting allocator.
//
// What is deliberately NOT captured: construction-time wiring (tier
// topology, callbacks, RNG fork labels) and anything created after the
// capture (an attack built per cell registers registry cells and observers;
// rollback truncates those registrations away, and the object itself is the
// caller's to destroy *before* rolling back).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/check.h"

namespace memca::snapshot {

class WorldSnapshot {
 public:
  WorldSnapshot() = default;
  WorldSnapshot(const WorldSnapshot&) = delete;
  WorldSnapshot& operator=(const WorldSnapshot&) = delete;

  /// Binds a component implementing the Snapshot/capture/restore protocol.
  /// The component must outlive this WorldSnapshot.
  template <typename T>
    requires requires(T& t, typename T::Snapshot& s) {
      t.capture(s);
      t.restore(s);
    }
  void attach(T& target) {
    auto state = std::make_shared<typename T::Snapshot>();
    captures_.push_back([&target, state] { target.capture(*state); });
    restores_.push_back([&target, state] { target.restore(*state); });
  }

  /// Binds plain copy-assignable state (a flag, a histogram, a POD struct):
  /// capture copies it, rollback assigns it back.
  template <typename T>
  void attach_value(T& target) {
    auto state = std::make_shared<T>();
    captures_.push_back([&target, state] { *state = target; });
    restores_.push_back([&target, state] { target = *state; });
  }

  /// Captures every attached component, in attach order. Calling it again
  /// re-captures (the checkpoint moves forward); buffers from the previous
  /// capture are reused.
  void capture();

  /// Restores every attached component to the captured state, in attach
  /// order. Requires a prior capture(). May be called any number of times —
  /// each rollback rewinds to the same checkpoint — and never allocates.
  void rollback() const;

  bool captured() const { return captured_; }
  std::size_t attached() const { return captures_.size(); }

 private:
  std::vector<std::function<void()>> captures_;
  std::vector<std::function<void()>> restores_;
  bool captured_ = false;
};

}  // namespace memca::snapshot
