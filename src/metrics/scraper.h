// Sim-time scraper: snapshots a Registry at a fixed resolution.
//
// The paper's stealth result is a sampling-theory statement — whether a
// monitor sees the attack depends entirely on scrape granularity — so the
// scraper is deliberately the same mechanism a real agent would be: a
// periodic tick that reads every instrument and appends to in-memory
// series. Scraping at 50 ms and resampling to 1 s / 1 min reproduces the
// Fig. 10 blind spot from one registry (see RunReport).
//
// Runs on the simulation's PeriodicTask, so scrape instants are part of the
// deterministic event order and two runs of the same scenario produce
// bit-identical series.
#pragma once

#include <memory>

#include "common/check.h"
#include "metrics/registry.h"
#include "sim/simulator.h"

namespace memca::metrics {

struct ScraperConfig {
  /// Scrape period (the paper's fine-grained 50 ms tooling by default).
  SimTime resolution = msec(50);
};

class Scraper {
 public:
  Scraper(Simulator& sim, Registry& registry, ScraperConfig config = {});

  /// Starts scraping; the first snapshot lands one resolution after start().
  void start();
  void stop();
  bool running() const { return task_ != nullptr; }
  SimTime resolution() const { return config_.resolution; }

  /// Checkpoint of the periodic tick (the scraped data itself lives in the
  /// Registry's snapshot). The task must exist iff it existed at capture.
  struct Snapshot {
    bool has_task = false;
    PeriodicTask::Snapshot task;
  };

  void capture(Snapshot& out) const {
    out.has_task = task_ != nullptr;
    if (task_ != nullptr) task_->capture(out.task);
  }

  void restore(const Snapshot& snap) {
    MEMCA_CHECK(snap.has_task == (task_ != nullptr));
    if (task_ != nullptr) task_->restore(snap.task);
  }

 private:
  Simulator& sim_;
  Registry& registry_;
  ScraperConfig config_;
  std::unique_ptr<PeriodicTask> task_;
};

}  // namespace memca::metrics
