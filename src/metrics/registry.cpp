#include "metrics/registry.h"

#include <algorithm>
#include <bit>
#include <ostream>

#include "common/check.h"

namespace memca::metrics {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kProbe:
      return "probe";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

namespace {
Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}
}  // namespace

std::string Registry::key_of(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';  // unit separator: cannot appear in sane label text
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Registry::Cell& Registry::intern(std::string_view name, Labels labels, MetricKind kind) {
  labels = canonical(std::move(labels));
  const std::string key = key_of(name, labels);
  if (auto it = index_.find(key); it != index_.end()) {
    Cell& cell = cells_[it->second];
    MEMCA_CHECK_MSG(cell.kind == kind, "metric re-registered with a different kind");
    return cell;
  }
  index_.emplace(key, cells_.size());
  Cell& cell = cells_.emplace_back();
  cell.name = std::string(name);
  cell.labels = std::move(labels);
  cell.kind = kind;
  return cell;
}

Counter Registry::counter(std::string_view name, Labels labels) {
  return Counter(&intern(name, std::move(labels), MetricKind::kCounter).counter);
}

Gauge Registry::gauge(std::string_view name, Labels labels) {
  return Gauge(&intern(name, std::move(labels), MetricKind::kGauge).gauge);
}

HistogramHandle Registry::histogram(std::string_view name, Labels labels) {
  Cell& cell = intern(name, std::move(labels), MetricKind::kHistogram);
  if (cell.hist == nullptr) cell.hist = std::make_unique<LatencyHistogram>();
  return HistogramHandle(cell.hist.get());
}

void Registry::probe(std::string_view name, Labels labels, std::function<double()> fn) {
  MEMCA_CHECK_MSG(static_cast<bool>(fn), "probe needs a callable");
  Cell& cell = intern(name, std::move(labels), MetricKind::kProbe);
  cell.probe_fn = std::move(fn);
}

void Registry::scrape(SimTime now) {
  for (Cell& cell : cells_) {
    switch (cell.kind) {
      case MetricKind::kCounter:
        cell.series.append(now, static_cast<double>(cell.counter));
        break;
      case MetricKind::kGauge:
        cell.series.append(now, cell.gauge);
        break;
      case MetricKind::kProbe:
        // A merged registry carries probe data without callbacks; its last
        // sampled value stands in (see merge()).
        if (cell.probe_fn) cell.gauge = cell.probe_fn();
        cell.series.append(now, cell.gauge);
        break;
      case MetricKind::kHistogram:
        break;
    }
  }
  ++scrapes_;
}

std::vector<std::size_t> Registry::family(std::string_view name) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name == name) out.push_back(i);
  }
  return out;
}

std::string Registry::label_value(std::size_t i, std::string_view key) const {
  for (const auto& [k, v] : cells_[i].labels) {
    if (k == key) return v;
  }
  return "";
}

std::size_t Registry::find(std::string_view name, const Labels& labels) const {
  const auto it = index_.find(key_of(name, canonical(labels)));
  return it == index_.end() ? npos : it->second;
}

std::int64_t Registry::counter_value(std::string_view name, const Labels& labels) const {
  const std::size_t i = find(name, labels);
  return i == npos ? 0 : cells_[i].counter;
}

double Registry::gauge_value(std::string_view name, const Labels& labels) const {
  const std::size_t i = find(name, labels);
  return i == npos ? 0.0 : cells_[i].gauge;
}

const TimeSeries* Registry::series(std::string_view name, const Labels& labels) const {
  const std::size_t i = find(name, labels);
  return i == npos ? nullptr : &cells_[i].series;
}

const LatencyHistogram* Registry::find_histogram(std::string_view name,
                                                 const Labels& labels) const {
  const std::size_t i = find(name, labels);
  return i == npos ? nullptr : cells_[i].hist.get();
}

void Registry::merge(const Registry& other) {
  for (const Cell& theirs : other.cells_) {
    Cell& ours = intern(theirs.name, theirs.labels, theirs.kind);
    ours.counter += theirs.counter;
    ours.gauge += theirs.gauge;
    if (theirs.hist != nullptr) {
      if (ours.hist == nullptr) ours.hist = std::make_unique<LatencyHistogram>();
      ours.hist->merge(*theirs.hist);
    }
    ours.series = ours.series.merge_sum(theirs.series);
  }
  scrapes_ = std::max(scrapes_, other.scrapes_);
}

void Registry::capture(Snapshot& out) const {
  out.scrapes = scrapes_;
  out.cells.resize(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& cell = cells_[i];
    Snapshot::CellState& s = out.cells[i];
    s.counter = cell.counter;
    s.gauge = cell.gauge;
    s.series_size = cell.series.size();
    if (cell.hist != nullptr) {
      if (s.hist == nullptr) s.hist = std::make_unique<LatencyHistogram>();
      *s.hist = *cell.hist;
    } else {
      s.hist.reset();
    }
  }
}

void Registry::restore(const Snapshot& snap) {
  MEMCA_CHECK_MSG(snap.cells.size() <= cells_.size(),
                  "a Snapshot only restores into the registry it captured");
  if (snap.cells.size() < cells_.size()) {
    cells_.resize(snap.cells.size());
    for (auto it = index_.begin(); it != index_.end();) {
      if (it->second >= snap.cells.size()) {
        it = index_.erase(it);
      } else {
        ++it;
      }
    }
  }
  scrapes_ = snap.scrapes;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    Cell& cell = cells_[i];
    const Snapshot::CellState& s = snap.cells[i];
    cell.counter = s.counter;
    cell.gauge = s.gauge;
    cell.series.truncate(s.series_size);
    MEMCA_CHECK((cell.hist != nullptr) == (s.hist != nullptr));
    if (cell.hist != nullptr) *cell.hist = *s.hist;
  }
}

void Registry::clone_values_into(Registry& out) const {
  MEMCA_CHECK_MSG(out.cells_.empty(), "clone target must be an empty registry");
  for (const Cell& cell : cells_) {
    Cell& copy = out.intern(cell.name, cell.labels, cell.kind);
    copy.counter = cell.counter;
    copy.gauge = cell.gauge;
    if (cell.hist != nullptr) {
      copy.hist = std::make_unique<LatencyHistogram>(*cell.hist);
    }
    copy.series = cell.series;
  }
  out.scrapes_ = scrapes_;
}

namespace {
// Doubles as raw bit patterns: equal text iff bit-identical values.
void put_bits(std::ostream& out, double v) {
  out << std::bit_cast<std::uint64_t>(v);
}
}  // namespace

void Registry::serialize(std::ostream& out) const {
  for (const Cell& cell : cells_) {
    out << cell.name;
    for (const auto& [k, v] : cell.labels) out << '{' << k << '=' << v << '}';
    out << ' ' << to_string(cell.kind) << " counter=" << cell.counter << " gauge=";
    put_bits(out, cell.gauge);
    if (cell.hist != nullptr) {
      out << " hist_count=" << cell.hist->count() << " hist_min=" << cell.hist->min()
          << " hist_max=" << cell.hist->max() << " hist_p50=" << cell.hist->quantile(0.5)
          << " hist_p99=" << cell.hist->quantile(0.99) << " hist_sum_bits=";
      put_bits(out, cell.hist->mean() * static_cast<double>(cell.hist->count()));
    }
    out << '\n';
    if (!cell.series.empty()) {
      out << "  series " << cell.series.size();
      for (const Sample& s : cell.series.samples()) {
        out << ' ' << s.time << ':';
        put_bits(out, s.value);
      }
      out << '\n';
    }
  }
}

}  // namespace memca::metrics
