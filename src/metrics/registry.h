// Runtime metrics registry: handle-based counters, gauges, probes and
// log-bucketed histograms with labeled families.
//
// Design goals, in priority order:
//  * Cheap hot path. Instrumented code holds a pre-resolved handle — a raw
//    pointer into the registry's pointer-stable cell arena — so recording is
//    one null check plus an increment: no map lookup, no allocation, no
//    virtual dispatch. A default-constructed (detached) handle turns every
//    operation into a no-op, so instrumentation stays unconditionally in
//    place and costs a predictable branch when metrics are off.
//  * Determinism. Registration order defines iteration and export order.
//    The same scenario built twice registers identically, so two runs of a
//    sweep cell serialize to identical bytes — which is what makes per-cell
//    registries mergeable into a bit-identical whole regardless of how many
//    worker threads executed the sweep.
//  * Sim-time series. scrape(now) appends every counter/gauge/probe value
//    to a per-instrument TimeSeries (the Scraper drives this off a
//    PeriodicTask), turning cumulative counters into rate-analyzable series
//    and gauges into the utilization/queue-length traces the paper's
//    stealth analysis needs.
//
// Registries are single-threaded like the simulations they observe: one
// registry per sweep cell, merged after the batch drains.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/time.h"
#include "common/timeseries.h"

namespace memca::metrics {

/// Label key/value pairs; canonicalized (sorted by key) at registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kProbe, kHistogram };

const char* to_string(MetricKind kind);

/// Hot-path handle for a monotonically increasing count. Detached handles
/// (default-constructed) drop every operation.
class Counter {
 public:
  Counter() = default;

  void inc(std::int64_t n = 1) {
    if (value_ != nullptr) *value_ += n;
  }
  /// Overwrites the count — for totals accumulated elsewhere and synced in
  /// at end of run (burst counts, log-line tallies, engine event counts).
  void set_to(std::int64_t v) {
    if (value_ != nullptr) *value_ = v;
  }
  std::int64_t value() const { return value_ == nullptr ? 0 : *value_; }
  bool attached() const { return value_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(std::int64_t* value) : value_(value) {}
  std::int64_t* value_ = nullptr;
};

/// Hot-path handle for a point-in-time value.
class Gauge {
 public:
  Gauge() = default;

  void set(double v) {
    if (value_ != nullptr) *value_ = v;
  }
  double value() const { return value_ == nullptr ? 0.0 : *value_; }
  bool attached() const { return value_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(double* value) : value_(value) {}
  double* value_ = nullptr;
};

/// Hot-path handle for recording into a log-bucketed latency histogram.
class HistogramHandle {
 public:
  HistogramHandle() = default;

  void record(SimTime value) {
    if (hist_ != nullptr) hist_->record(value);
  }
  bool attached() const { return hist_ != nullptr; }

 private:
  friend class Registry;
  explicit HistogramHandle(LatencyHistogram* hist) : hist_(hist) {}
  LatencyHistogram* hist_ = nullptr;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Each factory registers the instrument (or finds an existing one with
  /// the same name+labels — handles to one instrument alias) and returns a
  /// pre-resolved handle. Registration is map-based and therefore not for
  /// hot paths; resolve handles once, at wiring time.
  Counter counter(std::string_view name, Labels labels = {});
  Gauge gauge(std::string_view name, Labels labels = {});
  HistogramHandle histogram(std::string_view name, Labels labels = {});
  /// A probe is a gauge evaluated by scrape(): `fn` is called once per
  /// scrape and its value recorded. Must be pure w.r.t. sim state (no side
  /// effects beyond its own closure) to keep runs deterministic.
  void probe(std::string_view name, Labels labels, std::function<double()> fn);

  /// Appends the current value of every counter, gauge and probe to its
  /// series, stamped `now`. Histograms carry no series (their value is the
  /// whole distribution).
  void scrape(SimTime now);
  std::int64_t scrapes() const { return scrapes_; }

  // -- introspection (registration order) ----------------------------------
  std::size_t size() const { return cells_.size(); }
  const std::string& name(std::size_t i) const { return cells_[i].name; }
  const Labels& labels(std::size_t i) const { return cells_[i].labels; }
  MetricKind kind(std::size_t i) const { return cells_[i].kind; }
  std::int64_t counter_at(std::size_t i) const { return cells_[i].counter; }
  double gauge_at(std::size_t i) const { return cells_[i].gauge; }
  const TimeSeries& series_at(std::size_t i) const { return cells_[i].series; }
  const LatencyHistogram* histogram_at(std::size_t i) const {
    return cells_[i].hist.get();
  }

  /// Indices of every instrument in family `name`, registration order.
  std::vector<std::size_t> family(std::string_view name) const;
  /// Value of one label on instrument `i` ("" if absent).
  std::string label_value(std::size_t i, std::string_view key) const;

  // -- lookup by full key (report-builder paths; not hot) -------------------
  /// Index of name+labels, or npos.
  std::size_t find(std::string_view name, const Labels& labels = {}) const;
  std::int64_t counter_value(std::string_view name, const Labels& labels = {}) const;
  double gauge_value(std::string_view name, const Labels& labels = {}) const;
  /// nullptr when absent.
  const TimeSeries* series(std::string_view name, const Labels& labels = {}) const;
  const LatencyHistogram* find_histogram(std::string_view name,
                                         const Labels& labels = {}) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Checkpoint of every instrument's data: counter/gauge values, histogram
  /// contents, and series lengths (series are append-only, so restore is a
  /// truncation). Instruments registered after the capture are dropped by
  /// restore() — handles resolved into them dangle, exactly like handles
  /// into a destroyed registry — while earlier handles stay valid because
  /// cells never move. Probe callbacks are wiring and are left untouched.
  struct Snapshot {
    struct CellState {
      std::int64_t counter = 0;
      double gauge = 0.0;
      std::size_t series_size = 0;
      /// Allocated only for histogram cells.
      std::unique_ptr<LatencyHistogram> hist;
    };
    std::vector<CellState> cells;
    std::int64_t scrapes = 0;
  };

  void capture(Snapshot& out) const;
  void restore(const Snapshot& snap);

  /// Copies every instrument's data — name, labels, kind, values, series,
  /// histograms — into `out` (which must be empty), leaving probe callbacks
  /// behind. merge()/serialize() never evaluate probe callbacks, so merging
  /// or serializing the clone yields the same bytes as the original. This is
  /// how a checkpointed sweep harvests a cell's registry before rolling the
  /// live world back for the next cell.
  void clone_values_into(Registry& out) const;

  /// Merges `other` into this registry: instruments are matched by
  /// name+labels (appended in other's registration order when absent here).
  /// Every value-bearing field is additive — counters and gauges sum,
  /// histograms merge, series align-and-sum (TimeSeries::merge_sum) — so
  /// merging per-cell sweep registries in cell order yields bytes that are
  /// independent of the thread count that ran the cells. Probe callbacks do
  /// not survive a merge (a merged registry is a data artifact, not a live
  /// one); probe cells keep their last sampled value as a gauge.
  void merge(const Registry& other);

  /// Canonical byte-exact text form: one block per instrument in
  /// registration order, doubles rendered as raw IEEE-754 bit patterns so
  /// equal serializations imply bit-identical registries. This is the
  /// determinism oracle for parallel sweeps, not a human-facing export
  /// (use the Prometheus/JSONL exporters for those).
  void serialize(std::ostream& out) const;

 private:
  struct Cell {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    std::int64_t counter = 0;
    double gauge = 0.0;
    std::function<double()> probe_fn;
    std::unique_ptr<LatencyHistogram> hist;
    TimeSeries series;
  };

  Cell& intern(std::string_view name, Labels labels, MetricKind kind);
  static std::string key_of(std::string_view name, const Labels& labels);

  /// Deque: growth never relocates a cell, so handles stay valid for the
  /// registry's lifetime.
  std::deque<Cell> cells_;
  /// name+labels -> index; registration/lookup only, never on a hot path.
  std::map<std::string, std::size_t, std::less<>> index_;
  std::int64_t scrapes_ = 0;
};

}  // namespace memca::metrics
