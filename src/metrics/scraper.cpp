#include "metrics/scraper.h"

#include "common/check.h"

namespace memca::metrics {

Scraper::Scraper(Simulator& sim, Registry& registry, ScraperConfig config)
    : sim_(sim), registry_(registry), config_(config) {
  MEMCA_CHECK_MSG(config_.resolution > 0, "scrape resolution must be positive");
}

void Scraper::start() {
  MEMCA_CHECK_MSG(task_ == nullptr, "scraper already started");
  task_ = std::make_unique<PeriodicTask>(sim_, config_.resolution,
                                         [this] { registry_.scrape(sim_.now()); });
}

void Scraper::stop() { task_.reset(); }

}  // namespace memca::metrics
