#include "metrics/exporters.h"

#include <ostream>
#include <set>
#include <string>

namespace memca::metrics {

namespace {

void put_labels(std::ostream& out, const Labels& labels, const char* extra_key = nullptr,
                const char* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << k << "=\"" << v << '"';
  }
  if (extra_key != nullptr) {
    if (!first) out << ',';
    out << extra_key << "=\"" << extra_value << '"';
  }
  out << '}';
}

/// Prometheus type for the # TYPE line (probes expose as gauges, histograms
/// as summaries).
const char* prom_type(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
    case MetricKind::kProbe:
      return "gauge";
    case MetricKind::kHistogram:
      return "summary";
  }
  return "untyped";
}

void put_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
  out << '"';
}

}  // namespace

void write_prometheus(std::ostream& out, const Registry& registry) {
  std::set<std::string> typed;  // one # TYPE line per family
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const std::string& name = registry.name(i);
    if (typed.insert(name).second) {
      out << "# TYPE " << name << ' ' << prom_type(registry.kind(i)) << '\n';
    }
    switch (registry.kind(i)) {
      case MetricKind::kCounter:
        out << name;
        put_labels(out, registry.labels(i));
        out << ' ' << registry.counter_at(i) << '\n';
        break;
      case MetricKind::kGauge:
      case MetricKind::kProbe:
        out << name;
        put_labels(out, registry.labels(i));
        out << ' ' << registry.gauge_at(i) << '\n';
        break;
      case MetricKind::kHistogram: {
        const LatencyHistogram* hist = registry.histogram_at(i);
        if (hist == nullptr) break;
        static constexpr std::pair<double, const char*> kQuantiles[] = {
            {0.5, "0.5"}, {0.95, "0.95"}, {0.98, "0.98"}, {0.99, "0.99"}};
        for (const auto& [q, text] : kQuantiles) {
          out << name;
          put_labels(out, registry.labels(i), "quantile", text);
          out << ' ' << hist->quantile(q) << '\n';
        }
        out << name << "_sum";
        put_labels(out, registry.labels(i));
        out << ' ' << hist->mean() * static_cast<double>(hist->count()) << '\n';
        out << name << "_count";
        put_labels(out, registry.labels(i));
        out << ' ' << hist->count() << '\n';
        break;
      }
    }
  }
}

void write_jsonl(std::ostream& out, const Registry& registry) {
  for (std::size_t i = 0; i < registry.size(); ++i) {
    out << "{\"name\":";
    put_json_string(out, registry.name(i));
    out << ",\"labels\":{";
    bool first = true;
    for (const auto& [k, v] : registry.labels(i)) {
      if (!first) out << ',';
      first = false;
      put_json_string(out, k);
      out << ':';
      put_json_string(out, v);
    }
    out << "},\"kind\":\"" << to_string(registry.kind(i)) << '"';
    switch (registry.kind(i)) {
      case MetricKind::kCounter:
        out << ",\"value\":" << registry.counter_at(i);
        break;
      case MetricKind::kGauge:
      case MetricKind::kProbe:
        out << ",\"value\":" << registry.gauge_at(i);
        break;
      case MetricKind::kHistogram: {
        const LatencyHistogram* hist = registry.histogram_at(i);
        if (hist != nullptr) {
          out << ",\"count\":" << hist->count() << ",\"mean\":" << hist->mean()
              << ",\"p50\":" << hist->quantile(0.5) << ",\"p95\":" << hist->quantile(0.95)
              << ",\"p99\":" << hist->quantile(0.99) << ",\"max\":" << hist->max();
        }
        break;
      }
    }
    const TimeSeries& series = registry.series_at(i);
    if (!series.empty()) {
      out << ",\"samples\":[";
      bool first_sample = true;
      for (const Sample& s : series.samples()) {
        if (!first_sample) out << ',';
        first_sample = false;
        out << '[' << s.time << ',' << s.value << ']';
      }
      out << ']';
    }
    out << "}\n";
  }
}

}  // namespace memca::metrics
