// Registry exporters: Prometheus text exposition and JSONL time series.
//
//  * write_prometheus — the final snapshot in Prometheus 0.0.4 text format
//    (`# TYPE` per family; histograms as summaries with quantile labels),
//    so a run's end state drops straight into promtool / Grafana tooling.
//  * write_jsonl — one JSON object per line per instrument, carrying the
//    full scraped series (time in µs). Machine-side of the run report:
//    `jq` / pandas-friendly, append-safe across runs.
#pragma once

#include <iosfwd>

#include "metrics/registry.h"

namespace memca::metrics {

/// Prometheus text format. Counters/gauges/probes emit their final value;
/// histograms emit `<name>{quantile=...}` plus `_sum`/`_count`.
void write_prometheus(std::ostream& out, const Registry& registry);

/// One line per instrument:
/// {"name":...,"labels":{...},"kind":...,"value":...,"samples":[[t_us,v],...]}.
void write_jsonl(std::ostream& out, const Registry& registry);

}  // namespace memca::metrics
