// RunReport: one machine-readable record summarizing a run end-to-end.
//
// Built from a Registry alone (plus scenario name and optional wall-clock
// timings supplied by the harness), so anything the report claims is
// backed by scraped data — including the paper's Fig. 10 blind-spot
// statement: the same utilization series shows transient saturation at
// native (50 ms) resolution while its 1 s and 1 min resamples stay under
// the auto-scaling threshold. Writable as JSON (BENCH_*-style perf record)
// and as markdown (human-facing run summary).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/time.h"
#include "metrics/registry.h"

namespace memca::metrics {

struct TierReport {
  std::string name;
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  /// Utilization statistics of the scraped series, in [0, 1]: mean and max
  /// at native scrape resolution, plus the same series resampled to 1 s and
  /// 1 min windows (what coarse monitors would have seen).
  double util_mean = 0.0;
  double util_max_native = 0.0;
  double util_max_1s = 0.0;
  double util_max_1min = 0.0;
  /// 1 s windows above the auto-scaling threshold, and the longest run of
  /// consecutive such windows — a CloudWatch-style alarm fires only on
  /// >= 2 consecutive breaches, so isolated excursions keep it silent.
  std::int64_t util_1s_windows_above = 0;
  std::int64_t util_1s_max_consecutive_above = 0;
  double queue_mean = 0.0;
  double queue_max = 0.0;
  /// Streaming flight-recorder residence sketch quantiles, µs (0 when the
  /// flight recorder was off).
  double residence_sketch_p95_us = 0.0;
  double residence_sketch_p99_us = 0.0;
};

struct RunReport {
  std::string scenario;
  double sim_seconds = 0.0;
  /// Wall-clock run time (0 when not measured, e.g. merged sweep reports).
  double wall_seconds = 0.0;
  SimTime scrape_resolution = 0;
  std::int64_t scrapes = 0;

  // Engine self-profile (the BENCH-compatible perf record).
  std::int64_t events_executed = 0;
  double events_per_wall_sec = 0.0;
  double sim_speedup = 0.0;  ///< simulated seconds per wall second
  std::int64_t pool_slots = 0;
  std::int64_t pending_high_water = 0;

  // Request flow.
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t dropped = 0;
  std::int64_t retransmitted = 0;
  std::int64_t failed = 0;

  // Client latency quantiles, µs.
  std::int64_t latency_count = 0;
  double latency_mean_us = 0.0;
  SimTime latency_p50 = 0, latency_p95 = 0, latency_p98 = 0, latency_p99 = 0;
  SimTime latency_max = 0;

  // Attack telemetry.
  std::int64_t bursts = 0;
  double duty_cycle = 0.0;  ///< attack ON time / sim time
  /// Dips of the capacity multiplier below 1.0 in the scraped series
  /// (entries into a degraded window) and the deepest value seen.
  std::int64_t capacity_dips = 0;
  double min_capacity_multiplier = 1.0;

  // Flight-recorder forensics (all zero when the flight recorder was off).
  // The sketch quantiles come from the streaming P²-style estimators, so the
  // windowed tail statistics are available without retaining the full
  // client-latency vector the histogram above needs.
  bool flightrec = false;
  std::int64_t incidents = 0;
  std::int64_t incident_affected_requests = 0;
  double sketch_p50_us = 0.0;
  double sketch_p90_us = 0.0;
  double sketch_p95_us = 0.0;
  double sketch_p99_us = 0.0;
  double sketch_p999_us = 0.0;

  std::int64_t log_warnings = 0;
  std::int64_t log_errors = 0;

  std::vector<TierReport> tiers;
};

struct RunReportOptions {
  std::string scenario;
  /// Wall-clock seconds the run took (enables events/sec and speedup).
  double wall_seconds = 0.0;
  /// Native resolution of the scraped series (for the record; the series
  /// themselves carry their own timestamps).
  SimTime scrape_resolution = 0;
  /// Auto-scaling utilization threshold the 1 s breach statistics use
  /// (the paper's 85% average-CPU trigger).
  double autoscale_threshold = 0.85;
};

/// Builds the report purely from registry contents (canonical names, see
/// metrics/names.h). Absent instruments leave their fields zeroed.
RunReport build_run_report(const Registry& registry, const RunReportOptions& options);

/// Writes the report as a single JSON object.
void write_json(std::ostream& out, const RunReport& report);
/// Writes the report as a human-facing markdown summary.
void write_markdown(std::ostream& out, const RunReport& report);

}  // namespace memca::metrics
