#include "metrics/run_report.h"

#include <algorithm>
#include <ostream>

#include "metrics/names.h"

namespace memca::metrics {

namespace {

double series_min(const TimeSeries& series, double fallback) {
  if (series.empty()) return fallback;
  double m = series.samples().front().value;
  for (const Sample& s : series.samples()) m = std::min(m, s.value);
  return m;
}

/// Entries into a sub-1.0 window: a sample < 1 whose predecessor (or start
/// of series) was >= 1.
std::int64_t count_dips(const TimeSeries& series) {
  std::int64_t dips = 0;
  double prev = 1.0;
  for (const Sample& s : series.samples()) {
    if (s.value < 1.0 && prev >= 1.0) ++dips;
    prev = s.value;
  }
  return dips;
}

}  // namespace

RunReport build_run_report(const Registry& registry, const RunReportOptions& options) {
  RunReport report;
  report.scenario = options.scenario;
  report.wall_seconds = options.wall_seconds;
  report.scrape_resolution = options.scrape_resolution;
  report.scrapes = registry.scrapes();

  const SimTime sim_us = registry.counter_value(names::kSimTimeUs);
  report.sim_seconds = to_seconds(sim_us);

  report.events_executed = registry.counter_value(names::kEngineEventsTotal);
  report.pool_slots = registry.counter_value(names::kEnginePoolSlots);
  report.pending_high_water = registry.counter_value(names::kEnginePendingHighWater);
  if (options.wall_seconds > 0.0) {
    report.events_per_wall_sec =
        static_cast<double>(report.events_executed) / options.wall_seconds;
    report.sim_speedup = report.sim_seconds / options.wall_seconds;
  }

  report.submitted = registry.counter_value(names::kRequestsTotal, {{"event", "submitted"}});
  report.completed = registry.counter_value(names::kRequestsTotal, {{"event", "completed"}});
  report.dropped = registry.counter_value(names::kRequestsTotal, {{"event", "dropped"}});
  report.retransmitted =
      registry.counter_value(names::kRequestsTotal, {{"event", "retransmitted"}});
  report.failed = registry.counter_value(names::kRequestsTotal, {{"event", "failed"}});

  if (const LatencyHistogram* rt = registry.find_histogram(names::kClientResponseTimeUs)) {
    report.latency_count = rt->count();
    report.latency_mean_us = rt->mean();
    report.latency_p50 = rt->quantile(0.50);
    report.latency_p95 = rt->quantile(0.95);
    report.latency_p98 = rt->quantile(0.98);
    report.latency_p99 = rt->quantile(0.99);
    report.latency_max = rt->max();
  }

  report.bursts = registry.counter_value(names::kAttackBurstsTotal);
  const std::int64_t on_us = registry.counter_value(names::kAttackOnTimeUs);
  if (sim_us > 0) report.duty_cycle = static_cast<double>(on_us) / static_cast<double>(sim_us);
  if (const TimeSeries* cap = registry.series(names::kCapacityMultiplier)) {
    report.capacity_dips = count_dips(*cap);
    report.min_capacity_multiplier = series_min(*cap, 1.0);
  }

  // Flight-recorder section: present iff the streaming client-latency sketch
  // gauges were registered (config.flightrec runs).
  if (!registry.family(names::kClientLatencySketchUs).empty()) {
    report.flightrec = true;
    report.incidents = registry.counter_value(names::kFlightrecIncidentsTotal);
    report.incident_affected_requests =
        registry.counter_value(names::kFlightrecAffectedTotal);
    auto sketch_q = [&](const char* q) {
      return registry.gauge_value(names::kClientLatencySketchUs, {{"q", q}});
    };
    report.sketch_p50_us = sketch_q("p50");
    report.sketch_p90_us = sketch_q("p90");
    report.sketch_p95_us = sketch_q("p95");
    report.sketch_p99_us = sketch_q("p99");
    report.sketch_p999_us = sketch_q("p999");
  }

  report.log_warnings =
      registry.counter_value(names::kLogMessagesTotal, {{"level", "warn"}});
  report.log_errors = registry.counter_value(names::kLogMessagesTotal, {{"level", "error"}});

  // One TierReport per utilization-series tier, registration (= topology)
  // order; counters and queue series join on the tier label.
  for (std::size_t i : registry.family(names::kTierUtilization)) {
    TierReport tier;
    tier.name = registry.label_value(i, "tier");
    const Labels tier_label = {{"tier", tier.name}};
    auto event_count = [&](const char* event) {
      return registry.counter_value(names::kTierRequestsTotal,
                                    {{"tier", tier.name}, {"event", event}});
    };
    tier.offered = event_count("offered");
    tier.admitted = event_count("admitted");
    tier.rejected = event_count("rejected");
    tier.completed = event_count("completed");
    const TimeSeries& util = registry.series_at(i);
    tier.util_mean = util.mean();
    tier.util_max_native = util.max();
    const TimeSeries one_second = util.resample_mean(sec(std::int64_t{1}));
    tier.util_max_1s = one_second.max();
    tier.util_max_1min = util.resample_mean(kMinute).max();
    std::int64_t run = 0;
    for (const Sample& s : one_second.samples()) {
      if (s.value > options.autoscale_threshold) {
        ++tier.util_1s_windows_above;
        ++run;
        tier.util_1s_max_consecutive_above =
            std::max(tier.util_1s_max_consecutive_above, run);
      } else {
        run = 0;
      }
    }
    if (const TimeSeries* queue = registry.series(names::kTierQueueLength, tier_label)) {
      tier.queue_mean = queue->mean();
      tier.queue_max = queue->max();
    }
    if (report.flightrec) {
      tier.residence_sketch_p95_us = registry.gauge_value(
          names::kTierResidenceSketchUs, {{"tier", tier.name}, {"q", "p95"}});
      tier.residence_sketch_p99_us = registry.gauge_value(
          names::kTierResidenceSketchUs, {{"tier", tier.name}, {"q", "p99"}});
    }
    report.tiers.push_back(std::move(tier));
  }
  return report;
}

namespace {

void put_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
  out << '"';
}

}  // namespace

void write_json(std::ostream& out, const RunReport& r) {
  out << "{\n  \"scenario\": ";
  put_string(out, r.scenario);
  out << ",\n  \"sim_seconds\": " << r.sim_seconds
      << ",\n  \"wall_seconds\": " << r.wall_seconds
      << ",\n  \"scrape_resolution_us\": " << r.scrape_resolution
      << ",\n  \"scrapes\": " << r.scrapes;
  out << ",\n  \"engine\": {\"events_executed\": " << r.events_executed
      << ", \"events_per_wall_sec\": " << r.events_per_wall_sec
      << ", \"sim_speedup\": " << r.sim_speedup << ", \"pool_slots\": " << r.pool_slots
      << ", \"pending_high_water\": " << r.pending_high_water << "}";
  out << ",\n  \"requests\": {\"submitted\": " << r.submitted
      << ", \"completed\": " << r.completed << ", \"dropped\": " << r.dropped
      << ", \"retransmitted\": " << r.retransmitted << ", \"failed\": " << r.failed << "}";
  out << ",\n  \"latency_us\": {\"count\": " << r.latency_count
      << ", \"mean\": " << r.latency_mean_us << ", \"p50\": " << r.latency_p50
      << ", \"p95\": " << r.latency_p95 << ", \"p98\": " << r.latency_p98
      << ", \"p99\": " << r.latency_p99 << ", \"max\": " << r.latency_max << "}";
  out << ",\n  \"attack\": {\"bursts\": " << r.bursts << ", \"duty_cycle\": " << r.duty_cycle
      << ", \"capacity_dips\": " << r.capacity_dips
      << ", \"min_capacity_multiplier\": " << r.min_capacity_multiplier << "}";
  if (r.flightrec) {
    out << ",\n  \"flightrec\": {\"incidents\": " << r.incidents
        << ", \"affected_requests\": " << r.incident_affected_requests
        << ", \"sketch_p50_us\": " << r.sketch_p50_us
        << ", \"sketch_p90_us\": " << r.sketch_p90_us
        << ", \"sketch_p95_us\": " << r.sketch_p95_us
        << ", \"sketch_p99_us\": " << r.sketch_p99_us
        << ", \"sketch_p999_us\": " << r.sketch_p999_us << "}";
  }
  out << ",\n  \"log\": {\"warnings\": " << r.log_warnings << ", \"errors\": " << r.log_errors
      << "}";
  out << ",\n  \"tiers\": [";
  for (std::size_t i = 0; i < r.tiers.size(); ++i) {
    const TierReport& t = r.tiers[i];
    if (i > 0) out << ',';
    out << "\n    {\"name\": ";
    put_string(out, t.name);
    out << ", \"offered\": " << t.offered << ", \"admitted\": " << t.admitted
        << ", \"rejected\": " << t.rejected << ", \"completed\": " << t.completed
        << ", \"util_mean\": " << t.util_mean << ", \"util_max_native\": " << t.util_max_native
        << ", \"util_max_1s\": " << t.util_max_1s << ", \"util_max_1min\": " << t.util_max_1min
        << ", \"util_1s_windows_above\": " << t.util_1s_windows_above
        << ", \"util_1s_max_consecutive_above\": " << t.util_1s_max_consecutive_above
        << ", \"queue_mean\": " << t.queue_mean << ", \"queue_max\": " << t.queue_max << "}";
  }
  out << "\n  ]\n}\n";
}

void write_markdown(std::ostream& out, const RunReport& r) {
  out << "# Run report — " << r.scenario << "\n\n";
  out << "- simulated: " << r.sim_seconds << " s";
  if (r.wall_seconds > 0.0) {
    out << " in " << r.wall_seconds << " s wall (" << r.sim_speedup << "x real time, "
        << r.events_per_wall_sec << " events/s)";
  }
  out << "\n- engine: " << r.events_executed << " events, pool " << r.pool_slots
      << " slots, queue depth high-water " << r.pending_high_water << "\n";
  out << "- requests: " << r.submitted << " submitted, " << r.completed << " completed, "
      << r.dropped << " dropped, " << r.retransmitted << " retransmitted, " << r.failed
      << " failed\n";
  out << "- client latency (ms): p50 " << to_millis(r.latency_p50) << ", p95 "
      << to_millis(r.latency_p95) << ", p98 " << to_millis(r.latency_p98) << ", p99 "
      << to_millis(r.latency_p99) << ", max " << to_millis(r.latency_max) << "\n";
  if (r.bursts > 0 || r.capacity_dips > 0) {
    out << "- attack: " << r.bursts << " bursts, duty cycle " << r.duty_cycle * 100.0
        << "%, " << r.capacity_dips << " capacity dips (min multiplier "
        << r.min_capacity_multiplier << ")\n";
  }
  if (r.flightrec) {
    out << "- flight recorder: " << r.incidents << " incidents ("
        << r.incident_affected_requests << " VLRT requests), sketch latency (ms): p50 "
        << r.sketch_p50_us / 1000.0 << ", p95 " << r.sketch_p95_us / 1000.0 << ", p99 "
        << r.sketch_p99_us / 1000.0 << ", p99.9 " << r.sketch_p999_us / 1000.0 << "\n";
  }
  out << "- log: " << r.log_warnings << " warnings, " << r.log_errors << " errors\n";
  if (!r.tiers.empty()) {
    out << "\n| tier | admitted | rejected | util mean | util max ("
        << to_millis(r.scrape_resolution) << " ms) | util max (1 s) | util max (1 min) | "
           "queue max |\n";
    out << "|------|----------|----------|-----------|----------------|----------------|"
           "-----------------|-----------|\n";
    for (const TierReport& t : r.tiers) {
      out << "| " << t.name << " | " << t.admitted << " | " << t.rejected << " | "
          << t.util_mean * 100.0 << "% | " << t.util_max_native * 100.0 << "% | "
          << t.util_max_1s * 100.0 << "% | " << t.util_max_1min * 100.0 << "% | "
          << t.queue_max << " |\n";
    }
  }
}

}  // namespace memca::metrics
