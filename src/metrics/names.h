// Canonical instrument names for the MemCA telemetry plane.
//
// Everything the testbed registers and the run-report builder reads is named
// here, so the producer (RubbosTestbed / AttackLab wiring) and the consumer
// (build_run_report) cannot drift apart. Follows Prometheus conventions:
// `_total` suffix on counters, base units in the name (`_us`).
#pragma once

#include <string_view>

namespace memca::metrics::names {

// -- client/workload layer (counters + one latency histogram) --------------
/// Labeled {event=submitted|completed|dropped|retransmitted|failed}:
/// attempts sent (incl. retransmissions), completions, front-tier drops,
/// retransmissions scheduled, requests abandoned after max_retries.
inline constexpr std::string_view kRequestsTotal = "memca_requests_total";
/// End-to-end client response time distribution (post-warmup), µs.
inline constexpr std::string_view kClientResponseTimeUs = "memca_client_response_time_us";

// -- queueing layer (per-tier counters + scraped series) -------------------
/// Labeled {tier=<name>, event=offered|admitted|rejected|completed}.
inline constexpr std::string_view kTierRequestsTotal = "memca_tier_requests_total";
/// Labeled {tier=<name>}: requests resident in the tier (thread occupancy).
inline constexpr std::string_view kTierQueueLength = "memca_tier_queue_length";
/// Labeled {tier=<name>}: worker utilization in [0, 1] over the last scrape
/// window (busy-time integral differenced at scrape resolution).
inline constexpr std::string_view kTierUtilization = "memca_tier_utilization";

// -- OLTP lock table (registered when the bottleneck tier is OLTP) ---------
/// Labeled {event=commits|aborts|lock_waits}: committed transactions,
/// NO_WAIT aborts (each is followed by a backoff + retry), and lock
/// acquisitions that had to wait or abort at least once.
inline constexpr std::string_view kOltpTxnTotal = "memca_oltp_txn_total";
/// Per-transaction stall time between first lock conflict and the final
/// grant, µs (one sample per transaction that ever waited).
inline constexpr std::string_view kOltpLockWaitUs = "memca_oltp_lock_wait_us";
/// Lock hold span per committed transaction: first grant → release, µs.
/// Stretches under a capacity dip — the convoy precursor.
inline constexpr std::string_view kOltpLockHoldUs = "memca_oltp_lock_hold_us";
/// Transactions currently parked in a record-lock waiter queue (probe).
inline constexpr std::string_view kOltpLockWaiters = "memca_oltp_lock_waiters";

// -- cloud/attack layer ----------------------------------------------------
/// Capacity multiplier D of the coupled target tier, in (0, 1].
inline constexpr std::string_view kCapacityMultiplier = "memca_capacity_multiplier";
/// 1 while the attack kernel is executing, else 0.
inline constexpr std::string_view kAttackOn = "memca_attack_on";
/// Bursts fired by the ON-OFF scheduler (synced at finalize).
inline constexpr std::string_view kAttackBurstsTotal = "memca_attack_bursts_total";
/// Total attack-kernel ON time, µs (synced at finalize).
inline constexpr std::string_view kAttackOnTimeUs = "memca_attack_on_time_us";

// -- flight recorder (memca_flightrec, synced at finalize) -----------------
/// Labeled {q=p50|p90|p95|p99|p999}: client latency quantile estimates from
/// the streaming P² sketch, µs. The bounded-memory replacement for the full
/// client-latency histogram the cohort rewrite will retire.
inline constexpr std::string_view kClientLatencySketchUs = "memca_client_latency_sketch_us";
/// Labeled {tier=<name>, q=...}: per-tier residence-time sketch quantiles, µs.
inline constexpr std::string_view kTierResidenceSketchUs = "memca_tier_residence_sketch_us";
/// Incidents the detector emitted (stored + overflowed past max_incidents).
inline constexpr std::string_view kFlightrecIncidentsTotal = "memca_flightrec_incidents_total";
/// Requests whose completion crossed the VLRT threshold inside incidents.
inline constexpr std::string_view kFlightrecAffectedTotal = "memca_flightrec_affected_requests_total";
/// Labeled {component=ring_bytes|ring_events|sketch_samples|pinned_events}:
/// always-on observability self-profile — the volume the flight recorder
/// processed this run. Multiply by the per-op costs in BENCH_PR8.json
/// (BM_FlightRecorder / BM_QuantileSketch) for the overhead estimate; the
/// values themselves are deterministic, so merged registry bytes stay a
/// sweep-thread-invariance oracle.
inline constexpr std::string_view kEngineSelfprofile = "memca_engine_selfprofile";

// -- engine self-profile (synced at finalize) ------------------------------
inline constexpr std::string_view kEngineEventsTotal = "memca_engine_events_total";
inline constexpr std::string_view kEnginePoolSlots = "memca_engine_pool_slots";
inline constexpr std::string_view kEnginePendingHighWater = "memca_engine_pending_high_water";
/// Simulated clock at finalize, µs (duty cycles and rates divide by this).
inline constexpr std::string_view kSimTimeUs = "memca_sim_time_us";

// -- logging ---------------------------------------------------------------
/// Labeled {level=warn|error}: lines this run emitted past the level filter.
inline constexpr std::string_view kLogMessagesTotal = "memca_log_messages_total";

}  // namespace memca::metrics::names
