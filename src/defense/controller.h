// Staged defense controller — the "significant future research" direction
// the paper closes with, built on this repo's substrate.
//
// Pipeline (modelled on how a provider could actually deploy it):
//
//   1. kMonitoring  — cheap, always-on: 1-second utilization samples of the
//      protected tier feed a streaming CUSUM. MemCA cannot dodge this
//      without giving up damage: the attack *works* by stealing average
//      capacity, and that mean shift is exactly what CUSUM accumulates.
//   2. kAttributing — after an alarm, escalate to fine-grained (50 ms)
//      host-level sampling of every co-located VM's memory activity, and
//      score each VM's burstiness. ON-OFF attackers score high; steady
//      neighbors score low. This is the expensive stage, but it only runs
//      after suspicion — resolving the paper's "fine monitoring costs too
//      much to run everywhere" objection.
//   3. kMitigated   — apply hypervisor memory isolation (Heracles-style
//      lock-duty/bandwidth caps) to the top suspect. The victim tier's
//      capacity recovers within one burst interval.
//
// The controller records its full timeline (alarm, attribution, mitigation,
// suspect) so benches can report time-to-detect and time-to-mitigate, and
// whether an innocent neighbor was collaterally isolated.
#pragma once

#include <memory>
#include <vector>

#include "cloud/host.h"
#include "defense/online_detector.h"
#include "queueing/tier.h"
#include "sim/simulator.h"

namespace memca::defense {

struct DefenseConfig {
  /// Always-on utilization sampling period (stage 1).
  SimTime coarse_period = sec(std::int64_t{1});
  OnlineCusumConfig cusum;
  /// Fine host-level sampling period while attributing (stage 2).
  SimTime attribution_period = msec(50);
  /// How long to observe co-located VMs before accusing one.
  SimTime attribution_window = sec(std::int64_t{10});
  /// Minimum burstiness score to accuse a VM (catches ON-OFF attackers).
  double suspect_score_threshold = 0.5;
  /// Minimum sustained lock-weighted activity level to accuse a VM
  /// (catches constant brute-force attackers that are not bursty at all).
  /// The activity signal is 10 x lock_duty + demand_gbps, so a sustained
  /// locker scores ~9.5 while an ordinary streaming neighbor stays well
  /// below this.
  double suspect_level_threshold = 6.0;
  /// Isolation caps applied to the suspect (stage 3).
  double isolation_max_lock_duty = 0.05;
  double isolation_max_demand_gbps = 2.0;
};

enum class DefenseStage { kMonitoring, kAttributing, kMitigated };

const char* to_string(DefenseStage stage);

struct DefenseTimeline {
  SimTime started = 0;
  SimTime alarm = -1;        // CUSUM fired
  SimTime mitigation = -1;   // isolation applied
  cloud::VmId suspect = cloud::kInvalidVm;
  /// Highest burst score at accusation time.
  double suspect_score = 0.0;
};

class DefenseController {
 public:
  /// Protects `victim_tier` (whose VM is `victim_vm` on `host`).
  DefenseController(Simulator& sim, queueing::TierServer& victim_tier, cloud::Host& host,
                    cloud::VmId victim_vm, DefenseConfig config = {});
  DefenseController(const DefenseController&) = delete;
  DefenseController& operator=(const DefenseController&) = delete;

  void start();
  void stop();

  DefenseStage stage() const { return stage_; }
  const DefenseTimeline& timeline() const { return timeline_; }
  /// Time from attack-visible alarm to applied mitigation (-1 if n/a).
  SimTime time_to_mitigate() const;
  /// Fine-grained samples taken (the cost of stage 2).
  std::int64_t attribution_samples() const { return attribution_samples_; }

 private:
  void coarse_tick();
  void enter_attribution();
  void attribution_tick();
  void conclude_attribution();
  void mitigate(cloud::VmId suspect, double score);

  Simulator& sim_;
  queueing::TierServer& tier_;
  cloud::Host& host_;
  cloud::VmId victim_vm_;
  DefenseConfig config_;

  DefenseStage stage_ = DefenseStage::kMonitoring;
  DefenseTimeline timeline_;
  OnlineCusum cusum_;
  double last_integral_ = 0.0;
  std::unique_ptr<PeriodicTask> coarse_task_;
  std::unique_ptr<PeriodicTask> fine_task_;
  EventHandle attribution_deadline_;
  std::vector<OnlineBurstScore> vm_scores_;
  std::int64_t attribution_samples_ = 0;
};

}  // namespace memca::defense
