#include "defense/online_detector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace memca::defense {

OnlineCusum::OnlineCusum(OnlineCusumConfig config) : config_(config) {
  MEMCA_CHECK_MSG(config_.baseline_samples >= 2, "need at least two baseline samples");
  MEMCA_CHECK_MSG(config_.threshold > 0.0, "threshold must be positive");
}

bool OnlineCusum::update(double value) {
  ++seen_;
  if (seen_ <= config_.baseline_samples) {
    baseline_sum_ += value;
    baseline_ = baseline_sum_ / static_cast<double>(seen_);
    return false;
  }
  statistic_ = std::max(0.0, statistic_ + value - baseline_ - config_.allowance);
  if (!alarmed_ && statistic_ > config_.threshold) {
    alarmed_ = true;
    return true;
  }
  return alarmed_;
}

void OnlineCusum::reset() {
  seen_ = 0;
  baseline_sum_ = 0.0;
  baseline_ = 0.0;
  statistic_ = 0.0;
  alarmed_ = false;
}

OnlineBurstScore::OnlineBurstScore(OnlineBurstScoreConfig config) : config_(config) {
  MEMCA_CHECK_MSG(config_.alpha > 0.0 && config_.alpha <= 1.0, "alpha must be in (0, 1]");
}

void OnlineBurstScore::update(double value) {
  ++seen_;
  if (seen_ == 1) {
    level_ = value;
    deviation_ = 0.0;
    return;
  }
  deviation_ = (1.0 - config_.alpha) * deviation_ + config_.alpha * std::abs(value - level_);
  level_ = (1.0 - config_.alpha) * level_ + config_.alpha * value;
}

double OnlineBurstScore::score() const {
  if (seen_ < 2) return 0.0;
  const double denom = std::max(level_, 1e-9);
  return deviation_ / denom;
}

}  // namespace memca::defense
