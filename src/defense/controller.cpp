#include "defense/controller.h"

#include <algorithm>

#include "common/check.h"

namespace memca::defense {

const char* to_string(DefenseStage stage) {
  switch (stage) {
    case DefenseStage::kMonitoring:
      return "monitoring";
    case DefenseStage::kAttributing:
      return "attributing";
    case DefenseStage::kMitigated:
      return "mitigated";
  }
  return "?";
}

DefenseController::DefenseController(Simulator& sim, queueing::TierServer& victim_tier,
                                     cloud::Host& host, cloud::VmId victim_vm,
                                     DefenseConfig config)
    : sim_(sim),
      tier_(victim_tier),
      host_(host),
      victim_vm_(victim_vm),
      config_(config),
      cusum_(config.cusum) {
  MEMCA_CHECK_MSG(config_.coarse_period > 0, "coarse period must be positive");
  MEMCA_CHECK_MSG(config_.attribution_period > 0, "attribution period must be positive");
  MEMCA_CHECK_MSG(config_.attribution_window >= config_.attribution_period,
                  "attribution window must cover at least one sample");
}

void DefenseController::start() {
  MEMCA_CHECK_MSG(coarse_task_ == nullptr, "defense already started");
  timeline_.started = sim_.now();
  last_integral_ = tier_.busy_worker_time_us();
  coarse_task_ = std::make_unique<PeriodicTask>(sim_, config_.coarse_period,
                                                [this] { coarse_tick(); });
}

void DefenseController::stop() {
  if (coarse_task_) coarse_task_->stop();
  if (fine_task_) fine_task_->stop();
  attribution_deadline_.cancel();
}

SimTime DefenseController::time_to_mitigate() const {
  if (timeline_.alarm < 0 || timeline_.mitigation < 0) return -1;
  return timeline_.mitigation - timeline_.alarm;
}

void DefenseController::coarse_tick() {
  const double integral = tier_.busy_worker_time_us();
  const double delta = integral - last_integral_;
  last_integral_ = integral;
  const double util = std::clamp(
      delta / (static_cast<double>(tier_.workers()) *
               static_cast<double>(config_.coarse_period)),
      0.0, 1.0);
  if (stage_ != DefenseStage::kMonitoring) return;
  if (cusum_.update(util)) {
    timeline_.alarm = sim_.now();
    enter_attribution();
  }
}

void DefenseController::enter_attribution() {
  stage_ = DefenseStage::kAttributing;
  vm_scores_.assign(host_.vm_count(), OnlineBurstScore{});
  fine_task_ = std::make_unique<PeriodicTask>(sim_, config_.attribution_period,
                                              [this] { attribution_tick(); });
  attribution_deadline_ =
      sim_.schedule_in(config_.attribution_window, [this] { conclude_attribution(); });
}

void DefenseController::attribution_tick() {
  // Host-level (hypervisor) visibility: per-VM memory activity. The lock
  // signal is weighted heavily — it is the scarce shared resource.
  for (std::size_t i = 0; i < vm_scores_.size(); ++i) {
    const auto vm = static_cast<cloud::VmId>(i);
    const double activity = 10.0 * host_.lock_duty(vm) + host_.demand(vm);
    vm_scores_[i].update(activity);
    ++attribution_samples_;
  }
}

void DefenseController::conclude_attribution() {
  if (fine_task_) fine_task_->stop();
  cloud::VmId best = cloud::kInvalidVm;
  double best_rank = 0.0;
  for (std::size_t i = 0; i < vm_scores_.size(); ++i) {
    const auto vm = static_cast<cloud::VmId>(i);
    if (vm == victim_vm_) continue;  // never accuse the protected VM
    const double score = vm_scores_[i].score();
    const double level = vm_scores_[i].level();
    const bool eligible = score >= config_.suspect_score_threshold ||
                          level >= config_.suspect_level_threshold;
    if (!eligible) continue;
    // Rank eligible VMs by combined burstiness and sustained pressure.
    const double rank = score + level / config_.suspect_level_threshold;
    if (rank > best_rank) {
      best_rank = rank;
      best = vm;
    }
  }
  if (best != cloud::kInvalidVm) {
    mitigate(best, best_rank);
  } else {
    // Inconclusive: back to cheap monitoring with a fresh baseline (the
    // alarm state is consumed).
    stage_ = DefenseStage::kMonitoring;
    cusum_.reset();
  }
}

void DefenseController::mitigate(cloud::VmId suspect, double score) {
  stage_ = DefenseStage::kMitigated;
  timeline_.mitigation = sim_.now();
  timeline_.suspect = suspect;
  timeline_.suspect_score = score;
  host_.set_memory_isolation(suspect, config_.isolation_max_lock_duty,
                             config_.isolation_max_demand_gbps);
}

}  // namespace memca::defense
