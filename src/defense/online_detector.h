// Streaming (online) detectors for the defense pipeline.
//
// The offline detectors in memca_monitor replay recorded series; a real
// defense has to decide *during* the run, one sample at a time, with
// bounded state. Two streaming detectors:
//
//  * OnlineCusum — learns its baseline from the first N samples, then
//    accumulates one-sided deviations; fires once the statistic crosses
//    the threshold. Resettable (after a mitigation, the baseline changes).
//  * OnlineBurstScore — an exponentially-weighted estimate of how bursty a
//    per-VM activity signal is (mean of |x - ewma|) normalised by its
//    level; used to rank co-located VMs when attributing an alarm to a
//    suspect. An always-on neighbor scores low; an ON-OFF attacker scores
//    high.
#pragma once

#include <cstddef>

#include "common/time.h"

namespace memca::defense {

struct OnlineCusumConfig {
  std::size_t baseline_samples = 30;
  double allowance = 0.05;
  double threshold = 1.0;
};

class OnlineCusum {
 public:
  explicit OnlineCusum(OnlineCusumConfig config = {});

  /// Feeds one sample; returns true on the sample that first crosses the
  /// threshold (subsequent samples keep returning alarmed()).
  bool update(double value);

  bool alarmed() const { return alarmed_; }
  double statistic() const { return statistic_; }
  double baseline() const { return baseline_; }
  bool baseline_ready() const { return seen_ >= config_.baseline_samples; }
  std::size_t samples_seen() const { return seen_; }

  /// Forgets everything (baseline re-learned from upcoming samples).
  void reset();

 private:
  OnlineCusumConfig config_;
  std::size_t seen_ = 0;
  double baseline_sum_ = 0.0;
  double baseline_ = 0.0;
  double statistic_ = 0.0;
  bool alarmed_ = false;
};

struct OnlineBurstScoreConfig {
  /// EWMA smoothing factor for the level estimate.
  double alpha = 0.1;
};

class OnlineBurstScore {
 public:
  explicit OnlineBurstScore(OnlineBurstScoreConfig config = {});

  void update(double value);

  /// Mean absolute deviation around the running level, normalised by the
  /// level (0 for a constant signal; ~1+ for hard ON-OFF patterns).
  double score() const;
  double level() const { return level_; }
  std::size_t samples_seen() const { return seen_; }

 private:
  OnlineBurstScoreConfig config_;
  std::size_t seen_ = 0;
  double level_ = 0.0;
  double deviation_ = 0.0;
};

}  // namespace memca::defense
