// Always-on black-box flight recorder + millibottleneck incident detector.
//
// The paper's production problem in one sentence: coarse monitors average
// millibottlenecks away (Fig. 10), and full tracing is too expensive to
// leave on. The FlightRecorder is the middle path a real operator deploys —
// bounded state, always on, and when something goes wrong it already holds
// the evidence:
//
//   * streaming P² quantile sketches of client latency and per-tier
//     residence times (QuantileSketch — allocation-free, mergeable),
//   * a native-resolution (50 ms) rolling Timeline of queue depths, the
//     capacity multiplier D(t), per-tier drops and the RTO backlog,
//   * the bounded span ring (trace::TraceRecorder in ring mode) the owner
//     wires through the usual trace hooks.
//
// The embedded IncidentDetector watches three signals: a completion
// crossing the VLRT threshold, a tick window with queue-overflow drops, and
// a capacity dip below the dip threshold. Any of them opens an incident
// window (or extends the open one); a VLRT completion additionally *pins*
// the request's span events by copying them out of the ring before wrap
// can evict them — the tail-biased retention that makes a fixed-budget ring
// forensically useful. When the window has been quiet for quiet_close, the
// detector freezes the overlapping timeline frames, replays the pinned
// spans through trace::TailAttributor for the per-phase decomposition, and
// emits a structured Incident (see incident.h).
//
// Everything runs inside the owning cell's deterministic event order (the
// tick is a PeriodicTask), so incidents — like every other sweep output —
// are bit-identical across MEMCA_SWEEP_THREADS, and the whole recorder
// checkpoints/rolls back with the world (mid-incident included).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/time.h"
#include "flightrec/incident.h"
#include "flightrec/quantile_sketch.h"
#include "flightrec/timeline.h"
#include "sim/simulator.h"
#include "trace/attributor.h"
#include "trace/recorder.h"

namespace memca::flightrec {

struct FlightRecorderConfig {
  /// Tick/window resolution (the paper's native 50 ms tooling).
  SimTime resolution = msec(50);
  /// Rolling timeline depth in frames (256 × 50 ms ≈ 12.8 s of history).
  std::size_t timeline_frames = 256;
  /// Completions at or above this RT are very-long-response-time requests.
  SimTime vlrt_threshold = sec(std::int64_t{1});
  /// A capacity multiplier below this counts as a dip episode.
  double dip_threshold = 0.9;
  /// Close the open incident after this much time without any trigger.
  /// Must exceed the attack interval for a burst train to fold into one
  /// incident; 2 s covers the calibrated scenario and one RTO floor.
  SimTime quiet_close = sec(std::int64_t{2});
  /// Tier/station count of the observed system (attribution depth).
  std::size_t depth = 3;
  /// Per-tier residence sketches fold in every 2^shift-th departure.
  /// Residence probes fire on every tier visit — orders of magnitude
  /// hotter than completions — and a 1-in-16 subsample estimates p95/p99
  /// just as well while keeping the always-on recorder inside its ≤5%
  /// budget.
  std::uint32_t residence_decimate_shift = 4;
  /// Client latency sketch decimation (full five-quantile bank, so each
  /// recorded sample costs ~5 P² updates). Every completion still reaches
  /// the VLRT detector — decimation only subsamples the sketch; 1-in-8 of
  /// a multi-minute run leaves thousands of samples behind every reported
  /// quantile, well past the few hundred P² needs to settle.
  std::uint32_t client_decimate_shift = 3;
  /// Pending VLRT pins are flushed into the ring scan every this many
  /// ticks (close always flushes first regardless). Each flush re-reads a
  /// ~1 s ring suffix, so per-tick flushing mostly re-scans cold events;
  /// a few ticks of batching divides that cost without changing the pinned
  /// set — the ring holds tens of seconds of traffic, so nothing is
  /// evicted while a batch waits.
  std::uint32_t pin_flush_period = 8;
  /// Emitted incidents beyond this are counted but not stored.
  std::size_t max_incidents = 64;
  /// Pinned span budget per incident (newest-first; excess is dropped).
  std::size_t max_pinned_events = 65536;
};

class FlightRecorder {
 public:
  FlightRecorder(Simulator& sim, trace::TraceRecorder* ring, FlightRecorderConfig config);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // -- wiring (construction time, not checkpointed) -------------------------
  /// Capacity multiplier D(t) of the target tier.
  void set_capacity_probe(std::function<double()> probe) { capacity_probe_ = std::move(probe); }
  /// Queue depth (waiting + blocked) of tier `tier`.
  void set_queue_depth_probe(std::size_t tier, std::function<int()> probe);
  /// Cumulative rejected-request count of tier `tier`.
  void set_rejected_probe(std::size_t tier, std::function<std::int64_t()> probe);
  /// Retransmissions scheduled but not yet fired (client RTO backlog).
  void set_rto_backlog_probe(std::function<int()> probe) {
    rto_backlog_probe_ = std::move(probe);
  }

  /// Starts the periodic tick; the first frame closes one resolution later.
  void start();
  void stop();
  bool running() const { return task_ != nullptr; }

  // -- hooks ----------------------------------------------------------------
  /// Client completion hook (the testbed adapts the workload observer to
  /// this). Feeds the client latency sketch and, for VLRT completions,
  /// opens/extends the incident window and pins the request's ring spans.
  void on_completion(SimTime now, SimTime first_sent, std::int32_t user, SimTime rt,
                     bool post_warmup);

  /// Closes any open incident at end of run. Call once before reading
  /// incidents(); safe without a preceding start().
  void finalize();

  // -- telemetry ------------------------------------------------------------
  const QuantileSketch& client_latency() const { return client_latency_; }
  /// Residence-time sketch of tier `tier`; the owner hands this pointer to
  /// TierServer::set_residence_sketch.
  QuantileSketch* tier_residence_sketch(std::size_t tier);
  const QuantileSketch& tier_residence(std::size_t tier) const;
  const Timeline& timeline() const { return timeline_; }

  const std::vector<Incident>& incidents() const { return incidents_; }
  /// Incidents observed beyond max_incidents (counted, not stored).
  std::int64_t incidents_dropped() const { return incidents_dropped_; }
  /// Total incidents observed, stored or not.
  std::int64_t incidents_total() const {
    return static_cast<std::int64_t>(incidents_.size()) + incidents_dropped_;
  }
  /// Span events pinned out of the ring over the whole run (post-dedupe).
  std::int64_t pinned_events_total() const { return pinned_events_total_; }
  /// VLRT completions folded into incidents over the whole run.
  std::int64_t affected_requests_total() const { return affected_requests_total_; }

  const FlightRecorderConfig& config() const { return config_; }

  /// One span event pinned out of the ring, keyed by its absolute stream
  /// index (for deterministic re-ordering and dedupe at close).
  struct PinnedEvent {
    std::uint64_t seq = 0;
    trace::TraceEvent event{};
  };

  /// A VLRT completion whose ring spans are still to be pinned. Pins are
  /// batched and flushed once per tick: VLRT completions cluster at RTO
  /// release, so one backward ring scan per tick with a user-indexed
  /// cutoff table replaces one scan per completion at identical pin
  /// semantics (each user keeps its own first_sent cutoff). A tick's
  /// worth of new events (~a hundred) can never wrap a forensically
  /// sized ring, so nothing is evicted before the flush.
  struct PendingPin {
    SimTime first_sent = 0;
    std::int32_t user = -1;
  };

  // -- checkpoint -----------------------------------------------------------
  /// Mid-incident state checkpoints with the world: sketches and timeline
  /// copy aside, closed incidents restore by truncation (append-only), and
  /// the open window — pins included — copy-assigns back into capacity
  /// reserved at construction, so rollback allocates nothing and a replay
  /// re-closes byte-identical incidents.
  struct OpenIncident {
    bool active = false;
    std::int64_t id = 0;
    IncidentTrigger trigger = IncidentTrigger::kVlrtCompletion;
    SimTime window_start = 0;
    SimTime last_activity = 0;
    double dip_depth = 1.0;
    std::int64_t dip_episodes = 0;
    SimTime first_dip_start = 0;
    SimTime last_dip_start = 0;
    std::array<std::int64_t, kTimelineMaxTiers> tier_drops{};
    std::int64_t affected_requests = 0;
    SimTime worst_rt = 0;
    std::vector<PinnedEvent> pinned;
  };

  struct Snapshot {
    std::vector<PendingPin> pending_pins;
    QuantileSketch client;
    std::array<QuantileSketch, kTimelineMaxTiers> tiers;
    Timeline::Snapshot timeline;
    std::size_t incident_count = 0;
    std::int64_t incidents_dropped = 0;
    std::int64_t next_id = 0;
    double last_capacity = 1.0;
    bool in_dip = false;
    std::array<std::int64_t, kTimelineMaxTiers> last_rejected{};
    std::uint32_t vlrt_in_window = 0;
    std::uint32_t tick_seq = 0;
    std::int64_t pinned_events_total = 0;
    std::int64_t affected_requests_total = 0;
    OpenIncident open;
    bool has_task = false;
    PeriodicTask::Snapshot task;
  };

  void capture(Snapshot& out) const;
  void restore(const Snapshot& snap);

 private:
  void tick();
  /// Opens the incident window (or extends the open one) at `now`; the
  /// window is stretched back to cover `span_begin`.
  void note_activity(IncidentTrigger trigger, SimTime span_begin, SimTime now);
  /// Drains pending_pins_ with one backward ring scan: copies each batched
  /// user's span events (from its own first_sent on, resolved through a
  /// user-indexed cutoff table) plus the capacity/burst context marks into
  /// the open incident.
  void flush_pins();
  void close_incident();

  /// Pending-pin batch bound; a full batch flushes inline, so the hot
  /// completion path stays allocation-free.
  static constexpr std::size_t kMaxPendingPins = 1024;

  Simulator& sim_;
  trace::TraceRecorder* ring_;
  FlightRecorderConfig config_;

  QuantileSketch client_latency_;
  std::array<QuantileSketch, kTimelineMaxTiers> tier_residence_{};
  Timeline timeline_;

  std::function<double()> capacity_probe_;
  std::array<std::function<int()>, kTimelineMaxTiers> queue_depth_probes_;
  std::array<std::function<std::int64_t()>, kTimelineMaxTiers> rejected_probes_;
  std::function<int()> rto_backlog_probe_;

  std::unique_ptr<PeriodicTask> task_;

  // Tick-to-tick cursors.
  double last_capacity_ = 1.0;
  bool in_dip_ = false;
  std::array<std::int64_t, kTimelineMaxTiers> last_rejected_{};
  std::uint32_t vlrt_in_window_ = 0;
  /// Ticks since start; drives the pin-flush cadence (checkpointed, so a
  /// replay flushes on the same ticks).
  std::uint32_t tick_seq_ = 0;

  OpenIncident open_;
  /// VLRT completions awaiting their per-tick pin flush (reserved at
  /// construction; see PendingPin).
  std::vector<PendingPin> pending_pins_;
  /// flush_pins() scratch: per-user first_sent cutoffs, grown to the
  /// largest user id seen and re-armed to sentinels after every flush
  /// (all-sentinel between flushes, so it needs no snapshot).
  std::vector<SimTime> user_cutoff_;
  std::vector<Incident> incidents_;
  std::int64_t incidents_dropped_ = 0;
  std::int64_t next_id_ = 0;
  std::int64_t pinned_events_total_ = 0;
  std::int64_t affected_requests_total_ = 0;

  /// Scratch arena the pinned spans are replayed into for attribution;
  /// reused across incidents.
  trace::TraceRecorder scratch_;
};

}  // namespace memca::flightrec
