#include "flightrec/timeline.h"

namespace memca::flightrec {

Timeline::Timeline(std::size_t capacity) {
  std::size_t cap = 2;
  while (cap < capacity) cap <<= 1;
  frames_.resize(cap);
  mask_ = cap - 1;
}

void Timeline::push(const TimelineFrame& frame) {
  frames_[total_ & mask_] = frame;
  ++total_;
}

void Timeline::extract(SimTime from, SimTime to, SimTime resolution,
                       std::vector<TimelineFrame>& out) const {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const TimelineFrame& f = (*this)[i];
    if (f.start + resolution < from) continue;
    if (f.start > to) break;
    out.push_back(f);
  }
}

}  // namespace memca::flightrec
