#include "flightrec/incident.h"

#include <ostream>

namespace memca::flightrec {

const char* to_string(IncidentTrigger trigger) {
  switch (trigger) {
    case IncidentTrigger::kVlrtCompletion:
      return "vlrt-completion";
    case IncidentTrigger::kQueueOverflow:
      return "queue-overflow";
    case IncidentTrigger::kCapacityDip:
      return "capacity-dip";
  }
  return "?";
}

namespace {

void put_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
  out << '"';
}

void put_summary(std::ostream& out, const trace::TailSummary& s) {
  out << "{\"threshold_us\": " << s.threshold << ", \"completed\": " << s.completed
      << ", \"abandoned\": " << s.abandoned << ", \"tail_count\": " << s.tail_count
      << ", \"tail_retrans_dominated\": " << s.tail_retrans_dominated
      << ", \"queue_wait_us\": " << s.queue_wait_us << ", \"lock_wait_us\": " << s.lock_wait_us
      << ", \"service_us\": " << s.service_us << ", \"degraded_us\": " << s.degraded_us
      << ", \"rpc_hold_us\": " << s.rpc_hold_us << ", \"rto_wait_us\": " << s.rto_wait_us
      << ", \"slack_us\": " << s.slack_us << "}";
}

void put_frame(std::ostream& out, const TimelineFrame& f) {
  out << "{\"start_us\": " << f.start << ", \"queue_depth\": [";
  for (std::size_t t = 0; t < kTimelineMaxTiers; ++t) {
    if (t != 0) out << ", ";
    out << f.queue_depth[t];
  }
  out << "], \"tier_drops\": [";
  for (std::size_t t = 0; t < kTimelineMaxTiers; ++t) {
    if (t != 0) out << ", ";
    out << f.tier_drops[t];
  }
  out << "], \"capacity_min\": " << f.capacity_min << ", \"capacity_last\": " << f.capacity_last
      << ", \"rto_backlog\": " << f.rto_backlog
      << ", \"vlrt_completions\": " << f.vlrt_completions << "}";
}

}  // namespace

void write_incidents_json(std::ostream& out, const std::vector<Incident>& incidents,
                          const std::vector<std::string>& tier_names) {
  out << "{\n  \"tiers\": [";
  for (std::size_t t = 0; t < tier_names.size(); ++t) {
    if (t != 0) out << ", ";
    put_string(out, tier_names[t]);
  }
  out << "],\n  \"incident_count\": " << incidents.size() << ",\n  \"incidents\": [";
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    const Incident& inc = incidents[i];
    out << (i == 0 ? "" : ",") << "\n    {\n      \"id\": " << inc.id << ",\n      \"trigger\": ";
    put_string(out, to_string(inc.trigger));
    out << ",\n      \"window_start_us\": " << inc.window_start
        << ",\n      \"window_end_us\": " << inc.window_end
        << ",\n      \"dip_depth\": " << inc.dip_depth
        << ",\n      \"dip_episodes\": " << inc.dip_episodes
        << ",\n      \"burst_interval_estimate_us\": " << inc.burst_interval_estimate
        << ",\n      \"overflowed_tier\": " << inc.overflowed_tier
        << ",\n      \"drop_count\": " << inc.drop_count << ",\n      \"tier_drops\": [";
    for (std::size_t t = 0; t < kTimelineMaxTiers; ++t) {
      if (t != 0) out << ", ";
      out << inc.tier_drops[t];
    }
    out << "],\n      \"retransmissions\": " << inc.retransmissions
        << ",\n      \"affected_requests\": " << inc.affected_requests
        << ",\n      \"worst_rt_us\": " << inc.worst_rt
        << ",\n      \"pinned_events\": " << inc.pinned_events
        << ",\n      \"decomposition\": ";
    put_summary(out, inc.decomposition);
    out << ",\n      \"frames\": [";
    for (std::size_t f = 0; f < inc.frames.size(); ++f) {
      if (f != 0) out << ", ";
      put_frame(out, inc.frames[f]);
    }
    out << "]\n    }";
  }
  out << "\n  ]\n}\n";
}

void write_incident_annotations(std::ostream& out, const std::vector<Incident>& incidents) {
  // Chrome-trace JSON array; ts/dur are microseconds, which SimTime already
  // is. pid 90 keeps the flightrec track sorted after the exporter's client
  // (0) and tier (1..depth) tracks when files are merged.
  constexpr int kPid = 90;
  out << "[\n";
  out << "{\"ph\": \"M\", \"pid\": " << kPid
      << ", \"name\": \"process_name\", \"args\": {\"name\": \"flightrec\"}},\n";
  out << "{\"ph\": \"M\", \"pid\": " << kPid << ", \"tid\": 0"
      << ", \"name\": \"thread_name\", \"args\": {\"name\": \"incidents\"}}";
  for (const Incident& inc : incidents) {
    out << ",\n{\"ph\": \"X\", \"pid\": " << kPid << ", \"tid\": 0, \"ts\": " << inc.window_start
        << ", \"dur\": " << (inc.window_end - inc.window_start) << ", \"name\": \"incident #"
        << inc.id << "\", \"args\": {\"trigger\": \"" << to_string(inc.trigger)
        << "\", \"dip_depth\": " << inc.dip_depth << ", \"drop_count\": " << inc.drop_count
        << ", \"retransmissions\": " << inc.retransmissions
        << ", \"affected_requests\": " << inc.affected_requests
        << ", \"burst_interval_estimate_us\": " << inc.burst_interval_estimate
        << ", \"overflowed_tier\": " << inc.overflowed_tier << "}}";
  }
  out << "\n]\n";
}

}  // namespace memca::flightrec
