#include "flightrec/flight_recorder.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace memca::flightrec {

FlightRecorder::FlightRecorder(Simulator& sim, trace::TraceRecorder* ring,
                               FlightRecorderConfig config)
    : sim_(sim), ring_(ring), config_(config), timeline_(config.timeline_frames) {
  MEMCA_CHECK_MSG(config_.resolution > 0, "tick resolution must be positive");
  MEMCA_CHECK_MSG(config_.depth >= 1 && config_.depth <= kTimelineMaxTiers,
                  "attribution depth must fit the timeline tier slots");
  // Tier residence probes fire on every departure; the tail profile plus
  // decimation keeps them inside the flight-recorder budget.
  for (auto& sketch : tier_residence_) {
    sketch = QuantileSketch(QuantileSketch::Profile::kTail, config_.residence_decimate_shift);
  }
  client_latency_ = QuantileSketch(QuantileSketch::Profile::kFull, config_.client_decimate_shift);
  // Reserve the pin budget up front: pinning on the hot completion path and
  // restoring a checkpoint must both be allocation-free.
  open_.pinned.reserve(config_.max_pinned_events);
  pending_pins_.reserve(kMaxPendingPins);
  incidents_.reserve(config_.max_incidents);
}

void FlightRecorder::set_queue_depth_probe(std::size_t tier, std::function<int()> probe) {
  MEMCA_CHECK(tier < kTimelineMaxTiers);
  queue_depth_probes_[tier] = std::move(probe);
}

void FlightRecorder::set_rejected_probe(std::size_t tier, std::function<std::int64_t()> probe) {
  MEMCA_CHECK(tier < kTimelineMaxTiers);
  rejected_probes_[tier] = std::move(probe);
}

void FlightRecorder::start() {
  MEMCA_CHECK_MSG(task_ == nullptr, "flight recorder already started");
  task_ = std::make_unique<PeriodicTask>(sim_, config_.resolution, [this] { tick(); });
}

void FlightRecorder::stop() {
  if (task_ != nullptr) {
    task_->stop();
    task_.reset();
  }
}

QuantileSketch* FlightRecorder::tier_residence_sketch(std::size_t tier) {
  MEMCA_CHECK(tier < kTimelineMaxTiers);
  return &tier_residence_[tier];
}

const QuantileSketch& FlightRecorder::tier_residence(std::size_t tier) const {
  MEMCA_CHECK(tier < kTimelineMaxTiers);
  return tier_residence_[tier];
}

void FlightRecorder::on_completion(SimTime now, SimTime first_sent, std::int32_t user,
                                   SimTime rt, bool post_warmup) {
  if (!post_warmup) return;
  client_latency_.record(static_cast<double>(rt));
  if (rt < config_.vlrt_threshold) return;
  ++vlrt_in_window_;
  note_activity(IncidentTrigger::kVlrtCompletion, first_sent, now);
  ++open_.affected_requests;
  open_.worst_rt = std::max(open_.worst_rt, rt);
  if (ring_ != nullptr) {
    if (pending_pins_.size() == kMaxPendingPins) flush_pins();
    pending_pins_.push_back(PendingPin{first_sent, user});
  }
}

void FlightRecorder::tick() {
  const SimTime now = sim_.now();
  TimelineFrame frame;
  frame.start = now - config_.resolution;

  const double capacity = capacity_probe_ ? capacity_probe_() : 1.0;
  frame.capacity_last = capacity;
  frame.capacity_min = std::min(capacity, last_capacity_);
  last_capacity_ = capacity;

  for (std::size_t t = 0; t < config_.depth; ++t) {
    if (queue_depth_probes_[t]) {
      frame.queue_depth[t] = static_cast<std::uint32_t>(std::max(0, queue_depth_probes_[t]()));
    }
    if (rejected_probes_[t]) {
      const std::int64_t rejected = rejected_probes_[t]();
      frame.tier_drops[t] = static_cast<std::uint32_t>(rejected - last_rejected_[t]);
      last_rejected_[t] = rejected;
    }
  }
  if (rto_backlog_probe_) {
    frame.rto_backlog = static_cast<std::uint32_t>(std::max(0, rto_backlog_probe_()));
  }
  frame.vlrt_completions = vlrt_in_window_;
  vlrt_in_window_ = 0;
  timeline_.push(frame);

  // Capacity-dip episodes: one per downward crossing of the threshold.
  if (frame.capacity_min < config_.dip_threshold) {
    note_activity(IncidentTrigger::kCapacityDip, frame.start, now);
    if (!in_dip_) {
      in_dip_ = true;
      ++open_.dip_episodes;
      if (open_.dip_episodes == 1) open_.first_dip_start = frame.start;
      open_.last_dip_start = frame.start;
    }
  } else {
    in_dip_ = false;
  }
  if (open_.active) open_.dip_depth = std::min(open_.dip_depth, frame.capacity_min);

  // Queue-overflow drops in this window extend (or open) the incident.
  if (frame.drops_total() > 0) {
    note_activity(IncidentTrigger::kQueueOverflow, frame.start, now);
    for (std::size_t t = 0; t < config_.depth; ++t) {
      open_.tier_drops[t] += frame.tier_drops[t];
    }
  }

  // Pin flushes scan a ~1 s ring suffix (back to the batch's oldest
  // first_sent), so running one every tick re-reads mostly the same cold
  // events. Every few ticks is just as safe — the ring holds tens of
  // seconds of traffic, a few ticks' worth of new events can't wrap it —
  // and divides the scan cost by the period. close_incident() flushes
  // unconditionally, so a quiet-close never misses pending pins.
  if (++tick_seq_ % config_.pin_flush_period == 0) flush_pins();
  if (open_.active && now - open_.last_activity >= config_.quiet_close) close_incident();
}

void FlightRecorder::note_activity(IncidentTrigger trigger, SimTime span_begin, SimTime now) {
  if (!open_.active) {
    open_.active = true;
    open_.id = next_id_++;
    open_.trigger = trigger;
    open_.window_start = span_begin;
    open_.dip_depth = 1.0;
  } else {
    open_.window_start = std::min(open_.window_start, span_begin);
  }
  open_.last_activity = now;
}

void FlightRecorder::flush_pins() {
  if (pending_pins_.empty()) return;
  // Sort the batch by user (earliest first_sent first within a user) and
  // collapse to one cutoff per user, so membership plus the per-user time
  // cutoff is a binary search away during the scan. The pinned set is the
  // exact union of what per-completion scans would have pinned; the close
  // dedupes by absolute index either way.
  // Spread the batch into a user-indexed cutoff table (sentinel = not in
  // batch), so the scan below resolves membership plus the per-user time
  // cutoff with one load per event instead of a binary search. The table
  // grows to the largest user id once and is re-armed to sentinels after
  // every flush, so steady state allocates nothing. The pinned set is the
  // exact union of what per-completion scans would have pinned; the close
  // dedupes by absolute index either way.
  constexpr SimTime kNotInBatch = std::numeric_limits<SimTime>::max();
  SimTime cutoff = kNotInBatch;
  for (const PendingPin& p : pending_pins_) {
    const auto u = static_cast<std::size_t>(p.user);
    if (u >= user_cutoff_.size()) user_cutoff_.resize(u + 1, kNotInBatch);
    user_cutoff_[u] = std::min(user_cutoff_[u], p.first_sent);
    cutoff = std::min(cutoff, p.first_sent);
  }

  const trace::TraceRecorder& rec = *ring_;
  const std::size_t n = rec.size();
  const std::uint64_t first_abs = rec.total_recorded() - n;
  // Events are time-nondecreasing, so everything belonging to the batched
  // requests (and the capacity/burst context around them) sits in the
  // suffix with time >= cutoff; scan newest-to-oldest and stop there.
  for (std::size_t i = n; i-- > 0;) {
    const trace::TraceEvent& ev = rec[i];
    if (ev.time < cutoff) break;
    const bool context = ev.kind == trace::EventKind::kCapacity ||
                         ev.kind == trace::EventKind::kBurstOn ||
                         ev.kind == trace::EventKind::kBurstOff;
    if (!context) {
      const auto u = static_cast<std::size_t>(ev.user);
      if (u >= user_cutoff_.size() || ev.time < user_cutoff_[u]) continue;
    }
    if (open_.pinned.size() >= config_.max_pinned_events) break;
    open_.pinned.push_back(PinnedEvent{first_abs + i, ev});
  }
  for (const PendingPin& p : pending_pins_) {
    user_cutoff_[static_cast<std::size_t>(p.user)] = kNotInBatch;
  }
  pending_pins_.clear();
}

void FlightRecorder::close_incident() {
  flush_pins();
  // Pins arrive newest-first per request and interleave across requests;
  // absolute stream indices restore causal order and collapse the context
  // marks multiple pins share.
  std::sort(open_.pinned.begin(), open_.pinned.end(),
            [](const PinnedEvent& a, const PinnedEvent& b) { return a.seq < b.seq; });
  const auto last = std::unique(
      open_.pinned.begin(), open_.pinned.end(),
      [](const PinnedEvent& a, const PinnedEvent& b) { return a.seq == b.seq; });
  open_.pinned.erase(last, open_.pinned.end());

  Incident inc;
  inc.id = open_.id;
  inc.trigger = open_.trigger;
  inc.window_start = open_.window_start;
  inc.window_end = open_.last_activity;
  inc.dip_depth = open_.dip_depth;
  inc.dip_episodes = open_.dip_episodes;
  if (open_.dip_episodes >= 2) {
    inc.burst_interval_estimate =
        (open_.last_dip_start - open_.first_dip_start) / (open_.dip_episodes - 1);
  }
  inc.tier_drops = open_.tier_drops;
  for (std::size_t t = 0; t < config_.depth; ++t) {
    inc.drop_count += open_.tier_drops[t];
    if (open_.tier_drops[t] > 0 &&
        (inc.overflowed_tier < 0 ||
         open_.tier_drops[t] > open_.tier_drops[static_cast<std::size_t>(inc.overflowed_tier)])) {
      inc.overflowed_tier = static_cast<int>(t);
    }
  }
  inc.affected_requests = open_.affected_requests;
  inc.worst_rt = open_.worst_rt;
  inc.pinned_events = static_cast<std::int64_t>(open_.pinned.size());
  pinned_events_total_ += inc.pinned_events;
  affected_requests_total_ += inc.affected_requests;
  for (const PinnedEvent& p : open_.pinned) {
    if (p.event.kind == trace::EventKind::kRetransmit) ++inc.retransmissions;
  }

  if (!open_.pinned.empty()) {
    // Replay the pinned mini-stream through the attributor for the
    // per-phase decomposition of the VLRT requests. The window may open
    // mid-dip or truncate a request's earliest attempts (ring eviction);
    // the decomposition is over what was retained — exactly what a
    // production black box can promise.
    scratch_.clear();
    for (const PinnedEvent& p : open_.pinned) scratch_.record(p.event);
    trace::TailAttributor attributor(scratch_, config_.depth, {config_.vlrt_threshold});
    inc.decomposition = attributor.summary();
  }

  timeline_.extract(inc.window_start, inc.window_end, config_.resolution, inc.frames);

  if (incidents_.size() < config_.max_incidents) {
    incidents_.push_back(std::move(inc));
  } else {
    ++incidents_dropped_;
  }

  open_.active = false;
  open_.id = 0;
  open_.trigger = IncidentTrigger::kVlrtCompletion;
  open_.window_start = 0;
  open_.last_activity = 0;
  open_.dip_depth = 1.0;
  open_.dip_episodes = 0;
  open_.first_dip_start = 0;
  open_.last_dip_start = 0;
  open_.tier_drops = {};
  open_.affected_requests = 0;
  open_.worst_rt = 0;
  open_.pinned.clear();
}

void FlightRecorder::finalize() {
  if (open_.active) close_incident();
}

void FlightRecorder::capture(Snapshot& out) const {
  out.pending_pins = pending_pins_;
  out.client = client_latency_;
  out.tiers = tier_residence_;
  timeline_.capture(out.timeline);
  out.incident_count = incidents_.size();
  out.incidents_dropped = incidents_dropped_;
  out.next_id = next_id_;
  out.last_capacity = last_capacity_;
  out.in_dip = in_dip_;
  out.last_rejected = last_rejected_;
  out.vlrt_in_window = vlrt_in_window_;
  out.tick_seq = tick_seq_;
  out.pinned_events_total = pinned_events_total_;
  out.affected_requests_total = affected_requests_total_;
  out.open = open_;
  out.has_task = task_ != nullptr;
  if (task_ != nullptr) task_->capture(out.task);
}

void FlightRecorder::restore(const Snapshot& snap) {
  client_latency_ = snap.client;
  tier_residence_ = snap.tiers;
  timeline_.restore(snap.timeline);
  // Closed incidents are append-only; rollback truncates the ones emitted
  // after the checkpoint. The open window copy-assigns into the capacity
  // reserved at construction (max_pinned_events), so nothing allocates.
  MEMCA_CHECK(snap.incident_count <= incidents_.size());
  incidents_.resize(snap.incident_count);
  incidents_dropped_ = snap.incidents_dropped;
  next_id_ = snap.next_id;
  last_capacity_ = snap.last_capacity;
  in_dip_ = snap.in_dip;
  last_rejected_ = snap.last_rejected;
  vlrt_in_window_ = snap.vlrt_in_window;
  tick_seq_ = snap.tick_seq;
  pinned_events_total_ = snap.pinned_events_total;
  affected_requests_total_ = snap.affected_requests_total;
  open_.active = snap.open.active;
  open_.id = snap.open.id;
  open_.trigger = snap.open.trigger;
  open_.window_start = snap.open.window_start;
  open_.last_activity = snap.open.last_activity;
  open_.dip_depth = snap.open.dip_depth;
  open_.dip_episodes = snap.open.dip_episodes;
  open_.first_dip_start = snap.open.first_dip_start;
  open_.last_dip_start = snap.open.last_dip_start;
  open_.tier_drops = snap.open.tier_drops;
  open_.affected_requests = snap.open.affected_requests;
  open_.worst_rt = snap.open.worst_rt;
  open_.pinned.assign(snap.open.pinned.begin(), snap.open.pinned.end());
  pending_pins_.assign(snap.pending_pins.begin(), snap.pending_pins.end());
  MEMCA_CHECK(snap.has_task == (task_ != nullptr));
  if (task_ != nullptr) task_->restore(snap.task);
}

}  // namespace memca::flightrec
