// Structured incident records — the output half of incident forensics.
//
// An Incident is what the flight recorder hands an operator after a
// millibottleneck episode: when it happened, how deep the capacity dip was,
// which tier overflowed, how many drops and retransmissions it caused, how
// many requests crossed the VLRT threshold, the per-phase latency
// decomposition of those requests (reusing trace::TailAttributor over the
// pinned ring spans) and the frozen high-resolution timeline around the
// window. Exported as JSON (machine-readable, byte-deterministic for the
// sweep-thread invariance gate) and as Perfetto annotation slices that load
// alongside the chrome traces trace/exporters.h writes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/time.h"
#include "flightrec/timeline.h"
#include "trace/attributor.h"

namespace memca::flightrec {

enum class IncidentTrigger : std::uint8_t {
  /// A post-warmup completion crossed the VLRT threshold.
  kVlrtCompletion,
  /// A tier rejected requests (queue overflow) during a tick window.
  kQueueOverflow,
  /// The capacity multiplier dipped below the dip threshold.
  kCapacityDip,
};

const char* to_string(IncidentTrigger trigger);

struct Incident {
  std::int64_t id = 0;
  /// What opened the incident (later triggers extend the same window).
  IncidentTrigger trigger = IncidentTrigger::kVlrtCompletion;
  SimTime window_start = 0;
  SimTime window_end = 0;
  /// Minimum capacity multiplier D(t) observed in the window.
  double dip_depth = 1.0;
  /// Number of distinct capacity-dip episodes in the window.
  std::int64_t dip_episodes = 0;
  /// Mean spacing between dip-episode starts — the recovered attack burst
  /// interval (0 when fewer than two episodes were seen).
  SimTime burst_interval_estimate = 0;
  /// Tier with the most drops in the window (-1 when nothing dropped).
  int overflowed_tier = -1;
  std::int64_t drop_count = 0;
  /// Per-tier drop split, front tier first.
  std::array<std::int64_t, kTimelineMaxTiers> tier_drops{};
  /// kRetransmit events among the pinned spans — the TCP fan-out.
  std::int64_t retransmissions = 0;
  /// VLRT completions folded into this incident.
  std::int64_t affected_requests = 0;
  SimTime worst_rt = 0;
  /// Per-phase decomposition of the pinned (VLRT) requests.
  trace::TailSummary decomposition;
  /// Ring span events pinned for this incident (post sort/dedupe).
  std::int64_t pinned_events = 0;
  /// Frozen timeline frames overlapping the window (newest retained only).
  std::vector<TimelineFrame> frames;
};

/// Machine-readable export. Stable field order, no floating-point
/// environment dependence — two identical incident vectors serialize to
/// identical bytes, which is what the MEMCA_SWEEP_THREADS gate diffs.
void write_incidents_json(std::ostream& out, const std::vector<Incident>& incidents,
                          const std::vector<std::string>& tier_names);

/// Perfetto/chrome-trace annotation slices: one "X" slice per incident on a
/// dedicated "flightrec" track (plus one instant per dip episode estimate),
/// with the incident's numbers in args. A standalone valid trace file; it
/// can also be merged event-for-event into an exporter-written trace.
void write_incident_annotations(std::ostream& out, const std::vector<Incident>& incidents);

}  // namespace memca::flightrec
