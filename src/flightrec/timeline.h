// High-resolution rolling timeline of the signals a millibottleneck leaves.
//
// One frame per flight-recorder tick (native 50 ms by default) holding the
// per-tier queue depths, the capacity multiplier D(t) (min and last sample
// in the window), per-tier drop deltas and the client RTO backlog — exactly
// the quantities the paper shows a 1 s monitor averages away (Fig. 10).
// Frames live in a small preallocated ring: pushing is allocation-free and
// the newest `capacity` frames are always available for an IncidentDetector
// to freeze when something fires.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/time.h"

namespace memca::flightrec {

/// Tiers a frame can carry; the testbed has 3, one spare for ablations.
inline constexpr std::size_t kTimelineMaxTiers = 4;

struct TimelineFrame {
  /// Window start (the previous tick); the window closes at start + resolution.
  SimTime start = 0;
  /// Queue depth (waiting + blocked-on-downstream) sampled at window close.
  std::array<std::uint32_t, kTimelineMaxTiers> queue_depth{};
  /// Front-tier-style rejections per tier during the window.
  std::array<std::uint32_t, kTimelineMaxTiers> tier_drops{};
  /// Capacity multiplier D(t) of the target tier: minimum and last sample.
  double capacity_min = 1.0;
  double capacity_last = 1.0;
  /// Retransmissions scheduled but not yet fired at window close.
  std::uint32_t rto_backlog = 0;
  /// Post-warmup completions with RT >= the VLRT threshold in the window.
  std::uint32_t vlrt_completions = 0;

  std::uint32_t drops_total() const {
    std::uint32_t sum = 0;
    for (const auto d : tier_drops) sum += d;
    return sum;
  }
};

/// Fixed-capacity frame ring; index 0 is the oldest *retained* frame.
class Timeline {
 public:
  explicit Timeline(std::size_t capacity);

  /// Overwrites the oldest frame once full; never allocates.
  void push(const TimelineFrame& frame);

  std::size_t capacity() const { return mask_ + 1; }
  std::size_t size() const { return total_ > mask_ + 1 ? mask_ + 1 : total_; }
  /// Frames ever pushed, including evicted ones.
  std::size_t total() const { return total_; }
  bool empty() const { return total_ == 0; }

  const TimelineFrame& operator[](std::size_t i) const {
    MEMCA_DCHECK(i < size());
    return frames_[(total_ - size() + i) & mask_];
  }
  const TimelineFrame& newest() const { return (*this)[size() - 1]; }

  /// Appends the retained frames whose window intersects [from, to] to
  /// `out`, oldest first. Frames already evicted are gone — a freeze
  /// captures at most capacity() frames of history.
  void extract(SimTime from, SimTime to, SimTime resolution,
               std::vector<TimelineFrame>& out) const;

  /// Checkpoint: frames are overwritten in place on wrap, so capture copies
  /// the retained window out and restore writes each frame back into the
  /// physical slot it came from (same scheme as the ring TraceRecorder).
  struct Snapshot {
    std::size_t total = 0;
    std::vector<TimelineFrame> frames;
  };

  void capture(Snapshot& out) const {
    out.total = total_;
    const std::size_t n = size();
    out.frames.resize(n);
    for (std::size_t i = 0; i < n; ++i) out.frames[i] = (*this)[i];
  }

  void restore(const Snapshot& snap) {
    const std::size_t n = snap.frames.size();
    MEMCA_CHECK(n <= snap.total && n <= mask_ + 1);
    const std::size_t first = snap.total - n;
    for (std::size_t i = 0; i < n; ++i) frames_[(first + i) & mask_] = snap.frames[i];
    total_ = snap.total;
  }

 private:
  std::vector<TimelineFrame> frames_;
  std::size_t mask_ = 0;
  std::size_t total_ = 0;
};

}  // namespace memca::flightrec
