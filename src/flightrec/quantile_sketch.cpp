#include "flightrec/quantile_sketch.h"

#include <algorithm>

#include "common/check.h"

namespace memca::flightrec {

void P2Quantile::init_markers() {
  std::sort(height_.begin(), height_.end());
  pos_ = {1.0, 2.0, 3.0, 4.0, 5.0};
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  inc_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::record(double x) {
  if (count_ < 5) [[unlikely]] {
    height_[static_cast<std::size_t>(count_)] = x;
    ++count_;
    if (count_ == 5) init_markers();
    return;
  }
  // Locate the cell x falls in, widening the extreme markers if needed.
  int k;
  if (x < height_[0]) [[unlikely]] {
    height_[0] = x;
    k = 0;
  } else if (x >= height_[4]) [[unlikely]] {
    height_[4] = x;
    k = 3;
  } else {
    // Branchless interior search — on a hot latency stream the cell is
    // close to uniform-random, so a compare chain mispredicts constantly.
    k = static_cast<int>(x >= height_[1]) + static_cast<int>(x >= height_[2]) +
        static_cast<int>(x >= height_[3]);
  }
  pos_[1] += k < 1 ? 1.0 : 0.0;
  pos_[2] += k < 2 ? 1.0 : 0.0;
  pos_[3] += k < 3 ? 1.0 : 0.0;
  pos_[4] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += inc_[i];
  // Nudge the three interior markers toward their desired positions,
  // preferring the parabolic (P²) height update, falling back to linear
  // when it would break marker monotonicity.
  for (int i = 1; i <= 3; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    const double d = desired_[s] - pos_[s];
    if ((d >= 1.0 && pos_[s + 1] - pos_[s] > 1.0) ||
        (d <= -1.0 && pos_[s - 1] - pos_[s] < -1.0)) {
      const double step = d >= 0.0 ? 1.0 : -1.0;
      const double h = parabolic(i, step);
      if (height_[s - 1] < h && h < height_[s + 1]) {
        height_[s] = h;
      } else {
        height_[s] = linear(i, step);
      }
      pos_[s] += step;
    }
  }
  ++count_;
}

double P2Quantile::parabolic(int i, double d) const {
  const double np = pos_[static_cast<std::size_t>(i + 1)];
  const double nm = pos_[static_cast<std::size_t>(i - 1)];
  const double n = pos_[static_cast<std::size_t>(i)];
  const double hp = height_[static_cast<std::size_t>(i + 1)];
  const double hm = height_[static_cast<std::size_t>(i - 1)];
  const double h = height_[static_cast<std::size_t>(i)];
  return h + d / (np - nm) *
                 ((n - nm + d) * (hp - h) / (np - n) + (np - n - d) * (h - hm) / (n - nm));
}

double P2Quantile::linear(int i, double d) const {
  const std::size_t j = static_cast<std::size_t>(i + static_cast<int>(d));
  const std::size_t k = static_cast<std::size_t>(i);
  return height_[k] + d * (height_[j] - height_[k]) / (pos_[j] - pos_[k]);
}

double P2Quantile::estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ >= 5) return height_[2];
  // Exact phase: the first samples sit unsorted in height_. Sorted by hand
  // (n <= 5) — std::sort's introsort machinery trips GCC's array-bounds
  // analysis here.
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(count_ < 5 ? count_ : 5);
  std::array<double, 5> sorted = height_;
  for (std::ptrdiff_t i = 1; i < n; ++i) {
    const double v = sorted[static_cast<std::size_t>(i)];
    std::ptrdiff_t j = i;
    for (; j > 0 && sorted[static_cast<std::size_t>(j - 1)] > v; --j) {
      sorted[static_cast<std::size_t>(j)] = sorted[static_cast<std::size_t>(j - 1)];
    }
    sorted[static_cast<std::size_t>(j)] = v;
  }
  const double rank = q_ * static_cast<double>(n - 1);
  const auto lo = static_cast<std::ptrdiff_t>(rank);
  return sorted[static_cast<std::size_t>(std::min(lo, n - 1))];
}

void P2Quantile::merge(const P2Quantile& other) {
  MEMCA_CHECK(q_ == other.q_);
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.count_ < 5) {
    // Other is still exact: replay its raw samples.
    for (std::int64_t i = 0; i < other.count_; ++i) {
      record(other.height_[static_cast<std::size_t>(i)]);
    }
    return;
  }
  if (count_ < 5) {
    // We are exact, other is not: adopt other and replay our samples.
    const std::array<double, 5> raw = height_;
    const std::int64_t n = count_;
    *this = other;
    for (std::int64_t i = 0; i < n; ++i) record(raw[static_cast<std::size_t>(i)]);
    return;
  }
  // Both converged: count-weighted marker combination. Heights average
  // (monotone sequences stay monotone under elementwise weighted average),
  // interior positions add, extremes re-anchor at 1 and n, and the desired
  // positions are recomputed for the merged count.
  const double w1 = static_cast<double>(count_);
  const double w2 = static_cast<double>(other.count_);
  for (std::size_t i = 0; i < 5; ++i) {
    height_[i] = (height_[i] * w1 + other.height_[i] * w2) / (w1 + w2);
  }
  count_ += other.count_;
  const double n = static_cast<double>(count_);
  pos_[0] = 1.0;
  for (std::size_t i = 1; i < 4; ++i) pos_[i] += other.pos_[i];
  pos_[4] = n;
  desired_ = {1.0, (n - 1.0) * q_ / 2.0 + 1.0, (n - 1.0) * q_ + 1.0,
              (n - 1.0) * (1.0 + q_) / 2.0 + 1.0, n};
}

QuantileSketch::QuantileSketch(Profile profile, std::uint32_t decimate_shift) {
  for (std::size_t i = 0; i < kQuantiles.size(); ++i) est_[i] = P2Quantile(kQuantiles[i]);
  if (profile == Profile::kTail) {
    first_ = 2;  // kQuantiles[2..3] = {0.95, 0.99}
    last_ = 4;
  }
  decim_mask_ = decimate_shift == 0 ? 0 : (std::uint32_t{1} << decimate_shift) - 1;
}

void QuantileSketch::record_sample(double x) {
  for (std::uint32_t i = first_; i < last_; ++i) est_[i].record(x);
  if (count_ == 0 || x < min_) min_ = x;
  if (count_ == 0 || x > max_) max_ = x;
  sum_ += x;
  ++count_;
}

double QuantileSketch::quantile(double q) const {
  for (std::uint32_t i = first_; i < last_; ++i) {
    if (kQuantiles[i] == q) return est_[i].estimate();
  }
  MEMCA_CHECK_MSG(false, "quantile not tracked by the sketch");
  return 0.0;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  MEMCA_CHECK_MSG(
      first_ == other.first_ && last_ == other.last_ && decim_mask_ == other.decim_mask_,
      "merging sketches with different profiles");
  seq_ += other.seq_;
  if (other.count_ == 0) return;
  for (std::uint32_t i = first_; i < last_; ++i) est_[i].merge(other.est_[i]);
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
}

void QuantileSketch::reset() {
  const std::uint32_t first = first_, last = last_, mask = decim_mask_;
  *this = QuantileSketch();
  first_ = first;
  last_ = last;
  decim_mask_ = mask;
}

}  // namespace memca::flightrec
