// Streaming quantile sketch (P², Jain & Chlamtac 1985).
//
// The run report's latency quantiles historically came from full per-client
// latency vectors or log-bucketed histograms. Neither survives the planned
// million-user cohort rewrite: vectors grow with traffic and a histogram per
// (tier, window) starts to dominate the cache. A P² sketch tracks a fixed
// set of quantiles in five markers each — a few hundred bytes, O(1)
// allocation-free updates, trivially copyable (so a WorldSnapshot captures
// it with attach_value) — which is what an always-on flight recorder can
// afford per tier.
//
// Determinism: record() is a pure function of the sketch state and the
// sample, so a sweep cell's sketch depends only on that cell's event order.
// merge() is a pure function of its two operands; merging per-cell sketches
// in cell order (exactly how registry cells merge) yields bytes independent
// of the thread count that ran the sweep.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace memca::flightrec {

/// One P² estimator: five markers chasing a single quantile q.
class P2Quantile {
 public:
  P2Quantile() = default;
  explicit P2Quantile(double q) : q_(q) {}

  double q() const { return q_; }
  std::int64_t count() const { return count_; }

  /// O(1), allocation-free.
  void record(double x);

  /// Current estimate; exact while fewer than five samples have arrived.
  double estimate() const;

  /// Folds `other` into this estimator. Exact when either side is still in
  /// its exact (<5 samples) phase; otherwise an approximation: marker
  /// heights combine count-weighted, positions add, and the desired
  /// positions are recomputed for the merged count. Deterministic — the
  /// result depends only on the two operands, never on scheduling.
  void merge(const P2Quantile& other);

 private:
  void init_markers();
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double q_ = 0.5;
  std::array<double, 5> height_{};   // marker heights h_i (sorted)
  std::array<double, 5> pos_{};      // actual marker positions n_i (1-based)
  std::array<double, 5> desired_{};  // desired positions n'_i
  std::array<double, 5> inc_{};      // desired-position increments dn'_i
  std::int64_t count_ = 0;
};

/// A bank of P² estimators over the quantiles the paper's evaluation
/// reports, plus exact count/min/max/sum. ~500 bytes, no heap.
class QuantileSketch {
 public:
  static constexpr std::array<double, 5> kQuantiles{0.50, 0.90, 0.95, 0.99, 0.999};

  /// Which of kQuantiles the sketch maintains. kTail keeps only p95/p99 —
  /// the pair the per-tier residence report consumes — at a fraction of
  /// the full bank's per-sample cost.
  enum class Profile : std::uint32_t { kFull, kTail };

  QuantileSketch() : QuantileSketch(Profile::kFull, 0) {}
  /// decimate_shift > 0 folds in only every 2^shift-th sample (the first
  /// sample always counts, so min/max are live immediately). This is the
  /// constant-factor lever for probes hot enough that even a P² bank
  /// shows up in the engine budget — per-tier residence times fire on
  /// every tier departure, and a quantile of a 1-in-2^shift subsample
  /// estimates the same distribution.
  explicit QuantileSketch(Profile profile, std::uint32_t decimate_shift = 0);

  /// Inline decimation guard; the bank update lives out of line.
  void record(double x) {
    if ((seq_++ & decim_mask_) != 0) return;
    record_sample(x);
  }

  std::int64_t count() const { return count_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Estimate for one of kQuantiles (checked: q must be tracked by the
  /// sketch's profile).
  double quantile(double q) const;

  /// Folds `other` in; both sides must share profile and decimation.
  void merge(const QuantileSketch& other);
  void reset();

 private:
  void record_sample(double x);

  std::array<P2Quantile, kQuantiles.size()> est_;
  std::int64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  // All-uint32 tail: no padding bytes, so whole-object memcmp (which the
  // determinism tests lean on) never reads indeterminate bytes.
  std::uint32_t first_ = 0;        // active est_ range [first_, last_)
  std::uint32_t last_ = kQuantiles.size();
  std::uint32_t decim_mask_ = 0;   // 2^shift - 1; 0 = every sample
  std::uint32_t seq_ = 0;          // samples offered (recorded or skipped)
};

// Trivially copyable is load-bearing: WorldSnapshot captures sketches with
// attach_value (plain copy-assign both ways, allocation-free on restore).
static_assert(std::is_trivially_copyable_v<QuantileSketch>);

}  // namespace memca::flightrec
