#include "workload/clients.h"

#include "common/check.h"

namespace memca::workload {

ClosedLoopClients::ClosedLoopClients(Simulator& sim, RequestRouter& router,
                                     WorkloadProfile profile, ClientConfig config, Rng rng)
    : sim_(sim),
      router_(router),
      profile_(std::move(profile)),
      chain_(profile_.transitions, profile_.initial),
      config_(config),
      rng_(std::move(rng)),
      users_(static_cast<std::size_t>(config.num_users)) {
  MEMCA_CHECK_MSG(config_.num_users > 0, "need at least one user");
  MEMCA_CHECK_MSG(config_.min_rto > 0, "min RTO must be positive");
  MEMCA_CHECK_MSG(config_.max_retries >= 0, "max_retries must be non-negative");
  profile_.validate();
  MEMCA_CHECK_MSG(profile_.num_tiers() == router_.depth(),
                  "profile tier count must match the target system");
  // Pre-size the post-warmup sample store: each user completes roughly one
  // request per think time, so a minute of samples per user is a generous
  // first chunk that avoids reallocation churn during warm-up.
  response_series_.reserve(static_cast<std::size_t>(config_.num_users) * 8);
  source_ = router_.register_source([this](const queueing::Request& r) { on_complete(r); },
                                    [this](const queueing::Request& r) { on_drop(r); });
}

void ClosedLoopClients::start() {
  MEMCA_CHECK_MSG(!started_, "clients already started");
  started_ = true;
  start_time_ = sim_.now();
  for (int u = 0; u < config_.num_users; ++u) {
    users_[static_cast<std::size_t>(u)].page = chain_.initial_state(rng_);
    // Uniform initial offset over one think period spreads arrivals out.
    const SimTime offset =
        static_cast<SimTime>(rng_.uniform(0.0, to_seconds(profile_.think_time_mean)) *
                             static_cast<double>(kSecond));
    sim_.schedule_in(offset, [this, u] {
      User& user = users_[static_cast<std::size_t>(u)];
      send_request(u, user.page, sim_.now(), 0);
    });
  }
}

void ClosedLoopClients::schedule_think(int user) {
  const SimTime think = rng_.exponential_time(profile_.think_time_mean);
  sim_.schedule_in(think, [this, user] {
    User& u = users_[static_cast<std::size_t>(user)];
    u.page = chain_.next(u.page, rng_);
    send_request(user, u.page, sim_.now(), 0);
  });
}

void ClosedLoopClients::send_request(int user, int page, SimTime first_sent, int attempt) {
  User& u = users_[static_cast<std::size_t>(user)];
  u.busy = true;
  auto req = router_.make_request(source_);
  req->user = user;
  req->page_class = page;
  req->set_attempt(attempt);
  req->set_first_sent(first_sent);
  req->set_sent(sim_.now());
  profile_.sample_demands_into(page, rng_, req->demand_us);
  metrics_.submitted.inc();
  router_.submit(req);
}

void ClosedLoopClients::on_complete(const queueing::Request& req) {
  User& u = users_[static_cast<std::size_t>(req.user)];
  u.busy = false;
  ++completed_;
  metrics_.completed.inc();
  mark(trace::EventKind::kComplete, req, req.first_sent());
  if (req.attempt() > 0) ++retransmitted_completions_;
  const SimTime rt = sim_.now() - req.first_sent();
  const bool post_warmup = sim_.now() >= config_.stats_warmup;
  if (post_warmup) {
    response_times_.record(rt);
    metrics_.response_time.record(rt);
    response_series_.append(sim_.now(), static_cast<double>(rt));
    recent_.record(sim_.now(), rt);
  }
  if (completion_observer_) {
    completion_observer_(CompletionEvent{sim_.now(), req.id, req.first_sent(), req.user,
                                         req.attempt(), rt, post_warmup});
  }
  schedule_think(req.user);
}

void ClosedLoopClients::on_drop(const queueing::Request& req) {
  ++dropped_attempts_;
  metrics_.dropped.inc();
  if (req.attempt() >= config_.max_retries) {
    // Abandon: the user gives up on this page and thinks again.
    ++failed_;
    metrics_.failed.inc();
    mark(trace::EventKind::kAbandon, req, req.first_sent());
    users_[static_cast<std::size_t>(req.user)].busy = false;
    schedule_think(req.user);
    return;
  }
  // RFC 6298: RTO floor of 1 s, exponential backoff per retry.
  const SimTime rto = config_.min_rto * (SimTime{1} << req.attempt());
  metrics_.retransmitted.inc();
  mark(trace::EventKind::kRetransmit, req, rto);
  const int user = req.user;
  const int page = req.page_class;
  const SimTime first_sent = req.first_sent();
  const int next_attempt = req.attempt() + 1;
  ++rto_backlog_;
  sim_.schedule_in(rto, [this, user, page, first_sent, next_attempt] {
    --rto_backlog_;
    send_request(user, page, first_sent, next_attempt);
  });
}

double ClosedLoopClients::throughput() const {
  const SimTime elapsed = sim_.now() - start_time_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(completed_) / to_seconds(elapsed);
}

}  // namespace memca::workload
