#include "workload/clients.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace memca::workload {

const char* to_string(ClientMode mode) {
  switch (mode) {
    case ClientMode::kExact:
      return "exact";
    case ClientMode::kCohort:
      return "cohort";
  }
  return "?";
}

ClosedLoopClients::ClosedLoopClients(Simulator& sim, RequestRouter& router,
                                     WorkloadProfile profile, ClientConfig config, Rng rng)
    : sim_(sim),
      router_(router),
      profile_(std::move(profile)),
      chain_(profile_.transitions, profile_.initial),
      config_(config),
      rng_(std::move(rng)) {
  MEMCA_CHECK_MSG(config_.num_users > 0, "need at least one user");
  MEMCA_CHECK_MSG(config_.min_rto > 0, "min RTO must be positive");
  MEMCA_CHECK_MSG(config_.max_retries >= 0, "max_retries must be non-negative");
  profile_.validate();
  MEMCA_CHECK_MSG(profile_.num_tiers() == router_.depth(),
                  "profile tier count must match the target system");
  if (config_.mode == ClientMode::kExact) {
    user_page_.resize(static_cast<std::size_t>(config_.num_users), 0);
    user_busy_.resize(static_cast<std::size_t>(config_.num_users), 0);
  } else {
    MEMCA_CHECK_MSG(config_.cohort_tick > 0, "cohort tick must be positive");
    idle_by_page_.resize(chain_.num_states(), 0);
    send_scratch_.resize(chain_.num_states(), 0);
    // P(an idle user wakes within one tick) for exponential think time.
    wake_probability_ = 1.0 - std::exp(-static_cast<double>(config_.cohort_tick) /
                                       static_cast<double>(profile_.think_time_mean));
    // Millisecond sub-slots within each tick (capped so a coarse tick still
    // bounds the per-tick slot scan). Wakers scatter uniformly over these,
    // so arrival instants stay spread like the exact model's instead of
    // bunching a whole tick's arrivals onto one instant.
    num_sub_slots_ = static_cast<int>(
        std::clamp<SimTime>(config_.cohort_tick / msec(1), 1, 128));
    sub_slot_width_ = config_.cohort_tick / num_sub_slots_;
    spread_scratch_.resize(static_cast<std::size_t>(chain_.num_states()) *
                               static_cast<std::size_t>(num_sub_slots_),
                           0);
  }
  if (config_.record_response_series) {
    // Pre-size the post-warmup sample store: each user completes roughly one
    // request per think time, so a minute of samples per user is a generous
    // first chunk that avoids reallocation churn during warm-up. Capped so
    // enabling the series on a large population does not pre-book gigabytes.
    response_series_.reserve(
        std::min<std::size_t>(static_cast<std::size_t>(config_.num_users) * 8, 1u << 20));
  }
  // Quantized systems set their pool's service grid at construction (before
  // any clients exist), so the flag is stable from here on. Exact mode keeps
  // eager sampling: its RNG stream is the byte-stable reference.
  lazy_demands_ = router_.system().pool().hot().quantum() > 0.0;
  source_ = router_.register_source([this](const queueing::Request& r) { on_complete(r); },
                                    [this](const queueing::Request& r) { on_drop(r); });
  // Quantized-mode path: the router only delivers batches when the system
  // drains completion groups, so registering it is inert otherwise.
  router_.set_batch_complete(
      source_, [this](queueing::Request* const* reqs, std::size_t n) {
        on_complete_batch(reqs, n);
      });
}

void ClosedLoopClients::start() {
  MEMCA_CHECK_MSG(!started_, "clients already started");
  started_ = true;
  start_time_ = sim_.now();
  if (config_.mode == ClientMode::kCohort) {
    initial_pending_ = config_.num_users;
    // The first tick fires immediately: each tick draws wakes for the
    // *upcoming* [now, now + tick) window and scatters them inside it.
    tick_ = sim_.schedule_in(0, [this] { on_cohort_tick(); });
    return;
  }
  for (int u = 0; u < config_.num_users; ++u) {
    user_page_[static_cast<std::size_t>(u)] = chain_.initial_state(rng_);
    // Uniform initial offset over one think period spreads arrivals out.
    const SimTime offset =
        static_cast<SimTime>(rng_.uniform(0.0, to_seconds(profile_.think_time_mean)) *
                             static_cast<double>(kSecond));
    sim_.schedule_in(offset, [this, u] {
      send_request(u, user_page_[static_cast<std::size_t>(u)], sim_.now(), 0);
    });
  }
}

void ClosedLoopClients::schedule_think(int user) {
  const SimTime think = rng_.exponential_time(profile_.think_time_mean);
  sim_.schedule_in(think, [this, user] {
    const auto u = static_cast<std::size_t>(user);
    user_page_[u] = chain_.next(user_page_[u], rng_);
    send_request(user, user_page_[u], sim_.now(), 0);
  });
}

void ClosedLoopClients::on_cohort_tick() {
  const SimTime now = sim_.now();
  bool any = false;

  // Start-up ramp: the exact model spreads first sends uniformly over one
  // think period. Thin the not-yet-started count by the fraction of the
  // remaining ramp window the upcoming tick covers (uniform order
  // statistics), and draw the wakers' first pages from the chain's initial
  // distribution.
  if (initial_pending_ > 0) {
    const SimTime ramp_end = start_time_ + profile_.think_time_mean;
    const SimTime remaining = ramp_end - now;
    std::int64_t wake = initial_pending_;
    if (remaining > config_.cohort_tick) {
      const double p = static_cast<double>(config_.cohort_tick) /
                       static_cast<double>(remaining);
      wake = rng_.binomial(initial_pending_, p);
    }
    if (wake > 0) {
      initial_pending_ -= wake;
      chain_.sample_initial_counts(wake, rng_, send_scratch_);
      any = true;
    }
  }

  // Idle wake-ups for the [now, now + tick) window: one binomial draw per
  // page class, then a multinomial page transition for the wakers —
  // O(pages) work however large the population is.
  for (std::size_t p = 0; p < idle_by_page_.size(); ++p) {
    if (idle_by_page_[p] == 0) continue;
    const std::int64_t wake = rng_.binomial(idle_by_page_[p], wake_probability_);
    if (wake == 0) continue;
    idle_by_page_[p] -= wake;
    chain_.sample_transition_counts(static_cast<int>(p), wake, rng_, send_scratch_);
    any = true;
  }

  if (any) {
    // Scatter the wakers uniformly over the tick's sub-slots: conditioned
    // on waking inside a window much shorter than the think time, the
    // truncated-exponential wake instant is uniform to first order. One
    // draw per waker — the same asymptotic cost as the per-arrival sends
    // that follow, and what keeps per-instant queue transients matched to
    // the exact model's spread arrivals.
    const auto pages = static_cast<std::size_t>(chain_.num_states());
    for (std::size_t p = 0; p < pages; ++p) {
      std::int64_t count = send_scratch_[p];
      send_scratch_[p] = 0;
      waking_ += count;
      while (count-- > 0) {
        const auto slot =
            static_cast<std::size_t>(rng_.uniform_int(0, num_sub_slots_ - 1));
        ++spread_scratch_[slot * pages + p];
      }
    }

    // One send event per occupied (sub-slot, page); the pages of one
    // sub-slot fire at the same instant under one batch key, so
    // Simulator::batch_continues stays true until the slot's last page and
    // the tiers fold that instant's arrivals into one counter flush (the
    // PR 6 batch-drain machinery). All slot events land strictly before
    // the next tick, so the scratch is free for reuse by then.
    for (int s = 0; s < num_sub_slots_; ++s) {
      const SimTime when = now + s * sub_slot_width_;
      std::uint32_t key = 0;
      for (std::size_t p = 0; p < pages; ++p) {
        const std::size_t cell = static_cast<std::size_t>(s) * pages + p;
        if (spread_scratch_[cell] == 0) continue;
        const int page = static_cast<int>(p);
        const auto count = static_cast<std::int32_t>(spread_scratch_[cell]);
        spread_scratch_[cell] = 0;
        if (key == 0) key = sim_.new_batch_key();
        sim_.schedule_batched(when, key, [this, page, count] {
          send_cohort_burst(page, count);
        });
      }
    }
  }

  tick_ = sim_.schedule_in(config_.cohort_tick, [this] { on_cohort_tick(); });
}

void ClosedLoopClients::send_cohort_burst(int page, std::int32_t count) {
  waking_ -= count;
  for (std::int32_t i = 0; i < count; ++i) {
    const std::uint32_t user = slots_.alloc();
    send_request(static_cast<int>(user), page, sim_.now(), 0);
  }
}

void ClosedLoopClients::fire_rto_group(std::uint32_t group) {
  const int next_attempt = rto_.attempt(group) + 1;
  rto_.drain(group, [this, next_attempt](std::int32_t page, SimTime first_sent,
                                         std::uint32_t user) {
    send_request(static_cast<int>(user), page, first_sent, next_attempt);
  });
}

void ClosedLoopClients::send_request(int user, int page, SimTime first_sent, int attempt) {
  if (config_.mode == ClientMode::kExact) {
    user_busy_[static_cast<std::size_t>(user)] = 1;
  }
  auto req = router_.make_request(source_);
  req->user = user;
  req->page_class = page;
  req->set_attempt(attempt);
  req->set_first_sent(first_sent);
  req->set_sent(sim_.now());
  if (!lazy_demands_ || router_.system().accepting()) {
    profile_.sample_demands_into(page, rng_, req->demand_us);
  } else {
    // Quantized mode, entry tier full: this attempt drops synchronously in
    // submit() and its demands are never staged (try_submit stages on
    // admission only), so the three RNG draws would be pure waste — and
    // during an overload storm the drops outnumber admissions a
    // thousandfold. Skipping them forks the quantized RNG stream from the
    // exact one, which is fine: quantized mode is a distinct event stream
    // with its own goldens, validated statistically against exact.
    req->demand_us.resize(profile_.num_tiers());
  }
  metrics_.submitted.inc();
  router_.submit(req);
}

SimTime ClosedLoopClients::record_completion(const queueing::Request& req) {
  ++completed_;
  metrics_.completed.inc();
  mark(trace::EventKind::kComplete, req, req.first_sent());
  if (req.attempt() > 0) ++retransmitted_completions_;
  const SimTime rt = sim_.now() - req.first_sent();
  const bool post_warmup = sim_.now() >= config_.stats_warmup;
  if (post_warmup) {
    response_times_.record(rt);
    metrics_.response_time.record(rt);
    if (config_.record_response_series) {
      response_series_.append(sim_.now(), static_cast<double>(rt));
    }
    recent_.record(sim_.now(), rt);
  }
  if (completion_observer_) {
    completion_observer_(CompletionEvent{sim_.now(), req.id, req.first_sent(), req.user,
                                         req.attempt(), rt, post_warmup});
  }
  return rt;
}

void ClosedLoopClients::on_complete(const queueing::Request& req) {
  record_completion(req);
  if (config_.mode == ClientMode::kCohort) {
    // The user rejoins the idle pool on the page it just fetched; its slot
    // id returns to the allocator.
    slots_.release(static_cast<std::uint32_t>(req.user));
    ++idle_by_page_[static_cast<std::size_t>(req.page_class)];
    return;
  }
  user_busy_[static_cast<std::size_t>(req.user)] = 0;
  schedule_think(req.user);
}

void ClosedLoopClients::on_complete_batch(queueing::Request* const* reqs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) record_completion(*reqs[i]);
  if (config_.mode == ClientMode::kCohort) {
    // One slot-free / idle-recount pass for the whole group: the scheduling
    // tail touches only the allocator free list and the per-page counters,
    // never a timer — the cohort tick picks the returned users up on its
    // next binomial draw.
    for (std::size_t i = 0; i < n; ++i) {
      const queueing::Request& req = *reqs[i];
      slots_.release(static_cast<std::uint32_t>(req.user));
      ++idle_by_page_[static_cast<std::size_t>(req.page_class)];
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const queueing::Request& req = *reqs[i];
    user_busy_[static_cast<std::size_t>(req.user)] = 0;
    schedule_think(req.user);
  }
}

void ClosedLoopClients::on_drop(const queueing::Request& req) {
  ++dropped_attempts_;
  metrics_.dropped.inc();
  if (req.attempt() >= config_.max_retries) {
    // Abandon: the user gives up on this page and thinks again.
    ++failed_;
    metrics_.failed.inc();
    mark(trace::EventKind::kAbandon, req, req.first_sent());
    if (config_.mode == ClientMode::kCohort) {
      slots_.release(static_cast<std::uint32_t>(req.user));
      ++idle_by_page_[static_cast<std::size_t>(req.page_class)];
      return;
    }
    user_busy_[static_cast<std::size_t>(req.user)] = 0;
    schedule_think(req.user);
    return;
  }
  // RFC 6298: RTO floor of 1 s, exponential backoff per retry.
  const SimTime rto = config_.min_rto * (SimTime{1} << req.attempt());
  metrics_.retransmitted.inc();
  mark(trace::EventKind::kRetransmit, req, rto);
  if (config_.mode == ClientMode::kCohort) {
    // Same-instant drops at the same attempt share one (deadline, attempt)
    // ledger group and therefore one timer; the fire drains them together.
    const RtoLedger::Parked parked =
        rto_.park(req.attempt(), sim_.now() + rto, req.page_class, req.first_sent(),
                  static_cast<std::uint32_t>(req.user));
    if (parked.opened) {
      sim_.schedule_in(rto, [this, group = parked.group] { fire_rto_group(group); });
    }
    return;
  }
  const int user = req.user;
  const int page = req.page_class;
  const SimTime first_sent = req.first_sent();
  const int next_attempt = req.attempt() + 1;
  ++rto_backlog_;
  sim_.schedule_in(rto, [this, user, page, first_sent, next_attempt] {
    --rto_backlog_;
    send_request(user, page, first_sent, next_attempt);
  });
}

std::int64_t ClosedLoopClients::idle_users() const {
  // Wakers scattered to a sub-slot whose send event has not fired yet are
  // still thinking — they hold no slot, so they count as idle here or the
  // population conservation invariant breaks mid-tick.
  std::int64_t idle = initial_pending_ + waking_;
  for (std::int64_t n : idle_by_page_) idle += n;
  return idle;
}

std::size_t ClosedLoopClients::memory_bytes() const {
  return user_page_.capacity() * sizeof(std::int32_t) + user_busy_.capacity() +
         idle_by_page_.capacity() * sizeof(std::int64_t) +
         send_scratch_.capacity() * sizeof(std::int64_t) +
         spread_scratch_.capacity() * sizeof(std::int64_t) + slots_.memory_bytes() +
         rto_.memory_bytes() + response_series_.samples().capacity() * sizeof(Sample);
}

double ClosedLoopClients::throughput() const {
  const SimTime elapsed = sim_.now() - start_time_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(completed_) / to_seconds(elapsed);
}

}  // namespace memca::workload
