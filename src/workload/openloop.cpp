#include "workload/openloop.h"

#include "common/check.h"

namespace memca::workload {

OpenLoopSource::OpenLoopSource(Simulator& sim, RequestRouter& router, WorkloadProfile profile,
                               OpenLoopConfig config, Rng rng)
    : sim_(sim),
      router_(router),
      profile_(std::move(profile)),
      chain_(profile_.transitions, profile_.initial),
      config_(config),
      rng_(std::move(rng)) {
  MEMCA_CHECK_MSG(config_.rate_per_sec > 0.0, "arrival rate must be positive");
  if (config_.batched) {
    MEMCA_CHECK_MSG(config_.tick > 0, "batched-mode tick must be positive");
    send_scratch_.resize(chain_.num_states(), 0);
  }
  profile_.validate();
  MEMCA_CHECK_MSG(profile_.num_tiers() == router_.depth(),
                  "profile tier count must match the target system");
  source_ = router_.register_source([this](const queueing::Request& r) { on_complete(r); },
                                    [this](const queueing::Request& r) { on_drop(r); });
}

void OpenLoopSource::start() {
  MEMCA_CHECK_MSG(!running_, "source already running");
  running_ = true;
  markov_state_ = chain_.initial_state(rng_);
  if (config_.batched) {
    next_arrival_ = sim_.schedule_in(config_.tick, [this] { on_tick(); });
    return;
  }
  schedule_next_arrival();
}

void OpenLoopSource::stop() {
  running_ = false;
  next_arrival_.cancel();
}

void OpenLoopSource::schedule_next_arrival() {
  const double mean_gap_us = 1e6 / config_.rate_per_sec;
  const auto gap = static_cast<SimTime>(rng_.exponential(mean_gap_us));
  next_arrival_ = sim_.schedule_in(gap, [this] {
    if (!running_) return;
    markov_state_ = chain_.next(markov_state_, rng_);
    ++generated_;
    send_request(markov_state_, sim_.now(), 0);
    schedule_next_arrival();
  });
}

void OpenLoopSource::on_tick() {
  if (!running_) return;
  const SimTime now = sim_.now();
  const auto arrivals =
      rng_.poisson(config_.rate_per_sec * to_seconds(config_.tick));
  if (arrivals > 0) {
    // Walk the chain once per arrival (the same draw sequence a per-arrival
    // scheduler would make) but accumulate per-page counts and emit one
    // batch-tagged send event per page, so the tiers fold the whole tick's
    // arrivals into one counter flush.
    for (std::int64_t i = 0; i < arrivals; ++i) {
      markov_state_ = chain_.next(markov_state_, rng_);
      ++send_scratch_[static_cast<std::size_t>(markov_state_)];
    }
    generated_ += arrivals;
    const std::uint32_t key = sim_.new_batch_key();
    for (std::size_t p = 0; p < send_scratch_.size(); ++p) {
      if (send_scratch_[p] == 0) continue;
      const int page = static_cast<int>(p);
      const auto count = static_cast<std::int32_t>(send_scratch_[p]);
      send_scratch_[p] = 0;
      sim_.schedule_batched(now, key, [this, page, count] {
        for (std::int32_t i = 0; i < count; ++i) send_request(page, sim_.now(), 0);
      });
    }
  }
  next_arrival_ = sim_.schedule_in(config_.tick, [this] { on_tick(); });
}

void OpenLoopSource::send_request(int page, SimTime first_sent, int attempt) {
  auto req = router_.make_request(source_);
  req->user = -1;
  req->page_class = page;
  req->set_attempt(attempt);
  req->set_first_sent(first_sent);
  req->set_sent(sim_.now());
  profile_.sample_demands_into(page, rng_, req->demand_us);
  router_.submit(req);
}

void OpenLoopSource::on_complete(const queueing::Request& req) {
  ++completed_;
  const SimTime rt = sim_.now() - req.first_sent();
  if (sim_.now() >= config_.stats_warmup) {
    response_times_.record(rt);
    response_series_.append(sim_.now(), static_cast<double>(rt));
  }
}

void OpenLoopSource::on_drop(const queueing::Request& req) {
  ++dropped_attempts_;
  if (!config_.retransmit || req.attempt() >= config_.max_retries) {
    ++failed_;
    return;
  }
  const SimTime rto = config_.min_rto * (SimTime{1} << req.attempt());
  const int page = req.page_class;
  const SimTime first_sent = req.first_sent();
  const int next_attempt = req.attempt() + 1;
  sim_.schedule_in(rto, [this, page, first_sent, next_attempt] {
    send_request(page, first_sent, next_attempt);
  });
}

}  // namespace memca::workload
