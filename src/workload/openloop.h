// Open-loop Poisson request source.
//
// The paper's queueing model (Section IV-B) assumes Poisson arrivals of rate
// λ at each tier; this source realises that assumption for the model-
// validation experiments (Figs. 6 and 7), where a constant-rate stream makes
// fill-up/drain times directly comparable to Equations 4–10.
//
// Optionally applies the same TCP retransmission semantics as the closed-
// loop clients (Fig. 7c needs drops to turn into 1 s+ client latencies).
#pragma once

#include "common/histogram.h"
#include "common/rng.h"
#include "common/timeseries.h"
#include "sim/simulator.h"
#include "workload/markov.h"
#include "workload/profile.h"
#include "workload/router.h"

namespace memca::workload {

struct OpenLoopConfig {
  /// Mean arrival rate, requests per second.
  double rate_per_sec = 500.0;
  /// Retransmit dropped requests after an RFC 6298 RTO?
  bool retransmit = true;
  SimTime min_rto = sec(std::int64_t{1});
  int max_retries = 3;
  SimTime stats_warmup = 0;
  /// Aggregate (cohort-style) arrival scheduling: draw Poisson(rate · tick)
  /// arrivals once per tick and emit them as batch-tagged same-instant send
  /// events, one per page class, instead of one exponential timer per
  /// arrival. The per-window counts are exactly Poisson; only the arrival
  /// *instants* quantize to the tick grid. Scales the source to arbitrary
  /// rates at O(pages) events per tick.
  bool batched = false;
  SimTime tick = msec(50);
};

class OpenLoopSource {
 public:
  /// NOTE: in-flight requests and pending retransmission timers reference
  /// this object; destroy it only after draining the simulator or calling
  /// stop() and running past the last RTO.
  OpenLoopSource(Simulator& sim, RequestRouter& router, WorkloadProfile profile,
                 OpenLoopConfig config, Rng rng);
  ~OpenLoopSource() { stop(); }
  OpenLoopSource(const OpenLoopSource&) = delete;
  OpenLoopSource& operator=(const OpenLoopSource&) = delete;

  /// Starts the Poisson arrival process.
  void start();
  /// Stops generating new arrivals (in-flight requests still complete).
  void stop();

  /// Client-observed response times (first send -> completion), post-warmup.
  const LatencyHistogram& response_times() const { return response_times_; }
  const TimeSeries& response_series() const { return response_series_; }
  std::int64_t generated() const { return generated_; }
  std::int64_t completed() const { return completed_; }
  std::int64_t dropped_attempts() const { return dropped_attempts_; }
  std::int64_t failed() const { return failed_; }

 private:
  void schedule_next_arrival();
  /// Batched mode: one Poisson draw + Markov count walk per tick.
  void on_tick();
  void send_request(int page, SimTime first_sent, int attempt);
  void on_complete(const queueing::Request& req);
  void on_drop(const queueing::Request& req);

  Simulator& sim_;
  RequestRouter& router_;
  WorkloadProfile profile_;
  MarkovChain chain_;
  OpenLoopConfig config_;
  Rng rng_;
  int source_ = -1;
  bool running_ = false;
  /// The pending exponential-gap arrival, or the pending tick in batched
  /// mode (one self-rescheduling event either way).
  EventHandle next_arrival_;
  int markov_state_ = 0;
  /// Batched-mode per-tick send counts; consumed before the tick callback
  /// returns, so it needs no snapshot.
  std::vector<std::int64_t> send_scratch_;

  LatencyHistogram response_times_;
  TimeSeries response_series_;
  std::int64_t generated_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t dropped_attempts_ = 0;
  std::int64_t failed_ = 0;

 public:
  /// Checkpoint of the arrival process. The next-arrival handle round-trips
  /// as a value: the simulator's own restore revives the same (slot, seq)
  /// occupancy, so the handle resolves to the identical pending event.
  struct Snapshot {
    Rng rng{0};
    bool running = false;
    EventHandle next_arrival;
    int markov_state = 0;
    LatencyHistogram response_times;
    std::size_t response_series_size = 0;
    std::int64_t generated = 0;
    std::int64_t completed = 0;
    std::int64_t dropped_attempts = 0;
    std::int64_t failed = 0;
  };

  void capture(Snapshot& out) const {
    out.rng = rng_;
    out.running = running_;
    out.next_arrival = next_arrival_;
    out.markov_state = markov_state_;
    out.response_times = response_times_;
    out.response_series_size = response_series_.size();
    out.generated = generated_;
    out.completed = completed_;
    out.dropped_attempts = dropped_attempts_;
    out.failed = failed_;
  }

  void restore(const Snapshot& snap) {
    rng_ = snap.rng;
    running_ = snap.running;
    next_arrival_ = snap.next_arrival;
    markov_state_ = snap.markov_state;
    response_times_ = snap.response_times;
    response_series_.truncate(snap.response_series_size);
    generated_ = snap.generated;
    completed_ = snap.completed;
    dropped_attempts_ = snap.dropped_attempts;
    failed_ = snap.failed;
  }
};

}  // namespace memca::workload
