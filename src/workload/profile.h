// Workload profiles: page classes, per-tier service demands, navigation.
//
// Mirrors the RUBBoS benchmark the paper evaluates on: a news site modelled
// after Slashdot, where each user session follows a Markov chain over page
// types and each page type has a characteristic per-tier service demand
// (Apache does cheap static work, Tomcat renders, MySQL dominates).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace memca::workload {

struct PageProfile {
  std::string name;
  /// Mean service demand per tier, microseconds at speed 1.0.
  std::vector<double> demand_mean_us;
};

struct WorkloadProfile {
  std::vector<PageProfile> pages;
  /// Markov transition matrix: transitions[i][j] = P(next = j | current = i).
  std::vector<std::vector<double>> transitions;
  /// Initial page distribution for a fresh session.
  std::vector<double> initial;
  /// Mean think time between consecutive requests of one user.
  SimTime think_time_mean = sec(std::int64_t{7});

  std::size_t num_pages() const { return pages.size(); }
  std::size_t num_tiers() const { return pages.empty() ? 0 : pages[0].demand_mean_us.size(); }

  /// Samples the per-tier work of one request of class `page`
  /// (exponentially distributed around the page's means).
  std::vector<double> sample_demands(int page, Rng& rng) const;

  /// Same, writing into `out` (cleared first). Request-rate hot paths reuse
  /// the pooled request's demand vector so steady state never reallocates.
  void sample_demands_into(int page, Rng& rng, std::vector<double>& out) const;

  /// Mean demand of the stationary page mix at `tier` (used to calibrate
  /// tier capacities analytically).
  double mean_demand_us(std::size_t tier) const;

  /// Validates shapes and row sums; aborts on inconsistency.
  void validate() const;
};

/// The RUBBoS-like 3-tier profile used throughout the reproduction
/// (Apache -> Tomcat -> MySQL demands, browse-heavy Markov mix, 7 s think).
WorkloadProfile rubbos_profile();

/// A minimal single-page profile with the given per-tier means (tests and
/// model-validation benches, where a fixed-class stream is easier to reason
/// about analytically).
WorkloadProfile uniform_profile(std::vector<double> demand_mean_us,
                                SimTime think_time_mean = sec(std::int64_t{7}));

}  // namespace memca::workload
