// Closed-loop client population with TCP retransmission semantics.
//
// Reproduces the paper's RUBBoS workload generator: N concurrent users, each
// navigating page classes through a Markov chain with exponentially
// distributed think time (mean 7 s) between consecutive requests.
//
// TCP behaviour on a front-tier drop follows RFC 6298's floor: the client
// retransmits after max(1 s, backoff), doubling per retry. The *client-
// observed* response time spans the first transmission to the final
// completion — this is the 1 s+ tail the paper's Fig. 2/9d measures, and
// the reason finite front-tier queues amplify the tail so dramatically.
//
// Two scheduling models share this implementation (ClientConfig::mode):
//
//  * kExact — the original per-user model: every user owns a think-time
//    timer and a (page, busy) record. Event streams are byte-identical to
//    the historical implementation; this is the reference the cohort model
//    is validated against and the default everywhere.
//  * kCohort — the population is one cohort of statistically identical
//    users. Idle users exist only as a per-page-class count; a periodic
//    think tick draws Binomial(idle[p], 1 - exp(-tick/Z)) wake-ups per page
//    for the upcoming window and advances them through the Markov chain
//    with multinomial count draws — so the draw cost per tick is O(pages)
//    regardless of population size. The wakers are then scattered uniformly
//    over millisecond sub-slots inside the window (for tick << Z the
//    truncated-exponential wake instant is uniform to first order), and each
//    occupied sub-slot emits one *batch-tagged* send event per target page
//    sharing that instant's batch key — so arrival *instants* match the
//    exact model's spread while same-instant batches still drive
//    Simulator::batch_continues whenever the per-slot arrival count exceeds
//    one (every slot, at population scale). Individual identity (a compact
//    slot id) exists only while a request or RTO is in flight; RFC 6298
//    timers aggregate per (deadline, attempt) group in an RtoLedger.
//    Statistically the cohort model quantizes the *start* of each think
//    period to the tick grid (adding ~tick/2 to the effective think time,
//    0.4% at the defaults); arrival instants themselves are not bunched —
//    without the sub-slot scatter, a 50 ms tick at the paper's 3.5k-user
//    calibration lands ~25 arrivals on one instant and the transient queue
//    spike quadruples baseline p50. tests/workload/
//    cohort_equivalence_test.cpp pins the resulting tail-quantile and
//    retransmission-count agreement with the exact model on the calibrated
//    Fig. 2 configuration.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/timeseries.h"
#include "common/windowed_quantile.h"
#include "metrics/registry.h"
#include "sim/simulator.h"
#include "trace/recorder.h"
#include "workload/cohort.h"
#include "workload/markov.h"
#include "workload/profile.h"
#include "workload/router.h"

namespace memca::workload {

/// Pre-resolved client-side metric handles (see metrics::Registry).
/// Detached by default; attach via set_metrics.
struct ClientMetrics {
  metrics::Counter submitted;       ///< attempts sent, incl. retransmissions
  metrics::Counter completed;
  metrics::Counter dropped;         ///< front-tier rejections observed
  metrics::Counter retransmitted;   ///< retries scheduled after a drop
  metrics::Counter failed;          ///< abandoned after max_retries
  metrics::HistogramHandle response_time;  ///< post-warmup end-to-end RT, µs
};

/// How the population schedules itself; see the file comment.
enum class ClientMode {
  kExact,
  kCohort,
};

const char* to_string(ClientMode mode);

struct ClientConfig {
  int num_users = 3500;
  /// RFC 6298 minimum retransmission timeout.
  SimTime min_rto = sec(std::int64_t{1});
  /// Give up after this many retransmissions (the request counts as failed).
  int max_retries = 6;
  /// Response times before this instant are not recorded (warm-up).
  SimTime stats_warmup = 0;
  /// Per-user timers (kExact, byte-stable reference) or aggregate cohort
  /// draws (kCohort, O(pages) per tick — the only mode that scales to
  /// millions of users).
  ClientMode mode = ClientMode::kExact;
  /// Think-tick granularity of the cohort scheduler. Think-period *starts*
  /// quantize to this grid (50 ms against a 7 s think time biases
  /// throughput by ~0.4%, inside the documented equivalence tolerance);
  /// arrival instants are scattered over millisecond sub-slots within each
  /// tick, so the tick length does not bunch arrivals.
  SimTime cohort_tick = msec(50);
  /// Keep the raw post-warmup (time, rt) sample series (Fig. 9d and the
  /// defense ablation read it). Off by default: the series grows with every
  /// completion — unbounded at population scale — and since PR 8 the
  /// reporting path reads streaming sketches instead. The response-time
  /// *histogram* stays always-on: its log-bucketed store is a few KB
  /// regardless of population size.
  bool record_response_series = false;
};

/// What a completion observer (see set_completion_observer) learns about
/// each finished logical request — enough for an online tail watcher to
/// feed latency sketches and detect VLRT completions without reaching into
/// the request pool.
struct CompletionEvent {
  SimTime now = 0;
  std::int64_t request = 0;
  SimTime first_sent = 0;
  std::int32_t user = -1;
  int attempt = 0;
  /// End-to-end client-observed response time (now - first_sent).
  SimTime rt = 0;
  /// False during the statistics warm-up.
  bool post_warmup = false;
};

class ClosedLoopClients {
 public:
  ClosedLoopClients(Simulator& sim, RequestRouter& router, WorkloadProfile profile,
                    ClientConfig config, Rng rng);
  ClosedLoopClients(const ClosedLoopClients&) = delete;
  ClosedLoopClients& operator=(const ClosedLoopClients&) = delete;

  /// Launches all users; each issues its first request after a uniformly
  /// random initial think (desynchronises the population). The cohort model
  /// realises the same ramp by thinning the not-yet-started count per tick.
  void start();

  // -- statistics ----------------------------------------------------------
  /// End-to-end (first send -> completion) response times, post-warmup.
  const LatencyHistogram& response_times() const { return response_times_; }
  /// (completion time, response time µs) samples, post-warmup (Fig. 9d).
  /// Empty unless ClientConfig::record_response_series.
  const TimeSeries& response_series() const { return response_series_; }
  /// Quantile of response times over roughly the last 30 seconds — the
  /// live SLO-dashboard view of the client experience.
  SimTime recent_quantile(double q) const { return recent_.quantile(sim_.now(), q); }
  std::int64_t completed() const { return completed_; }
  /// Front-tier drops observed (each triggers a retransmission).
  std::int64_t dropped_attempts() const { return dropped_attempts_; }
  /// Requests abandoned after max_retries.
  std::int64_t failed() const { return failed_; }
  /// Completed requests that needed at least one retransmission.
  std::int64_t retransmitted_completions() const { return retransmitted_completions_; }
  /// Retransmissions scheduled (RFC 6298 timer armed) but not yet fired —
  /// the in-flight RTO backlog a flight recorder samples per tick.
  int rto_backlog() const {
    return config_.mode == ClientMode::kCohort ? rto_.backlog() : rto_backlog_;
  }
  /// Observed throughput since start, requests/second.
  double throughput() const;

  const ClientConfig& config() const { return config_; }
  ClientMode mode() const { return config_.mode; }

  /// Cohort-mode introspection: users currently idle (counted per page) plus
  /// users still in the start-up ramp. With the in-flight slot count this
  /// conserves the population: idle_users() + user_slots().live() ==
  /// num_users. Zero in exact mode.
  std::int64_t idle_users() const;
  /// Cohort-mode slot allocator (ids for users with a request or RTO in
  /// flight); high_water() bounds every user-indexed side table.
  const UserSlotAllocator& user_slots() const { return slots_; }

  /// Bytes of population-proportional storage currently held (user lanes,
  /// cohort counters, slot/RTO lanes, the optional response series) — the
  /// bytes/user figure BENCH_PR9.json reports. Excludes the fixed-size
  /// histogram/windowed-quantile stores.
  std::size_t memory_bytes() const;

  /// Attaches a span-event recorder for the client lifecycle events
  /// (send / complete / retransmit / abandon). Not owned.
  void set_trace(trace::TraceRecorder* recorder) { trace_ = recorder; }

  /// Attaches pre-resolved metric handles; a default ClientMetrics detaches.
  void set_metrics(ClientMetrics metrics) { metrics_ = metrics; }

  /// Observer invoked once per completed request, after the completion has
  /// been traced and recorded (so an observer that walks the trace stream
  /// already sees the kComplete event). Construction-time wiring, not
  /// checkpointed; null disables.
  void set_completion_observer(std::function<void(const CompletionEvent&)> observer) {
    completion_observer_ = std::move(observer);
  }

 private:
  void schedule_think(int user);
  void send_request(int user, int page, SimTime first_sent, int attempt);
  void on_complete(const queueing::Request& req);
  /// Quantized mode: one completion group of this population's requests.
  /// Statistics per member, then the scheduling tail (cohort slot release +
  /// idle re-count, or exact think scheduling) folded into one pass.
  void on_complete_batch(queueing::Request* const* reqs, std::size_t n);
  /// The statistics half of a completion (counters, trace mark, histograms,
  /// observer) — everything except the mode-specific scheduling tail.
  /// Returns the client-observed response time.
  SimTime record_completion(const queueing::Request& req);
  void on_drop(const queueing::Request& req);
  /// One cohort think tick: binomial wake-ups per page, multinomial page
  /// transitions, one batch-tagged send event per target page.
  void on_cohort_tick();
  /// Sends `count` fresh requests on `page`, one slot id each.
  void send_cohort_burst(int page, std::int32_t count);
  /// Re-sends every retransmission parked in RTO ledger group `group`.
  void fire_rto_group(std::uint32_t group);

  /// Appends a client lifecycle event iff a recorder is attached.
  /// aux = first_sent for send/complete/abandon, the scheduled RTO for
  /// retransmit.
  void mark(trace::EventKind kind, const queueing::Request& req, SimTime aux) {
#ifndef MEMCA_TRACE_DISABLED
    if (trace_ == nullptr) return;
    trace_->record(trace::TraceEvent{sim_.now(), req.id, aux, 0.0, req.user, -1, kind,
                                     static_cast<std::uint8_t>(req.attempt())});
#else
    (void)kind;
    (void)req;
    (void)aux;
#endif
  }

  Simulator& sim_;
  RequestRouter& router_;
  WorkloadProfile profile_;
  MarkovChain chain_;
  ClientConfig config_;
  Rng rng_;
  int source_ = -1;
  // Quantized mode only: skip demand sampling when the system would reject
  // the submit anyway (see send_request). Derived from the target system's
  // service grid at construction — wiring, not state, so not checkpointed.
  bool lazy_demands_ = false;
  trace::TraceRecorder* trace_ = nullptr;
  ClientMetrics metrics_;
  std::function<void(const CompletionEvent&)> completion_observer_;

  // Exact-mode per-user state, SoA lanes (empty in cohort mode): the current
  // page class and the attempt-in-flight flag.
  std::vector<std::int32_t> user_page_;
  std::vector<std::uint8_t> user_busy_;

  // Cohort-mode state. idle_by_page_[p] counts idle users whose current page
  // is p; initial_pending_ counts users still in the start-up ramp (no page
  // yet — the initial distribution is drawn at first wake). send_scratch_
  // (per-page wake totals) and spread_scratch_ (slot-major [sub-slot][page]
  // counts after the uniform scatter) are per-tick transients, consumed
  // before the tick callback returns — they carry nothing across ticks and
  // stay out of the snapshot.
  std::vector<std::int64_t> idle_by_page_;
  std::int64_t initial_pending_ = 0;
  // Wakers whose scattered sub-slot send event has not fired yet: removed
  // from idle_by_page_ (so later draws cannot wake them twice) but holding
  // no slot. idle_users() counts them so the conservation invariant holds
  // at every instant, and a mid-tick snapshot must round-trip the count
  // alongside the pending send events it mirrors.
  std::int64_t waking_ = 0;
  double wake_probability_ = 0.0;
  int num_sub_slots_ = 1;
  SimTime sub_slot_width_ = 0;
  EventHandle tick_;
  UserSlotAllocator slots_;
  RtoLedger rto_;
  std::vector<std::int64_t> send_scratch_;
  std::vector<std::int64_t> spread_scratch_;

  bool started_ = false;
  SimTime start_time_ = 0;

  LatencyHistogram response_times_;
  TimeSeries response_series_;
  WindowedQuantile recent_{sec(std::int64_t{10}), 3};
  std::int64_t completed_ = 0;
  std::int64_t dropped_attempts_ = 0;
  std::int64_t failed_ = 0;
  std::int64_t retransmitted_completions_ = 0;
  int rto_backlog_ = 0;

 public:
  /// Checkpoint of the population: POD lanes for the per-user (exact) or
  /// per-page (cohort) state, the RNG stream position, and every statistic.
  /// The response series is append-only, so it is restored by truncation
  /// (allocation-free); in-flight think-time, tick and RTO events are the
  /// simulator's to restore — the tick handle round-trips by value, the
  /// same idiom as OpenLoopSource. All lanes are captured with
  /// capacity-reusing assigns and restored with plain copies, so rollback
  /// after the first capture never allocates.
  struct Snapshot {
    Rng rng{0};
    std::vector<std::int32_t> user_page;
    std::vector<std::uint8_t> user_busy;
    std::vector<std::int64_t> idle_by_page;
    std::int64_t initial_pending = 0;
    std::int64_t waking = 0;
    EventHandle tick;
    UserSlotAllocator::Snapshot slots;
    RtoLedger::Snapshot rto;
    bool started = false;
    SimTime start_time = 0;
    LatencyHistogram response_times;
    std::size_t response_series_size = 0;
    WindowedQuantile recent{sec(std::int64_t{10}), 3};
    std::int64_t completed = 0;
    std::int64_t dropped_attempts = 0;
    std::int64_t failed = 0;
    std::int64_t retransmitted_completions = 0;
    int rto_backlog = 0;
  };

  void capture(Snapshot& out) const {
    out.rng = rng_;
    out.user_page.assign(user_page_.begin(), user_page_.end());
    out.user_busy.assign(user_busy_.begin(), user_busy_.end());
    out.idle_by_page.assign(idle_by_page_.begin(), idle_by_page_.end());
    out.initial_pending = initial_pending_;
    out.waking = waking_;
    out.tick = tick_;
    slots_.capture(out.slots);
    rto_.capture(out.rto);
    out.started = started_;
    out.start_time = start_time_;
    out.response_times = response_times_;
    out.response_series_size = response_series_.size();
    out.recent = recent_;
    out.completed = completed_;
    out.dropped_attempts = dropped_attempts_;
    out.failed = failed_;
    out.retransmitted_completions = retransmitted_completions_;
    out.rto_backlog = rto_backlog_;
  }

  void restore(const Snapshot& snap) {
    rng_ = snap.rng;
    MEMCA_CHECK(snap.user_page.size() == user_page_.size());
    MEMCA_CHECK(snap.user_busy.size() == user_busy_.size());
    MEMCA_CHECK(snap.idle_by_page.size() == idle_by_page_.size());
    std::copy(snap.user_page.begin(), snap.user_page.end(), user_page_.begin());
    std::copy(snap.user_busy.begin(), snap.user_busy.end(), user_busy_.begin());
    std::copy(snap.idle_by_page.begin(), snap.idle_by_page.end(), idle_by_page_.begin());
    initial_pending_ = snap.initial_pending;
    waking_ = snap.waking;
    tick_ = snap.tick;
    slots_.restore(snap.slots);
    rto_.restore(snap.rto);
    started_ = snap.started;
    start_time_ = snap.start_time;
    response_times_ = snap.response_times;
    response_series_.truncate(snap.response_series_size);
    recent_ = snap.recent;
    completed_ = snap.completed;
    dropped_attempts_ = snap.dropped_attempts;
    failed_ = snap.failed;
    retransmitted_completions_ = snap.retransmitted_completions;
    rto_backlog_ = snap.rto_backlog;
  }
};

}  // namespace memca::workload
