// Closed-loop client population with TCP retransmission semantics.
//
// Reproduces the paper's RUBBoS workload generator: N concurrent users, each
// navigating page classes through a Markov chain with exponentially
// distributed think time (mean 7 s) between consecutive requests.
//
// TCP behaviour on a front-tier drop follows RFC 6298's floor: the client
// retransmits after max(1 s, backoff), doubling per retry. The *client-
// observed* response time spans the first transmission to the final
// completion — this is the 1 s+ tail the paper's Fig. 2/9d measures, and
// the reason finite front-tier queues amplify the tail so dramatically.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/timeseries.h"
#include "common/windowed_quantile.h"
#include "metrics/registry.h"
#include "sim/simulator.h"
#include "trace/recorder.h"
#include "workload/markov.h"
#include "workload/profile.h"
#include "workload/router.h"

namespace memca::workload {

/// Pre-resolved client-side metric handles (see metrics::Registry).
/// Detached by default; attach via set_metrics.
struct ClientMetrics {
  metrics::Counter submitted;       ///< attempts sent, incl. retransmissions
  metrics::Counter completed;
  metrics::Counter dropped;         ///< front-tier rejections observed
  metrics::Counter retransmitted;   ///< retries scheduled after a drop
  metrics::Counter failed;          ///< abandoned after max_retries
  metrics::HistogramHandle response_time;  ///< post-warmup end-to-end RT, µs
};

struct ClientConfig {
  int num_users = 3500;
  /// RFC 6298 minimum retransmission timeout.
  SimTime min_rto = sec(std::int64_t{1});
  /// Give up after this many retransmissions (the request counts as failed).
  int max_retries = 6;
  /// Response times before this instant are not recorded (warm-up).
  SimTime stats_warmup = 0;
};

/// What a completion observer (see set_completion_observer) learns about
/// each finished logical request — enough for an online tail watcher to
/// feed latency sketches and detect VLRT completions without reaching into
/// the request pool.
struct CompletionEvent {
  SimTime now = 0;
  std::int64_t request = 0;
  SimTime first_sent = 0;
  std::int32_t user = -1;
  int attempt = 0;
  /// End-to-end client-observed response time (now - first_sent).
  SimTime rt = 0;
  /// False during the statistics warm-up.
  bool post_warmup = false;
};

class ClosedLoopClients {
 public:
  ClosedLoopClients(Simulator& sim, RequestRouter& router, WorkloadProfile profile,
                    ClientConfig config, Rng rng);
  ClosedLoopClients(const ClosedLoopClients&) = delete;
  ClosedLoopClients& operator=(const ClosedLoopClients&) = delete;

  /// Launches all users; each issues its first request after a uniformly
  /// random initial think (desynchronises the population).
  void start();

  // -- statistics ----------------------------------------------------------
  /// End-to-end (first send -> completion) response times, post-warmup.
  const LatencyHistogram& response_times() const { return response_times_; }
  /// (completion time, response time µs) samples, post-warmup (Fig. 9d).
  const TimeSeries& response_series() const { return response_series_; }
  /// Quantile of response times over roughly the last 30 seconds — the
  /// live SLO-dashboard view of the client experience.
  SimTime recent_quantile(double q) const { return recent_.quantile(sim_.now(), q); }
  std::int64_t completed() const { return completed_; }
  /// Front-tier drops observed (each triggers a retransmission).
  std::int64_t dropped_attempts() const { return dropped_attempts_; }
  /// Requests abandoned after max_retries.
  std::int64_t failed() const { return failed_; }
  /// Completed requests that needed at least one retransmission.
  std::int64_t retransmitted_completions() const { return retransmitted_completions_; }
  /// Retransmissions scheduled (RFC 6298 timer armed) but not yet fired —
  /// the in-flight RTO backlog a flight recorder samples per tick.
  int rto_backlog() const { return rto_backlog_; }
  /// Observed throughput since start, requests/second.
  double throughput() const;

  const ClientConfig& config() const { return config_; }

  /// Attaches a span-event recorder for the client lifecycle events
  /// (send / complete / retransmit / abandon). Not owned.
  void set_trace(trace::TraceRecorder* recorder) { trace_ = recorder; }

  /// Attaches pre-resolved metric handles; a default ClientMetrics detaches.
  void set_metrics(ClientMetrics metrics) { metrics_ = metrics; }

  /// Observer invoked once per completed request, after the completion has
  /// been traced and recorded (so an observer that walks the trace stream
  /// already sees the kComplete event). Construction-time wiring, not
  /// checkpointed; null disables.
  void set_completion_observer(std::function<void(const CompletionEvent&)> observer) {
    completion_observer_ = std::move(observer);
  }

 private:
  struct User {
    int page = 0;
    /// Page class and demands of the attempt currently in flight.
    bool busy = false;
  };

  void schedule_think(int user);
  void send_request(int user, int page, SimTime first_sent, int attempt);
  void on_complete(const queueing::Request& req);
  void on_drop(const queueing::Request& req);

  /// Appends a client lifecycle event iff a recorder is attached.
  /// aux = first_sent for send/complete/abandon, the scheduled RTO for
  /// retransmit.
  void mark(trace::EventKind kind, const queueing::Request& req, SimTime aux) {
#ifndef MEMCA_TRACE_DISABLED
    if (trace_ == nullptr) return;
    trace_->record(trace::TraceEvent{sim_.now(), req.id, aux, 0.0, req.user, -1, kind,
                                     static_cast<std::uint8_t>(req.attempt())});
#else
    (void)kind;
    (void)req;
    (void)aux;
#endif
  }

  Simulator& sim_;
  RequestRouter& router_;
  WorkloadProfile profile_;
  MarkovChain chain_;
  ClientConfig config_;
  Rng rng_;
  int source_ = -1;
  trace::TraceRecorder* trace_ = nullptr;
  ClientMetrics metrics_;
  std::function<void(const CompletionEvent&)> completion_observer_;
  std::vector<User> users_;
  bool started_ = false;
  SimTime start_time_ = 0;

  LatencyHistogram response_times_;
  TimeSeries response_series_;
  WindowedQuantile recent_{sec(std::int64_t{10}), 3};
  std::int64_t completed_ = 0;
  std::int64_t dropped_attempts_ = 0;
  std::int64_t failed_ = 0;
  std::int64_t retransmitted_completions_ = 0;
  int rto_backlog_ = 0;

 public:
  /// Checkpoint of the population: per-user in-flight flags, the RNG stream
  /// position, and every statistic. The response series is append-only, so
  /// it is restored by truncation (allocation-free); in-flight think-time
  /// and RTO events are the simulator's to restore.
  struct Snapshot {
    Rng rng{0};
    std::vector<User> users;
    bool started = false;
    SimTime start_time = 0;
    LatencyHistogram response_times;
    std::size_t response_series_size = 0;
    WindowedQuantile recent{sec(std::int64_t{10}), 3};
    std::int64_t completed = 0;
    std::int64_t dropped_attempts = 0;
    std::int64_t failed = 0;
    std::int64_t retransmitted_completions = 0;
    int rto_backlog = 0;
  };

  void capture(Snapshot& out) const {
    out.rng = rng_;
    out.users.assign(users_.begin(), users_.end());
    out.started = started_;
    out.start_time = start_time_;
    out.response_times = response_times_;
    out.response_series_size = response_series_.size();
    out.recent = recent_;
    out.completed = completed_;
    out.dropped_attempts = dropped_attempts_;
    out.failed = failed_;
    out.retransmitted_completions = retransmitted_completions_;
    out.rto_backlog = rto_backlog_;
  }

  void restore(const Snapshot& snap) {
    rng_ = snap.rng;
    MEMCA_CHECK(snap.users.size() == users_.size());
    std::copy(snap.users.begin(), snap.users.end(), users_.begin());
    started_ = snap.started;
    start_time_ = snap.start_time;
    response_times_ = snap.response_times;
    response_series_.truncate(snap.response_series_size);
    recent_ = snap.recent;
    completed_ = snap.completed;
    dropped_attempts_ = snap.dropped_attempts;
    failed_ = snap.failed;
    retransmitted_completions_ = snap.retransmitted_completions;
    rto_backlog_ = snap.rto_backlog;
  }
};

}  // namespace memca::workload
