// Discrete Markov chain for user navigation between page classes.
#pragma once

#include <vector>

#include "common/rng.h"

namespace memca::workload {

class MarkovChain {
 public:
  /// `transitions[i][j]` = P(next = j | current = i); `initial` is the
  /// distribution of a fresh session's first state. Rows must sum to 1.
  MarkovChain(std::vector<std::vector<double>> transitions, std::vector<double> initial);

  std::size_t num_states() const { return transitions_.size(); }
  /// Samples a fresh session's first state.
  int initial_state(Rng& rng) const;
  /// Samples the successor of `current`.
  int next(int current, Rng& rng) const;

  /// Aggregate counterparts of initial_state()/next() for cohort scheduling:
  /// distribute `count` statistically identical users over the successor
  /// states with one conditional binomial draw per state (a multinomial
  /// sample) instead of `count` individual draws. Counts are *added* into
  /// `out`, which must hold num_states() entries; allocation-free.
  void sample_initial_counts(std::int64_t count, Rng& rng,
                             std::vector<std::int64_t>& out) const;
  void sample_transition_counts(int from, std::int64_t count, Rng& rng,
                                std::vector<std::int64_t>& out) const;

  /// Stationary distribution by power iteration (chains used here are
  /// irreducible and aperiodic; iteration converges fast).
  std::vector<double> stationary(int iterations = 200) const;

 private:
  std::vector<std::vector<double>> transitions_;
  std::vector<double> initial_;
};

}  // namespace memca::workload
