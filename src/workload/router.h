// Multiplexes one RequestSystem's completion/drop callbacks across several
// traffic sources (the closed-loop client population and the MemCA prober
// share the target system, exactly as in the paper's Figure 8 topology).
//
// Each source registers once and receives only its own requests back; the
// router also allocates globally unique request ids and stamps the source.
#pragma once

#include <vector>

#include "common/check.h"
#include "common/inline_callback.h"
#include "queueing/system.h"

namespace memca::workload {

class RequestRouter {
 public:
  using CompleteFn = InlineFunction<void(const queueing::Request&)>;
  using DropFn = InlineFunction<void(const queueing::Request&)>;
  /// Batched completion delivery (quantized mode): a packed span of requests
  /// belonging to ONE source, in completion order.
  using BatchCompleteFn = InlineFunction<void(queueing::Request* const*, std::size_t)>;

  explicit RequestRouter(queueing::RequestSystem& system);
  RequestRouter(const RequestRouter&) = delete;
  RequestRouter& operator=(const RequestRouter&) = delete;

  /// Registers a traffic source; returns its source id.
  int register_source(CompleteFn on_complete, DropFn on_drop);

  /// Upgrades a registered source to batched completion delivery (quantized
  /// mode): when the system hands the router a completion batch, this
  /// source's members are delivered as packed same-source spans instead of
  /// one call per request. Sources without a batch callback keep receiving
  /// per-request on_complete; completion observers always run per request.
  void set_batch_complete(int source, BatchCompleteFn fn);

  /// Registers an observer invoked for EVERY completion (any source),
  /// before the owning source's callback. For measurement taps that need
  /// the full per-tier trace (e.g. the Fig. 7 observed-time histograms).
  void add_completion_observer(CompleteFn fn);

  /// Acquires a pooled request stamped with `source` and a unique id. The
  /// system's pool owns it; submit it (or release it back) before it leaks
  /// a live slot until the pool dies.
  queueing::Request* make_request(int source);

  /// Submits to the underlying system. Returns false if dropped (the
  /// source's drop callback has already run in that case). The pointer must
  /// not be used afterwards.
  bool submit(queueing::Request* req);

  queueing::RequestSystem& system() { return system_; }
  std::size_t depth() const { return system_.depth(); }

  /// Checkpoint of the router: the id allocator plus the registration
  /// counts. Sources/observers registered after the capture are dropped by
  /// restore() (their owners are being torn down or re-made by the caller);
  /// ones registered before it are wiring, left untouched so their bound
  /// closures stay valid.
  struct Snapshot {
    std::size_t num_sources = 0;
    std::size_t num_observers = 0;
    queueing::Request::Id next_id = 1;
  };

  void capture(Snapshot& out) const {
    out.num_sources = sources_.size();
    out.num_observers = completion_observers_.size();
    out.next_id = next_id_;
  }

  void restore(const Snapshot& snap) {
    MEMCA_CHECK(snap.num_sources <= sources_.size() &&
                snap.num_observers <= completion_observers_.size());
    sources_.resize(snap.num_sources);
    completion_observers_.resize(snap.num_observers);
    next_id_ = snap.next_id;
  }

 private:
  struct Source {
    CompleteFn on_complete;
    DropFn on_drop;
    BatchCompleteFn on_complete_batch;
  };

  queueing::RequestSystem& system_;
  std::vector<Source> sources_;
  std::vector<CompleteFn> completion_observers_;
  queueing::Request::Id next_id_ = 1;
};

}  // namespace memca::workload
