#include "workload/router.h"

namespace memca::workload {

namespace {
// Ids are allocated as (serial << 8) | source, so the router can dispatch a
// completion to its source without growing the Request struct.
constexpr int kSourceBits = 8;
constexpr queueing::Request::Id kSourceMask = (queueing::Request::Id{1} << kSourceBits) - 1;
}  // namespace

RequestRouter::RequestRouter(queueing::RequestSystem& system) : system_(system) {
  system_.set_on_complete([this](const queueing::Request& r) {
    const auto source = static_cast<std::size_t>(r.id & kSourceMask);
    MEMCA_CHECK_MSG(source < sources_.size(), "completion for unregistered source");
    for (auto& observer : completion_observers_) observer(r);
    if (sources_[source].on_complete) sources_[source].on_complete(r);
  });
  system_.set_on_drop([this](const queueing::Request& r) {
    const auto source = static_cast<std::size_t>(r.id & kSourceMask);
    MEMCA_CHECK_MSG(source < sources_.size(), "drop for unregistered source");
    if (sources_[source].on_drop) sources_[source].on_drop(r);
  });
}

void RequestRouter::add_completion_observer(CompleteFn fn) {
  MEMCA_CHECK(static_cast<bool>(fn));
  completion_observers_.push_back(std::move(fn));
}

int RequestRouter::register_source(CompleteFn on_complete, DropFn on_drop) {
  MEMCA_CHECK_MSG(sources_.size() < (std::size_t{1} << kSourceBits),
                  "too many traffic sources");
  sources_.push_back(Source{std::move(on_complete), std::move(on_drop)});
  return static_cast<int>(sources_.size() - 1);
}

queueing::Request* RequestRouter::make_request(int source) {
  MEMCA_CHECK(source >= 0 && source < static_cast<int>(sources_.size()));
  queueing::Request* req = system_.acquire();
  req->id = (next_id_++ << kSourceBits) | static_cast<queueing::Request::Id>(source);
  return req;
}

bool RequestRouter::submit(queueing::Request* req) { return system_.submit(req); }

}  // namespace memca::workload
