#include "workload/router.h"

namespace memca::workload {

namespace {
// Ids are allocated as (serial << 8) | source, so the router can dispatch a
// completion to its source without growing the Request struct.
constexpr int kSourceBits = 8;
constexpr queueing::Request::Id kSourceMask = (queueing::Request::Id{1} << kSourceBits) - 1;
}  // namespace

RequestRouter::RequestRouter(queueing::RequestSystem& system) : system_(system) {
  system_.set_on_complete([this](const queueing::Request& r) {
    const auto source = static_cast<std::size_t>(r.id & kSourceMask);
    MEMCA_CHECK_MSG(source < sources_.size(), "completion for unregistered source");
    for (auto& observer : completion_observers_) observer(r);
    if (sources_[source].on_complete) sources_[source].on_complete(r);
  });
  system_.set_on_complete_batch([this](queueing::Request* const* reqs, std::size_t n) {
    // A completion group is usually dominated by one source (the client
    // population); dispatch it as maximal consecutive same-source runs so
    // the common case is a single batched callback. Observers stay
    // per-request — they see the same stream either way.
    std::size_t i = 0;
    while (i < n) {
      const auto source = static_cast<std::size_t>(reqs[i]->id & kSourceMask);
      MEMCA_CHECK_MSG(source < sources_.size(), "completion for unregistered source");
      std::size_t j = i + 1;
      while (j < n && static_cast<std::size_t>(reqs[j]->id & kSourceMask) == source) ++j;
      for (std::size_t k = i; k < j; ++k) {
        for (auto& observer : completion_observers_) observer(*reqs[k]);
      }
      Source& src = sources_[source];
      if (src.on_complete_batch) {
        src.on_complete_batch(reqs + i, j - i);
      } else if (src.on_complete) {
        for (std::size_t k = i; k < j; ++k) src.on_complete(*reqs[k]);
      }
      i = j;
    }
  });
  system_.set_on_drop([this](const queueing::Request& r) {
    const auto source = static_cast<std::size_t>(r.id & kSourceMask);
    MEMCA_CHECK_MSG(source < sources_.size(), "drop for unregistered source");
    if (sources_[source].on_drop) sources_[source].on_drop(r);
  });
}

void RequestRouter::add_completion_observer(CompleteFn fn) {
  MEMCA_CHECK(static_cast<bool>(fn));
  completion_observers_.push_back(std::move(fn));
}

int RequestRouter::register_source(CompleteFn on_complete, DropFn on_drop) {
  MEMCA_CHECK_MSG(sources_.size() < (std::size_t{1} << kSourceBits),
                  "too many traffic sources");
  sources_.push_back(Source{std::move(on_complete), std::move(on_drop), {}});
  return static_cast<int>(sources_.size() - 1);
}

void RequestRouter::set_batch_complete(int source, BatchCompleteFn fn) {
  MEMCA_CHECK(source >= 0 && source < static_cast<int>(sources_.size()));
  MEMCA_CHECK(static_cast<bool>(fn));
  sources_[static_cast<std::size_t>(source)].on_complete_batch = std::move(fn);
}

queueing::Request* RequestRouter::make_request(int source) {
  MEMCA_CHECK(source >= 0 && source < static_cast<int>(sources_.size()));
  queueing::Request* req = system_.acquire();
  req->id = (next_id_++ << kSourceBits) | static_cast<queueing::Request::Id>(source);
  return req;
}

bool RequestRouter::submit(queueing::Request* req) { return system_.submit(req); }

}  // namespace memca::workload
