#include "workload/cohort.h"

#include <algorithm>

namespace memca::workload {

std::uint32_t RtoLedger::alloc_entry() {
  if (entry_free_ != kNone) {
    const std::uint32_t e = entry_free_;
    entry_free_ = entry_next_[e];
    return e;
  }
  const auto e = static_cast<std::uint32_t>(entry_page_.size());
  entry_page_.push_back(0);
  entry_first_sent_.push_back(0);
  entry_user_.push_back(0);
  entry_next_.push_back(kNone);
  return e;
}

std::uint32_t RtoLedger::alloc_group() {
  if (group_free_ != kNone) {
    const std::uint32_t g = group_free_;
    group_free_ = group_head_[g];
    return g;
  }
  const auto g = static_cast<std::uint32_t>(group_deadline_.size());
  group_deadline_.push_back(0);
  group_attempt_.push_back(-1);
  group_head_.push_back(kNone);
  return g;
}

RtoLedger::Parked RtoLedger::park(int attempt, SimTime deadline, std::int32_t page,
                                  SimTime first_sent, std::uint32_t user) {
  MEMCA_DCHECK(attempt >= 0);
  const auto a = static_cast<std::size_t>(attempt);
  if (a >= open_group_.size()) open_group_.resize(a + 1, kNone);

  Parked parked;
  std::uint32_t g = open_group_[a];
  // Deadlines for a given attempt grow strictly with time, so an open group
  // whose deadline differs can never be joined again; replace it.
  if (g == kNone || group_deadline_[g] != deadline) {
    g = alloc_group();
    group_deadline_[g] = deadline;
    group_attempt_[g] = attempt;
    group_head_[g] = kNone;
    open_group_[a] = g;
    parked.opened = true;
  }
  parked.group = g;

  const std::uint32_t e = alloc_entry();
  entry_page_[e] = page;
  entry_first_sent_[e] = first_sent;
  entry_user_[e] = user;
  entry_next_[e] = group_head_[g];
  group_head_[g] = e;
  ++backlog_;
  return parked;
}

std::size_t RtoLedger::memory_bytes() const {
  return entry_page_.capacity() * sizeof(std::int32_t) +
         entry_first_sent_.capacity() * sizeof(SimTime) +
         entry_user_.capacity() * sizeof(std::uint32_t) +
         entry_next_.capacity() * sizeof(std::uint32_t) +
         group_deadline_.capacity() * sizeof(SimTime) +
         group_attempt_.capacity() * sizeof(std::int32_t) +
         group_head_.capacity() * sizeof(std::uint32_t) +
         open_group_.capacity() * sizeof(std::uint32_t);
}

void RtoLedger::capture(Snapshot& out) const {
  out.entry_page.assign(entry_page_.begin(), entry_page_.end());
  out.entry_first_sent.assign(entry_first_sent_.begin(), entry_first_sent_.end());
  out.entry_user.assign(entry_user_.begin(), entry_user_.end());
  out.entry_next.assign(entry_next_.begin(), entry_next_.end());
  out.entry_free = entry_free_;
  out.group_deadline.assign(group_deadline_.begin(), group_deadline_.end());
  out.group_attempt.assign(group_attempt_.begin(), group_attempt_.end());
  out.group_head.assign(group_head_.begin(), group_head_.end());
  out.group_free = group_free_;
  out.open_group.assign(open_group_.begin(), open_group_.end());
  out.backlog = backlog_;
}

namespace {

/// Lanes only grow between a capture and its restore, so shrinking back to
/// the captured size stays within capacity — no allocation.
template <typename T>
void restore_lane(std::vector<T>& lane, const std::vector<T>& snap) {
  MEMCA_CHECK(snap.size() <= lane.capacity() || snap.size() <= lane.size());
  lane.resize(snap.size());
  std::copy(snap.begin(), snap.end(), lane.begin());
}

}  // namespace

void RtoLedger::restore(const Snapshot& snap) {
  restore_lane(entry_page_, snap.entry_page);
  restore_lane(entry_first_sent_, snap.entry_first_sent);
  restore_lane(entry_user_, snap.entry_user);
  restore_lane(entry_next_, snap.entry_next);
  entry_free_ = snap.entry_free;
  restore_lane(group_deadline_, snap.group_deadline);
  restore_lane(group_attempt_, snap.group_attempt);
  restore_lane(group_head_, snap.group_head);
  group_free_ = snap.group_free;
  restore_lane(open_group_, snap.open_group);
  backlog_ = snap.backlog;
}

}  // namespace memca::workload
