#include "workload/profile.h"

#include <cmath>

#include "common/check.h"
#include "workload/markov.h"

namespace memca::workload {

std::vector<double> WorkloadProfile::sample_demands(int page, Rng& rng) const {
  std::vector<double> out;
  sample_demands_into(page, rng, out);
  return out;
}

void WorkloadProfile::sample_demands_into(int page, Rng& rng, std::vector<double>& out) const {
  MEMCA_CHECK(page >= 0 && page < static_cast<int>(pages.size()));
  const PageProfile& p = pages[static_cast<std::size_t>(page)];
  out.clear();
  out.reserve(p.demand_mean_us.size());
  for (double mean : p.demand_mean_us) out.push_back(rng.exponential(mean));
}

double WorkloadProfile::mean_demand_us(std::size_t tier) const {
  MEMCA_CHECK(tier < num_tiers());
  MarkovChain chain(transitions, initial);
  const std::vector<double> pi = chain.stationary();
  double mean = 0.0;
  for (std::size_t i = 0; i < pages.size(); ++i) {
    mean += pi[i] * pages[i].demand_mean_us[tier];
  }
  return mean;
}

void WorkloadProfile::validate() const {
  MEMCA_CHECK_MSG(!pages.empty(), "profile needs at least one page");
  const std::size_t tiers = pages[0].demand_mean_us.size();
  MEMCA_CHECK_MSG(tiers > 0, "pages need at least one tier demand");
  for (const PageProfile& p : pages) {
    MEMCA_CHECK_MSG(p.demand_mean_us.size() == tiers, "all pages must cover the same tiers");
    for (double d : p.demand_mean_us) MEMCA_CHECK_MSG(d > 0.0, "demands must be positive");
  }
  MEMCA_CHECK_MSG(transitions.size() == pages.size(), "transition matrix must be square");
  for (const auto& row : transitions) {
    MEMCA_CHECK_MSG(row.size() == pages.size(), "transition matrix must be square");
    double sum = 0.0;
    for (double p : row) {
      MEMCA_CHECK_MSG(p >= 0.0, "transition probabilities must be non-negative");
      sum += p;
    }
    MEMCA_CHECK_MSG(std::abs(sum - 1.0) < 1e-9, "transition rows must sum to 1");
  }
  MEMCA_CHECK_MSG(initial.size() == pages.size(), "initial distribution size mismatch");
  MEMCA_CHECK_MSG(think_time_mean > 0, "think time must be positive");
}

WorkloadProfile rubbos_profile() {
  WorkloadProfile p;
  //                     name                 Apache  Tomcat  MySQL   (us)
  p.pages = {
      PageProfile{"StoriesOfTheDay", {200.0, 800.0, 1250.0}},
      PageProfile{"ViewStory", {200.0, 1000.0, 1800.0}},
      PageProfile{"ViewComment", {150.0, 900.0, 1650.0}},
      PageProfile{"BrowseCategories", {150.0, 700.0, 1000.0}},
      PageProfile{"Search", {250.0, 1500.0, 2900.0}},
      PageProfile{"PostComment", {300.0, 1800.0, 2450.0}},
  };
  // Browse-heavy navigation, modelled on the default RUBBoS read-mostly mix
  // (~10% writes).            SotD   View   Cmnt   Brws   Srch   Post
  p.transitions = {
      /*StoriesOfTheDay*/ {0.10, 0.45, 0.10, 0.15, 0.15, 0.05},
      /*ViewStory      */ {0.20, 0.20, 0.30, 0.10, 0.10, 0.10},
      /*ViewComment    */ {0.15, 0.25, 0.25, 0.10, 0.10, 0.15},
      /*BrowseCategories*/{0.15, 0.40, 0.10, 0.20, 0.10, 0.05},
      /*Search         */ {0.10, 0.50, 0.10, 0.10, 0.15, 0.05},
      /*PostComment    */ {0.30, 0.30, 0.20, 0.10, 0.05, 0.05},
  };
  p.initial = {0.50, 0.15, 0.05, 0.20, 0.08, 0.02};
  p.think_time_mean = sec(std::int64_t{7});
  p.validate();
  return p;
}

WorkloadProfile uniform_profile(std::vector<double> demand_mean_us, SimTime think_time_mean) {
  WorkloadProfile p;
  p.pages = {PageProfile{"uniform", std::move(demand_mean_us)}};
  p.transitions = {{1.0}};
  p.initial = {1.0};
  p.think_time_mean = think_time_mean;
  p.validate();
  return p;
}

}  // namespace memca::workload
