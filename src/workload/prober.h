// MemCA-BE's prober (Section IV-C, Fig. 8).
//
// Periodically sends a lightweight HTTP request to the target system and
// records its response time. The commander reads windowed percentiles off
// this stream to steer the attack parameters — the attacker has no inside
// visibility into the target, so this is its only damage sensor.
//
// A dropped probe retransmits after the minimum RTO (1 s), exactly like a
// legitimate client's TCP stack, so the prober's latency distribution
// matches what real users experience — including the 1 s+ retransmission
// tail that is the attack's damage signal.
#pragma once

#include <deque>

#include "common/rng.h"
#include "common/timeseries.h"
#include "sim/simulator.h"
#include "workload/router.h"

namespace memca::workload {

struct ProberConfig {
  /// Probe period.
  SimTime period = msec(200);
  /// Per-tier demand of one probe, microseconds (a lightweight page).
  std::vector<double> demand_us = {100.0, 200.0, 300.0};
  /// RFC 6298 minimum RTO for probe retransmission.
  SimTime min_rto = sec(std::int64_t{1});
  /// Retransmissions before a probe is abandoned.
  int max_retries = 2;
  /// Value recorded for an abandoned probe.
  SimTime drop_penalty = sec(std::int64_t{3});
  /// How many recent observations to keep for windowed statistics.
  std::size_t window_capacity = 4096;
};

class Prober {
 public:
  Prober(Simulator& sim, RequestRouter& router, ProberConfig config, Rng rng);
  Prober(const Prober&) = delete;
  Prober& operator=(const Prober&) = delete;

  void start();
  void stop();

  /// Quantile of probe response times observed in the last `window`
  /// (0 if no observations).
  SimTime quantile_in_window(double q, SimTime window) const;
  /// Mean probe response time in the last `window` (0 if none).
  double mean_in_window(SimTime window) const;
  /// Observations in the last `window`.
  std::size_t observations_in_window(SimTime window) const;
  /// Dropped probes in the last `window`.
  std::size_t drops_in_window(SimTime window) const;

  std::int64_t probes_sent() const { return sent_; }
  std::int64_t probes_dropped() const { return dropped_; }
  const TimeSeries& observations() const { return series_; }

 private:
  struct Observation {
    SimTime time;
    SimTime rt;
    bool dropped;
  };

  void send_probe();
  void transmit(SimTime first_sent, int attempt);
  void record(SimTime rt, bool dropped);

  Simulator& sim_;
  RequestRouter& router_;
  ProberConfig config_;
  Rng rng_;
  int source_ = -1;
  std::unique_ptr<PeriodicTask> task_;

  std::deque<Observation> window_;
  TimeSeries series_;
  std::int64_t sent_ = 0;
  std::int64_t dropped_ = 0;
};

}  // namespace memca::workload
