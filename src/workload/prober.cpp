#include "workload/prober.h"

#include <algorithm>

#include "common/check.h"

namespace memca::workload {

Prober::Prober(Simulator& sim, RequestRouter& router, ProberConfig config, Rng rng)
    : sim_(sim), router_(router), config_(std::move(config)), rng_(std::move(rng)) {
  MEMCA_CHECK_MSG(config_.period > 0, "probe period must be positive");
  MEMCA_CHECK_MSG(config_.demand_us.size() == router_.depth(),
                  "probe demand must cover every tier");
  source_ = router_.register_source(
      [this](const queueing::Request& r) {
        record(sim_.now() - r.first_sent(), r.attempt() > 0);
      },
      [this](const queueing::Request& r) {
        ++dropped_;
        if (r.attempt() >= config_.max_retries) {
          record(config_.drop_penalty, true);
          return;
        }
        const SimTime rto = config_.min_rto * (SimTime{1} << r.attempt());
        const SimTime first_sent = r.first_sent();
        const int next_attempt = r.attempt() + 1;
        sim_.schedule_in(rto, [this, first_sent, next_attempt] {
          transmit(first_sent, next_attempt);
        });
      });
}

void Prober::start() {
  MEMCA_CHECK_MSG(task_ == nullptr, "prober already started");
  task_ = std::make_unique<PeriodicTask>(
      sim_, config_.period, [this] { send_probe(); }, /*fire_immediately=*/true);
}

void Prober::stop() {
  if (task_) task_->stop();
}

void Prober::send_probe() {
  ++sent_;
  transmit(sim_.now(), 0);
}

void Prober::transmit(SimTime first_sent, int attempt) {
  auto req = router_.make_request(source_);
  req->page_class = -1;
  req->set_attempt(attempt);
  req->set_first_sent(first_sent);
  req->set_sent(sim_.now());
  // Slight jitter around the nominal demand so probes are not bit-identical.
  req->demand_us.reserve(config_.demand_us.size());
  for (double d : config_.demand_us) req->demand_us.push_back(rng_.exponential(d));
  router_.submit(req);
}

void Prober::record(SimTime rt, bool dropped) {
  window_.push_back(Observation{sim_.now(), rt, dropped});
  while (window_.size() > config_.window_capacity) window_.pop_front();
  series_.append(sim_.now(), static_cast<double>(rt));
}

SimTime Prober::quantile_in_window(double q, SimTime window) const {
  MEMCA_CHECK(q >= 0.0 && q <= 1.0);
  const SimTime cutoff = sim_.now() - window;
  std::vector<SimTime> rts;
  for (const Observation& o : window_) {
    if (o.time >= cutoff) rts.push_back(o.rt);
  }
  if (rts.empty()) return 0;
  std::sort(rts.begin(), rts.end());
  const auto rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(rts.size()) - 1.0,
                       std::ceil(q * static_cast<double>(rts.size())) - 1.0));
  return rts[std::max<std::size_t>(rank, 0)];
}

double Prober::mean_in_window(SimTime window) const {
  const SimTime cutoff = sim_.now() - window;
  double sum = 0.0;
  std::size_t n = 0;
  for (const Observation& o : window_) {
    if (o.time >= cutoff) {
      sum += static_cast<double>(o.rt);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::size_t Prober::observations_in_window(SimTime window) const {
  const SimTime cutoff = sim_.now() - window;
  std::size_t n = 0;
  for (const Observation& o : window_) {
    if (o.time >= cutoff) ++n;
  }
  return n;
}

std::size_t Prober::drops_in_window(SimTime window) const {
  const SimTime cutoff = sim_.now() - window;
  std::size_t n = 0;
  for (const Observation& o : window_) {
    if (o.time >= cutoff && o.dropped) ++n;
  }
  return n;
}

}  // namespace memca::workload
