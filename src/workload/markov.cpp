#include "workload/markov.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace memca::workload {

MarkovChain::MarkovChain(std::vector<std::vector<double>> transitions,
                         std::vector<double> initial)
    : transitions_(std::move(transitions)), initial_(std::move(initial)) {
  MEMCA_CHECK_MSG(!transitions_.empty(), "chain needs at least one state");
  for (const auto& row : transitions_) {
    MEMCA_CHECK_MSG(row.size() == transitions_.size(), "transition matrix must be square");
    double sum = 0.0;
    for (double p : row) sum += p;
    MEMCA_CHECK_MSG(std::abs(sum - 1.0) < 1e-9, "transition rows must sum to 1");
  }
  MEMCA_CHECK_MSG(initial_.size() == transitions_.size(), "initial distribution size mismatch");
}

int MarkovChain::initial_state(Rng& rng) const {
  return static_cast<int>(rng.weighted_index(initial_));
}

int MarkovChain::next(int current, Rng& rng) const {
  MEMCA_CHECK(current >= 0 && current < static_cast<int>(transitions_.size()));
  return static_cast<int>(rng.weighted_index(transitions_[static_cast<std::size_t>(current)]));
}

namespace {

/// Multinomial sample by sequential conditional binomials: state i receives
/// Binomial(remaining, w_i / W_remaining) of the still-unassigned users.
void multinomial_into(const std::vector<double>& weights, std::int64_t count, Rng& rng,
                      std::vector<std::int64_t>& out) {
  MEMCA_DCHECK(out.size() == weights.size());
  std::int64_t remaining = count;
  double weight_left = 0.0;
  for (double w : weights) weight_left += w;
  for (std::size_t i = 0; i + 1 < weights.size() && remaining > 0; ++i) {
    if (weight_left <= 0.0) break;
    const double p = std::min(1.0, weights[i] / weight_left);
    const std::int64_t k = rng.binomial(remaining, p);
    out[i] += k;
    remaining -= k;
    weight_left -= weights[i];
  }
  if (remaining > 0) out[weights.size() - 1] += remaining;
}

}  // namespace

void MarkovChain::sample_initial_counts(std::int64_t count, Rng& rng,
                                        std::vector<std::int64_t>& out) const {
  multinomial_into(initial_, count, rng, out);
}

void MarkovChain::sample_transition_counts(int from, std::int64_t count, Rng& rng,
                                           std::vector<std::int64_t>& out) const {
  MEMCA_CHECK(from >= 0 && from < static_cast<int>(transitions_.size()));
  multinomial_into(transitions_[static_cast<std::size_t>(from)], count, rng, out);
}

std::vector<double> MarkovChain::stationary(int iterations) const {
  const std::size_t n = transitions_.size();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) next[j] += pi[i] * transitions_[i][j];
    }
    pi.swap(next);
  }
  return pi;
}

}  // namespace memca::workload
