// SoA building blocks for cohort-batched client populations.
//
// A cohort groups statistically identical users (same Markov chain, think
// time, retry policy). Idle members carry no per-user state at all — only a
// per-page-class count — so the population costs O(pages) per think tick
// instead of O(users) timers. Individual identity exists only while a user
// has a request or an RTO in flight, and comes from two POD-lane structures:
//
//  * UserSlotAllocator hands out compact user ids bounded by the *concurrent*
//    in-flight population, not the total one, so downstream user-indexed
//    tables (trace marks, the flight recorder's cutoff table) stay small at
//    3.5M users.
//  * RtoLedger aggregates RFC 6298 retransmission timers: drops that share a
//    (deadline, attempt) — e.g. every member of one same-instant arrival
//    batch bounced off a full front queue — park in one group behind a
//    single simulator timer instead of one timer each.
//
// Both are grow-only POD lanes, so memca_snapshot capture/restore extends
// naturally: capture copies lanes aside (reusing snapshot capacity), restore
// copies them back without allocating.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/time.h"

namespace memca::workload {

/// Compact id allocator for cohort members that need individual identity.
/// LIFO free list; ids are dense in [0, high_water).
class UserSlotAllocator {
 public:
  std::uint32_t alloc() {
    ++live_;
    if (!free_.empty()) {
      const std::uint32_t id = free_.back();
      free_.pop_back();
      return id;
    }
    return high_water_++;
  }

  void release(std::uint32_t id) {
    MEMCA_DCHECK(live_ > 0);
    MEMCA_DCHECK(id < high_water_);
    --live_;
    free_.push_back(id);
  }

  /// Ids ever handed out — the size any user-indexed side table needs.
  std::uint32_t high_water() const { return high_water_; }
  /// Currently allocated ids (users with a request or RTO in flight).
  std::int64_t live() const { return live_; }

  std::size_t memory_bytes() const { return free_.capacity() * sizeof(std::uint32_t); }

  /// POD-lane checkpoint. Lanes only grow, so restoring a snapshot into the
  /// allocator it came from never allocates.
  struct Snapshot {
    std::vector<std::uint32_t> free;
    std::uint32_t high_water = 0;
    std::int64_t live = 0;
  };

  void capture(Snapshot& out) const {
    out.free.assign(free_.begin(), free_.end());
    out.high_water = high_water_;
    out.live = live_;
  }

  void restore(const Snapshot& snap) {
    free_.resize(snap.free.size());
    std::copy(snap.free.begin(), snap.free.end(), free_.begin());
    high_water_ = snap.high_water;
    live_ = snap.live;
  }

 private:
  std::vector<std::uint32_t> free_;
  std::uint32_t high_water_ = 0;
  std::int64_t live_ = 0;
};

/// Aggregated RFC 6298 retransmission ledger. Parked retransmissions live in
/// entry lanes chained into per-(deadline, attempt) groups; the client arms
/// one simulator timer per *group* and drains the chain when it fires. Under
/// a millibottleneck burst, hundreds of same-instant drops collapse into a
/// handful of groups — the timer population scales with distinct drop
/// instants, not with dropped users.
class RtoLedger {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Parked {
    std::uint32_t group = kNone;
    /// True when this park opened the group: the caller owns scheduling the
    /// group's (single) fire timer.
    bool opened = false;
  };

  /// Parks one pending retransmission. Joins the open group for `attempt`
  /// when its deadline matches exactly; opens a new group otherwise.
  Parked park(int attempt, SimTime deadline, std::int32_t page, SimTime first_sent,
              std::uint32_t user);

  SimTime deadline(std::uint32_t group) const {
    return group_deadline_[group];
  }
  int attempt(std::uint32_t group) const {
    return static_cast<int>(group_attempt_[group]);
  }

  /// Pops every entry of `group` (newest first — LIFO chain order, which is
  /// deterministic), invoking fn(page, first_sent, user), then frees the
  /// group. Called from the group's single fire timer.
  template <typename F>
  void drain(std::uint32_t group, F&& fn) {
    MEMCA_DCHECK(group_attempt_[group] >= 0);
    const int att = static_cast<int>(group_attempt_[group]);
    if (att < static_cast<int>(open_group_.size()) &&
        open_group_[static_cast<std::size_t>(att)] == group) {
      open_group_[static_cast<std::size_t>(att)] = kNone;
    }
    std::uint32_t e = group_head_[group];
    while (e != kNone) {
      const std::uint32_t next = entry_next_[e];
      --backlog_;
      fn(entry_page_[e], entry_first_sent_[e], entry_user_[e]);
      entry_next_[e] = entry_free_;
      entry_free_ = e;
      e = next;
    }
    group_attempt_[group] = -1;
    group_head_[group] = group_free_;
    group_free_ = group;
  }

  /// Timers armed but not yet fired (parked retransmissions).
  int backlog() const { return backlog_; }

  std::size_t memory_bytes() const;

  /// POD-lane checkpoint (entries, groups, free chains, open-group table).
  struct Snapshot {
    std::vector<std::int32_t> entry_page;
    std::vector<SimTime> entry_first_sent;
    std::vector<std::uint32_t> entry_user;
    std::vector<std::uint32_t> entry_next;
    std::uint32_t entry_free = kNone;
    std::vector<SimTime> group_deadline;
    std::vector<std::int32_t> group_attempt;
    std::vector<std::uint32_t> group_head;
    std::uint32_t group_free = kNone;
    std::vector<std::uint32_t> open_group;
    int backlog = 0;
  };

  void capture(Snapshot& out) const;
  void restore(const Snapshot& snap);

 private:
  std::uint32_t alloc_entry();
  std::uint32_t alloc_group();

  // Entry lanes; entry_next_ doubles as the free chain.
  std::vector<std::int32_t> entry_page_;
  std::vector<SimTime> entry_first_sent_;
  std::vector<std::uint32_t> entry_user_;
  std::vector<std::uint32_t> entry_next_;
  std::uint32_t entry_free_ = kNone;

  // Group lanes; a freed group has attempt -1 and its head threads the group
  // free chain.
  std::vector<SimTime> group_deadline_;
  std::vector<std::int32_t> group_attempt_;
  std::vector<std::uint32_t> group_head_;
  std::uint32_t group_free_ = kNone;

  /// Open (still-joinable) group per attempt number, grown on demand.
  std::vector<std::uint32_t> open_group_;
  int backlog_ = 0;
};

}  // namespace memca::workload
