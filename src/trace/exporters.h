// Trace exporters: Chrome trace-event JSON (Perfetto-compatible timeline)
// and a CSV of attributed tail requests.
//
// The JSON exporter lays the stream out the way an engineer debugging the
// attack wants to see it:
//   * one process per tier, with per-request lanes holding three
//     consecutive slices — wait / service / downstream (the span the local
//     thread stays pinned while the request sits in lower tiers) — so queue
//     build-up and thread-holding are visible at a glance;
//   * a "capacity" counter track per tier (the degradation index D) and a
//     "burst" counter for the attack kernel's ON/OFF windows;
//   * a client process with one lane per user showing RTO-wait slices and
//     drop/complete/abandon instants.
// Open the file at https://ui.perfetto.dev (or chrome://tracing).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/attributor.h"
#include "trace/recorder.h"

namespace memca::trace {

struct ChromeTraceOptions {
  /// Tier/station display names, front first; missing entries fall back to
  /// "tier-<i>".
  std::vector<std::string> tier_names;
  /// Tier count; 0 = tier_names.size() (at least one required overall).
  std::size_t depth = 0;
  /// Emit the per-user client track (RTO waits, drops, completions).
  bool client_track = true;
  /// True (NTierSystem): a request pins its tier thread until the reply
  /// returns, so each non-final tier gets a "downstream" slice from local
  /// service end to completion and its lane stays occupied that long.
  /// False (TandemQueueSystem): residence ends with local service — no
  /// downstream slices, lanes free at each station's service end.
  bool rpc_holding = true;
};

/// Writes the recorder's stream as Chrome trace-event JSON.
void write_chrome_trace(std::ostream& out, const TraceRecorder& recorder,
                        const ChromeTraceOptions& options);

/// Writes one CSV row per attributed *tail* request (total >= threshold):
/// ids, attempt count, per-cause totals, per-tier wait/service splits and
/// the dominant cause.
void write_attribution_csv(std::ostream& out, const TailAttributor& attributor);

}  // namespace memca::trace
