#include "trace/attributor.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace memca::trace {

namespace {

struct Interval {
  SimTime start = 0;
  SimTime end = 0;
};

/// Overlap of [start, end) with a sorted list of disjoint intervals.
SimTime overlap(const std::vector<Interval>& dips, SimTime start, SimTime end) {
  if (end <= start) return 0;
  auto it = std::lower_bound(dips.begin(), dips.end(), start,
                             [](const Interval& d, SimTime v) { return d.end <= v; });
  SimTime total = 0;
  for (; it != dips.end() && it->start < end; ++it) {
    total += std::min(end, it->end) - std::max(start, it->start);
  }
  return total;
}

struct TierSpan {
  SimTime enter = -1;
  SimTime service_start = -1;
  SimTime service_end = -1;
};

/// One attempt (one Request) in flight through the system.
struct AttemptState {
  std::vector<TierSpan> tiers;
};

struct ServiceSpan {
  std::int16_t tier = 0;
  SimTime start = 0;
  SimTime end = 0;
};

/// Accumulator for one logical request (all attempts of one page view).
struct LogicalState {
  SimTime rto_wait = 0;
  std::vector<SimTime> queue_wait;
  std::vector<SimTime> lock_wait;
  std::vector<SimTime> service;
  std::vector<SimTime> rpc_hold;
  std::vector<ServiceSpan> spans;
};

}  // namespace

const char* to_string(Cause cause) {
  switch (cause) {
    case Cause::kQueueWait:
      return "queue-wait";
    case Cause::kLockWait:
      return "lock-wait";
    case Cause::kService:
      return "service";
    case Cause::kDegradedService:
      return "degraded-service";
    case Cause::kRpcHold:
      return "rpc-hold";
    case Cause::kRtoWait:
      return "rto-wait";
    case Cause::kSlack:
      return "slack";
  }
  return "?";
}

SimTime RequestBreakdown::queue_wait_total() const {
  SimTime total = 0;
  for (SimTime t : queue_wait) total += t;
  return total;
}

SimTime RequestBreakdown::lock_wait_total() const {
  SimTime total = 0;
  for (SimTime t : lock_wait) total += t;
  return total;
}

SimTime RequestBreakdown::service_total() const {
  SimTime total = 0;
  for (SimTime t : service) total += t;
  return total;
}

SimTime RequestBreakdown::rpc_hold_total() const {
  SimTime total = 0;
  for (SimTime t : rpc_hold) total += t;
  return total;
}

SimTime RequestBreakdown::of(Cause cause) const {
  switch (cause) {
    case Cause::kQueueWait:
      return queue_wait_total();
    case Cause::kLockWait:
      return lock_wait_total();
    case Cause::kService:
      return service_total() - degraded_service;
    case Cause::kDegradedService:
      return degraded_service;
    case Cause::kRpcHold:
      return rpc_hold_total();
    case Cause::kRtoWait:
      return rto_wait;
    case Cause::kSlack:
      return slack;
  }
  return 0;
}

Cause RequestBreakdown::dominant() const {
  Cause best = Cause::kQueueWait;
  SimTime best_value = of(best);
  for (Cause cause : kAllCauses) {
    const SimTime value = of(cause);
    if (value > best_value) {
      best = cause;
      best_value = value;
    }
  }
  return best;
}

TailAttributor::TailAttributor(const TraceRecorder& recorder, std::size_t depth,
                               AttributorConfig config)
    : depth_(depth), config_(config) {
  MEMCA_CHECK_MSG(depth_ > 0, "attribution needs at least one tier");

  // Pass 1: capacity-dip intervals per tier (multiplier < 1) from the
  // kCapacity marks, closing any open dip at the end of the stream.
  std::vector<std::vector<Interval>> dips(depth_);
  std::vector<double> multiplier(depth_, 1.0);
  std::vector<SimTime> dip_start(depth_, -1);
  SimTime last_time = 0;
  recorder.for_each([&](const TraceEvent& ev) {
    last_time = std::max(last_time, ev.time);
    if (ev.kind != EventKind::kCapacity) return;
    if (ev.tier < 0 || static_cast<std::size_t>(ev.tier) >= depth_) return;
    const auto tier = static_cast<std::size_t>(ev.tier);
    const bool was_dip = multiplier[tier] < 1.0;
    const bool is_dip = ev.value < 1.0;
    if (!was_dip && is_dip) {
      dip_start[tier] = ev.time;
    } else if (was_dip && !is_dip) {
      dips[tier].push_back(Interval{dip_start[tier], ev.time});
      dip_start[tier] = -1;
    }
    multiplier[tier] = ev.value;
  });
  for (std::size_t t = 0; t < depth_; ++t) {
    if (dip_start[t] >= 0) dips[t].push_back(Interval{dip_start[t], last_time});
  }

  // Pass 2: reconstruct attempts and fold them into logical requests.
  std::unordered_map<std::int64_t, AttemptState> in_flight;
  std::unordered_map<std::int32_t, LogicalState> logical;

  auto attempt_of = [&](std::int64_t request) -> AttemptState& {
    AttemptState& a = in_flight[request];
    if (a.tiers.empty()) a.tiers.resize(depth_);
    return a;
  };
  auto logical_of = [&](std::int32_t user) -> LogicalState& {
    LogicalState& l = logical[user];
    if (l.queue_wait.empty()) {
      l.queue_wait.assign(depth_, 0);
      l.lock_wait.assign(depth_, 0);
      l.service.assign(depth_, 0);
      l.rpc_hold.assign(depth_, 0);
    }
    return l;
  };
  // Folds a finished attempt (completed or dropped at `terminal`) into its
  // logical accumulator.
  auto fold = [&](const AttemptState& a, LogicalState& l, SimTime terminal) {
    for (std::size_t t = 0; t < depth_; ++t) {
      const TierSpan& span = a.tiers[t];
      if (span.enter < 0) continue;
      if (span.service_start < 0) {
        // Still waiting for a worker when the attempt ended.
        l.queue_wait[t] += terminal - span.enter;
        continue;
      }
      l.queue_wait[t] += span.service_start - span.enter;
      const SimTime end = span.service_end >= 0 ? span.service_end : terminal;
      l.service[t] += end - span.service_start;
      l.spans.push_back(ServiceSpan{static_cast<std::int16_t>(t), span.service_start, end});
      if (span.service_end >= 0 && t + 1 < depth_ && a.tiers[t + 1].enter >= 0) {
        // rpc-hold: local service done, waiting for a downstream thread.
        l.rpc_hold[t] += a.tiers[t + 1].enter - span.service_end;
      }
    }
  };

  recorder.for_each([&](const TraceEvent& ev) {
    switch (ev.kind) {
      case EventKind::kTierSpan:
        // One consolidated event per tier traversal: enter rides in aux,
        // service start in value (lossless for µs < 2^53), service end is
        // the event's own time.
        if (ev.tier >= 0 && static_cast<std::size_t>(ev.tier) < depth_) {
          TierSpan& span = attempt_of(ev.request).tiers[static_cast<std::size_t>(ev.tier)];
          span.enter = ev.aux;
          span.service_start = static_cast<SimTime>(ev.value);
          span.service_end = ev.time;
        }
        break;
      case EventKind::kDrop: {
        // Fold whatever the dropped attempt traversed (nothing for n-tier
        // front-door rejections, stations 0..i-1 for an interior tandem
        // drop) into the user's logical accumulator; user < 0 marks
        // non-client traffic, which gets no breakdown.
        auto it = in_flight.find(ev.request);
        if (it != in_flight.end()) {
          if (ev.user >= 0) fold(it->second, logical_of(ev.user), ev.time);
          in_flight.erase(it);
        }
        break;
      }
      case EventKind::kRetransmit:
        logical_of(ev.user).rto_wait += ev.aux;
        break;
      case EventKind::kLockWaitSpan:
        // Emitted at grant time; aux = when the transaction first stalled.
        // The span nests inside [enter, service_start) of its tier, so it
        // is carved out of that tier's queue wait at kComplete — a wait
        // that never gets granted stays classified as queue wait.
        if (ev.user >= 0 && ev.tier >= 0 && static_cast<std::size_t>(ev.tier) < depth_) {
          logical_of(ev.user).lock_wait[static_cast<std::size_t>(ev.tier)] +=
              ev.time - ev.aux;
        }
        break;
      case EventKind::kAbandon:
        ++abandoned_;
        logical.erase(ev.user);
        break;
      case EventKind::kComplete: {
        auto it = in_flight.find(ev.request);
        if (ev.user < 0) {  // non-client traffic (prober): no breakdown
          if (it != in_flight.end()) in_flight.erase(it);
          break;
        }
        LogicalState& l = logical_of(ev.user);
        if (it != in_flight.end()) fold(it->second, l, ev.time);

        RequestBreakdown b;
        b.final_request = ev.request;
        b.user = ev.user;
        b.attempts = static_cast<int>(ev.attempt) + 1;
        b.first_sent = ev.aux;
        b.completed = ev.time;
        b.total = ev.time - ev.aux;
        b.queue_wait = std::move(l.queue_wait);
        b.lock_wait = std::move(l.lock_wait);
        b.service = std::move(l.service);
        b.rpc_hold = std::move(l.rpc_hold);
        b.rto_wait = l.rto_wait;
        // Lock waits nest inside the tier's admission→service window, so
        // carve them out of the queue-wait lane (clamped: a wait that
        // straddles a fold terminal cannot drive the lane negative).
        for (std::size_t t = 0; t < depth_; ++t) {
          b.queue_wait[t] -= std::min(b.queue_wait[t], b.lock_wait[t]);
        }
        for (const ServiceSpan& span : l.spans) {
          b.degraded_service +=
              overlap(dips[static_cast<std::size_t>(span.tier)], span.start, span.end);
        }
        b.slack = b.total - (b.queue_wait_total() + b.lock_wait_total() +
                             b.service_total() + b.rpc_hold_total() + b.rto_wait);
        requests_.push_back(std::move(b));
        logical.erase(ev.user);
        if (it != in_flight.end()) in_flight.erase(it);
        break;
      }
      case EventKind::kCapacity:
      case EventKind::kBurstOn:
      case EventKind::kBurstOff:
        break;  // timeline-only marks (pass 1 consumed kCapacity)
    }
  });
}

TailSummary TailAttributor::summary() const {
  TailSummary s;
  s.threshold = config_.tail_threshold;
  s.completed = static_cast<std::int64_t>(requests_.size());
  s.abandoned = abandoned_;
  for (const RequestBreakdown& b : requests_) {
    if (b.total < config_.tail_threshold) continue;
    ++s.tail_count;
    if (b.dominant() == Cause::kRtoWait) ++s.tail_retrans_dominated;
    s.queue_wait_us += b.of(Cause::kQueueWait);
    s.lock_wait_us += b.of(Cause::kLockWait);
    s.service_us += b.of(Cause::kService);
    s.degraded_us += b.of(Cause::kDegradedService);
    s.rpc_hold_us += b.of(Cause::kRpcHold);
    s.rto_wait_us += b.of(Cause::kRtoWait);
    s.slack_us += b.of(Cause::kSlack);
  }
  return s;
}

std::vector<TailAttributor::CauseRow> TailAttributor::tail_rows() const {
  std::vector<CauseRow> rows;
  SimTime grand_total = 0;
  for (Cause cause : kAllCauses) {
    CauseRow row;
    row.cause = cause;
    for (const RequestBreakdown& b : requests_) {
      if (b.total < config_.tail_threshold) continue;
      row.total_us += b.of(cause);
      if (b.dominant() == cause) ++row.dominated;
    }
    grand_total += row.total_us;
    rows.push_back(row);
  }
  for (CauseRow& row : rows) {
    row.share = grand_total > 0
                    ? static_cast<double>(row.total_us) / static_cast<double>(grand_total)
                    : 0.0;
  }
  return rows;
}

}  // namespace memca::trace
