// One span event of the per-request causal trace (memca_trace).
//
// The paper's core claim is a causal chain — memory burst → transient
// capacity dip → queue overflow at the bottleneck tier → upstream RPC
// thread-holding → front-tier drop → TCP retransmission (min RTO 1 s) →
// amplified client tail. Aggregate histograms cannot show *which* mechanism
// produced any given tail request, so every instrumented component appends
// fixed-size binary events to a TraceRecorder and the TailAttributor
// reconstructs per-request span trees from the stream afterwards.
//
// Events are 40-byte trivially-copyable records: recording one is a bounds
// check and a struct store, cheap enough to leave compiled in (a null
// recorder pointer skips the call with one predictable branch).
#pragma once

#include <cstdint>
#include <type_traits>

#include "common/time.h"

namespace memca::trace {

enum class EventKind : std::uint8_t {
  // -- client lifecycle (ClosedLoopClients) --------------------------------
  /// A reply reached the client. aux = first_sent of the logical request,
  /// attempt = the completing TCP attempt (so attempt + 1 attempts were
  /// sent in total). There is no separate client-send event: the send
  /// instant of each attempt is implicit in its first kTierSpan enter time
  /// (or its kDrop), and everything the attributor needs about the logical
  /// request rides on this one completion record.
  kComplete,
  /// The client scheduled a TCP retransmission after a drop. aux = the RTO
  /// (µs) that will elapse before the next attempt.
  kRetransmit,
  /// The client gave up after max_retries. aux = first_sent.
  kAbandon,

  // -- tier/station lifecycle (NTierSystem / TandemQueueSystem) ------------
  /// One whole tier traversal, emitted once when local service ends:
  /// time = service end, aux = queue-enter time, value = service-start time
  /// (stored exactly — a double is lossless for µs timestamps < 2^53). A
  /// single consolidated event instead of enqueue/start/end marks keeps the
  /// recording overhead of a fully traced run under the 5 % budget. The
  /// remaining residence (RPC hold on the downstream tier, then the
  /// synchronous reply chain) needs no extra event: it runs from this
  /// event's time to the next tier's kTierSpan enter and to kComplete.
  kTierSpan,
  /// The system rejected the attempt (front-tier thread exhaustion in the
  /// n-tier model, buffer overflow at any station in the tandem model).
  kDrop,

  // -- capacity / attack marks (cloud + queueing coupling) ------------------
  /// A tier's speed multiplier changed. value = new multiplier, tier set.
  kCapacity,
  /// The memory attack kernel switched ON / OFF.
  kBurstOn,
  kBurstOff,

  // -- OLTP lock table (OltpTierServer) -------------------------------------
  /// One record-lock wait, emitted at grant time: time = grant instant,
  /// aux = the moment the transaction first stalled on a lock (park time for
  /// the WAIT scheme, first abort time under NO_WAIT backoff). The span
  /// nests inside the tier's [enter, service_start) window, so the
  /// attributor carves it out of that tier's queue wait — never new time.
  kLockWaitSpan,
};

const char* to_string(EventKind kind);

struct TraceEvent {
  /// Simulated time of the event (µs).
  SimTime time = 0;
  /// Request (attempt) id, 0 for request-less marks (capacity, bursts).
  std::int64_t request = 0;
  /// Kind-specific time payload: first_sent for client events, the RTO for
  /// kRetransmit, the queue-enter time for kTierSpan, 0 otherwise.
  SimTime aux = 0;
  /// Kind-specific value payload: the multiplier for kCapacity, the
  /// service-start time for kTierSpan.
  double value = 0.0;
  /// Issuing user, -1 when not client traffic (prober, open-loop).
  std::int32_t user = -1;
  /// Tier/station index, -1 for client-side and attack events.
  std::int16_t tier = -1;
  EventKind kind = EventKind::kTierSpan;
  /// TCP attempt number of the request (0 = first transmission).
  std::uint8_t attempt = 0;
};

static_assert(sizeof(TraceEvent) == 40, "span events should stay 40 bytes");
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "span events must be memcpy-safe for the arena");

}  // namespace memca::trace
