// Low-overhead append-only span-event recorder.
//
// A TraceRecorder is an arena of fixed-size chunks of TraceEvents. Each
// simulation (one RubbosTestbed, one sweep cell) owns exactly one recorder
// and appends from the single thread driving that cell's Simulator, so
// recording needs no synchronisation and a parallel sweep stays bit-
// identical to a sequential run: a cell's stream depends only on its own
// event order, never on which worker thread ran it.
//
// Hot-path cost when tracing is off is a null-pointer check at each hook
// site (see emit()). Configuring CMake with -DMEMCA_TRACE=OFF defines
// MEMCA_TRACE_DISABLED and compiles the hooks out to nothing.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/check.h"
#include "trace/trace_event.h"

namespace memca::trace {

class TraceRecorder {
 public:
  struct Config {
    /// Hard cap on recorded events; once reached, further events are
    /// dropped and truncated() turns true. 0 = unbounded.
    std::size_t max_events = 0;
  };

  TraceRecorder() = default;
  explicit TraceRecorder(Config config) : config_(config) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  /// Parks the arena chunks in a thread-local pool for the next recorder on
  /// this thread (a sweep runs one testbed per cell; without the pool each
  /// fresh cell would page-fault its whole arena back in).
  ~TraceRecorder();

  /// Appends one event. Events must be appended in causal (time-
  /// nondecreasing) order — the attributor and exporters rely on it, and
  /// every Simulator-driven hook satisfies it by construction.
  ///
  /// The fast path is one pointer compare plus the 40-byte store; chunk
  /// turnover and the max_events cap live out of line in next_chunk().
  void record(const TraceEvent& event) {
#ifndef MEMCA_TRACE_DISABLED
    if (cursor_ == chunk_end_) [[unlikely]] {
      if (!next_chunk()) return;
    }
    *cursor_++ = event;
#else
    (void)event;
#endif
  }

  std::size_t size() const {
    return cursor_ == nullptr ? 0 : base_ + static_cast<std::size_t>(cursor_ - chunk_begin_);
  }
  bool empty() const { return size() == 0; }
  /// True if max_events was hit and at least one event was dropped.
  bool truncated() const { return truncated_; }

  const TraceEvent& operator[](std::size_t i) const {
    MEMCA_DCHECK(i < size());
    return chunks_[i >> kChunkShift][i & kChunkMask];
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) fn((*this)[i]);
  }

  /// Forgets all events but keeps the allocated chunks for reuse.
  void clear() {
    used_chunks_ = 0;
    base_ = 0;
    chunk_begin_ = chunk_end_ = cursor_ = nullptr;
    truncated_ = false;
  }

  const Config& config() const { return config_; }

  /// Checkpoint: the stream is append-only, so its state is just the event
  /// count (plus the truncation flag). restore() rewinds the cursor into
  /// the already-allocated chunks — events past the mark are garbage that
  /// will be overwritten before size() ever exposes them.
  struct Snapshot {
    std::size_t size = 0;
    bool truncated = false;
  };

  void capture(Snapshot& out) const {
    out.size = size();
    out.truncated = truncated_;
  }

  void restore(const Snapshot& snap) {
    if (snap.size == 0) {
      clear();
    } else {
      const std::size_t open = (snap.size - 1) >> kChunkShift;
      MEMCA_CHECK(open < chunks_.size());
      used_chunks_ = open + 1;
      base_ = open << kChunkShift;
      chunk_begin_ = chunks_[open].get();
      std::size_t room = kChunkMask + 1;
      if (config_.max_events != 0 && config_.max_events - base_ < room) {
        room = config_.max_events - base_;
      }
      chunk_end_ = chunk_begin_ + room;
      cursor_ = chunk_begin_ + (snap.size - base_);
      MEMCA_CHECK(cursor_ <= chunk_end_);
    }
    truncated_ = snap.truncated;
  }

 private:
  /// Opens the next chunk (allocating or reusing one) and repoints the
  /// cursor at it; returns false — dropping the event — once max_events is
  /// reached. A capped final chunk gets a shortened chunk_end_ so the fast
  /// path stops exactly at the limit.
  bool next_chunk();

  // 2048 events (80 KB) per chunk: growth never copies recorded events, and
  // the allocation stays under glibc's 128 KB mmap threshold so freed chunks
  // are recycled warm from the heap instead of being unmapped — a fresh
  // recorder per sweep cell would otherwise page-fault its whole arena in.
  static constexpr std::size_t kChunkShift = 11;
  static constexpr std::size_t kChunkMask = (std::size_t{1} << kChunkShift) - 1;

  // Hot fields first: record() touches only cursor_ and chunk_end_, which
  // must share the recorder's first cache line.
  TraceEvent* cursor_ = nullptr;
  TraceEvent* chunk_end_ = nullptr;
  TraceEvent* chunk_begin_ = nullptr;
  std::size_t base_ = 0;              // events in the chunks before the open one
  std::size_t used_chunks_ = 0;       // chunks holding events (clear() reuses)
  Config config_;
  std::vector<std::unique_ptr<TraceEvent[]>> chunks_;
  bool truncated_ = false;
};

/// Hook-site helper: record iff a recorder is attached. With tracing
/// compiled out (MEMCA_TRACE_DISABLED) this is an empty inline function and
/// the whole hook folds away.
inline void emit(TraceRecorder* recorder, const TraceEvent& event) {
#ifndef MEMCA_TRACE_DISABLED
  if (recorder != nullptr) recorder->record(event);
#else
  (void)recorder;
  (void)event;
#endif
}

}  // namespace memca::trace
