// Low-overhead append-only span-event recorder.
//
// A TraceRecorder owns the span-event stream of one simulation (one
// RubbosTestbed, one sweep cell) and appends from the single thread driving
// that cell's Simulator, so recording needs no synchronisation and a
// parallel sweep stays bit-identical to a sequential run: a cell's stream
// depends only on its own event order, never on which worker thread ran it.
//
// Two capture modes share the same fast path (a pointer compare plus the
// 40-byte store):
//
//  * Arena mode (default): an ever-growing arena of fixed-size chunks that
//    retains every event. Memory grows with traffic, so this is the
//    *debug/offline* mode — full Perfetto exports and exact whole-run
//    attribution, at a cost that cannot stay resident in a production-scale
//    (million-user) run.
//  * Ring mode (Config::ring_capacity > 0): a fixed power-of-two ring that
//    keeps the most recent events and evicts the oldest on wrap. Memory is
//    bounded at construction and steady-state recording allocates nothing —
//    the always-on flight-recorder mode (see src/flightrec). Tail-biased
//    retention is layered on top by the IncidentDetector, which pins the
//    spans of slow requests by copying them out of the ring the moment the
//    request completes, before wrap-around can evict them.
//
// Hot-path cost when tracing is off is a null-pointer check at each hook
// site (see emit()). Configuring CMake with -DMEMCA_TRACE=OFF defines
// MEMCA_TRACE_DISABLED and compiles the hooks out to nothing.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/check.h"
#include "trace/trace_event.h"

namespace memca::trace {

class TraceRecorder {
 public:
  struct Config {
    /// Arena mode: hard cap on recorded events; once reached, further
    /// events are dropped and truncated() turns true. 0 = unbounded.
    std::size_t max_events = 0;
    /// Ring mode: > 0 selects the bounded ring (rounded up to a power of
    /// two events, allocated eagerly at construction). The newest
    /// ring_capacity events are retained; older ones are evicted on wrap.
    /// Mutually exclusive with max_events.
    std::size_t ring_capacity = 0;
  };

  TraceRecorder() = default;
  explicit TraceRecorder(Config config);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  /// Parks the arena chunks in a thread-local pool for the next recorder on
  /// this thread (a sweep runs one testbed per cell; without the pool each
  /// fresh cell would page-fault its whole arena back in).
  ~TraceRecorder();

  /// Appends one event. Events must be appended in causal (time-
  /// nondecreasing) order — the attributor and exporters rely on it, and
  /// every Simulator-driven hook satisfies it by construction.
  ///
  /// The fast path is one pointer compare plus the 40-byte store; chunk
  /// turnover and the max_events cap live out of line in next_chunk().
  void record(const TraceEvent& event) {
#ifndef MEMCA_TRACE_DISABLED
    if (cursor_ == chunk_end_) [[unlikely]] {
      if (!next_chunk()) return;
    }
    *cursor_++ = event;
#else
    (void)event;
#endif
  }

  /// Retained events. In arena mode this is everything recorded; in ring
  /// mode it saturates at the ring capacity once the ring wraps.
  std::size_t size() const {
    const std::size_t total = total_recorded();
    return ring_mask_ != 0 && total > ring_mask_ + 1 ? ring_mask_ + 1 : total;
  }
  bool empty() const { return size() == 0; }
  /// True if max_events was hit and at least one event was dropped.
  bool truncated() const { return truncated_; }

  /// Every event ever recorded, including ring-evicted ones.
  std::size_t total_recorded() const {
    return cursor_ == nullptr ? 0 : base_ + static_cast<std::size_t>(cursor_ - chunk_begin_);
  }

  bool ring_mode() const { return ring_mask_ != 0; }
  /// Ring mode only: true once the oldest events have been evicted.
  bool wrapped() const { return ring_mask_ != 0 && total_recorded() > ring_mask_ + 1; }

  /// Bytes of event storage currently allocated. Constant for the lifetime
  /// of a ring recorder (the memory-budget guarantee flightrec builds on);
  /// grows with traffic in arena mode.
  std::size_t bytes_retained() const {
    if (ring_mask_ != 0) return (ring_mask_ + 1) * sizeof(TraceEvent);
    return chunks_.size() * (kChunkMask + 1) * sizeof(TraceEvent);
  }

  /// Indexing is in causal order over the *retained* window: [0] is the
  /// oldest retained event, [size()-1] the newest.
  const TraceEvent& operator[](std::size_t i) const {
    MEMCA_DCHECK(i < size());
    if (ring_mask_ != 0) {
      const std::size_t first = total_recorded() - size();
      return ring_[(first + i) & ring_mask_];
    }
    return chunks_[i >> kChunkShift][i & kChunkMask];
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) fn((*this)[i]);
  }

  /// Forgets all events but keeps the allocated storage for reuse.
  void clear() {
    if (ring_mask_ != 0) {
      base_ = 0;
      cursor_ = chunk_begin_;
      truncated_ = false;
      return;
    }
    used_chunks_ = 0;
    base_ = 0;
    chunk_begin_ = chunk_end_ = cursor_ = nullptr;
    truncated_ = false;
  }

  const Config& config() const { return config_; }

  /// Checkpoint. Arena mode: the stream is append-only, so its state is
  /// just the event count (plus the truncation flag) and restore() rewinds
  /// the cursor into the already-allocated chunks — events past the mark
  /// are garbage that will be overwritten before size() ever exposes them.
  /// Ring mode: a later wrap overwrites pre-checkpoint events in place, so
  /// capture() copies the retained window out (the one place ring mode may
  /// allocate — capture, never record/restore) and restore() memcpys it
  /// back into the exact physical slots it came from, making post-rollback
  /// replay byte-identical to the original run.
  struct Snapshot {
    std::size_t size = 0;
    bool truncated = false;
    std::vector<TraceEvent> ring_events;  // ring mode: retained window, causal order
  };

  void capture(Snapshot& out) const {
    out.truncated = truncated_;
    if (ring_mask_ != 0) {
      out.size = total_recorded();
      const std::size_t retained = size();
      out.ring_events.resize(retained);
      for (std::size_t i = 0; i < retained; ++i) out.ring_events[i] = (*this)[i];
      return;
    }
    out.size = size();
    out.ring_events.clear();
  }

  void restore(const Snapshot& snap) {
    if (ring_mask_ != 0) {
      const std::size_t retained = snap.ring_events.size();
      MEMCA_CHECK(retained <= snap.size);
      const std::size_t first = snap.size - retained;
      for (std::size_t i = 0; i < retained; ++i) {
        ring_[(first + i) & ring_mask_] = snap.ring_events[i];
      }
      const std::size_t lap = snap.size & ring_mask_;
      base_ = snap.size - lap;
      cursor_ = chunk_begin_ + lap;
      truncated_ = snap.truncated;
      return;
    }
    if (snap.size == 0) {
      clear();
    } else {
      const std::size_t open = (snap.size - 1) >> kChunkShift;
      MEMCA_CHECK(open < chunks_.size());
      used_chunks_ = open + 1;
      base_ = open << kChunkShift;
      chunk_begin_ = chunks_[open].get();
      std::size_t room = kChunkMask + 1;
      if (config_.max_events != 0 && config_.max_events - base_ < room) {
        room = config_.max_events - base_;
      }
      chunk_end_ = chunk_begin_ + room;
      cursor_ = chunk_begin_ + (snap.size - base_);
      MEMCA_CHECK(cursor_ <= chunk_end_);
    }
    truncated_ = snap.truncated;
  }

 private:
  /// Arena mode: opens the next chunk (allocating or reusing one) and
  /// repoints the cursor at it; returns false — dropping the event — once
  /// max_events is reached. A capped final chunk gets a shortened
  /// chunk_end_ so the fast path stops exactly at the limit. Ring mode:
  /// wraps the cursor back to the ring start (evicting the oldest lap) and
  /// never fails or allocates.
  bool next_chunk();

  // 2048 events (80 KB) per chunk: growth never copies recorded events, and
  // the allocation stays under glibc's 128 KB mmap threshold so freed chunks
  // are recycled warm from the heap instead of being unmapped — a fresh
  // recorder per sweep cell would otherwise page-fault its whole arena in.
  static constexpr std::size_t kChunkShift = 11;
  static constexpr std::size_t kChunkMask = (std::size_t{1} << kChunkShift) - 1;

  // Hot fields first: record() touches only cursor_ and chunk_end_, which
  // must share the recorder's first cache line.
  TraceEvent* cursor_ = nullptr;
  TraceEvent* chunk_end_ = nullptr;
  TraceEvent* chunk_begin_ = nullptr;
  std::size_t base_ = 0;              // arena: events before the open chunk; ring: evicted laps
  std::size_t used_chunks_ = 0;       // chunks holding events (clear() reuses)
  std::size_t ring_mask_ = 0;         // ring capacity - 1; 0 = arena mode
  Config config_;
  std::vector<std::unique_ptr<TraceEvent[]>> chunks_;
  std::unique_ptr<TraceEvent[]> ring_;
  bool truncated_ = false;
};

/// Hook-site helper: record iff a recorder is attached. With tracing
/// compiled out (MEMCA_TRACE_DISABLED) this is an empty inline function and
/// the whole hook folds away.
inline void emit(TraceRecorder* recorder, const TraceEvent& event) {
#ifndef MEMCA_TRACE_DISABLED
  if (recorder != nullptr) recorder->record(event);
#else
  (void)recorder;
  (void)event;
#endif
}

}  // namespace memca::trace
