#include "trace/recorder.h"

#include "trace/trace_event.h"

namespace memca::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kComplete:
      return "complete";
    case EventKind::kRetransmit:
      return "retransmit";
    case EventKind::kAbandon:
      return "abandon";
    case EventKind::kTierSpan:
      return "tier-span";
    case EventKind::kDrop:
      return "drop";
    case EventKind::kCapacity:
      return "capacity";
    case EventKind::kBurstOn:
      return "burst-on";
    case EventKind::kBurstOff:
      return "burst-off";
    case EventKind::kLockWaitSpan:
      return "lock-wait-span";
  }
  return "?";
}

namespace {

// Retired arena chunks, parked per thread. Handing a warm chunk to the next
// recorder keeps its pages resident: glibc trims freed 80 KB blocks back to
// the OS under load, so without the pool every fresh testbed (one per sweep
// cell, one per benchmark iteration) page-faults its whole arena in again.
// The cap bounds idle memory at ~5 MB per thread.
constexpr std::size_t kPoolMaxChunks = 64;
thread_local std::vector<std::unique_ptr<TraceEvent[]>> chunk_pool;

}  // namespace

TraceRecorder::~TraceRecorder() {
  for (auto& chunk : chunks_) {
    if (chunk_pool.size() >= kPoolMaxChunks) break;
    chunk_pool.push_back(std::move(chunk));
  }
}

bool TraceRecorder::next_chunk() {
  const std::size_t current = size();
  if (config_.max_events != 0 && current >= config_.max_events) {
    truncated_ = true;
    return false;
  }
  if (used_chunks_ == chunks_.size()) {
    if (!chunk_pool.empty()) {
      chunks_.push_back(std::move(chunk_pool.back()));
      chunk_pool.pop_back();
    } else {
      // for_overwrite: events are written before they are ever read, so the
      // zero-fill of a plain make_unique would be pure overhead.
      chunks_.push_back(std::make_unique_for_overwrite<TraceEvent[]>(kChunkMask + 1));
    }
  }
  chunk_begin_ = chunks_[used_chunks_].get();
  ++used_chunks_;
  base_ = current;
  cursor_ = chunk_begin_;
  std::size_t room = kChunkMask + 1;
  if (config_.max_events != 0 && config_.max_events - current < room) {
    room = config_.max_events - current;
  }
  chunk_end_ = chunk_begin_ + room;
  return true;
}

}  // namespace memca::trace
