#include "trace/recorder.h"

#include <array>

#include "trace/trace_event.h"

namespace memca::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kComplete:
      return "complete";
    case EventKind::kRetransmit:
      return "retransmit";
    case EventKind::kAbandon:
      return "abandon";
    case EventKind::kTierSpan:
      return "tier-span";
    case EventKind::kDrop:
      return "drop";
    case EventKind::kCapacity:
      return "capacity";
    case EventKind::kBurstOn:
      return "burst-on";
    case EventKind::kBurstOff:
      return "burst-off";
    case EventKind::kLockWaitSpan:
      return "lock-wait-span";
  }
  return "?";
}

namespace {

// Retired arena chunks, parked per thread. Handing a warm chunk to the next
// recorder keeps its pages resident: glibc trims freed 80 KB blocks back to
// the OS under load, so without the pool every fresh testbed (one per sweep
// cell, one per benchmark iteration) page-faults its whole arena in again.
// The cap bounds idle memory at ~5 MB per thread.
constexpr std::size_t kPoolMaxChunks = 64;
thread_local std::vector<std::unique_ptr<TraceEvent[]>> chunk_pool;

// Retired ring buffers, parked the same way. A sweep builds one flight
// ring per cell, each a multi-megabyte block that glibc mmaps and hands
// straight back to the OS on free — so without the pool every fresh cell
// pays the allocation, the default-initialisation, and the first-touch
// page faults of the whole ring again. Ring contents are garbage to a new
// recorder by construction (slots are written before they are ever read),
// so reuse is just a pointer handoff.
struct PooledRing {
  std::size_t capacity = 0;
  std::unique_ptr<TraceEvent[]> buf;
};
constexpr std::size_t kPoolMaxRings = 2;
thread_local std::array<PooledRing, kPoolMaxRings> ring_pool;

std::unique_ptr<TraceEvent[]> take_pooled_ring(std::size_t capacity) {
  for (PooledRing& slot : ring_pool) {
    if (slot.capacity == capacity && slot.buf != nullptr) {
      slot.capacity = 0;
      return std::move(slot.buf);
    }
  }
  return std::make_unique_for_overwrite<TraceEvent[]>(capacity);
}

void park_pooled_ring(std::size_t capacity, std::unique_ptr<TraceEvent[]> buf) {
  for (PooledRing& slot : ring_pool) {
    if (slot.buf == nullptr) {
      slot.capacity = capacity;
      slot.buf = std::move(buf);
      return;
    }
  }
}

}  // namespace

TraceRecorder::TraceRecorder(Config config) : config_(config) {
#ifndef MEMCA_TRACE_DISABLED
  if (config_.ring_capacity != 0) {
    MEMCA_CHECK(config_.max_events == 0);  // modes are mutually exclusive
    std::size_t cap = 2;
    while (cap < config_.ring_capacity) cap <<= 1;
    ring_ = take_pooled_ring(cap);
    ring_mask_ = cap - 1;
    chunk_begin_ = ring_.get();
    chunk_end_ = chunk_begin_ + cap;
    cursor_ = chunk_begin_;
  }
#endif
}

TraceRecorder::~TraceRecorder() {
  for (auto& chunk : chunks_) {
    if (chunk_pool.size() >= kPoolMaxChunks) break;
    chunk_pool.push_back(std::move(chunk));
  }
  if (ring_ != nullptr) park_pooled_ring(ring_mask_ + 1, std::move(ring_));
}

bool TraceRecorder::next_chunk() {
  if (ring_mask_ != 0) {
    // Wrap in place: the oldest lap is evicted, nothing is allocated.
    base_ += ring_mask_ + 1;
    cursor_ = chunk_begin_;
    return true;
  }
  const std::size_t current = size();
  if (config_.max_events != 0 && current >= config_.max_events) {
    truncated_ = true;
    return false;
  }
  if (used_chunks_ == chunks_.size()) {
    if (!chunk_pool.empty()) {
      chunks_.push_back(std::move(chunk_pool.back()));
      chunk_pool.pop_back();
    } else {
      // for_overwrite: events are written before they are ever read, so the
      // zero-fill of a plain make_unique would be pure overhead.
      chunks_.push_back(std::make_unique_for_overwrite<TraceEvent[]>(kChunkMask + 1));
    }
  }
  chunk_begin_ = chunks_[used_chunks_].get();
  ++used_chunks_;
  base_ = current;
  cursor_ = chunk_begin_;
  std::size_t room = kChunkMask + 1;
  if (config_.max_events != 0 && config_.max_events - current < room) {
    room = config_.max_events - current;
  }
  chunk_end_ = chunk_begin_ + room;
  return true;
}

}  // namespace memca::trace
