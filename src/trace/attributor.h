// Tail attribution: classify each logical request's end-to-end latency.
//
// Replays a TraceRecorder stream and reconstructs every *logical* client
// request (all TCP attempts of one page view, linked by issuing user) into a
// breakdown of where its wall-clock time went:
//
//   queue wait        per-tier time between admission and service start
//   lock wait         portion of the queue wait spent stalled on record
//                       locks in an OLTP tier (carved out of queue wait via
//                       kLockWaitSpan events — the convoy signal)
//   service           per-tier wall time in service, split into the part
//   degraded service    overlapping a capacity dip (multiplier < 1) and the
//                       nominal remainder
//   rpc hold          local service done, thread held waiting for a
//                       downstream thread (the cross-tier coupling span)
//   RTO wait          time spent between a front-tier drop and the TCP
//                       retransmission that follows (≥ 1 s each, RFC 6298)
//   slack             whatever remains (network/think slack; zero in the
//                       current instantaneous-network model)
//
// The dominant category of each request is the paper's request-level causal
// verdict: in the calibrated attack scenario the >1 s client tail must be
// retransmission-dominated (Section III/IV, "very long response times are
// dominated by retransmissions").
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "trace/recorder.h"

namespace memca::trace {

enum class Cause {
  kQueueWait,
  kLockWait,
  kService,
  kDegradedService,
  kRpcHold,
  kRtoWait,
  kSlack,
};

const char* to_string(Cause cause);

/// All Cause values, in reporting order.
inline constexpr Cause kAllCauses[] = {Cause::kQueueWait,  Cause::kLockWait,
                                       Cause::kService,    Cause::kDegradedService,
                                       Cause::kRpcHold,    Cause::kRtoWait,
                                       Cause::kSlack};

struct RequestBreakdown {
  /// Id of the attempt that finally completed.
  std::int64_t final_request = 0;
  std::int32_t user = -1;
  /// Transmissions of the logical request (1 = completed first try).
  int attempts = 0;
  SimTime first_sent = 0;
  SimTime completed = 0;
  /// End-to-end client-observed response time (completed - first_sent).
  SimTime total = 0;
  /// Per-tier spans, summed over every attempt that reached the tier.
  /// queue_wait excludes lock_wait: the two partition [enter, service_start).
  std::vector<SimTime> queue_wait;
  std::vector<SimTime> lock_wait;
  std::vector<SimTime> service;
  std::vector<SimTime> rpc_hold;
  /// Portion of the service spans overlapping capacity dips.
  SimTime degraded_service = 0;
  SimTime rto_wait = 0;
  SimTime slack = 0;

  SimTime queue_wait_total() const;
  SimTime lock_wait_total() const;
  SimTime service_total() const;
  SimTime rpc_hold_total() const;
  SimTime of(Cause cause) const;
  /// Largest category; ties break in kAllCauses order (deterministic).
  Cause dominant() const;
};

/// Small aggregate suitable for sweep results (default-constructible,
/// trivially comparable field by field for determinism tests).
struct TailSummary {
  SimTime threshold = 0;
  /// Logical client requests that completed / were abandoned post-warmup.
  std::int64_t completed = 0;
  std::int64_t abandoned = 0;
  /// Completed requests with total >= threshold, and how many of those are
  /// dominated by RTO wait (the paper's retransmission-dominated tail).
  std::int64_t tail_count = 0;
  std::int64_t tail_retrans_dominated = 0;
  /// Per-cause totals (µs) summed over the tail requests.
  SimTime queue_wait_us = 0;
  SimTime lock_wait_us = 0;
  SimTime service_us = 0;
  SimTime degraded_us = 0;
  SimTime rpc_hold_us = 0;
  SimTime rto_wait_us = 0;
  SimTime slack_us = 0;

  double retrans_dominated_share() const {
    return tail_count > 0
               ? static_cast<double>(tail_retrans_dominated) / static_cast<double>(tail_count)
               : 0.0;
  }
};

struct AttributorConfig {
  /// A completed request is "tail" when total >= tail_threshold. The 1 s
  /// default matches the paper's client-SLO framing (min RTO).
  SimTime tail_threshold = sec(std::int64_t{1});
};

class TailAttributor {
 public:
  /// Replays `recorder` (depth = tier/station count of the traced system).
  /// The stream must be causally ordered, which every recorder filled
  /// through the instrumentation hooks is.
  TailAttributor(const TraceRecorder& recorder, std::size_t depth,
                 AttributorConfig config = {});

  /// Completed logical requests in completion order.
  const std::vector<RequestBreakdown>& requests() const { return requests_; }
  std::int64_t abandoned() const { return abandoned_; }
  std::size_t depth() const { return depth_; }
  SimTime tail_threshold() const { return config_.tail_threshold; }

  TailSummary summary() const;

  /// One row per cause: total µs over tail requests, share of the summed
  /// tail time, and how many tail requests it dominates.
  struct CauseRow {
    Cause cause = Cause::kQueueWait;
    SimTime total_us = 0;
    double share = 0.0;
    std::int64_t dominated = 0;
  };
  std::vector<CauseRow> tail_rows() const;

 private:
  std::size_t depth_;
  AttributorConfig config_;
  std::vector<RequestBreakdown> requests_;
  std::int64_t abandoned_ = 0;
};

}  // namespace memca::trace
