#include "trace/exporters.h"

#include <algorithm>
#include <limits>
#include <ostream>
#include <unordered_map>

#include "common/check.h"

namespace memca::trace {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Streams trace-event objects with the shared comma/newline bookkeeping.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {
    out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  }
  ~JsonWriter() { out_ << "\n]}\n"; }

  std::ostream& begin() {
    if (!first_) out_ << ",\n";
    first_ = false;
    return out_;
  }

  void process_name(int pid, const std::string& name) {
    begin() << "{\"ph\":\"M\",\"pid\":" << pid
            << ",\"name\":\"process_name\",\"args\":{\"name\":\"" << json_escape(name)
            << "\"}}";
  }

  void slice(int pid, std::int64_t tid, const char* name, SimTime start, SimTime dur,
             std::int64_t request, std::int32_t user, int attempt) {
    begin() << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":" << start
            << ",\"dur\":" << dur << ",\"name\":\"" << name
            << "\",\"args\":{\"request\":" << request << ",\"user\":" << user
            << ",\"attempt\":" << attempt << "}}";
  }

  void instant(int pid, std::int64_t tid, const char* name, SimTime ts,
               std::int64_t request) {
    begin() << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":" << tid
            << ",\"ts\":" << ts << ",\"name\":\"" << name
            << "\",\"args\":{\"request\":" << request << "}}";
  }

  void counter(int pid, const char* name, SimTime ts, double value) {
    begin() << "{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":0,\"ts\":" << ts
            << ",\"name\":\"" << name << "\",\"args\":{\"value\":" << value << "}}";
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

/// Per-tier lane allocator: lanes are per-request rows inside a tier's
/// process. A kTierSpan arrives at its service-end time but its slices
/// reach back to the queue-enter time, so lanes are handed out first-fit
/// against each lane's busy-until horizon: a request takes the lowest lane
/// whose previous occupant's display interval ended at or before this
/// request's enter. Open lanes are parked at the max horizon until the
/// request completes (or drops) and the real end is known. First-fit keeps
/// concurrent residents stacked compactly without overlap.
class Lanes {
 public:
  std::int64_t acquire(SimTime enter) {
    for (std::size_t i = 0; i < busy_until_.size(); ++i) {
      if (busy_until_[i] <= enter) {
        busy_until_[i] = kOpen;
        return static_cast<std::int64_t>(i);
      }
    }
    busy_until_.push_back(kOpen);
    return static_cast<std::int64_t>(busy_until_.size()) - 1;
  }
  void release(std::int64_t lane, SimTime end) {
    busy_until_[static_cast<std::size_t>(lane)] = end;
  }

 private:
  static constexpr SimTime kOpen = std::numeric_limits<SimTime>::max();
  std::vector<SimTime> busy_until_;
};

struct TierState {
  SimTime service_end = -1;
  std::int64_t lane = -1;
};

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceRecorder& recorder,
                        const ChromeTraceOptions& options) {
  const std::size_t depth =
      options.depth != 0 ? options.depth : options.tier_names.size();
  MEMCA_CHECK_MSG(depth > 0, "chrome trace export needs the system depth");

  auto tier_name = [&](std::size_t t) {
    return t < options.tier_names.size() ? options.tier_names[t]
                                         : "tier-" + std::to_string(t);
  };
  const int client_pid = 0;
  const int attack_pid = static_cast<int>(depth) + 1;

  JsonWriter json(out);
  if (options.client_track) json.process_name(client_pid, "clients");
  for (std::size_t t = 0; t < depth; ++t) {
    json.process_name(static_cast<int>(t) + 1, tier_name(t));
  }
  json.process_name(attack_pid, "attack");

  std::vector<Lanes> lanes(depth);
  std::unordered_map<std::int64_t, std::vector<TierState>> in_flight;
  auto state_of = [&](std::int64_t request) -> std::vector<TierState>& {
    std::vector<TierState>& s = in_flight[request];
    if (s.empty()) s.resize(depth);
    return s;
  };

  recorder.for_each([&](const TraceEvent& ev) {
    const bool tier_ok = ev.tier >= 0 && static_cast<std::size_t>(ev.tier) < depth;
    const auto t = tier_ok ? static_cast<std::size_t>(ev.tier) : std::size_t{0};
    const int tier_pid = static_cast<int>(t) + 1;
    switch (ev.kind) {
      case EventKind::kTierSpan: {
        // One event per tier traversal: enter in aux, service start in
        // value, service end is the event's time. The wait and service
        // slices are fully known here; the downstream slice (thread pinned
        // while the request sits in lower tiers) waits for kComplete.
        if (!tier_ok) break;
        const SimTime enter = ev.aux;
        const SimTime service_start = static_cast<SimTime>(ev.value);
        const std::int64_t lane = lanes[t].acquire(enter);
        if (service_start > enter) {
          json.slice(tier_pid, lane, "wait", enter, service_start - enter, ev.request,
                     ev.user, ev.attempt);
        }
        json.slice(tier_pid, lane, "service", service_start, ev.time - service_start,
                   ev.request, ev.user, ev.attempt);
        if (options.rpc_holding) {
          TierState& s = state_of(ev.request)[t];
          s.service_end = ev.time;
          s.lane = lane;
        } else {
          lanes[t].release(lane, ev.time);
        }
        break;
      }
      case EventKind::kDrop: {
        auto it = in_flight.find(ev.request);
        if (it != in_flight.end()) {
          for (std::size_t i = 0; i < depth; ++i) {
            if (it->second[i].lane >= 0) lanes[i].release(it->second[i].lane, ev.time);
          }
          in_flight.erase(it);
        }
        if (options.client_track && ev.user >= 0) {
          json.instant(client_pid, ev.user, "drop", ev.time, ev.request);
        }
        break;
      }
      case EventKind::kComplete: {
        auto it = in_flight.find(ev.request);
        if (it != in_flight.end()) {
          for (std::size_t i = 0; i < depth; ++i) {
            TierState& s = it->second[i];
            if (s.lane < 0) continue;
            if (ev.time > s.service_end) {
              // Local service done but the thread stayed pinned until the
              // reply returned (RPC hold + downstream residence).
              json.slice(static_cast<int>(i) + 1, s.lane, "downstream", s.service_end,
                         ev.time - s.service_end, ev.request, ev.user, ev.attempt);
            }
            lanes[i].release(s.lane, ev.time);
          }
          in_flight.erase(it);
        }
        if (options.client_track && ev.user >= 0) {
          json.instant(client_pid, ev.user, "complete", ev.time, ev.request);
        }
        break;
      }
      case EventKind::kRetransmit:
        if (options.client_track && ev.user >= 0) {
          json.slice(client_pid, ev.user, "rto-wait", ev.time, ev.aux, ev.request, ev.user,
                     ev.attempt);
        }
        break;
      case EventKind::kAbandon:
        if (options.client_track && ev.user >= 0) {
          json.instant(client_pid, ev.user, "abandon", ev.time, ev.request);
        }
        break;
      case EventKind::kCapacity:
        if (tier_ok) json.counter(tier_pid, "capacity", ev.time, ev.value);
        break;
      case EventKind::kBurstOn:
        json.counter(attack_pid, "burst", ev.time, 1.0);
        break;
      case EventKind::kBurstOff:
        json.counter(attack_pid, "burst", ev.time, 0.0);
        break;
      case EventKind::kLockWaitSpan:
        // The lock wait nests inside the tier's "wait" slice (enter →
        // service start), whose lane is only known once kTierSpan arrives
        // at service end; render the grant as an instant mark on the tier's
        // first lane so the wait slice stays one box per traversal.
        if (tier_ok) json.instant(tier_pid, 0, "lock-granted", ev.time, ev.request);
        break;
    }
  });
}

void write_attribution_csv(std::ostream& out, const TailAttributor& attributor) {
  const std::size_t depth = attributor.depth();
  out << "request,user,attempts,first_sent_us,completed_us,total_us,queue_wait_us,"
         "lock_wait_us,service_us,degraded_service_us,rpc_hold_us,rto_wait_us,slack_us,"
         "dominant";
  for (std::size_t t = 0; t < depth; ++t) {
    out << ",wait_t" << t << "_us,service_t" << t << "_us";
  }
  out << "\n";
  for (const RequestBreakdown& b : attributor.requests()) {
    if (b.total < attributor.tail_threshold()) continue;
    out << b.final_request << ',' << b.user << ',' << b.attempts << ',' << b.first_sent
        << ',' << b.completed << ',' << b.total << ',' << b.queue_wait_total() << ','
        << b.lock_wait_total() << ',' << b.of(Cause::kService) << ',' << b.degraded_service
        << ',' << b.rpc_hold_total() << ',' << b.rto_wait << ',' << b.slack << ','
        << to_string(b.dominant());
    for (std::size_t t = 0; t < depth; ++t) {
      out << ',' << (t < b.queue_wait.size() ? b.queue_wait[t] : 0) << ','
          << (t < b.service.size() ? b.service[t] : 0);
    }
    out << "\n";
  }
}

}  // namespace memca::trace
