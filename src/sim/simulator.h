// Deterministic discrete-event simulator.
//
// Single-threaded event loop over a priority queue keyed by (time, sequence
// number): ties at the same instant fire in scheduling order, which makes
// every run bit-reproducible. Components schedule closures; an EventHandle
// lets a holder cancel a pending event (used e.g. to preempt an in-flight
// service completion when the server's speed changes).
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/time.h"

namespace memca {

class Simulator;

/// Cancellation token for a scheduled event. Default-constructed handles are
/// inert. Cancelling an already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Safe to call at any time.
  void cancel();
  /// True if the event is still pending (not fired, not cancelled).
  bool pending() const;

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);
  /// Schedules `fn` to run `delay` from now (delay >= 0).
  EventHandle schedule_in(SimTime delay, std::function<void()> fn);

  /// Runs events until the queue is empty or the clock would pass `end`;
  /// afterwards now() == end (events exactly at `end` do fire).
  void run_until(SimTime end);
  /// Runs for `duration` from the current time.
  void run_for(SimTime duration) { run_until(now_ + duration); }
  /// Runs until the event queue is fully drained.
  void run_all();

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }
  /// Number of events currently pending (including cancelled-but-unswept).
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Repeats a callback at a fixed period until stopped. The first invocation
/// happens at `start + period` (or at `start` if fire_immediately).
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, SimTime period, std::function<void()> fn,
               bool fire_immediately = false);
  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return running_; }
  SimTime period() const { return period_; }
  /// Changes the period; takes effect after the next firing.
  void set_period(SimTime period);

 private:
  void arm(SimTime delay);

  Simulator& sim_;
  SimTime period_;
  std::function<void()> fn_;
  bool running_ = true;
  EventHandle next_;
};

}  // namespace memca
