// Deterministic discrete-event simulator.
//
// Single-threaded event loop over a binary heap keyed by (time, sequence
// number): ties at the same instant fire in scheduling order, which makes
// every run bit-reproducible. Components schedule closures; an EventHandle
// lets a holder cancel a pending event (used e.g. to preempt an in-flight
// service completion when the server's speed changes).
//
// Hot-path design: closures live in a pooled slot arena (fixed-size chunks
// recycled through a free list — chunks are never relocated, so growing the
// pool never moves a live closure) as allocation-free InlineCallbacks. The
// pending queue holds trivially-copyable 24-byte (time, seq, slot) records
// in two stages: new events enter an 8-ary arrival heap, and the run loop
// drains through a sorted run consumed by a bare cursor increment. When the
// arrival heap outgrows half of the sorted remainder it is flushed — sorted
// (near-sorted input, so effectively linear) and merged into the run — so a
// bulk-scheduled workload pays O(log) once per event at the flush instead of
// a full-depth sift per pop, while fine-grained interleaved scheduling (a
// periodic tick, a self-rescheduling server) keeps the tiny heap and never
// flushes. The scheduling sequence number doubles as the slot generation: a
// handle (or a stale queue entry) matches its slot only while the slot still
// carries the same seq, which makes cancellation O(1) and slot reuse safe.
// Cancelled events are dropped lazily — either when their entry surfaces or
// in a bulk compaction pass once they outnumber the live entries.
//
// Coarse timers (client retransmission RTOs, think-time wakeups — delays of
// 131 ms and up) bypass the queue entirely and park in a 3-level hierarchical
// timing wheel (64 buckets/level, 65.5 ms base tick): insertion is an index
// computation and cancellation never touches the heap, so the thousands of
// mostly-cancelled RTO timers a closed-loop client population arms never
// inflate the sift depth of the short-horizon queue. Wheel buckets cascade
// down a level as the frontier reaches them and flush into the arrival heap
// strictly before any event at or past the bucket's start fires, so the
// global (time, seq) firing order — and with it bit-reproducibility — is
// identical to the pure-heap engine.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <vector>

#include "common/check.h"
#include "common/inline_callback.h"
#include "common/time.h"

namespace memca {

class Simulator;

/// Cancellation token for a scheduled event. Default-constructed handles are
/// inert. Cancelling an already-fired or already-cancelled event is a no-op.
/// Handles are cheap to copy and must not outlive their Simulator.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Safe to call at any time.
  void cancel();
  /// True if the event is still pending (not fired, not cancelled).
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint64_t seq)
      : sim_(sim), slot_(slot), seq_(seq) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now). The callable is
  /// constructed directly inside its event slot (no intermediate move), so
  /// this is defined inline; see InlineCallback for the storage rules.
  template <typename F>
  EventHandle schedule_at(SimTime when, F&& fn) {
    return schedule_impl(when, 0, std::forward<F>(fn));
  }
  /// Schedules `fn` to run `delay` from now (delay >= 0).
  template <typename F>
  EventHandle schedule_in(SimTime delay, F&& fn) {
    MEMCA_CHECK_MSG(delay >= 0, "delay must be non-negative");
    return schedule_impl(now_ + delay, 0, std::forward<F>(fn));
  }

  /// Allocates a fresh batch key (never zero). A component that wants its
  /// same-instant events recognised as one batch tags them all with its key
  /// via schedule_batched().
  std::uint32_t new_batch_key() { return ++last_batch_key_; }

  /// schedule_at with a batch tag. Firing order is untouched — the tag only
  /// feeds the batch_continues() hint, it never reorders or coalesces events.
  template <typename F>
  EventHandle schedule_batched(SimTime when, std::uint32_t batch_key, F&& fn) {
    MEMCA_DCHECK(batch_key != 0);
    return schedule_impl(when, batch_key, std::forward<F>(fn));
  }

  /// Valid only inside a batch-tagged event's callback: true iff the very
  /// next live event fires at this same instant with the same batch key —
  /// i.e. the current callback is *not* the last member of its batch, so
  /// commutative bookkeeping (counter/gauge flushes) may be deferred to a
  /// later member. Reset before every fired event, so code running from an
  /// untagged event always sees false.
  bool batch_continues() const { return batch_continues_; }

 private:
  template <typename F>
  EventHandle schedule_impl(SimTime when, std::uint32_t batch, F&& fn) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<F>&>,
                  "scheduled callback must be invocable as void()");
    MEMCA_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
    if constexpr (std::is_same_v<std::decay_t<F>, InlineCallback>) {
      MEMCA_CHECK_MSG(static_cast<bool>(fn), "cannot schedule an empty callback");
    }
    const std::uint64_t seq = next_seq_++;
    std::uint32_t index;
    if (!free_slots_.empty()) {
      index = free_slots_.back();
      free_slots_.pop_back();
      Slot& s = slot(index);
      if constexpr (std::is_same_v<std::decay_t<F>, InlineCallback>) {
        s.fn = std::forward<F>(fn);
      } else {
        s.fn.emplace(std::forward<F>(fn));
      }
      s.seq_live = occupant_key(seq);
    } else {
      index = grow_slot(std::forward<F>(fn), seq);
    }
    if (when - now_ >= kWheelMinDelay) {
      wheel_insert(Event{when, seq, index, batch});
    } else {
      heap_push(Event{when, seq, index, batch});
    }
    ++live_pending_;
    if (live_pending_ > pending_high_water_) pending_high_water_ = live_pending_;
    return EventHandle(this, index, seq);
  }

 public:

  /// Cancels `n` handles in one pass. Equivalent to calling cancel() on each,
  /// but the liveness bookkeeping is settled once and the lazy-sweep decision
  /// (maybe_compact) runs once at the end instead of per handle — the batch
  /// counterpart the grouped-completion and RTO paths use when a whole batch
  /// of timers dies at one instant. Works on heap- and wheel-parked events
  /// alike; already-fired/cancelled/empty handles are skipped.
  void cancel_bulk(const EventHandle* handles, std::size_t n);

  /// Runs events until the queue is empty or the clock would pass `end`;
  /// afterwards now() == end (events exactly at `end` do fire).
  void run_until(SimTime end);
  /// Runs for `duration` from the current time.
  void run_for(SimTime duration) { run_until(now_ + duration); }
  /// Runs until the event queue is fully drained.
  void run_all();

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }
  /// Number of live (non-cancelled) events currently pending.
  std::size_t pending_events() const { return live_pending_; }
  /// Cancelled events not yet swept from the queue; the raw entry count is
  /// pending_events() + cancelled_pending().
  std::size_t cancelled_pending() const { return cancelled_pending_; }
  /// High-water mark of live pending events (event-queue depth), for the
  /// engine self-profile in run reports.
  std::size_t pending_high_water() const { return pending_high_water_; }
  /// Slots ever allocated in the closure arena — the callback pool's
  /// occupancy high-water mark (the pool never shrinks).
  std::uint32_t pool_slots() const { return num_slots_; }
  /// Entries currently parked in the timing wheel (live + not-yet-swept
  /// cancelled); introspection for tests and benchmarks.
  std::size_t wheel_pending() const { return wheel_entries_; }

 private:
  friend class EventHandle;

  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    /// Batch tag (0 = untagged); see schedule_batched. Rides in what used to
    /// be padding, so the queue entry stays a 24-byte record.
    std::uint32_t batch = 0;
  };
  static_assert(sizeof(Event) == 24, "queue entries should stay 24 bytes");
  /// Min-heap order: earliest time first, scheduling order within a tie.
  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  /// One pooled event: the closure plus the occupant's generation word
  /// (seq << 1 | live). Exactly one cache line, so scheduling or firing an
  /// event touches a single line of the arena.
  struct Slot {
    InlineCallback fn;
    std::uint64_t seq_live;
  };
  static_assert(sizeof(Slot) == 64, "event slot should be one cache line");

  static constexpr std::uint64_t occupant_key(std::uint64_t seq) {
    return (seq << 1) | 1u;
  }

  Slot& slot(std::uint32_t index) {
    return *std::launder(reinterpret_cast<Slot*>(
        chunks_[index >> kChunkShift].get() + sizeof(Slot) * (index & kChunkMask)));
  }
  const Slot& slot(std::uint32_t index) const {
    return *std::launder(reinterpret_cast<const Slot*>(
        chunks_[index >> kChunkShift].get() + sizeof(Slot) * (index & kChunkMask)));
  }
  bool event_pending(std::uint32_t index, std::uint64_t seq) const {
    return index < num_slots_ && slot(index).seq_live == occupant_key(seq);
  }
  void cancel_event(std::uint32_t slot, std::uint64_t seq);
  void release_slot(std::uint32_t slot);

  /// Pool-growth slow path: appends a slot (allocating a chunk when the last
  /// one fills) and constructs the callable in it.
  template <typename F>
  std::uint32_t grow_slot(F&& fn, std::uint64_t seq) {
    MEMCA_CHECK_MSG(num_slots_ < 0xffffffffu, "event slot pool exhausted");
    const std::uint32_t index = num_slots_++;
    // Compare against the chunks actually held, not the index alignment: a
    // checkpoint rollback shrinks num_slots_ while keeping every chunk, so
    // regrowth must reuse the existing chunk instead of appending another.
    if ((index >> kChunkShift) >= chunks_.size()) add_chunk();
    unsigned char* raw =
        chunks_[index >> kChunkShift].get() + sizeof(Slot) * (index & kChunkMask);
    ::new (static_cast<void*>(raw))
        Slot{InlineCallback(std::forward<F>(fn)), occupant_key(seq)};
    return index;
  }
  void add_chunk();
  /// Sweeps cancelled entries out of the queue once they outnumber live ones.
  void maybe_compact();
  /// Parks a coarse-timer event in the wheel (falls back to the heap past the
  /// wheel horizon). `ev.time` must be >= wheel_time_, which the
  /// kWheelMinDelay routing guarantees.
  void wheel_insert(const Event& ev);
  /// Flushes/cascades wheel buckets whose start is <= `limit`, in time order,
  /// returning true as soon as one bucket has been fed to the arrival heap so
  /// the caller re-picks the earliest event. Returns false once every wheel
  /// event at or before `limit` is in the heap.
  bool advance_wheel(SimTime limit);
  SimTime wheel_earliest_start() const;
  /// Fires the already-popped queue entry's callback in place (stale entries
  /// are dropped); returns true iff a live event executed.
  bool fire(const Event& ev);
  /// The batch_continues() peek: true iff the next live queue entry fires at
  /// exactly `time` with batch tag `batch`. Stale same-instant heads are
  /// dropped along the way (exactly what fire() would have done with them).
  bool next_live_matches(SimTime time, std::uint32_t batch);
  /// Fires events in (time, seq) order while their time is <= limit.
  void drain(SimTime limit);
  /// Sorts the arrival heap and merges it into the sorted run.
  void flush_arrivals();

  // 8-ary heap primitives over heap_. Push (the scheduling hot path) is
  // inline; the sift-down loops for pop/rebuild live in the .cpp.
  void heap_push(const Event& ev) {
    heap_.push_back(ev);
    std::size_t i = heap_.size() - 1;
    Event* h = heap_.data();
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 3;
      if (!earlier(ev, h[parent])) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = ev;
  }
  void heap_pop();
  void heap_rebuild();
  static std::size_t min_child(const Event* h, std::size_t first, std::size_t end);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint32_t last_batch_key_ = 0;
  bool batch_continues_ = false;
  std::size_t live_pending_ = 0;
  std::size_t pending_high_water_ = 0;
  std::size_t cancelled_pending_ = 0;
  /// Arrival stage: 8-ary heap of events not yet merged into sorted_.
  std::vector<Event> heap_;
  /// Drain stage: globally ordered run; sorted_[cursor_..] is still pending.
  std::vector<Event> sorted_;
  std::size_t cursor_ = 0;
  std::vector<Event> scratch_;  // merge target, recycled across flushes
  /// Slot arena: fixed raw-byte chunks, so growth never relocates a live
  /// closure and fresh chunks are not pre-touched — slots [0, num_slots_)
  /// are placement-constructed one at a time as the pool first grows.
  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  std::uint32_t num_slots_ = 0;
  /// LIFO recycling stack of released slot indices.
  std::vector<std::uint32_t> free_slots_;

  static constexpr std::uint32_t kChunkShift = 9;  // 512 slots/chunk, 32 KB
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;
  /// Below this queue size compaction is not worth the rebuild.
  static constexpr std::size_t kCompactionMinimum = 64;
  /// Arrival heaps at or below this size are never flushed: the sort+merge
  /// bookkeeping only pays off once sifts get deep.
  static constexpr std::size_t kFlushMinimum = 64;

  // --- Timing wheel (coarse timers: RTOs, think-time wakeups) ---
  static constexpr int kWheelLevels = 3;
  static constexpr int kWheelLevelBits = 6;  // 64 buckets per level
  static constexpr std::uint32_t kWheelBuckets = 1u << kWheelLevelBits;
  /// Level-0 tick: 2^16 us = 65.536 ms. Level ticks are 65.5 ms / 4.19 s /
  /// 268 s, so the wheel spans ~4.77 simulated hours before falling back to
  /// the heap.
  static constexpr int kWheelShift0 = 16;
  /// Timers shorter than two level-0 ticks stay in the heap: they fire too
  /// soon for bucketing to pay, and the two-tick margin guarantees an insert
  /// always lands strictly ahead of the wheel frontier.
  static constexpr SimTime kWheelMinDelay = SimTime{2} << kWheelShift0;

  /// Bucket storage, level-major: bucket b of level k lives at index
  /// (k << kWheelLevelBits) + b. Vectors keep their capacity across reuse,
  /// so a warmed-up wheel inserts without allocating.
  std::array<std::vector<Event>, std::size_t{kWheelLevels} << kWheelLevelBits>
      wheel_buckets_;
  /// Per-level occupancy bitmap (bit b = bucket b non-empty): advancing the
  /// frontier skips empty buckets with a rotate + count-trailing-zeros
  /// instead of scanning.
  std::array<std::uint64_t, kWheelLevels> wheel_occupied_{};
  /// Flush frontier, always a multiple of the level-0 tick: every wheel event
  /// with time < wheel_time_ has been flushed to the heap, and every bucket
  /// containing wheel_time_ (at any level) is empty.
  SimTime wheel_time_ = 0;
  /// Start time of the earliest occupied bucket (max() when the wheel is
  /// empty). Lets the drain loop skip the per-event level scan: the wheel
  /// cannot owe the heap anything before this instant. Maintained as a lower
  /// bound on insert, recomputed whenever advance/compaction changes
  /// occupancy.
  SimTime wheel_next_ = std::numeric_limits<SimTime>::max();
  /// Entries currently parked in wheel buckets (live + stale).
  std::size_t wheel_entries_ = 0;
  std::vector<Event> wheel_scratch_;  // cascade staging, recycled

  /// Resets the closure of every still-pending event (found via the queues —
  /// only live slots hold a closure). Shared by the destructor and restore():
  /// before checkpoint bytes overwrite the arena, any closure scheduled after
  /// the capture must be destroyed through its manager.
  void reset_pending_closures();

 public:
  /// Complete engine checkpoint. The arena chunks are captured as raw byte
  /// copies — valid because capture() checks that every live closure is
  /// trivially relocatable (see InlineFunction::is_trivially_relocatable) —
  /// and restore() copies them back into the *same* chunks, so EventHandles
  /// and `this`-capturing closures held by other components stay valid
  /// across a rollback. A Snapshot may be restored into its source simulator
  /// any number of times; restoring after the first capture never allocates
  /// (all destination capacity was established at capture time or earlier).
  struct Snapshot {
    SimTime now = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
    std::uint32_t last_batch_key = 0;
    std::size_t live_pending = 0;
    std::size_t pending_high_water = 0;
    std::size_t cancelled_pending = 0;
    std::vector<Event> heap;
    /// Pending tail of the sorted run (cursor re-based to 0).
    std::vector<Event> sorted;
    std::vector<std::uint32_t> free_slots;
    std::uint32_t num_slots = 0;
    /// Byte copies of every arena chunk that held a constructed slot.
    std::vector<std::unique_ptr<unsigned char[]>> chunks;
    std::array<std::vector<Event>, std::size_t{kWheelLevels} << kWheelLevelBits>
        wheel_buckets;
    std::array<std::uint64_t, kWheelLevels> wheel_occupied{};
    SimTime wheel_time = 0;
    SimTime wheel_next = std::numeric_limits<SimTime>::max();
    std::size_t wheel_entries = 0;
  };

  /// Copies the engine state aside. Reusing one Snapshot object across
  /// captures reuses its buffers.
  void capture(Snapshot& out) const;
  /// Restores state captured from *this* simulator (same arena chunks).
  void restore(const Snapshot& snap);
};

/// Repeats a callback at a fixed period until stopped. The first invocation
/// happens at `start + period` (or at `start` if fire_immediately).
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, SimTime period, InlineCallback fn,
               bool fire_immediately = false);
  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return running_; }
  SimTime period() const { return period_; }
  /// Changes the period to `period` (must be > 0, checked). The firing that
  /// is already armed keeps its old deadline; the new period applies when
  /// that firing re-arms, i.e. from the next firing onwards.
  void set_period(SimTime period);

  /// Checkpoint support. The armed firing is an event in the simulator's
  /// arena; its handle round-trips through the Snapshot and stays valid
  /// because Simulator::restore revives the same (slot, seq) occupancy.
  /// Restore only makes sense alongside a restore of the owning simulator.
  struct Snapshot {
    SimTime period = 0;
    bool running = false;
    EventHandle next;
  };

  void capture(Snapshot& out) const {
    out.period = period_;
    out.running = running_;
    out.next = next_;
  }

  void restore(const Snapshot& snap) {
    period_ = snap.period;
    running_ = snap.running;
    next_ = snap.next;
  }

 private:
  void arm(SimTime delay);

  Simulator& sim_;
  SimTime period_;
  InlineCallback fn_;
  bool running_ = true;
  EventHandle next_;
};

}  // namespace memca
