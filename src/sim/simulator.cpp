#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace memca {

void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel_event(slot_, seq_);
}

bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->event_pending(slot_, seq_);
}

void Simulator::run_until(SimTime end) {
  MEMCA_CHECK_MSG(end >= now_, "cannot run backwards");
  drain(end);
  now_ = end;
}

void Simulator::run_all() { drain(std::numeric_limits<SimTime>::max()); }

void Simulator::drain(SimTime limit) {
  for (;;) {
    // Bulk flush policy: once the arrival heap holds more than half of what
    // the sorted run still owes, sorting it wholesale is cheaper than paying
    // a full-depth sift per pop. A tiny heap (a periodic tick rescheduling
    // itself, a server completion in flight) stays a plain heap forever.
    if (heap_.size() > kFlushMinimum + (sorted_.size() - cursor_) / 2) {
      flush_arrivals();
    }
    const Event* next = cursor_ < sorted_.size() ? &sorted_[cursor_] : nullptr;
    bool from_heap = false;
    if (!heap_.empty() && (next == nullptr || earlier(heap_.front(), *next))) {
      next = &heap_.front();
      from_heap = true;
    }
    if (next == nullptr || next->time > limit) return;
    const Event ev = *next;
    if (from_heap) {
      heap_pop();
    } else {
      ++cursor_;
      // Reclaim the consumed head once it dominates the run; the memmove is
      // O(remaining), amortized constant per event.
      if (cursor_ >= 4096 && cursor_ * 2 >= sorted_.size()) {
        sorted_.erase(sorted_.begin(),
                      sorted_.begin() + static_cast<std::ptrdiff_t>(cursor_));
        cursor_ = 0;
      }
    }
    fire(ev);
  }
}

void Simulator::flush_arrivals() {
  // pdqsort recognizes the (near-)ascending order events are typically
  // scheduled in, so this is usually a linear pass, not a full sort.
  std::sort(heap_.begin(), heap_.end(),
            [](const Event& a, const Event& b) { return earlier(a, b); });
  if (cursor_ == sorted_.size()) {
    // The old run is fully consumed: the sorted arrivals are the new run.
    sorted_.swap(heap_);
    heap_.clear();
    cursor_ = 0;
    return;
  }
  scratch_.clear();
  scratch_.reserve(sorted_.size() - cursor_ + heap_.size());
  std::merge(sorted_.begin() + static_cast<std::ptrdiff_t>(cursor_), sorted_.end(),
             heap_.begin(), heap_.end(), std::back_inserter(scratch_),
             [](const Event& a, const Event& b) { return earlier(a, b); });
  sorted_.swap(scratch_);
  cursor_ = 0;
  heap_.clear();
}

bool Simulator::fire(const Event& ev) {
  Slot& s = slot(ev.slot);
  if (s.seq_live != occupant_key(ev.seq)) {
    MEMCA_DCHECK(cancelled_pending_ > 0);
    --cancelled_pending_;
    return false;
  }
  // The closure runs in place in its slot: chunked storage guarantees the
  // slot never relocates even if the callback grows the pool. Clearing the
  // live bit first makes a self-cancel from inside the callback a no-op, and
  // the slot only joins the free stack afterwards, so events scheduled by
  // the callback cannot reuse it while its closure is still executing.
  s.seq_live &= ~std::uint64_t{1};
  --live_pending_;
  ++executed_;
  now_ = ev.time;
  s.fn();
  s.fn.reset();
  free_slots_.push_back(ev.slot);
  return true;
}

// Index of the earliest event among h[first, end). Deliberately branchy:
// event queues drained in near-schedule order keep the heap close to sorted,
// so these comparisons predict extremely well, and letting the core
// speculate past the loads beats any branch-free formulation (measured: both
// a cmov min-scan and a branch-free comparator were ~40% slower here).
std::size_t Simulator::min_child(const Event* h, std::size_t first, std::size_t end) {
  std::size_t best = first;
  for (std::size_t c = first + 1; c < end; ++c) {
    if (earlier(h[c], h[best])) best = c;
  }
  return best;
}

// 8-ary sift-down. A third of the depth of a binary heap, with each child
// group a three-cache-line sequential scan of 24 B events that the hardware
// prefetchers handle well — measurably cheaper than std::push_heap/pop_heap
// on the large queues the testbed builds (and than 4-ary or 16-ary layouts;
// the dependent load chain across levels is what dominates).
void Simulator::heap_pop() {
  const std::size_t n = heap_.size() - 1;
  Event* h = heap_.data();
  const Event last = h[n];
  heap_.pop_back();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = (i << 3) + 1;
    if (first_child >= n) break;
    const std::size_t best = min_child(h, first_child, std::min(first_child + 8, n));
    if (!earlier(h[best], last)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = last;
}

void Simulator::heap_rebuild() {
  const std::size_t n = heap_.size();
  if (n < 2) return;
  Event* h = heap_.data();
  for (std::size_t start = (n - 2) >> 3; start + 1 > 0; --start) {
    const Event item = h[start];
    std::size_t i = start;
    for (;;) {
      const std::size_t first_child = (i << 3) + 1;
      if (first_child >= n) break;
      const std::size_t best = min_child(h, first_child, std::min(first_child + 8, n));
      if (!earlier(h[best], item)) break;
      h[i] = h[best];
      i = best;
    }
    h[i] = item;
    if (start == 0) break;
  }
}

void Simulator::add_chunk() {
  chunks_.push_back(std::make_unique_for_overwrite<unsigned char[]>(
      sizeof(Slot) << kChunkShift));
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& s = slot(index);
  s.fn.reset();  // destroy the capture eagerly
  s.seq_live &= ~std::uint64_t{1};
  free_slots_.push_back(index);
}

Simulator::~Simulator() {
  // Only live slots hold a closure (firing, cancelling, and releasing all
  // reset the slot's callback), and every live slot has exactly one matching
  // queue entry — so destroying via the queue touches the pending events
  // instead of sweeping the whole arena. Empty InlineCallback destructors
  // are no-ops, so the remaining Slot objects need no teardown.
  for (const Event& ev : heap_) {
    Slot& s = slot(ev.slot);
    if (s.seq_live == occupant_key(ev.seq)) s.fn.reset();
  }
  for (std::size_t i = cursor_; i < sorted_.size(); ++i) {
    Slot& s = slot(sorted_[i].slot);
    if (s.seq_live == occupant_key(sorted_[i].seq)) s.fn.reset();
  }
}

void Simulator::cancel_event(std::uint32_t index, std::uint64_t seq) {
  if (!event_pending(index, seq)) return;
  release_slot(index);
  --live_pending_;
  ++cancelled_pending_;  // its queue entry is now stale
  maybe_compact();
}

void Simulator::maybe_compact() {
  const std::size_t entries = heap_.size() + (sorted_.size() - cursor_);
  if (entries < kCompactionMinimum || cancelled_pending_ * 2 <= entries) {
    return;
  }
  const auto stale = [this](const Event& ev) {
    return slot(ev.slot).seq_live != occupant_key(ev.seq);
  };
  std::erase_if(heap_, stale);
  heap_rebuild();
  // Drop the consumed head along with the stale entries; erase_if keeps the
  // relative order, so the run stays sorted without another sort.
  sorted_.erase(sorted_.begin(), sorted_.begin() + static_cast<std::ptrdiff_t>(cursor_));
  cursor_ = 0;
  std::erase_if(sorted_, stale);
  cancelled_pending_ = 0;
}

PeriodicTask::PeriodicTask(Simulator& sim, SimTime period, InlineCallback fn,
                           bool fire_immediately)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  MEMCA_CHECK_MSG(period_ > 0, "period must be positive");
  MEMCA_CHECK_MSG(static_cast<bool>(fn_), "PeriodicTask needs a callback");
  arm(fire_immediately ? 0 : period_);
}

void PeriodicTask::stop() {
  running_ = false;
  next_.cancel();
}

void PeriodicTask::set_period(SimTime period) {
  MEMCA_CHECK_MSG(period > 0, "period must be positive");
  period_ = period;
}

void PeriodicTask::arm(SimTime delay) {
  next_ = sim_.schedule_in(delay, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm(period_);
  });
}

}  // namespace memca
