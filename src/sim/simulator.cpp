#include "sim/simulator.h"

#include <utility>

namespace memca {

void EventHandle::cancel() {
  if (alive_) *alive_ = false;
}

bool EventHandle::pending() const { return alive_ && *alive_; }

EventHandle Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  MEMCA_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  MEMCA_CHECK_MSG(static_cast<bool>(fn), "cannot schedule an empty callback");
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{when, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

EventHandle Simulator::schedule_in(SimTime delay, std::function<void()> fn) {
  MEMCA_CHECK_MSG(delay >= 0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::run_until(SimTime end) {
  MEMCA_CHECK_MSG(end >= now_, "cannot run backwards");
  while (!queue_.empty() && queue_.top().time <= end) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    if (*ev.alive) {
      *ev.alive = false;  // marks it fired so handles report !pending()
      ++executed_;
      ev.fn();
    }
  }
  now_ = end;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    if (*ev.alive) {
      *ev.alive = false;
      ++executed_;
      ev.fn();
    }
  }
}

PeriodicTask::PeriodicTask(Simulator& sim, SimTime period, std::function<void()> fn,
                           bool fire_immediately)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  MEMCA_CHECK_MSG(period_ > 0, "period must be positive");
  MEMCA_CHECK_MSG(static_cast<bool>(fn_), "PeriodicTask needs a callback");
  arm(fire_immediately ? 0 : period_);
}

void PeriodicTask::stop() {
  running_ = false;
  next_.cancel();
}

void PeriodicTask::set_period(SimTime period) {
  MEMCA_CHECK_MSG(period > 0, "period must be positive");
  period_ = period;
}

void PeriodicTask::arm(SimTime delay) {
  next_ = sim_.schedule_in(delay, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm(period_);
  });
}

}  // namespace memca
