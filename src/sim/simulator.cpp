#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <utility>

namespace memca {

void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel_event(slot_, seq_);
}

bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->event_pending(slot_, seq_);
}

void Simulator::run_until(SimTime end) {
  MEMCA_CHECK_MSG(end >= now_, "cannot run backwards");
  drain(end);
  now_ = end;
}

void Simulator::run_all() { drain(std::numeric_limits<SimTime>::max()); }

void Simulator::drain(SimTime limit) {
  for (;;) {
    // Bulk flush policy: once the arrival heap holds more than half of what
    // the sorted run still owes, sorting it wholesale is cheaper than paying
    // a full-depth sift per pop. A tiny heap (a periodic tick rescheduling
    // itself, a server completion in flight) stays a plain heap forever.
    if (heap_.size() > kFlushMinimum + (sorted_.size() - cursor_) / 2) {
      flush_arrivals();
    }
    const Event* next = cursor_ < sorted_.size() ? &sorted_[cursor_] : nullptr;
    bool from_heap = false;
    if (!heap_.empty() && (next == nullptr || earlier(heap_.front(), *next))) {
      next = &heap_.front();
      from_heap = true;
    }
    if (wheel_entries_ > 0) {
      // Every wheel event at or before the next firing instant must be
      // queued (sorted run or heap) before that event fires; if the wheel
      // flushed a bucket, re-pick — it may hold the new earliest event. The cached
      // earliest-bucket start turns the common "wheel owes nothing yet" case
      // into a single compare instead of a per-event level scan.
      const SimTime target =
          next != nullptr && next->time < limit ? next->time : limit;
      if (wheel_next_ <= target && advance_wheel(target)) continue;
    }
    if (next == nullptr || next->time > limit) return;
    const Event ev = *next;
    if (from_heap) {
      heap_pop();
    } else {
      ++cursor_;
      // Reclaim the consumed head once it dominates the run; the memmove is
      // O(remaining), amortized constant per event.
      if (cursor_ >= 4096 && cursor_ * 2 >= sorted_.size()) {
        sorted_.erase(sorted_.begin(),
                      sorted_.begin() + static_cast<std::ptrdiff_t>(cursor_));
        cursor_ = 0;
      }
    }
    // Batch hint for the callback about to run: stale unless re-derived, so
    // untagged events always present "no batch". For a tagged event the peek
    // answers "does another member of my batch fire right after me at this
    // same instant?" — every wheel event at or before ev.time is already
    // queued (the advance above ran to ev.time first), so the merged
    // heap/sorted head really is the global successor.
    batch_continues_ = ev.batch != 0 && next_live_matches(ev.time, ev.batch);
    fire(ev);
  }
}

bool Simulator::next_live_matches(SimTime time, std::uint32_t batch) {
  for (;;) {
    const Event* next = cursor_ < sorted_.size() ? &sorted_[cursor_] : nullptr;
    bool from_heap = false;
    if (!heap_.empty() && (next == nullptr || earlier(heap_.front(), *next))) {
      next = &heap_.front();
      from_heap = true;
    }
    // Cheap rejects first: the queue-entry fields are on lines this peek's
    // caller just touched, while the slot-liveness word is a random load
    // into the closure arena. A mismatched time or tag answers "no" without
    // that load. (A stale head carrying a *different* tag can hide a live
    // matching event behind it; answering false there is merely
    // conservative — an early counter flush, never a wrong count.)
    if (next == nullptr || next->time != time || next->batch != batch) {
      return false;
    }
    if (slot(next->slot).seq_live == occupant_key(next->seq)) return true;
    // Stale head at the batch instant with this batch's own tag: drop it
    // here instead of making fire() discard it one iteration later — the
    // peek must see through cancelled entries to the event that will
    // actually run.
    MEMCA_DCHECK(cancelled_pending_ > 0);
    --cancelled_pending_;
    if (from_heap) {
      heap_pop();
    } else {
      ++cursor_;
    }
  }
}

void Simulator::flush_arrivals() {
  // pdqsort recognizes the (near-)ascending order events are typically
  // scheduled in, so this is usually a linear pass, not a full sort.
  std::sort(heap_.begin(), heap_.end(),
            [](const Event& a, const Event& b) { return earlier(a, b); });
  if (cursor_ == sorted_.size()) {
    // The old run is fully consumed: the sorted arrivals are the new run.
    sorted_.swap(heap_);
    heap_.clear();
    cursor_ = 0;
    return;
  }
  scratch_.clear();
  scratch_.reserve(sorted_.size() - cursor_ + heap_.size());
  std::merge(sorted_.begin() + static_cast<std::ptrdiff_t>(cursor_), sorted_.end(),
             heap_.begin(), heap_.end(), std::back_inserter(scratch_),
             [](const Event& a, const Event& b) { return earlier(a, b); });
  sorted_.swap(scratch_);
  cursor_ = 0;
  heap_.clear();
}

bool Simulator::fire(const Event& ev) {
  Slot& s = slot(ev.slot);
  if (s.seq_live != occupant_key(ev.seq)) {
    MEMCA_DCHECK(cancelled_pending_ > 0);
    --cancelled_pending_;
    return false;
  }
  // The closure runs in place in its slot: chunked storage guarantees the
  // slot never relocates even if the callback grows the pool. Clearing the
  // live bit first makes a self-cancel from inside the callback a no-op, and
  // the slot only joins the free stack afterwards, so events scheduled by
  // the callback cannot reuse it while its closure is still executing.
  s.seq_live &= ~std::uint64_t{1};
  --live_pending_;
  ++executed_;
  now_ = ev.time;
  s.fn();
  s.fn.reset();
  free_slots_.push_back(ev.slot);
  return true;
}

// Index of the earliest event among h[first, end). Deliberately branchy:
// event queues drained in near-schedule order keep the heap close to sorted,
// so these comparisons predict extremely well, and letting the core
// speculate past the loads beats any branch-free formulation (measured: both
// a cmov min-scan and a branch-free comparator were ~40% slower here).
std::size_t Simulator::min_child(const Event* h, std::size_t first, std::size_t end) {
  std::size_t best = first;
  for (std::size_t c = first + 1; c < end; ++c) {
    if (earlier(h[c], h[best])) best = c;
  }
  return best;
}

// 8-ary sift-down. A third of the depth of a binary heap, with each child
// group a three-cache-line sequential scan of 24 B events that the hardware
// prefetchers handle well — measurably cheaper than std::push_heap/pop_heap
// on the large queues the testbed builds (and than 4-ary or 16-ary layouts;
// the dependent load chain across levels is what dominates).
void Simulator::heap_pop() {
  const std::size_t n = heap_.size() - 1;
  Event* h = heap_.data();
  const Event last = h[n];
  heap_.pop_back();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = (i << 3) + 1;
    if (first_child >= n) break;
    const std::size_t best = min_child(h, first_child, std::min(first_child + 8, n));
    if (!earlier(h[best], last)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = last;
}

void Simulator::heap_rebuild() {
  const std::size_t n = heap_.size();
  if (n < 2) return;
  Event* h = heap_.data();
  for (std::size_t start = (n - 2) >> 3; start + 1 > 0; --start) {
    const Event item = h[start];
    std::size_t i = start;
    for (;;) {
      const std::size_t first_child = (i << 3) + 1;
      if (first_child >= n) break;
      const std::size_t best = min_child(h, first_child, std::min(first_child + 8, n));
      if (!earlier(h[best], item)) break;
      h[i] = h[best];
      i = best;
    }
    h[i] = item;
    if (start == 0) break;
  }
}

void Simulator::add_chunk() {
  chunks_.push_back(std::make_unique_for_overwrite<unsigned char[]>(
      sizeof(Slot) << kChunkShift));
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& s = slot(index);
  s.fn.reset();  // destroy the capture eagerly
  s.seq_live &= ~std::uint64_t{1};
  free_slots_.push_back(index);
}

void Simulator::reset_pending_closures() {
  // Only live slots hold a closure (firing, cancelling, and releasing all
  // reset the slot's callback), and every live slot has exactly one matching
  // queue entry — so walking the queues touches the pending events instead
  // of sweeping the whole arena. Empty InlineCallback destructors are
  // no-ops, so the remaining Slot objects need no teardown.
  for (const Event& ev : heap_) {
    Slot& s = slot(ev.slot);
    if (s.seq_live == occupant_key(ev.seq)) s.fn.reset();
  }
  for (std::size_t i = cursor_; i < sorted_.size(); ++i) {
    Slot& s = slot(sorted_[i].slot);
    if (s.seq_live == occupant_key(sorted_[i].seq)) s.fn.reset();
  }
  if (wheel_entries_ > 0) {
    for (const std::vector<Event>& bucket : wheel_buckets_) {
      for (const Event& ev : bucket) {
        Slot& s = slot(ev.slot);
        if (s.seq_live == occupant_key(ev.seq)) s.fn.reset();
      }
    }
  }
}

Simulator::~Simulator() { reset_pending_closures(); }

void Simulator::capture(Snapshot& out) const {
  out.now = now_;
  out.next_seq = next_seq_;
  out.executed = executed_;
  out.last_batch_key = last_batch_key_;
  out.live_pending = live_pending_;
  out.pending_high_water = pending_high_water_;
  out.cancelled_pending = cancelled_pending_;
  out.heap.assign(heap_.begin(), heap_.end());
  out.sorted.assign(sorted_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                    sorted_.end());
  out.free_slots.assign(free_slots_.begin(), free_slots_.end());
  out.num_slots = num_slots_;
  // Every live closure must survive a byte copy: the restore path memcpys
  // chunk bytes back without running constructors, so a heap-owning or
  // non-trivially-destructible capture would be duplicated or leaked.
  for (std::uint32_t i = 0; i < num_slots_; ++i) {
    const Slot& s = slot(i);
    if ((s.seq_live & 1u) != 0) {
      MEMCA_CHECK_MSG(s.fn.is_trivially_relocatable(),
                      "cannot checkpoint a live closure that is not trivially "
                      "relocatable (heap-allocated or non-trivial capture)");
    }
  }
  constexpr std::size_t kChunkBytes = sizeof(Slot) << kChunkShift;
  const std::size_t used_chunks =
      (static_cast<std::size_t>(num_slots_) + kChunkMask) >> kChunkShift;
  while (out.chunks.size() < used_chunks) {
    out.chunks.push_back(std::make_unique_for_overwrite<unsigned char[]>(kChunkBytes));
  }
  out.chunks.resize(used_chunks);
  for (std::size_t i = 0; i < used_chunks; ++i) {
    std::memcpy(out.chunks[i].get(), chunks_[i].get(), kChunkBytes);
  }
  for (std::size_t b = 0; b < wheel_buckets_.size(); ++b) {
    out.wheel_buckets[b].assign(wheel_buckets_[b].begin(), wheel_buckets_[b].end());
  }
  out.wheel_occupied = wheel_occupied_;
  out.wheel_time = wheel_time_;
  out.wheel_next = wheel_next_;
  out.wheel_entries = wheel_entries_;
}

void Simulator::restore(const Snapshot& snap) {
  MEMCA_CHECK_MSG(snap.num_slots <= num_slots_ &&
                      snap.chunks.size() <= chunks_.size(),
                  "a Snapshot only restores into the simulator it captured");
  // Closures scheduled after the capture may be non-trivial; destroy them
  // through their managers before checkpoint bytes overwrite the arena.
  reset_pending_closures();
  constexpr std::size_t kChunkBytes = sizeof(Slot) << kChunkShift;
  for (std::size_t i = 0; i < snap.chunks.size(); ++i) {
    std::memcpy(chunks_[i].get(), snap.chunks[i].get(), kChunkBytes);
  }
  num_slots_ = snap.num_slots;
  free_slots_.assign(snap.free_slots.begin(), snap.free_slots.end());
  now_ = snap.now;
  next_seq_ = snap.next_seq;
  executed_ = snap.executed;
  last_batch_key_ = snap.last_batch_key;
  batch_continues_ = false;
  live_pending_ = snap.live_pending;
  pending_high_water_ = snap.pending_high_water;
  cancelled_pending_ = snap.cancelled_pending;
  // The two pending stages swap buffers with each other and with scratch_
  // during flushes, so no single member's capacity is monotonic — but the
  // capacity *multiset* of the trio is. Assign each stage into a buffer big
  // enough for it (largest snapshot list into the largest buffer), then swap
  // the buffers into their members: restore stays allocation-free.
  std::vector<Event>* by_cap[3] = {&heap_, &sorted_, &scratch_};
  std::sort(by_cap, by_cap + 3, [](const std::vector<Event>* a,
                                   const std::vector<Event>* b) {
    return a->capacity() > b->capacity();
  });
  std::vector<Event>* heap_dst = by_cap[0];
  std::vector<Event>* sorted_dst = by_cap[1];
  if (snap.heap.size() < snap.sorted.size()) std::swap(heap_dst, sorted_dst);
  heap_dst->assign(snap.heap.begin(), snap.heap.end());
  sorted_dst->assign(snap.sorted.begin(), snap.sorted.end());
  if (heap_dst != &heap_) {
    heap_.swap(*heap_dst);
    if (sorted_dst == &heap_) sorted_dst = heap_dst;
  }
  if (sorted_dst != &sorted_) sorted_.swap(*sorted_dst);
  scratch_.clear();
  cursor_ = 0;
  for (std::size_t b = 0; b < wheel_buckets_.size(); ++b) {
    wheel_buckets_[b].assign(snap.wheel_buckets[b].begin(),
                             snap.wheel_buckets[b].end());
  }
  wheel_occupied_ = snap.wheel_occupied;
  wheel_time_ = snap.wheel_time;
  wheel_next_ = snap.wheel_next;
  wheel_entries_ = snap.wheel_entries;
}

void Simulator::wheel_insert(const Event& ev) {
  if (wheel_entries_ == 0) {
    // The frontier can be arbitrarily stale after the wheel sat empty; snap
    // it to the current tick so the delta-based level choice below sees a
    // fresh window. All buckets are empty, so no cascade state is skipped.
    wheel_time_ = (now_ >> kWheelShift0) << kWheelShift0;
  }
  MEMCA_DCHECK(ev.time >= wheel_time_);
  // Level selection must use bucket-tick distance, not the raw time delta:
  // the frontier is only level-0 aligned, so a delta just under a level's
  // window can still span kWheelBuckets ticks at that level, wrapping the
  // absolute-time index onto the frontier's own bucket — a bucket the
  // advance loop would then (wrongly) treat as already due. Distance in
  // tick space keeps the level and the index consistent for any alignment.
  for (int level = 0; level < kWheelLevels; ++level) {
    const int shift = kWheelShift0 + level * kWheelLevelBits;
    if ((ev.time >> shift) - (wheel_time_ >> shift) < SimTime{kWheelBuckets}) {
      const std::uint32_t idx =
          static_cast<std::uint32_t>(ev.time >> shift) & (kWheelBuckets - 1);
      wheel_buckets_[(static_cast<std::uint32_t>(level) << kWheelLevelBits) + idx]
          .push_back(ev);
      wheel_occupied_[static_cast<std::size_t>(level)] |= std::uint64_t{1} << idx;
      ++wheel_entries_;
      const SimTime start = (ev.time >> shift) << shift;
      if (start < wheel_next_) wheel_next_ = start;
      return;
    }
  }
  heap_push(ev);  // beyond the wheel horizon (~4.77 simulated hours)
}

// Absolute start time of the earliest occupied bucket across levels. The
// occupancy window of each level starts at the frontier's bucket, so rotating
// the bitmap there turns "next occupied bucket" into a count-trailing-zeros.
SimTime Simulator::wheel_earliest_start() const {
  SimTime best = std::numeric_limits<SimTime>::max();
  for (int level = 0; level < kWheelLevels; ++level) {
    const std::uint64_t occ = wheel_occupied_[static_cast<std::size_t>(level)];
    if (occ == 0) continue;
    const int shift = kWheelShift0 + level * kWheelLevelBits;
    const std::uint64_t cur_tick = static_cast<std::uint64_t>(wheel_time_) >> shift;
    const std::uint64_t rot =
        std::rotr(occ, static_cast<int>(cur_tick & (kWheelBuckets - 1)));
    const int steps = std::countr_zero(rot);
    const SimTime start = static_cast<SimTime>(
        (cur_tick + static_cast<std::uint64_t>(steps)) << shift);
    if (start < best) best = start;
  }
  return best;
}

bool Simulator::advance_wheel(SimTime limit) {
  while (wheel_entries_ > 0) {
    // Earliest occupied bucket across levels, by absolute start time. The
    // occupancy window of each level starts at the frontier's bucket, so
    // rotating the bitmap there turns "next occupied bucket" into a
    // count-trailing-zeros.
    SimTime best_start = std::numeric_limits<SimTime>::max();
    int best_level = -1;
    for (int level = 0; level < kWheelLevels; ++level) {
      const std::uint64_t occ = wheel_occupied_[static_cast<std::size_t>(level)];
      if (occ == 0) continue;
      const int shift = kWheelShift0 + level * kWheelLevelBits;
      const std::uint64_t cur_tick = static_cast<std::uint64_t>(wheel_time_) >> shift;
      const std::uint64_t rot =
          std::rotr(occ, static_cast<int>(cur_tick & (kWheelBuckets - 1)));
      const int steps = std::countr_zero(rot);
      const SimTime start = static_cast<SimTime>(
          (cur_tick + static_cast<std::uint64_t>(steps)) << shift);
      if (start < best_start) {
        best_start = start;
        best_level = level;
      }
    }
    MEMCA_DCHECK(best_level >= 0);
    if (best_start > limit) {
      wheel_next_ = best_start;
      break;
    }

    const int shift = kWheelShift0 + best_level * kWheelLevelBits;
    const std::uint32_t idx =
        static_cast<std::uint32_t>(best_start >> shift) & (kWheelBuckets - 1);
    std::vector<Event>& bucket =
        wheel_buckets_[(static_cast<std::uint32_t>(best_level) << kWheelLevelBits) + idx];
    wheel_occupied_[static_cast<std::size_t>(best_level)] &= ~(std::uint64_t{1} << idx);
    wheel_entries_ -= bucket.size();

    if (best_level == 0) {
      // Frontier reached a level-0 bucket: sort its live entries once and
      // merge them into the sorted run. Feeding the heap instead would make
      // every entry pay a sift-up now and a full sift-down at pop time; via
      // the run each fires with a cursor increment, and the heap stays small
      // (short-delay events only), so its pops cheapen too. The merged run
      // is ordered by the same (time, seq) comparator the heap uses, so the
      // firing order is bit-for-bit unchanged.
      for (const Event& ev : bucket) {
        if (slot(ev.slot).seq_live == occupant_key(ev.seq)) {
          heap_push(ev);
        } else {
          MEMCA_DCHECK(cancelled_pending_ > 0);
          --cancelled_pending_;  // cancelled while parked; drop here
        }
      }
      bucket.clear();
      wheel_time_ = best_start + (SimTime{1} << kWheelShift0);
      wheel_next_ = wheel_entries_ > 0 ? wheel_earliest_start()
                                       : std::numeric_limits<SimTime>::max();
      return true;
    }

    // Higher-level bucket: advance the frontier to its start and cascade its
    // entries one step down (their delta now fits the lower level's window).
    // Staged through a scratch vector because reinsertion targets other
    // buckets of this same wheel. The storage is swapped back below so each
    // bucket's capacity stays monotone — restore() relies on that to refill
    // buckets from a Snapshot without allocating.
    wheel_time_ = best_start;
    wheel_scratch_.clear();
    std::swap(wheel_scratch_, bucket);
    bool fed_heap = false;
    for (const Event& ev : wheel_scratch_) {
      if (slot(ev.slot).seq_live != occupant_key(ev.seq)) {
        MEMCA_DCHECK(cancelled_pending_ > 0);
        --cancelled_pending_;
        continue;
      }
      // Same tick-distance level choice as wheel_insert (the frontier now
      // sits on a level-best_level boundary, so a lower level always fits a
      // bucket's worth of cascade range).
      bool refiled = false;
      for (int level = 0; level < best_level; ++level) {
        const int lshift = kWheelShift0 + level * kWheelLevelBits;
        if ((ev.time >> lshift) - (wheel_time_ >> lshift) < SimTime{kWheelBuckets}) {
          const std::uint32_t lidx =
              static_cast<std::uint32_t>(ev.time >> lshift) & (kWheelBuckets - 1);
          wheel_buckets_[(static_cast<std::uint32_t>(level) << kWheelLevelBits) + lidx]
              .push_back(ev);
          wheel_occupied_[static_cast<std::size_t>(level)] |= std::uint64_t{1} << lidx;
          ++wheel_entries_;
          refiled = true;
          break;
        }
      }
      // A mis-filed entry must never vanish: if no lower level accepts it
      // (impossible under the invariant above, but cheap to guard), fire it
      // through the heap at its correct time instead of dropping it.
      if (!refiled) {
        MEMCA_DCHECK(false);
        heap_push(ev);
        fed_heap = true;
      }
    }
    // The cascade only refiles into *lower* levels, so the drained bucket is
    // still empty: hand its storage back and keep the capacities home.
    std::swap(wheel_scratch_, bucket);
    bucket.clear();
    if (fed_heap) {
      // The caller's candidate pointer into the heap is stale; recompute the
      // earliest bucket and report so it re-picks.
      wheel_next_ = wheel_entries_ > 0 ? wheel_earliest_start()
                                       : std::numeric_limits<SimTime>::max();
      return true;
    }
  }
  // Nothing at or before `limit` remains parked; pull the frontier up to the
  // limit's tick (every bucket in between is empty) so the next insert and
  // advance start from a fresh window.
  if (wheel_entries_ == 0) wheel_next_ = std::numeric_limits<SimTime>::max();
  const SimTime snapped = (limit >> kWheelShift0) << kWheelShift0;
  if (snapped > wheel_time_) wheel_time_ = snapped;
  return false;
}

void Simulator::cancel_event(std::uint32_t index, std::uint64_t seq) {
  if (!event_pending(index, seq)) return;
  release_slot(index);
  --live_pending_;
  ++cancelled_pending_;  // its queue entry is now stale
  maybe_compact();
}

void Simulator::cancel_bulk(const EventHandle* handles, std::size_t n) {
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const EventHandle& h = handles[i];
    if (h.sim_ == nullptr || !event_pending(h.slot_, h.seq_)) continue;
    MEMCA_DCHECK(h.sim_ == this);
    release_slot(h.slot_);
    ++cancelled;
  }
  if (cancelled == 0) return;
  live_pending_ -= cancelled;
  cancelled_pending_ += cancelled;
  maybe_compact();
}

void Simulator::maybe_compact() {
  const std::size_t entries =
      heap_.size() + (sorted_.size() - cursor_) + wheel_entries_;
  if (entries < kCompactionMinimum || cancelled_pending_ * 2 <= entries) {
    return;
  }
  const auto stale = [this](const Event& ev) {
    return slot(ev.slot).seq_live != occupant_key(ev.seq);
  };
  std::erase_if(heap_, stale);
  heap_rebuild();
  // Drop the consumed head along with the stale entries; erase_if keeps the
  // relative order, so the run stays sorted without another sort.
  sorted_.erase(sorted_.begin(), sorted_.begin() + static_cast<std::ptrdiff_t>(cursor_));
  cursor_ = 0;
  std::erase_if(sorted_, stale);
  // Wheel buckets hold the bulk of the stale population in an RTO-heavy
  // workload (most retransmission timers are cancelled by the reply); sweep
  // them too so the zeroed counter below stays truthful.
  if (wheel_entries_ > 0) {
    for (int level = 0; level < kWheelLevels; ++level) {
      std::uint64_t occ = wheel_occupied_[static_cast<std::size_t>(level)];
      while (occ != 0) {
        const int idx = std::countr_zero(occ);
        occ &= occ - 1;
        std::vector<Event>& bucket =
            wheel_buckets_[(static_cast<std::uint32_t>(level) << kWheelLevelBits) +
                           static_cast<std::uint32_t>(idx)];
        const std::size_t before = bucket.size();
        std::erase_if(bucket, stale);
        wheel_entries_ -= before - bucket.size();
        if (bucket.empty()) {
          wheel_occupied_[static_cast<std::size_t>(level)] &=
              ~(std::uint64_t{1} << idx);
        }
      }
    }
    wheel_next_ = wheel_entries_ > 0 ? wheel_earliest_start()
                                     : std::numeric_limits<SimTime>::max();
  }
  cancelled_pending_ = 0;
}

PeriodicTask::PeriodicTask(Simulator& sim, SimTime period, InlineCallback fn,
                           bool fire_immediately)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  MEMCA_CHECK_MSG(period_ > 0, "period must be positive");
  MEMCA_CHECK_MSG(static_cast<bool>(fn_), "PeriodicTask needs a callback");
  arm(fire_immediately ? 0 : period_);
}

void PeriodicTask::stop() {
  running_ = false;
  next_.cancel();
}

void PeriodicTask::set_period(SimTime period) {
  MEMCA_CHECK_MSG(period > 0, "period must be positive");
  period_ = period;
}

void PeriodicTask::arm(SimTime delay) {
  next_ = sim_.schedule_in(delay, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm(period_);
  });
}

}  // namespace memca
