// Noisy-neighbor background load.
//
// Public-cloud hosts are multi-tenant: besides the victim and the
// adversary, other tenants' VMs come and go with their own memory traffic.
// This component drives a VM with an ON-OFF renewal process (exponential ON
// and OFF durations, noisy demand level), adding realistic interference
// noise to the contention model. Used to check that MemCA's signal survives
// — and hides inside — ordinary neighbor noise.
#pragma once

#include "cloud/host.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace memca::cloud {

struct NoisyNeighborConfig {
  /// Mean duration of an active (memory-hungry) phase.
  SimTime on_mean = sec(std::int64_t{5});
  /// Mean duration of a quiet phase.
  SimTime off_mean = sec(std::int64_t{10});
  /// Mean demand while active, GB/s.
  double demand_mean_gbps = 2.0;
  /// Coefficient of variation of the per-phase demand level.
  double demand_cv = 0.3;
};

class NoisyNeighbor {
 public:
  NoisyNeighbor(Simulator& sim, Host& host, VmId vm, NoisyNeighborConfig config, Rng rng);
  ~NoisyNeighbor();
  NoisyNeighbor(const NoisyNeighbor&) = delete;
  NoisyNeighbor& operator=(const NoisyNeighbor&) = delete;

  /// Starts the ON-OFF renewal process (begins with a quiet phase).
  void start();
  void stop();

  std::int64_t phases() const { return phases_; }
  bool active() const { return active_; }

 private:
  void enter_on();
  void enter_off();

  Simulator& sim_;
  Host& host_;
  VmId vm_;
  NoisyNeighborConfig config_;
  Rng rng_;
  bool running_ = false;
  bool active_ = false;
  std::int64_t phases_ = 0;
  EventHandle next_;

 public:
  /// Checkpoint of the renewal process (the pending phase-change handle
  /// round-trips; the simulator revives the same occupancy).
  struct Snapshot {
    Rng rng{0};
    bool running = false;
    bool active = false;
    std::int64_t phases = 0;
    EventHandle next;
  };

  void capture(Snapshot& out) const {
    out.rng = rng_;
    out.running = running_;
    out.active = active_;
    out.phases = phases_;
    out.next = next_;
  }

  void restore(const Snapshot& snap) {
    rng_ = snap.rng;
    running_ = snap.running;
    active_ = snap.active;
    phases_ = snap.phases;
    next_ = snap.next;
  }
};

}  // namespace memca::cloud
