#include "cloud/llc.h"

#include <algorithm>

#include "common/check.h"

namespace memca::cloud {

double LlcModel::expected_misses(SimTime window, double bus_fraction,
                                 double lock_fraction) const {
  MEMCA_CHECK_MSG(window > 0, "window must be positive");
  MEMCA_CHECK_MSG(bus_fraction >= 0.0 && bus_fraction <= 1.0, "fraction must be in [0, 1]");
  MEMCA_CHECK_MSG(lock_fraction >= 0.0 && lock_fraction <= 1.0, "fraction must be in [0, 1]");
  const double seconds = to_seconds(window);
  // Weighted mixture of the three regimes within the window. Overlap of both
  // attacks takes the stronger (bus) multiplier.
  const double both = std::min(bus_fraction, lock_fraction);
  const double bus_only = bus_fraction - both;
  const double lock_only = lock_fraction - both;
  const double idle = std::max(0.0, 1.0 - bus_only - lock_only - both);
  const double rate =
      params_.base_miss_rate *
      (idle + (bus_only + both) * params_.bus_attack_multiplier +
       lock_only * params_.lock_attack_multiplier);
  return rate * seconds;
}

double LlcModel::observe(SimTime window, double bus_fraction, double lock_fraction,
                         Rng& rng) const {
  const double expected = expected_misses(window, bus_fraction, lock_fraction);
  const double noisy = rng.normal(expected, params_.noise_cv * expected);
  return std::max(0.0, noisy);
}

TimeSeries LlcModel::sample_series(SimTime duration, SimTime window,
                                   const std::function<double(SimTime, SimTime)>& bus_fraction,
                                   const std::function<double(SimTime, SimTime)>& lock_fraction,
                                   Rng& rng) const {
  MEMCA_CHECK_MSG(duration > 0 && window > 0, "duration and window must be positive");
  TimeSeries out;
  for (SimTime t = 0; t + window <= duration; t += window) {
    const double bus = bus_fraction(t, t + window);
    const double lock = lock_fraction(t, t + window);
    out.append(t, observe(window, bus, lock, rng));
  }
  return out;
}

}  // namespace memca::cloud
