// Cross-resource coupling: memory bandwidth → effective CPU capacity.
//
// This is the paper's central mechanism (Section II-A, IV-B): when the
// victim VM's achievable memory bandwidth drops below what its workload
// needs, its CPU stalls on memory and the tier's *service capacity* drops,
// even though no vCPU is shared with the adversary. The coupling exposes a
// capacity multiplier in (0, 1] — the paper's degradation index D, with
// C_on = D * C_off (Eq. 3) — and pushes updates whenever host contention
// changes.
#pragma once

#include <functional>

#include "cloud/host.h"
#include "common/check.h"

namespace memca::cloud {

struct CrossResourceParams {
  /// Bandwidth the victim's workload needs at full service capacity, GB/s.
  double victim_demand_gbps = 3.0;
  /// Lower bound on the multiplier: even fully starved of bandwidth, some
  /// fraction of the work is cache-resident and still proceeds.
  double multiplier_floor = 0.05;
};

class CrossResourceModel {
 public:
  /// Registers the victim's steady demand on the host and starts watching
  /// contention changes.
  CrossResourceModel(Host& host, VmId victim, CrossResourceParams params = {});

  /// Current capacity multiplier D in [floor, 1].
  double capacity_multiplier() const;

  /// Registers a callback invoked with the new multiplier whenever host
  /// memory contention changes.
  void on_multiplier_change(std::function<void(double)> fn);

  VmId victim() const { return victim_; }
  const CrossResourceParams& params() const { return params_; }

  /// Checkpoint: only the observer count is mutable here (the victim demand
  /// lives in the Host's snapshot). Observers added after the capture are
  /// dropped by restore().
  struct Snapshot {
    std::size_t num_observers = 0;
  };

  void capture(Snapshot& out) const { out.num_observers = observers_.size(); }
  void restore(const Snapshot& snap) {
    MEMCA_CHECK(snap.num_observers <= observers_.size());
    observers_.resize(snap.num_observers);
  }

 private:
  Host& host_;
  VmId victim_;
  CrossResourceParams params_;
  std::vector<std::function<void(double)>> observers_;
};

}  // namespace memca::cloud
