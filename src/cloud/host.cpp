#include "cloud/host.h"

#include <algorithm>

#include "common/check.h"

namespace memca::cloud {

Host::Host(HostSpec spec, MemBwModelParams bw_params)
    : spec_(std::move(spec)), bw_model_(bw_params) {
  MEMCA_CHECK_MSG(!spec_.packages.empty(), "a host needs at least one package");
}

VmId Host::add_vm(VmSpec spec) {
  if (spec.placement == Placement::kPinnedPackage) {
    MEMCA_CHECK_MSG(spec.package >= 0 &&
                        spec.package < static_cast<int>(spec_.packages.size()),
                    "pinned VM must name an existing package");
  }
  vms_.push_back(VmState{std::move(spec), 0.0, 0.0});
  return static_cast<VmId>(vms_.size() - 1);
}

const VmSpec& Host::vm(VmId id) const {
  MEMCA_CHECK(id >= 0 && id < static_cast<VmId>(vms_.size()));
  return vms_[static_cast<std::size_t>(id)].spec;
}

void Host::set_memory_activity(VmId id, double demand_gbps, double lock_duty) {
  MEMCA_CHECK(id >= 0 && id < static_cast<VmId>(vms_.size()));
  MEMCA_CHECK_MSG(demand_gbps >= 0.0, "demand must be non-negative");
  MEMCA_CHECK_MSG(lock_duty >= 0.0 && lock_duty < 1.0, "lock duty must be in [0, 1)");
  auto& state = vms_[static_cast<std::size_t>(id)];
  if (state.demand_gbps == demand_gbps && state.lock_duty == lock_duty) return;
  state.demand_gbps = demand_gbps;
  state.lock_duty = lock_duty;
  notify();
}

std::vector<StreamDemand> Host::package_streams(int pkg) const {
  std::vector<StreamDemand> streams;
  const auto n_packages = static_cast<double>(spec_.packages.size());
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    const VmState& v = vms_[i];
    const double demand = v.effective_demand();
    const double lock = v.effective_lock_duty();
    if (demand == 0.0 && lock == 0.0) continue;
    StreamDemand s;
    s.vm = static_cast<VmId>(i);
    s.parallelism = v.spec.vcpus;
    if (v.spec.placement == Placement::kPinnedPackage) {
      if (v.spec.package != pkg) continue;
      s.demand_gbps = demand;
      s.lock_duty = lock;
    } else {
      // Floating vCPUs spend 1/P of their time on each package, so each
      // package sees a proportionally diluted stream. This is what makes
      // "random package" placement degrade less (Fig. 3).
      s.demand_gbps = demand / n_packages;
      s.lock_duty = lock / n_packages;
    }
    streams.push_back(s);
  }
  return streams;
}

void Host::set_memory_isolation(VmId id, double max_lock_duty, double max_demand_gbps) {
  MEMCA_CHECK(id >= 0 && id < static_cast<VmId>(vms_.size()));
  MEMCA_CHECK_MSG(max_lock_duty >= 0.0 && max_lock_duty < 1.0,
                  "lock-duty cap must be in [0, 1)");
  MEMCA_CHECK_MSG(max_demand_gbps >= 0.0, "demand cap must be non-negative");
  auto& state = vms_[static_cast<std::size_t>(id)];
  state.isolation = true;
  state.max_lock_duty = max_lock_duty;
  state.max_demand_gbps = max_demand_gbps;
  notify();
}

void Host::clear_memory_isolation(VmId id) {
  MEMCA_CHECK(id >= 0 && id < static_cast<VmId>(vms_.size()));
  auto& state = vms_[static_cast<std::size_t>(id)];
  if (!state.isolation) return;
  state.isolation = false;
  notify();
}

bool Host::isolated(VmId id) const {
  MEMCA_CHECK(id >= 0 && id < static_cast<VmId>(vms_.size()));
  return vms_[static_cast<std::size_t>(id)].isolation;
}

double Host::achieved_bandwidth(VmId id) const {
  MEMCA_CHECK(id >= 0 && id < static_cast<VmId>(vms_.size()));
  double total = 0.0;
  for (int pkg = 0; pkg < static_cast<int>(spec_.packages.size()); ++pkg) {
    const auto streams = package_streams(pkg);
    const auto results =
        bw_model_.share_package(spec_.packages[static_cast<std::size_t>(pkg)], streams);
    for (const StreamResult& r : results) {
      if (r.vm == id) total += r.achieved_gbps;
    }
  }
  return total;
}

double Host::demand(VmId id) const {
  MEMCA_CHECK(id >= 0 && id < static_cast<VmId>(vms_.size()));
  return vms_[static_cast<std::size_t>(id)].demand_gbps;
}

double Host::lock_duty(VmId id) const {
  MEMCA_CHECK(id >= 0 && id < static_cast<VmId>(vms_.size()));
  return vms_[static_cast<std::size_t>(id)].lock_duty;
}

bool Host::any_lock_active() const {
  return std::any_of(vms_.begin(), vms_.end(),
                     [](const VmState& v) { return v.lock_duty > 0.0; });
}

double Host::total_demand() const {
  double total = 0.0;
  for (const VmState& v : vms_) total += v.demand_gbps;
  return total;
}

void Host::on_contention_change(std::function<void()> fn) {
  MEMCA_CHECK(static_cast<bool>(fn));
  observers_.push_back(std::move(fn));
}

void Host::notify() {
  for (const auto& fn : observers_) fn();
}

}  // namespace memca::cloud
