// Physical host topology: processor packages and their shared resources.
//
// Models the on-chip resource structure of Figure 1 in the paper: a host has
// one or more processor packages; within a package the last-level cache and
// the memory bus (controller, bank and channel schedulers) are shared by all
// co-located VMs, while vCPUs themselves are isolated by the hypervisor.
#pragma once

#include <string>
#include <vector>

#include "common/check.h"

namespace memca::cloud {

/// One processor package (socket): cores plus the package-shared resources.
struct PackageSpec {
  int cores = 6;
  /// Last-level cache size, MB (shared within the package).
  double llc_mb = 15.0;
  /// Peak aggregate memory bandwidth of the package, GB/s.
  double mem_bw_gbps = 21.0;
  /// Maximum bandwidth a single core / vCPU stream can draw, GB/s.
  double single_stream_gbps = 10.5;
};

/// A physical host: a set of packages. Mirrors the paper's profiling host
/// (12-core, 2-package Xeon E5-2603 v3, 15 MB LLC per package).
struct HostSpec {
  std::string name = "host";
  std::vector<PackageSpec> packages = {PackageSpec{}, PackageSpec{}};

  int total_cores() const {
    int n = 0;
    for (const auto& p : packages) n += p.cores;
    return n;
  }
};

/// Returns the paper's private-cloud profiling host (Section III).
inline HostSpec xeon_e5_2603_v3() {
  HostSpec host;
  host.name = "xeon-e5-2603v3";
  host.packages = {PackageSpec{6, 15.0, 21.0, 10.5}, PackageSpec{6, 15.0, 21.0, 10.5}};
  return host;
}

/// Returns an EC2 dedicated-node style host (two ten-core E5-2680, Section V).
inline HostSpec ec2_dedicated_node() {
  HostSpec host;
  host.name = "ec2-dedicated-e5-2680";
  host.packages = {PackageSpec{10, 25.0, 40.0, 12.0}, PackageSpec{10, 25.0, 40.0, 12.0}};
  return host;
}

/// How a VM's vCPUs are mapped onto packages.
enum class Placement {
  /// All vCPUs pinned to cores of one package (the paper's "same package").
  kPinnedPackage,
  /// vCPUs float over all cores/packages (the paper's "random package",
  /// the common practice in real clouds).
  kFloating,
};

/// A virtual machine as the contention model sees it.
struct VmSpec {
  std::string name;
  int vcpus = 1;
  Placement placement = Placement::kPinnedPackage;
  /// Package index when pinned; ignored when floating.
  int package = 0;
};

using VmId = int;
inline constexpr VmId kInvalidVm = -1;

}  // namespace memca::cloud
