// Shared memory-bandwidth contention model (reproduces Figure 3).
//
// Given the set of active memory streams on a package — each stream is a
// VM's demand in GB/s, optionally holding bus locks for a duty fraction —
// the model computes the bandwidth each stream actually achieves:
//
//  * Bus sharing: the package's usable bandwidth shrinks with the number of
//    concurrent streams (scheduler contention overhead), and streams split
//    it by water-filling (nobody gets more than they demand; leftover is
//    redistributed).
//  * Bus locking: unaligned atomic operations lock the whole bus for their
//    duration. While a locker holds the bus for duty fraction f, every
//    other stream on the package is blocked, so non-locking streams achieve
//    only (1 - f_total) of their water-filled share. Lockers themselves
//    move very little data (lock/unlock dominates), which is exactly why
//    the attack is cheap for the adversary and invisible to LLC-miss
//    monitoring (Figure 11).
//
// Floating VMs split their demand evenly over all packages, which is why
// "random package" placement degrades less than "same package" in Fig. 3.
#pragma once

#include <vector>

#include "cloud/topology.h"

namespace memca::cloud {

/// One VM's active memory activity on one package.
struct StreamDemand {
  VmId vm = kInvalidVm;
  /// Requested bandwidth on this package, GB/s.
  double demand_gbps = 0.0;
  /// Fraction of time this stream holds the memory bus locked, in [0, 1).
  double lock_duty = 0.0;
  /// Concurrent hardware streams backing the demand (the VM's vCPUs): the
  /// achievable bandwidth is capped at parallelism × single-stream ceiling.
  int parallelism = 1;
};

/// Result for one stream.
struct StreamResult {
  VmId vm = kInvalidVm;
  double achieved_gbps = 0.0;
};

struct MemBwModelParams {
  /// Per-extra-stream scheduler contention penalty: usable bandwidth is
  /// peak / (1 + alpha * (k - 1)) with k active streams.
  double contention_alpha = 0.05;
  /// Bandwidth a locking stream itself achieves at duty 1.0, GB/s.
  double locker_self_gbps = 0.9;
};

class MemoryBandwidthModel {
 public:
  explicit MemoryBandwidthModel(MemBwModelParams params = {}) : params_(params) {}

  /// Computes achieved bandwidth for every stream active on one package.
  std::vector<StreamResult> share_package(const PackageSpec& package,
                                          const std::vector<StreamDemand>& streams) const;

  /// Combined fraction of time the bus is locked given individual duties
  /// (independent lockers: 1 - prod(1 - f_i), saturating below 1).
  static double combined_lock_duty(const std::vector<StreamDemand>& streams);

  const MemBwModelParams& params() const { return params_; }

 private:
  MemBwModelParams params_;
};

}  // namespace memca::cloud
