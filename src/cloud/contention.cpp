#include "cloud/contention.h"

#include <algorithm>

#include "common/check.h"

namespace memca::cloud {

CrossResourceModel::CrossResourceModel(Host& host, VmId victim, CrossResourceParams params)
    : host_(host), victim_(victim), params_(params) {
  MEMCA_CHECK_MSG(params_.victim_demand_gbps > 0.0, "victim demand must be positive");
  MEMCA_CHECK_MSG(params_.multiplier_floor > 0.0 && params_.multiplier_floor <= 1.0,
                  "multiplier floor must be in (0, 1]");
  host_.set_memory_activity(victim_, params_.victim_demand_gbps, 0.0);
  host_.on_contention_change([this] {
    const double m = capacity_multiplier();
    for (const auto& fn : observers_) fn(m);
  });
}

double CrossResourceModel::capacity_multiplier() const {
  const double achieved = host_.achieved_bandwidth(victim_);
  const double ratio = achieved / params_.victim_demand_gbps;
  return std::clamp(ratio, params_.multiplier_floor, 1.0);
}

void CrossResourceModel::on_multiplier_change(std::function<void(double)> fn) {
  MEMCA_CHECK(static_cast<bool>(fn));
  observers_.push_back(std::move(fn));
}

}  // namespace memca::cloud
