// Memory attack programs run inside an adversary VM (Section III).
//
// Two attack types, matching the paper's measurements:
//  * kBusSaturate — a RAMspeed-style streaming kernel that pulls as much
//    bandwidth as one vCPU can, evicting the LLC as a side effect (which is
//    what makes this variant visible to LLC-miss monitoring, Fig. 11a).
//  * kMemoryLock — unaligned atomic operations spanning two cache lines,
//    which lock the memory bus for their duration. Far more effective at
//    starving co-located VMs (Fig. 3) and invisible to LLC-miss monitoring
//    (Fig. 11b).
//
// The program is ON/OFF switchable (the MemCA burst scheduler drives it) and
// records its execution windows — MemCA-FE uses the window lengths as the
// conservative millibottleneck estimate (Section IV-C).
#pragma once

#include <vector>

#include "cloud/host.h"
#include "common/time.h"
#include "sim/simulator.h"
#include "trace/recorder.h"

namespace memca::cloud {

enum class MemoryAttackType {
  kBusSaturate,
  kMemoryLock,
};

const char* to_string(MemoryAttackType type);

struct ExecutionWindow {
  SimTime start = 0;
  SimTime end = 0;
  SimTime length() const { return end - start; }
};

class MemoryAttackProgram {
 public:
  /// `intensity` in (0, 1] scales the attack: fraction of the single-stream
  /// bandwidth ceiling for kBusSaturate, fraction of the maximum safe lock
  /// duty for kMemoryLock.
  MemoryAttackProgram(Simulator& sim, Host& host, VmId adversary_vm, MemoryAttackType type,
                      double intensity = 1.0);
  ~MemoryAttackProgram();
  MemoryAttackProgram(const MemoryAttackProgram&) = delete;
  MemoryAttackProgram& operator=(const MemoryAttackProgram&) = delete;

  /// Starts the attack kernel (idempotent).
  void start();
  /// Stops it and records the execution window (idempotent).
  void stop();
  bool running() const { return running_; }

  void set_intensity(double intensity);
  double intensity() const { return intensity_; }
  MemoryAttackType type() const { return type_; }
  void set_type(MemoryAttackType type);
  VmId adversary_vm() const { return vm_; }

  /// Completed execution windows (MemCA-FE's raw stealth telemetry).
  const std::vector<ExecutionWindow>& windows() const { return windows_; }
  /// Total ON time accumulated so far, including a still-open window.
  SimTime total_on_time() const;

  /// Maximum lock duty the kernel can sustain (lock/unlock overhead bound).
  static constexpr double kMaxLockDuty = 0.95;

  /// Attaches a span-event recorder for burst ON/OFF marks (not owned).
  void set_trace(trace::TraceRecorder* recorder) { trace_ = recorder; }

 private:
  void apply_activity();

  Simulator& sim_;
  Host& host_;
  VmId vm_;
  MemoryAttackType type_;
  double intensity_;
  trace::TraceRecorder* trace_ = nullptr;
  bool running_ = false;
  SimTime window_start_ = 0;
  std::vector<ExecutionWindow> windows_;
};

}  // namespace memca::cloud
