// Last-level-cache miss model for the victim VM (reproduces Figure 11).
//
// The paper's host-level detection experiment monitors the victim's LLC
// misses with OProfile. The observable difference between the two attack
// kernels:
//  * bus saturation streams through memory and *cleanses the LLC*, so the
//    victim's miss rate spikes during every burst → periodic, detectable;
//  * memory locking issues a handful of locked operations and touches
//    almost no cache, so the victim's miss series shows only its own noise
//    → no pattern, undetectable from this metric.
//
// The model produces a per-interval miss-count series given the attack
// schedule, with multiplicative log-normal-ish measurement noise.
#pragma once

#include <functional>

#include "common/rng.h"
#include "common/timeseries.h"

namespace memca::cloud {

struct LlcModelParams {
  /// Victim's baseline LLC miss rate, misses per second.
  double base_miss_rate = 2.0e6;
  /// Multiplier applied to the victim's miss rate while a bus-saturating
  /// stream shares its package (LLC cleansing).
  double bus_attack_multiplier = 8.0;
  /// Multiplier while only a locking attack is active: locked operations
  /// bypass the cache hierarchy entirely, so the victim's miss rate does
  /// not move — this is what blinds LLC-based detection (Fig. 11b).
  double lock_attack_multiplier = 1.0;
  /// Coefficient of variation of the sampling noise.
  double noise_cv = 0.12;
};

class LlcModel {
 public:
  explicit LlcModel(LlcModelParams params = {}) : params_(params) {}

  /// Expected misses in one interval of `window` given which attacks
  /// overlap it for fractions `bus_fraction` / `lock_fraction` of it.
  double expected_misses(SimTime window, double bus_fraction, double lock_fraction) const;

  /// One noisy observation of `expected_misses`.
  double observe(SimTime window, double bus_fraction, double lock_fraction, Rng& rng) const;

  /// Builds a sampled miss series over [0, duration): for each window, the
  /// schedule callback reports the fraction of the window each attack type
  /// was active.
  TimeSeries sample_series(SimTime duration, SimTime window,
                           const std::function<double(SimTime, SimTime)>& bus_fraction,
                           const std::function<double(SimTime, SimTime)>& lock_fraction,
                           Rng& rng) const;

  const LlcModelParams& params() const { return params_; }

 private:
  LlcModelParams params_;
};

}  // namespace memca::cloud
