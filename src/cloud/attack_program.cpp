#include "cloud/attack_program.h"

#include "common/check.h"

namespace memca::cloud {

const char* to_string(MemoryAttackType type) {
  switch (type) {
    case MemoryAttackType::kBusSaturate:
      return "bus-saturate";
    case MemoryAttackType::kMemoryLock:
      return "memory-lock";
  }
  return "?";
}

MemoryAttackProgram::MemoryAttackProgram(Simulator& sim, Host& host, VmId adversary_vm,
                                         MemoryAttackType type, double intensity)
    : sim_(sim), host_(host), vm_(adversary_vm), type_(type), intensity_(intensity) {
  MEMCA_CHECK_MSG(intensity_ > 0.0 && intensity_ <= 1.0, "intensity must be in (0, 1]");
}

MemoryAttackProgram::~MemoryAttackProgram() {
  if (running_) stop();
}

void MemoryAttackProgram::start() {
  if (running_) return;
  running_ = true;
  window_start_ = sim_.now();
  trace::emit(trace_, trace::TraceEvent{sim_.now(), 0, 0, intensity_, -1, -1,
                                        trace::EventKind::kBurstOn, 0});
  apply_activity();
}

void MemoryAttackProgram::stop() {
  if (!running_) return;
  running_ = false;
  windows_.push_back(ExecutionWindow{window_start_, sim_.now()});
  trace::emit(trace_, trace::TraceEvent{sim_.now(), 0, 0, 0.0, -1, -1,
                                        trace::EventKind::kBurstOff, 0});
  host_.clear_memory_activity(vm_);
}

void MemoryAttackProgram::set_intensity(double intensity) {
  MEMCA_CHECK_MSG(intensity > 0.0 && intensity <= 1.0, "intensity must be in (0, 1]");
  intensity_ = intensity;
  if (running_) apply_activity();
}

void MemoryAttackProgram::set_type(MemoryAttackType type) {
  type_ = type;
  if (running_) apply_activity();
}

SimTime MemoryAttackProgram::total_on_time() const {
  SimTime total = 0;
  for (const ExecutionWindow& w : windows_) total += w.length();
  if (running_) total += sim_.now() - window_start_;
  return total;
}

void MemoryAttackProgram::apply_activity() {
  // The adversary VM's package: pinned VMs attack their own package; a
  // floating adversary dilutes over packages (handled inside Host).
  const PackageSpec& pkg = host_.spec().packages[static_cast<std::size_t>(
      host_.vm(vm_).placement == Placement::kPinnedPackage ? host_.vm(vm_).package : 0)];
  switch (type_) {
    case MemoryAttackType::kBusSaturate:
      // The streaming kernel runs one thread per vCPU of the adversary VM.
      host_.set_memory_activity(
          vm_, intensity_ * pkg.single_stream_gbps * host_.vm(vm_).vcpus, 0.0);
      break;
    case MemoryAttackType::kMemoryLock:
      host_.set_memory_activity(vm_, 0.0, intensity_ * kMaxLockDuty);
      break;
  }
}

}  // namespace memca::cloud
