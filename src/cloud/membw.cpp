#include "cloud/membw.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace memca::cloud {

double MemoryBandwidthModel::combined_lock_duty(const std::vector<StreamDemand>& streams) {
  double unlocked = 1.0;
  for (const StreamDemand& s : streams) {
    MEMCA_CHECK_MSG(s.lock_duty >= 0.0 && s.lock_duty < 1.0, "lock duty must be in [0, 1)");
    unlocked *= (1.0 - s.lock_duty);
  }
  return 1.0 - unlocked;
}

std::vector<StreamResult> MemoryBandwidthModel::share_package(
    const PackageSpec& package, const std::vector<StreamDemand>& streams) const {
  std::vector<StreamResult> out;
  out.reserve(streams.size());

  // Active streams are those demanding bandwidth or holding locks.
  std::size_t active = 0;
  for (const StreamDemand& s : streams) {
    MEMCA_CHECK_MSG(s.demand_gbps >= 0.0, "demand must be non-negative");
    if (s.demand_gbps > 0.0 || s.lock_duty > 0.0) ++active;
  }
  if (active == 0) {
    for (const StreamDemand& s : streams) out.push_back(StreamResult{s.vm, 0.0});
    return out;
  }

  const double usable =
      package.mem_bw_gbps / (1.0 + params_.contention_alpha * static_cast<double>(active - 1));
  const double lock_duty = combined_lock_duty(streams);
  const double unlocked_fraction = 1.0 - lock_duty;

  // Water-filling over the non-locking demands within the unlocked window.
  // Each stream's demand is first capped by the single-stream ceiling.
  struct Work {
    std::size_t index;
    double remaining_demand;
    double achieved = 0.0;
    bool locker = false;
  };
  std::vector<Work> work;
  work.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    Work w;
    w.index = i;
    const double cap =
        package.single_stream_gbps * static_cast<double>(std::max(1, streams[i].parallelism));
    w.remaining_demand = std::min(streams[i].demand_gbps, cap);
    w.locker = streams[i].lock_duty > 0.0;
    work.push_back(w);
  }

  double budget = usable * unlocked_fraction;
  // Iterative water-filling weighted by parallelism: the memory scheduler
  // is stream-fair, so a VM issuing k concurrent streams draws k shares.
  // Satisfied streams return their surplus for redistribution.
  std::vector<Work*> unsatisfied;
  for (Work& w : work) {
    if (!w.locker && w.remaining_demand > 0.0) unsatisfied.push_back(&w);
  }
  while (!unsatisfied.empty() && budget > 1e-12) {
    double total_weight = 0.0;
    for (const Work* w : unsatisfied) {
      total_weight += static_cast<double>(std::max(1, streams[w->index].parallelism));
    }
    std::vector<Work*> next;
    double consumed = 0.0;
    for (Work* w : unsatisfied) {
      const double weight = static_cast<double>(std::max(1, streams[w->index].parallelism));
      const double share = budget * weight / total_weight;
      const double take = std::min(share, w->remaining_demand);
      w->achieved += take;
      w->remaining_demand -= take;
      consumed += take;
      if (w->remaining_demand > 1e-12) next.push_back(w);
    }
    budget -= consumed;
    if (next.size() == unsatisfied.size()) break;  // nobody saturated: done
    unsatisfied = std::move(next);
  }

  // Lockers achieve bandwidth proportional to their duty: lock/unlock cycles
  // move little data.
  for (Work& w : work) {
    if (w.locker) {
      w.achieved = params_.locker_self_gbps * streams[w.index].lock_duty +
                   std::min(w.remaining_demand, 0.0);
      // A locker may also stream in its unlocked window, bounded by what is
      // left of the bus.
      if (streams[w.index].demand_gbps > 0.0) {
        const double cap = std::min(streams[w.index].demand_gbps, package.single_stream_gbps);
        w.achieved += std::min(cap, std::max(0.0, budget)) * unlocked_fraction;
      }
    }
  }

  for (const Work& w : work) out.push_back(StreamResult{streams[w.index].vm, w.achieved});
  return out;
}

}  // namespace memca::cloud
