// A physical host with co-located VMs and their memory activity.
//
// The Host is the meeting point of the contention model: VMs register their
// current memory activity (streaming demand and/or bus-lock duty), and any
// component can ask what bandwidth a VM actually achieves right now. State
// changes notify observers so cross-resource couplings (memory bandwidth →
// CPU capacity) can react immediately — this is the mechanism by which an
// adversary VM's burst throttles the victim tier.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "cloud/membw.h"
#include "cloud/topology.h"
#include "common/check.h"

namespace memca::cloud {

class Host {
 public:
  explicit Host(HostSpec spec, MemBwModelParams bw_params = {});

  /// Registers a VM on this host; returns its id.
  VmId add_vm(VmSpec spec);

  std::size_t vm_count() const { return vms_.size(); }
  const VmSpec& vm(VmId id) const;
  const HostSpec& spec() const { return spec_; }

  /// Sets the VM's current memory activity. Passing zeros clears it.
  void set_memory_activity(VmId id, double demand_gbps, double lock_duty = 0.0);
  /// Clears the VM's memory activity.
  void clear_memory_activity(VmId id) { set_memory_activity(id, 0.0, 0.0); }

  /// Hypervisor-level memory isolation (Heracles-style): caps the VM's
  /// *effective* bus-lock duty and streaming demand regardless of what the
  /// guest requests. The defense substrate's actuator.
  void set_memory_isolation(VmId id, double max_lock_duty, double max_demand_gbps);
  /// Removes the isolation caps.
  void clear_memory_isolation(VmId id);
  bool isolated(VmId id) const;

  /// Bandwidth the VM currently achieves, GB/s, summed over packages.
  double achieved_bandwidth(VmId id) const;
  /// The VM's currently registered demand, GB/s.
  double demand(VmId id) const;
  /// The VM's currently registered lock duty.
  double lock_duty(VmId id) const;

  /// True if any VM currently holds bus locks.
  bool any_lock_active() const;
  /// Aggregate demand currently registered on the host, GB/s.
  double total_demand() const;

  /// Registers a callback fired after any memory-activity change.
  void on_contention_change(std::function<void()> fn);

  const MemoryBandwidthModel& bandwidth_model() const { return bw_model_; }

 private:
  struct VmState {
    VmSpec spec;
    double demand_gbps = 0.0;
    double lock_duty = 0.0;
    bool isolation = false;
    double max_lock_duty = 1.0;
    double max_demand_gbps = 1e9;

    double effective_demand() const {
      return isolation ? std::min(demand_gbps, max_demand_gbps) : demand_gbps;
    }
    double effective_lock_duty() const {
      return isolation ? std::min(lock_duty, max_lock_duty) : lock_duty;
    }
  };

  /// Streams contributed by all VMs to package `pkg`.
  std::vector<StreamDemand> package_streams(int pkg) const;
  void notify();

  HostSpec spec_;
  MemoryBandwidthModel bw_model_;
  std::vector<VmState> vms_;
  std::vector<std::function<void()>> observers_;

 public:
  /// Checkpoint of the host's mutable contention state: per-VM activity and
  /// isolation caps, plus the observer count (observers registered after the
  /// capture are dropped; earlier ones keep their bound closures). The VM
  /// roster must match — add_vm after a capture is not restorable.
  struct Snapshot {
    std::vector<VmState> vms;
    std::size_t num_observers = 0;
  };

  void capture(Snapshot& out) const {
    out.vms.assign(vms_.begin(), vms_.end());
    out.num_observers = observers_.size();
  }

  void restore(const Snapshot& snap) {
    MEMCA_CHECK(snap.vms.size() == vms_.size() &&
                snap.num_observers <= observers_.size());
    std::copy(snap.vms.begin(), snap.vms.end(), vms_.begin());
    observers_.resize(snap.num_observers);
  }
};

}  // namespace memca::cloud
