#include "cloud/background.h"

#include <algorithm>

#include "common/check.h"

namespace memca::cloud {

NoisyNeighbor::NoisyNeighbor(Simulator& sim, Host& host, VmId vm, NoisyNeighborConfig config,
                             Rng rng)
    : sim_(sim), host_(host), vm_(vm), config_(config), rng_(std::move(rng)) {
  MEMCA_CHECK_MSG(config_.on_mean > 0 && config_.off_mean > 0, "phase means must be positive");
  MEMCA_CHECK_MSG(config_.demand_mean_gbps > 0.0, "demand must be positive");
}

NoisyNeighbor::~NoisyNeighbor() { stop(); }

void NoisyNeighbor::start() {
  if (running_) return;
  running_ = true;
  enter_off();
}

void NoisyNeighbor::stop() {
  running_ = false;
  next_.cancel();
  if (active_) {
    host_.clear_memory_activity(vm_);
    active_ = false;
  }
}

void NoisyNeighbor::enter_on() {
  if (!running_) return;
  ++phases_;
  active_ = true;
  const double demand = std::max(
      0.1, rng_.normal(config_.demand_mean_gbps, config_.demand_cv * config_.demand_mean_gbps));
  host_.set_memory_activity(vm_, demand, 0.0);
  next_ = sim_.schedule_in(rng_.exponential_time(config_.on_mean), [this] { enter_off(); });
}

void NoisyNeighbor::enter_off() {
  if (!running_) return;
  active_ = false;
  host_.clear_memory_activity(vm_);
  next_ = sim_.schedule_in(rng_.exponential_time(config_.off_mean), [this] { enter_on(); });
}

}  // namespace memca::cloud
