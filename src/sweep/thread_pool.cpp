#include "sweep/thread_pool.h"

#include <cstdlib>

#include "common/check.h"

namespace memca::sweep {

int default_thread_count() {
  if (const char* env = std::getenv("MEMCA_SWEEP_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_thread_count();
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> job) {
  MEMCA_CHECK_MSG(static_cast<bool>(job), "cannot post an empty job");
  {
    std::lock_guard<std::mutex> lock(mu_);
    MEMCA_CHECK_MSG(!stop_, "cannot post to a stopping pool");
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace memca::sweep
