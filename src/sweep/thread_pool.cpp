#include "sweep/thread_pool.h"

#include <cstdlib>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "common/check.h"

namespace memca::sweep {
namespace {

/// Pins the calling worker to one CPU (no-op off Linux). Failure is
/// harmless — the thread just stays migratable — so the result is ignored.
void pin_to_cpu(int worker_index) {
#ifdef __linux__
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(worker_index) % hw, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker_index;
#endif
}

}  // namespace

int default_thread_count() {
  if (const char* env = std::getenv("MEMCA_SWEEP_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

bool affinity_enabled() {
  const char* env = std::getenv("MEMCA_SWEEP_AFFINITY");
  return env != nullptr && std::atoi(env) > 0;
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_thread_count();
  const bool pin = affinity_enabled();
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i, pin] {
      if (pin) pin_to_cpu(i);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> job) {
  MEMCA_CHECK_MSG(static_cast<bool>(job), "cannot post an empty job");
  {
    std::lock_guard<std::mutex> lock(mu_);
    MEMCA_CHECK_MSG(!stop_, "cannot post to a stopping pool");
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace memca::sweep
