// Deterministic parallel execution of independent scenario cells.
//
// Every figure and ablation reduces to evaluating an embarrassingly-parallel
// grid of attack parameters, one full Simulator/RubbosTestbed per cell.
// SweepRunner executes such a batch on a thread pool and returns results in
// cell order regardless of scheduling. Because each cell owns its entire
// simulation (simulator, RNG streams forked from the cell's own seed,
// monitors), per-seed results are bit-identical to running the cells
// sequentially — a property the sweep determinism test enforces.
//
// Scheduling is worker-affine: the batch is split into contiguous chunks,
// one per worker, instead of being handed out through a shared counter.
// Adjacent cells therefore run on the same worker in cell order, which is
// what lets a cell reuse its predecessor's warmed-up world through the
// WorkerCache — a work-stealing counter would interleave cells across
// workers and defeat the reuse on every boundary.
//
// Cells must be independent: no shared mutable state beyond the per-worker
// cache, each builds (or reuses) its own world. Result types must be
// default-constructible and movable.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <typeinfo>
#include <utility>
#include <vector>

#include "sweep/thread_pool.h"

namespace memca::sweep {

struct SweepOptions {
  /// Worker threads; 0 = default_thread_count() (see thread_pool.h).
  /// 1 runs the cells inline on the calling thread, spawning nothing.
  int threads = 0;
};

/// One reusable slot of worker-local state, keyed by a caller-chosen string.
/// A cell asks for "the world for key K"; if the previous cell on this
/// worker left one behind it is returned as-is (warm), otherwise the old
/// world is destroyed and a fresh one built. Single-slot on purpose: cells
/// with the same key must be contiguous in the batch (sort your grid so the
/// expensive-to-build prefix varies slowest), and everything a worker built
/// dies on that worker's thread — thread-local state such as the log
/// counter's scope chain stays balanced.
class WorkerCache {
 public:
  WorkerCache() = default;
  WorkerCache(const WorkerCache&) = delete;
  WorkerCache& operator=(const WorkerCache&) = delete;

  /// Returns the cached T for `key`, building it with `build()` (a callable
  /// returning std::unique_ptr<T>) on a key or type miss. The previous
  /// occupant is destroyed *before* build runs, so scoped thread-local
  /// state (e.g. ScopedLogCounter) unwinds in LIFO order.
  template <typename T, typename Builder>
  T& get_or_build(std::string_view key, Builder&& build) {
    if (value_ == nullptr || type_ != &typeid(T) || key_ != key) {
      value_.reset();
      key_.assign(key);
      type_ = &typeid(T);
      std::unique_ptr<T> built = build();
      value_ = Holder(built.release(), [](void* p) { delete static_cast<T*>(p); });
      ++misses_;
    } else {
      ++hits_;
    }
    return *static_cast<T*>(value_.get());
  }

  /// Destroys the cached value (if any).
  void clear() {
    value_.reset();
    key_.clear();
    type_ = nullptr;
  }

  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

 private:
  using Holder = std::unique_ptr<void, void (*)(void*)>;
  std::string key_;
  const std::type_info* type_ = nullptr;
  Holder value_{nullptr, [](void*) {}};
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {})
      : threads_(options.threads > 0 ? options.threads : default_thread_count()) {}

  int threads() const { return threads_; }

  /// Runs every cell, returning results[i] == cells[i]() in cell order.
  /// Cells may be move-only callables, invoked either as cell() or — when
  /// the cell accepts it — as cell(WorkerCache&), giving it access to the
  /// worker's reusable world slot.
  ///
  /// If cells throw, every remaining cell still runs and the exception of
  /// the *lowest-indexed* throwing cell is rethrown after the batch drains —
  /// in cell order, not completion order, so the error a caller sees does
  /// not depend on the thread count.
  template <typename Cell>
  auto run(std::vector<Cell> cells) const {
    using Result = decltype(invoke_cell(std::declval<Cell&>(),
                                        std::declval<WorkerCache&>()));
    std::vector<Result> results(cells.size());
    std::vector<std::exception_ptr> errors(cells.size());
    const int workers =
        static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads_),
                                               cells.size()));
    if (workers <= 1) {
      WorkerCache cache;
      run_range(cells, results, errors, 0, cells.size(), cache);
    } else {
      // Contiguous chunks, one per worker (see file comment).
      const std::size_t chunk = (cells.size() + workers - 1) / workers;
      ThreadPool pool(workers);
      for (int w = 0; w < workers; ++w) {
        const std::size_t begin = static_cast<std::size_t>(w) * chunk;
        const std::size_t end = std::min(cells.size(), begin + chunk);
        if (begin >= end) break;
        pool.post([&, begin, end] {
          WorkerCache cache;
          run_range(cells, results, errors, begin, end, cache);
        });
      }
      pool.wait_idle();
    }
    for (std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    return results;
  }

  /// Maps `fn` over `cells` in parallel, preserving order:
  /// returns {fn(cells[0]), fn(cells[1]), ...}. `fn` may take the cell
  /// alone or (const Cell&, WorkerCache&).
  template <typename Cell, typename Fn>
  auto map(std::vector<Cell> cells, Fn fn) const {
    struct Thunk {
      std::shared_ptr<std::vector<Cell>> cells;
      Fn fn;
      std::size_t i;
      auto operator()(WorkerCache& cache) {
        if constexpr (std::is_invocable_v<Fn&, const Cell&, WorkerCache&>) {
          return fn((*cells)[i], cache);
        } else {
          return fn((*cells)[i]);
        }
      }
    };
    auto shared_cells = std::make_shared<std::vector<Cell>>(std::move(cells));
    std::vector<Thunk> thunks;
    thunks.reserve(shared_cells->size());
    for (std::size_t i = 0; i < shared_cells->size(); ++i) {
      thunks.push_back(Thunk{shared_cells, fn, i});
    }
    return run(std::move(thunks));
  }

 private:
  template <typename Cell>
  static auto invoke_cell(Cell& cell, WorkerCache& cache) {
    if constexpr (std::is_invocable_v<Cell&, WorkerCache&>) {
      return cell(cache);
    } else {
      return cell();
    }
  }

  template <typename Cell, typename Result>
  static void run_range(std::vector<Cell>& cells, std::vector<Result>& results,
                        std::vector<std::exception_ptr>& errors, std::size_t begin,
                        std::size_t end, WorkerCache& cache) {
    for (std::size_t i = begin; i < end; ++i) {
      try {
        results[i] = invoke_cell(cells[i], cache);
      } catch (...) {
        errors[i] = std::current_exception();
        // A throw may have left the cached world mid-mutation; drop it so
        // the next cell rebuilds instead of reusing poisoned state.
        cache.clear();
      }
    }
  }

  int threads_;
};

}  // namespace memca::sweep
