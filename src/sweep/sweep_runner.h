// Deterministic parallel execution of independent scenario cells.
//
// Every figure and ablation reduces to evaluating an embarrassingly-parallel
// grid of attack parameters, one full Simulator/RubbosTestbed per cell.
// SweepRunner executes such a batch on a thread pool and returns results in
// cell order regardless of completion order. Because each cell owns its
// entire simulation (simulator, RNG streams forked from the cell's own seed,
// monitors), per-seed results are bit-identical to running the cells
// sequentially — a property the sweep determinism test enforces.
//
// Cells must be independent: no shared mutable state, each builds its own
// world. Result types must be default-constructible and movable.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sweep/thread_pool.h"

namespace memca::sweep {

struct SweepOptions {
  /// Worker threads; 0 = default_thread_count() (see thread_pool.h).
  /// 1 runs the cells inline on the calling thread, spawning nothing.
  int threads = 0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {})
      : threads_(options.threads > 0 ? options.threads : default_thread_count()) {}

  int threads() const { return threads_; }

  /// Runs every cell, returning results[i] == cells[i]() in cell order.
  /// If a cell throws, the remaining cells still run and the first exception
  /// (in completion order) is rethrown after the batch drains.
  template <typename Result>
  std::vector<Result> run(std::vector<std::function<Result()>> cells) const {
    std::vector<Result> results(cells.size());
    const int workers =
        static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads_),
                                               cells.size()));
    if (workers <= 1) {
      for (std::size_t i = 0; i < cells.size(); ++i) results[i] = cells[i]();
      return results;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mu;
    std::exception_ptr first_error;
    {
      ThreadPool pool(workers);
      for (int w = 0; w < workers; ++w) {
        pool.post([&] {
          for (std::size_t i = next.fetch_add(1); i < cells.size();
               i = next.fetch_add(1)) {
            try {
              results[i] = cells[i]();
            } catch (...) {
              std::lock_guard<std::mutex> lock(error_mu);
              if (!first_error) first_error = std::current_exception();
            }
          }
        });
      }
      pool.wait_idle();
    }
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

  /// Maps `fn` over `cells` in parallel, preserving order:
  /// returns {fn(cells[0]), fn(cells[1]), ...}.
  template <typename Cell, typename Fn>
  auto map(std::vector<Cell> cells, Fn fn) const
      -> std::vector<decltype(fn(std::declval<const Cell&>()))> {
    using Result = decltype(fn(std::declval<const Cell&>()));
    std::vector<std::function<Result()>> thunks;
    thunks.reserve(cells.size());
    auto shared_cells = std::make_shared<std::vector<Cell>>(std::move(cells));
    for (std::size_t i = 0; i < shared_cells->size(); ++i) {
      thunks.push_back([shared_cells, fn, i] { return fn((*shared_cells)[i]); });
    }
    return run(std::move(thunks));
  }

 private:
  int threads_;
};

}  // namespace memca::sweep
