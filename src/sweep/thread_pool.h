// Fixed-size worker pool backing the sweep runner.
//
// Deliberately minimal: jobs are fire-and-forget void() closures, there is
// no futures machinery, and the pool is meant to be fed a batch of jobs and
// then drained with wait_idle(). Simulators stay single-threaded; the pool
// only ever runs *whole independent simulations* side by side.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace memca::sweep {

/// Worker count used when a caller passes 0: the MEMCA_SWEEP_THREADS
/// environment variable if set (useful on shared CI machines), otherwise
/// std::thread::hardware_concurrency(), always at least 1.
int default_thread_count();

/// Whether sweep workers pin themselves to CPUs: the MEMCA_SWEEP_AFFINITY
/// environment variable, off unless set to a positive integer. Pinning
/// (worker i -> cpu i mod hardware_concurrency, Linux only) keeps each
/// worker's simulation working set on one core's caches during long sweeps;
/// it is opt-in because on shared machines inherited masks or co-tenants
/// make pinning a pessimisation. Results are bit-identical either way.
bool affinity_enabled();

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = default_thread_count()).
  explicit ThreadPool(int threads = 0);
  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a job. Jobs must not throw (wrap exception capture yourself).
  void post(std::function<void()> job);
  /// Blocks until every posted job has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace memca::sweep
