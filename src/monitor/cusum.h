// CUSUM change-point detection on utilization series.
//
// The paper argues (Section V-B) that simple threshold monitors at coarse
// granularity cannot see MemCA, and that effective detection "requires
// significant future research". CUSUM is the natural next step a defender
// would try: instead of asking "is any window above 85%?", it accumulates
// small persistent deviations from a learned baseline, so an ON-OFF attack
// that only shifts the *mean* by 15-20 percentage points is eventually
// caught even when no single window breaches.
//
// Included as a defense-evaluation substrate: the ablation benches show
// which attack schedules CUSUM catches, at which detection latency, and
// what false-alarm rate the defender pays for that sensitivity.
#pragma once

#include <cstddef>

#include "common/timeseries.h"

namespace memca::monitor {

struct CusumConfig {
  /// Samples used to learn the baseline mean (must precede the attack).
  std::size_t baseline_samples = 30;
  /// Allowance k: deviations below baseline+k are ignored (in value units,
  /// e.g. utilization fraction).
  double allowance = 0.05;
  /// Decision threshold h on the accumulated statistic.
  double threshold = 1.0;
};

struct CusumDetection {
  bool detected = false;
  /// Time of the first alarm (valid when detected).
  SimTime alarm_time = 0;
  /// Peak value of the CUSUM statistic.
  double peak_statistic = 0.0;
  /// Learned baseline mean.
  double baseline_mean = 0.0;
};

/// One-sided (upward) CUSUM over the series values.
/// S_0 = 0;  S_t = max(0, S_{t-1} + x_t - mean0 - k);  alarm when S_t > h.
CusumDetection detect_cusum(const TimeSeries& series, const CusumConfig& config = {});

}  // namespace memca::monitor
