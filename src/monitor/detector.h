// Performance-interference detectors (Section V-B).
//
// Models the two classes of detection the paper evaluates MemCA against:
//
//  * Threshold detection on sampled utilization — the user-centric
//    approach: alarm when a window's average utilization exceeds a bound.
//    Whether a millibottleneck is visible depends entirely on the sampling
//    granularity (Fig. 10): at 50 ms the transient saturations stand out,
//    at 1 s they blur, at 1 min they vanish.
//
//  * Periodicity detection on host-level LLC-miss counts — the
//    provider-centric approach (OProfile in the paper): an ON-OFF attack
//    with a fixed interval leaves an autocorrelation peak at its period
//    (Fig. 11a, bus saturation). The memory-lock variant leaves no LLC
//    footprint, so this detector stays blind (Fig. 11b).
#pragma once

#include <cstddef>

#include "common/timeseries.h"

namespace memca::monitor {

struct ThresholdDetection {
  bool detected = false;
  /// Windows whose value breached the threshold.
  std::size_t alarm_windows = 0;
  std::size_t total_windows = 0;
  /// Window start of the first alarm (valid when detected).
  SimTime first_alarm = 0;
  double max_observed = 0.0;
};

/// Resamples `fine` (mean per window of `granularity`) and alarms on any
/// window whose average exceeds `threshold`.
ThresholdDetection detect_threshold(const TimeSeries& fine, SimTime granularity,
                                    double threshold);

struct PeriodicityDetection {
  bool periodic = false;
  /// Best lag, in samples (valid when periodic).
  std::size_t best_lag = 0;
  /// Best lag converted to time using the series' sampling period.
  SimTime best_period = 0;
  /// Autocorrelation score at the best lag.
  double score = 0.0;
};

/// Scans lags in [min_lag, max_lag] for an autocorrelation peak.
/// `sample_period` is the spacing of the (uniformly sampled) series.
/// Declares periodicity when the peak score exceeds `score_threshold`.
PeriodicityDetection detect_periodicity(const TimeSeries& series, SimTime sample_period,
                                        std::size_t min_lag, std::size_t max_lag,
                                        double score_threshold = 0.35);

/// Burstiness index: ratio of the p-quantile to the median of the sample
/// values. Near 1 for steady series; large for ON-OFF patterns. A cheap
/// secondary statistic used by the defense-evaluation example.
double burstiness_index(const TimeSeries& series, double q = 0.95);

}  // namespace memca::monitor
