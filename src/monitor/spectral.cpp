#include "monitor/spectral.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace memca::monitor {

double goertzel_power(const TimeSeries& series, std::size_t period_samples) {
  MEMCA_CHECK_MSG(period_samples >= 2, "period must be at least two samples");
  const auto& samples = series.samples();
  const std::size_t n = samples.size();
  if (n < period_samples) return 0.0;
  const double mean = series.mean();
  const double omega = 2.0 * std::numbers::pi / static_cast<double>(period_samples);
  const double coeff = 2.0 * std::cos(omega);
  double s_prev = 0.0;
  double s_prev2 = 0.0;
  for (const Sample& sample : samples) {
    const double s = (sample.value - mean) + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  const double power =
      s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
  return power / static_cast<double>(n);
}

SpectralDetection detect_spectral(const TimeSeries& series, SimTime sample_period,
                                  std::size_t min_period, std::size_t max_period,
                                  double peak_threshold) {
  MEMCA_CHECK_MSG(min_period >= 2 && min_period <= max_period, "invalid period range");
  MEMCA_CHECK_MSG(sample_period > 0, "sample period must be positive");
  SpectralDetection result;
  if (series.size() < max_period) return result;

  double total = 0.0;
  std::size_t count = 0;
  double peak = 0.0;
  std::size_t peak_period = 0;
  for (std::size_t period = min_period; period <= max_period; ++period) {
    const double power = goertzel_power(series, period);
    total += power;
    ++count;
    if (power > peak) {
      peak = power;
      peak_period = period;
    }
  }
  if (count == 0 || total <= 0.0) return result;
  const double mean_power = total / static_cast<double>(count);
  result.peak_to_mean = mean_power > 0.0 ? peak / mean_power : 0.0;
  if (result.peak_to_mean > peak_threshold) {
    result.periodic = true;
    result.best_period_samples = peak_period;
    result.best_period = static_cast<SimTime>(peak_period) * sample_period;
  }
  return result;
}

}  // namespace memca::monitor
