// Spectral (Goertzel) periodicity detection.
//
// A frequency-domain alternative to the autocorrelation detector: evaluates
// the DFT power at every candidate attack period and compares the peak to
// the broadband average. More robust than autocorrelation when the series
// carries heavy wideband noise, and degrades more gracefully under schedule
// jitter — used by the jitter ablation to show both detectors' blind spots.
#pragma once

#include <cstddef>

#include "common/timeseries.h"

namespace memca::monitor {

struct SpectralDetection {
  bool periodic = false;
  /// Dominant period in samples (valid when periodic).
  std::size_t best_period_samples = 0;
  SimTime best_period = 0;
  /// Peak power / mean power over the scanned band.
  double peak_to_mean = 0.0;
};

/// Scans candidate periods in [min_period, max_period] (in samples) over a
/// uniformly sampled series; declares periodicity when the peak band power
/// exceeds `peak_threshold` times the band mean.
SpectralDetection detect_spectral(const TimeSeries& series, SimTime sample_period,
                                  std::size_t min_period, std::size_t max_period,
                                  double peak_threshold = 8.0);

/// DFT power of `series` values at period `period_samples` (Goertzel).
double goertzel_power(const TimeSeries& series, std::size_t period_samples);

}  // namespace memca::monitor
