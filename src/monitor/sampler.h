// Periodic metric samplers.
//
// Two flavours, matching how real monitors work:
//  * GaugeSampler reads an instantaneous value each period (queue length,
//    memory bandwidth) — what `sar -q`-style tools report.
//  * UtilizationSampler differences a busy-time integral each period and
//    normalises by capacity, yielding the exact average utilization over
//    the window — what /proc/stat-based CPU monitors report. Sampling the
//    same integral at 50 ms vs 1 min granularity is how the paper's Fig. 10
//    shows the millibottlenecks disappearing from coarse monitoring.
#pragma once

#include <functional>
#include <memory>

#include "common/check.h"
#include "common/timeseries.h"
#include "sim/simulator.h"

namespace memca::monitor {

class GaugeSampler {
 public:
  /// Samples `gauge` every `period`, starting one period after start().
  GaugeSampler(Simulator& sim, std::function<double()> gauge, SimTime period);

  void start();
  void stop();
  const TimeSeries& series() const { return series_; }
  SimTime period() const { return period_; }

  /// Checkpoint: the periodic task's pending tick plus the series length
  /// (append-only, so restore is a truncation). start()/stop() between a
  /// capture and its restore is not supported — the task object must still
  /// exist iff it existed at capture.
  struct Snapshot {
    bool has_task = false;
    PeriodicTask::Snapshot task;
    std::size_t series_size = 0;
  };

  void capture(Snapshot& out) const {
    out.has_task = task_ != nullptr;
    if (task_ != nullptr) task_->capture(out.task);
    out.series_size = series_.size();
  }

  void restore(const Snapshot& snap) {
    MEMCA_CHECK(snap.has_task == (task_ != nullptr));
    if (task_ != nullptr) task_->restore(snap.task);
    series_.truncate(snap.series_size);
  }

 private:
  Simulator& sim_;
  std::function<double()> gauge_;
  SimTime period_;
  std::unique_ptr<PeriodicTask> task_;
  TimeSeries series_;
};

class UtilizationSampler {
 public:
  /// `busy_time_us` returns a monotonically non-decreasing busy-time
  /// integral in resource-microseconds; `capacity` is the number of
  /// resource units (workers/cores), so each window's sample is
  /// (delta integral) / (capacity * period) in [0, 1].
  UtilizationSampler(Simulator& sim, std::function<double()> busy_time_us, int capacity,
                     SimTime period);

  /// Same, with a dynamic capacity (elastic scale-out changes the worker
  /// count mid-run; the sampler reads it at each window boundary).
  UtilizationSampler(Simulator& sim, std::function<double()> busy_time_us,
                     std::function<int()> capacity, SimTime period);

  void start();
  void stop();
  const TimeSeries& series() const { return series_; }
  SimTime period() const { return period_; }

  /// Checkpoint: pending tick, the differencing cursor, and the series
  /// length. Same task-presence rule as GaugeSampler::Snapshot.
  struct Snapshot {
    bool has_task = false;
    PeriodicTask::Snapshot task;
    double last_integral = 0.0;
    std::size_t series_size = 0;
  };

  void capture(Snapshot& out) const {
    out.has_task = task_ != nullptr;
    if (task_ != nullptr) task_->capture(out.task);
    out.last_integral = last_integral_;
    out.series_size = series_.size();
  }

  void restore(const Snapshot& snap) {
    MEMCA_CHECK(snap.has_task == (task_ != nullptr));
    if (task_ != nullptr) task_->restore(snap.task);
    last_integral_ = snap.last_integral;
    series_.truncate(snap.series_size);
  }

 private:
  void sample();

  Simulator& sim_;
  std::function<double()> busy_time_us_;
  std::function<int()> capacity_;
  SimTime period_;
  std::unique_ptr<PeriodicTask> task_;
  double last_integral_ = 0.0;
  TimeSeries series_;
};

}  // namespace memca::monitor
