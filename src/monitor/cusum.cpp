#include "monitor/cusum.h"

#include <algorithm>

#include "common/check.h"

namespace memca::monitor {

CusumDetection detect_cusum(const TimeSeries& series, const CusumConfig& config) {
  MEMCA_CHECK_MSG(config.baseline_samples >= 2, "need at least two baseline samples");
  MEMCA_CHECK_MSG(config.threshold > 0.0, "threshold must be positive");
  CusumDetection result;
  const auto& samples = series.samples();
  if (samples.size() <= config.baseline_samples) return result;

  double baseline = 0.0;
  for (std::size_t i = 0; i < config.baseline_samples; ++i) baseline += samples[i].value;
  baseline /= static_cast<double>(config.baseline_samples);
  result.baseline_mean = baseline;

  double s = 0.0;
  for (std::size_t i = config.baseline_samples; i < samples.size(); ++i) {
    s = std::max(0.0, s + samples[i].value - baseline - config.allowance);
    result.peak_statistic = std::max(result.peak_statistic, s);
    if (s > config.threshold && !result.detected) {
      result.detected = true;
      result.alarm_time = samples[i].time;
    }
  }
  return result;
}

}  // namespace memca::monitor
