#include "monitor/elastic.h"

#include <algorithm>

#include "common/check.h"
#include "common/timeseries.h"

namespace memca::monitor {

ElasticController::ElasticController(Simulator& sim, queueing::TierServer& tier,
                                     ElasticPolicy policy)
    : sim_(sim), tier_(tier), policy_(policy) {
  MEMCA_CHECK_MSG(policy_.evaluation_period > 0, "evaluation period must be positive");
  MEMCA_CHECK_MSG(policy_.consecutive_periods >= 1, "need at least one period");
  MEMCA_CHECK_MSG(policy_.workers_per_scaleout >= 1, "scale-out must add workers");
  MEMCA_CHECK_MSG(policy_.max_scaleouts >= 0, "max_scaleouts must be non-negative");
}

void ElasticController::start() {
  MEMCA_CHECK_MSG(task_ == nullptr, "controller already started");
  last_integral_ = tier_.busy_worker_time_us();
  task_ = std::make_unique<PeriodicTask>(sim_, policy_.evaluation_period,
                                         [this] { evaluate(); });
}

void ElasticController::stop() {
  if (task_) task_->stop();
}

void ElasticController::evaluate() {
  const double integral = tier_.busy_worker_time_us();
  const double delta = integral - last_integral_;
  last_integral_ = integral;
  const double denom = static_cast<double>(tier_.workers()) *
                       static_cast<double>(policy_.evaluation_period);
  const double util = std::clamp(delta / denom, 0.0, 1.0);
  observed_.append(sim_.now() - policy_.evaluation_period, util);

  if (sim_.now() < cooldown_until_) {
    streak_ = 0;
    low_streak_ = 0;
    return;
  }
  if (util > policy_.cpu_threshold) {
    ++streak_;
    low_streak_ = 0;
    if (streak_ >= policy_.consecutive_periods &&
        scaleouts() < policy_.max_scaleouts) {
      scale_out();
      streak_ = 0;
    }
  } else {
    streak_ = 0;
    if (policy_.scale_in_threshold > 0.0 && util < policy_.scale_in_threshold) {
      ++low_streak_;
      if (low_streak_ >= policy_.scale_in_consecutive && extra_replicas_ > 0) {
        scale_in();
        low_streak_ = 0;
      }
    } else {
      low_streak_ = 0;
    }
  }
}

void ElasticController::scale_in() {
  ++scaleins_;
  --extra_replicas_;
  tier_.remove_capacity(policy_.workers_per_scaleout, policy_.threads_per_scaleout);
  cooldown_until_ = sim_.now() + policy_.cooldown;
}

void ElasticController::scale_out() {
  ScaleOutEvent event;
  event.triggered_at = sim_.now();
  event.effective_at = sim_.now() + policy_.provisioning_delay;
  event.workers_added = policy_.workers_per_scaleout;
  events_.push_back(event);
  cooldown_until_ = event.effective_at + policy_.cooldown;
  const int workers = policy_.workers_per_scaleout;
  const int threads = policy_.threads_per_scaleout;
  sim_.schedule_at(event.effective_at, [this, workers, threads] {
    tier_.add_capacity(workers, threads);
    ++extra_replicas_;
  });
}

}  // namespace memca::monitor
