#include "monitor/autoscaler.h"

#include "common/check.h"

namespace memca::monitor {

ScaleDecision evaluate_autoscaler(const TimeSeries& fine_utilization,
                                  const AutoScalerConfig& config) {
  MEMCA_CHECK_MSG(config.sampling_period > 0, "sampling period must be positive");
  MEMCA_CHECK_MSG(config.consecutive_periods >= 1, "need at least one period");
  ScaleDecision decision;
  decision.observed = fine_utilization.resample_mean(config.sampling_period);
  int streak = 0;
  for (const Sample& s : decision.observed.samples()) {
    if (s.value > config.cpu_threshold) {
      decision.breaching_windows.push_back(s.time);
      ++streak;
      if (streak >= config.consecutive_periods && !decision.triggered) {
        decision.triggered = true;
        decision.trigger_time = s.time + config.sampling_period;
      }
    } else {
      streak = 0;
    }
  }
  return decision;
}

}  // namespace memca::monitor
