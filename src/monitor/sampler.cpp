#include "monitor/sampler.h"

#include <algorithm>

#include "common/check.h"

namespace memca::monitor {

GaugeSampler::GaugeSampler(Simulator& sim, std::function<double()> gauge, SimTime period)
    : sim_(sim), gauge_(std::move(gauge)), period_(period) {
  MEMCA_CHECK_MSG(static_cast<bool>(gauge_), "GaugeSampler needs a gauge callback");
  MEMCA_CHECK_MSG(period_ > 0, "sampling period must be positive");
}

void GaugeSampler::start() {
  MEMCA_CHECK_MSG(task_ == nullptr, "sampler already started");
  task_ = std::make_unique<PeriodicTask>(sim_, period_,
                                         [this] { series_.append(sim_.now(), gauge_()); });
}

void GaugeSampler::stop() {
  if (task_) task_->stop();
}

UtilizationSampler::UtilizationSampler(Simulator& sim, std::function<double()> busy_time_us,
                                       int capacity, SimTime period)
    : UtilizationSampler(sim, std::move(busy_time_us),
                         std::function<int()>([capacity] { return capacity; }), period) {
  MEMCA_CHECK_MSG(capacity >= 1, "capacity must be at least 1");
}

UtilizationSampler::UtilizationSampler(Simulator& sim, std::function<double()> busy_time_us,
                                       std::function<int()> capacity, SimTime period)
    : sim_(sim),
      busy_time_us_(std::move(busy_time_us)),
      capacity_(std::move(capacity)),
      period_(period) {
  MEMCA_CHECK_MSG(static_cast<bool>(busy_time_us_), "UtilizationSampler needs an integral");
  MEMCA_CHECK_MSG(static_cast<bool>(capacity_), "UtilizationSampler needs a capacity");
  MEMCA_CHECK_MSG(period_ > 0, "sampling period must be positive");
}

void UtilizationSampler::start() {
  MEMCA_CHECK_MSG(task_ == nullptr, "sampler already started");
  last_integral_ = busy_time_us_();
  task_ = std::make_unique<PeriodicTask>(sim_, period_, [this] { sample(); });
}

void UtilizationSampler::stop() {
  if (task_) task_->stop();
}

void UtilizationSampler::sample() {
  const double integral = busy_time_us_();
  const double delta = integral - last_integral_;
  last_integral_ = integral;
  const double denom = static_cast<double>(capacity_()) * static_cast<double>(period_);
  const double util = std::clamp(delta / denom, 0.0, 1.0);
  // Timestamp at the window start, matching how monitors report intervals.
  series_.append(sim_.now() - period_, util);
}

}  // namespace memca::monitor
