// CloudWatch-style auto-scaling trigger evaluation (Section V-B).
//
// AWS Auto Scaling consumes 1-minute average CPU utilization from
// CloudWatch and scales out when the average exceeds a threshold (the
// paper assumes the common 85% policy). This component replays a
// fine-grained utilization series through that policy at an arbitrary
// sampling granularity, so the same run can be judged at 50 ms, 1 s and
// 1 min — the heart of the Fig. 10 stealthiness result.
#pragma once

#include <vector>

#include "common/timeseries.h"

namespace memca::monitor {

struct AutoScalerConfig {
  /// Monitoring granularity (CloudWatch: 1 minute).
  SimTime sampling_period = kMinute;
  /// Average-utilization trigger threshold.
  double cpu_threshold = 0.85;
  /// Consecutive breaching periods required before scaling out.
  int consecutive_periods = 1;
};

struct ScaleDecision {
  /// Window start times whose average breached the threshold.
  std::vector<SimTime> breaching_windows;
  /// True if `consecutive_periods` consecutive windows breached.
  bool triggered = false;
  /// Time of the first trigger (valid when triggered).
  SimTime trigger_time = 0;
  /// The resampled series the policy actually saw.
  TimeSeries observed;
};

/// Replays `fine_utilization` (a fine-grained 0..1 utilization series)
/// through the scaling policy.
ScaleDecision evaluate_autoscaler(const TimeSeries& fine_utilization,
                                  const AutoScalerConfig& config);

}  // namespace memca::monitor
