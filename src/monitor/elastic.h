// Live elastic-scaling controller (AWS Auto Scaling, Section V-B).
//
// Unlike `evaluate_autoscaler` (which replays a recorded series offline),
// this component runs *inside* the simulation and actually scales the
// target tier out when its policy fires: after a provisioning delay
// (instance launch time), the tier gains workers and thread capacity.
//
// This is the substrate for the paper's headline elasticity claim: a
// flooding attack is absorbed by scale-out (Berkeley's "serve the attack
// traffic" prediction), a brute-force memory attack at least triggers the
// response, but MemCA never fires the policy at all — the cluster pays for
// the attack in tail latency instead of alarms.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/time.h"
#include "common/timeseries.h"
#include "queueing/tier.h"
#include "sim/simulator.h"

namespace memca::monitor {

struct ElasticPolicy {
  /// Evaluation period (CloudWatch: 1 minute).
  SimTime evaluation_period = kMinute;
  /// Average-utilization trigger threshold.
  double cpu_threshold = 0.85;
  /// Consecutive breaching periods required.
  int consecutive_periods = 1;
  /// Instance launch + warm-up time before new capacity serves traffic.
  SimTime provisioning_delay = kMinute;
  /// Workers added per scale-out (one replica's vCPUs).
  int workers_per_scaleout = 2;
  /// Thread-limit growth per scale-out (the replica's connection pool).
  int threads_per_scaleout = 30;
  /// Upper bound on scale-outs (account limits / budget).
  int max_scaleouts = 4;
  /// Cooldown after a scale-out during which the policy does not re-fire.
  SimTime cooldown = kMinute;
  /// Scale back in when average utilization stays below this threshold for
  /// `scale_in_consecutive` periods (0 disables scale-in). Only capacity
  /// this controller added is ever removed.
  double scale_in_threshold = 0.0;
  int scale_in_consecutive = 3;
};

struct ScaleOutEvent {
  SimTime triggered_at = 0;
  SimTime effective_at = 0;
  int workers_added = 0;
};

class ElasticController {
 public:
  /// Watches `tier`'s busy-time integral and scales it out per `policy`.
  ElasticController(Simulator& sim, queueing::TierServer& tier, ElasticPolicy policy = {});
  ElasticController(const ElasticController&) = delete;
  ElasticController& operator=(const ElasticController&) = delete;

  void start();
  void stop();

  const std::vector<ScaleOutEvent>& events() const { return events_; }
  int scaleouts() const { return static_cast<int>(events_.size()); }
  int scaleins() const { return scaleins_; }
  /// Replicas currently provisioned beyond the base fleet.
  int extra_replicas() const { return extra_replicas_; }
  /// Utilization the policy observed in each evaluation period.
  const TimeSeries& observed() const { return observed_; }

 private:
  void evaluate();
  void scale_out();
  void scale_in();

  Simulator& sim_;
  queueing::TierServer& tier_;
  ElasticPolicy policy_;
  std::unique_ptr<PeriodicTask> task_;
  double last_integral_ = 0.0;
  int streak_ = 0;
  int low_streak_ = 0;
  SimTime cooldown_until_ = 0;
  int extra_replicas_ = 0;
  int scaleins_ = 0;
  std::vector<ScaleOutEvent> events_;
  TimeSeries observed_;
};

}  // namespace memca::monitor
