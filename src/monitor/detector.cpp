#include "monitor/detector.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace memca::monitor {

ThresholdDetection detect_threshold(const TimeSeries& fine, SimTime granularity,
                                    double threshold) {
  ThresholdDetection result;
  const TimeSeries coarse = fine.resample_mean(granularity);
  result.total_windows = coarse.size();
  for (const Sample& s : coarse.samples()) {
    result.max_observed = std::max(result.max_observed, s.value);
    if (s.value > threshold) {
      if (!result.detected) {
        result.detected = true;
        result.first_alarm = s.time;
      }
      ++result.alarm_windows;
    }
  }
  return result;
}

PeriodicityDetection detect_periodicity(const TimeSeries& series, SimTime sample_period,
                                        std::size_t min_lag, std::size_t max_lag,
                                        double score_threshold) {
  MEMCA_CHECK_MSG(min_lag >= 1 && min_lag <= max_lag, "invalid lag range");
  MEMCA_CHECK_MSG(sample_period > 0, "sample period must be positive");
  PeriodicityDetection result;
  for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
    const double score = series.autocorrelation(lag);
    if (score > result.score) {
      result.score = score;
      result.best_lag = lag;
    }
  }
  if (result.score > score_threshold && result.best_lag > 0) {
    result.periodic = true;
    result.best_period = static_cast<SimTime>(result.best_lag) * sample_period;
  }
  return result;
}

double burstiness_index(const TimeSeries& series, double q) {
  MEMCA_CHECK(q > 0.0 && q < 1.0);
  if (series.size() < 4) return 1.0;
  std::vector<double> values;
  values.reserve(series.size());
  for (const Sample& s : series.samples()) values.push_back(s.value);
  std::sort(values.begin(), values.end());
  const double median = values[values.size() / 2];
  const auto qidx = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  const double upper = values[qidx];
  if (median <= 0.0) return upper > 0.0 ? 1e9 : 1.0;
  return upper / median;
}

}  // namespace memca::monitor
