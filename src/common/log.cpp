#include "common/log.h"

#include <atomic>
#include <cstdio>

#include "common/time.h"

namespace memca {

namespace {
// Atomic so parallel sweep cells can log while another thread reads the
// filter level; ordering does not matter, only freedom from data races.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Injected sink; empty means the stderr default. Swapped only between runs
// (see set_log_sink), so plain reads from logging threads are fine.
LogSink g_sink;

// Innermost ScopedLogCounter of this thread (nullptr when none active).
thread_local ScopedLogCounter* t_log_counter = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) { g_sink = std::move(sink); }

ScopedLogCounter::ScopedLogCounter() : prev_(t_log_counter) { t_log_counter = this; }

ScopedLogCounter::~ScopedLogCounter() { t_log_counter = prev_; }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // Warn/error lines are tallied per-thread even when routed to a custom
  // sink, so run reports can surface them without parsing log output.
  if (level >= LogLevel::kWarn) {
    for (ScopedLogCounter* c = t_log_counter; c != nullptr; c = c->prev_) {
      if (level == LogLevel::kWarn) {
        ++c->warnings_;
      } else {
        ++c->errors_;
      }
    }
  }
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

std::string format_time(SimTime t) {
  char buf[64];
  if (t >= kSecond || t <= -kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(t));
  } else if (t >= kMillisecond || t <= -kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", to_millis(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(t));
  }
  return buf;
}

}  // namespace memca
