// Fixed-stride FIFO over a power-of-two ring buffer.
//
// The tier wait/blocked queues and tandem station queues are plain FIFOs of
// Request pointers whose occupancy is bounded by the tier's thread limit (or
// queue capacity). std::deque allocates and frees its block map as the queue
// breathes; a pre-sized ring never allocates on the steady-state path and
// push/pop are an index mask away from a raw array store. Growth (only when
// a caller under-reserved) doubles the buffer and unrolls the wrap.
#pragma once

#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace memca {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;
  /// Pre-sizes the ring for at least `min_capacity` elements.
  explicit RingQueue(std::size_t min_capacity) { reserve(min_capacity); }

  /// Grows the ring to hold at least `n` elements without reallocation.
  void reserve(std::size_t n) {
    if (n > capacity()) grow(n);
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  T& front() {
    MEMCA_DCHECK(count_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    MEMCA_DCHECK(count_ > 0);
    return buf_[head_];
  }

  void push_back(T value) {
    if (count_ == buf_.size()) grow(count_ + 1);
    buf_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  void pop_front() {
    MEMCA_DCHECK(count_ > 0);
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

  /// Checkpoint support: the logical FIFO contents in pop order. The head
  /// offset is not part of the observable state (only the element sequence
  /// is), so restore re-bases at index 0 — valid for any capacity that has
  /// grown since the capture, and allocation-free because ring capacity
  /// never shrinks.
  struct Snapshot {
    std::vector<T> items;
  };

  void capture(Snapshot& out) const {
    out.items.clear();
    out.items.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i) {
      out.items.push_back(buf_[(head_ + i) & mask_]);
    }
  }

  void restore(const Snapshot& snap) {
    MEMCA_CHECK_MSG(snap.items.size() <= capacity(),
                    "ring capacity shrank below a checkpointed occupancy");
    head_ = 0;
    count_ = snap.items.size();
    for (std::size_t i = 0; i < count_; ++i) buf_[i] = snap.items[i];
  }

 private:
  void grow(std::size_t min_capacity) {
    const std::size_t new_cap = std::bit_ceil(min_capacity < 8 ? 8 : min_capacity);
    std::vector<T> fresh(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      fresh[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_.swap(fresh);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace memca
